// Experiment E5 — Theorem 9: in a dedicated environment the non-blocking
// work stealer runs in expected time O(T1/P + Tinf), achieving linear
// speedup while P is small relative to the parallelism T1/Tinf. We sweep P
// and report measured length, the bound with constant 1, their ratio, and
// the speedup curve with its crossover out of the linear regime.

#include "bench_common.hpp"
#include "support/stats.hpp"

int main(int argc, char** argv) {
  using namespace abp;
  const bool csv = bench::csv_mode(argc, argv);
  const bool quick = bench::quick_mode(argc, argv);
  bench::banner("E5: bench_thm9_dedicated", "Theorem 9 (dedicated)",
                "expected execution time O(T1/P + Tinf); linear speedup "
                "whenever P << T1/Tinf; empirical constant ~1");

  struct DagCase {
    const char* name;
    dag::Dag d;
  };
  std::vector<DagCase> dags;
  dags.push_back({"fib(18)", dag::fib_dag(quick ? 14 : 18)});
  dags.push_back({"grid(60x60)", dag::grid_wavefront(60, 60)});
  dags.push_back({"wide(256x32)", dag::wide(256, 32)});

  const int reps = quick ? 2 : 5;
  bool all_ok = true;
  for (const auto& dc : dags) {
    const double t1 = double(dc.d.work());
    const double tinf = double(dc.d.critical_path_length());
    Table t(std::string("Theorem 9: ") + dc.name + "  (T1=" +
                Table::integer((long long)t1) + ", Tinf=" +
                Table::integer((long long)tinf) + ", parallelism=" +
                Table::num(t1 / tinf, 1) + ")",
            {"P", "mean length", "T1/P + Tinf", "ratio", "speedup T1/T",
             "P <= T1/Tinf?"});
    for (std::size_t p : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
      OnlineStats len;
      for (int rep = 0; rep < reps; ++rep) {
        sim::DedicatedKernel k(p);
        sched::Options opts;
        opts.seed = 1000 * p + rep;
        const auto m = sched::run_work_stealer(dc.d, k, opts);
        if (!m.completed) {
          all_ok = false;
          continue;
        }
        len.add(double(m.length));
      }
      const double bound = t1 / double(p) + tinf;
      const double ratio = len.mean() / bound;
      all_ok = all_ok && ratio < 3.0;
      t.add_row({Table::integer((long long)p), Table::num(len.mean(), 1),
                 Table::num(bound, 1), Table::num(ratio, 3),
                 Table::num(t1 / len.mean(), 2),
                 double(p) <= t1 / tinf ? "linear regime" : "saturated"});
    }
    bench::emit(t, csv);
  }
  std::printf("\n(ratio = measured / (T1/P + Tinf) with constant exactly 1; "
              "the paper reports this constant is ~1 in practice. Speedup "
              "tracks P in the linear regime and flattens once P exceeds "
              "the parallelism.)\n");
  bench::verdict(all_ok, "dedicated executions within 3x of T1/P + Tinf at "
                         "every P (constant ~1)");
  return 0;
}
