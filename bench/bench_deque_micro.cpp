// Experiment E15 — deque microbenchmarks (google-benchmark). Hood coded
// the deque methods in assembly because they are the scheduler's hot path;
// here we measure the implementations' operation costs: owner-side
// push/pop cycles, owner throughput with concurrent thieves, and steal
// throughput under contention. E30 adds the split deque's owner fast
// path: push/pop on the private segment touch no fenced or CAS'd word,
// so BM_OwnerPushPop/BM_OwnerBurst are where the fence elimination shows
// up (tools/bench_regression.py gates the split-vs-ABP ratio).

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

#include "deque/abp_deque.hpp"
#include "deque/abp_growable_deque.hpp"
#include "deque/chase_lev_deque.hpp"
#include "deque/mutex_deque.hpp"
#include "deque/spinlock_deque.hpp"
#include "deque/split_deque.hpp"

namespace {

using Item = std::uint64_t;

// Split-deque pushes stay private until published; flush before any
// thief-side phase. No-op for every other deque.
template <typename D>
void publish_all(D& d) {
  if constexpr (requires { d.transfer(); }) d.transfer();
}

template <typename D>
void BM_OwnerPushPop(benchmark::State& state) {
  D deque(1u << 16);
  Item i = 0;
  for (auto _ : state) {
    deque.push_bottom(++i);
    benchmark::DoNotOptimize(deque.pop_bottom());
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK_TEMPLATE(BM_OwnerPushPop, abp::deque::AbpDeque<Item>);
BENCHMARK_TEMPLATE(BM_OwnerPushPop, abp::deque::AbpGrowableDeque<Item>);
BENCHMARK_TEMPLATE(BM_OwnerPushPop, abp::deque::ChaseLevDeque<Item>);
BENCHMARK_TEMPLATE(BM_OwnerPushPop, abp::deque::SplitDeque<Item>);
BENCHMARK_TEMPLATE(BM_OwnerPushPop, abp::deque::MutexDeque<Item>);
BENCHMARK_TEMPLATE(BM_OwnerPushPop, abp::deque::SpinlockDeque<Item>);

template <typename D>
void BM_OwnerBurst(benchmark::State& state) {
  // Push a burst of 64, drain it from the bottom — the spawn-heavy pattern
  // of fork-join programs.
  D deque(1u << 16);
  for (auto _ : state) {
    for (Item i = 0; i < 64; ++i) deque.push_bottom(i);
    for (Item i = 0; i < 64; ++i)
      benchmark::DoNotOptimize(deque.pop_bottom());
  }
  state.SetItemsProcessed(state.iterations() * 128);
}
BENCHMARK_TEMPLATE(BM_OwnerBurst, abp::deque::AbpDeque<Item>);
BENCHMARK_TEMPLATE(BM_OwnerBurst, abp::deque::AbpGrowableDeque<Item>);
BENCHMARK_TEMPLATE(BM_OwnerBurst, abp::deque::ChaseLevDeque<Item>);
BENCHMARK_TEMPLATE(BM_OwnerBurst, abp::deque::SplitDeque<Item>);
BENCHMARK_TEMPLATE(BM_OwnerBurst, abp::deque::MutexDeque<Item>);
BENCHMARK_TEMPLATE(BM_OwnerBurst, abp::deque::SpinlockDeque<Item>);

template <typename D>
void BM_StealDrain(benchmark::State& state) {
  // Thief-side cost: drain a pre-filled deque from the top.
  const std::size_t n = 4096;
  D deque(n + 8);
  for (auto _ : state) {
    state.PauseTiming();
    for (Item i = 0; i < n; ++i) deque.push_bottom(i);
    publish_all(deque);
    state.ResumeTiming();
    for (Item i = 0; i < n; ++i) benchmark::DoNotOptimize(deque.pop_top());
    state.PauseTiming();
    // Reset the ABP deque's indices via an owner pop on the empty deque.
    benchmark::DoNotOptimize(deque.pop_bottom());
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK_TEMPLATE(BM_StealDrain, abp::deque::AbpDeque<Item>);
BENCHMARK_TEMPLATE(BM_StealDrain, abp::deque::AbpGrowableDeque<Item>);
BENCHMARK_TEMPLATE(BM_StealDrain, abp::deque::ChaseLevDeque<Item>);
BENCHMARK_TEMPLATE(BM_StealDrain, abp::deque::SplitDeque<Item>);
BENCHMARK_TEMPLATE(BM_StealDrain, abp::deque::MutexDeque<Item>);
BENCHMARK_TEMPLATE(BM_StealDrain, abp::deque::SpinlockDeque<Item>);

template <typename D>
void BM_OwnerWithThief(benchmark::State& state) {
  // Owner push/pop throughput while one thief continuously attempts
  // steals — measures the interference cost of the synchronization scheme
  // (CAS traffic vs lock contention).
  D deque(1u << 16);
  std::atomic<bool> stop{false};
  std::thread thief([&] {
    while (!stop.load(std::memory_order_acquire))
      benchmark::DoNotOptimize(deque.pop_top());
  });
  Item i = 0;
  for (auto _ : state) {
    deque.push_bottom(++i);
    benchmark::DoNotOptimize(deque.pop_bottom());
  }
  stop.store(true, std::memory_order_release);
  thief.join();
  // Drain leftovers the thief missed.
  while (deque.pop_bottom().has_value()) {
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK_TEMPLATE(BM_OwnerWithThief, abp::deque::AbpDeque<Item>);
BENCHMARK_TEMPLATE(BM_OwnerWithThief, abp::deque::AbpGrowableDeque<Item>);
BENCHMARK_TEMPLATE(BM_OwnerWithThief, abp::deque::ChaseLevDeque<Item>);
BENCHMARK_TEMPLATE(BM_OwnerWithThief, abp::deque::SplitDeque<Item>);
BENCHMARK_TEMPLATE(BM_OwnerWithThief, abp::deque::MutexDeque<Item>);
BENCHMARK_TEMPLATE(BM_OwnerWithThief, abp::deque::SpinlockDeque<Item>);

template <typename D>
void BM_OwnerWithThieves(benchmark::State& state) {
  // E30: owner fast-path cost as thief pressure scales — Arg(1) is one
  // thief, Arg(3) stands in for P-1 thieves on the 4-core reference box.
  // For the split deque the steady state includes hunger-driven
  // transfers, so this measures the whole publish protocol, not just the
  // private segment. Multithreaded: excluded from the regression guard
  // (the ratio measures the runner's core count, not the code).
  const std::size_t kThieves = static_cast<std::size_t>(state.range(0));
  D deque(1u << 16);
  std::atomic<bool> stop{false};
  std::vector<std::thread> thieves;
  for (std::size_t t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire))
        benchmark::DoNotOptimize(deque.pop_top());
    });
  }
  Item i = 0;
  for (auto _ : state) {
    deque.push_bottom(++i);
    benchmark::DoNotOptimize(deque.pop_bottom());
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : thieves) t.join();
  while (deque.pop_bottom().has_value()) {
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK_TEMPLATE(BM_OwnerWithThieves, abp::deque::AbpDeque<Item>)
    ->Arg(1)
    ->Arg(3);
BENCHMARK_TEMPLATE(BM_OwnerWithThieves, abp::deque::ChaseLevDeque<Item>)
    ->Arg(1)
    ->Arg(3);
BENCHMARK_TEMPLATE(BM_OwnerWithThieves, abp::deque::SplitDeque<Item>)
    ->Arg(1)
    ->Arg(3);

}  // namespace

BENCHMARK_MAIN();
