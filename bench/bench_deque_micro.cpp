// Experiment E15 — deque microbenchmarks (google-benchmark). Hood coded
// the deque methods in assembly because they are the scheduler's hot path;
// here we measure the three implementations' operation costs: owner-side
// push/pop cycles, owner throughput with concurrent thieves, and steal
// throughput under contention.

#include <benchmark/benchmark.h>

#include <atomic>
#include <thread>

#include "deque/abp_deque.hpp"
#include "deque/abp_growable_deque.hpp"
#include "deque/chase_lev_deque.hpp"
#include "deque/mutex_deque.hpp"
#include "deque/spinlock_deque.hpp"

namespace {

using Item = std::uint64_t;

template <typename D>
void BM_OwnerPushPop(benchmark::State& state) {
  D deque(1u << 16);
  Item i = 0;
  for (auto _ : state) {
    deque.push_bottom(++i);
    benchmark::DoNotOptimize(deque.pop_bottom());
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK_TEMPLATE(BM_OwnerPushPop, abp::deque::AbpDeque<Item>);
BENCHMARK_TEMPLATE(BM_OwnerPushPop, abp::deque::AbpGrowableDeque<Item>);
BENCHMARK_TEMPLATE(BM_OwnerPushPop, abp::deque::ChaseLevDeque<Item>);
BENCHMARK_TEMPLATE(BM_OwnerPushPop, abp::deque::MutexDeque<Item>);
BENCHMARK_TEMPLATE(BM_OwnerPushPop, abp::deque::SpinlockDeque<Item>);

template <typename D>
void BM_OwnerBurst(benchmark::State& state) {
  // Push a burst of 64, drain it from the bottom — the spawn-heavy pattern
  // of fork-join programs.
  D deque(1u << 16);
  for (auto _ : state) {
    for (Item i = 0; i < 64; ++i) deque.push_bottom(i);
    for (Item i = 0; i < 64; ++i)
      benchmark::DoNotOptimize(deque.pop_bottom());
  }
  state.SetItemsProcessed(state.iterations() * 128);
}
BENCHMARK_TEMPLATE(BM_OwnerBurst, abp::deque::AbpDeque<Item>);
BENCHMARK_TEMPLATE(BM_OwnerBurst, abp::deque::AbpGrowableDeque<Item>);
BENCHMARK_TEMPLATE(BM_OwnerBurst, abp::deque::ChaseLevDeque<Item>);
BENCHMARK_TEMPLATE(BM_OwnerBurst, abp::deque::MutexDeque<Item>);
BENCHMARK_TEMPLATE(BM_OwnerBurst, abp::deque::SpinlockDeque<Item>);

template <typename D>
void BM_StealDrain(benchmark::State& state) {
  // Thief-side cost: drain a pre-filled deque from the top.
  const std::size_t n = 4096;
  D deque(n + 8);
  for (auto _ : state) {
    state.PauseTiming();
    for (Item i = 0; i < n; ++i) deque.push_bottom(i);
    state.ResumeTiming();
    for (Item i = 0; i < n; ++i) benchmark::DoNotOptimize(deque.pop_top());
    state.PauseTiming();
    // Reset the ABP deque's indices via an owner pop on the empty deque.
    benchmark::DoNotOptimize(deque.pop_bottom());
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK_TEMPLATE(BM_StealDrain, abp::deque::AbpDeque<Item>);
BENCHMARK_TEMPLATE(BM_StealDrain, abp::deque::AbpGrowableDeque<Item>);
BENCHMARK_TEMPLATE(BM_StealDrain, abp::deque::ChaseLevDeque<Item>);
BENCHMARK_TEMPLATE(BM_StealDrain, abp::deque::MutexDeque<Item>);
BENCHMARK_TEMPLATE(BM_StealDrain, abp::deque::SpinlockDeque<Item>);

template <typename D>
void BM_OwnerWithThief(benchmark::State& state) {
  // Owner push/pop throughput while one thief continuously attempts
  // steals — measures the interference cost of the synchronization scheme
  // (CAS traffic vs lock contention).
  D deque(1u << 16);
  std::atomic<bool> stop{false};
  std::thread thief([&] {
    while (!stop.load(std::memory_order_acquire))
      benchmark::DoNotOptimize(deque.pop_top());
  });
  Item i = 0;
  for (auto _ : state) {
    deque.push_bottom(++i);
    benchmark::DoNotOptimize(deque.pop_bottom());
  }
  stop.store(true, std::memory_order_release);
  thief.join();
  // Drain leftovers the thief missed.
  while (deque.pop_bottom().has_value()) {
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK_TEMPLATE(BM_OwnerWithThief, abp::deque::AbpDeque<Item>);
BENCHMARK_TEMPLATE(BM_OwnerWithThief, abp::deque::AbpGrowableDeque<Item>);
BENCHMARK_TEMPLATE(BM_OwnerWithThief, abp::deque::ChaseLevDeque<Item>);
BENCHMARK_TEMPLATE(BM_OwnerWithThief, abp::deque::MutexDeque<Item>);
BENCHMARK_TEMPLATE(BM_OwnerWithThief, abp::deque::SpinlockDeque<Item>);

}  // namespace

BENCHMARK_MAIN();
