// Experiment E8 — Theorem 12: against a fully adaptive adversary,
// yieldToAll guarantees O(T1/PA + Tinf*P/PA). The StarveBusy adversary
// watches the scheduler and never runs processes that hold work; without
// yields it starves the computation forever while burning processor-steps.

#include "bench_common.hpp"
#include "support/stats.hpp"

int main(int argc, char** argv) {
  using namespace abp;
  const bool csv = bench::csv_mode(argc, argv);
  const bool quick = bench::quick_mode(argc, argv);
  bench::banner("E8: bench_thm12_adaptive",
                "Theorem 12 (adaptive adversary + yieldToAll)",
                "an adaptive starvation adversary defeats no-yield outright; "
                "yieldToAll restores O(T1/PA + Tinf*P/PA)");

  const dag::Dag d = dag::fib_dag(quick ? 11 : 14);
  const std::size_t p = 8;
  const int reps = quick ? 3 : 6;
  const std::uint64_t cap = quick ? 400'000 : 1'000'000;

  Table t("Theorem 12: StarveBusy adaptive adversary (P = 8, p_i = 4)",
          {"yield", "completed", "mean length", "mean PA", "ratio",
           "note"});
  bool ok_all = true;
  bool starved_without_yield = true;
  for (const auto yield : {sim::YieldKind::kToAll, sim::YieldKind::kToRandom,
                           sim::YieldKind::kNone}) {
    OnlineStats len, pa, ratio;
    int completed = 0;
    for (int rep = 0; rep < reps; ++rep) {
      sim::StarveBusyKernel k(p, sim::constant_profile(4), 200 + rep);
      sched::Options opts;
      opts.yield = yield;
      opts.seed = 11000 + rep;
      opts.max_rounds = cap;
      const auto m = sched::run_work_stealer(d, k, opts);
      if (!m.completed) continue;
      ++completed;
      len.add(double(m.length));
      pa.add(m.processor_average);
      ratio.add(m.bound_ratio());
    }
    std::string note;
    if (yield == sim::YieldKind::kToAll) {
      ok_all = completed == reps && ratio.mean() < 3.0;
      note = "Theorem 12: bound holds";
    } else if (yield == sim::YieldKind::kNone) {
      starved_without_yield = completed == 0;
      note = "starved (run capped at " + Table::integer((long long)cap) +
             " rounds)";
    } else {
      note = completed == reps ? "completed (no guarantee vs adaptive)"
                               : "partially starved";
    }
    t.add_row({sim::to_string(yield),
               Table::integer(completed) + "/" + Table::integer(reps),
               completed ? Table::num(len.mean(), 1) : "-",
               completed ? Table::num(pa.mean(), 2) : "-",
               completed ? Table::num(ratio.mean(), 3) : "-", note});
  }
  bench::emit(t, csv);
  std::printf("\n(This is the paper's core ablation: the scheduler is "
              "correct without yields, but an adaptive kernel can starve "
              "the single work-holding process forever. yieldToAll forces "
              "every other process — including the work holder — to run "
              "between consecutive steal attempts, restoring the bound.)\n");
  bench::verdict(ok_all && starved_without_yield,
                 "yieldToAll completes within 3x of the bound; the same "
                 "adversary starves the no-yield scheduler");
  return 0;
}
