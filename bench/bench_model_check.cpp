// Experiment E17 — mechanized deque verification (§3.3 and the companion
// verification report [11]): exhaustive exploration of every adversarial
// interleaving of owner and thief instructions against the Figure 5 state
// machine. Reports, per configuration: states explored, safety (each
// pushed node consumed exactly once, none lost), the non-blocking
// property (solo completion bounded from every reachable state), plus two
// ablations — removing the age *tag* re-introduces the ABA duplicate the
// paper warns about, and a spinlock implementation is blocking.

#include "bench_common.hpp"
#include "model/explorer.hpp"
#include "model/linearize.hpp"
#include "support/rng.hpp"

int main(int argc, char** argv) {
  using namespace abp;
  using namespace abp::model;
  const bool csv = bench::csv_mode(argc, argv);
  const bool quick = bench::quick_mode(argc, argv);
  bench::banner("E17: bench_model_check",
                "§3.3 / verification report [11] (deque correctness)",
                "the deque meets the relaxed semantics on any good set of "
                "invocations; it is non-blocking; the tag prevents ABA");

  auto push = [](std::uint8_t v) { return Op{Method::kPushBottom, v}; };
  const Op popb{Method::kPopBottom, 0};
  const Op popt{Method::kPopTop, 0};

  struct Config {
    const char* name;
    std::vector<Script> scripts;
    ExploreOptions opts;
    bool expect_ok;
    bool expect_nonblocking;
  };
  std::vector<Config> configs;

  configs.push_back({"owner+1 thief, 4 ops",
                     {{push(1), push(2), popb, popb}, {popt, popt}},
                     {},
                     true,
                     true});
  configs.push_back({"owner+2 thieves, races on last item",
                     {{push(1), popb, push(2), popb}, {popt}, {popt}},
                     {},
                     true,
                     true});
  configs.push_back(
      {"owner+2 thieves, 5 owner ops",
       {{push(1), push(2), popb, push(3), popb}, {popt, popt}, {popt}},
       {},
       true,
       true});
  if (!quick) {
    configs.push_back({"owner+3 thieves",
                       {{push(1), push(2), push(3), popb, popb},
                        {popt},
                        {popt},
                        {popt}},
                       {},
                       true,
                       true});
    configs.push_back({"owner+1 thief, long script",
                       {{push(1), push(2), popb, push(3), popb, push(4),
                         popb, popb},
                        {popt, popt, popt}},
                       {},
                       true,
                       true});
  }
  {
    ExploreOptions no_tag;
    no_tag.disable_tag = true;
    configs.push_back({"ABLATION: tag disabled (ABA)",
                       {{push(1), popb, push(2), popb}, {popt}},
                       no_tag,
                       false,
                       true});
  }
  {
    ExploreOptions spin;
    spin.use_spinlock = true;
    configs.push_back({"ABLATION: spinlock deque",
                       {{push(1), push(2), popb}, {popt, popt}},
                       spin,
                       true,
                       false});
  }

  Table t("Exhaustive interleaving exploration",
          {"configuration", "states", "terminal", "safety", "non-blocking",
           "max solo steps", "as predicted"});
  bool all_as_predicted = true;
  for (const auto& c : configs) {
    const auto r = explore(c.scripts, c.opts);
    const bool as_predicted =
        !r.truncated && r.ok == c.expect_ok &&
        r.nonblocking == c.expect_nonblocking;
    all_as_predicted = all_as_predicted && as_predicted;
    t.add_row({c.name, Table::integer((long long)r.states),
               Table::integer((long long)r.terminal_states),
               r.ok ? "ok" : ("VIOLATION: " + r.violation),
               r.nonblocking ? "yes" : "NO (blocking state found)",
               Table::integer(r.max_solo_steps),
               as_predicted ? "yes" : "NO"});
  }
  bench::emit(t, csv);

  // Part 2 — linearizability of the relaxed semantics (§3.2): random
  // instruction-level executions, checked against a serial deque witness.
  {
    Xoshiro256 rng(99);
    const int runs = quick ? 500 : 5000;
    int linearizable = 0;
    for (int i = 0; i < runs; ++i) {
      Script owner;
      std::uint8_t value = 1;
      int live = 0;
      for (int op = 0; op < 5; ++op) {
        if (value < 6 && (live == 0 || rng.chance(0.6))) {
          owner.push_back(Op{Method::kPushBottom, value++});
          ++live;
        } else {
          owner.push_back(Op{Method::kPopBottom, 0});
          if (live > 0) --live;
        }
      }
      std::vector<Script> scripts{owner,
                                  {Op{Method::kPopTop, 0},
                                   Op{Method::kPopTop, 0}},
                                  {Op{Method::kPopTop, 0}}};
      linearizable += random_execution_is_linearizable(scripts, 1000 + i);
    }
    int aba_violations = 0;
    const std::vector<Script> aba_scripts = {
        {Op{Method::kPushBottom, 1}, Op{Method::kPopBottom, 0},
         Op{Method::kPushBottom, 2}, Op{Method::kPopBottom, 0}},
        {Op{Method::kPopTop, 0}},
    };
    const int aba_runs = quick ? 1000 : 5000;
    for (int i = 0; i < aba_runs; ++i)
      aba_violations += !random_execution_is_linearizable(
          aba_scripts, 7000 + i, /*disable_tag=*/true);

    Table lin("Relaxed-semantics linearizability (random executions)",
              {"configuration", "runs", "linearizable", "note"});
    lin.add_row({"ABP (tag enabled)", Table::integer(runs),
                 Table::integer(linearizable), "must be all"});
    lin.add_row({"ABP, tag disabled", Table::integer(aba_runs),
                 Table::integer(aba_runs - aba_violations),
                 Table::integer(aba_violations) +
                     " ABA executions caught as non-linearizable"});
    bench::emit(lin, csv);
    all_as_predicted =
        all_as_predicted && linearizable == runs && aba_violations > 0;
  }

  std::printf("\n(The Figure 5 machine passes every interleaving: pops "
              "deliver each node exactly once and any invocation finishes "
              "in <= %d solo steps from any reachable state — the "
              "non-blocking property. Freezing the tag reproduces the "
              "exact ABA failure §3.3 describes; the spinlock variant is "
              "safe but has reachable states where a preempted lock holder "
              "blocks everyone forever.)\n",
              kAbpMaxSteps);
  bench::verdict(all_as_predicted,
                 "relaxed semantics + non-blockingness verified "
                 "exhaustively; both ablations fail exactly as the paper "
                 "predicts");
  return 0;
}
