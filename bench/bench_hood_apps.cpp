// Experiment E16 — Hood-style application study ([9,10]): real fork-join
// applications on the std::thread runtime. On the paper's SMP the headline
// was PA-fold speedup; on this single-CPU host the multiprogrammed regime
// is permanent (PA <= 1 <= P), so the reproduced claim is *robustness*:
// execution time stays near the serial time no matter how oversubscribed
// the process count gets, and background load degrades it only in
// proportion to the CPU share it takes — there is no cliff.

#include <chrono>
#include <cmath>

#include "bench_common.hpp"
#include "runtime/algorithms.hpp"
#include "runtime/background_load.hpp"
#include "runtime/scheduler.hpp"
#include "support/stats.hpp"

namespace {

using namespace abp;
using runtime::TaskGroup;
using runtime::Worker;

long fib_serial(int n) {
  return n < 2 ? n : fib_serial(n - 1) + fib_serial(n - 2);
}

void fib_par(Worker& w, int n, long& out) {
  if (n < 16) {
    out = fib_serial(n);
    return;
  }
  long a = 0, b = 0;
  TaskGroup tg(w);
  tg.spawn([&a, n](Worker& w2) { fib_par(w2, n - 1, a); });
  fib_par(w, n - 2, b);
  tg.wait();
  out = a + b;
}

// N-queens: irregular parallel backtracking search (the "design verifier"
// style workload from the paper's introduction).
int nqueens_serial(int n, int row, unsigned cols, unsigned diag1,
                   unsigned diag2) {
  if (row == n) return 1;
  int count = 0;
  for (int c = 0; c < n; ++c) {
    const unsigned bit = 1u << c;
    if ((cols & bit) || (diag1 & (1u << (row + c))) ||
        (diag2 & (1u << (row - c + n)))) {
      continue;
    }
    count += nqueens_serial(n, row + 1, cols | bit, diag1 | (1u << (row + c)),
                            diag2 | (1u << (row - c + n)));
  }
  return count;
}

void nqueens_par(Worker& w, int n, int row, unsigned cols, unsigned diag1,
                 unsigned diag2, std::atomic<long>& total) {
  if (row >= 2) {  // spawn only the top two levels
    total.fetch_add(nqueens_serial(n, row, cols, diag1, diag2),
                    std::memory_order_relaxed);
    return;
  }
  TaskGroup tg(w);
  for (int c = 0; c < n; ++c) {
    const unsigned bit = 1u << c;
    if ((cols & bit) || (diag1 & (1u << (row + c))) ||
        (diag2 & (1u << (row - c + n)))) {
      continue;
    }
    tg.spawn([=, &total](Worker& w2) {
      nqueens_par(w2, n, row + 1, cols | bit, diag1 | (1u << (row + c)),
                  diag2 | (1u << (row - c + n)), total);
    });
  }
  tg.wait();
}

// Numerical integration via parallel_reduce.
double integrate(Worker& w, std::size_t samples) {
  const double h = 1.0 / double(samples);
  return runtime::parallel_reduce<double>(
             w, 0, samples, 2048, 0.0,
             [h](std::size_t i) {
               const double x = (double(i) + 0.5) * h;
               return 4.0 / (1.0 + x * x);
             },
             [](double a, double b) { return a + b; }) *
         h;
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = bench::csv_mode(argc, argv);
  const bool quick = bench::quick_mode(argc, argv);
  bench::banner("E16: bench_hood_apps", "Hood application studies [9,10]",
                "application performance conforms to T1/PA + ~1*Tinf*P/PA: "
                "oversubscription (P > #cpus) costs almost nothing, and "
                "background load only removes its own CPU share");

  const int fib_n = quick ? 30 : 33;
  const int queens_n = quick ? 10 : 12;
  const std::size_t samples = quick ? 4'000'000 : 12'000'000;
  const int reps = quick ? 2 : 3;

  struct App {
    const char* name;
    std::function<void(runtime::Scheduler&)> run;
  };
  long fib_out = 0;
  std::atomic<long> queens_out{0};
  double pi_out = 0.0;
  const std::vector<App> apps = {
      {"fib", [&](runtime::Scheduler& s) {
         s.run([&](Worker& w) { fib_par(w, fib_n, fib_out); });
       }},
      {"nqueens", [&](runtime::Scheduler& s) {
         queens_out.store(0);
         s.run([&](Worker& w) {
           nqueens_par(w, queens_n, 0, 0, 0, 0, queens_out);
         });
       }},
      {"integrate", [&](runtime::Scheduler& s) {
         s.run([&](Worker& w) { pi_out = integrate(w, samples); });
       }},
  };

  Table t("Hood-style application study (this host: single CPU => "
          "multiprogrammed whenever P > 1)",
          {"app", "P", "bg hogs", "mean secs", "vs P=1", "steals",
           "steal attempts"});
  bool robust = true;
  for (const auto& app : apps) {
    double base = 0.0;
    for (const std::size_t p : {1u, 2u, 4u, 8u}) {
      for (const std::size_t hogs : (p == 4 ? std::vector<std::size_t>{0, 2}
                                            : std::vector<std::size_t>{0})) {
        runtime::BackgroundLoad load;
        if (hogs) load.start(hogs, 1.0);
        OnlineStats secs, steals, attempts;
        for (int rep = 0; rep < reps; ++rep) {
          runtime::SchedulerOptions opts;
          opts.num_workers = p;
          opts.yield = runtime::YieldPolicy::kYield;
          opts.seed = 3 + rep;
          runtime::Scheduler s(opts);
          const auto t0 = std::chrono::steady_clock::now();
          app.run(s);
          const auto t1 = std::chrono::steady_clock::now();
          secs.add(std::chrono::duration<double>(t1 - t0).count());
          const auto st = s.total_stats();
          steals.add(double(st.steals));
          attempts.add(double(st.steal_attempts));
        }
        load.stop();
        if (p == 1 && hogs == 0) base = secs.mean();
        const double rel = base > 0 ? secs.mean() / base : 0.0;
        // Robustness: oversubscription without hogs must not blow up.
        if (hogs == 0 && rel > 2.5) robust = false;
        t.add_row({app.name, Table::integer((long long)p),
                   Table::integer((long long)hogs),
                   Table::num(secs.mean(), 4), Table::num(rel, 2) + "x",
                   Table::num(steals.mean(), 0),
                   Table::num(attempts.mean(), 0)});
      }
    }
  }
  bench::emit(t, csv);
  std::printf("\nResults sanity: fib(%d) = %ld, nqueens(%d) = %ld, "
              "integral of 4/(1+x^2) = %.6f (pi).\n",
              fib_n, fib_out, queens_n, queens_out.load(), pi_out);
  std::printf("(Shape to compare with the paper: time is flat in P on a "
              "fixed processor supply — the scheduler wastes nothing on "
              "phantom processors — and adding CPU hogs costs roughly "
              "their CPU share, not a collapse.)\n");
  bench::verdict(robust, "oversubscribed runs stay within 2.5x of the "
                         "1-worker time on this 1-CPU host (no "
                         "multiprogramming cliff)");
  return 0;
}
