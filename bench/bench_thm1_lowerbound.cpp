// Experiment E3 — Theorem 1: lower bounds on execution-schedule length.
//
// (a) T1/PA is a lower bound for every kernel schedule: we verify the best
//     offline scheduler never beats it.
// (b) There exist kernel schedules forcing length >= Tinf*P/PA, with PA
//     ranging from P down to ~1. We realize the constructed schedule
//     (p_i = 0 for k*Tinf rounds, P for Tinf rounds, then 1) for a sweep
//     of k and confirm even the offline greedy scheduler cannot beat the
//     bound.

#include "bench_common.hpp"
#include "sim/offline.hpp"

int main(int argc, char** argv) {
  using namespace abp;
  const bool csv = bench::csv_mode(argc, argv);
  const bool quick = bench::quick_mode(argc, argv);
  bench::banner("E3: bench_thm1_lowerbound", "Theorem 1 (lower bounds)",
                "every execution schedule has length >= T1/PA; constructed "
                "kernel schedules force length >= Tinf*P/PA with PA from P "
                "down to ~1");

  const std::size_t p = 8;
  struct DagCase {
    const char* name;
    dag::Dag d;
  };
  std::vector<DagCase> dags;
  dags.push_back({"fib(14)", dag::fib_dag(quick ? 11 : 14)});
  dags.push_back({"wide(64x16)", dag::wide(64, 16)});
  dags.push_back({"grid(40x40)", dag::grid_wavefront(40, 40)});

  Table t("Theorem 1: constructed kernel schedules (P = 8, greedy "
          "adversary-best response)",
          {"dag", "k", "T1", "Tinf", "length", "PA", "T1/PA",
           "Tinf*P/PA", "len/max(bounds)"});
  bool all_ok = true;
  for (const auto& c : dags) {
    const double t1 = double(c.d.work());
    const double tinf = double(c.d.critical_path_length());
    for (std::uint64_t k : {0u, 1u, 2u, 3u, 5u, 8u}) {
      const auto profile =
          sim::theorem1_profile(p, k, c.d.critical_path_length());
      const auto r = sim::greedy_schedule(c.d, p, profile);
      const double lb_work = t1 / r.processor_average;
      const double lb_cp = tinf * double(p) / r.processor_average;
      const double lb = std::max(lb_work, lb_cp);
      const double ratio = double(r.length) / lb;
      all_ok = all_ok && double(r.length) + 1e-6 >= lb;
      t.add_row({c.name, Table::integer((long long)k),
                 Table::integer((long long)t1),
                 Table::integer((long long)tinf),
                 Table::integer((long long)r.length),
                 Table::num(r.processor_average, 2), Table::num(lb_work, 1),
                 Table::num(lb_cp, 1), Table::num(ratio, 3)});
    }
  }
  bench::emit(t, csv);

  std::printf("\n(len/max(bounds) >= 1 everywhere means no schedule beats "
              "the Theorem 1 lower bounds; values near 1 show the bounds "
              "are tight.)\n");
  bench::verdict(all_ok, "no execution schedule beat max(T1/PA, Tinf*P/PA) "
                         "under the Theorem 1 construction");
  return 0;
}
