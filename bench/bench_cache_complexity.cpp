// Experiment E28 — cache complexity & rooted-tree steal counts (DESIGN.md
// §14). Two bound shapes from the follow-on literature are measured on the
// rooted-tree dag families and gated:
//
//   * steals = O(P·h) on rooted trees (Leiserson, Schardl & Suksompong,
//     *Upper Bounds on Number of Steals in Rooted Trees*): the measured
//     ensemble-mean successful-steal count divided by P·h stays under a
//     small constant on every family and steal/victim policy;
//   * Q_P <= Q1 + O(M/B · S) (Gu, Napier & Sun, *Analysis of Work-Stealing
//     and Parallel Cache Complexity*): the simulated per-worker LRU cache
//     model's parallel miss count exceeds the sequential cache complexity
//     Q1 by a bounded multiple of the steal count, and the model's
//     per-miss attribution confirms the excess IS the steal migration
//     (steal-attributed misses dominate the residual).
//
// The final table is the deterministic regression guard enrolled in
// bench/baseline.json via tools/bench_regression.py: fixed-seed simulator
// runs whose steal and miss counts are machine-independent. A hardware
// cache-counter table (perf_event_open, bench_common.hpp) is printed for
// context on machines that allow it — informational only, never gated.

#include <cmath>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "runtime/dag_engine.hpp"
#include "support/stats.hpp"

namespace {

struct Policy {
  const char* name;
  abp::sched::StealKind steal;
  abp::sched::VictimKind victim;
};

struct Tree {
  const char* name;
  // Seed-parameterized so the random family varies with the ensemble.
  abp::dag::Dag (*build)(std::uint64_t seed);
};

abp::sched::RunMetrics run_cached(const abp::dag::Dag& d, const Policy& pol,
                                  std::size_t p, std::uint64_t seed) {
  abp::sim::DedicatedKernel k(p);
  abp::sched::Options opts;
  opts.yield = abp::sim::YieldKind::kNone;
  opts.steal = pol.steal;
  opts.victim = pol.victim;
  opts.seed = seed;
  opts.model_cache = true;
  return abp::sched::run_work_stealer(d, k, opts);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace abp;
  using sched::StealKind;
  using sched::VictimKind;
  const bool csv = bench::csv_mode(argc, argv);
  const bool quick = bench::quick_mode(argc, argv);
  bench::banner("E28: bench_cache_complexity",
                "DESIGN.md §14 (cache model & rooted-tree steal bounds)",
                "steals stay O(P*h) on every rooted-tree family, and the "
                "simulated cache misses fit QP <= Q1 + c*S with the "
                "steal-attributed misses explaining the excess");

  const std::vector<Tree> trees = {
      {"kary(2,d6)", [](std::uint64_t) { return dag::full_kary_tree(2, 6, 2); }},
      {"kary(4,d3)", [](std::uint64_t) { return dag::full_kary_tree(4, 3, 2); }},
      {"caterpillar(40x3)",
       [](std::uint64_t) { return dag::caterpillar_tree(40, 3); }},
      {"rrt(800)",
       [](std::uint64_t s) { return dag::random_rooted_tree(s, 800, 4); }},
      {"imbalanced(8)", [](std::uint64_t) { return dag::imbalanced_tree(8); }},
  };
  const std::vector<Policy> policies = {
      {"single/uniform", StealKind::kSingle, VictimKind::kUniform},
      {"half/uniform", StealKind::kStealHalf, VictimKind::kUniform},
      {"single/hint", StealKind::kSingle, VictimKind::kHintAware},
      {"half/hint", StealKind::kStealHalf, VictimKind::kHintAware},
  };

  const std::uint64_t seeds = quick ? 10 : 30;
  const std::size_t p = 8;
  // Gate constants mirror tests/test_cache_bounds.cpp (generous empirical
  // head-room over the measured ensembles, same role as the Theorem 9
  // throw constant).
  const double steal_mean_const = 8.0;
  const double miss_per_steal = 48.0;
  const double miss_slack = 64.0;
  const double dominance_share = 0.5;

  Table t("Cache complexity vs steals (simulated LRU, M=64 blocks, "
          "B=4 nodes/block, P=8)",
          {"tree", "policy", "Q1", "mean QP", "mean steals", "steals/(P*h)",
           "extra/steal", "steal-miss share"});
  bool steals_ok = true, shape_ok = true, attrib_ok = true;
  for (const Tree& tr : trees) {
    for (const Policy& pol : policies) {
      OnlineStats qp_s, steals_s, ratio_s;
      std::vector<double> xs, ys;
      double q1_mean = 0.0;
      double total_steal_misses = 0.0, total_residual = 0.0;
      for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
        const dag::Dag d = tr.build(seed);
        const double h = double(d.critical_path_length());
        const auto serial = run_cached(d, pol, 1, seed);
        const auto m = run_cached(d, pol, p, seed);
        if (!serial.completed || !m.completed) continue;
        const double q1 = double(serial.cache.misses);
        const double qp = double(m.cache.misses);
        const double s = double(m.successful_steals);
        q1_mean += q1 / double(seeds);
        qp_s.add(qp);
        steals_s.add(s);
        ratio_s.add(s / (double(p) * h));
        xs.push_back(s);
        ys.push_back(qp - q1);
        total_steal_misses += double(m.cache.steal_misses);
        total_residual += std::abs((qp - q1) - double(m.cache.steal_misses));
        shape_ok = shape_ok && qp <= q1 + miss_per_steal * s + miss_slack;
      }
      const double slope = fit_through_origin(xs, ys);
      steals_ok = steals_ok && ratio_s.mean() <= steal_mean_const;
      if (steals_s.mean() > 0.0) {
        attrib_ok =
            attrib_ok && total_steal_misses >= dominance_share * total_residual;
      }
      const double share =
          total_steal_misses + total_residual > 0.0
              ? total_steal_misses / (total_steal_misses + total_residual)
              : 1.0;
      t.add_row({tr.name, pol.name, Table::num(q1_mean, 0),
                 Table::num(qp_s.mean(), 0), Table::num(steals_s.mean(), 1),
                 Table::num(ratio_s.mean(), 3), Table::num(slope, 2),
                 Table::num(share, 2)});
    }
  }
  bench::emit(t, csv);
  bench::verdict(steals_ok,
                 "rooted-tree steal counts stay within the O(P*h) shape "
                 "(mean steals <= 8*P*h) on every family and policy");
  bench::verdict(shape_ok,
                 "simulated cache misses fit QP <= Q1 + 48*S + 64 on every "
                 "run (the Q1 + O(M/B*S) shape)");
  bench::verdict(attrib_ok,
                 "steal-attributed misses dominate the residual of "
                 "QP - Q1 (attribution is real, not decorative)");

  // Deterministic regression guard: fixed-seed simulator runs whose steal
  // and miss counts are machine-independent; tools/bench_regression.py
  // extracts this table into bench/baseline.json (metric cache/<scenario>).
  Table guard("cache-regression (deterministic, seed=1, P=8)",
              {"scenario", "steals", "misses"});
  const std::vector<std::pair<const char*, std::size_t>> guard_cases = {
      {"kary2d6/single-uniform", 0},
      {"rrt800/half-uniform", 1},
      {"caterpillar/single-hint", 2},
  };
  {
    const Policy gp[] = {policies[0], policies[1], policies[2]};
    const dag::Dag gd[] = {dag::full_kary_tree(2, 6, 2),
                           dag::random_rooted_tree(1, 800, 4),
                           dag::caterpillar_tree(40, 3)};
    for (const auto& [name, idx] : guard_cases) {
      const auto m = run_cached(gd[idx], gp[idx], p, 1);
      guard.add_row({name, Table::integer(long(m.successful_steals)),
                     Table::integer(long(m.cache.misses))});
    }
  }
  bench::emit(guard, csv);

  // Real-machine hardware counters for one dag-engine run — informational
  // only (perf_event_open is routinely unavailable in CI containers).
  Table hw("Hardware cache counters (perf_event_open; informational)",
           {"workload", "P", "refs", "misses", "counters"});
  {
    bench::PerfCacheCounters perf;
    const dag::Dag d = dag::full_kary_tree(2, quick ? 8 : 10, 4);
    runtime::SchedulerOptions opts;
    opts.num_workers = 4;
    perf.start();
    const auto r = runtime::run_dag(d, opts, 200);
    const auto reading = perf.stop();
    hw.add_row({"kary tree, dag engine", "4",
                std::to_string(reading.references),
                std::to_string(reading.misses),
                perf.available() ? (r.ok ? "available" : "run-failed")
                                 : "unavailable"});
  }
  bench::emit(hw, csv);
  std::printf("\n(hardware rows are context only; the gates above run on "
              "the deterministic simulated model.)\n");
  return 0;
}
