// Experiment E13 — Lemma 7 (Balls and Weighted Bins): throw P balls u.a.r.
// into P weighted bins; then with probability > 1 - 1/((1-beta)e) the bins
// that receive a ball cover at least beta of the total weight. Monte-Carlo
// verification across weight distributions (including the geometric,
// top-heavy distribution that deque potentials actually follow).

#include <cmath>

#include "bench_common.hpp"
#include "support/rng.hpp"

int main(int argc, char** argv) {
  using namespace abp;
  const bool csv = bench::csv_mode(argc, argv);
  const bool quick = bench::quick_mode(argc, argv);
  bench::banner("E13: bench_lemma7_balls", "Lemma 7 (Balls and Weighted "
                "Bins)",
                "Pr[hit weight < beta*W] <= 1/((1-beta)e) for P balls into "
                "P weighted bins");

  const int trials = quick ? 20000 : 100000;
  Xoshiro256 rng(424242);

  struct Dist {
    const char* name;
    std::function<double(std::size_t, std::size_t)> weight;
  };
  const std::vector<Dist> dists = {
      {"uniform", [](std::size_t, std::size_t) { return 1.0; }},
      {"geometric(1/2)",
       [](std::size_t i, std::size_t) { return std::pow(0.5, double(i)); }},
      {"one-heavy",
       [](std::size_t i, std::size_t) { return i == 0 ? 1000.0 : 1.0; }},
      {"linear",
       [](std::size_t i, std::size_t p) { return double(p - i); }},
  };

  Table t("Lemma 7 Monte Carlo",
          {"P", "weights", "beta", "failure rate", "bound 1/((1-b)e)",
           "within bound"});
  bool all_ok = true;
  for (std::size_t p : {4u, 16u, 64u}) {
    for (const auto& dist : dists) {
      std::vector<double> w(p);
      double total = 0.0;
      for (std::size_t i = 0; i < p; ++i) {
        w[i] = dist.weight(i, p);
        total += w[i];
      }
      for (double beta : {0.25, 0.5, 0.75}) {
        int failures = 0;
        std::vector<bool> hit(p);
        for (int trial = 0; trial < trials; ++trial) {
          std::fill(hit.begin(), hit.end(), false);
          for (std::size_t b = 0; b < p; ++b) hit[rng.below(p)] = true;
          double got = 0.0;
          for (std::size_t i = 0; i < p; ++i)
            if (hit[i]) got += w[i];
          if (got < beta * total) ++failures;
        }
        const double rate = double(failures) / trials;
        const double bound = 1.0 / ((1.0 - beta) * std::exp(1.0));
        const bool ok = rate <= bound + 0.01;
        all_ok = all_ok && ok;
        t.add_row({Table::integer((long long)p), dist.name,
                   Table::num(beta, 2), Table::num(rate, 4),
                   Table::num(bound, 4), ok ? "yes" : "NO"});
      }
    }
  }
  bench::emit(t, csv);
  std::printf("\n(The lemma is the probabilistic engine of Lemmas 8/10/11: "
              "P throws hit a constant fraction of the exposed potential "
              "with constant probability, for *any* weight distribution.)\n");
  bench::verdict(all_ok, "Monte-Carlo failure rates within the Lemma 7 "
                         "bound for every (P, distribution, beta)");
  return 0;
}
