// Experiment E25 — throws vs steal policy (DESIGN.md §12). The ABP bound
// charges every throw to the T∞·P/PA overhead term, so a policy that
// avoids throws attacks the bound's constant directly. We run the full
// (steal, victim) policy matrix over seeded ensembles on three workload
// regimes and report mean throws normalized to the single/uniform
// baseline of each workload:
//
//   * deep producer, busy consumers (wide 64x40, help-first spawning) —
//     the steal-half regime: victims hold many long strands, one batch
//     claim replaces up to 8 single steals;
//   * producer-limited (wide 400x6, help-first) — the spine generates one
//     strand per round, deques stay shallow, batching is near-neutral;
//   * deep recursion (fib, work-first) — the penalty regime for BOTH
//     layers: batching over-steals (a claim empties a victim whose owner
//     then becomes a thief), and deterministic ring probing pays extra
//     throws to find the few loaded deques even as it shortens the mean
//     victim distance. The policy layer exists because no single policy
//     wins everywhere; the default stays single/uniform, and the fib rows
//     are reported, not gated (the statistical merge gate in
//     tests/test_steal_bounds.cpp covers the bounded-slack claim).

#include "bench_common.hpp"
#include "support/stats.hpp"

int main(int argc, char** argv) {
  using namespace abp;
  using sched::SpawnOrder;
  using sched::StealKind;
  using sched::VictimKind;
  const bool csv = bench::csv_mode(argc, argv);
  const bool quick = bench::quick_mode(argc, argv);
  bench::banner("E25: bench_steal_policy", "DESIGN.md §12 (steal policies)",
                "steal-half cuts mean throws >= 20% vs single stealing on "
                "the deep-producer workload, and no victim heuristic "
                "increases throws over the uniform draw on the "
                "steal-friendly (help-first) workloads");

  struct Workload {
    const char* name;
    dag::Dag d;
    SpawnOrder order;
  };
  std::vector<Workload> workloads;
  workloads.push_back({"wide(64x40)/help-first", dag::wide(64, 40),
                       SpawnOrder::kParent});
  workloads.push_back({"wide(400x6)/help-first", dag::wide(400, 6),
                       SpawnOrder::kParent});
  workloads.push_back({"fib/work-first", dag::fib_dag(quick ? 13 : 16),
                       SpawnOrder::kChild});

  struct Policy {
    const char* name;
    StealKind steal;
    VictimKind victim;
  };
  const std::vector<Policy> policies = {
      {"single/uniform", StealKind::kSingle, VictimKind::kUniform},
      {"single/nearest", StealKind::kSingle, VictimKind::kNearestNeighbor},
      {"single/last", StealKind::kSingle, VictimKind::kLastVictim},
      {"half/uniform", StealKind::kStealHalf, VictimKind::kUniform},
      {"half/nearest", StealKind::kStealHalf, VictimKind::kNearestNeighbor},
      {"half/last", StealKind::kStealHalf, VictimKind::kLastVictim},
  };

  const std::uint64_t seeds = quick ? 10 : 30;
  const std::size_t p = 8;
  Table t("Throws vs steal policy, dedicated kernel, P=8",
          {"workload", "policy", "mean throws", "vs single/uniform",
           "mean batch size", "mean victim dist"});
  bool all_ok = true;
  double headline_cut = 0.0;
  for (const auto& w : workloads) {
    double base_mean = 0.0;
    for (const auto& pol : policies) {
      OnlineStats throws, batch, dist;
      for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
        sim::DedicatedKernel k(p);
        sched::Options opts;
        opts.yield = sim::YieldKind::kNone;
        opts.spawn_order = w.order;
        opts.steal = pol.steal;
        opts.victim = pol.victim;
        opts.seed = seed;
        const auto m = sched::run_work_stealer(w.d, k, opts);
        if (!m.completed) continue;
        throws.add(double(m.steal_attempts));
        if (m.batch_steals > 0)
          batch.add(double(m.batch_stolen_items) / double(m.batch_steals));
        if (m.successful_steals > 0)
          dist.add(double(m.victim_distance_sum) /
                   double(m.successful_steals));
      }
      if (pol.steal == StealKind::kSingle &&
          pol.victim == VictimKind::kUniform)
        base_mean = throws.mean();
      const double rel = base_mean > 0.0 ? throws.mean() / base_mean : 1.0;
      // Gate the victim heuristics on the help-first workloads only: the
      // fib/work-first rows document the deep-recursion penalty regime
      // (for ring probing as much as for batching) and are reported, not
      // gated. The bounded-slack regression claim lives in
      // tests/test_steal_bounds.cpp.
      if (pol.steal == StealKind::kSingle && w.order == SpawnOrder::kParent)
        all_ok = all_ok && rel <= 1.15;
      if (pol.steal == StealKind::kStealHalf &&
          pol.victim == VictimKind::kUniform &&
          std::string(w.name) == "wide(64x40)/help-first")
        headline_cut = 1.0 - rel;
      t.add_row({w.name, pol.name, Table::num(throws.mean(), 0),
                 Table::num(rel, 3), Table::num(batch.mean(), 2),
                 Table::num(dist.mean(), 2)});
    }
  }
  bench::emit(t, csv);
  std::printf("\n(steal-half cut on the deep-producer workload: %.0f%% "
              "fewer throws than single/uniform; the fib row shows the "
              "over-steal penalty that keeps single/uniform the default.)\n",
              headline_cut * 100.0);
  all_ok = all_ok && headline_cut >= 0.20;
  bench::verdict(all_ok,
                 "steal-half >= 20% fewer throws on the deep-producer "
                 "workload; no victim heuristic regresses single/uniform "
                 "on the help-first workloads");
  return 0;
}
