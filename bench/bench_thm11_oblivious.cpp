// Experiment E7 — Theorem 11: against an oblivious adversary (full schedule
// fixed in advance, including *which* processes run), yieldToRandom
// restores the O(T1/PA + Tinf*P/PA) bound. We run rotating-window
// oblivious schedules that deny long stretches of service to individual
// processes, with and without the yield.

#include "bench_common.hpp"
#include "support/stats.hpp"

int main(int argc, char** argv) {
  using namespace abp;
  const bool csv = bench::csv_mode(argc, argv);
  const bool quick = bench::quick_mode(argc, argv);
  bench::banner("E7: bench_thm11_oblivious",
                "Theorem 11 (oblivious adversary + yieldToRandom)",
                "an off-line adversary choosing both p_i and the identities "
                "is tamed by yieldToRandom: expected time "
                "O(T1/PA + Tinf*P/PA)");

  const dag::Dag d = dag::fib_dag(quick ? 13 : 16);
  const std::size_t p = 16;
  const int reps = quick ? 3 : 8;

  struct ProfileCase {
    const char* name;
    sim::UtilizationProfile profile;
  };
  const std::vector<ProfileCase> profiles = {
      {"window(4)", sim::constant_profile(4)},
      {"window(8)", sim::constant_profile(8)},
      {"bursty(16;10/50)", sim::bursty_profile(16, 10, 50)},
      {"periodic(16;7hi,13lo2)", sim::periodic_profile(16, 7, 2, 13)},
  };

  Table t("Theorem 11: oblivious rotating-window adversary (P = 16)",
          {"profile", "yield", "mean length", "mean PA", "ratio",
           "completed"});
  bool bound_ok = true;
  for (const auto& pc : profiles) {
    for (const auto yield :
         {sim::YieldKind::kToRandom, sim::YieldKind::kNone}) {
      OnlineStats len, pa, ratio;
      int completed = 0;
      for (int rep = 0; rep < reps; ++rep) {
        sim::ObliviousKernel k(p, pc.profile, 50 + rep);
        sched::Options opts;
        opts.yield = yield;
        opts.seed = 9000 + rep;
        opts.max_rounds = 2'000'000;
        const auto m = sched::run_work_stealer(d, k, opts);
        if (!m.completed) continue;
        ++completed;
        len.add(double(m.length));
        pa.add(m.processor_average);
        ratio.add(m.bound_ratio());
      }
      if (yield == sim::YieldKind::kToRandom)
        bound_ok = bound_ok && completed == reps && ratio.mean() < 3.0;
      t.add_row({pc.name, sim::to_string(yield),
                 completed ? Table::num(len.mean(), 1) : "-",
                 completed ? Table::num(pa.mean(), 2) : "-",
                 completed ? Table::num(ratio.mean(), 3) : "-",
                 Table::integer(completed) + "/" + Table::integer(reps)});
    }
  }
  bench::emit(t, csv);
  std::printf("\n(With yieldToRandom every run completes within the bound. "
              "The rotating-window adversary is oblivious, so even without "
              "yields it cannot adapt to starve the work holder forever — "
              "the paper's separation is between what can be *proven*: "
              "without yields only benign adversaries are covered, and an "
              "adaptive adversary defeats no-yield outright, see E8.)\n");
  bench::verdict(bound_ok, "oblivious-adversary executions with "
                           "yieldToRandom all complete within 3x of the "
                           "bound");
  return 0;
}
