// Experiment E29 — multi-tenant overload harness for the admission/
// shedding plane (DESIGN.md §16). The paper's contract is that the work
// stealer makes efficient use of whatever processors the kernel provides;
// this harness asks the complementary service-level question: when the
// *offered load* exceeds what those processors can absorb, does the
// admission controller degrade gracefully — typed rejections, newest-first
// shedding, bounded latency for what it does admit, and quota-protected
// fairness across tenants — instead of collapsing into an unbounded queue?
//
// Method: an open-loop generator (requests arrive on an absolute schedule,
// never back-pressured by completions — the arrival process a closed-loop
// driver cannot produce) drives N tenants at a configured multiple of the
// measured closed-loop capacity:
//
//   1. calibrate   — closed-loop blocking submits measure capacity (req/s)
//   2. under (0.4x) — every admission completes, shed count must be 0
//   3. over  (2.0x) — shedding engages; conservation, p99 and fairness gate
//   4. chaos variants (ABP_CHAOS builds) — the same overload scenario under
//      TenantBurst, WorkerSuspend and a replayed sim::ObliviousKernel
//      adversary; the conservation identities must survive all of them.
//
// The `tenant-regression` table feeds tools/bench_regression.py (p99 and
// shed fraction per scenario); METRICS_JSON / PROMETHEUS_* lines feed
// tools/check_metrics_schema.py --require-tenant.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "obs/metrics.hpp"
#include "obs/pump.hpp"
#include "runtime/tenant/tenant_service.hpp"

#if ABP_CHAOS_ENABLED
#include "chaos/chaos.hpp"
#include "chaos/kernel_replay.hpp"
#include "chaos/policy.hpp"
#include "sim/kernel.hpp"
#endif

namespace {

using namespace abp;
using namespace abp::runtime::tenant;
using Clock = std::chrono::steady_clock;
using std::chrono::milliseconds;

constexpr std::uint32_t kSpinNs = 200'000;  // per node: ~0.8 ms per request
constexpr int kTenants = 4;

RequestShape shape_for(int i) {
  // Alternate the two dag families so both the fan-out/fan-in join path
  // and the sequential pipeline path run under every load level.
  return (i % 2 == 0) ? RequestShape{RequestKind::kFanOut, 4, kSpinNs}
                      : RequestShape{RequestKind::kPipeline, 4, kSpinNs};
}

ServiceOptions make_options() {
  ServiceOptions o;
  o.scheduler.num_workers = 2;
  o.max_outstanding_total = 64;
  o.overload.enabled = true;
  o.overload.poll_ms = 5;
  o.overload.queue_high = 24;
  o.overload.queue_low = 8;
  o.overload.stale_p99_ms = 1.0;
  // 10 polls = 50 ms of sustained backlog before the shedder engages: a
  // transient stall (sanitizer slowdown, a preempted worker on a loaded
  // host) must ride out as queueing, not shedding — only genuinely
  // sustained overload may shed, or the under-capacity shed==0 verdict
  // would be at the mercy of the runner lottery.
  o.overload.sustain_polls = 10;
  return o;
}

// Closed-loop calibration: two blocking submitters keep the pool saturated
// for `dur`; capacity is the completion rate they achieve. The overload
// scenarios are expressed as multiples of this number so the harness lands
// at the same operating point on fast and slow machines alike.
double calibrate_capacity_hz(bool quick) {
  ServiceOptions o = make_options();
  o.overload.enabled = false;  // calibration must never shed
  TenantService svc(o);
  const TenantId t = svc.register_tenant("calibrate", {32, 1});
  svc.start();

  const auto dur = milliseconds(quick ? 200 : 400);
  std::atomic<bool> stop{false};
  auto closed_loop = [&svc, &stop, t] {
    int i = 0;
    while (!stop.load(std::memory_order_acquire))
      (void)svc.submit_blocking(t, shape_for(i++), milliseconds(50));
  };
  const auto t0 = Clock::now();
  std::thread a(closed_loop), b(closed_loop);
  std::this_thread::sleep_for(dur);
  stop.store(true, std::memory_order_release);
  a.join();
  b.join();
  (void)svc.drain(milliseconds(10'000));
  const double secs =
      std::chrono::duration<double>(Clock::now() - t0).count();
  const TenantSnapshot snap = svc.snapshot(t);
  (void)svc.shutdown(milliseconds(5'000));
  const double hz = static_cast<double>(snap.completed) / secs;
  return hz < 50.0 ? 50.0 : hz;  // floor: keep the pacers sane on any host
}

struct RunOutcome {
  std::vector<TenantSnapshot> snaps;   // taken after drain, pre-shutdown
  abp::runtime::tenant::ShutdownReport report;
  std::vector<std::string> metrics_lines;
  std::string prom;
  double duration_s = 0.0;
};

// One open-loop scenario: `kTenants` pacer threads each submit on an
// absolute schedule at `per_tenant_hz` for `dur` (sleep_until, so a pacer
// that falls behind catches up with a burst — arrivals are never throttled
// by the service). Returns everything the caller needs to judge it.
RunOutcome run_open_loop(double per_tenant_hz, milliseconds dur,
                         bool with_pump) {
  TenantService svc(make_options());
  std::vector<TenantId> ids;
  for (int i = 0; i < kTenants; ++i)
    ids.push_back(svc.register_tenant("tenant-" + std::to_string(i),
                                      {16, 1}));
  svc.start();

  obs::MetricsPump::Options popts;
  popts.interval_ms = 20;
  obs::MetricsPump pump(
      [&svc] {
        std::vector<obs::MetricPoint> v = svc.scheduler().live_sample();
        std::vector<obs::MetricPoint> tv = svc.live_sample();
        v.insert(v.end(), tv.begin(), tv.end());
        return v;
      },
      popts);
  if (with_pump) pump.start();

  const auto interval = std::chrono::nanoseconds(
      static_cast<std::uint64_t>(1e9 / per_tenant_hz));
  const int n = static_cast<int>(
      std::chrono::duration<double>(dur).count() * per_tenant_hz);
  const auto t0 = Clock::now();
  std::vector<std::thread> pacers;
  for (int p = 0; p < kTenants; ++p) {
    pacers.emplace_back([&svc, &ids, t0, interval, n, p] {
      for (int i = 0; i < n; ++i) {
        std::this_thread::sleep_until(t0 + i * interval);
        (void)svc.submit(ids[p], shape_for(i));
      }
    });
  }
  for (std::thread& t : pacers) t.join();

  RunOutcome out;
  (void)svc.drain(milliseconds(30'000));
  out.duration_s = std::chrono::duration<double>(Clock::now() - t0).count();
  out.snaps = svc.snapshot_all();
  if (with_pump) {
    pump.stop();
    pump.pump_once();
    out.metrics_lines = pump.stream().drain();
    out.prom = svc.scheduler().prometheus_text() + svc.prometheus_text();
  }
  out.report = svc.shutdown(milliseconds(10'000));
  return out;
}

struct Judged {
  std::uint64_t offered = 0, admitted = 0, completed = 0, shed = 0,
                rejected = 0;
  double p50_ms = 0.0, p95_ms = 0.0, p99_ms = 0.0;
  double shed_frac = 0.0;
  double fairness = 0.0;  // max/min completed per unit weight
  bool conserved = false;
};

Judged judge(const RunOutcome& r) {
  Judged j;
  obs::LatencyHistogram agg;
  double min_share = -1.0, max_share = 0.0;
  for (const TenantSnapshot& s : r.snaps) {
    j.offered += s.submitted;
    j.admitted += s.admitted;
    j.completed += s.completed;
    j.shed += s.shed;
    j.rejected += s.rejected_tenant_quota + s.rejected_global +
                  s.rejected_stopped + s.timed_out;
    agg.merge(s.latency);
    const double share = static_cast<double>(s.completed) /
                         static_cast<double>(s.weight == 0 ? 1 : s.weight);
    if (min_share < 0.0 || share < min_share) min_share = share;
    if (share > max_share) max_share = share;
  }
  j.p50_ms = agg.percentile(50.0) / 1e6;
  j.p95_ms = agg.percentile(95.0) / 1e6;
  j.p99_ms = agg.percentile(99.0) / 1e6;
  j.shed_frac = j.admitted == 0
                    ? 0.0
                    : static_cast<double>(j.shed) /
                          static_cast<double>(j.admitted);
  j.fairness = min_share > 0.0 ? max_share / min_share : 0.0;
  j.conserved = r.report.drained && r.report.consistent;
  for (const TenantRow& row : r.report.tenants)
    j.conserved =
        j.conserved && row.partitions_ok() && row.abandoned_total() == 0;
  return j;
}

void emit_per_tenant(const std::string& title, const RunOutcome& r,
                     bool csv) {
  Table t(title, {"tenant", "offered", "admitted", "completed",
                         "shed", "rejected", "p50 ms", "p95 ms", "p99 ms"});
  for (const TenantSnapshot& s : r.snaps) {
    t.add_row(
        {s.name, Table::integer((long long)s.submitted),
         Table::integer((long long)s.admitted),
         Table::integer((long long)s.completed),
         Table::integer((long long)s.shed),
         Table::integer((long long)(s.rejected_tenant_quota +
                                           s.rejected_global +
                                           s.rejected_stopped + s.timed_out)),
         Table::num(s.latency.percentile(50.0) / 1e6, 2),
         Table::num(s.latency.percentile(95.0) / 1e6, 2),
         Table::num(s.latency.percentile(99.0) / 1e6, 2)});
  }
  bench::emit(t, csv);
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = bench::csv_mode(argc, argv);
  const bool quick = bench::quick_mode(argc, argv);
  bench::banner("E29: bench_multi_tenant",
                "multi-tenant overload SLO harness (DESIGN.md §16)",
                "under open-loop overload the admission plane sheds via "
                "typed statuses only (admitted == completed + shed), keeps "
                "admitted-request p99 bounded and quota-fair across "
                "tenants; under capacity it sheds nothing");

  const double capacity_hz = calibrate_capacity_hz(quick);
  std::printf("calibrated closed-loop capacity: %.0f req/s\n", capacity_hz);

  const milliseconds run_dur(quick ? 500 : 1200);
  const double under_hz = 0.4 * capacity_hz / kTenants;
  const double over_hz = 2.0 * capacity_hz / kTenants;

  // --- scenario 1: under capacity -----------------------------------------
  const RunOutcome under = run_open_loop(under_hz, run_dur, false);
  const Judged ju = judge(under);
  emit_per_tenant("Per-tenant outcome (under-capacity, 0.4x)", under, csv);
  bench::verdict(ju.shed == 0,
                 "under-capacity run sheds nothing (shed == 0)");
  bench::verdict(ju.conserved,
                 "under-capacity conservation: submitted == admitted + "
                 "rejected, admitted == completed + shed, none abandoned");

  // --- scenario 2: sustained overload (with the live metrics plane) -------
  const RunOutcome over = run_open_loop(over_hz, run_dur, true);
  const Judged jo = judge(over);
  emit_per_tenant("Per-tenant outcome (overload, 2.0x)", over, csv);

  Table summary("Open-loop load summary",
                       {"scenario", "offered req/s", "admitted", "completed",
                        "shed", "rejected", "p99 ms", "fairness max/min"});
  summary.add_row({"under-capacity (0.4x)",
                   Table::num(under_hz * kTenants, 0),
                   Table::integer((long long)ju.admitted),
                   Table::integer((long long)ju.completed),
                   Table::integer((long long)ju.shed),
                   Table::integer((long long)ju.rejected),
                   Table::num(ju.p99_ms, 2),
                   Table::num(ju.fairness, 2)});
  summary.add_row({"overload (2.0x)",
                   Table::num(over_hz * kTenants, 0),
                   Table::integer((long long)jo.admitted),
                   Table::integer((long long)jo.completed),
                   Table::integer((long long)jo.shed),
                   Table::integer((long long)jo.rejected),
                   Table::num(jo.p99_ms, 2),
                   Table::num(jo.fairness, 2)});
  bench::emit(summary, csv);

  // Regression rows for tools/bench_regression.py (lower is better for
  // both); thresholds are generous because both metrics are timing-driven
  // on shared runners.
  Table reg("tenant-regression", {"scenario", "p99_ms", "shed_frac"});
  reg.add_row({"overload", Table::num(jo.p99_ms, 3),
               Table::num(jo.shed_frac, 4)});
  reg.add_row({"under-capacity", Table::num(ju.p99_ms, 3),
               Table::num(ju.shed_frac, 4)});
  bench::emit(reg, csv);

  bench::verdict(jo.shed > 0,
                 "overload run engages the shedder (shed > 0, every shed "
                 "a typed CancelReason::kOverload outcome)");
  bench::verdict(jo.conserved,
                 "overload conservation: admitted == completed + shed per "
                 "tenant, nothing lost or double-finalized");
  bench::verdict(jo.p99_ms > 0.0 && jo.p99_ms < 1500.0,
                 "admitted-request p99 stays bounded under 2x overload "
                 "(< 1500 ms)");
  bench::verdict(jo.fairness > 0.0 && jo.fairness < 4.0,
                 "per-unit-weight completion share stays within 4x across "
                 "equally loaded tenants");

  // --- live metrics plane from the overload run ---------------------------
  for (const std::string& line : over.metrics_lines)
    std::printf("METRICS_JSON %s\n", line.c_str());
  std::printf("PROMETHEUS_BEGIN\n%sPROMETHEUS_END\n", over.prom.c_str());

#if ABP_CHAOS_ENABLED
  // --- scenario 3: the same overload point under seeded adversaries -------
  const milliseconds chaos_dur(quick ? 250 : 400);
  {
    chaos::TenantBurstPolicy::Config cfg;
    cfg.p_admit = 0.2;
    cfg.p_requeue = 0.5;
    cfg.p_shed = 0.5;
    chaos::ChaosScope scope(std::make_shared<chaos::TenantBurstPolicy>(cfg),
                            0xE29u);
    const Judged j = judge(run_open_loop(over_hz, chaos_dur, false));
    bench::verdict(j.conserved && j.admitted > 0,
                   "conservation holds under the TenantBurst adversary");
  }
  {
    chaos::WorkerSuspendPolicy::Config cfg;
    cfg.p_suspend = 0.02;
    cfg.min_us = 1;
    cfg.max_us = 300;
    chaos::ChaosScope scope(
        std::make_shared<chaos::WorkerSuspendPolicy>(cfg), 0x5105u);
    const Judged j = judge(run_open_loop(over_hz, chaos_dur, false));
    bench::verdict(j.conserved && j.admitted > 0,
                   "conservation holds under the WorkerSuspend adversary");
  }
  {
    // The paper's oblivious kernel, captured from sim::Kernel and replayed
    // as stalls against the real pool while tenants keep arriving.
    sim::ObliviousKernel kernel(4, sim::periodic_profile(3, 4, 1, 3), 0xE29);
    auto policy = chaos::make_kernel_replay(kernel, /*rounds=*/256,
                                            /*hits_per_round=*/64);
    chaos::ChaosScope scope(policy, 0x0b11u);
    const Judged j = judge(run_open_loop(over_hz, chaos_dur, false));
    bench::verdict(j.conserved && j.admitted > 0,
                   "conservation holds under a replayed oblivious kernel");
  }
#endif

  return 0;
}
