// Experiment E14 — the potential function (§4.2): Lemma 6 (Top-Heavy
// Deques: the top node of every non-empty deque carries >= 3/4 of its
// owner's potential) and the Lemma 8 phase mechanics (over every stretch of
// >= P throws, the potential drops by >= 1/4 with probability > 1/4). We
// trace the potential through live executions.

#include "bench_common.hpp"
#include "sched/potential.hpp"
#include "support/stats.hpp"

int main(int argc, char** argv) {
  using namespace abp;
  const bool csv = bench::csv_mode(argc, argv);
  const bool quick = bench::quick_mode(argc, argv);
  bench::banner("E14: bench_potential", "§4.2 (Lemmas 6 and 8)",
                "potential never increases; top deque node holds >= 3/4 of "
                "its owner's potential; phases of >= P throws lose >= 1/4 "
                "of the potential with probability > 1/4");

  struct DagCase {
    const char* name;
    dag::Dag d;
  };
  std::vector<DagCase> dags;
  dags.push_back({"fib(14)", dag::fib_dag(quick ? 12 : 14)});
  dags.push_back({"wide(40x8)", dag::wide(40, 8)});
  dags.push_back({"grid(20x20)", dag::grid_wavefront(20, 20)});
  dags.push_back({"sp(1500)", dag::random_series_parallel(8, 1500)});

  const std::size_t p = 8;
  const int reps = quick ? 2 : 4;
  Table t("Potential tracing (P = 8, dedicated; means over seeds)",
          {"dag", "monotone?", "min top-fraction (Lemma 6: >= 0.75)",
           "phases", "phase success rate (Lemma 8: > 0.25)"});
  bool all_ok = true;
  for (const auto& dc : dags) {
    bool monotone = true;
    long double min_top = 1.0L;
    OnlineStats success;
    std::size_t phase_count = 0;
    for (int rep = 0; rep < reps; ++rep) {
      sched::PhaseStats phases;
      bool started = false;
      std::uint64_t last_throws = 0;
      long double last_total = -1.0L;
      sched::Options opts;
      opts.seed = 900 + rep;
      opts.after_round = [&](const sched::EngineView& view) {
        const auto b = sched::compute_potential(view);
        if (last_total >= 0.0L && b.total > last_total + 1e-6L)
          monotone = false;
        last_total = b.total;
        if (b.min_top_fraction < min_top) min_top = b.min_top_fraction;
        if (!started) {
          phases.start(b.total);
          started = true;
        } else if (view.throws >= last_throws + p) {
          phases.boundary(b.total);
          last_throws = view.throws;
        }
      };
      sim::DedicatedKernel k(p);
      const auto m = sched::run_work_stealer(dc.d, k, opts);
      if (!m.completed) {
        all_ok = false;
        continue;
      }
      success.add(phases.success_fraction());
      phase_count += phases.phases();
    }
    const bool ok = monotone && double(min_top) >= 0.75 - 1e-9 &&
                    success.mean() > 0.25;
    all_ok = all_ok && ok;
    t.add_row({dc.name, monotone ? "yes" : "NO",
               Table::num(double(min_top), 4),
               Table::integer((long long)phase_count),
               Table::num(success.mean(), 3)});
  }
  bench::emit(t, csv);
  std::printf("\n(These are the three pillars of the §4 analysis, observed "
              "live: monotone potential, top-heavy deques, and phases that "
              "shed a constant potential fraction with constant "
              "probability. In practice far more than 1/4 of phases "
              "succeed.)\n");
  bench::verdict(all_ok, "Lemma 6 and Lemma 8 mechanics hold on every "
                         "traced execution");
  return 0;
}
