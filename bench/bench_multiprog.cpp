// Experiment E20 — the multiprogramming scenario of §1 and the kernel-
// discipline comparison of §5: several computations, each running the
// non-blocking work stealer, share one machine under four kernel
// disciplines (static space partitioning, coscheduling/gang, dynamic
// equipartition, process control). Two reproduced claims:
//   1. §5: "a job mix consisting of one parallel computation and one
//      serial computation cannot be coscheduled efficiently"; process
//      control / dynamic sharing reclaims the waste.
//   2. The paper's own guarantee is discipline-independent: EVERY job
//      finishes within O(T1/PA + Tinf*P/PA) of the processor average PA
//      it actually received — the work stealer makes "efficient use of
//      whatever processor resources are provided by the kernel".

#include "bench_common.hpp"
#include "sched/multiprog.hpp"

int main(int argc, char** argv) {
  using namespace abp;
  using sched::AllocationPolicy;
  const bool csv = bench::csv_mode(argc, argv);
  const bool quick = bench::quick_mode(argc, argv);
  bench::banner("E20: bench_multiprog",
                "§1 job-mix scenario + §5 kernel disciplines",
                "each job meets T1/PA + ~1*Tinf*P/PA under every kernel "
                "discipline; coscheduling wastes the machine on serial "
                "jobs, dynamic disciplines reclaim it");

  const auto parallel_a = dag::fib_dag(quick ? 12 : 14);
  const auto parallel_b = dag::wide(quick ? 48 : 96, 8);
  const auto serial = dag::chain(quick ? 1500 : 4000);

  struct Mix {
    const char* name;
    std::vector<sched::JobSpec> jobs;
  };
  sched::Options job_opts;
  const std::vector<Mix> mixes = {
      {"parallel + serial",
       {{&parallel_a, 8, job_opts}, {&serial, 1, job_opts}}},
      {"parallel + parallel",
       {{&parallel_a, 8, job_opts}, {&parallel_b, 8, job_opts}}},
      {"2 parallel + serial",
       {{&parallel_a, 8, job_opts},
        {&parallel_b, 8, job_opts},
        {&serial, 1, job_opts}}},
  };
  const AllocationPolicy policies[] = {
      AllocationPolicy::kSpacePartition,
      AllocationPolicy::kCoschedule,
      AllocationPolicy::kEquipartition,
      AllocationPolicy::kProcessControl,
  };

  bool bounds_ok = true;
  sim::Round gang_par_finish = 0, pc_par_finish = 0;
  for (const Mix& mix : mixes) {
    Table t(std::string("Job mix: ") + mix.name + "  (machine: 8 processors)",
            {"kernel discipline", "makespan", "utilization",
             "per-job finish rounds", "worst per-job bound ratio"});
    for (const auto policy : policies) {
      sched::MultiprogOptions mo;
      mo.processors = 8;
      mo.policy = policy;
      mo.seed = 5;
      const auto r = sched::run_multiprogrammed(mix.jobs, mo);
      std::string finishes;
      double worst_ratio = 0.0;
      bool all_done = true;
      for (const auto& job : r.jobs) {
        all_done = all_done && job.completed;
        if (!finishes.empty()) finishes += " / ";
        finishes += Table::integer((long long)job.finish_round);
        worst_ratio = std::max(worst_ratio, job.metrics.bound_ratio());
      }
      bounds_ok = bounds_ok && all_done && worst_ratio < 3.0;
      if (std::string(mix.name) == "parallel + serial") {
        if (policy == AllocationPolicy::kCoschedule)
          gang_par_finish = r.jobs[0].finish_round;
        if (policy == AllocationPolicy::kProcessControl)
          pc_par_finish = r.jobs[0].finish_round;
      }
      t.add_row({to_string(policy), Table::integer((long long)r.makespan),
                 Table::num(r.utilization, 3), finishes,
                 Table::num(worst_ratio, 3)});
    }
    bench::emit(t, csv);
  }

  std::printf("\n(§5 separation on the parallel+serial mix: the parallel "
              "job finishes at round %llu under coscheduling vs %llu under "
              "process control — during the serial job's gang quanta 7 of "
              "8 processors idle and the parallel job stalls outright. Yet "
              "in every row the worst per-job bound ratio stays ~1: the "
              "work stealer converts whatever PA each discipline yields "
              "into proportional progress, which is the paper's thesis.)\n",
              (unsigned long long)gang_par_finish,
              (unsigned long long)pc_par_finish);
  bench::verdict(bounds_ok && gang_par_finish > pc_par_finish * 13 / 10,
                 "all jobs complete within the bound under every kernel "
                 "discipline; coscheduling's serial-job waste reproduced");
  return 0;
}
