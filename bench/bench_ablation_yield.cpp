// Experiment E11 — ablation: the yields are essential (§1/§6). Two parts:
// (a) simulator: the adaptive starvation adversary versus each yield
//     discipline (the provable separation, cf. Theorem 12);
// (b) real runtime on this oversubscribed host: thieves that spin without
//     yielding steal CPU time from the workers that hold the work.

#include "bench_common.hpp"
#include "runtime/dag_engine.hpp"
#include "support/stats.hpp"

int main(int argc, char** argv) {
  using namespace abp;
  const bool csv = bench::csv_mode(argc, argv);
  const bool quick = bench::quick_mode(argc, argv);
  bench::banner("E11: bench_ablation_yield",
                "§1/§6 ablation (yields essential)",
                "omitting the yield system calls degrades performance "
                "dramatically for PA < P; an adaptive kernel starves "
                "yield-less schedulers outright");

  // Part (a): simulator, adaptive starver.
  {
    const auto d = dag::fib_dag(quick ? 11 : 13);
    const std::size_t p = 8;
    const std::uint64_t cap = 500'000;
    Table t("(a) Simulator: StarveBusy adaptive kernel, P = 8, p_i = 4",
            {"yield", "completed", "length (mean or cap)",
             "nodes executed"});
    for (const auto y : {sim::YieldKind::kNone, sim::YieldKind::kToRandom,
                         sim::YieldKind::kToAll}) {
      OnlineStats len, nodes;
      int completed = 0;
      const int reps = 3;
      for (int rep = 0; rep < reps; ++rep) {
        sim::StarveBusyKernel k(p, sim::constant_profile(4), 700 + rep);
        sched::Options opts;
        opts.yield = y;
        opts.seed = 31 + rep;
        opts.max_rounds = cap;
        const auto m = sched::run_work_stealer(d, k, opts);
        completed += m.completed;
        len.add(double(m.length));
        nodes.add(double(m.executed_nodes));
      }
      t.add_row({sim::to_string(y),
                 Table::integer(completed) + "/" + Table::integer(reps),
                 Table::num(len.mean(), 0),
                 Table::num(nodes.mean(), 0) + "/" +
                     Table::integer((long long)d.num_nodes())});
    }
    bench::emit(t, csv);
  }

  // Part (b): real runtime, oversubscribed host. The dag must carry enough
  // work to span many scheduling quanta, or thieves never even run.
  {
    const auto d = dag::fib_dag(quick ? 24 : 26);
    const std::uint32_t spin = 50;
    const int reps = quick ? 3 : 5;
    Table t("(b) Real runtime: 8 workers on this host (oversubscribed)",
            {"yield policy", "mean secs", "steal attempts", "vs yield"});
    double yield_secs = 0.0;
    bool direction_ok = true;
    for (const auto y : {runtime::YieldPolicy::kYield,
                         runtime::YieldPolicy::kNone,
                         runtime::YieldPolicy::kSleep}) {
      OnlineStats secs, attempts;
      for (int rep = 0; rep < reps; ++rep) {
        runtime::SchedulerOptions opts;
        opts.num_workers = 8;
        opts.yield = y;
        opts.sleep_us = 50;
        opts.seed = 23 + rep;
        const auto r = runtime::run_dag(d, opts, spin);
        if (!r.ok) continue;
        secs.add(r.seconds);
        attempts.add(double(r.totals.steal_attempts));
      }
      if (y == runtime::YieldPolicy::kYield) yield_secs = secs.mean();
      const double rel = yield_secs > 0 ? secs.mean() / yield_secs : 0.0;
      if (y == runtime::YieldPolicy::kNone && rel < 0.8)
        direction_ok = false;
      t.add_row({to_string(y), Table::num(secs.mean(), 4),
                 Table::num(attempts.mean(), 0), Table::num(rel, 2) + "x"});
    }
    bench::emit(t, csv);
    std::printf("\n(Spinning thieves (yield = none) burn the timeslices the "
                "work holders need; sched_yield hands the processor back — "
                "exactly the effect Hood measured. 'sleep' is our portable "
                "stand-in for the priocntl-based yieldToAll: safest against "
                "starvation, pays some latency.)\n");
    bench::verdict(direction_ok,
                   "yield-less stealing is never faster than yielding on "
                   "the oversubscribed host, and the adaptive adversary "
                   "starves it in the simulator");
  }
  return 0;
}
