// Experiment E9 — the empirical constant (§1/§6): the Hood studies found
// measured time conforms to T1/PA + c*Tinf*P/PA with c ~ 1. We regress
// measured simulated length against the two bound terms across a large
// cross-product of dags, kernels and process counts, and report the fitted
// coefficients c1 (work term) and cinf (critical-path term) plus R^2.

#include "bench_common.hpp"
#include "support/stats.hpp"

int main(int argc, char** argv) {
  using namespace abp;
  const bool csv = bench::csv_mode(argc, argv);
  const bool quick = bench::quick_mode(argc, argv);
  bench::banner("E9: bench_constant_fit",
                "§1/§6 empirical claim (Hood studies [9,10])",
                "measured time ~= c1*T1/PA + cinf*Tinf*P/PA with both "
                "constants ~1 (the paper reports the hidden constant is "
                "'roughly 1')");

  struct DagCase {
    const char* name;
    dag::Dag d;
  };
  std::vector<DagCase> dags;
  dags.push_back({"fib", dag::fib_dag(quick ? 12 : 15)});
  dags.push_back({"grid", dag::grid_wavefront(40, 40)});
  dags.push_back({"wide", dag::wide(128, 16)});
  dags.push_back({"sp", dag::random_series_parallel(12, 4000)});
  dags.push_back({"chain", dag::chain(800)});

  std::vector<double> x_work, x_cp, y_len;
  Table samples("Sample grid (means over seeds)",
                {"dag", "kernel", "P", "PA", "length", "T1/PA",
                 "Tinf*P/PA"});

  const int reps = quick ? 2 : 4;
  for (const auto& dc : dags) {
    const double t1 = double(dc.d.work());
    const double tinf = double(dc.d.critical_path_length());
    for (std::size_t p : {2u, 4u, 8u, 16u, 32u}) {
      struct KernelCase {
        const char* name;
        std::function<std::unique_ptr<sim::Kernel>(int)> make;
        sim::YieldKind yield;
      };
      const std::vector<KernelCase> kernels = {
          {"dedicated",
           [&](int) { return std::make_unique<sim::DedicatedKernel>(p); },
           sim::YieldKind::kNone},
          {"benign-half",
           [&](int rep) {
             return std::make_unique<sim::BenignKernel>(
                 p, sim::constant_profile(std::max<std::size_t>(p / 2, 1)),
                 300 + rep);
           },
           sim::YieldKind::kNone},
          {"benign-bursty",
           [&](int rep) {
             return std::make_unique<sim::BenignKernel>(
                 p, sim::bursty_profile(p, 16, 64), 400 + rep);
           },
           sim::YieldKind::kNone},
          {"oblivious",
           [&](int rep) {
             return std::make_unique<sim::ObliviousKernel>(
                 p, sim::periodic_profile(p, 5, 2, 11), 500 + rep);
           },
           sim::YieldKind::kToRandom},
      };
      for (const auto& kc : kernels) {
        OnlineStats len, pa;
        for (int rep = 0; rep < reps; ++rep) {
          auto kernel = kc.make(rep);
          sched::Options opts;
          opts.yield = kc.yield;
          opts.seed = 131 * p + rep;
          const auto m = sched::run_work_stealer(dc.d, *kernel, opts);
          if (!m.completed) continue;
          len.add(double(m.length));
          pa.add(m.processor_average);
        }
        if (len.count() == 0) continue;
        const double xw = t1 / pa.mean();
        const double xc = tinf * double(p) / pa.mean();
        x_work.push_back(xw);
        x_cp.push_back(xc);
        y_len.push_back(len.mean());
        samples.add_row({dc.name, kc.name, Table::integer((long long)p),
                         Table::num(pa.mean(), 2), Table::num(len.mean(), 0),
                         Table::num(xw, 0), Table::num(xc, 0)});
      }
    }
  }
  if (!quick) bench::emit(samples, csv);

  const auto fit = fit_two_regressors(x_work, x_cp, y_len);
  Table result("Fitted model: length = c1*(T1/PA) + cinf*(Tinf*P/PA)",
               {"coefficient", "fitted", "paper"});
  result.add_row({"c1 (work term)", Table::num(fit.a, 3), "~1"});
  result.add_row({"cinf (critical-path term)", Table::num(fit.b, 3), "~1"});
  result.add_row({"R^2", Table::num(fit.r2, 4), "close to 1"});
  result.add_row({"samples", Table::integer((long long)y_len.size()), "-"});
  bench::emit(result, csv);

  const bool ok = fit.a > 0.5 && fit.a < 2.0 && fit.b > -0.5 && fit.b < 2.0 &&
                  fit.r2 > 0.95;
  bench::verdict(ok, "measured time fits c1*T1/PA + cinf*Tinf*P/PA with "
                     "small constants and high R^2 ('constant roughly 1')");
  return 0;
}
