// Experiment E6 — Theorem 10: against a benign adversary (which picks only
// the number p_i of scheduled processes; identities are uniform random) the
// work stealer needs no yields: expected time O(T1/PA + Tinf*P/PA). We
// sweep utilization profiles and verify the bound ratio stays ~1.

#include "bench_common.hpp"
#include "support/stats.hpp"

int main(int argc, char** argv) {
  using namespace abp;
  const bool csv = bench::csv_mode(argc, argv);
  const bool quick = bench::quick_mode(argc, argv);
  bench::banner("E6: bench_thm10_benign", "Theorem 10 (benign adversary)",
                "with random process choice, no yield is needed: expected "
                "time O(T1/PA + Tinf*P/PA)");

  const dag::Dag d = dag::fib_dag(quick ? 13 : 16);
  const double t1 = double(d.work());
  const double tinf = double(d.critical_path_length());
  const std::size_t p = 16;

  struct ProfileCase {
    const char* name;
    sim::UtilizationProfile profile;
  };
  const std::vector<ProfileCase> profiles = {
      {"dedicated", sim::constant_profile(16)},
      {"half(8)", sim::constant_profile(8)},
      {"quarter(4)", sim::constant_profile(4)},
      {"one(1)", sim::constant_profile(1)},
      {"bursty(16;20/80)", sim::bursty_profile(16, 20, 80)},
      {"periodic(16;5hi,11lo2)", sim::periodic_profile(16, 5, 2, 11)},
      {"ramp(16,step500)", sim::ramp_down_profile(16, 500)},
  };

  const int reps = quick ? 3 : 8;
  Table t("Theorem 10: benign adversary, yield = none (P = 16, fib dag)",
          {"profile", "mean length", "mean PA", "(T1+Tinf*P)/PA",
           "ratio", "mean throws"});
  bool all_ok = true;
  for (const auto& pc : profiles) {
    OnlineStats len, pa, throws, ratio;
    for (int rep = 0; rep < reps; ++rep) {
      sim::BenignKernel k(p, pc.profile, 100 + rep);
      sched::Options opts;
      opts.yield = sim::YieldKind::kNone;
      opts.seed = 7000 + rep;
      const auto m = sched::run_work_stealer(d, k, opts);
      if (!m.completed) {
        all_ok = false;
        continue;
      }
      len.add(double(m.length));
      pa.add(m.processor_average);
      throws.add(double(m.steal_attempts));
      ratio.add(m.bound_ratio());
    }
    all_ok = all_ok && ratio.mean() < 3.0;
    const double bound = (t1 + tinf * double(p)) / pa.mean();
    t.add_row({pc.name, Table::num(len.mean(), 1), Table::num(pa.mean(), 2),
               Table::num(bound, 1), Table::num(ratio.mean(), 3),
               Table::num(throws.mean(), 0)});
  }
  bench::emit(t, csv);
  std::printf("\n(ratio = measured / ((T1 + Tinf*P)/PA) with constant 1 — "
              "the bound holds across the whole utilization range, i.e. the "
              "scheduler exploits whatever PA the kernel provides.)\n");
  bench::verdict(all_ok, "benign-adversary executions within 3x of "
                         "T1/PA + Tinf*P/PA without any yields");
  return 0;
}
