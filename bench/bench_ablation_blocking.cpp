// Experiment E10 — ablation: the *non-blocking* deque is essential under
// multiprogramming (§1/§6). Real std::thread runtime on this host: on a
// single CPU every multi-worker run is multiprogrammed (PA <= 1 < P), so
// whenever a worker is preempted inside a deque operation, a blocking
// deque makes everyone who touches that deque wait for a holder that is
// not running:
//   * spinlock deque (the 1998-style user-level lock the paper targets):
//     waiters spin away entire scheduling quanta;
//   * futex mutex deque: waiters sleep, paying syscalls and context
//     switches on the steal path instead.
// The ABP and Chase-Lev deques are non-blocking: a preempted process can
// never make another process wait.
//
// The reproduced *shape*: blocking deques cost more than non-blocking ones
// and the gap widens as oversubscription (P vs 1 CPU) grows; the
// non-blocking deques stay flat. (The paper's SMP testbed made the same
// ablation "dramatic"; the single-CPU analogue is smaller but one-sided.)

#include "bench_common.hpp"
#include "runtime/dag_engine.hpp"
#include "support/stats.hpp"

int main(int argc, char** argv) {
  using namespace abp;
  const bool csv = bench::csv_mode(argc, argv);
  const bool quick = bench::quick_mode(argc, argv);
  bench::banner("E10: bench_ablation_blocking",
                "§1/§6 ablation (non-blocking deques essential)",
                "replacing the non-blocking deque with a blocking one "
                "degrades performance whenever PA < P, increasingly so "
                "with oversubscription");

  const auto d = dag::fib_dag(quick ? 24 : 26);
  const int reps = quick ? 3 : 7;

  Table t("Real runtime: fib dag on the Figure 3 engine, yielding thieves "
          "(single-CPU host, so PA <= 1 for every P)",
          {"workers P", "deque", "median secs", "vs abp", "steals"});
  bool direction_ok = true;
  for (const std::size_t workers : {2u, 4u, 8u, 16u}) {
    double abp_secs = 0.0;
    for (const auto deque :
         {runtime::DequePolicy::kAbp, runtime::DequePolicy::kChaseLev,
          runtime::DequePolicy::kSpinlock, runtime::DequePolicy::kMutex}) {
      std::vector<double> secs;
      OnlineStats steals;
      for (int rep = 0; rep < reps; ++rep) {
        runtime::SchedulerOptions opts;
        opts.num_workers = workers;
        opts.deque = deque;
        opts.yield = runtime::YieldPolicy::kYield;
        opts.seed = 17 + rep;
        const auto r = runtime::run_dag(d, opts, 0);
        if (!r.ok) continue;
        secs.push_back(r.seconds);
        steals.add(double(r.totals.steals));
      }
      const double med = percentile(secs, 50);
      if (deque == runtime::DequePolicy::kAbp) abp_secs = med;
      const double rel = abp_secs > 0 ? med / abp_secs : 0.0;
      // The paper's direction: at real oversubscription the blocking
      // deques must not beat the non-blocking one (beyond noise).
      if (workers >= 8 &&
          (deque == runtime::DequePolicy::kSpinlock ||
           deque == runtime::DequePolicy::kMutex) &&
          rel < 0.92) {
        direction_ok = false;
      }
      t.add_row({Table::integer((long long)workers), to_string(deque),
                 Table::num(med, 4), Table::num(rel, 2) + "x",
                 Table::num(steals.mean(), 0)});
    }
  }
  bench::emit(t, csv);
  std::printf("\n(Read down each P block: the two non-blocking deques "
              "track each other, while spinlock/mutex grow with P — a "
              "thief that catches a deque whose holder was preempted "
              "mid-operation spins or context-switches through scheduling "
              "quanta. That is the mechanism §1 describes: 'if the kernel "
              "preempts a process, it does not hinder other processes, for "
              "example by holding locks'.)\n");
  bench::verdict(direction_ok,
                 "blocking deques (spinlock/mutex) never beat the "
                 "non-blocking ABP deque under oversubscription, and their "
                 "penalty grows with P");
  return 0;
}
