#pragma once

// Shared helpers for the experiment harnesses (see DESIGN.md §3 and
// EXPERIMENTS.md). Every harness prints one or more tables whose final
// columns compare a measured quantity against the paper's predicted bound.

#include <cstdio>
#include <cstring>
#include <string>

#include "dag/builders.hpp"
#include "sched/work_stealer.hpp"
#include "sim/kernel.hpp"
#include "support/table.hpp"

namespace abp::bench {

inline void banner(const char* experiment, const char* paper_artifact,
                   const char* claim) {
  std::printf("=============================================================="
              "==================\n");
  std::printf("%s — reproduces %s\n", experiment, paper_artifact);
  std::printf("Paper claim: %s\n", claim);
  std::printf("=============================================================="
              "==================\n");
}

inline bool quick_mode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--quick") == 0) return true;
  return false;
}

inline bool csv_mode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--csv") == 0) return true;
  return false;
}

inline void emit(const Table& table, bool csv) {
  table.print();
  if (csv) std::fputs(table.to_csv().c_str(), stdout);
}

inline void verdict(bool ok, const std::string& what) {
  std::printf("[%s] %s\n", ok ? "REPRODUCED" : "MISMATCH", what.c_str());
}

}  // namespace abp::bench
