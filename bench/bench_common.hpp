#pragma once

// Shared helpers for the experiment harnesses (see DESIGN.md §3 and
// EXPERIMENTS.md). Every harness prints one or more tables whose final
// columns compare a measured quantity against the paper's predicted bound.
//
// Machine-readable output: banner()/emit()/verdict() additionally feed a
// per-process collector, and at exit every harness prints one JSON line
//     BENCH_JSON {"bench":...,"ok":...,"verdicts":[...],"tables":[...]}
// so the perf-trajectory tooling can consume every bench without parsing
// the human tables. Set ABP_BENCH_JSON=<path> to also append the line
// (without the prefix) to a file, e.g. BENCH_fig1.json.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "dag/builders.hpp"
#include "obs/export.hpp"
#include "sched/work_stealer.hpp"
#include "sim/kernel.hpp"
#include "support/table.hpp"

#if defined(__linux__) && __has_include(<linux/perf_event.h>)
#define ABP_HAVE_PERF_EVENTS 1
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace abp::bench {

// Collects everything the harness reported; flushed by atexit so no bench
// needs explicit shutdown code.
class JsonLineCollector {
 public:
  static JsonLineCollector& instance() {
    static JsonLineCollector c;
    return c;
  }

  void set_bench(std::string name) {
    arm();
    bench_ = std::move(name);
  }
  void add_table(const Table& t) {
    arm();
    tables_.push_back(t.to_json());
  }
  void add_verdict(bool ok, const std::string& what) {
    arm();
    obs::JsonObjectWriter v;
    v.add("ok", ok);
    v.add("what", what);
    verdicts_.push_back(v.str());
    all_ok_ = all_ok_ && ok;
  }

  std::string line() const {
    auto join = [](const std::vector<std::string>& parts) {
      std::string out = "[";
      for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i) out += ',';
        out += parts[i];
      }
      out += ']';
      return out;
    };
    obs::JsonObjectWriter w;
    w.add("bench", bench_);
    w.add("ok", all_ok_);
    // Provenance: which commit and flag set produced this sample (stamped
    // by CMake; tools/bench_regression.py echoes and records them).
#if defined(ABP_GIT_SHA)
    w.add("git_sha", ABP_GIT_SHA);
#else
    w.add("git_sha", "unknown");
#endif
#if defined(ABP_BUILD_FLAGS)
    w.add("build_flags", ABP_BUILD_FLAGS);
#else
    w.add("build_flags", "unknown");
#endif
    w.add_raw("verdicts", join(verdicts_));
    w.add_raw("tables", join(tables_));
    return w.str();
  }

 private:
  JsonLineCollector() = default;

  void arm() {
    if (armed_) return;
    armed_ = true;
    std::atexit(&JsonLineCollector::flush);
  }

  static void flush() {
    const JsonLineCollector& c = instance();
    const std::string line = c.line();
    std::printf("BENCH_JSON %s\n", line.c_str());
    if (const char* path = std::getenv("ABP_BENCH_JSON")) {
      if (std::FILE* f = std::fopen(path, "a")) {
        std::fprintf(f, "%s\n", line.c_str());
        std::fclose(f);
      }
    }
  }

  bool armed_ = false;
  bool all_ok_ = true;
  std::string bench_;
  std::vector<std::string> verdicts_;
  std::vector<std::string> tables_;
};

inline void banner(const char* experiment, const char* paper_artifact,
                   const char* claim) {
  JsonLineCollector::instance().set_bench(experiment);
  std::printf("=============================================================="
              "==================\n");
  std::printf("%s — reproduces %s\n", experiment, paper_artifact);
  std::printf("Paper claim: %s\n", claim);
  std::printf("=============================================================="
              "==================\n");
}

inline bool quick_mode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--quick") == 0) return true;
  return false;
}

inline bool csv_mode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--csv") == 0) return true;
  return false;
}

inline void emit(const Table& table, bool csv) {
  JsonLineCollector::instance().add_table(table);
  table.print();
  if (csv) std::fputs(table.to_csv().c_str(), stdout);
}

inline void verdict(bool ok, const std::string& what) {
  JsonLineCollector::instance().add_verdict(ok, what);
  std::printf("[%s] %s\n", ok ? "REPRODUCED" : "MISMATCH", what.c_str());
}

// Optional hardware cache-counter backend for the cache-complexity harness
// (E28). Wraps perf_event_open over PERF_COUNT_HW_CACHE_REFERENCES /
// PERF_COUNT_HW_CACHE_MISSES for the whole process (all threads,
// inherited). Real-machine numbers are informational only — never gated —
// because perf_event_paranoid, VMs and CI containers routinely refuse the
// syscall; available() reports whether the counters actually opened and
// every accessor degrades to zero when they did not.
class PerfCacheCounters {
 public:
  struct Reading {
    std::uint64_t references = 0;
    std::uint64_t misses = 0;
  };

#if defined(ABP_HAVE_PERF_EVENTS)
  PerfCacheCounters() {
    ref_fd_ = open_counter(PERF_COUNT_HW_CACHE_REFERENCES);
    miss_fd_ = open_counter(PERF_COUNT_HW_CACHE_MISSES);
    if (ref_fd_ < 0 || miss_fd_ < 0) close_all();
  }
  ~PerfCacheCounters() { close_all(); }
  PerfCacheCounters(const PerfCacheCounters&) = delete;
  PerfCacheCounters& operator=(const PerfCacheCounters&) = delete;

  bool available() const { return ref_fd_ >= 0 && miss_fd_ >= 0; }

  void start() {
    if (!available()) return;
    ioctl(ref_fd_, PERF_EVENT_IOC_RESET, 0);
    ioctl(miss_fd_, PERF_EVENT_IOC_RESET, 0);
    ioctl(ref_fd_, PERF_EVENT_IOC_ENABLE, 0);
    ioctl(miss_fd_, PERF_EVENT_IOC_ENABLE, 0);
  }

  Reading stop() {
    Reading r;
    if (!available()) return r;
    ioctl(ref_fd_, PERF_EVENT_IOC_DISABLE, 0);
    ioctl(miss_fd_, PERF_EVENT_IOC_DISABLE, 0);
    r.references = read_counter(ref_fd_);
    r.misses = read_counter(miss_fd_);
    return r;
  }

 private:
  static int open_counter(std::uint64_t config) {
    perf_event_attr attr;
    std::memset(&attr, 0, sizeof(attr));
    attr.type = PERF_TYPE_HARDWARE;
    attr.size = sizeof(attr);
    attr.config = config;
    attr.disabled = 1;
    attr.inherit = 1;  // count the worker threads we are about to spawn
    attr.exclude_kernel = 1;
    attr.exclude_hv = 1;
    return static_cast<int>(
        syscall(SYS_perf_event_open, &attr, 0, -1, -1, 0));
  }

  static std::uint64_t read_counter(int fd) {
    std::uint64_t value = 0;
    if (read(fd, &value, sizeof(value)) != sizeof(value)) return 0;
    return value;
  }

  void close_all() {
    if (ref_fd_ >= 0) close(ref_fd_);
    if (miss_fd_ >= 0) close(miss_fd_);
    ref_fd_ = miss_fd_ = -1;
  }

  int ref_fd_ = -1;
  int miss_fd_ = -1;
#else
  bool available() const { return false; }
  void start() {}
  Reading stop() { return Reading{}; }
#endif
};

}  // namespace abp::bench
