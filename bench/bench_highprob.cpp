// Experiment E19 — the high-probability bounds: each of Theorems 9-12
// also states that for any eps > 0, with probability >= 1 - eps the
// execution time is O(T1/PA + (Tinf + lg(1/eps))*P/PA). We run many
// seeds, build the empirical distribution of execution length, and check
// that the tail quantiles grow at most logarithmically: the (1 - eps)
// quantile, normalized by the bound with the lg(1/eps) term, must stay
// bounded as eps shrinks geometrically.

#include <cmath>

#include "bench_common.hpp"
#include "support/stats.hpp"

int main(int argc, char** argv) {
  using namespace abp;
  const bool csv = bench::csv_mode(argc, argv);
  const bool quick = bench::quick_mode(argc, argv);
  bench::banner("E19: bench_highprob",
                "Theorems 9-12, high-probability form",
                "for any eps, Pr[T > c*(T1/PA + (Tinf + lg(1/eps))*P/PA)] "
                "<= eps — the execution-time tail decays geometrically");

  const auto d = dag::fib_dag(quick ? 12 : 14);
  const double t1 = double(d.work());
  const double tinf = double(d.critical_path_length());
  const std::size_t p = 16;
  const int runs = quick ? 200 : 1000;

  std::vector<double> lengths;
  lengths.reserve(runs);
  for (int rep = 0; rep < runs; ++rep) {
    sim::DedicatedKernel k(p);
    sched::Options opts;
    opts.seed = 40000 + rep;
    const auto m = sched::run_work_stealer(d, k, opts);
    if (m.completed) lengths.push_back(double(m.length));
  }

  Table t("Tail of the execution-length distribution (dedicated, P = 16, "
          + std::string("fib dag, ") + Table::integer(runs) + " runs)",
          {"eps", "quantile(1-eps)", "bound: T1/P + Tinf + lg(1/eps)",
           "normalized"});
  bool all_ok = true;
  double worst = 0.0;
  for (double eps : {0.5, 0.25, 0.1, 0.05, 0.02, 0.01}) {
    const double q = percentile(lengths, 100.0 * (1.0 - eps));
    const double bound = t1 / double(p) + tinf + std::log2(1.0 / eps);
    const double normalized = q / bound;
    worst = std::max(worst, normalized);
    all_ok = all_ok && normalized < 3.0;
    t.add_row({Table::num(eps, 3), Table::num(q, 1), Table::num(bound, 1),
               Table::num(normalized, 3)});
  }
  bench::emit(t, csv);

  OnlineStats s;
  for (double v : lengths) s.add(v);
  std::printf("\nmean=%.1f stddev=%.1f min=%.0f max=%.0f — the max over "
              "%d runs exceeds the mean by only %.1f%%, i.e. the tail term "
              "lg(1/eps)*P/PA has a tiny constant, matching the "
              "concentration the Chernoff argument of Theorem 9 gives.\n",
              s.mean(), s.stddev(), s.min(), s.max(), runs,
              100.0 * (s.max() / s.mean() - 1.0));
  bench::verdict(all_ok && worst < 3.0,
                 "all tail quantiles within 3x of the high-probability "
                 "bound with constant 1");
  return 0;
}
