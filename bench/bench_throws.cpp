// Experiment E12 — throws (§4.1, Lemma 5 and the proof of Theorem 9): the
// execution time decomposes as O((T1 + throws)/PA), and the expected number
// of throws is O(P * Tinf) in the dedicated case. We measure steal attempts
// (every completed attempt is a throw in the round model) across P and dag
// families and report throws / (P * Tinf).

#include "bench_common.hpp"
#include "support/stats.hpp"

int main(int argc, char** argv) {
  using namespace abp;
  const bool csv = bench::csv_mode(argc, argv);
  const bool quick = bench::quick_mode(argc, argv);
  bench::banner("E12: bench_throws", "Lemma 5 / §4.1 (throws)",
                "execution time is O((T1 + throws)/PA) and E[throws] = "
                "O(P * Tinf): the normalized throw count is bounded by a "
                "constant independent of P and of the dag");

  struct DagCase {
    const char* name;
    dag::Dag d;
  };
  std::vector<DagCase> dags;
  dags.push_back({"fib(16)", dag::fib_dag(quick ? 13 : 16)});
  dags.push_back({"wide(128x16)", dag::wide(128, 16)});
  dags.push_back({"grid(48x48)", dag::grid_wavefront(48, 48)});
  dags.push_back({"sp(6000)", dag::random_series_parallel(5, 6000)});

  const int reps = quick ? 3 : 6;
  Table t("Throws, dedicated kernel",
          {"dag", "P", "Tinf", "mean throws", "throws/(P*Tinf)",
           "time check: (T1+throws)/(PA*len)"});
  bool all_ok = true;
  double worst_norm = 0.0;
  for (const auto& dc : dags) {
    const double t1 = double(dc.d.work());
    const double tinf = double(dc.d.critical_path_length());
    for (std::size_t p : {2u, 4u, 8u, 16u, 32u}) {
      OnlineStats throws, timechk;
      for (int rep = 0; rep < reps; ++rep) {
        sim::DedicatedKernel k(p);
        sched::Options opts;
        opts.seed = 77 * p + rep;
        const auto m = sched::run_work_stealer(dc.d, k, opts);
        if (!m.completed) continue;
        throws.add(double(m.steal_attempts));
        // Lemma 5: len <= (T1 + throws)/PA (+1 round); the check value
        // should be >= ~1.
        timechk.add((t1 + double(m.steal_attempts)) /
                    (m.processor_average * double(m.length)));
      }
      const double norm = throws.mean() / (double(p) * tinf);
      worst_norm = std::max(worst_norm, norm);
      all_ok = all_ok && norm < 12.0 && timechk.mean() > 0.95;
      t.add_row({dc.name, Table::integer((long long)p),
                 Table::integer((long long)tinf),
                 Table::num(throws.mean(), 0), Table::num(norm, 2),
                 Table::num(timechk.mean(), 3)});
    }
  }
  bench::emit(t, csv);
  std::printf("\n(throws/(P*Tinf) stays O(1) across a 16x range of P and "
              "four dag shapes — worst %.2f — matching E[throws] = "
              "O(P*Tinf). The last column verifies Lemma 5's accounting: "
              "every round-token is either work or a throw.)\n",
              worst_norm);
  bench::verdict(all_ok, "throw count O(P*Tinf) with a small constant; "
                         "Lemma 5 token accounting verified");
  return 0;
}
