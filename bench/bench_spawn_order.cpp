// Experiment E18 — design-choice ablation (§3.1): when executing a node
// enables two children, the process pushes one and keeps the other as its
// assigned node. The paper proves its bounds for EITHER choice and notes
// the child-first (depth-first) order "is often used [21, 22, 31]" because
// it follows the natural serial execution order. We measure both orders
// across dag families and kernels: the bound holds for both; the orders
// differ in deque pressure and steal pattern, not in the bound.

#include "bench_common.hpp"
#include "support/stats.hpp"

int main(int argc, char** argv) {
  using namespace abp;
  const bool csv = bench::csv_mode(argc, argv);
  const bool quick = bench::quick_mode(argc, argv);
  bench::banner("E18: bench_spawn_order",
                "§3.1 (spawn handling: either choice works)",
                "the time bound holds whether the process keeps executing "
                "the newly enabled child (depth-first) or the current "
                "thread's continuation");

  struct DagCase {
    const char* name;
    dag::Dag d;
  };
  std::vector<DagCase> dags;
  dags.push_back({"fib(15)", dag::fib_dag(quick ? 12 : 15)});
  dags.push_back({"wide(200x8)", dag::wide(200, 8)});
  dags.push_back({"grid(40x40)", dag::grid_wavefront(40, 40)});
  dags.push_back({"sp(4000)", dag::random_series_parallel(14, 4000)});

  const int reps = quick ? 3 : 6;
  Table t("Spawn order ablation (P = 8; dedicated and benign-half kernels)",
          {"dag", "kernel", "order", "mean length", "ratio", "steals",
           "max deque pressure proxy (pushes)"});
  bool all_ok = true;
  for (const auto& dc : dags) {
    for (int kernel_kind = 0; kernel_kind < 2; ++kernel_kind) {
      for (const auto order :
           {sched::SpawnOrder::kChild, sched::SpawnOrder::kParent}) {
        OnlineStats len, ratio, steals, pushes;
        for (int rep = 0; rep < reps; ++rep) {
          std::unique_ptr<sim::Kernel> kernel;
          if (kernel_kind == 0) {
            kernel = std::make_unique<sim::DedicatedKernel>(8);
          } else {
            kernel = std::make_unique<sim::BenignKernel>(
                8, sim::constant_profile(4), 600 + rep);
          }
          sched::Options opts;
          opts.spawn_order = order;
          opts.seed = 1700 + rep;
          const auto m = sched::run_work_stealer(dc.d, *kernel, opts);
          if (!m.completed) {
            all_ok = false;
            continue;
          }
          len.add(double(m.length));
          ratio.add(m.bound_ratio());
          steals.add(double(m.successful_steals));
          pushes.add(double(m.push_bottom_calls));
        }
        all_ok = all_ok && ratio.mean() < 3.0;
        t.add_row({dc.name, kernel_kind == 0 ? "dedicated" : "benign-half",
                   to_string(order), Table::num(len.mean(), 1),
                   Table::num(ratio.mean(), 3), Table::num(steals.mean(), 0),
                   Table::num(pushes.mean(), 0)});
      }
    }
  }
  bench::emit(t, csv);
  std::printf("\n(Both orders satisfy the bound with nearly identical "
              "constants — Lemma 3 holds for either choice, which is what "
              "the analysis needs. The orders do shift how much work sits "
              "in deques and hence the steal mix, e.g. on wide dags "
              "parent-first piles the spawned children up.)\n");
  bench::verdict(all_ok, "bound ratio < 3 for both spawn orders across all "
                         "dags and kernels");
  return 0;
}
