// Experiment E21 — model-fidelity cross-check: the §4.1 round/milestone
// model implemented at *instruction* granularity (every Figure 3 / Figure 5
// shared-memory instruction is a step; scheduled processes execute 2c
// instructions per round, interleaved; deque operations span rounds and
// popTop CASes genuinely contend). We re-run the Theorem 9/10/12
// experiments in this finer model and compare against the coarse
// action-per-round engine used by E5-E12: the bound shapes, throw scaling
// and the starvation ablation must — and do — agree, validating the coarse
// abstraction the other experiments rely on.

#include "bench_common.hpp"
#include "sched/lockstep.hpp"
#include "support/stats.hpp"

int main(int argc, char** argv) {
  using namespace abp;
  using sim::YieldKind;
  const bool csv = bench::csv_mode(argc, argv);
  const bool quick = bench::quick_mode(argc, argv);
  bench::banner("E21: bench_lockstep",
                "§4.1 round/milestone model (instruction granularity)",
                "the bound O(T1/PA + Tinf*P/PA), the O(P*Tinf) throw count "
                "and the yield ablation all hold at instruction "
                "granularity, with CAS contention between thieves");

  const auto d = dag::fib_dag(quick ? 13 : 16);
  const double tinf = double(d.critical_path_length());
  const int reps = quick ? 3 : 5;

  // Part 1 — Theorem 9 shape in both models.
  {
    Table t("Dedicated kernel: coarse model vs instruction-level model "
            "(fib dag; ratios normalized to T1/PA + Tinf*P/PA)",
            {"P", "coarse ratio", "lockstep ratio", "lockstep throws/(P*Tinf)",
             "CAS failures", "coarse/lockstep rounds"});
    for (std::size_t p : {1u, 2u, 4u, 8u, 16u, 32u}) {
      OnlineStats coarse_ratio, fine_ratio, fine_throws, casf, len_ratio;
      for (int rep = 0; rep < reps; ++rep) {
        sim::DedicatedKernel k1(p), k2(p);
        sched::Options copts;
        copts.seed = 100 * p + rep;
        const auto coarse = sched::run_work_stealer(d, k1, copts);
        sched::LockstepOptions lopts;
        lopts.yield = YieldKind::kNone;
        lopts.seed = 100 * p + rep;
        const auto fine = sched::run_lockstep_work_stealer(d, k2, lopts);
        if (!coarse.completed || !fine.completed) continue;
        coarse_ratio.add(coarse.bound_ratio());
        fine_ratio.add(fine.bound_ratio());
        fine_throws.add(double(fine.throws) / (double(p) * tinf));
        casf.add(double(fine.cas_failures));
        len_ratio.add(double(coarse.length) / double(fine.rounds));
      }
      t.add_row({Table::integer((long long)p),
                 Table::num(coarse_ratio.mean(), 3),
                 Table::num(fine_ratio.mean(), 3),
                 Table::num(fine_throws.mean(), 2),
                 Table::num(casf.mean(), 0),
                 Table::num(len_ratio.mean(), 2)});
    }
    bench::emit(t, csv);
  }

  // Part 2 — adversaries and yields in the fine model.
  bool ok = true;
  {
    Table t("Adversaries at instruction granularity (P = 8)",
            {"kernel", "yield", "completed", "rounds", "PA", "ratio"});
    struct Row {
      const char* kernel;
      const char* note;
      std::function<std::unique_ptr<sim::Kernel>(int)> make;
      YieldKind yield;
      bool expect_completed;
    };
    const std::vector<Row> rows = {
        {"benign bursty", "", [](int rep) {
           return std::make_unique<sim::BenignKernel>(
               8, sim::bursty_profile(8, 10, 40), 500 + rep);
         }, YieldKind::kNone, true},
        {"oblivious periodic", "", [](int rep) {
           return std::make_unique<sim::ObliviousKernel>(
               8, sim::periodic_profile(8, 5, 2, 11), 600 + rep);
         }, YieldKind::kToRandom, true},
        {"adaptive starver", "", [](int rep) {
           return std::make_unique<sim::StarveBusyKernel>(
               8, sim::constant_profile(4), 700 + rep);
         }, YieldKind::kToAll, true},
        {"adaptive starver", "(ablation)", [](int rep) {
           return std::make_unique<sim::StarveBusyKernel>(
               8, sim::constant_profile(4), 700 + rep);
         }, YieldKind::kNone, false},
    };
    for (const auto& row : rows) {
      OnlineStats rounds, pa, ratio;
      int completed = 0;
      for (int rep = 0; rep < reps; ++rep) {
        auto kernel = row.make(rep);
        sched::LockstepOptions opts;
        opts.yield = row.yield;
        opts.seed = 40 + rep;
        opts.max_rounds = 200'000;
        const auto m = sched::run_lockstep_work_stealer(d, *kernel, opts);
        if (!m.completed) continue;
        ++completed;
        rounds.add(double(m.rounds));
        pa.add(m.processor_average);
        ratio.add(m.bound_ratio());
      }
      const bool as_expected =
          row.expect_completed ? (completed == reps && ratio.mean() < 1.0)
                               : completed == 0;
      ok = ok && as_expected;
      t.add_row({std::string(row.kernel) + (row.note[0] ? " " : "") +
                     row.note,
                 sim::to_string(row.yield),
                 Table::integer(completed) + "/" + Table::integer(reps),
                 completed ? Table::num(rounds.mean(), 0) : "-",
                 completed ? Table::num(pa.mean(), 2) : "-",
                 completed ? Table::num(ratio.mean(), 3) : "starved"});
    }
    bench::emit(t, csv);
  }

  std::printf("\n(The instruction-level model adds everything the coarse "
              "model abstracts — deque operations spanning preemptions, "
              "thief-vs-thief CAS contention, §4.1's exact throw "
              "accounting — and every conclusion carries over: flat bound "
              "ratios in P, O(P*Tinf) throws, yields deciding survival "
              "against the adaptive adversary.)\n");
  bench::verdict(ok, "instruction-granular model agrees with the coarse "
                     "model on every reproduced claim");
  return 0;
}
