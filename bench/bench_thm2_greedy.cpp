// Experiment E4 — Theorem 2: greedy execution schedules have length at most
// T1/PA + Tinf*(P-1)/PA, for every kernel schedule. We sweep dag families
// and adversarial utilization profiles, and also run the level-by-level
// (Brent) scheduler, which satisfies the same bound.

#include "bench_common.hpp"
#include "sim/offline.hpp"

int main(int argc, char** argv) {
  using namespace abp;
  const bool csv = bench::csv_mode(argc, argv);
  const bool quick = bench::quick_mode(argc, argv);
  bench::banner("E4: bench_thm2_greedy", "Theorem 2 (greedy schedules)",
                "any greedy execution schedule has length <= "
                "T1/PA + Tinf*(P-1)/PA");

  struct DagCase {
    const char* name;
    dag::Dag d;
  };
  std::vector<DagCase> dags;
  dags.push_back({"fib(15)", dag::fib_dag(quick ? 12 : 15)});
  dags.push_back({"chain(500)", dag::chain(500)});
  dags.push_back({"wide(100x10)", dag::wide(100, 10)});
  dags.push_back({"grid(50x50)", dag::grid_wavefront(50, 50)});
  dags.push_back({"sp(5000)", dag::random_series_parallel(3, 5000)});

  struct ProfileCase {
    const char* name;
    std::size_t p;
    sim::UtilizationProfile profile;
  };
  const std::vector<ProfileCase> profiles = {
      {"dedicated(8)", 8, sim::constant_profile(8)},
      {"const(2)of8", 8, sim::constant_profile(2)},
      {"bursty(8;10/40)", 8, sim::bursty_profile(8, 10, 40)},
      {"periodic(16;3on,9low)", 16, sim::periodic_profile(16, 3, 2, 9)},
      {"ramp(8,step200)", 8, sim::ramp_down_profile(8, 200)},
  };

  Table t("Theorem 2: greedy and Brent schedules vs the bound",
          {"dag", "kernel profile", "scheduler", "length", "PA",
           "bound", "len/bound"});
  bool all_ok = true;
  double worst = 0.0;
  for (const auto& dc : dags) {
    for (const auto& pc : profiles) {
      for (int scheduler = 0; scheduler < 2; ++scheduler) {
        const auto r = scheduler == 0
                           ? sim::greedy_schedule(dc.d, pc.p, pc.profile)
                           : sim::brent_schedule(dc.d, pc.p, pc.profile);
        const double ratio = double(r.length) / r.greedy_upper_bound;
        worst = std::max(worst, ratio);
        all_ok = all_ok && double(r.length) <= r.greedy_upper_bound + 1e-6;
        t.add_row({dc.name, pc.name, scheduler == 0 ? "greedy" : "brent",
                   Table::integer((long long)r.length),
                   Table::num(r.processor_average, 2),
                   Table::num(r.greedy_upper_bound, 1),
                   Table::num(ratio, 3)});
      }
    }
  }
  bench::emit(t, csv);
  std::printf("\nWorst len/bound = %.3f (must be <= 1; Theorem 2 is a "
              "worst-case bound, so values well below 1 are expected on "
              "friendly inputs).\n", worst);
  bench::verdict(all_ok,
                 "every greedy/Brent schedule within T1/PA + Tinf*(P-1)/PA");
  return 0;
}
