// Experiment E1 — Figure 1: the example computation dag.
//
// Rebuilds the paper's running example (two threads; spawn, semaphore-sync
// and join edges) and reports its structure and the measures the paper
// derives from it: work T1, critical-path length Tinf, parallelism.

#include <cstdio>

#include "bench_common.hpp"
#include "dag/enabling.hpp"

int main(int argc, char** argv) {
  using namespace abp;
  const bool csv = bench::csv_mode(argc, argv);
  bench::banner("E1: bench_fig1_dag", "Figure 1 (the example dag)",
                "the example has 11 nodes in 2 threads; T1 = 11, Tinf = 8, "
                "parallelism T1/Tinf = 1.375 (label-level reconstruction; "
                "see DESIGN.md)");

  const dag::Dag d = dag::figure1();

  Table edges("Figure 1 edges", {"edge", "kind", "meaning"});
  auto label = [](dag::NodeId n) { return "v" + std::to_string(n + 1); };
  for (const dag::Edge& e : d.edges()) {
    std::string meaning;
    switch (e.kind) {
      case dag::EdgeKind::kContinue:
        meaning = "thread program order";
        break;
      case dag::EdgeKind::kSpawn:
        meaning = "root thread spawns child thread";
        break;
      case dag::EdgeKind::kJoin:
        meaning = "child joins root (enable-and-die at v11)";
        break;
      case dag::EdgeKind::kSync:
        meaning = "semaphore: v4 executes V, v8 executes P (init 0)";
        break;
    }
    edges.add_row({label(e.from) + " -> " + label(e.to),
                   dag::to_string(e.kind), meaning});
  }
  bench::emit(edges, csv);

  Table measures("Figure 1 measures", {"measure", "value", "paper"});
  measures.add_row({"nodes (work T1)", Table::integer((long long)d.work()),
                    "11"});
  measures.add_row({"threads", Table::integer((long long)d.num_threads()),
                    "2"});
  measures.add_row({"critical path Tinf",
                    Table::integer((long long)d.critical_path_length()),
                    "8"});
  measures.add_row({"parallelism T1/Tinf", Table::num(d.parallelism(), 3),
                    "1.375"});
  measures.add_row({"valid (1 root, 1 final, out-deg<=2)",
                    d.is_valid() ? "yes" : "no", "yes"});
  bench::emit(measures, csv);

  // Serial depth-first execution order and the node weights it induces.
  dag::EnablingTree tree(d);
  tree.set_root(d.root());
  // Execute serially, always preferring the spawned child (depth-first).
  std::vector<std::uint32_t> remaining(d.num_nodes());
  for (dag::NodeId n = 0; n < d.num_nodes(); ++n)
    remaining[n] = d.in_degree(n);
  std::vector<dag::NodeId> stack{d.root()};
  Table exec("Serial depth-first execution (enabling-tree weights)",
             {"step", "node", "enabling depth", "weight w = Tinf - depth"});
  int step = 0;
  while (!stack.empty()) {
    const dag::NodeId n = stack.back();
    stack.pop_back();
    ++step;
    exec.add_row({Table::integer(step), label(n),
                  Table::integer(tree.depth(n)),
                  Table::integer(tree.weight(n))});
    for (const dag::NodeId s : d.successors(n)) {
      if (--remaining[s] == 0) {
        tree.record(n, s);
        stack.push_back(s);
      }
    }
  }
  bench::emit(exec, csv);

  bench::verdict(d.is_valid() && d.work() == 11 &&
                     d.critical_path_length() == 8 && d.num_threads() == 2 &&
                     tree.validate(11).empty(),
                 "Figure 1 reconstruction: T1=11, Tinf=8, 2 threads, valid "
                 "enabling tree");
  return 0;
}
