// Experiment E2 — Figure 2: an example kernel schedule and an execution
// schedule for the Figure 1 dag with P = 3 processes.
//
// The scan garbles the exact check-mark matrix, so we reconstruct a kernel
// schedule with the properties the prose states: 3 processes, a 10-step
// window with idle steps and partial steps, processor average PA = 2.0
// over the window, and a greedy execution schedule that observes all dag
// dependencies. We print both tables in the paper's layout.

#include <cstdio>

#include "bench_common.hpp"
#include "sim/exec.hpp"
#include "sim/offline.hpp"

int main(int argc, char** argv) {
  using namespace abp;
  using sim::ProcId;
  const bool csv = bench::csv_mode(argc, argv);
  bench::banner("E2: bench_fig2_schedules",
                "Figure 2(a,b) (kernel + execution schedules)",
                "a kernel schedule assigns a subset of the 3 processes to "
                "each step (PA = 2.0 over the window); a greedy execution "
                "schedule executes ready nodes and marks scheduled-but-idle "
                "slots 'I'");

  const dag::Dag d = dag::figure1();

  // Reconstructed Figure 2(a): per-step scheduled process sets.
  const std::vector<std::vector<ProcId>> kernel_rounds = {
      {0, 1}, {0, 1, 2}, {}, {1, 2}, {0, 2},
      {0, 1, 2}, {1}, {0, 1}, {0, 1, 2}, {1, 2},
  };

  Table ka("Figure 2(a): kernel schedule (step x process, '#' = scheduled)",
           {"step", "q1", "q2", "q3", "p_i"});
  std::size_t total = 0;
  for (std::size_t r = 0; r < kernel_rounds.size(); ++r) {
    std::vector<std::string> row(5);
    row[0] = Table::integer((long long)r + 1);
    for (std::size_t q = 0; q < 3; ++q) row[q + 1] = " ";
    for (ProcId q : kernel_rounds[r]) row[q + 1] = "#";
    row[4] = Table::integer((long long)kernel_rounds[r].size());
    total += kernel_rounds[r].size();
    ka.add_row(std::move(row));
  }
  bench::emit(ka, csv);
  const double pa_window = double(total) / double(kernel_rounds.size());
  std::printf("\nProcessor average over the %zu-step window: %zu/%zu = %.2f "
              "(paper: 2.0)\n",
              kernel_rounds.size(), total, kernel_rounds.size(), pa_window);

  // Figure 2(b): a greedy execution schedule for this kernel schedule. We
  // drive the offline greedy scheduler with the per-step counts and map
  // slots onto the scheduled processes.
  sim::OfflineOptions opts;
  opts.keep_record = true;
  auto profile = [&](sim::Round r) -> std::size_t {
    return kernel_rounds[(r - 1) % kernel_rounds.size()].size();
  };
  const auto result = sim::greedy_schedule(d, 3, profile, opts);

  Table xb("Figure 2(b): greedy execution schedule ('I' = idle)",
           {"step", "q1", "q2", "q3"});
  {
    std::size_t i = 0;
    const auto& actions = result.record.actions();
    for (sim::Round r = 1; r <= result.length; ++r) {
      const auto& procs = kernel_rounds[(r - 1) % kernel_rounds.size()];
      std::vector<std::string> row(4);
      row[0] = Table::integer((long long)r);
      for (std::size_t q = 0; q < 3; ++q) row[q + 1] = " ";
      std::size_t slot = 0;
      while (i < actions.size() && actions[i].round == r) {
        const ProcId q = procs[slot % std::max<std::size_t>(procs.size(), 1)];
        row[q + 1] = actions[i].kind == sim::ActionKind::kExecute
                         ? "v" + std::to_string(actions[i].node + 1)
                         : "I";
        ++slot;
        ++i;
      }
      xb.add_row(std::move(row));
    }
  }
  bench::emit(xb, csv);

  std::printf("\nExecution schedule length: %llu steps; PA over the "
              "execution: %.2f; idle tokens: %llu\n",
              (unsigned long long)result.length, result.processor_average,
              (unsigned long long)result.idle_tokens);

  const std::string err = result.record.validate(d);
  bench::verdict(err.empty() && pa_window == 2.0,
                 "valid greedy execution schedule for the Figure 1 dag under "
                 "a 3-process kernel schedule with window PA = 2.0" +
                     (err.empty() ? "" : (" [" + err + "]")));
  return 0;
}
