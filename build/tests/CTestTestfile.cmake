# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_dag[1]_include.cmake")
include("/root/repo/build/tests/test_dag_builders[1]_include.cmake")
include("/root/repo/build/tests/test_dag_dot[1]_include.cmake")
include("/root/repo/build/tests/test_enabling[1]_include.cmake")
include("/root/repo/build/tests/test_deque_serial[1]_include.cmake")
include("/root/repo/build/tests/test_deque_concurrent[1]_include.cmake")
include("/root/repo/build/tests/test_model[1]_include.cmake")
include("/root/repo/build/tests/test_model_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_linearize[1]_include.cmake")
include("/root/repo/build/tests/test_sim_kernel[1]_include.cmake")
include("/root/repo/build/tests/test_sim_yield[1]_include.cmake")
include("/root/repo/build/tests/test_sim_offline[1]_include.cmake")
include("/root/repo/build/tests/test_sched[1]_include.cmake")
include("/root/repo/build/tests/test_sched_bounds[1]_include.cmake")
include("/root/repo/build/tests/test_multiprog[1]_include.cmake")
include("/root/repo/build/tests/test_lockstep[1]_include.cmake")
include("/root/repo/build/tests/test_structural[1]_include.cmake")
include("/root/repo/build/tests/test_potential[1]_include.cmake")
include("/root/repo/build/tests/test_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_runtime_extras[1]_include.cmake")
include("/root/repo/build/tests/test_dag_engine[1]_include.cmake")
include("/root/repo/build/tests/test_fiber[1]_include.cmake")
include("/root/repo/build/tests/test_fiber_sync[1]_include.cmake")
