file(REMOVE_RECURSE
  "CMakeFiles/test_dag_engine.dir/test_dag_engine.cpp.o"
  "CMakeFiles/test_dag_engine.dir/test_dag_engine.cpp.o.d"
  "test_dag_engine"
  "test_dag_engine.pdb"
  "test_dag_engine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dag_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
