# Empty dependencies file for test_dag_engine.
# This may be replaced when dependencies are built.
