# Empty dependencies file for test_dag_builders.
# This may be replaced when dependencies are built.
