file(REMOVE_RECURSE
  "CMakeFiles/test_dag_builders.dir/test_dag_builders.cpp.o"
  "CMakeFiles/test_dag_builders.dir/test_dag_builders.cpp.o.d"
  "test_dag_builders"
  "test_dag_builders.pdb"
  "test_dag_builders[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dag_builders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
