# Empty dependencies file for test_sim_yield.
# This may be replaced when dependencies are built.
