file(REMOVE_RECURSE
  "CMakeFiles/test_sim_yield.dir/test_sim_yield.cpp.o"
  "CMakeFiles/test_sim_yield.dir/test_sim_yield.cpp.o.d"
  "test_sim_yield"
  "test_sim_yield.pdb"
  "test_sim_yield[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_yield.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
