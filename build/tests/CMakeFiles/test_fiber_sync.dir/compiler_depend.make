# Empty compiler generated dependencies file for test_fiber_sync.
# This may be replaced when dependencies are built.
