file(REMOVE_RECURSE
  "CMakeFiles/test_fiber_sync.dir/test_fiber_sync.cpp.o"
  "CMakeFiles/test_fiber_sync.dir/test_fiber_sync.cpp.o.d"
  "test_fiber_sync"
  "test_fiber_sync.pdb"
  "test_fiber_sync[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fiber_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
