# Empty dependencies file for test_dag_dot.
# This may be replaced when dependencies are built.
