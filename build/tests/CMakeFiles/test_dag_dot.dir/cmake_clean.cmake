file(REMOVE_RECURSE
  "CMakeFiles/test_dag_dot.dir/test_dag_dot.cpp.o"
  "CMakeFiles/test_dag_dot.dir/test_dag_dot.cpp.o.d"
  "test_dag_dot"
  "test_dag_dot.pdb"
  "test_dag_dot[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dag_dot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
