file(REMOVE_RECURSE
  "CMakeFiles/test_runtime_extras.dir/test_runtime_extras.cpp.o"
  "CMakeFiles/test_runtime_extras.dir/test_runtime_extras.cpp.o.d"
  "test_runtime_extras"
  "test_runtime_extras.pdb"
  "test_runtime_extras[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_runtime_extras.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
