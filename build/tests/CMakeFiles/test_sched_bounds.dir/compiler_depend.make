# Empty compiler generated dependencies file for test_sched_bounds.
# This may be replaced when dependencies are built.
