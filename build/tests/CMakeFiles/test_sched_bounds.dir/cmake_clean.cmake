file(REMOVE_RECURSE
  "CMakeFiles/test_sched_bounds.dir/test_sched_bounds.cpp.o"
  "CMakeFiles/test_sched_bounds.dir/test_sched_bounds.cpp.o.d"
  "test_sched_bounds"
  "test_sched_bounds.pdb"
  "test_sched_bounds[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sched_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
