# Empty dependencies file for test_sim_offline.
# This may be replaced when dependencies are built.
