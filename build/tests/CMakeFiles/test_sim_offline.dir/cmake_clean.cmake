file(REMOVE_RECURSE
  "CMakeFiles/test_sim_offline.dir/test_sim_offline.cpp.o"
  "CMakeFiles/test_sim_offline.dir/test_sim_offline.cpp.o.d"
  "test_sim_offline"
  "test_sim_offline.pdb"
  "test_sim_offline[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_offline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
