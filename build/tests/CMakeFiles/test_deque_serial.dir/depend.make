# Empty dependencies file for test_deque_serial.
# This may be replaced when dependencies are built.
