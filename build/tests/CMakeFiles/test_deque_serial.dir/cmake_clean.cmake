file(REMOVE_RECURSE
  "CMakeFiles/test_deque_serial.dir/test_deque_serial.cpp.o"
  "CMakeFiles/test_deque_serial.dir/test_deque_serial.cpp.o.d"
  "test_deque_serial"
  "test_deque_serial.pdb"
  "test_deque_serial[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_deque_serial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
