file(REMOVE_RECURSE
  "CMakeFiles/test_deque_concurrent.dir/test_deque_concurrent.cpp.o"
  "CMakeFiles/test_deque_concurrent.dir/test_deque_concurrent.cpp.o.d"
  "test_deque_concurrent"
  "test_deque_concurrent.pdb"
  "test_deque_concurrent[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_deque_concurrent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
