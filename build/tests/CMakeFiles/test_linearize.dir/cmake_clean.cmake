file(REMOVE_RECURSE
  "CMakeFiles/test_linearize.dir/test_linearize.cpp.o"
  "CMakeFiles/test_linearize.dir/test_linearize.cpp.o.d"
  "test_linearize"
  "test_linearize.pdb"
  "test_linearize[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_linearize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
