# Empty dependencies file for test_enabling.
# This may be replaced when dependencies are built.
