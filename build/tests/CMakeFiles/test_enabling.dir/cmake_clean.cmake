file(REMOVE_RECURSE
  "CMakeFiles/test_enabling.dir/test_enabling.cpp.o"
  "CMakeFiles/test_enabling.dir/test_enabling.cpp.o.d"
  "test_enabling"
  "test_enabling.pdb"
  "test_enabling[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_enabling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
