# Empty dependencies file for bench_throws.
# This may be replaced when dependencies are built.
