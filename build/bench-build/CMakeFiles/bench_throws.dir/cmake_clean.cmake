file(REMOVE_RECURSE
  "../bench/bench_throws"
  "../bench/bench_throws.pdb"
  "CMakeFiles/bench_throws.dir/bench_throws.cpp.o"
  "CMakeFiles/bench_throws.dir/bench_throws.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_throws.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
