# Empty compiler generated dependencies file for bench_multiprog.
# This may be replaced when dependencies are built.
