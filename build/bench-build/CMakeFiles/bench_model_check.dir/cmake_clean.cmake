file(REMOVE_RECURSE
  "../bench/bench_model_check"
  "../bench/bench_model_check.pdb"
  "CMakeFiles/bench_model_check.dir/bench_model_check.cpp.o"
  "CMakeFiles/bench_model_check.dir/bench_model_check.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_model_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
