file(REMOVE_RECURSE
  "../bench/bench_lemma7_balls"
  "../bench/bench_lemma7_balls.pdb"
  "CMakeFiles/bench_lemma7_balls.dir/bench_lemma7_balls.cpp.o"
  "CMakeFiles/bench_lemma7_balls.dir/bench_lemma7_balls.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lemma7_balls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
