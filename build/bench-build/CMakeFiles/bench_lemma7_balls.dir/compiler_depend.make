# Empty compiler generated dependencies file for bench_lemma7_balls.
# This may be replaced when dependencies are built.
