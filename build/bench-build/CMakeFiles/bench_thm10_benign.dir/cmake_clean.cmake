file(REMOVE_RECURSE
  "../bench/bench_thm10_benign"
  "../bench/bench_thm10_benign.pdb"
  "CMakeFiles/bench_thm10_benign.dir/bench_thm10_benign.cpp.o"
  "CMakeFiles/bench_thm10_benign.dir/bench_thm10_benign.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm10_benign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
