# Empty dependencies file for bench_constant_fit.
# This may be replaced when dependencies are built.
