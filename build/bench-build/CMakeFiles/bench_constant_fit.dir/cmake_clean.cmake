file(REMOVE_RECURSE
  "../bench/bench_constant_fit"
  "../bench/bench_constant_fit.pdb"
  "CMakeFiles/bench_constant_fit.dir/bench_constant_fit.cpp.o"
  "CMakeFiles/bench_constant_fit.dir/bench_constant_fit.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_constant_fit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
