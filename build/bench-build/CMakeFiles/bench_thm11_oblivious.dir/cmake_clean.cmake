file(REMOVE_RECURSE
  "../bench/bench_thm11_oblivious"
  "../bench/bench_thm11_oblivious.pdb"
  "CMakeFiles/bench_thm11_oblivious.dir/bench_thm11_oblivious.cpp.o"
  "CMakeFiles/bench_thm11_oblivious.dir/bench_thm11_oblivious.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm11_oblivious.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
