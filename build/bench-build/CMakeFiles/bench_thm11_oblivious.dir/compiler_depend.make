# Empty compiler generated dependencies file for bench_thm11_oblivious.
# This may be replaced when dependencies are built.
