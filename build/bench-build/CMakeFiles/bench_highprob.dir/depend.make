# Empty dependencies file for bench_highprob.
# This may be replaced when dependencies are built.
