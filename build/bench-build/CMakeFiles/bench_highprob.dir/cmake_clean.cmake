file(REMOVE_RECURSE
  "../bench/bench_highprob"
  "../bench/bench_highprob.pdb"
  "CMakeFiles/bench_highprob.dir/bench_highprob.cpp.o"
  "CMakeFiles/bench_highprob.dir/bench_highprob.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_highprob.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
