# Empty dependencies file for bench_thm12_adaptive.
# This may be replaced when dependencies are built.
