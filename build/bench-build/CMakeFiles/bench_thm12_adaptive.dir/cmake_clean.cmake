file(REMOVE_RECURSE
  "../bench/bench_thm12_adaptive"
  "../bench/bench_thm12_adaptive.pdb"
  "CMakeFiles/bench_thm12_adaptive.dir/bench_thm12_adaptive.cpp.o"
  "CMakeFiles/bench_thm12_adaptive.dir/bench_thm12_adaptive.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm12_adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
