file(REMOVE_RECURSE
  "../bench/bench_hood_apps"
  "../bench/bench_hood_apps.pdb"
  "CMakeFiles/bench_hood_apps.dir/bench_hood_apps.cpp.o"
  "CMakeFiles/bench_hood_apps.dir/bench_hood_apps.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hood_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
