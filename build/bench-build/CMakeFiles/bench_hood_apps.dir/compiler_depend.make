# Empty compiler generated dependencies file for bench_hood_apps.
# This may be replaced when dependencies are built.
