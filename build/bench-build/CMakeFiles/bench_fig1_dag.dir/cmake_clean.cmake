file(REMOVE_RECURSE
  "../bench/bench_fig1_dag"
  "../bench/bench_fig1_dag.pdb"
  "CMakeFiles/bench_fig1_dag.dir/bench_fig1_dag.cpp.o"
  "CMakeFiles/bench_fig1_dag.dir/bench_fig1_dag.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_dag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
