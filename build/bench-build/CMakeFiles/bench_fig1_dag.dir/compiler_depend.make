# Empty compiler generated dependencies file for bench_fig1_dag.
# This may be replaced when dependencies are built.
