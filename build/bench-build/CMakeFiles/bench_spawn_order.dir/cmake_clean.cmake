file(REMOVE_RECURSE
  "../bench/bench_spawn_order"
  "../bench/bench_spawn_order.pdb"
  "CMakeFiles/bench_spawn_order.dir/bench_spawn_order.cpp.o"
  "CMakeFiles/bench_spawn_order.dir/bench_spawn_order.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_spawn_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
