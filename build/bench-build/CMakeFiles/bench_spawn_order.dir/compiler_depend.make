# Empty compiler generated dependencies file for bench_spawn_order.
# This may be replaced when dependencies are built.
