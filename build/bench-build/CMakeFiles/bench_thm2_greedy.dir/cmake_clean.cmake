file(REMOVE_RECURSE
  "../bench/bench_thm2_greedy"
  "../bench/bench_thm2_greedy.pdb"
  "CMakeFiles/bench_thm2_greedy.dir/bench_thm2_greedy.cpp.o"
  "CMakeFiles/bench_thm2_greedy.dir/bench_thm2_greedy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm2_greedy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
