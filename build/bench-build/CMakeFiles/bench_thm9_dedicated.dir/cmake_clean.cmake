file(REMOVE_RECURSE
  "../bench/bench_thm9_dedicated"
  "../bench/bench_thm9_dedicated.pdb"
  "CMakeFiles/bench_thm9_dedicated.dir/bench_thm9_dedicated.cpp.o"
  "CMakeFiles/bench_thm9_dedicated.dir/bench_thm9_dedicated.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm9_dedicated.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
