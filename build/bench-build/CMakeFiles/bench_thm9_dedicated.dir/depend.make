# Empty dependencies file for bench_thm9_dedicated.
# This may be replaced when dependencies are built.
