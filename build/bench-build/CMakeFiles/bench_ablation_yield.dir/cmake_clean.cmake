file(REMOVE_RECURSE
  "../bench/bench_ablation_yield"
  "../bench/bench_ablation_yield.pdb"
  "CMakeFiles/bench_ablation_yield.dir/bench_ablation_yield.cpp.o"
  "CMakeFiles/bench_ablation_yield.dir/bench_ablation_yield.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_yield.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
