file(REMOVE_RECURSE
  "../bench/bench_deque_micro"
  "../bench/bench_deque_micro.pdb"
  "CMakeFiles/bench_deque_micro.dir/bench_deque_micro.cpp.o"
  "CMakeFiles/bench_deque_micro.dir/bench_deque_micro.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_deque_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
