# Empty dependencies file for bench_thm1_lowerbound.
# This may be replaced when dependencies are built.
