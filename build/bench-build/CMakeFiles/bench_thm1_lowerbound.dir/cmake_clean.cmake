file(REMOVE_RECURSE
  "../bench/bench_thm1_lowerbound"
  "../bench/bench_thm1_lowerbound.pdb"
  "CMakeFiles/bench_thm1_lowerbound.dir/bench_thm1_lowerbound.cpp.o"
  "CMakeFiles/bench_thm1_lowerbound.dir/bench_thm1_lowerbound.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm1_lowerbound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
