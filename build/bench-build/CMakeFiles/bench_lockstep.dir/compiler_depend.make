# Empty compiler generated dependencies file for bench_lockstep.
# This may be replaced when dependencies are built.
