file(REMOVE_RECURSE
  "../bench/bench_lockstep"
  "../bench/bench_lockstep.pdb"
  "CMakeFiles/bench_lockstep.dir/bench_lockstep.cpp.o"
  "CMakeFiles/bench_lockstep.dir/bench_lockstep.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lockstep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
