file(REMOVE_RECURSE
  "../bench/bench_potential"
  "../bench/bench_potential.pdb"
  "CMakeFiles/bench_potential.dir/bench_potential.cpp.o"
  "CMakeFiles/bench_potential.dir/bench_potential.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_potential.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
