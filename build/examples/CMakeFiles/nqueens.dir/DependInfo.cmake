
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/nqueens.cpp" "examples/CMakeFiles/nqueens.dir/nqueens.cpp.o" "gcc" "examples/CMakeFiles/nqueens.dir/nqueens.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/abp_support.dir/DependInfo.cmake"
  "/root/repo/build/src/dag/CMakeFiles/abp_dag.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/abp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/abp_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/abp_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/fiber/CMakeFiles/abp_fiber.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
