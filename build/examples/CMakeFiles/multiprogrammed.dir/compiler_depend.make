# Empty compiler generated dependencies file for multiprogrammed.
# This may be replaced when dependencies are built.
