file(REMOVE_RECURSE
  "CMakeFiles/multiprogrammed.dir/multiprogrammed.cpp.o"
  "CMakeFiles/multiprogrammed.dir/multiprogrammed.cpp.o.d"
  "multiprogrammed"
  "multiprogrammed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiprogrammed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
