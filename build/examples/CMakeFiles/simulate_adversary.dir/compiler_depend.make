# Empty compiler generated dependencies file for simulate_adversary.
# This may be replaced when dependencies are built.
