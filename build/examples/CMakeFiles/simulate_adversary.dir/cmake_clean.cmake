file(REMOVE_RECURSE
  "CMakeFiles/simulate_adversary.dir/simulate_adversary.cpp.o"
  "CMakeFiles/simulate_adversary.dir/simulate_adversary.cpp.o.d"
  "simulate_adversary"
  "simulate_adversary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simulate_adversary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
