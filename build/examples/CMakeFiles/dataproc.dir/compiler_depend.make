# Empty compiler generated dependencies file for dataproc.
# This may be replaced when dependencies are built.
