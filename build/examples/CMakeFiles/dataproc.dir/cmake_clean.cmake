file(REMOVE_RECURSE
  "CMakeFiles/dataproc.dir/dataproc.cpp.o"
  "CMakeFiles/dataproc.dir/dataproc.cpp.o.d"
  "dataproc"
  "dataproc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataproc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
