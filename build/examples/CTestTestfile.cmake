# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_nqueens "/root/repo/build/examples/nqueens" "9" "4")
set_tests_properties(example_nqueens PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_wavefront "/root/repo/build/examples/wavefront" "24" "24" "4")
set_tests_properties(example_wavefront PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_multiprogrammed "/root/repo/build/examples/multiprogrammed")
set_tests_properties(example_multiprogrammed PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_simulate_adversary "/root/repo/build/examples/simulate_adversary" "12" "8")
set_tests_properties(example_simulate_adversary PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_fiber_pipeline "/root/repo/build/examples/fiber_pipeline" "5000" "4")
set_tests_properties(example_fiber_pipeline PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_dataproc "/root/repo/build/examples/dataproc" "100000" "4")
set_tests_properties(example_dataproc PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
