file(REMOVE_RECURSE
  "CMakeFiles/abp_sched.dir/engine.cpp.o"
  "CMakeFiles/abp_sched.dir/engine.cpp.o.d"
  "CMakeFiles/abp_sched.dir/lockstep.cpp.o"
  "CMakeFiles/abp_sched.dir/lockstep.cpp.o.d"
  "CMakeFiles/abp_sched.dir/multiprog.cpp.o"
  "CMakeFiles/abp_sched.dir/multiprog.cpp.o.d"
  "CMakeFiles/abp_sched.dir/potential.cpp.o"
  "CMakeFiles/abp_sched.dir/potential.cpp.o.d"
  "CMakeFiles/abp_sched.dir/structural.cpp.o"
  "CMakeFiles/abp_sched.dir/structural.cpp.o.d"
  "CMakeFiles/abp_sched.dir/work_stealer.cpp.o"
  "CMakeFiles/abp_sched.dir/work_stealer.cpp.o.d"
  "libabp_sched.a"
  "libabp_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abp_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
