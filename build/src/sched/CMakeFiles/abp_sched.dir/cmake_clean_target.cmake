file(REMOVE_RECURSE
  "libabp_sched.a"
)
