
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/engine.cpp" "src/sched/CMakeFiles/abp_sched.dir/engine.cpp.o" "gcc" "src/sched/CMakeFiles/abp_sched.dir/engine.cpp.o.d"
  "/root/repo/src/sched/lockstep.cpp" "src/sched/CMakeFiles/abp_sched.dir/lockstep.cpp.o" "gcc" "src/sched/CMakeFiles/abp_sched.dir/lockstep.cpp.o.d"
  "/root/repo/src/sched/multiprog.cpp" "src/sched/CMakeFiles/abp_sched.dir/multiprog.cpp.o" "gcc" "src/sched/CMakeFiles/abp_sched.dir/multiprog.cpp.o.d"
  "/root/repo/src/sched/potential.cpp" "src/sched/CMakeFiles/abp_sched.dir/potential.cpp.o" "gcc" "src/sched/CMakeFiles/abp_sched.dir/potential.cpp.o.d"
  "/root/repo/src/sched/structural.cpp" "src/sched/CMakeFiles/abp_sched.dir/structural.cpp.o" "gcc" "src/sched/CMakeFiles/abp_sched.dir/structural.cpp.o.d"
  "/root/repo/src/sched/work_stealer.cpp" "src/sched/CMakeFiles/abp_sched.dir/work_stealer.cpp.o" "gcc" "src/sched/CMakeFiles/abp_sched.dir/work_stealer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/abp_support.dir/DependInfo.cmake"
  "/root/repo/build/src/dag/CMakeFiles/abp_dag.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/abp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
