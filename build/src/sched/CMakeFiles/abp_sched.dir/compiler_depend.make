# Empty compiler generated dependencies file for abp_sched.
# This may be replaced when dependencies are built.
