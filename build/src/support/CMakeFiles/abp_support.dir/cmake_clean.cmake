file(REMOVE_RECURSE
  "CMakeFiles/abp_support.dir/rng.cpp.o"
  "CMakeFiles/abp_support.dir/rng.cpp.o.d"
  "CMakeFiles/abp_support.dir/stats.cpp.o"
  "CMakeFiles/abp_support.dir/stats.cpp.o.d"
  "CMakeFiles/abp_support.dir/table.cpp.o"
  "CMakeFiles/abp_support.dir/table.cpp.o.d"
  "libabp_support.a"
  "libabp_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abp_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
