# Empty dependencies file for abp_support.
# This may be replaced when dependencies are built.
