file(REMOVE_RECURSE
  "libabp_support.a"
)
