# Empty dependencies file for abp_runtime.
# This may be replaced when dependencies are built.
