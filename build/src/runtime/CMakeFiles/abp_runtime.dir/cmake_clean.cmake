file(REMOVE_RECURSE
  "CMakeFiles/abp_runtime.dir/dag_engine.cpp.o"
  "CMakeFiles/abp_runtime.dir/dag_engine.cpp.o.d"
  "CMakeFiles/abp_runtime.dir/scheduler.cpp.o"
  "CMakeFiles/abp_runtime.dir/scheduler.cpp.o.d"
  "libabp_runtime.a"
  "libabp_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abp_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
