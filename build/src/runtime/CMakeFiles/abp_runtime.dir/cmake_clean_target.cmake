file(REMOVE_RECURSE
  "libabp_runtime.a"
)
