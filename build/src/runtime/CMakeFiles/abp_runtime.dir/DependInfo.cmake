
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/dag_engine.cpp" "src/runtime/CMakeFiles/abp_runtime.dir/dag_engine.cpp.o" "gcc" "src/runtime/CMakeFiles/abp_runtime.dir/dag_engine.cpp.o.d"
  "/root/repo/src/runtime/scheduler.cpp" "src/runtime/CMakeFiles/abp_runtime.dir/scheduler.cpp.o" "gcc" "src/runtime/CMakeFiles/abp_runtime.dir/scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/abp_support.dir/DependInfo.cmake"
  "/root/repo/build/src/dag/CMakeFiles/abp_dag.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
