file(REMOVE_RECURSE
  "CMakeFiles/abp_fiber.dir/fiber.cpp.o"
  "CMakeFiles/abp_fiber.dir/fiber.cpp.o.d"
  "libabp_fiber.a"
  "libabp_fiber.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abp_fiber.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
