# Empty dependencies file for abp_fiber.
# This may be replaced when dependencies are built.
