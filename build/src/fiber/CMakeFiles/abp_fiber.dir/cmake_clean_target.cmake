file(REMOVE_RECURSE
  "libabp_fiber.a"
)
