
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dag/builders.cpp" "src/dag/CMakeFiles/abp_dag.dir/builders.cpp.o" "gcc" "src/dag/CMakeFiles/abp_dag.dir/builders.cpp.o.d"
  "/root/repo/src/dag/dag.cpp" "src/dag/CMakeFiles/abp_dag.dir/dag.cpp.o" "gcc" "src/dag/CMakeFiles/abp_dag.dir/dag.cpp.o.d"
  "/root/repo/src/dag/dot.cpp" "src/dag/CMakeFiles/abp_dag.dir/dot.cpp.o" "gcc" "src/dag/CMakeFiles/abp_dag.dir/dot.cpp.o.d"
  "/root/repo/src/dag/enabling.cpp" "src/dag/CMakeFiles/abp_dag.dir/enabling.cpp.o" "gcc" "src/dag/CMakeFiles/abp_dag.dir/enabling.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/abp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
