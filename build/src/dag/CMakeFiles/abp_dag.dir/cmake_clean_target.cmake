file(REMOVE_RECURSE
  "libabp_dag.a"
)
