file(REMOVE_RECURSE
  "CMakeFiles/abp_dag.dir/builders.cpp.o"
  "CMakeFiles/abp_dag.dir/builders.cpp.o.d"
  "CMakeFiles/abp_dag.dir/dag.cpp.o"
  "CMakeFiles/abp_dag.dir/dag.cpp.o.d"
  "CMakeFiles/abp_dag.dir/dot.cpp.o"
  "CMakeFiles/abp_dag.dir/dot.cpp.o.d"
  "CMakeFiles/abp_dag.dir/enabling.cpp.o"
  "CMakeFiles/abp_dag.dir/enabling.cpp.o.d"
  "libabp_dag.a"
  "libabp_dag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abp_dag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
