# Empty dependencies file for abp_dag.
# This may be replaced when dependencies are built.
