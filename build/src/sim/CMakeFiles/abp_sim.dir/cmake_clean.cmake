file(REMOVE_RECURSE
  "CMakeFiles/abp_sim.dir/exec.cpp.o"
  "CMakeFiles/abp_sim.dir/exec.cpp.o.d"
  "CMakeFiles/abp_sim.dir/kernel.cpp.o"
  "CMakeFiles/abp_sim.dir/kernel.cpp.o.d"
  "CMakeFiles/abp_sim.dir/offline.cpp.o"
  "CMakeFiles/abp_sim.dir/offline.cpp.o.d"
  "CMakeFiles/abp_sim.dir/yield.cpp.o"
  "CMakeFiles/abp_sim.dir/yield.cpp.o.d"
  "libabp_sim.a"
  "libabp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
