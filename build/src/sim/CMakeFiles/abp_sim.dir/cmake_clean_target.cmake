file(REMOVE_RECURSE
  "libabp_sim.a"
)
