
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/exec.cpp" "src/sim/CMakeFiles/abp_sim.dir/exec.cpp.o" "gcc" "src/sim/CMakeFiles/abp_sim.dir/exec.cpp.o.d"
  "/root/repo/src/sim/kernel.cpp" "src/sim/CMakeFiles/abp_sim.dir/kernel.cpp.o" "gcc" "src/sim/CMakeFiles/abp_sim.dir/kernel.cpp.o.d"
  "/root/repo/src/sim/offline.cpp" "src/sim/CMakeFiles/abp_sim.dir/offline.cpp.o" "gcc" "src/sim/CMakeFiles/abp_sim.dir/offline.cpp.o.d"
  "/root/repo/src/sim/yield.cpp" "src/sim/CMakeFiles/abp_sim.dir/yield.cpp.o" "gcc" "src/sim/CMakeFiles/abp_sim.dir/yield.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/abp_support.dir/DependInfo.cmake"
  "/root/repo/build/src/dag/CMakeFiles/abp_dag.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
