# Empty dependencies file for abp_sim.
# This may be replaced when dependencies are built.
