file(REMOVE_RECURSE
  "CMakeFiles/abp_model.dir/explorer.cpp.o"
  "CMakeFiles/abp_model.dir/explorer.cpp.o.d"
  "CMakeFiles/abp_model.dir/linearize.cpp.o"
  "CMakeFiles/abp_model.dir/linearize.cpp.o.d"
  "CMakeFiles/abp_model.dir/machine.cpp.o"
  "CMakeFiles/abp_model.dir/machine.cpp.o.d"
  "libabp_model.a"
  "libabp_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abp_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
