
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/explorer.cpp" "src/model/CMakeFiles/abp_model.dir/explorer.cpp.o" "gcc" "src/model/CMakeFiles/abp_model.dir/explorer.cpp.o.d"
  "/root/repo/src/model/linearize.cpp" "src/model/CMakeFiles/abp_model.dir/linearize.cpp.o" "gcc" "src/model/CMakeFiles/abp_model.dir/linearize.cpp.o.d"
  "/root/repo/src/model/machine.cpp" "src/model/CMakeFiles/abp_model.dir/machine.cpp.o" "gcc" "src/model/CMakeFiles/abp_model.dir/machine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/abp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
