# Empty dependencies file for abp_model.
# This may be replaced when dependencies are built.
