file(REMOVE_RECURSE
  "libabp_model.a"
)
