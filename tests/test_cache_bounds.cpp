// Cache-complexity & rooted-tree steal-count validation suite (ISSUE PR 7).
//
// Two bound families are gated here, over seeded ensembles sharded across
// ctest instances (3 shards x 10 seeds, label `bounds`):
//
//   * rooted-tree steal counts — Leiserson, Schardl & Suksompong (*Upper
//     Bounds on Number of Steals in Rooted Trees*) prove a P-worker
//     execution of a rooted tree incurs O(P·h) steals for height h. Every
//     rooted-tree builder family must keep its measured successful-steal
//     count within that shape under every steal/victim policy, including
//     the hint-aware victim kind this PR adds to the simulator;
//
//   * parallel cache complexity — Gu, Napier & Sun (*Analysis of
//     Work-Stealing and Parallel Cache Complexity*) bound Q_P by
//     Q1 + O(M/B · S) for S steals: the extra misses a parallel execution
//     pays over the sequential cache complexity are a bounded multiple of
//     the steal count. The simulated cache model attributes every miss to
//     steal migration vs. intrinsic cold/capacity pressure, so the suite
//     checks the shape (Q_P <= Q1 + c·S), the attribution (P = 1 has zero
//     steal misses and exactly Q1), and the fit (extra misses regress
//     through the origin on steals with the steal-attributed term
//     dominating the residual).
//
// Gate constants are empirical, calibrated from bench_cache_complexity
// ensembles with generous head-room (like the Theorem 9 throw constant);
// they exist to catch regressions in shape, not to re-prove the theorems.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "dag/builders.hpp"
#include "runtime/dag_engine.hpp"
#include "runtime/options.hpp"
#include "sched/work_stealer.hpp"
#include "sim/cache.hpp"
#include "sim/kernel.hpp"
#include "support/stats.hpp"

namespace abp::sched {
namespace {

using sim::YieldKind;

constexpr std::size_t kP = 8;
constexpr std::uint64_t kSeedsPerShard = 10;  // 3 shards -> 30 seeds total

// Steal-count gates (rooted-tree shape): ensemble-mean successful steals
// stay under kStealMeanConst * P * h and no single run exceeds
// kStealMaxConst * P * h, with h the critical-path length (the dag-side
// stand-in for tree height).
constexpr double kStealMeanConst = 8.0;
constexpr double kStealMaxConst = 14.0;

// Cache gates: Q_P <= Q1 + kMissPerSteal * S (+ kMissSlack for the
// zero-steal runs), and the ensemble-total steal-attributed misses must
// cover at least kDominanceShare of the ensemble-total |Q_P - Q1| they are
// supposed to explain.
constexpr double kMissPerSteal = 48.0;
constexpr double kMissSlack = 64.0;
constexpr double kDominanceShare = 0.5;

struct PolicyCase {
  const char* name;
  StealKind steal;
  VictimKind victim;
};

// Uniform, batched, and hint-aware victim selection — the three regimes
// the cache-complexity acceptance gate names.
const std::vector<PolicyCase>& cache_policy_matrix() {
  static const std::vector<PolicyCase> cases = {
      {"single/uniform", StealKind::kSingle, VictimKind::kUniform},
      {"half/uniform", StealKind::kStealHalf, VictimKind::kUniform},
      {"single/hint", StealKind::kSingle, VictimKind::kHintAware},
      {"half/hint", StealKind::kStealHalf, VictimKind::kHintAware},
  };
  return cases;
}

struct TreeCase {
  std::string name;
  std::function<dag::Dag(std::uint64_t seed)> build;  // seed-parameterized
};

// The rooted-tree families under test. random_rooted_tree varies its shape
// with the ensemble seed; the fixed families ignore it.
const std::vector<TreeCase>& tree_cases() {
  static const std::vector<TreeCase> cases = {
      {"kary2d6", [](std::uint64_t) { return dag::full_kary_tree(2, 6, 2); }},
      {"kary4d3", [](std::uint64_t) { return dag::full_kary_tree(4, 3, 2); }},
      {"caterpillar", [](std::uint64_t) { return dag::caterpillar_tree(40, 3); }},
      {"rrt800", [](std::uint64_t s) { return dag::random_rooted_tree(s, 800, 4); }},
      {"imbalanced", [](std::uint64_t) { return dag::imbalanced_tree(8); }},
      {"fjt6", [](std::uint64_t) { return dag::fork_join_tree(6); }},
  };
  return cases;
}

RunMetrics run_cached(const dag::Dag& d, const PolicyCase& pc,
                      std::size_t num_procs, std::uint64_t seed) {
  sim::DedicatedKernel k(num_procs);
  Options opts;
  opts.yield = YieldKind::kNone;
  opts.steal = pc.steal;
  opts.victim = pc.victim;
  opts.seed = seed;
  opts.model_cache = true;
  return run_work_stealer(d, k, opts);
}

// Sequential cache complexity of `d`: a P = 1 run is a fixed serial order,
// so its miss count is the model's Q1. Also asserts the model's
// attribution invariant — with one worker nothing migrates.
std::uint64_t sequential_q1(const dag::Dag& d) {
  const auto m = run_cached(
      d, {"single/uniform", StealKind::kSingle, VictimKind::kUniform}, 1, 1);
  EXPECT_TRUE(m.completed);
  EXPECT_EQ(m.cache.steal_misses, 0u);
  EXPECT_EQ(m.cache.intrinsic_misses(), m.cache.misses);
  return m.cache.misses;
}

class CacheBoundsShard : public ::testing::TestWithParam<int> {
 protected:
  std::uint64_t first_seed() const {
    return static_cast<std::uint64_t>(GetParam()) * kSeedsPerShard + 1;
  }
  std::uint64_t last_seed() const { return first_seed() + kSeedsPerShard - 1; }
};

// Steal counts stay O(P·h) on every rooted-tree family under every policy
// (the Leiserson–Schardl–Suksompong shape).
TEST_P(CacheBoundsShard, StealsStayOrderPTimesHeight) {
  for (const TreeCase& tc : tree_cases()) {
    for (const PolicyCase& pc : cache_policy_matrix()) {
      OnlineStats steals_over_ph;
      for (std::uint64_t seed = first_seed(); seed <= last_seed(); ++seed) {
        const dag::Dag d = tc.build(seed);
        const double h = static_cast<double>(d.critical_path_length());
        const auto m = run_cached(d, pc, kP, seed);
        ASSERT_TRUE(m.completed) << tc.name << " " << pc.name;
        steals_over_ph.add(static_cast<double>(m.successful_steals) /
                           (static_cast<double>(kP) * h));
      }
      EXPECT_LE(steals_over_ph.mean(), kStealMeanConst)
          << tc.name << " " << pc.name;
      EXPECT_LE(steals_over_ph.max(), kStealMaxConst)
          << tc.name << " " << pc.name;
    }
  }
}

// The cache-complexity shape: Q_P <= Q1 + c·S on every run, and across the
// ensemble the extra misses (a) regress on the steal count with a positive
// slope and (b) are explained mostly by the steal-attributed misses the
// model charges (the residual |Q_P - Q1| - steal_misses stays dominated).
TEST_P(CacheBoundsShard, MissesFitQ1PlusStealTerm) {
  for (const TreeCase& tc : tree_cases()) {
    for (const PolicyCase& pc : cache_policy_matrix()) {
      std::vector<double> steals, extra;
      double total_steal_misses = 0.0, total_residual = 0.0;
      for (std::uint64_t seed = first_seed(); seed <= last_seed(); ++seed) {
        const dag::Dag d = tc.build(seed);
        const double q1 = static_cast<double>(sequential_q1(d));
        const auto m = run_cached(d, pc, kP, seed);
        ASSERT_TRUE(m.completed) << tc.name << " " << pc.name;
        const double qp = static_cast<double>(m.cache.misses);
        const double s = static_cast<double>(m.successful_steals);
        EXPECT_LE(qp, q1 + kMissPerSteal * s + kMissSlack)
            << tc.name << " " << pc.name << " seed=" << seed
            << ": QP=" << qp << " Q1=" << q1 << " S=" << s;
        EXPECT_LE(m.cache.steal_misses, m.cache.misses);
        steals.push_back(s);
        extra.push_back(qp - q1);
        total_steal_misses += static_cast<double>(m.cache.steal_misses);
        total_residual +=
            std::abs((qp - q1) - static_cast<double>(m.cache.steal_misses));
      }
      double total_steals = 0.0;
      for (const double s : steals) total_steals += s;
      if (total_steals > 0.0) {
        // Extra misses grow with steals: the through-origin slope is
        // positive, and the steal-attributed term carries the bulk of what
        // Q_P - Q1 leaves to explain.
        EXPECT_GT(fit_through_origin(steals, extra), 0.0)
            << tc.name << " " << pc.name;
        EXPECT_GE(total_steal_misses, kDominanceShare * total_residual)
            << tc.name << " " << pc.name << ": steal-attributed "
            << total_steal_misses << " vs residual " << total_residual;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CacheBoundsShard, ::testing::Values(0, 1, 2),
                         [](const auto& info) {
                           return "shard" + std::to_string(info.param);
                         });

// ---- cache-model unit sanity (not sharded; deterministic) ------------------

TEST(CacheModel, DeterministicGivenSchedule) {
  const dag::Dag d = dag::full_kary_tree(2, 5, 2);
  const PolicyCase pc{"single/uniform", StealKind::kSingle,
                      VictimKind::kUniform};
  const auto a = run_cached(d, pc, kP, 7);
  const auto b = run_cached(d, pc, kP, 7);
  ASSERT_TRUE(a.completed);
  ASSERT_TRUE(b.completed);
  EXPECT_EQ(a.cache.accesses, b.cache.accesses);
  EXPECT_EQ(a.cache.hits, b.cache.hits);
  EXPECT_EQ(a.cache.misses, b.cache.misses);
  EXPECT_EQ(a.cache.steal_misses, b.cache.steal_misses);
}

TEST(CacheModel, HugeCapacitySeesOnlyColdMisses) {
  // With capacity >= the number of blocks nothing is ever evicted, so a
  // P = 1 run misses exactly once per distinct block.
  const dag::Dag d = dag::caterpillar_tree(30, 2);
  sim::DedicatedKernel k(1);
  Options opts;
  opts.yield = YieldKind::kNone;
  opts.model_cache = true;
  opts.cache.capacity_blocks = 1u << 20;
  opts.cache.nodes_per_block = 4;
  const auto m = run_work_stealer(d, k, opts);
  ASSERT_TRUE(m.completed);
  const std::uint64_t blocks = (d.num_nodes() + 3) / 4;
  EXPECT_EQ(m.cache.misses, blocks);
  EXPECT_EQ(m.cache.steal_misses, 0u);
  EXPECT_GT(m.cache.hits, 0u);
  EXPECT_EQ(m.cache.hits + m.cache.misses, m.cache.accesses);
}

TEST(CacheModel, OffByDefaultReportsNothing) {
  const dag::Dag d = dag::fib_dag(10);
  sim::DedicatedKernel k(4);
  Options opts;
  opts.yield = YieldKind::kNone;
  const auto m = run_work_stealer(d, k, opts);
  ASSERT_TRUE(m.completed);
  EXPECT_EQ(m.cache.accesses, 0u);
  EXPECT_EQ(m.cache.misses, 0u);
}

// The hint-aware victim kind is real: on a deep-deque workload the hint
// board produces preferred-victim steals.
TEST(CacheModel, HintAwareVictimHitsItsHints) {
  const dag::Dag d = dag::wide(64, 40);
  OnlineStats hits;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    sim::DedicatedKernel k(kP);
    Options opts;
    opts.yield = YieldKind::kNone;
    opts.spawn_order = SpawnOrder::kParent;
    opts.victim = VictimKind::kHintAware;
    opts.seed = seed;
    const auto m = run_work_stealer(d, k, opts);
    ASSERT_TRUE(m.completed) << "seed=" << seed;
    hits.add(static_cast<double>(m.preferred_victim_hits));
  }
  EXPECT_GT(hits.mean(), 0.0);
}

}  // namespace
}  // namespace abp::sched

// ---- the runtime's concurrent cache model ----------------------------------

namespace abp::runtime {
namespace {

TEST(RuntimeCacheModel, SingleWorkerHasNoStealMisses) {
  const dag::Dag d = dag::full_kary_tree(2, 6, 2);
  SchedulerOptions opts;
  opts.num_workers = 1;
  opts.cache_model = true;
  const auto r = run_dag(d, opts);
  ASSERT_TRUE(r.ok);
  EXPECT_GT(r.totals.cache_misses, 0u);
  EXPECT_EQ(r.totals.cache_steal_misses, 0u);
  EXPECT_GT(r.totals.cache_hits, 0u);
}

TEST(RuntimeCacheModel, ParallelRunAttributesWithinBound) {
  // Deque-policy matrix (ISSUE PR 10, satellite 2): Q_P <= Q1 + O(S) must
  // hold for the split deque too — lazy publication changes WHICH nodes
  // migrate, but every extra miss is still charged to a steal, so the
  // shape survives the deque swap. The ABP row is the reference.
  const dag::Dag d = dag::full_kary_tree(2, 7, 2);
  SchedulerOptions serial;
  serial.num_workers = 1;
  serial.cache_model = true;
  const auto s = run_dag(d, serial);
  ASSERT_TRUE(s.ok);
  const std::uint64_t q1 = s.totals.cache_misses;

  for (const DequePolicy dp : {DequePolicy::kAbp, DequePolicy::kSplit}) {
    SchedulerOptions par;
    par.num_workers = 4;
    par.cache_model = true;
    par.deque = dp;
    const auto p = run_dag(d, par);
    ASSERT_TRUE(p.ok) << to_string(dp);
    EXPECT_LE(p.totals.cache_steal_misses, p.totals.cache_misses)
        << to_string(dp);
    // The real-thread schedule is nondeterministic, so only the bound
    // shape is gated: extra misses stay a bounded multiple of the steal
    // count.
    const double extra = static_cast<double>(p.totals.cache_misses) -
                         static_cast<double>(q1);
    const double s_count = static_cast<double>(p.totals.steals);
    EXPECT_LE(extra, 48.0 * s_count + 64.0)
        << to_string(dp) << ": QP=" << p.totals.cache_misses << " Q1=" << q1
        << " steals=" << p.totals.steals;
  }
}

// A single split-deque worker keeps its entire run private (no thief ever
// signals hunger), so nothing migrates and the attribution is exactly the
// sequential one — the strongest form of the P = 1 invariant.
TEST(RuntimeCacheModel, SplitDequeSingleWorkerMatchesSequentialQ1) {
  const dag::Dag d = dag::full_kary_tree(2, 6, 2);
  SchedulerOptions abp;
  abp.num_workers = 1;
  abp.cache_model = true;
  const auto a = run_dag(d, abp);
  ASSERT_TRUE(a.ok);

  SchedulerOptions split = abp;
  split.deque = DequePolicy::kSplit;
  const auto b = run_dag(d, split);
  ASSERT_TRUE(b.ok);
  EXPECT_EQ(b.totals.cache_steal_misses, 0u);
  // Same dag, same single-worker depth-first order, same LRU model ->
  // identical miss count regardless of the deque backing the worker.
  EXPECT_EQ(b.totals.cache_misses, a.totals.cache_misses);
}

TEST(RuntimeCacheModel, OffByDefaultCountersStayZero) {
  const dag::Dag d = dag::fib_dag(12);
  SchedulerOptions opts;
  opts.num_workers = 4;
  const auto r = run_dag(d, opts);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.totals.cache_hits, 0u);
  EXPECT_EQ(r.totals.cache_misses, 0u);
  EXPECT_EQ(r.totals.cache_steal_misses, 0u);
}

}  // namespace
}  // namespace abp::runtime
