// Seeded ablation: a lock acquired and never released. The analysis
// tracks capabilities to function exit, so the leak must be rejected
// (tools/check_thread_safety.py).
// expect-error: still held at the end of function

#include "support/sync.hpp"

struct Leaky {
  abp::sync::Mutex mu;
  int value ABP_GUARDED_BY(mu) = 0;

  void leak() {
    mu.lock();
    ++value;
    // missing mu.unlock(): must not compile
  }
};
