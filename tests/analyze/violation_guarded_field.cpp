// Seeded ablation: a guarded field written without its mutex. The
// analyze gate must reject this translation unit — if it compiles, the
// thread-safety analysis is off (tools/check_thread_safety.py).
// expect-error: requires holding mutex

#include "support/sync.hpp"

struct Account {
  abp::sync::Mutex mu;
  int balance ABP_GUARDED_BY(mu) = 0;

  void deposit_unlocked(int v) {
    balance += v;  // no MutexLock, no ABP_REQUIRES: must not compile
  }
};
