// Thread-safety analysis fixture: the CLEAN side of the ablation pair
// (tools/check_thread_safety.py). Pulls the annotated runtime headers in
// and exercises correct lock discipline; it must compile with zero
// -Wthread-safety diagnostics under Clang. The violation_*.cpp siblings
// seed one discipline break each and must be rejected — together they
// prove the analysis is actually looking, not silently disabled.

#include "deque/mutex_deque.hpp"
#include "deque/spinlock_deque.hpp"
#include "fiber/channel.hpp"
#include "obs/pump.hpp"
#include "obs/seqlock.hpp"
#include "runtime/scheduler.hpp"
#include "support/sync.hpp"

// Instantiate the templates so their method bodies reach the analysis.
template class abp::deque::MutexDeque<int>;
template class abp::deque::SpinlockDeque<int>;
template class abp::obs::Seqlock<abp::runtime::LiveWorkerSample>;

namespace {

struct Guarded {
  abp::sync::Mutex mu;
  abp::sync::CondVar cv;
  int value ABP_GUARDED_BY(mu) = 0;
  bool ready ABP_GUARDED_BY(mu) = false;

  // Scoped acquisition covers the guarded writes.
  void set(int v) {
    abp::sync::MutexLock lock(mu);
    value = v;
    ready = true;
  }

  // The caller-holds contract, stated instead of re-locking.
  int get_locked() const ABP_REQUIRES(mu) { return value; }

  // CondVar waits under the lock, with the predicate annotated so its
  // guarded reads check against the same capability.
  int await() {
    abp::sync::MutexLock lock(mu);
    cv.wait(mu, [this]() ABP_REQUIRES(mu) { return ready; });
    return get_locked();
  }

  // Manual lock/unlock balances on every path.
  void bump() {
    mu.lock();
    ++value;
    mu.unlock();
  }

  // try_lock: the guarded access sits inside the success branch only.
  bool try_bump() {
    if (mu.try_lock()) {
      ++value;
      mu.unlock();
      return true;
    }
    return false;
  }
};

[[maybe_unused]] void exercise() {
  Guarded g;
  g.set(7);
  g.bump();
  g.try_bump();
}

}  // namespace
