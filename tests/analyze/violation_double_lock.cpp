// Seeded ablation: re-acquiring a mutex already held on the same path —
// sync::Mutex is non-recursive, so this self-deadlocks at runtime and
// the analysis must reject it (tools/check_thread_safety.py).
// expect-error: already held

#include "support/sync.hpp"

struct Twice {
  abp::sync::Mutex mu;

  void lock_twice() {
    abp::sync::MutexLock outer(mu);
    abp::sync::MutexLock inner(mu);  // must not compile
  }
};
