// Seeded ablation: a CondVar wait without holding the mutex it names.
// CondVar::wait is annotated ABP_REQUIRES(mu), so calling it unlocked
// must be rejected (tools/check_thread_safety.py).
// expect-error: requires holding mutex

#include "support/sync.hpp"

struct Waiter {
  abp::sync::Mutex mu;
  abp::sync::CondVar cv;
  bool ready ABP_GUARDED_BY(mu) = false;

  void wait_unlocked() {
    // Missing abp::sync::MutexLock lock(mu): must not compile.
    cv.wait(mu, [this]() ABP_REQUIRES(mu) { return ready; });
  }
};
