// Tests for utilization profiles and kernel adversaries (§2, §4.4).

#include <gtest/gtest.h>

#include <set>

#include "sim/kernel.hpp"
#include "sim/profile.hpp"

namespace abp::sim {
namespace {

std::vector<ProcessView> idle_views(std::size_t p) {
  return std::vector<ProcessView>(p);
}

TEST(Profiles, Constant) {
  auto f = constant_profile(5);
  for (Round r = 1; r <= 10; ++r) EXPECT_EQ(f(r), 5u);
}

TEST(Profiles, Periodic) {
  auto f = periodic_profile(8, 3, 2, 2);
  // rounds 1..3 -> 8, rounds 4..5 -> 2, then repeats
  EXPECT_EQ(f(1), 8u);
  EXPECT_EQ(f(3), 8u);
  EXPECT_EQ(f(4), 2u);
  EXPECT_EQ(f(5), 2u);
  EXPECT_EQ(f(6), 8u);
  EXPECT_EQ(f(10), 2u);
}

TEST(Profiles, Bursty) {
  auto f = bursty_profile(16, 4, 10);
  for (Round r = 1; r <= 4; ++r) EXPECT_EQ(f(r), 16u);
  for (Round r = 5; r <= 10; ++r) EXPECT_EQ(f(r), 1u);
  EXPECT_EQ(f(11), 16u);
}

TEST(Profiles, RampDown) {
  auto f = ramp_down_profile(4, 10, 1);
  for (Round r = 1; r <= 10; ++r) EXPECT_EQ(f(r), 4u);
  for (Round r = 11; r <= 20; ++r) EXPECT_EQ(f(r), 3u);
  for (Round r = 21; r <= 30; ++r) EXPECT_EQ(f(r), 2u);
  for (Round r = 31; r <= 100; ++r) EXPECT_EQ(f(r), 1u);
}

TEST(Profiles, Theorem1Phases) {
  const std::size_t p = 6;
  const std::uint64_t k = 2, tinf = 10;
  auto f = theorem1_profile(p, k, tinf);
  for (Round r = 1; r <= k * tinf; ++r) EXPECT_EQ(f(r), 0u);
  for (Round r = k * tinf + 1; r <= (k + 1) * tinf; ++r) EXPECT_EQ(f(r), p);
  for (Round r = (k + 1) * tinf + 1; r <= (k + 3) * tinf; ++r)
    EXPECT_EQ(f(r), 1u);
}

TEST(Profiles, Theorem1KZeroHasNoStarvationPhase) {
  auto f = theorem1_profile(4, 0, 5);
  EXPECT_EQ(f(1), 4u);
  EXPECT_EQ(f(5), 4u);
  EXPECT_EQ(f(6), 1u);
}

TEST(DedicatedKernel, SchedulesEveryoneEveryRound) {
  DedicatedKernel k(4);
  EXPECT_EQ(k.num_processes(), 4u);
  const auto views = idle_views(4);
  for (Round r = 1; r <= 5; ++r) {
    const auto s = k.schedule(r, views);
    EXPECT_EQ(s.size(), 4u);
    std::set<ProcId> uniq(s.begin(), s.end());
    EXPECT_EQ(uniq.size(), 4u);
  }
}

TEST(BenignKernel, HonoursProfileCountAndDistinctness) {
  BenignKernel k(8, constant_profile(3), 42);
  const auto views = idle_views(8);
  for (Round r = 1; r <= 200; ++r) {
    const auto s = k.schedule(r, views);
    ASSERT_EQ(s.size(), 3u);
    std::set<ProcId> uniq(s.begin(), s.end());
    EXPECT_EQ(uniq.size(), 3u);
    for (ProcId q : s) EXPECT_LT(q, 8u);
  }
}

TEST(BenignKernel, ClampsCountToP) {
  BenignKernel k(4, constant_profile(100), 1);
  EXPECT_EQ(k.schedule(1, idle_views(4)).size(), 4u);
}

TEST(BenignKernel, ChoicesAreUniform) {
  BenignKernel k(6, constant_profile(2), 7);
  const auto views = idle_views(6);
  std::vector<int> counts(6, 0);
  constexpr int kRounds = 30000;
  for (Round r = 1; r <= kRounds; ++r)
    for (ProcId q : k.schedule(r, views)) ++counts[q];
  for (int c : counts)
    EXPECT_NEAR(c / double(kRounds), 2.0 / 6.0, 0.02);
}

TEST(ObliviousKernel, DeterministicAndIgnoresView) {
  ObliviousKernel k1(8, periodic_profile(8, 5, 2, 5), 9);
  ObliviousKernel k2(8, periodic_profile(8, 5, 2, 5), 9);
  auto busy = idle_views(8);
  for (auto& v : busy) v.has_assigned_node = true;
  for (Round r = 1; r <= 100; ++r)
    EXPECT_EQ(k1.schedule(r, idle_views(8)), k2.schedule(r, busy));
}

TEST(ObliviousKernel, WindowCoversAllProcessesOverTime) {
  ObliviousKernel k(5, constant_profile(2), 3);
  std::set<ProcId> covered;
  for (Round r = 1; r <= 200; ++r)
    for (ProcId q : k.schedule(r, idle_views(5))) covered.insert(q);
  EXPECT_EQ(covered.size(), 5u);
}

TEST(ExplicitKernel, ReplaysAndCycles) {
  ExplicitKernel k(3, {{0, 1}, {2}, {}});
  const auto views = idle_views(3);
  EXPECT_EQ(k.schedule(1, views), (std::vector<ProcId>{0, 1}));
  EXPECT_EQ(k.schedule(2, views), (std::vector<ProcId>{2}));
  EXPECT_TRUE(k.schedule(3, views).empty());
  EXPECT_EQ(k.schedule(4, views), (std::vector<ProcId>{0, 1}));
}

TEST(StarveBusyKernel, PrefersWorklessProcesses) {
  StarveBusyKernel k(4, constant_profile(2), 5);
  std::vector<ProcessView> views(4);
  views[1].has_assigned_node = true;
  views[3].deque_size = 7;
  for (Round r = 1; r <= 50; ++r) {
    const auto s = k.schedule(r, views);
    ASSERT_EQ(s.size(), 2u);
    std::set<ProcId> chosen(s.begin(), s.end());
    EXPECT_TRUE(chosen.count(0));
    EXPECT_TRUE(chosen.count(2));
  }
}

TEST(StarveBusyKernel, SchedulesBusyOnlyWhenForced) {
  StarveBusyKernel k(2, constant_profile(2), 5);
  std::vector<ProcessView> views(2);
  views[0].has_assigned_node = true;
  const auto s = k.schedule(1, views);
  EXPECT_EQ(s.size(), 2u);  // both scheduled: count exceeds workless pool
}

TEST(FavorBusyKernel, PrefersBusyProcesses) {
  FavorBusyKernel k(4, constant_profile(2), 5);
  std::vector<ProcessView> views(4);
  views[1].has_assigned_node = true;
  views[2].deque_size = 3;
  for (Round r = 1; r <= 50; ++r) {
    const auto s = k.schedule(r, views);
    ASSERT_EQ(s.size(), 2u);
    std::set<ProcId> chosen(s.begin(), s.end());
    EXPECT_TRUE(chosen.count(1));
    EXPECT_TRUE(chosen.count(2));
  }
}

TEST(KernelNames, AreStable) {
  EXPECT_STREQ(DedicatedKernel(1).name(), "dedicated");
  EXPECT_STREQ(BenignKernel(1, constant_profile(1), 0).name(), "benign");
  EXPECT_STREQ(ObliviousKernel(1, constant_profile(1), 0).name(),
               "oblivious");
}

}  // namespace
}  // namespace abp::sim
