#pragma once

// Differential stress driver for the chaos harness (tests only).
//
// One owner (the calling thread) and N persistent thief threads run an
// identical seeded op-sequence against any deque with the AbpDeque
// interface, in barrier-separated rounds. Every value is tagged
// (round << 8) | index, so after each round the driver can check the two
// invariants every deque in this repo promises regardless of relaxed
// popTop semantics:
//
//   * exactly-once delivery — no value is returned twice (a duplicate is
//     the ABA symptom the age tag exists to prevent, §3.3), and no value
//     from another round ever appears (stale);
//   * conservation — every pushed value is returned by exactly one of the
//     owner pops / thief steals before the round barrier (a lost item is
//     the other half of the ABA symptom: a stale popTop CAS advances top
//     past an unconsumed slot).
//
// Running the same (config, policy, seed) through AbpDeque,
// AbpGrowableDeque, ChaseLevDeque, SplitDeque and MutexDeque is the
// differential check: the lock-based deque is the trivially-correct
// reference, and all must produce a clean Verdict. TagAblatedAbpDeque and
// TransferAblatedSplitDeque must NOT — see test_chaos_deques.cpp, which
// asserts the harness catches both.
//
// Round protocol (safe barrier even with stalled thieves): the owner bumps
// `round_seq` to open a round, pushes all items (occasionally draining its
// own bottom, which is what recycles ABP indices and bumps the tag),
// publishes `pushing_done`, drains the rest, then waits until every thief
// has observed (empty deque AND pushing_done) and parked in `arrived`. A
// thief that is mid-popTop — even one held inside an injected stall — must
// finish that operation before it can park, so every steal lands in the
// round that issued it and the accounting below is exact.
//
// Failures print a one-line repro: deque, policy, seed, config. Re-running
// the same template instantiation with the same config reproduces the
// interleaving up to OS noise — on the single-CPU CI hosts, reliably.

#include <atomic>
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "chaos/chaos.hpp"
#include "deque/pop_top.hpp"
#include "model/linearize.hpp"
#include "support/rng.hpp"

namespace abp::chaostest {

// The sanitizer presets run these same suites through the `sanitize`
// ctest label. The instrumentation costs ~15x (TSan) / ~3x (ASan) and its
// value is per-interleaving, not per-round, so tests divide their round
// counts by this scale to stay inside the ctest timeout.
#if defined(__SANITIZE_THREAD__)
inline constexpr std::size_t kSanitizerRoundScale = 20;
#elif defined(__SANITIZE_ADDRESS__)
inline constexpr std::size_t kSanitizerRoundScale = 4;
#else
inline constexpr std::size_t kSanitizerRoundScale = 1;
#endif

struct DriverConfig {
  std::size_t num_thieves = 2;
  std::size_t rounds = 10'000;
  std::size_t items_per_round = 16;  // <= 255 (index lives in the low byte)
  std::size_t deque_capacity = 512;
  // After each push, chance that the owner drains its own bottom to empty —
  // the drain-and-refill cycle that resets ABP indices (and, with the tag
  // compiled out, arms the ABA trap for any thief stalled mid-CAS).
  double p_owner_drain = 0.25;
  // After each owner op, chance that the owner yields the processor — the
  // kernel preempting the owner mid-round. Without this, a single-CPU host
  // lets the owner push and drain entire rounds uninterrupted and the
  // thieves only ever see an empty deque (zero steals, vacuous fuzz).
  double p_owner_yield = 0.25;
  // After each push, chance the owner eagerly publishes its private
  // segment (transfer), for deques that have one; others ignore it.
  // Load-bearing for the split deque: hunger-gated transfers always run
  // against an empty public segment (hunger means a thief just saw it
  // empty, and only a transfer can repopulate it), so without eager
  // transfers the publish-racing-claims window never opens and the fuzz
  // of that window is vacuous. Kept 0.0 by default so every pre-existing
  // (seed, config) reproduces its exact RNG stream.
  double p_owner_transfer = 0.0;
  // Per steal attempt, chance that a batch-capable thief issues
  // pop_top_batch(batch_limit) instead of a single pop_top. Deques without
  // a pop_top_batch method ignore it; AbpGrowableDeque additionally arms
  // its owner-side popBottom defense at construction iff this is nonzero.
  // Batches tighten the differential check: every item of a claimed batch
  // must still obey exactly-once + conservation against the lock-based
  // references running the identical config.
  double p_batch_steal = 0.0;
  std::size_t batch_limit = deque::kMaxStealBatch;
  std::uint64_t seed = 1;
  bool stop_at_first_bad_round = true;
};

struct Verdict {
  bool ok = true;
  std::uint64_t duplicates = 0;  // value returned more than once
  std::uint64_t lost = 0;        // value pushed but never returned
  std::uint64_t stale = 0;       // value from a different round
  std::uint64_t owner_pops = 0;
  std::uint64_t thief_steals = 0;   // items stolen (batch items included)
  std::uint64_t batch_steals = 0;   // successful pop_top_batch calls
  std::uint64_t batch_items = 0;    // items delivered by those calls
  std::uint64_t rounds_run = 0;
  std::uint64_t first_bad_round = 0;  // 1-based; 0 = none
  std::string deque;
  std::string policy;
  DriverConfig config;

  // One line that identifies the failing interleaving for replay.
  std::string repro() const {
    std::ostringstream os;
    os << (ok ? "differential OK" : "differential FAILED") << ": deque="
       << deque << " policy=\"" << policy << "\" seed=" << config.seed
       << " thieves=" << config.num_thieves << " rounds=" << rounds_run
       << "/" << config.rounds << " items=" << config.items_per_round
       << " p_drain=" << config.p_owner_drain
       << " p_batch=" << config.p_batch_steal
       << " | duplicates=" << duplicates << " lost=" << lost << " stale="
       << stale << " first_bad_round=" << first_bad_round
       << " owner_pops=" << owner_pops << " thief_steals=" << thief_steals
       << " batch_steals=" << batch_steals << " batch_items=" << batch_items;
    return os.str();
  }
};

// Runs the differential protocol on a fresh `Deque` under `policy`.
// The calling thread is the owner; `cfg.num_thieves` threads steal.
template <typename Deque>
Verdict run_differential(const char* deque_name, const DriverConfig& cfg,
                         std::shared_ptr<chaos::Policy> policy) {
  Verdict v;
  v.deque = deque_name;
  v.policy = policy->name();
  v.config = cfg;

  // AbpGrowableDeque must arm its owner-side popBottom defense at
  // construction before it will accept batch steals; the other deques take
  // just a capacity. (Guaranteed copy elision: Deque stays non-movable.)
  auto make_deque = [&cfg]() {
    if constexpr (std::is_constructible_v<Deque, std::size_t, std::size_t,
                                          bool>) {
      return Deque(cfg.deque_capacity, /*max_capacity=*/0,
                   /*enable_batch_steals=*/cfg.p_batch_steal > 0.0);
    } else {
      return Deque(cfg.deque_capacity);
    }
  };
  auto dq = make_deque();
  std::atomic<std::uint64_t> round_seq{0};
  std::atomic<bool> pushing_done{false};
  std::atomic<std::size_t> arrived{0};
  std::atomic<bool> quit{false};
  std::atomic<std::uint64_t> batch_steals{0};
  std::atomic<std::uint64_t> batch_items{0};
  std::vector<std::vector<std::uint32_t>> thief_popped(cfg.num_thieves);

  chaos::ChaosScope scope(policy, cfg.seed);

  auto thief_fn = [&](std::size_t me) {
    // Per-thief steal-mix RNG, split from the scope seed like the owner's,
    // so the batch/single decision sequence reproduces from the one seed.
    Xoshiro256 steal_rng;
    steal_rng.reseed(SplitMix64(cfg.seed ^ (0xba7c45ULL + me)).next());
    std::uint64_t seen_round = 0;
    for (;;) {
      while (round_seq.load(std::memory_order_acquire) == seen_round) {
        if (quit.load(std::memory_order_acquire)) return;
        std::this_thread::yield();
      }
      seen_round = round_seq.load(std::memory_order_acquire);
      for (;;) {
        if constexpr (requires(Deque& d) {
                        d.pop_top_batch(std::size_t{1});
                      }) {
          if (cfg.p_batch_steal > 0.0 &&
              steal_rng.chance(cfg.p_batch_steal)) {
            auto br = dq.pop_top_batch(cfg.batch_limit);
            if (br.status == deque::PopTopStatus::kSuccess) {
              for (std::size_t i = 0; i < br.count; ++i)
                thief_popped[me].push_back(br.items[i]);
              batch_steals.fetch_add(1, std::memory_order_relaxed);
              batch_items.fetch_add(br.count, std::memory_order_relaxed);
              continue;
            }
            if (br.status == deque::PopTopStatus::kEmpty &&
                pushing_done.load(std::memory_order_acquire)) {
              break;
            }
            std::this_thread::yield();  // lost race / owner still pushing
            continue;
          }
        }
        auto r = dq.pop_top_ex();
        if (r.item) {
          thief_popped[me].push_back(*r.item);
          continue;
        }
        if (r.status == deque::PopTopStatus::kEmpty &&
            pushing_done.load(std::memory_order_acquire)) {
          break;
        }
        std::this_thread::yield();  // lost race / owner still pushing
      }
      arrived.fetch_add(1, std::memory_order_acq_rel);
    }
  };

  std::vector<std::thread> thieves;
  thieves.reserve(cfg.num_thieves);
  for (std::size_t i = 0; i < cfg.num_thieves; ++i)
    thieves.emplace_back(thief_fn, i);

  // The owner's op-mix RNG is split from the scope seed so the workload and
  // the injection schedule reproduce from the one printed seed.
  Xoshiro256 owner_rng;
  owner_rng.reseed(SplitMix64(cfg.seed ^ 0x6f7764656571ULL).next());

  std::vector<std::uint32_t> owner_popped;
  std::vector<std::uint8_t> seen(cfg.items_per_round);

  for (std::uint64_t r = 1; r <= cfg.rounds; ++r) {
    for (auto& t : thief_popped) t.clear();
    owner_popped.clear();
    pushing_done.store(false, std::memory_order_release);
    arrived.store(0, std::memory_order_release);
    round_seq.store(r, std::memory_order_release);

    for (std::size_t i = 0; i < cfg.items_per_round; ++i) {
      dq.push_bottom(static_cast<std::uint32_t>((r << 8) | i));
      if (cfg.p_owner_transfer > 0.0 &&
          owner_rng.chance(cfg.p_owner_transfer)) {
        if constexpr (requires { dq.transfer(); }) dq.transfer();
      }
      if (owner_rng.chance(cfg.p_owner_yield)) std::this_thread::yield();
      if (owner_rng.chance(cfg.p_owner_drain)) {
        while (auto item = dq.pop_bottom()) owner_popped.push_back(*item);
        if (owner_rng.chance(cfg.p_owner_yield)) std::this_thread::yield();
      }
    }
    pushing_done.store(true, std::memory_order_release);
    while (auto item = dq.pop_bottom()) owner_popped.push_back(*item);
    while (arrived.load(std::memory_order_acquire) != cfg.num_thieves)
      std::this_thread::yield();
    v.rounds_run = r;

    // Reconcile: every (round, index) exactly once across owner + thieves.
    std::fill(seen.begin(), seen.end(), std::uint8_t{0});
    auto account = [&](std::uint32_t value) {
      const std::uint64_t value_round = value >> 8;
      const std::size_t index = value & 0xff;
      if (value_round != r || index >= cfg.items_per_round) {
        ++v.stale;
        return;
      }
      if (seen[index] != 0xff) ++seen[index];
      if (seen[index] > 1) ++v.duplicates;
    };
    v.owner_pops += owner_popped.size();
    for (std::uint32_t x : owner_popped) account(x);
    for (const auto& t : thief_popped) {
      v.thief_steals += t.size();
      for (std::uint32_t x : t) account(x);
    }
    std::uint64_t lost_this_round = 0;
    for (std::size_t i = 0; i < cfg.items_per_round; ++i)
      if (seen[i] == 0) ++lost_this_round;
    v.lost += lost_this_round;

    if (v.duplicates + v.lost + v.stale > 0) {
      if (v.first_bad_round == 0) v.first_bad_round = r;
      v.ok = false;
      if (cfg.stop_at_first_bad_round) break;
    }
  }

  quit.store(true, std::memory_order_release);
  for (auto& t : thieves) t.join();
  v.batch_steals = batch_steals.load(std::memory_order_relaxed);
  v.batch_items = batch_items.load(std::memory_order_relaxed);
  return v;
}

// ---- linearizability mode --------------------------------------------------
//
// A small-history variant that records every operation with (start, end)
// stamps from a global atomic clock and feeds the completed history into
// model::check_relaxed_linearizable — the §3.2 specification checker built
// for the instruction-level model, here applied to the real std::atomic
// deque under injected stalls. Histories are kept small (the checker's
// memoized search keys on a 64-bit linearized-set bitmask).

struct HistoryConfig {
  std::size_t num_thieves = 2;
  std::size_t pushes = 14;              // <= 255; values are 0..pushes-1
  std::size_t pop_top_attempts = 7;     // per thief
  double p_owner_pop = 0.3;             // chance of a popBottom after a push
  double p_owner_yield = 0.3;           // owner preemption between ops
  std::uint64_t seed = 1;
};

// Runs one seeded concurrent round and returns the recorded history
// (already merged; order is irrelevant to the checker).
template <typename Deque>
std::vector<model::HistoryEvent> record_history(
    const HistoryConfig& cfg, std::shared_ptr<chaos::Policy> policy) {
  Deque dq(256);
  std::atomic<std::uint64_t> clock{0};
  std::atomic<bool> go{false};
  std::vector<std::vector<model::HistoryEvent>> per_thief(cfg.num_thieves);

  chaos::ChaosScope scope(policy, cfg.seed);

  auto thief_fn = [&](std::size_t me) {
    while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
    for (std::size_t i = 0; i < cfg.pop_top_attempts; ++i) {
      model::HistoryEvent e;
      e.method = model::Method::kPopTop;
      e.start = clock.fetch_add(1, std::memory_order_acq_rel);
      auto r = dq.pop_top();
      e.end = clock.fetch_add(1, std::memory_order_acq_rel);
      e.result = r ? static_cast<std::uint8_t>(*r)
                   : model::SharedDeque::kEmptySlot;
      per_thief[me].push_back(e);
    }
  };

  std::vector<std::thread> thieves;
  thieves.reserve(cfg.num_thieves);
  for (std::size_t i = 0; i < cfg.num_thieves; ++i)
    thieves.emplace_back(thief_fn, i);

  Xoshiro256 owner_rng;
  owner_rng.reseed(SplitMix64(cfg.seed ^ 0x686973746fULL).next());
  std::vector<model::HistoryEvent> history;
  go.store(true, std::memory_order_release);
  for (std::size_t i = 0; i < cfg.pushes; ++i) {
    model::HistoryEvent push;
    push.method = model::Method::kPushBottom;
    push.arg = static_cast<std::uint8_t>(i);
    push.start = clock.fetch_add(1, std::memory_order_acq_rel);
    dq.push_bottom(static_cast<std::uint32_t>(i));
    // Deques with a private segment publish INSIDE the recorded push
    // window, so the recorded operation is push-and-publish. The §3.2
    // spec is stated over published work — a popTop is allowed to miss
    // items the owner has not transferred yet, so an unflushed private
    // segment would read as a spurious NIL to the checker.
    if constexpr (requires { dq.transfer(); }) dq.transfer();
    push.end = clock.fetch_add(1, std::memory_order_acq_rel);
    history.push_back(push);
    if (owner_rng.chance(cfg.p_owner_yield)) std::this_thread::yield();
    if (owner_rng.chance(cfg.p_owner_pop)) {
      model::HistoryEvent pop;
      pop.method = model::Method::kPopBottom;
      pop.start = clock.fetch_add(1, std::memory_order_acq_rel);
      auto r = dq.pop_bottom();
      pop.end = clock.fetch_add(1, std::memory_order_acq_rel);
      pop.result = r ? static_cast<std::uint8_t>(*r)
                     : model::SharedDeque::kEmptySlot;
      history.push_back(pop);
    }
  }
  for (auto& t : thieves) t.join();
  for (const auto& tv : per_thief)
    history.insert(history.end(), tv.begin(), tv.end());
  return history;
}

template <typename Deque>
bool history_is_relaxed_linearizable(const HistoryConfig& cfg,
                                     std::shared_ptr<chaos::Policy> policy) {
  return model::check_relaxed_linearizable(record_history<Deque>(cfg, policy));
}

}  // namespace abp::chaostest
