// Serial-semantics tests for the work-stealing deques. Typed tests run
// the same suite against every implementation; a randomized model check
// compares each against a reference std::deque.

#include <gtest/gtest.h>

#include <deque>
#include <optional>

#include "deque/abp_deque.hpp"
#include "deque/abp_growable_deque.hpp"
#include "deque/chase_lev_deque.hpp"
#include "deque/deque_concept.hpp"
#include "deque/mutex_deque.hpp"
#include "deque/spinlock_deque.hpp"
#include "deque/split_deque.hpp"
#include "support/rng.hpp"

namespace abp::deque {
namespace {

using Item = std::uint64_t;

static_assert(WorkStealingDeque<AbpDeque<Item>, Item>);
static_assert(WorkStealingDeque<AbpGrowableDeque<Item>, Item>);
static_assert(WorkStealingDeque<ChaseLevDeque<Item>, Item>);
static_assert(WorkStealingDeque<MutexDeque<Item>, Item>);
static_assert(WorkStealingDeque<SpinlockDeque<Item>, Item>);
static_assert(WorkStealingDeque<SplitDeque<Item>, Item>);

// The split deque keeps pushes private until the owner publishes them;
// top-side semantics tests flush before stealing. No-op for the rest.
template <typename D>
void publish_all(D& d) {
  if constexpr (requires { d.transfer(); }) d.transfer();
}

template <typename D>
class DequeSerial : public ::testing::Test {
 public:
  D deque{1024};
};

using DequeTypes =
    ::testing::Types<AbpDeque<Item>, AbpGrowableDeque<Item>,
                     ChaseLevDeque<Item>, SplitDeque<Item>,
                     MutexDeque<Item>, SpinlockDeque<Item>>;
TYPED_TEST_SUITE(DequeSerial, DequeTypes);

TYPED_TEST(DequeSerial, StartsEmpty) {
  EXPECT_TRUE(this->deque.empty_hint());
  EXPECT_EQ(this->deque.size_hint(), 0u);
  EXPECT_FALSE(this->deque.pop_bottom().has_value());
  EXPECT_FALSE(this->deque.pop_top().has_value());
}

TYPED_TEST(DequeSerial, PopBottomIsLifo) {
  for (Item i = 0; i < 10; ++i) this->deque.push_bottom(i);
  for (Item i = 10; i-- > 0;) {
    auto v = this->deque.pop_bottom();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(this->deque.pop_bottom().has_value());
}

TYPED_TEST(DequeSerial, PopTopIsFifo) {
  for (Item i = 0; i < 10; ++i) this->deque.push_bottom(i);
  publish_all(this->deque);
  for (Item i = 0; i < 10; ++i) {
    auto v = this->deque.pop_top();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(this->deque.pop_top().has_value());
}

TYPED_TEST(DequeSerial, PopTopExReportsStatus) {
  // Single-threaded there is no CAS race to lose: pop_top_ex() returns
  // kEmpty or kSuccess, and agrees with pop_top()'s item semantics.
  auto r = this->deque.pop_top_ex();
  EXPECT_FALSE(r.item.has_value());
  EXPECT_EQ(r.status, PopTopStatus::kEmpty);

  for (Item i = 0; i < 3; ++i) this->deque.push_bottom(i);
  publish_all(this->deque);
  for (Item i = 0; i < 3; ++i) {
    auto s = this->deque.pop_top_ex();
    EXPECT_EQ(s.status, PopTopStatus::kSuccess);
    ASSERT_TRUE(s.item.has_value());
    EXPECT_EQ(*s.item, i);
  }
  EXPECT_EQ(this->deque.pop_top_ex().status, PopTopStatus::kEmpty);
}

TYPED_TEST(DequeSerial, MixedEndsMeetInMiddle) {
  for (Item i = 0; i < 6; ++i) this->deque.push_bottom(i);
  publish_all(this->deque);
  EXPECT_EQ(*this->deque.pop_top(), 0u);
  EXPECT_EQ(*this->deque.pop_bottom(), 5u);
  EXPECT_EQ(*this->deque.pop_top(), 1u);
  EXPECT_EQ(*this->deque.pop_bottom(), 4u);
  EXPECT_EQ(*this->deque.pop_top(), 2u);
  EXPECT_EQ(*this->deque.pop_bottom(), 3u);
  EXPECT_FALSE(this->deque.pop_top().has_value());
  EXPECT_FALSE(this->deque.pop_bottom().has_value());
}

TYPED_TEST(DequeSerial, SingleElementFromEitherEnd) {
  this->deque.push_bottom(42);
  publish_all(this->deque);
  EXPECT_EQ(*this->deque.pop_top(), 42u);
  this->deque.push_bottom(43);
  EXPECT_EQ(*this->deque.pop_bottom(), 43u);
}

TYPED_TEST(DequeSerial, SizeHintTracks) {
  for (Item i = 0; i < 5; ++i) this->deque.push_bottom(i);
  EXPECT_EQ(this->deque.size_hint(), 5u);
  publish_all(this->deque);
  this->deque.pop_top();
  this->deque.pop_bottom();
  EXPECT_EQ(this->deque.size_hint(), 3u);
  EXPECT_FALSE(this->deque.empty_hint());
}

TYPED_TEST(DequeSerial, DrainAndRefillRepeatedly) {
  for (int cycle = 0; cycle < 50; ++cycle) {
    for (Item i = 0; i < 8; ++i) this->deque.push_bottom(cycle * 100 + i);
    publish_all(this->deque);
    for (Item i = 0; i < 8; ++i)
      ASSERT_TRUE((cycle % 2 ? this->deque.pop_bottom()
                             : this->deque.pop_top())
                      .has_value());
    ASSERT_TRUE(this->deque.empty_hint());
  }
}

TYPED_TEST(DequeSerial, RandomizedModelCheck) {
  // Compare against std::deque under a random op sequence.
  Xoshiro256 rng(2024);
  std::deque<Item> model;
  Item next = 0;
  for (int step = 0; step < 20000; ++step) {
    const auto op = rng.below(3);
    if (op == 0 && model.size() < 900) {
      this->deque.push_bottom(next);
      model.push_back(next);
      ++next;
    } else if (op == 1) {
      auto got = this->deque.pop_bottom();
      if (model.empty()) {
        ASSERT_FALSE(got.has_value());
      } else {
        ASSERT_TRUE(got.has_value());
        ASSERT_EQ(*got, model.back());
        model.pop_back();
      }
    } else if (op == 2) {
      publish_all(this->deque);
      auto got = this->deque.pop_top();
      if (model.empty()) {
        ASSERT_FALSE(got.has_value());
      } else {
        ASSERT_TRUE(got.has_value());
        ASSERT_EQ(*got, model.front());
        model.pop_front();
      }
    }
  }
  EXPECT_EQ(this->deque.size_hint(), model.size());
}

// Repeated empty -> nonempty -> empty cycles far past any tag/epoch
// window. The split deque bumps its 16-bit republish tag on every
// transfer and reclaim (~1.5 bumps/cycle here), so 70k cycles cross the
// 2^16 wrap; the ABP deques exercise index reset/reuse at the same scale.
TYPED_TEST(DequeSerial, EmptyNonEmptyCyclesSurviveTagWraparound) {
  constexpr int kCycles = 70'000;
  for (int cycle = 0; cycle < kCycles; ++cycle) {
    this->deque.push_bottom(static_cast<Item>(cycle));
    publish_all(this->deque);
    auto v = (cycle & 1) ? this->deque.pop_bottom() : this->deque.pop_top();
    ASSERT_TRUE(v.has_value()) << "cycle " << cycle;
    ASSERT_EQ(*v, static_cast<Item>(cycle));
    ASSERT_TRUE(this->deque.empty_hint());
  }
  EXPECT_FALSE(this->deque.pop_bottom().has_value());
  EXPECT_FALSE(this->deque.pop_top().has_value());
}

// ---- implementation-specific behaviours -------------------------------------

TEST(AbpDequeSpecific, TagBumpsOnEmptyingPopBottom) {
  AbpDeque<Item> d(64);
  const auto tag0 = d.tag_hint();
  d.push_bottom(1);
  d.push_bottom(2);
  ASSERT_TRUE(d.pop_bottom().has_value());  // 2 left -> no reset
  EXPECT_EQ(d.tag_hint(), tag0);
  ASSERT_TRUE(d.pop_bottom().has_value());  // last item -> reset, tag bump
  EXPECT_EQ(d.tag_hint(), tag0 + 1);
}

TEST(AbpDequeSpecific, CapacityOverflowAborts) {
  AbpDeque<Item> d(4);
  for (Item i = 0; i < 4; ++i) d.push_bottom(i);
  EXPECT_DEATH(d.push_bottom(99), "overflow");
}

TEST(AbpDequeSpecific, ReusesSlotsAfterReset) {
  // bot returns to 0 whenever the deque empties via pop_bottom, so a small
  // capacity suffices for arbitrarily many push/pop cycles.
  AbpDeque<Item> d(2);
  for (int i = 0; i < 1000; ++i) {
    d.push_bottom(static_cast<Item>(i));
    ASSERT_TRUE(d.pop_bottom().has_value());
  }
}

TEST(AbpGrowableSpecific, GrowsBeyondInitialCapacity) {
  AbpGrowableDeque<Item> d(8);
  for (Item i = 0; i < 5000; ++i) d.push_bottom(i);
  EXPECT_EQ(d.size_hint(), 5000u);
  EXPECT_GE(d.capacity(), 5000u);
  for (Item i = 0; i < 5000; ++i) {
    auto v = d.pop_top();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
}

TEST(AbpGrowableSpecific, TagBumpsOnEmptyingPopBottom) {
  AbpGrowableDeque<Item> d(8);
  const auto tag0 = d.tag_hint();
  d.push_bottom(1);
  ASSERT_TRUE(d.pop_bottom().has_value());
  EXPECT_EQ(d.tag_hint(), tag0 + 1);
}

TEST(AbpGrowableSpecific, IndexSpaceReclaimedOnReset) {
  // After an emptying pop_bottom, bot returns to 0, so capacity does not
  // creep for balanced push/pop usage.
  AbpGrowableDeque<Item> d(8);
  for (int cycle = 0; cycle < 10000; ++cycle) {
    d.push_bottom(static_cast<Item>(cycle));
    ASSERT_TRUE(d.pop_bottom().has_value());
  }
  EXPECT_EQ(d.capacity(), 8u);
}

TEST(SplitDequeSpecific, PushesStayPrivateUntilTransfer) {
  // The whole point of the split design: pushes land in the private
  // segment with no fence, invisible to thieves until the owner
  // publishes. pop_bottom works on private items without a transfer.
  SplitDeque<Item> d(64);
  d.push_bottom(1);
  d.push_bottom(2);
  EXPECT_FALSE(d.pop_top().has_value());  // still private
  EXPECT_EQ(d.size_hint(), 2u);           // but counted
  d.transfer();
  EXPECT_EQ(*d.pop_top(), 1u);
  EXPECT_EQ(*d.pop_bottom(), 2u);  // reclaimed from public
}

TEST(SplitDequeSpecific, TagBumpsOnPublishAndReclaimNotOnClaims) {
  SplitDeque<Item> d(64);
  const auto tag0 = d.tag_hint();
  d.push_bottom(1);
  EXPECT_EQ(d.tag_hint(), tag0);  // private push: no shared-word write
  d.transfer();
  EXPECT_EQ(d.tag_hint(), tag0 + 1);  // publish bumps
  d.transfer();
  EXPECT_EQ(d.tag_hint(), tag0 + 1);  // nothing new to publish: no-op
  d.push_bottom(2);
  d.transfer();
  EXPECT_EQ(d.tag_hint(), tag0 + 2);
  ASSERT_TRUE(d.pop_top().has_value());
  EXPECT_EQ(d.tag_hint(), tag0 + 2);  // thief claim leaves the tag alone
  ASSERT_TRUE(d.pop_bottom().has_value());  // public reclaim bumps
  EXPECT_EQ(d.tag_hint(), tag0 + 3);
}

TEST(SplitDequeSpecific, TagWrapsModulo16BitsAndStaysCorrect) {
  // Each push + transfer + pop_bottom cycle bumps the tag exactly twice
  // (publish, then reclaim of the lone public item), so 40k cycles push
  // the 16-bit tag once around the wrap.
  SplitDeque<Item> d(8);
  constexpr std::uint32_t kCycles = 40'000;
  for (std::uint32_t i = 0; i < kCycles; ++i) {
    d.push_bottom(i);
    d.transfer();
    auto v = d.pop_bottom();
    ASSERT_TRUE(v.has_value()) << "cycle " << i;
    ASSERT_EQ(*v, i);
  }
  EXPECT_EQ(d.tag_hint(), (2 * kCycles) & 0xffffu);
  EXPECT_TRUE(d.empty_hint());
  // Still fully functional on the far side of the wrap.
  d.push_bottom(1);
  d.push_bottom(2);
  d.transfer();
  EXPECT_EQ(*d.pop_top(), 1u);
  EXPECT_EQ(*d.pop_bottom(), 2u);
}

TEST(SplitDequeSpecific, CapacityOverflowAborts) {
  SplitDeque<Item> d(4);
  for (Item i = 0; i < 4; ++i) d.push_bottom(i);
  EXPECT_DEATH(d.push_bottom(99), "overflow");
}

TEST(SplitDequeSpecific, PushExReportsFullAndRecoversAfterSteals) {
  SplitDeque<Item> d(4);
  for (Item i = 0; i < 4; ++i)
    ASSERT_EQ(d.push_bottom_ex(i), PushStatus::kOk);
  EXPECT_NE(d.push_bottom_ex(99), PushStatus::kOk);
  d.transfer();
  ASSERT_TRUE(d.pop_top().has_value());  // a steal frees ring space
  EXPECT_EQ(d.push_bottom_ex(99), PushStatus::kOk);
}

TEST(ChaseLevSpecific, GrowsBeyondInitialCapacity) {
  ChaseLevDeque<Item> d(4);
  for (Item i = 0; i < 1000; ++i) d.push_bottom(i);
  EXPECT_EQ(d.size_hint(), 1000u);
  for (Item i = 0; i < 1000; ++i) {
    auto v = d.pop_top();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
}

TEST(AbpDequeSpecific, TopPopsDoNotReclaimSpace) {
  // pop_top advances `top` without moving `bot` back, so a deque that is
  // filled once and drained from the top cannot be refilled past capacity
  // until a pop_bottom resets it. This documents the paper's fixed-array
  // behaviour (Hood sized deques generously for this reason).
  AbpDeque<Item> d(8);
  for (Item i = 0; i < 8; ++i) d.push_bottom(i);
  for (Item i = 0; i < 8; ++i) ASSERT_TRUE(d.pop_top().has_value());
  EXPECT_TRUE(d.empty_hint());
  // A pop_bottom on the empty deque resets bot and top to 0.
  EXPECT_FALSE(d.pop_bottom().has_value());
  d.push_bottom(100);
  EXPECT_EQ(*d.pop_top(), 100u);
}

}  // namespace
}  // namespace abp::deque
