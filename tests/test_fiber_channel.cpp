// Blocking-path coverage for fiber/channel.hpp, run under the `sanitize`
// label so TSan checks the semaphore/spinlock hand-offs that the basic
// Channel suite (test_fiber_sync.cpp) exercises only lightly. The focus
// is the two Block cases of §3.1 as the channel surfaces them: a send
// into a full buffer and a receive from an empty one must park the
// calling fiber (freeing its worker) and resume it with the value — and
// every payload crossing the buffer must be ordered by the semaphore
// protocol, which is exactly what TSan verifies here.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "fiber/channel.hpp"
#include "fiber/fiber.hpp"

namespace abp::fiber {
namespace {

runtime::SchedulerOptions opts(std::size_t workers) {
  runtime::SchedulerOptions o;
  o.num_workers = workers;
  o.yield = runtime::YieldPolicy::kYield;
  return o;
}

// A send into a full channel must block until a receive frees a slot —
// observable as: the producer cannot run ahead of the consumer by more
// than the buffer capacity.
TEST(ChannelBlocking, SendBlocksWhenFull) {
  FiberScheduler fs(opts(2));
  constexpr int kItems = 500;
  constexpr std::size_t kCap = 4;
  std::atomic<int> sent{0}, received{0};
  int max_lead = 0;
  fs.run([&] {
    Channel<int> ch(kCap);
    auto* producer = FiberScheduler::spawn([&] {
      for (int i = 0; i < kItems; ++i) {
        ch.send(i);
        sent.fetch_add(1, std::memory_order_relaxed);
      }
    });
    for (int i = 0; i < kItems; ++i) {
      EXPECT_EQ(ch.receive(), i);
      const int r = received.fetch_add(1, std::memory_order_relaxed) + 1;
      // The producer may have completed sends only for items that fit
      // in the buffer beyond what we consumed: lead <= capacity + 1
      // (one send may be mid-flight past its slots_.p()).
      const int lead = sent.load(std::memory_order_relaxed) - r;
      if (lead > max_lead) max_lead = lead;
    }
    FiberScheduler::join(producer);
  });
  EXPECT_LE(max_lead, static_cast<int>(kCap) + 1);
  EXPECT_EQ(sent.load(), kItems);
}

// A receive from an empty channel must block until a send arrives; the
// consumer observes every producer-side write that happened before the
// send (the semaphore's v() publishes it).
TEST(ChannelBlocking, ReceiveBlocksUntilSend) {
  FiberScheduler fs(opts(2));
  int observed = -1;
  int side_effect = 0;
  fs.run([&] {
    Channel<int> ch(8);
    auto* consumer = FiberScheduler::spawn([&] {
      observed = ch.receive();  // channel is empty: must park, not spin-fail
    });
    auto* producer = FiberScheduler::spawn([&] {
      side_effect = 42;  // ordered before the send's publication
      ch.send(7);
    });
    FiberScheduler::join(consumer);
    FiberScheduler::join(producer);
    EXPECT_EQ(observed, 7);
    EXPECT_EQ(side_effect, 42);
  });
}

// Capacity-1 rendezvous under many workers: every item hands off through
// the single slot, so FIFO order survives arbitrary interleaving of the
// two fibers across workers.
TEST(ChannelBlocking, RendezvousOrderUnderContention) {
  FiberScheduler fs(opts(4));
  constexpr int kItems = 300;
  std::vector<int> got;
  fs.run([&] {
    Channel<int> ch(1);
    auto* producer = FiberScheduler::spawn([&] {
      for (int i = 0; i < kItems; ++i) ch.send(i);
    });
    for (int i = 0; i < kItems; ++i) got.push_back(ch.receive());
    FiberScheduler::join(producer);
  });
  ASSERT_EQ(got.size(), static_cast<std::size_t>(kItems));
  for (int i = 0; i < kItems; ++i) EXPECT_EQ(got[i], i);
}

// MPMC conservation through a tiny buffer: every sent value arrives
// exactly once, none invented, none lost — the strongest statement the
// channel makes, checked as multiset equality rather than a sum so a
// duplicate+drop pair cannot cancel out.
TEST(ChannelBlocking, MpmcExactlyOnceDelivery) {
  FiberScheduler fs(opts(4));
  constexpr int kProducers = 3, kConsumers = 4;
  constexpr int kPerProducer = 200;
  constexpr int kTotal = kProducers * kPerProducer;
  std::atomic<int> claimed{0};
  std::vector<std::vector<int>> per_consumer(kConsumers);
  fs.run([&] {
    Channel<int> ch(2);
    std::vector<Fiber*> fibers;
    for (int p = 0; p < kProducers; ++p) {
      fibers.push_back(FiberScheduler::spawn([&, p] {
        for (int i = 0; i < kPerProducer; ++i)
          ch.send(p * kPerProducer + i);
      }));
    }
    for (int c = 0; c < kConsumers; ++c) {
      fibers.push_back(FiberScheduler::spawn([&, c] {
        while (claimed.fetch_add(1, std::memory_order_relaxed) < kTotal)
          per_consumer[c].push_back(ch.receive());
      }));
    }
    for (Fiber* f : fibers) FiberScheduler::join(f);
  });
  std::multiset<int> seen;
  for (const auto& v : per_consumer) seen.insert(v.begin(), v.end());
  ASSERT_EQ(seen.size(), static_cast<std::size_t>(kTotal));
  for (int i = 0; i < kTotal; ++i)
    EXPECT_EQ(seen.count(i), 1u) << "value " << i;
}

// Move-only payload across a blocking hand-off: the slot write happens
// under the channel's spinlock, the read under the same lock after the
// items_ semaphore — TSan validates the pairing; the test validates the
// value survives intact.
TEST(ChannelBlocking, MoveOnlyPayloadSurvivesHandoff) {
  FiberScheduler fs(opts(2));
  std::vector<std::string> got;
  fs.run([&] {
    Channel<std::unique_ptr<std::string>> ch(1);
    auto* producer = FiberScheduler::spawn([&] {
      for (int i = 0; i < 20; ++i)
        ch.send(std::make_unique<std::string>("item-" + std::to_string(i)));
    });
    for (int i = 0; i < 20; ++i) {
      auto p = ch.receive();
      ASSERT_NE(p, nullptr);
      got.push_back(*p);
    }
    FiberScheduler::join(producer);
  });
  ASSERT_EQ(got.size(), 20u);
  for (int i = 0; i < 20; ++i)
    EXPECT_EQ(got[i], "item-" + std::to_string(i));
}

}  // namespace
}  // namespace abp::fiber
