// Property-based fuzzing of the deque model checker: random small scripts
// (owner pushes/pops, thieves steal) must pass the exactly-once,
// conservation and non-blocking checks for EVERY adversarial interleaving.
// Each parameterized case explores one random configuration exhaustively,
// so a single test here covers millions of concrete schedules.

#include <gtest/gtest.h>

#include "model/explorer.hpp"
#include "support/rng.hpp"

namespace abp::model {
namespace {

struct FuzzCase {
  std::uint64_t seed;
  std::size_t thieves;
};

class ModelFuzz : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(ModelFuzz, RandomScriptsPassAllChecks) {
  const auto& param = GetParam();
  Xoshiro256 rng(param.seed);

  // Owner: random sequence of pushes (distinct small values) and pops,
  // never exceeding the model deque capacity.
  Script owner;
  std::uint8_t next_value = 1;
  int live = 0;
  const int owner_ops = 3 + static_cast<int>(rng.below(3));
  for (int i = 0; i < owner_ops; ++i) {
    const bool can_push = live < static_cast<int>(SharedDeque::kCapacity) - 1 &&
                          next_value < 60;
    if (can_push && (live == 0 || rng.chance(0.6))) {
      owner.push_back(Op{Method::kPushBottom, next_value++});
      ++live;
    } else {
      owner.push_back(Op{Method::kPopBottom, 0});
      if (live > 0) --live;
    }
  }

  std::vector<Script> scripts{owner};
  for (std::size_t t = 0; t < param.thieves; ++t) {
    Script thief;
    const int steals = 1 + static_cast<int>(rng.below(2));
    for (int i = 0; i < steals; ++i) thief.push_back(Op{Method::kPopTop, 0});
    scripts.push_back(std::move(thief));
  }

  ExploreOptions opts;
  opts.max_states = 2'000'000;
  const auto r = explore(scripts, opts);
  ASSERT_FALSE(r.truncated) << "state space larger than expected";
  EXPECT_TRUE(r.passed()) << r.violation << " (seed " << param.seed << ")";
  EXPECT_TRUE(r.nonblocking) << "seed " << param.seed;
  EXPECT_LE(r.max_solo_steps, kAbpMaxSteps);
}

std::vector<FuzzCase> fuzz_cases() {
  std::vector<FuzzCase> cases;
  for (std::uint64_t seed = 1; seed <= 12; ++seed)
    cases.push_back({seed, 1 + seed % 2});  // 1 or 2 thieves
  for (std::uint64_t seed = 100; seed < 104; ++seed)
    cases.push_back({seed, 3});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Random, ModelFuzz,
                         ::testing::ValuesIn(fuzz_cases()),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param.seed) +
                                  "_t" + std::to_string(info.param.thieves);
                         });

// The spinlock machine passes the same safety fuzz (it is correct) but is
// flagged as blocking whenever there is any concurrency at all.
TEST(ModelFuzzSpin, SafeButBlockingAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    Xoshiro256 rng(seed * 31);
    Script owner{Op{Method::kPushBottom, 1}, Op{Method::kPushBottom, 2},
                 Op{Method::kPopBottom, 0}};
    if (rng.chance(0.5)) owner.push_back(Op{Method::kPopBottom, 0});
    std::vector<Script> scripts{owner, {Op{Method::kPopTop, 0}}};
    ExploreOptions opts;
    opts.use_spinlock = true;
    const auto r = explore(scripts, opts);
    EXPECT_TRUE(r.passed()) << r.violation;
    EXPECT_FALSE(r.nonblocking);
  }
}

}  // namespace
}  // namespace abp::model
