// Tests for the multiprogrammed job-mix simulator (§1 scenario, §5
// kernel-discipline comparison): every job completes under every policy,
// each job individually meets the paper's bound with respect to its own
// measured PA, and the qualitative §5 separations hold (coscheduling
// wastes the machine on serial jobs; process control reclaims it).

#include <gtest/gtest.h>

#include "dag/builders.hpp"
#include "sched/multiprog.hpp"

namespace abp::sched {
namespace {

const AllocationPolicy kAllPolicies[] = {
    AllocationPolicy::kSpacePartition,
    AllocationPolicy::kCoschedule,
    AllocationPolicy::kEquipartition,
    AllocationPolicy::kProcessControl,
};

TEST(Multiprog, PolicyNames) {
  EXPECT_STREQ(to_string(AllocationPolicy::kSpacePartition),
               "space-partition");
  EXPECT_STREQ(to_string(AllocationPolicy::kCoschedule), "coschedule");
  EXPECT_STREQ(to_string(AllocationPolicy::kEquipartition),
               "equipartition");
  EXPECT_STREQ(to_string(AllocationPolicy::kProcessControl),
               "process-control");
}

TEST(Multiprog, SingleJobDedicatedEquivalence) {
  // One job on the whole machine behaves like a dedicated run.
  const auto d = dag::fib_dag(12);
  JobSpec job{&d, 8, Options{}};
  MultiprogOptions mo;
  mo.processors = 8;
  mo.policy = AllocationPolicy::kEquipartition;
  const auto r = run_multiprogrammed({job}, mo);
  ASSERT_TRUE(r.jobs[0].completed);
  EXPECT_EQ(r.makespan, r.jobs[0].finish_round);
  EXPECT_NEAR(r.jobs[0].metrics.processor_average, 8.0, 1e-9);
  EXPECT_LT(r.jobs[0].metrics.bound_ratio(), 3.0);
}

class MultiprogPolicies
    : public ::testing::TestWithParam<AllocationPolicy> {};

TEST_P(MultiprogPolicies, AllJobsCompleteAndMeetTheirBound) {
  const auto parallel_a = dag::fib_dag(12);
  const auto parallel_b = dag::wide(48, 6);
  const auto serial = dag::chain(400);
  Options job_opts;
  const std::vector<JobSpec> jobs = {
      {&parallel_a, 8, job_opts},
      {&parallel_b, 8, job_opts},
      {&serial, 1, job_opts},
  };
  MultiprogOptions mo;
  mo.processors = 8;
  mo.policy = GetParam();
  mo.seed = 11;
  const auto r = run_multiprogrammed(jobs, mo);
  ASSERT_EQ(r.jobs.size(), 3u);
  for (std::size_t i = 0; i < r.jobs.size(); ++i) {
    ASSERT_TRUE(r.jobs[i].completed) << "job " << i;
    EXPECT_TRUE(r.jobs[i].metrics.enabling_violation.empty());
    // The paper's per-job guarantee: T = O(T1/PA + Tinf*P/PA) with PA the
    // share this job actually received under this kernel discipline.
    EXPECT_LT(r.jobs[i].metrics.bound_ratio(), 3.0)
        << "job " << i << " under " << to_string(GetParam());
  }
  EXPECT_GT(r.utilization, 0.0);
  EXPECT_LE(r.utilization, 1.0 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, MultiprogPolicies,
                         ::testing::ValuesIn(kAllPolicies),
                         [](const auto& info) {
                           std::string name = to_string(info.param);
                           for (char& c : name)
                             if (c == '-') c = '_';
                           return name;
                         });

TEST(Multiprog, CoschedulingWastesMachineOnSerialJob) {
  // §5: "a job mix consisting of one parallel computation and one serial
  // computation cannot be coscheduled efficiently." During the serial
  // job's quanta, Q-1 of Q processors idle.
  const auto parallel = dag::fib_dag(13);
  const auto serial = dag::chain(2000);
  Options job_opts;
  const std::vector<JobSpec> jobs = {
      {&parallel, 8, job_opts},
      {&serial, 1, job_opts},
  };
  MultiprogOptions gang, pc;
  gang.processors = pc.processors = 8;
  gang.policy = AllocationPolicy::kCoschedule;
  pc.policy = AllocationPolicy::kProcessControl;
  const auto r_gang = run_multiprogrammed(jobs, gang);
  const auto r_pc = run_multiprogrammed(jobs, pc);
  ASSERT_TRUE(r_gang.jobs[0].completed && r_gang.jobs[1].completed);
  ASSERT_TRUE(r_pc.jobs[0].completed && r_pc.jobs[1].completed);
  // The serial job bounds the makespan for every policy (its chain runs
  // one node per round regardless); the coscheduling waste shows in the
  // *parallel* job, which stalls completely during the serial job's gang
  // quanta. Under process control it overlaps the serial job instead.
  EXPECT_GT(r_gang.jobs[0].finish_round,
            r_pc.jobs[0].finish_round * 1.3);
}

TEST(Multiprog, ProcessControlReclaimsIdleShares) {
  // Equipartition gives the serial job Q/2 processors it cannot use;
  // process control caps it at its busy-process count.
  const auto parallel = dag::fib_dag(13);
  const auto serial = dag::chain(1200);
  Options job_opts;
  const std::vector<JobSpec> jobs = {
      {&parallel, 8, job_opts},
      {&serial, 8, job_opts},  // a "parallel" app with no parallelism
  };
  MultiprogOptions equi, pc;
  equi.processors = pc.processors = 8;
  equi.policy = AllocationPolicy::kEquipartition;
  pc.policy = AllocationPolicy::kProcessControl;
  const auto r_equi = run_multiprogrammed(jobs, equi);
  const auto r_pc = run_multiprogrammed(jobs, pc);
  ASSERT_TRUE(r_pc.jobs[0].completed && r_pc.jobs[1].completed);
  // The parallel job finishes sooner under process control because the
  // serial job's unused share is redistributed to it.
  EXPECT_LT(r_pc.jobs[0].finish_round, r_equi.jobs[0].finish_round);
}

TEST(Multiprog, SpacePartitionHoldsShareAfterFinish) {
  // A tiny job finishes early; its static share then idles, hurting the
  // mix relative to equipartition.
  const auto big = dag::fib_dag(13);
  const auto tiny = dag::chain(10);
  Options job_opts;
  const std::vector<JobSpec> jobs = {
      {&big, 8, job_opts},
      {&tiny, 4, job_opts},
  };
  MultiprogOptions space, equi;
  space.processors = equi.processors = 8;
  space.policy = AllocationPolicy::kSpacePartition;
  equi.policy = AllocationPolicy::kEquipartition;
  const auto r_space = run_multiprogrammed(jobs, space);
  const auto r_equi = run_multiprogrammed(jobs, equi);
  ASSERT_TRUE(r_space.jobs[0].completed);
  ASSERT_TRUE(r_equi.jobs[0].completed);
  EXPECT_LT(r_equi.makespan, r_space.makespan);
}

TEST(Multiprog, GrantedSlotsNeverExceedCapacity) {
  const auto a = dag::fib_dag(11);
  const auto b = dag::grid_wavefront(20, 20);
  Options job_opts;
  for (const auto policy : kAllPolicies) {
    MultiprogOptions mo;
    mo.processors = 6;
    mo.policy = policy;
    const auto r = run_multiprogrammed(
        {{&a, 6, job_opts}, {&b, 6, job_opts}}, mo);
    EXPECT_LE(r.granted_slots, r.capacity_slots) << to_string(policy);
  }
}

TEST(Multiprog, MidRunArrivalShrinksShare) {
  // §1's scenario verbatim: a parallel computation starts alone on the
  // whole machine; later a serial computation launches and takes one
  // processor; when it terminates, the parallel computation resumes its
  // use of all processors. The work stealer adapts throughout, and the
  // parallel job still meets its bound w.r.t. its measured PA.
  const auto parallel = dag::fib_dag(13);
  const auto serial = dag::chain(300);
  Options job_opts;
  std::vector<JobSpec> jobs = {
      {&parallel, 8, job_opts, /*arrival=*/0},
      {&serial, 1, job_opts, /*arrival=*/50},
  };
  MultiprogOptions mo;
  mo.processors = 8;
  mo.policy = AllocationPolicy::kProcessControl;
  const auto r = run_multiprogrammed(jobs, mo);
  ASSERT_TRUE(r.jobs[0].completed && r.jobs[1].completed);
  EXPECT_GT(r.jobs[1].finish_round, 50u);
  EXPECT_EQ(r.jobs[1].response_rounds, r.jobs[1].finish_round - 50);
  // The parallel job saw less than the full machine on average...
  EXPECT_LT(r.jobs[0].metrics.processor_average, 8.0);
  // ...but still within the bound for the PA it got.
  EXPECT_LT(r.jobs[0].metrics.bound_ratio(), 3.0);
}

TEST(Multiprog, LateArrivalWaitsForLaunch) {
  const auto a = dag::chain(20);
  Options job_opts;
  std::vector<JobSpec> jobs = {{&a, 1, job_opts, /*arrival=*/100}};
  MultiprogOptions mo;
  mo.processors = 2;
  mo.policy = AllocationPolicy::kEquipartition;
  const auto r = run_multiprogrammed(jobs, mo);
  ASSERT_TRUE(r.jobs[0].completed);
  EXPECT_EQ(r.jobs[0].finish_round, 120u);  // 100 waiting + 20 executing
  EXPECT_EQ(r.jobs[0].response_rounds, 20u);
}

TEST(MultiprogDeath, SpacePartitionNeedsProcessorPerJob) {
  const auto a = dag::chain(5);
  const auto b = dag::chain(5);
  const auto c = dag::chain(5);
  Options job_opts;
  MultiprogOptions mo;
  mo.processors = 2;  // 3 jobs, 2 processors
  mo.policy = AllocationPolicy::kSpacePartition;
  EXPECT_DEATH(run_multiprogrammed(
                   {{&a, 1, job_opts}, {&b, 1, job_opts}, {&c, 1, job_opts}},
                   mo),
               "space partitioning");
}

}  // namespace
}  // namespace abp::sched
