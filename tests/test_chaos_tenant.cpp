// Chaos suite for the multi-tenant admission plane (DESIGN.md §16): seeded
// TenantBurst adversaries stall submitters at the admission window, wake/
// retry races at the requeue window, and the shedder between victim
// selection and its shed CAS, while WorkerSuspend de-schedules the pool
// underneath the dispatcher. Under every schedule, each submission must
// end in EXACTLY one typed outcome:
//
//   admitted  -> finalized exactly once (completed or shed), or classified
//                abandoned by a timed-out shutdown — never two outcomes;
//   rejected / timed out -> a typed status, and never finalized.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "chaos/chaos.hpp"
#include "chaos/policy.hpp"
#include "chaos_driver.hpp"
#include "runtime/tenant/tenant_service.hpp"

namespace abp::runtime::tenant {
namespace {

using namespace std::chrono_literals;

static_assert(ABP_CHAOS_ENABLED,
              "the chaos suite requires -DABP_CHAOS=ON (see CMakeLists)");

constexpr std::size_t kMaxSeqs = 1 << 14;

struct Ledger {
  Ledger() : counts(kMaxSeqs) {}
  std::vector<std::atomic<std::uint32_t>> counts;
};

// One seeded round: two submitter threads drive two tenants with a mix of
// blocking and non-blocking submits against a small slot table with an
// aggressive shedder, so all three chaos windows get crossed constantly.
// Returns the per-seed outcome tallies for the cross-seed sanity checks.
struct RoundTotals {
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t timed_out = 0;
  std::uint64_t shed = 0;
};

RoundTotals run_round(std::uint64_t seed, std::shared_ptr<chaos::Policy> pol,
                      int submissions_per_thread) {
  chaos::ChaosScope scope(std::move(pol), seed);

  Ledger ledger;
  ServiceOptions o;
  o.scheduler.num_workers = 2;
  o.max_outstanding_total = 16;
  o.overload.enabled = true;
  o.overload.poll_ms = 1;
  o.overload.queue_high = 4;
  o.overload.queue_low = 1;
  o.overload.stale_p99_ms = 0.0;
  o.overload.sustain_polls = 2;
  o.on_finalize = [&ledger](TenantId, std::uint64_t seq, bool) {
    if (seq < kMaxSeqs)
      ledger.counts[seq].fetch_add(1, std::memory_order_seq_cst);
  };
  TenantService svc(o);
  // Quota sized below the per-thread burst so overrunning it is structural
  // at ANY round scale: sanitizer builds shrink the round to a handful of
  // submissions, and a fixed quota of 8 could then never be exceeded —
  // the pressure assertion (rejected + timed_out > 0) would be impossible
  // rather than merely flaky. Back-to-back submissions land microseconds
  // apart while every request spins >= 400us, so the first submission past
  // the quota reliably draws a typed rejection.
  const std::size_t quota = std::min<std::size_t>(
      8, std::max<std::size_t>(2, static_cast<std::size_t>(
                                      submissions_per_thread) /
                                      3));
  const TenantId a = svc.register_tenant("alpha", {quota, 1});
  const TenantId b = svc.register_tenant("beta", {quota, 1});
  svc.start();

  // Each thread records every SubmitResult; seqs are validated after the
  // drain against the finalize ledger.
  std::vector<SubmitResult> results[2];
  auto submitter = [&svc, submissions_per_thread](
                       TenantId t, std::vector<SubmitResult>& out) {
    RequestShape fan{RequestKind::kFanOut, 3, 200'000};
    RequestShape pipe{RequestKind::kPipeline, 2, 200'000};
    for (int i = 0; i < submissions_per_thread; ++i) {
      if (i % 3 == 0)
        out.push_back(svc.submit_blocking(t, pipe, 50ms));
      else
        out.push_back(svc.submit(t, fan));
    }
  };
  std::thread ta([&] { submitter(a, results[0]); });
  std::thread tb([&] { submitter(b, results[1]); });
  ta.join();
  tb.join();
  EXPECT_TRUE(svc.drain(60s)) << "seed " << seed;

  RoundTotals totals;
  for (const auto& vec : results) {
    for (const SubmitResult& r : vec) {
      if (r.admitted()) {
        EXPECT_GT(r.admit_seq, 0u);
        if (r.admit_seq < kMaxSeqs) {
          // Exactly once, never zero, never two.
          EXPECT_EQ(
              ledger.counts[r.admit_seq].load(std::memory_order_seq_cst), 1u)
              << "seed " << seed << " seq " << r.admit_seq;
        }
        ++totals.admitted;
      } else {
        EXPECT_EQ(r.admit_seq, 0u);
        if (r.status == AdmitStatus::kTimedOut)
          ++totals.timed_out;
        else
          ++totals.rejected;
      }
    }
  }

  const ShutdownReport rep = svc.shutdown(10s);
  EXPECT_TRUE(rep.drained) << "seed " << seed;
  EXPECT_TRUE(rep.consistent) << "seed " << seed;
  std::uint64_t finalized = 0;
  for (const TenantRow& row : rep.tenants) {
    EXPECT_TRUE(row.partitions_ok()) << "seed " << seed << " " << row.name;
    EXPECT_EQ(row.abandoned_total(), 0u) << "seed " << seed;
    finalized += row.completed + row.shed;
    totals.shed += row.shed;
  }
  EXPECT_EQ(finalized, totals.admitted) << "seed " << seed;
  return totals;
}

std::size_t scaled(std::size_t release_count) {
  const std::size_t r = release_count / chaostest::kSanitizerRoundScale;
  return r == 0 ? 1 : r;
}

// Scenario A — the TenantBurst adversary aimed at all three tenant chaos
// points. Deterministic seeds: a failure reproduces from the printed seed.
TEST(ChaosTenant, BurstAdversaryKeepsOutcomesExactlyOnce) {
  const std::uint64_t seeds[] = {0x7e4a17u, 0x00b10cu, 0xd06f00du};
  const int per_thread = static_cast<int>(scaled(120));
  for (std::uint64_t seed : seeds) {
    chaos::TenantBurstPolicy::Config cfg;
    cfg.p_admit = 0.3;
    cfg.p_requeue = 0.6;
    cfg.p_shed = 0.6;
    auto policy = std::make_shared<chaos::TenantBurstPolicy>(cfg);
    const RoundTotals t = run_round(seed, policy, per_thread);
    // The round must actually exercise the plane: some admissions and
    // some typed non-admissions under this much pressure.
    EXPECT_GT(t.admitted, 0u) << "seed " << seed;
    EXPECT_GT(t.rejected + t.timed_out, 0u) << "seed " << seed;
  }
}

// Scenario B — kernel-style suspensions under the dispatcher (the paper's
// adversary de-scheduling the pool) while tenants keep submitting.
TEST(ChaosTenant, WorkerSuspendKeepsOutcomesExactlyOnce) {
  chaos::WorkerSuspendPolicy::Config cfg;
  cfg.p_suspend = 0.02;
  cfg.min_us = 1;
  cfg.max_us = 300;
  const std::uint64_t seeds[] = {0x5edu, 0xbeefu};
  const int per_thread = static_cast<int>(scaled(80));
  for (std::uint64_t seed : seeds) {
    auto policy = std::make_shared<chaos::WorkerSuspendPolicy>(cfg);
    const RoundTotals t = run_round(seed, policy, per_thread);
    EXPECT_GT(t.admitted, 0u) << "seed " << seed;
  }
}

}  // namespace
}  // namespace abp::runtime::tenant
