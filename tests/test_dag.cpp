// Unit tests for the computation-dag model (§1-2 of the paper).

#include <gtest/gtest.h>

#include <set>

#include "dag/builders.hpp"
#include "dag/dag.hpp"

namespace abp::dag {
namespace {

TEST(Dag, EmptyIsInvalid) {
  Dag d;
  EXPECT_FALSE(d.is_valid());
}

TEST(Dag, SingleNodeIsValid) {
  Dag d;
  const ThreadId t = d.new_thread();
  const NodeId n = d.append_to_thread(t);
  EXPECT_TRUE(d.is_valid());
  EXPECT_EQ(d.root(), n);
  EXPECT_EQ(d.final_node(), n);
  EXPECT_EQ(d.work(), 1u);
  EXPECT_EQ(d.critical_path_length(), 1u);
}

TEST(Dag, AppendToThreadChains) {
  Dag d;
  const ThreadId t = d.new_thread();
  const NodeId a = d.append_to_thread(t);
  const NodeId b = d.append_to_thread(t);
  const NodeId c = d.append_to_thread(t);
  EXPECT_EQ(d.num_edges(), 2u);
  ASSERT_EQ(d.successors(a).size(), 1u);
  EXPECT_EQ(d.successors(a)[0], b);
  ASSERT_EQ(d.successors(b).size(), 1u);
  EXPECT_EQ(d.successors(b)[0], c);
  EXPECT_EQ(d.in_degree(c), 1u);
  EXPECT_EQ(d.out_degree(c), 0u);
}

TEST(Dag, ThreadOfTracksOwnership) {
  Dag d;
  const ThreadId t0 = d.new_thread();
  const ThreadId t1 = d.new_thread();
  const NodeId a = d.append_to_thread(t0);
  const NodeId b = d.append_to_thread(t1);
  EXPECT_EQ(d.thread_of(a), t0);
  EXPECT_EQ(d.thread_of(b), t1);
  EXPECT_EQ(d.num_threads(), 2u);
}

TEST(Dag, TwoRootsInvalid) {
  Dag d;
  const NodeId a = d.add_node();
  const NodeId b = d.add_node();
  const NodeId c = d.add_node();
  d.add_edge(a, c);
  d.add_edge(b, c);
  EXPECT_NE(d.validate().find("root"), std::string::npos);
}

TEST(Dag, TwoFinalsInvalid) {
  Dag d;
  const NodeId a = d.add_node();
  const NodeId b = d.add_node();
  const NodeId c = d.add_node();
  d.add_edge(a, b);
  d.add_edge(a, c);
  EXPECT_NE(d.validate().find("final"), std::string::npos);
}

TEST(Dag, CycleDetected) {
  Dag d;
  const NodeId a = d.add_node();
  const NodeId b = d.add_node();
  const NodeId c = d.add_node();
  const NodeId e = d.add_node();
  // a -> b -> c -> b is a cycle; add a tail so root/final counts pass.
  d.add_edge(a, b);
  d.add_edge(b, c);
  d.add_edge(c, b);
  d.add_edge(c, e);
  EXPECT_NE(d.validate().find("cycle"), std::string::npos);
}

TEST(Dag, OutDegreeLimitEnforced) {
  Dag d;
  const NodeId a = d.add_node();
  d.add_edge(a, d.add_node());
  d.add_edge(a, d.add_node());
  // The paper assumes out-degree at most 2; a third edge must abort.
  EXPECT_DEATH(d.add_edge(a, 1), "out-degree");
}

TEST(Dag, DiamondMeasures) {
  // a -> b, a -> c, b -> d, c -> d
  Dag d;
  const NodeId a = d.add_node();
  const NodeId b = d.add_node();
  const NodeId c = d.add_node();
  const NodeId e = d.add_node();
  d.add_edge(a, b);
  d.add_edge(a, c);
  d.add_edge(b, e);
  d.add_edge(c, e);
  EXPECT_TRUE(d.is_valid());
  EXPECT_EQ(d.work(), 4u);
  EXPECT_EQ(d.critical_path_length(), 3u);
  EXPECT_DOUBLE_EQ(d.parallelism(), 4.0 / 3.0);
}

TEST(Dag, TopologicalOrderRespectsEdges) {
  const Dag d = fib_dag(8);
  const auto order = d.topological_order();
  ASSERT_EQ(order.size(), d.num_nodes());
  std::vector<std::size_t> pos(d.num_nodes());
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  for (NodeId n = 0; n < d.num_nodes(); ++n)
    for (NodeId s : d.successors(n)) EXPECT_LT(pos[n], pos[s]);
}

TEST(Dag, LongestDepthMonotoneAlongEdges) {
  const Dag d = random_series_parallel(5, 300);
  const auto depth = d.longest_depth_from_root();
  for (NodeId n = 0; n < d.num_nodes(); ++n)
    for (NodeId s : d.successors(n)) EXPECT_GE(depth[s], depth[n] + 1);
  EXPECT_EQ(depth[d.root()], 0u);
}

TEST(Dag, CriticalPathOfChainEqualsWork) {
  for (std::size_t n : {1u, 2u, 17u, 100u}) {
    const Dag d = chain(n);
    EXPECT_EQ(d.work(), n);
    EXPECT_EQ(d.critical_path_length(), n);
    EXPECT_DOUBLE_EQ(d.parallelism(), 1.0);
  }
}

TEST(Dag, EdgeKindsRecorded) {
  const Dag d = figure1();
  std::size_t spawns = 0, joins = 0, syncs = 0, continues = 0;
  for (const Edge& e : d.edges()) {
    switch (e.kind) {
      case EdgeKind::kSpawn: ++spawns; break;
      case EdgeKind::kJoin: ++joins; break;
      case EdgeKind::kSync: ++syncs; break;
      case EdgeKind::kContinue: ++continues; break;
    }
  }
  EXPECT_EQ(spawns, 1u);
  EXPECT_EQ(joins, 1u);
  EXPECT_EQ(syncs, 1u);
  EXPECT_EQ(continues, 9u);  // 7 within root thread + 2 within child
}

TEST(Dag, EdgeKindNames) {
  EXPECT_STREQ(to_string(EdgeKind::kSpawn), "spawn");
  EXPECT_STREQ(to_string(EdgeKind::kJoin), "join");
  EXPECT_STREQ(to_string(EdgeKind::kSync), "sync");
  EXPECT_STREQ(to_string(EdgeKind::kContinue), "continue");
}

}  // namespace
}  // namespace abp::dag
