// Tests for the instruction-granular lockstep work stealer (§4.1's round/
// milestone model implemented exactly): correctness, bound shape, the §4.1
// throw accounting, genuine CAS contention, and agreement with the coarse
// engine.

#include <gtest/gtest.h>

#include <functional>
#include <string>

#include "dag/builders.hpp"
#include "sched/lockstep.hpp"
#include "sched/work_stealer.hpp"
#include "sim/kernel.hpp"

namespace abp::sched {
namespace {

using sim::YieldKind;

TEST(Lockstep, SingleProcessExecutesEverything) {
  const auto d = dag::fib_dag(10);
  sim::DedicatedKernel k(1);
  const auto m = run_lockstep_work_stealer(d, k, {});
  ASSERT_TRUE(m.completed);
  EXPECT_EQ(m.executed_nodes, d.num_nodes());
  EXPECT_EQ(m.successful_steals, 0u);
  EXPECT_EQ(m.cas_failures, 0u);
}

struct LsCase {
  std::string name;
  std::function<dag::Dag()> build;
  std::function<std::unique_ptr<sim::Kernel>()> kernel;
  YieldKind yield;
};

class LockstepSweep : public ::testing::TestWithParam<LsCase> {};

TEST_P(LockstepSweep, ExecutesDagCompletely) {
  const auto& param = GetParam();
  const auto d = param.build();
  auto kernel = param.kernel();
  LockstepOptions opts;
  opts.yield = param.yield;
  opts.seed = 77;
  const auto m = run_lockstep_work_stealer(d, *kernel, opts);
  ASSERT_TRUE(m.completed) << param.name;
  EXPECT_EQ(m.executed_nodes, d.num_nodes()) << param.name;
  EXPECT_LE(m.bound_ratio(), 1.0) << param.name;  // several instr per node
  // §4.1: at most one throw per scheduled process per round.
  EXPECT_LE(m.throws, m.total_scheduled) << param.name;
  EXPECT_LE(m.throws, m.steal_attempts) << param.name;
}

std::vector<LsCase> cases() {
  std::vector<LsCase> cs;
  const std::vector<std::pair<std::string, std::function<dag::Dag()>>> dags =
      {
          {"fig1", [] { return dag::figure1(); }},
          {"fib11", [] { return dag::fib_dag(11); }},
          {"wide32", [] { return dag::wide(32, 4); }},
          {"grid10x10", [] { return dag::grid_wavefront(10, 10); }},
          {"sp800", [] { return dag::random_series_parallel(6, 800); }},
      };
  const std::vector<
      std::pair<std::string, std::function<std::unique_ptr<sim::Kernel>()>>>
      kernels = {
          {"ded4", [] { return std::make_unique<sim::DedicatedKernel>(4); }},
          {"ben8",
           [] {
             return std::make_unique<sim::BenignKernel>(
                 8, sim::bursty_profile(8, 5, 15), 3);
           }},
          {"starve8",
           [] {
             return std::make_unique<sim::StarveBusyKernel>(
                 8, sim::constant_profile(4), 9);
           }},
      };
  for (const auto& [dn, db] : dags)
    for (const auto& [kn, kb] : kernels) {
      const YieldKind y =
          kn == "starve8" ? YieldKind::kToAll : YieldKind::kToRandom;
      cs.push_back(LsCase{dn + "_" + kn, db, kb, y});
    }
  return cs;
}

INSTANTIATE_TEST_SUITE_P(Sweep, LockstepSweep, ::testing::ValuesIn(cases()),
                         [](const auto& info) { return info.param.name; });

TEST(Lockstep, BoundRatioStableAcrossP) {
  // The per-round constant (instructions per node / 2c) is independent of
  // P: the normalized ratio varies by < 2x across a 16x range of P.
  const auto d = dag::fib_dag(14);
  double lo = 1e9, hi = 0;
  for (std::size_t p : {1u, 2u, 4u, 8u, 16u}) {
    sim::DedicatedKernel k(p);
    LockstepOptions opts;
    opts.yield = YieldKind::kNone;
    opts.seed = p;
    const auto m = run_lockstep_work_stealer(d, k, opts);
    ASSERT_TRUE(m.completed);
    lo = std::min(lo, m.bound_ratio());
    hi = std::max(hi, m.bound_ratio());
  }
  EXPECT_LT(hi, 2.0 * lo);
}

TEST(Lockstep, CasContentionAppearsWithManyThieves) {
  // With many processes hammering few busy deques, some popTop CASes must
  // lose races — the behaviour the coarse round model cannot express.
  const auto d = dag::fib_dag(14);
  std::uint64_t failures = 0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    sim::DedicatedKernel k(16);
    LockstepOptions opts;
    opts.yield = YieldKind::kNone;
    opts.seed = seed;
    const auto m = run_lockstep_work_stealer(d, k, opts);
    ASSERT_TRUE(m.completed);
    failures += m.cas_failures;
  }
  EXPECT_GT(failures, 0u);
}

TEST(Lockstep, ThrowsOrderPTimesTinf) {
  const auto d = dag::fib_dag(13);
  const double tinf = double(d.critical_path_length());
  for (std::size_t p : {4u, 8u, 16u}) {
    sim::DedicatedKernel k(p);
    LockstepOptions opts;
    opts.yield = YieldKind::kNone;
    opts.seed = 3 * p;
    const auto m = run_lockstep_work_stealer(d, k, opts);
    ASSERT_TRUE(m.completed);
    EXPECT_LT(double(m.throws) / (double(p) * tinf), 4.0) << "P=" << p;
  }
}

TEST(Lockstep, StarvationWithoutYieldMatchesCoarseModel) {
  const auto d = dag::fib_dag(11);
  sim::StarveBusyKernel k(8, sim::constant_profile(4), 5);
  LockstepOptions opts;
  opts.yield = YieldKind::kNone;
  opts.max_rounds = 50'000;
  const auto m = run_lockstep_work_stealer(d, k, opts);
  EXPECT_FALSE(m.completed);
  EXPECT_EQ(m.executed_nodes, 0u);  // the starver never runs process 0
}

TEST(Lockstep, AgreesWithCoarseEngineOnShape) {
  // Both models measure the same computation; their lengths differ by the
  // instructions-per-action constant but their *shapes* (scaling in P)
  // must agree: ratio of lengths stays within a band across P.
  const auto d = dag::fib_dag(14);
  double lo = 1e9, hi = 0;
  for (std::size_t p : {2u, 4u, 8u}) {
    sim::DedicatedKernel k1(p), k2(p);
    Options copts;
    copts.seed = p;
    const auto coarse = run_work_stealer(d, k1, copts);
    LockstepOptions lopts;
    lopts.yield = YieldKind::kToRandom;
    lopts.seed = p;
    const auto fine = run_lockstep_work_stealer(d, k2, lopts);
    ASSERT_TRUE(coarse.completed && fine.completed);
    const double ratio = double(coarse.length) / double(fine.rounds);
    lo = std::min(lo, ratio);
    hi = std::max(hi, ratio);
  }
  EXPECT_LT(hi, 2.0 * lo);  // a stable constant, not a different shape
}

}  // namespace
}  // namespace abp::sched
