// Tests for the user-level thread (fiber) layer: spawn/die/join semantics,
// semaphore block/enable (the paper's P/V synchronization), and stressed
// migration across OS threads.

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "fiber/fiber.hpp"

namespace abp::fiber {
namespace {

runtime::SchedulerOptions opts(std::size_t workers) {
  runtime::SchedulerOptions o;
  o.num_workers = workers;
  o.yield = runtime::YieldPolicy::kYield;
  return o;
}

TEST(Fiber, RootRunsToCompletion) {
  FiberScheduler fs(opts(1));
  int x = 0;
  fs.run([&] { x = 7; });
  EXPECT_EQ(x, 7);
}

TEST(Fiber, SpawnAndJoinSingleChild) {
  FiberScheduler fs(opts(2));
  int child = 0;
  fs.run([&] {
    Fiber* c = FiberScheduler::spawn([&] { child = 1; });
    FiberScheduler::join(c);
    EXPECT_EQ(child, 1);
    EXPECT_TRUE(c->done());
  });
  EXPECT_EQ(child, 1);
}

TEST(Fiber, JoinAlreadyDeadChildReturnsImmediately) {
  FiberScheduler fs(opts(1));
  fs.run([&] {
    Fiber* c = FiberScheduler::spawn([] {});
    // With one worker the child runs only when we block or finish; join
    // forces it.
    FiberScheduler::join(c);
    FiberScheduler::join(c);  // second join on a dead fiber: no-op? No —
    // single-joiner design: joining a done fiber returns immediately.
    EXPECT_TRUE(c->done());
  });
}

TEST(Fiber, ManyChildrenAllRun) {
  FiberScheduler fs(opts(4));
  constexpr int kChildren = 200;
  std::vector<std::atomic<int>> ran(kChildren);
  for (auto& r : ran) r.store(0);
  fs.run([&] {
    std::vector<Fiber*> kids;
    kids.reserve(kChildren);
    for (int i = 0; i < kChildren; ++i)
      kids.push_back(
          FiberScheduler::spawn([&ran, i] { ran[i].fetch_add(1); }));
    for (Fiber* k : kids) FiberScheduler::join(k);
  });
  for (int i = 0; i < kChildren; ++i) EXPECT_EQ(ran[i].load(), 1) << i;
}

TEST(Fiber, RecursiveFibCorrect) {
  FiberScheduler fs(opts(4));
  struct F {
    static long fib(int n) {
      if (n < 2) return n;
      long a = 0;
      Fiber* c = FiberScheduler::spawn([&a, n] { a = fib(n - 1); });
      const long b = fib(n - 2);
      FiberScheduler::join(c);
      return a + b;
    }
  };
  long out = 0;
  fs.run([&] { out = F::fib(16); });
  EXPECT_EQ(out, 987);
}

TEST(Semaphore, InitialCountAllowsImmediateP) {
  FiberScheduler fs(opts(1));
  int stage = 0;
  fs.run([&] {
    Semaphore sem(2);
    sem.p();
    sem.p();
    stage = 1;
  });
  EXPECT_EQ(stage, 1);
}

TEST(Semaphore, VThenPNoBlock) {
  FiberScheduler fs(opts(1));
  fs.run([&] {
    Semaphore sem(0);
    sem.v();
    sem.p();  // must not block
  });
  SUCCEED();
}

TEST(Semaphore, BlocksUntilSignal) {
  FiberScheduler fs(opts(2));
  std::atomic<int> order{0};
  int p_saw = -1;
  fs.run([&] {
    Semaphore sem(0);
    Fiber* signaller = FiberScheduler::spawn([&] {
      order.store(1);
      sem.v();
    });
    sem.p();  // blocks until the child's V
    p_saw = order.load();
    FiberScheduler::join(signaller);
  });
  EXPECT_EQ(p_saw, 1);
}

TEST(Semaphore, Figure1Pattern) {
  // The paper's running example: root spawns child; child executes V (v4)
  // then one more node (v5) and dies; root waits at P (v8), continues, and
  // joins the child at v11.
  FiberScheduler fs(opts(3));
  std::vector<int> trace;
  detail::SpinLock trace_lock;
  auto log = [&](int v) {
    trace_lock.lock();
    trace.push_back(v);
    trace_lock.unlock();
  };
  fs.run([&] {
    Semaphore sem(0);
    log(1);
    log(2);
    Fiber* child = FiberScheduler::spawn([&] {
      log(3);
      log(4);
      sem.v();
      log(5);
    });
    log(6);
    log(7);
    sem.p();  // v8
    log(8);
    log(9);
    log(10);
    FiberScheduler::join(child);
    log(11);
  });
  // v8 must come after v4 (the V), and v11 after v5 (child death).
  auto pos = [&](int v) {
    for (std::size_t i = 0; i < trace.size(); ++i)
      if (trace[i] == v) return i;
    return trace.size();
  };
  ASSERT_EQ(trace.size(), 11u);
  EXPECT_LT(pos(4), pos(8));
  EXPECT_LT(pos(5), pos(11));
  EXPECT_LT(pos(1), pos(2));
}

TEST(Semaphore, ProducerConsumerCounts) {
  FiberScheduler fs(opts(4));
  constexpr int kItems = 500;
  std::atomic<int> produced{0}, consumed{0};
  fs.run([&] {
    Semaphore items(0);
    Fiber* producer = FiberScheduler::spawn([&] {
      for (int i = 0; i < kItems; ++i) {
        produced.fetch_add(1);
        items.v();
      }
    });
    for (int i = 0; i < kItems; ++i) {
      items.p();
      consumed.fetch_add(1);
    }
    FiberScheduler::join(producer);
  });
  EXPECT_EQ(produced.load(), kItems);
  EXPECT_EQ(consumed.load(), kItems);
}

TEST(Semaphore, MutualExclusionViaBinarySemaphore) {
  FiberScheduler fs(opts(4));
  int shared = 0;  // protected by the binary semaphore
  constexpr int kFibers = 8;
  constexpr int kIncrements = 200;
  fs.run([&] {
    Semaphore mutex(1);
    std::vector<Fiber*> kids;
    for (int f = 0; f < kFibers; ++f) {
      kids.push_back(FiberScheduler::spawn([&] {
        for (int i = 0; i < kIncrements; ++i) {
          mutex.p();
          ++shared;  // critical section
          mutex.v();
        }
      }));
    }
    for (Fiber* k : kids) FiberScheduler::join(k);
  });
  EXPECT_EQ(shared, kFibers * kIncrements);
}

TEST(Fiber, DeepSpawnChain) {
  // Each fiber spawns the next; joins unwind in reverse. Exercises the
  // enable-and-die direct hand-off.
  FiberScheduler fs(opts(2));
  std::atomic<int> depth_reached{0};
  struct Chain {
    static void go(int depth, std::atomic<int>& out) {
      if (depth == 0) return;
      out.fetch_add(1);
      Fiber* c = FiberScheduler::spawn(
          [depth, &out] { go(depth - 1, out); });
      FiberScheduler::join(c);
    }
  };
  fs.run([&] { Chain::go(150, depth_reached); });
  EXPECT_EQ(depth_reached.load(), 150);
}

TEST(Fiber, StatsAccumulate) {
  FiberScheduler fs(opts(4));
  fs.run([&] {
    std::vector<Fiber*> kids;
    for (int i = 0; i < 50; ++i)
      kids.push_back(FiberScheduler::spawn([] {}));
    for (Fiber* k : kids) FiberScheduler::join(k);
  });
  const auto st = fs.total_stats();
  EXPECT_GT(st.jobs_executed, 0u);
  EXPECT_GE(st.spawns, 50u);
}

TEST(Fiber, SchedulerReusableAcrossRuns) {
  FiberScheduler fs(opts(2));
  for (int i = 0; i < 5; ++i) {
    int x = 0;
    fs.run([&] {
      Fiber* c = FiberScheduler::spawn([&] { x = i; });
      FiberScheduler::join(c);
    });
    EXPECT_EQ(x, i);
  }
}

TEST(Fiber, OnFiberDetection) {
  EXPECT_FALSE(FiberScheduler::on_fiber());
  FiberScheduler fs(opts(1));
  bool inside = false;
  fs.run([&] { inside = FiberScheduler::on_fiber(); });
  EXPECT_TRUE(inside);
  EXPECT_FALSE(FiberScheduler::on_fiber());
}

}  // namespace
}  // namespace abp::fiber
