// Tests for the runtime extensions: exception propagation through
// TaskGroup and Scheduler::run, futures, and the extended parallel
// algorithms (transform / inclusive scan / sort).

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "runtime/algorithms.hpp"
#include "runtime/future.hpp"
#include "runtime/scheduler.hpp"
#include "support/rng.hpp"

namespace abp::runtime {
namespace {

SchedulerOptions opts4() {
  SchedulerOptions o;
  o.num_workers = 4;
  return o;
}

// ---- exceptions -------------------------------------------------------------

TEST(Exceptions, RootExceptionReachesCaller) {
  Scheduler s(opts4());
  EXPECT_THROW(
      s.run([](Worker&) { throw std::runtime_error("root boom"); }),
      std::runtime_error);
  // The scheduler remains usable afterwards.
  int x = 0;
  s.run([&](Worker&) { x = 1; });
  EXPECT_EQ(x, 1);
}

TEST(Exceptions, ChildExceptionRethrownAtWait) {
  Scheduler s(opts4());
  bool caught = false;
  s.run([&](Worker& w) {
    TaskGroup tg(w);
    tg.spawn([](Worker&) { throw std::logic_error("child boom"); });
    try {
      tg.wait();
    } catch (const std::logic_error& e) {
      caught = std::string(e.what()) == "child boom";
    }
  });
  EXPECT_TRUE(caught);
}

TEST(Exceptions, FirstOfManyChildExceptionsWins) {
  Scheduler s(opts4());
  int caught = 0;
  s.run([&](Worker& w) {
    TaskGroup tg(w);
    for (int i = 0; i < 16; ++i)
      tg.spawn([](Worker&) { throw std::runtime_error("boom"); });
    try {
      tg.wait();
    } catch (const std::runtime_error&) {
      ++caught;
    }
  });
  EXPECT_EQ(caught, 1);  // exactly one rethrow; all children still drained
}

TEST(Exceptions, SiblingsStillRunAfterOneThrows) {
  Scheduler s(opts4());
  std::atomic<int> ran{0};
  s.run([&](Worker& w) {
    TaskGroup tg(w);
    tg.spawn([](Worker&) { throw 42; });
    for (int i = 0; i < 8; ++i)
      tg.spawn([&](Worker&) { ran.fetch_add(1); });
    EXPECT_THROW(tg.wait(), int);
  });
  EXPECT_EQ(ran.load(), 8);
}

TEST(Exceptions, DestructorDrainsWithoutRethrow) {
  Scheduler s(opts4());
  std::atomic<int> ran{0};
  s.run([&](Worker& w) {
    {
      TaskGroup tg(w);
      tg.spawn([&](Worker&) {
        ran.fetch_add(1);
        throw std::runtime_error("ignored by dtor");
      });
      // No wait(): the destructor must drain and swallow.
    }
  });
  EXPECT_EQ(ran.load(), 1);
}

TEST(Exceptions, ParallelForBodyThrowPropagates) {
  Scheduler s(opts4());
  EXPECT_THROW(s.run([](Worker& w) {
    parallel_for(w, 0, 10000, 64, [](std::size_t i) {
      if (i == 7777) throw std::out_of_range("index");
    });
  }),
               std::out_of_range);
}

// ---- futures ---------------------------------------------------------------

TEST(FutureTest, DeliversValue) {
  Scheduler s(opts4());
  s.run([](Worker& w) {
    Future<int> f(w, [](Worker&) { return 41 + 1; });
    EXPECT_EQ(f.get(), 42);
    EXPECT_TRUE(f.ready());
  });
}

TEST(FutureTest, GetIsIdempotent) {
  Scheduler s(opts4());
  s.run([](Worker& w) {
    Future<std::vector<int>> f(w, [](Worker&) {
      return std::vector<int>{1, 2, 3};
    });
    EXPECT_EQ(f.get().size(), 3u);
    EXPECT_EQ(f.get()[2], 3);
  });
}

TEST(FutureTest, VoidFuture) {
  Scheduler s(opts4());
  int side_effect = 0;
  s.run([&](Worker& w) {
    Future<void> f(w, [&](Worker&) { side_effect = 5; });
    f.get();
  });
  EXPECT_EQ(side_effect, 5);
}

TEST(FutureTest, ExceptionRethrownAtGet) {
  Scheduler s(opts4());
  s.run([](Worker& w) {
    Future<int> f(w, [](Worker&) -> int { throw std::runtime_error("f"); });
    EXPECT_THROW(f.get(), std::runtime_error);
  });
}

TEST(FutureTest, ManyConcurrentFutures) {
  Scheduler s(opts4());
  s.run([](Worker& w) {
    std::vector<std::unique_ptr<Future<int>>> futs;
    for (int i = 0; i < 32; ++i)
      futs.push_back(std::make_unique<Future<int>>(
          w, [i](Worker&) { return i * i; }));
    for (int i = 0; i < 32; ++i) EXPECT_EQ(futs[i]->get(), i * i);
  });
}

// ---- algorithms ------------------------------------------------------------

TEST(ParallelTransform, MapsEveryElement) {
  Scheduler s(opts4());
  std::vector<int> in(10000), out(10000);
  std::iota(in.begin(), in.end(), 0);
  s.run([&](Worker& w) {
    parallel_transform(w, in.data(), out.data(), in.size(), 128,
                       [](int x) { return 2 * x + 1; });
  });
  for (std::size_t i = 0; i < in.size(); ++i)
    ASSERT_EQ(out[i], 2 * (int)i + 1);
}

TEST(ParallelScan, MatchesSerialPrefixSum) {
  Scheduler s(opts4());
  for (std::size_t n : {0u, 1u, 5u, 100u, 4097u, 100000u}) {
    std::vector<long long> data(n), expect(n);
    Xoshiro256 rng(n + 1);
    for (std::size_t i = 0; i < n; ++i)
      data[i] = static_cast<long long>(rng.below(1000)) - 500;
    expect = data;
    std::partial_sum(expect.begin(), expect.end(), expect.begin());
    s.run([&](Worker& w) {
      parallel_inclusive_scan(w, data.data(), n, 512,
                              [](long long a, long long b) { return a + b; });
    });
    EXPECT_EQ(data, expect) << "n=" << n;
  }
}

TEST(ParallelScan, NonCommutativeCombine) {
  // String-concatenation-like combine (associative, not commutative),
  // modeled as affine function composition: f(x) = a*x + b.
  struct Affine {
    long long a = 1, b = 0;
    bool operator==(const Affine&) const = default;
  };
  auto compose = [](const Affine& f, const Affine& g) {
    return Affine{f.a * g.a, g.a * f.b + g.b};
  };
  Scheduler s(opts4());
  std::vector<Affine> data(3000), expect;
  Xoshiro256 rng(9);
  for (auto& f : data) f = Affine{(long long)rng.range(1, 3),
                                  (long long)rng.below(5)};
  expect = data;
  for (std::size_t i = 1; i < expect.size(); ++i)
    expect[i] = compose(expect[i - 1], expect[i]);
  s.run([&](Worker& w) {
    parallel_inclusive_scan(w, data.data(), data.size(), 64, compose);
  });
  EXPECT_EQ(data, expect);
}

TEST(ParallelSort, SortsRandomData) {
  Scheduler s(opts4());
  for (std::size_t n : {0u, 1u, 2u, 1000u, 50000u}) {
    std::vector<std::uint64_t> data(n);
    Xoshiro256 rng(n + 7);
    for (auto& x : data) x = rng.below(1u << 20);
    auto expect = data;
    std::sort(expect.begin(), expect.end());
    s.run([&](Worker& w) { parallel_sort(w, data.data(), n, 256); });
    EXPECT_EQ(data, expect) << "n=" << n;
  }
}

TEST(ParallelSort, CustomComparator) {
  Scheduler s(opts4());
  std::vector<int> data(20000);
  Xoshiro256 rng(77);
  for (auto& x : data) x = static_cast<int>(rng.below(1000));
  auto expect = data;
  std::sort(expect.begin(), expect.end(), std::greater<int>());
  s.run([&](Worker& w) {
    parallel_sort(w, data.data(), data.size(), 128, std::greater<int>());
  });
  EXPECT_EQ(data, expect);
}

TEST(ParallelSort, AlreadySortedAndReversed) {
  Scheduler s(opts4());
  std::vector<int> asc(10000), desc(10000);
  std::iota(asc.begin(), asc.end(), 0);
  for (std::size_t i = 0; i < desc.size(); ++i)
    desc[i] = static_cast<int>(desc.size() - i);
  s.run([&](Worker& w) {
    parallel_sort(w, asc.data(), asc.size(), 64);
    parallel_sort(w, desc.data(), desc.size(), 64);
  });
  EXPECT_TRUE(std::is_sorted(asc.begin(), asc.end()));
  EXPECT_TRUE(std::is_sorted(desc.begin(), desc.end()));
}

}  // namespace
}  // namespace abp::runtime
