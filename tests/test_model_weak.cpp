// Weak-memory model-checking tests: the paper's Figure 5 proof obligation
// re-done without the sequential-consistency assumption (§3.3 note that
// "extra memory operation ordering instructions may be needed" on weaker
// machines), plus the Chase-Lev fence placements of Lê et al. (PPoPP 2013).
//
// Each ablation demotes exactly one declared memory_order; the explorer
// must answer with a concrete interleaving trace (printed below), while
// the unablated machine passes cleanly under the same script — and with
// DPOR on or off the verdict is identical, only the node count changes.

#include <gtest/gtest.h>

#include <iostream>

#include "model/weak_explorer.hpp"

namespace abp::model {
namespace {

Op push(std::uint8_t v) { return Op{Method::kPushBottom, v}; }
Op pop_bottom() { return Op{Method::kPopBottom, 0}; }
Op pop_top() { return Op{Method::kPopTop, 0}; }
Op pop_top_batch() { return Op{Method::kPopTopBatch, 0}; }
Op transfer() { return Op{Method::kTransfer, 0}; }

WExploreOptions options(WMachine m, MemModel model,
                        WAblation ablation = WAblation{}) {
  WExploreOptions o;
  o.machine = m;
  o.model = model;
  o.ablation = ablation;
  return o;
}

void expect_counterexample(const WExploreResult& r, const char* what,
                           const char* needle) {
  EXPECT_FALSE(r.ok) << what << ": ablation not caught";
  EXPECT_FALSE(r.truncated);
  ASSERT_FALSE(r.trace.empty()) << what << ": violation without a trace";
  EXPECT_NE(r.violation.find(needle), std::string::npos) << r.violation;
  std::cout << "[" << what << "] counterexample:\n" << format_trace(r);
}

// ---- declared-order table sanity --------------------------------------------

TEST(WeakModel, OrderTableMatchesTheProvenPlacements) {
  // The load-bearing orders from the correctness argument; a reshuffle of
  // kOrderTable (which atomics_lint.py cross-references against the
  // sources) should fail here first.
  EXPECT_EQ(order_spec(Site::kClPushBotStore).order, MemOrder::kRelease);
  EXPECT_EQ(order_spec(Site::kClTopBotLoad).order, MemOrder::kAcquire);
  EXPECT_EQ(order_spec(Site::kClTopCas).order, MemOrder::kSeqCst);
  EXPECT_EQ(order_spec(Site::kClBotFence).order, MemOrder::kSeqCst);
  EXPECT_EQ(order_spec(Site::kAbpTopCas).order, MemOrder::kSeqCst);
  EXPECT_EQ(order_spec(Site::kAbpBotBotStore).order, MemOrder::kSeqCst);
  EXPECT_EQ(order_spec(Site::kGrowGrowPublish).order, MemOrder::kRelease);
  // Batch-steal sites (DESIGN.md §12): the claim CAS and the owner's
  // defend CAS are seq_cst, and the batch bottom load is seq_cst so a
  // stale-high bottom can never widen the claim window.
  EXPECT_EQ(order_spec(Site::kGrowBatchAgeLoad).order, MemOrder::kAcquire);
  EXPECT_EQ(order_spec(Site::kGrowBatchBotLoad).order, MemOrder::kSeqCst);
  EXPECT_EQ(order_spec(Site::kGrowBatchCas).order, MemOrder::kSeqCst);
  EXPECT_EQ(order_spec(Site::kGrowBotDefendCas).order, MemOrder::kSeqCst);
  EXPECT_STREQ(order_spec(Site::kClPushBotStore).site,
               "chase_lev.push_bottom.bottom_store");
  EXPECT_STREQ(order_spec(Site::kGrowBatchCas).site,
               "growable.pop_top_batch.cas");
  EXPECT_STREQ(order_spec(Site::kGrowBotDefendCas).site,
               "growable.pop_bottom.defend_cas");
  // Split-deque sites (DESIGN.md §17): ONE release (the transfer publish)
  // and one acquire (the thief's word load) carry the only happens-before
  // edge; every owner-word access is relaxed (the fence-free fast path),
  // and the reclaim CAS is provably safe fully relaxed.
  EXPECT_EQ(order_spec(Site::kSplitTransferPublishCas).order,
            MemOrder::kRelease);
  EXPECT_EQ(order_spec(Site::kSplitTopTsLoad).order, MemOrder::kAcquire);
  EXPECT_EQ(order_spec(Site::kSplitBatchTsLoad).order, MemOrder::kAcquire);
  EXPECT_EQ(order_spec(Site::kSplitPushPbLoad).order, MemOrder::kRelaxed);
  EXPECT_EQ(order_spec(Site::kSplitPushItemStore).order, MemOrder::kRelaxed);
  EXPECT_EQ(order_spec(Site::kSplitPushPbStore).order, MemOrder::kRelaxed);
  EXPECT_EQ(order_spec(Site::kSplitPushHungerLoad).order, MemOrder::kRelaxed);
  EXPECT_EQ(order_spec(Site::kSplitBotPbLoad).order, MemOrder::kRelaxed);
  EXPECT_EQ(order_spec(Site::kSplitBotPbStore).order, MemOrder::kRelaxed);
  EXPECT_EQ(order_spec(Site::kSplitReclaimShrinkCas).order,
            MemOrder::kRelaxed);
  EXPECT_EQ(order_spec(Site::kSplitTopClaimCas).order, MemOrder::kRelease);
  EXPECT_EQ(order_spec(Site::kSplitBatchClaimCas).order, MemOrder::kRelease);
  EXPECT_STREQ(order_spec(Site::kSplitTransferPublishCas).site,
               "split.transfer.publish_cas");
  EXPECT_STREQ(order_spec(Site::kSplitReclaimShrinkCas).site,
               "split.reclaim.shrink_cas");
  EXPECT_STREQ(order_spec(Site::kSplitTopTsLoad).site,
               "split.pop_top.ts_load");
}

// ---- correct machines pass under every model --------------------------------

TEST(WeakModel, AbpOwnerOnlyRoundTrip) {
  const std::vector<Script> scripts = {
      {push(1), push(2), pop_bottom(), pop_bottom(), pop_bottom()}};
  for (MemModel m : {MemModel::kSC, MemModel::kTSO, MemModel::kRA}) {
    const auto r = wexplore(scripts, options(WMachine::kAbp, m));
    EXPECT_TRUE(r.passed()) << to_string(m) << ": " << r.violation;
  }
}

TEST(WeakModel, AbpOwnerPlusThiefPassesUnderTsoAndRa) {
  const std::vector<Script> scripts = {
      {push(1), push(2), pop_bottom(), pop_bottom()},
      {pop_top()},
  };
  for (MemModel m : {MemModel::kTSO, MemModel::kRA}) {
    const auto r = wexplore(scripts, options(WMachine::kAbp, m));
    EXPECT_TRUE(r.passed()) << to_string(m) << ": " << r.violation;
    EXPECT_GT(r.terminal_states, 0u);
  }
}

TEST(WeakModel, ChaseLevOwnerPlusThiefPassesUnderRa) {
  const std::vector<Script> scripts = {
      {push(1), push(2), pop_bottom(), pop_bottom()},
      {pop_top()},
  };
  const auto r = wexplore(scripts, options(WMachine::kChaseLev, MemModel::kRA));
  EXPECT_TRUE(r.passed()) << r.violation;
}

TEST(WeakModel, ChaseLevLastItemRacePassesUnderRa) {
  // take and steal racing for the single item: the seq_cst CAS/fence pair
  // decides it exactly once.
  const std::vector<Script> scripts = {
      {push(1), pop_bottom()},
      {pop_top()},
      {pop_top()},
  };
  const auto r = wexplore(scripts, options(WMachine::kChaseLev, MemModel::kRA));
  EXPECT_TRUE(r.passed()) << r.violation;
}

TEST(WeakModel, GrowablePublishWindowPassesUnderTsoAndRa) {
  // Three pushes overflow the first buffer (capacity 2) and exercise the
  // grow/copy/publish window with a concurrent thief.
  const std::vector<Script> scripts = {
      {push(1), push(2), push(3), pop_bottom(), pop_bottom()},
      {pop_top()},
  };
  for (MemModel m : {MemModel::kTSO, MemModel::kRA}) {
    const auto r = wexplore(scripts, options(WMachine::kGrowable, m));
    EXPECT_TRUE(r.passed()) << to_string(m) << ": " << r.violation;
  }
}

// ---- ablation: frozen ABP tag under TSO (the ABA bug, weak-memory form) -----

TEST(WeakModel, FrozenTagAbaCaughtUnderTso) {
  const std::vector<Script> scripts = {
      {push(1), pop_bottom(), push(2), pop_bottom()},
      {pop_top()},
  };
  WAblation ablation;
  ablation.frozen_tag = true;
  const auto r =
      wexplore(scripts, options(WMachine::kAbp, MemModel::kTSO, ablation));
  expect_counterexample(r, "abp.frozen_tag/TSO", "twice");
}

TEST(WeakModel, FrozenTagAbaCaughtUnderRa) {
  const std::vector<Script> scripts = {
      {push(1), pop_bottom(), push(2), pop_bottom()},
      {pop_top()},
  };
  WAblation ablation;
  ablation.frozen_tag = true;
  const auto r =
      wexplore(scripts, options(WMachine::kAbp, MemModel::kRA, ablation));
  expect_counterexample(r, "abp.frozen_tag/RA", "twice");
}

TEST(WeakModel, SameScriptWithTagPassesUnderTso) {
  const std::vector<Script> scripts = {
      {push(1), pop_bottom(), push(2), pop_bottom()},
      {pop_top()},
  };
  const auto r = wexplore(scripts, options(WMachine::kAbp, MemModel::kTSO));
  EXPECT_TRUE(r.passed()) << r.violation;
}

// ---- ablation: Chase-Lev relaxed bottom store (Lê et al. §4) ----------------

TEST(WeakModel, ChaseLevRelaxedBottomStoreCaughtUnderRa) {
  // pushBottom publishes bottom relaxed: the thief observes the new
  // bottom without the item store having become visible, and steals the
  // poison (never-pushed) cell value.
  const std::vector<Script> scripts = {
      {push(1)},
      {pop_top()},
  };
  WAblation ablation;
  ablation.cl_relaxed_bottom_store = true;
  const auto r =
      wexplore(scripts, options(WMachine::kChaseLev, MemModel::kRA, ablation));
  expect_counterexample(r, "chase_lev.relaxed_bottom_store/RA", "never pushed");
}

TEST(WeakModel, ChaseLevSamePushStealPassesUnablated) {
  const std::vector<Script> scripts = {
      {push(1)},
      {pop_top()},
  };
  const auto r = wexplore(scripts, options(WMachine::kChaseLev, MemModel::kRA));
  EXPECT_TRUE(r.passed()) << r.violation;
}

// ---- ablation: Chase-Lev missing steal-side acquire -------------------------

TEST(WeakModel, ChaseLevNoStealAcquireCaughtUnderRa) {
  // steal's bottom load demoted to relaxed: it can observe the published
  // bottom without joining the publishing release view, so the item load
  // is again allowed to return the poison value.
  const std::vector<Script> scripts = {
      {push(1)},
      {pop_top()},
  };
  WAblation ablation;
  ablation.cl_no_steal_acquire = true;
  const auto r =
      wexplore(scripts, options(WMachine::kChaseLev, MemModel::kRA, ablation));
  expect_counterexample(r, "chase_lev.no_steal_acquire/RA", "never pushed");
}

// ---- ablation: Chase-Lev relaxed steal CAS ----------------------------------

TEST(WeakModel, ChaseLevRelaxedCasCaughtUnderC11Fences) {
  // With the steal CAS demoted from seq_cst, a committed steal no longer
  // enters the global SC order, so the owner's fence-protected top read
  // can miss it and take the plain (no-CAS) path for an item a thief
  // already returned. This needs the C11-as-published fence semantics:
  // a C11 fence publishes only the thread's WRITES, so the thief's
  // pre-CAS fence cannot vouch for the top value it read.
  const std::vector<Script> scripts = {
      {push(1), push(2), pop_bottom()},
      {pop_top()},
      {pop_top()},
  };
  WAblation ablation;
  ablation.cl_relaxed_cas = true;
  WExploreOptions o = options(WMachine::kChaseLev, MemModel::kRA, ablation);
  o.weak_sc_fences = true;
  const auto r = wexplore(scripts, o);
  expect_counterexample(r, "chase_lev.relaxed_cas/C11", "twice");
}

TEST(WeakModel, ChaseLevRelaxedCasSubsumedByP0668Fences) {
  // The same ablation under the strengthened (C++20/P0668) fence
  // semantics: a fence also publishes what the thread READ, so the
  // thief's pre-CAS seq_cst fence already orders its top read against
  // the owner's fence and the relaxed CAS is provably sufficient on
  // this script — the model checker shows the seq_cst CAS is load-
  // bearing exactly for the pre-P0668 semantics the deque must still
  // support (we therefore keep it seq_cst in src/deque).
  const std::vector<Script> scripts = {
      {push(1), push(2), pop_bottom()},
      {pop_top()},
      {pop_top()},
  };
  WAblation ablation;
  ablation.cl_relaxed_cas = true;
  const auto r =
      wexplore(scripts, options(WMachine::kChaseLev, MemModel::kRA, ablation));
  EXPECT_TRUE(r.passed()) << r.violation;
}

TEST(WeakModel, ChaseLevUnablatedPassesUnderC11Fences) {
  // The full seq_cst steal CAS repairs the C11-fence hole: same script,
  // weak fences, no ablation — correct again.
  const std::vector<Script> scripts = {
      {push(1), push(2), pop_bottom()},
      {pop_top()},
      {pop_top()},
  };
  WExploreOptions o = options(WMachine::kChaseLev, MemModel::kRA);
  o.weak_sc_fences = true;
  const auto r = wexplore(scripts, o);
  EXPECT_TRUE(r.passed()) << r.violation;
}

TEST(WeakModel, ChaseLevTwoThievesPassUnablated) {
  const std::vector<Script> scripts = {
      {push(1), push(2), pop_bottom()},
      {pop_top()},
      {pop_top()},
  };
  const auto r = wexplore(scripts, options(WMachine::kChaseLev, MemModel::kRA));
  EXPECT_TRUE(r.passed()) << r.violation;
}

// ---- ablation: growable relaxed buffer publish ------------------------------

TEST(WeakModel, GrowableRelaxedPublishCaughtUnderRa) {
  // The grown buffer pointer published relaxed: a thief can observe the
  // new buffer before the copied cells are visible and steal stale
  // (poison) memory — the release publish is what carries the copy.
  const std::vector<Script> scripts = {
      {push(1), push(2), push(3)},
      {pop_top()},
  };
  WAblation ablation;
  ablation.grow_relaxed_publish = true;
  const auto r =
      wexplore(scripts, options(WMachine::kGrowable, MemModel::kRA, ablation));
  expect_counterexample(r, "growable.relaxed_publish/RA", "never pushed");
}

TEST(WeakModel, GrowableSameScriptPassesUnablated) {
  const std::vector<Script> scripts = {
      {push(1), push(2), push(3)},
      {pop_top()},
  };
  const auto r = wexplore(scripts, options(WMachine::kGrowable, MemModel::kRA));
  EXPECT_TRUE(r.passed()) << r.violation;
}

// ---- batch steal (steal-half): defended-window protocol ---------------------

WExploreOptions batch_options(MemModel model,
                              WAblation ablation = WAblation{}) {
  WExploreOptions o = options(WMachine::kGrowable, model, ablation);
  o.batch_steals = true;
  return o;
}

TEST(WeakModel, BatchStealPassesUnderTsoAndRa) {
  // Three pushes grow the buffer and leave b - t = 3, so the thief's
  // steal-half claim takes 2 items in one CAS while the owner keeps
  // popping (every armed popBottom runs the defend CAS here).
  const std::vector<Script> scripts = {
      {push(1), push(2), push(3), pop_bottom(), pop_bottom()},
      {pop_top_batch()},
  };
  for (MemModel m : {MemModel::kTSO, MemModel::kRA}) {
    const auto r = wexplore(scripts, batch_options(m));
    EXPECT_TRUE(r.passed()) << to_string(m) << ": " << r.violation;
    EXPECT_GT(r.terminal_states, 0u);
  }
}

TEST(WeakModel, BatchAndSingleThievesPassUnderRa) {
  // A batch thief racing a single-steal thief: the age CAS serializes
  // them, so each item is still delivered exactly once.
  const std::vector<Script> scripts = {
      {push(1), push(2), push(3), pop_bottom()},
      {pop_top_batch()},
      {pop_top()},
  };
  const auto r = wexplore(scripts, batch_options(MemModel::kRA));
  EXPECT_TRUE(r.passed()) << r.violation;
}

TEST(WeakModel, BatchPublishShortCaughtUnderRa) {
  // The ablation the fuzzer must also catch: the batch CAS claims two
  // items but publishes top+1, leaving the second item both returned and
  // still claimable.
  const std::vector<Script> scripts = {
      {push(1), push(2), push(3)},
      {pop_top_batch()},
  };
  WAblation ablation;
  ablation.batch_publish_short = true;
  const auto r = wexplore(scripts, batch_options(MemModel::kRA, ablation));
  expect_counterexample(r, "growable.batch_publish_short/RA",
                        "still in the deque");
}

TEST(WeakModel, BatchNoDefenseCaughtUnderRa) {
  // Without the owner's defended-window tag bump, the owner can pop an
  // item *inside* an in-flight claim window without touching age, and the
  // batch CAS still commits: the item is delivered twice. This is the
  // counterexample that makes growable.pop_bottom.defend_cas load-bearing.
  const std::vector<Script> scripts = {
      {push(1), push(2), push(3), pop_bottom(), pop_bottom()},
      {pop_top_batch()},
  };
  WAblation ablation;
  ablation.batch_no_defense = true;
  const auto r = wexplore(scripts, batch_options(MemModel::kRA, ablation));
  expect_counterexample(r, "growable.batch_no_defense/RA", "twice");
}

TEST(WeakModel, BatchDporVerdictMatchesFullSearch) {
  // DPOR on/off must agree on both the defended (pass) and the ablated
  // (fail) batch protocol. The unreduced passing run may hit the cap;
  // when it does, it must at least not have found a violation.
  const std::vector<Script> scripts = {
      {push(1), push(2), push(3), pop_bottom()},
      {pop_top_batch()},
  };
  WExploreOptions with = batch_options(MemModel::kRA);
  WExploreOptions without = with;
  without.use_dpor = false;
  const auto reduced = wexplore(scripts, with);
  const auto full = wexplore(scripts, without);
  EXPECT_TRUE(reduced.passed()) << reduced.violation;
  if (full.truncated) {
    EXPECT_TRUE(full.ok) << full.violation;
  } else {
    EXPECT_TRUE(full.passed()) << full.violation;
    EXPECT_EQ(reduced.ok, full.ok);
  }

  WAblation ablation;
  ablation.batch_no_defense = true;
  WExploreOptions bad_with = batch_options(MemModel::kRA, ablation);
  WExploreOptions bad_without = bad_with;
  bad_without.use_dpor = false;
  const std::vector<Script> bad_scripts = {
      {push(1), push(2), push(3), pop_bottom(), pop_bottom()},
      {pop_top_batch()},
  };
  const auto bad_reduced = wexplore(bad_scripts, bad_with);
  const auto bad_full = wexplore(bad_scripts, bad_without);
  EXPECT_FALSE(bad_reduced.ok);
  EXPECT_FALSE(bad_full.ok);
  EXPECT_EQ(bad_reduced.violation.empty(), bad_full.violation.empty());
}

// ---- split deque: fence-free owner fast path (DESIGN.md §17) ----------------

TEST(WeakModel, SplitOwnerPlusThievesPassesUnderAllModels) {
  // Owner pushes into the private segment (no fences), publishes it with
  // one release transfer, then pops — while two thieves race single
  // steals against the public word.
  const std::vector<Script> scripts = {
      {push(1), push(2), transfer(), pop_bottom()},
      {pop_top()},
      {pop_top()},
  };
  for (MemModel m : {MemModel::kSC, MemModel::kTSO, MemModel::kRA}) {
    const auto r = wexplore(scripts, options(WMachine::kSplit, m));
    EXPECT_TRUE(r.passed()) << to_string(m) << ": " << r.violation;
    EXPECT_GT(r.terminal_states, 0u);
  }
}

TEST(WeakModel, SplitReclaimRepublishPassesUnderTsoAndRa) {
  // Owner drains past the private segment (forcing the fully relaxed
  // reclaim CAS to shrink the public half back), then refills and
  // republishes — thieves stealing throughout. This exercises the claim
  // that the shrink CAS needs no ordering: it only moves the split, and
  // the tag bump serializes it against every in-flight claim.
  const std::vector<Script> scripts = {
      {push(1), push(2), transfer(), pop_bottom(), pop_bottom(), push(3),
       transfer()},
      {pop_top()},
      {pop_top()},
  };
  for (MemModel m : {MemModel::kTSO, MemModel::kRA}) {
    const auto r = wexplore(scripts, options(WMachine::kSplit, m));
    EXPECT_TRUE(r.passed()) << to_string(m) << ": " << r.violation;
  }
}

TEST(WeakModel, SplitBatchStealPassesUnderTsoAndRa) {
  // pop_top_batch is native on the split deque with NO owner-defended
  // window: the batch claim and the owner's reclaim race on the same
  // tagged word, so one CAS arbitrates. kSplit scripts may therefore use
  // kPopTopBatch without the growable machine's batch_steals arming.
  const std::vector<Script> scripts = {
      {push(1), push(2), push(3), transfer(), pop_bottom()},
      {pop_top_batch()},
      {pop_top()},
  };
  for (MemModel m : {MemModel::kTSO, MemModel::kRA}) {
    const auto r = wexplore(scripts, options(WMachine::kSplit, m));
    EXPECT_TRUE(r.passed()) << to_string(m) << ": " << r.violation;
  }
}

// ---- split ablations: weakest safe order per site, counterexamples print ----

TEST(WeakModel, SplitRelaxedTransferCaughtUnderRa) {
  // Demote the transfer publish CAS release -> relaxed: under C11-RA the
  // thief's acquire load of the public word no longer synchronizes with
  // the owner's plain item store, so the steal can read the cell before
  // the item lands — the "extra ordering instructions" §3.3 warns about,
  // pinned to the one site that carries them.
  const std::vector<Script> scripts = {{push(1), transfer()}, {pop_top()}};
  WAblation ablation;
  ablation.split_relaxed_transfer = true;
  const auto r =
      wexplore(scripts, options(WMachine::kSplit, MemModel::kRA, ablation));
  expect_counterexample(r, "split.relaxed_transfer/RA", "never pushed");
}

TEST(WeakModel, SplitNoStealAcquireCaughtUnderRa) {
  // The dual demotion: thief's public-word load acquire -> relaxed. The
  // release on the publish side has nothing to pair with, same torn read.
  const std::vector<Script> scripts = {{push(1), transfer()}, {pop_top()}};
  WAblation ablation;
  ablation.split_no_steal_acquire = true;
  const auto r =
      wexplore(scripts, options(WMachine::kSplit, MemModel::kRA, ablation));
  expect_counterexample(r, "split.no_steal_acquire/RA", "never pushed");
}

TEST(WeakModel, SplitOrderingAblationScriptPassesUnablated) {
  // Control for the two ordering ablations: the declared placements make
  // the very same script clean under TSO and RA.
  const std::vector<Script> scripts = {{push(1), transfer()}, {pop_top()}};
  for (MemModel m : {MemModel::kTSO, MemModel::kRA}) {
    const auto r = wexplore(scripts, options(WMachine::kSplit, m));
    EXPECT_TRUE(r.passed()) << to_string(m) << ": " << r.violation;
  }
}

TEST(WeakModel, SplitFrozenTagAbaCaughtEvenUnderSc) {
  // Drop the tag bump from the owner's public-word writes: after a
  // publish / drain / refill / republish cycle the (top, split) pair
  // recurs, and a thief's claim CAS stalled across the cycle succeeds on
  // the recreated word — classic ABA, an algorithmic bug visible even
  // under sequential consistency. This is why EVERY owner write to the
  // word bumps the tag, not just the transfer.
  const std::vector<Script> scripts = {
      {push(1), push(2), transfer(), pop_bottom(), pop_bottom(), push(3),
       push(4), transfer()},
      {pop_top()},
  };
  WAblation ablation;
  ablation.split_frozen_tag = true;
  const auto r =
      wexplore(scripts, options(WMachine::kSplit, MemModel::kSC, ablation));
  expect_counterexample(r, "split.frozen_tag/SC", "twice");
  const auto safe =
      wexplore(scripts, options(WMachine::kSplit, MemModel::kSC));
  EXPECT_TRUE(safe.passed()) << safe.violation;
}

TEST(WeakModel, SplitBlindPublishCaughtUnderScAndTso) {
  // Replace the publish CAS with a blind store — exactly what the
  // chaos-tier TransferAblatedSplitDeque ships. A transfer racing a claim
  // clobbers the thief's top advance and the same item is handed out
  // twice. Algorithmic, so SC and TSO both catch it: this is the
  // x86-visible ablation the hardware fuzz (test_chaos_deques) can
  // actually reproduce, unlike a pure release->relaxed demotion that TSO
  // hardware silently repairs.
  const std::vector<Script> scripts = {
      {push(1), push(2), transfer(), push(3), transfer()},
      {pop_top(), pop_top()},
      {pop_top()},
  };
  WAblation ablation;
  ablation.split_blind_publish = true;
  for (MemModel m : {MemModel::kSC, MemModel::kTSO}) {
    const auto r = wexplore(scripts, options(WMachine::kSplit, m, ablation));
    expect_counterexample(r,
                          m == MemModel::kSC ? "split.blind_publish/SC"
                                             : "split.blind_publish/TSO",
                          "twice");
  }
  // Control: the CAS-publishing machine survives the same double-publish
  // script under TSO (the widest state space this suite fully explores
  // for the split machine).
  const auto safe =
      wexplore(scripts, options(WMachine::kSplit, MemModel::kTSO));
  EXPECT_TRUE(safe.passed()) << safe.violation;
}

TEST(WeakModel, SplitDporVerdictMatchesOnAblatedMachine) {
  // Reduction must not hide the split bugs either: same ablation, same
  // verdict, with and without DPOR.
  const std::vector<Script> scripts = {{push(1), transfer()}, {pop_top()}};
  WAblation ablation;
  ablation.split_relaxed_transfer = true;
  WExploreOptions with = options(WMachine::kSplit, MemModel::kRA, ablation);
  WExploreOptions without = with;
  without.use_dpor = false;
  const auto reduced = wexplore(scripts, with);
  const auto full = wexplore(scripts, without);
  EXPECT_FALSE(reduced.ok);
  EXPECT_FALSE(full.ok);
  EXPECT_EQ(reduced.violation.empty(), full.violation.empty());
}

// ---- DPOR: identical verdicts, >= 5x fewer nodes ----------------------------

TEST(WeakModel, DporReducesNodesFivefoldOnLongestPassingScript) {
  // The longest script this suite runs through both the reduced and the
  // unreduced search; both must agree the machine is correct, and the
  // sleep/persistent sets must cut the explored transitions >= 5x
  // (EXPERIMENTS.md E23 tabulates the counts).
  const std::vector<Script> scripts = {
      {push(1), push(2), pop_bottom(), pop_bottom()},
      {pop_top()},
  };
  WExploreOptions with = options(WMachine::kAbp, MemModel::kRA);
  WExploreOptions without = with;
  without.use_dpor = false;
  const auto reduced = wexplore(scripts, with);
  const auto full = wexplore(scripts, without);
  EXPECT_TRUE(reduced.passed()) << reduced.violation;
  EXPECT_TRUE(full.passed()) << full.violation;
  EXPECT_EQ(reduced.ok, full.ok);
  EXPECT_EQ(reduced.terminal_states <= full.terminal_states, true);
  ASSERT_GT(reduced.nodes, 0u);
  EXPECT_GE(full.nodes, 5 * reduced.nodes)
      << "DPOR ratio only " << (double(full.nodes) / double(reduced.nodes))
      << " (full " << full.nodes << ", reduced " << reduced.nodes << ")";
  std::cout << "[dpor] abp/RA owner+thief: full=" << full.nodes
            << " nodes, dpor=" << reduced.nodes << " nodes, ratio="
            << (double(full.nodes) / double(reduced.nodes)) << "\n";
}

TEST(WeakModel, DporNodeCountsPerMachine) {
  // The EXPERIMENTS.md E23 table: explored transitions with and without
  // DPOR, per machine/model, identical verdicts. Repro:
  //   ./tests/test_model_weak --gtest_filter='WeakModel.DporNodeCounts*'
  struct Case {
    const char* name;
    WMachine machine;
    MemModel model;
    std::vector<Script> scripts;
    // Cap for the UNREDUCED run only. The growable/TSO full search does
    // not finish within 20M transitions (that non-termination is the E23
    // headline); cap it low and report the node count as a lower bound.
    std::size_t full_cap = 20'000'000;
  };
  const std::vector<Case> cases = {
      {"abp/TSO", WMachine::kAbp, MemModel::kTSO,
       {{push(1), push(2), pop_bottom()}, {pop_top()}}},
      {"abp/RA", WMachine::kAbp, MemModel::kRA,
       {{push(1), push(2), pop_bottom(), pop_bottom()}, {pop_top()}}},
      {"growable/TSO", WMachine::kGrowable, MemModel::kTSO,
       {{push(1), push(2), push(3)}, {pop_top()}},
       2'000'000},
      {"growable/RA", WMachine::kGrowable, MemModel::kRA,
       {{push(1), push(2), push(3), pop_bottom()}, {pop_top()}}},
      {"chase_lev/RA", WMachine::kChaseLev, MemModel::kRA,
       {{push(1), push(2), pop_bottom()}, {pop_top()}}},
      {"split/TSO", WMachine::kSplit, MemModel::kTSO,
       {{push(1), push(2), transfer(), pop_bottom()}, {pop_top()}, {pop_top()}},
       2'000'000},
      {"split/RA", WMachine::kSplit, MemModel::kRA,
       {{push(1), push(2), transfer(), pop_bottom()},
        {pop_top()},
        {pop_top()}}},
  };
  for (const Case& c : cases) {
    WExploreOptions with = options(c.machine, c.model);
    WExploreOptions without = with;
    without.use_dpor = false;
    without.max_nodes = c.full_cap;
    const auto reduced = wexplore(c.scripts, with);
    const auto full = wexplore(c.scripts, without);
    EXPECT_TRUE(reduced.passed()) << c.name << ": " << reduced.violation;
    // The unreduced run may legitimately be truncated (growable/TSO);
    // when it does finish, the verdict must match DPOR's.
    if (full.truncated) {
      EXPECT_TRUE(full.ok) << c.name << ": " << full.violation;
    } else {
      EXPECT_TRUE(full.passed()) << c.name << ": " << full.violation;
      EXPECT_EQ(reduced.ok, full.ok) << c.name;
    }
    ASSERT_GT(reduced.nodes, 0u);
    std::cout << "[e23] " << c.name << ": full="
              << (full.truncated ? ">=" : "") << full.nodes
              << " dpor=" << reduced.nodes << " ratio="
              << (full.truncated ? ">=" : "")
              << (double(full.nodes) / double(reduced.nodes))
              << " terminals=" << full.terminal_states << "/"
              << reduced.terminal_states
              << (full.truncated ? " (full run truncated: did not finish)"
                                 : "")
              << "\n";
  }
}

TEST(WeakModel, DporVerdictMatchesOnAblatedMachine) {
  // Reduction must not hide the bug either: same ablation, same verdict,
  // with and without DPOR.
  const std::vector<Script> scripts = {
      {push(1), pop_bottom(), push(2), pop_bottom()},
      {pop_top()},
  };
  WAblation ablation;
  ablation.frozen_tag = true;
  WExploreOptions with = options(WMachine::kAbp, MemModel::kRA, ablation);
  WExploreOptions without = with;
  without.use_dpor = false;
  const auto reduced = wexplore(scripts, with);
  const auto full = wexplore(scripts, without);
  EXPECT_FALSE(reduced.ok);
  EXPECT_FALSE(full.ok);
  EXPECT_EQ(reduced.violation.empty(), full.violation.empty());
}

// ---- truncation must be loud ------------------------------------------------

TEST(WeakModel, TruncatedExplorationIsNotAPass) {
  const std::vector<Script> scripts = {
      {push(1), push(2), pop_bottom(), pop_bottom()},
      {pop_top()},
  };
  WExploreOptions o = options(WMachine::kAbp, MemModel::kRA);
  o.max_nodes = 50;
  const auto r = wexplore(scripts, o);
  EXPECT_TRUE(r.truncated);
  EXPECT_FALSE(r.passed()) << "a capped run must never read as a pass";
}

}  // namespace
}  // namespace abp::model
