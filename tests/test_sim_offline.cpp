// Tests for execution records, the offline greedy / Brent schedulers
// (Theorem 2), and the Theorem 1 lower-bound construction.

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <string>

#include "dag/builders.hpp"
#include "sim/offline.hpp"
#include "sim/profile.hpp"

namespace abp::sim {
namespace {

// ---- ExecutionRecord ---------------------------------------------------------

TEST(ExecutionRecord, Aggregates) {
  ExecutionRecord r(true);
  r.begin_round(3);
  r.record_execute(0, 0);
  r.record_idle(1);
  r.record_execute(2, 1);
  r.begin_round(1);
  r.record_execute(0, 2);
  EXPECT_EQ(r.length(), 2u);
  EXPECT_EQ(r.total_scheduled(), 4u);
  EXPECT_EQ(r.executed_nodes(), 3u);
  EXPECT_EQ(r.idle_tokens(), 1u);
  EXPECT_DOUBLE_EQ(r.processor_average(), 2.0);
}

TEST(ExecutionRecord, ValidateAcceptsSerialChain) {
  const auto d = dag::chain(3);
  ExecutionRecord r(true);
  r.begin_round(1);
  r.record_execute(0, 0);
  r.begin_round(1);
  r.record_execute(0, 1);
  r.begin_round(1);
  r.record_execute(0, 2);
  EXPECT_TRUE(r.validate(d).empty()) << r.validate(d);
}

TEST(ExecutionRecord, ValidateRejectsOutOfOrder) {
  const auto d = dag::chain(2);
  ExecutionRecord r(true);
  r.begin_round(2);
  r.record_execute(0, 1);
  r.record_execute(1, 0);
  EXPECT_NE(r.validate(d).find("predecessor"), std::string::npos);
}

TEST(ExecutionRecord, ValidateRejectsDoubleExecution) {
  const auto d = dag::chain(2);
  ExecutionRecord r(true);
  r.begin_round(3);
  r.record_execute(0, 0);
  r.record_execute(1, 1);
  r.record_execute(2, 1);
  EXPECT_NE(r.validate(d).find("twice"), std::string::npos);
}

TEST(ExecutionRecord, ValidateRejectsIncomplete) {
  const auto d = dag::chain(2);
  ExecutionRecord r(true);
  r.begin_round(1);
  r.record_execute(0, 0);
  EXPECT_NE(r.validate(d).find("every node"), std::string::npos);
}

TEST(ExecutionRecord, WithoutActionsValidateRefuses) {
  const auto d = dag::chain(1);
  ExecutionRecord r(false);
  r.begin_round(1);
  r.record_execute(0, 0);
  EXPECT_FALSE(r.validate(d).empty());
  EXPECT_TRUE(r.actions().empty());
}

// ---- greedy schedules (Theorem 2) -------------------------------------------

TEST(Greedy, SerialChainTakesExactlyT1Rounds) {
  const auto d = dag::chain(20);
  const auto r = greedy_schedule(d, 4, constant_profile(4));
  EXPECT_EQ(r.length, 20u);
}

TEST(Greedy, DedicatedExecutionIsValid) {
  const auto d = dag::fib_dag(10);
  OfflineOptions opts;
  opts.keep_record = true;
  const auto r = greedy_schedule(d, 4, constant_profile(4), opts);
  EXPECT_TRUE(r.record.validate(d).empty()) << r.record.validate(d);
}

TEST(Greedy, LifoOrderAlsoValid) {
  const auto d = dag::fib_dag(9);
  OfflineOptions opts;
  opts.keep_record = true;
  opts.order = OfflineOptions::Order::kLifo;
  const auto r = greedy_schedule(d, 3, constant_profile(3), opts);
  EXPECT_TRUE(r.record.validate(d).empty());
}

TEST(Greedy, RespectsWorkLowerBound) {
  const auto d = dag::fib_dag(12);
  const auto r = greedy_schedule(d, 8, constant_profile(8));
  EXPECT_GE(static_cast<double>(r.length) + 1e-9, r.lower_bound_work);
}

struct GreedyCase {
  std::string name;
  std::function<dag::Dag()> build;
  std::size_t p;
  std::function<UtilizationProfile()> profile;
};

class GreedyBound : public ::testing::TestWithParam<GreedyCase> {};

// Theorem 2: every greedy schedule has length <= T1/PA + Tinf(P-1)/PA.
TEST_P(GreedyBound, WithinTheorem2Bound) {
  const auto& param = GetParam();
  const auto d = param.build();
  for (const auto order :
       {OfflineOptions::Order::kFifo, OfflineOptions::Order::kLifo}) {
    OfflineOptions opts;
    opts.order = order;
    const auto r = greedy_schedule(d, param.p, param.profile(), opts);
    EXPECT_LE(static_cast<double>(r.length), r.greedy_upper_bound + 1e-6)
        << param.name;
    EXPECT_GE(static_cast<double>(r.length) + 1e-9, r.lower_bound_work);
  }
}

// Brent (level-by-level) schedules satisfy the same bound.
TEST_P(GreedyBound, BrentWithinTheorem2Bound) {
  const auto& param = GetParam();
  const auto d = param.build();
  OfflineOptions opts;
  opts.keep_record = true;
  const auto r = brent_schedule(d, param.p, param.profile(), opts);
  EXPECT_LE(static_cast<double>(r.length), r.greedy_upper_bound + 1e-6)
      << param.name;
  EXPECT_TRUE(r.record.validate(d).empty()) << param.name;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GreedyBound,
    ::testing::Values(
        GreedyCase{"fib12_p1_full", [] { return dag::fib_dag(12); }, 1,
                   [] { return constant_profile(1); }},
        GreedyCase{"fib12_p8_full", [] { return dag::fib_dag(12); }, 8,
                   [] { return constant_profile(8); }},
        GreedyCase{"fib12_p8_bursty", [] { return dag::fib_dag(12); }, 8,
                   [] { return bursty_profile(8, 7, 20); }},
        GreedyCase{"fib12_p16_periodic", [] { return dag::fib_dag(12); }, 16,
                   [] { return periodic_profile(16, 3, 2, 9); }},
        GreedyCase{"grid_p4_ramp", [] { return dag::grid_wavefront(30, 30); },
                   4, [] { return ramp_down_profile(4, 50); }},
        GreedyCase{"wide_p8_full", [] { return dag::wide(64, 8); }, 8,
                   [] { return constant_profile(8); }},
        GreedyCase{"chain_p8_bursty", [] { return dag::chain(200); }, 8,
                   [] { return bursty_profile(8, 3, 10); }},
        GreedyCase{"sp_p6_periodic",
                   [] { return dag::random_series_parallel(9, 2000); }, 6,
                   [] { return periodic_profile(6, 11, 1, 5); }},
        GreedyCase{"fig1_p3_full", [] { return dag::figure1(); }, 3,
                   [] { return constant_profile(3); }}),
    [](const auto& info) { return info.param.name; });

TEST(Brent, ExecutesLevelsInOrder) {
  const auto d = dag::fork_join_tree(4);
  OfflineOptions opts;
  opts.keep_record = true;
  const auto r = brent_schedule(d, 4, constant_profile(4), opts);
  const auto depth = d.longest_depth_from_root();
  std::uint32_t max_seen = 0;
  for (const auto& a : r.record.actions()) {
    if (a.kind != ActionKind::kExecute) continue;
    // Levels are non-decreasing: level L starts only when all of L-1 done.
    EXPECT_GE(depth[a.node], max_seen)
        << "node of level " << depth[a.node] << " after level " << max_seen;
    max_seen = std::max(max_seen, depth[a.node]);
  }
}

TEST(Greedy, IdleOnlyWhenNoReadyNodes) {
  // In a greedy schedule, an idle slot implies every ready node was
  // executed that round (we can only verify the weaker consequence: the
  // number of executed nodes in an idle round is below p_i).
  const auto d = dag::chain(10);
  OfflineOptions opts;
  opts.keep_record = true;
  const auto r = greedy_schedule(d, 3, constant_profile(3), opts);
  EXPECT_EQ(r.length, 10u);
  EXPECT_EQ(r.idle_tokens, 20u);  // 2 idle slots per round
}

// ---- Theorem 1 lower bound ---------------------------------------------------

class Theorem1 : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Theorem1, ConstructionForcesCritPathLowerBound) {
  const std::uint64_t k = GetParam();
  const std::size_t p = 8;
  const auto d = dag::fib_dag(12);
  const auto tinf = d.critical_path_length();
  const auto profile = theorem1_profile(p, k, tinf);
  // Use the strongest offline scheduler we have — greedy — as the
  // adversary's best response; even it cannot beat Tinf * P / PA.
  const auto r = greedy_schedule(d, p, profile);
  const double bound =
      critpath_lower_bound(static_cast<double>(tinf), static_cast<double>(p),
                           r.processor_average);
  EXPECT_GE(static_cast<double>(r.length) + 1e-6, bound) << "k=" << k;
  // And the processor average lies between P/(k+1) (its value when the
  // execution ends exactly at round (k+1)*Tinf) and 1 (its limit as the
  // single-processor tail phase extends the schedule).
  const double pk = static_cast<double>(p) / static_cast<double>(k + 1);
  EXPECT_LE(r.processor_average, std::max(pk, 1.0) + 1e-9);
  EXPECT_GE(r.processor_average, std::min(pk, 1.0) - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(KSweep, Theorem1,
                         ::testing::Values(0u, 1u, 2u, 3u, 5u, 9u));

TEST(Bounds, HelperFormulas) {
  EXPECT_DOUBLE_EQ(work_lower_bound(100, 4), 25.0);
  EXPECT_DOUBLE_EQ(critpath_lower_bound(10, 8, 2), 40.0);
  EXPECT_DOUBLE_EQ(greedy_bound(100, 10, 5, 2), 70.0);
  EXPECT_DOUBLE_EQ(work_stealer_bound(100, 10, 5, 2), 75.0);
}

TEST(OfflineDeath, StarvationProfileHitsMaxRounds) {
  const auto d = dag::chain(4);
  OfflineOptions opts;
  opts.max_rounds = 100;
  EXPECT_DEATH(greedy_schedule(d, 2, constant_profile(0), opts),
               "max_rounds");
}

}  // namespace
}  // namespace abp::sim
