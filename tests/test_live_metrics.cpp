// The live metrics plane (ISSUE 6 tentpole): per-worker seqlock
// publication, the background MetricsPump, and mid-run snapshots that are
// monotone and consistent with the post-quiesce ground truth.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.hpp"
#include "obs/pump.hpp"
#include "obs/seqlock.hpp"
#include "runtime/scheduler.hpp"

namespace {

using namespace abp;

// ---- seqlock -------------------------------------------------------------

struct Pair {
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

TEST(SeqlockTest, ReadReturnsLastPublished) {
  obs::Seqlock<Pair> sl;
  EXPECT_EQ(sl.sequence(), 0u);
  Pair out;
  EXPECT_TRUE(sl.try_read(out));  // zero-initialized before first publish
  EXPECT_EQ(out.a, 0u);
  sl.publish(Pair{7, 9});
  ASSERT_TRUE(sl.try_read(out));
  EXPECT_EQ(out.a, 7u);
  EXPECT_EQ(out.b, 9u);
  EXPECT_EQ(sl.sequence(), 2u);  // one publish = +2
}

TEST(SeqlockTest, NeverReturnsTornReads) {
  // Writer publishes {i, ~i} as fast as it can; every successful read must
  // see a consistent pair. A torn read would mix two publications.
  obs::Seqlock<Pair> sl;
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    std::uint64_t i = 1;
    while (!stop.load(std::memory_order_acquire)) {
      sl.publish(Pair{i, ~i});
      ++i;
    }
  });
  std::uint64_t reads = 0, last_a = 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(100);
  while (std::chrono::steady_clock::now() < deadline) {
    Pair out;
    if (!sl.try_read(out)) continue;
    if (out.a == 0) continue;  // before the first publish
    ASSERT_EQ(out.b, ~out.a) << "torn read";
    ASSERT_GE(out.a, last_a) << "went back in time";
    last_a = out.a;
    ++reads;
  }
  stop.store(true, std::memory_order_release);
  writer.join();
  EXPECT_GT(reads, 0u);
}

TEST(SeqlockTest, RetryingReadSpinsThroughContention) {
  obs::Seqlock<Pair> sl;
  sl.publish(Pair{1, ~1ull});
  std::uint64_t retries = 0;
  const Pair out = sl.read(&retries);
  EXPECT_EQ(out.b, ~out.a);
}

// ---- json stream ---------------------------------------------------------

TEST(JsonStreamTest, DropsOldestWhenFull) {
  obs::JsonStream s(4);
  for (int i = 0; i < 10; ++i) s.push("line" + std::to_string(i));
  EXPECT_EQ(s.size(), 4u);
  EXPECT_EQ(s.pushed(), 10u);
  EXPECT_EQ(s.dropped(), 6u);
  const std::vector<std::string> lines = s.drain();
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(lines.front(), "line6");  // oldest retained
  EXPECT_EQ(lines.back(), "line9");   // newest
  EXPECT_EQ(s.size(), 0u);
  EXPECT_EQ(s.dropped(), 6u);  // drain does not reset loss accounting
}

// ---- metrics pump --------------------------------------------------------

TEST(MetricsPumpTest, PumpOnceAggregatesDeltasIntoRates) {
  std::atomic<std::uint64_t> counter{0};
  abp::obs::MetricsPump pump([&] {
    return std::vector<obs::MetricPoint>{
        {"jobs", static_cast<double>(counter.load())}};
  });
  counter = 100;
  pump.pump_once();
  counter = 350;
  pump.pump_once();
  const auto latest = pump.latest();
  ASSERT_EQ(latest.size(), 1u);
  EXPECT_EQ(latest[0].name, "jobs");
  EXPECT_DOUBLE_EQ(latest[0].value, 350.0);
  const auto rates = pump.latest_rates();
  ASSERT_EQ(rates.size(), 1u);
  EXPECT_GE(rates[0].value, 0.0);  // 250 jobs over a tiny dt: huge, but >= 0

  // A counter that goes backwards (stats reset) clamps to zero, never
  // reports a negative rate.
  counter = 10;
  pump.pump_once();
  EXPECT_DOUBLE_EQ(pump.latest_rates()[0].value, 0.0);
}

TEST(MetricsPumpTest, StreamedJsonIsWellFormed) {
  std::uint64_t n = 0;
  abp::obs::MetricsPump pump([&] {
    ++n;
    return std::vector<obs::MetricPoint>{
        {"ticks", static_cast<double>(n)}};
  });
  pump.pump_once();
  pump.pump_once();
  std::string err;
  const std::string line = pump.latest_json();
  ASSERT_FALSE(line.empty());
  EXPECT_TRUE(obs::json_validate(line, &err)) << err;
  EXPECT_NE(line.find("\"seq\""), std::string::npos);
  EXPECT_NE(line.find("\"totals\""), std::string::npos);
  EXPECT_NE(line.find("\"rates\""), std::string::npos);
  EXPECT_NE(line.find("ticks_per_sec"), std::string::npos);
  const auto lines = pump.stream().drain();
  EXPECT_EQ(lines.size(), 2u);
  for (const std::string& l : lines)
    EXPECT_TRUE(obs::json_validate(l, &err)) << err;
}

TEST(MetricsPumpTest, BackgroundThreadTicksAndStops) {
  abp::obs::MetricsPump::Options o;
  o.interval_ms = 2;
  abp::obs::MetricsPump pump(
      [] { return std::vector<obs::MetricPoint>{{"x", 1.0}}; }, o);
  pump.start();
  EXPECT_TRUE(pump.running());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (pump.ticks() < 3 && std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  pump.stop();
  EXPECT_FALSE(pump.running());
  EXPECT_GE(pump.ticks(), 3u);
  EXPECT_GE(pump.stream().pushed(), 3u);
}

// ---- scheduler live plane ------------------------------------------------

#if ABP_TRACE_ENABLED

void spawn_tree(runtime::Worker& w, int depth) {
  if (depth == 0) return;
  runtime::TaskGroup tg(w);
  tg.spawn([depth](runtime::Worker& w2) { spawn_tree(w2, depth - 1); });
  spawn_tree(w, depth - 1);
  tg.wait();
}

TEST(LiveSnapshotTest, MidRunMonotoneAndConsistentWithQuiesce) {
  runtime::SchedulerOptions opts;
  opts.num_workers = 4;
  opts.live_publish_interval_us = 20;  // publish aggressively for the test
  runtime::Scheduler sched(opts);

  std::atomic<bool> done{false};
  std::thread runner([&] {
    sched.run([](runtime::Worker& w) { spawn_tree(w, 17); });
    done.store(true, std::memory_order_release);
  });

  runtime::Scheduler::LiveSnapshot prev{};
  std::uint64_t polls = 0;
  while (true) {
    const bool finished = done.load(std::memory_order_acquire);
    const auto snap = sched.live_snapshot();
    ++polls;
    // Epoch-consistent reads of monotone counters: never backwards.
    EXPECT_GE(snap.stats.jobs_executed, prev.stats.jobs_executed);
    EXPECT_GE(snap.stats.steals, prev.stats.steals);
    EXPECT_GE(snap.stats.steal_attempts, prev.stats.steal_attempts);
    EXPECT_GE(snap.stats.spawns, prev.stats.spawns);
    EXPECT_GE(snap.publishes, prev.publishes);
    prev = snap;
    if (finished) break;
    std::this_thread::sleep_for(std::chrono::microseconds(300));
  }
  runner.join();
  EXPECT_GE(polls, 2u);

  // Post-quiesce: the final epoch-exit publication makes the live plane
  // agree exactly with the summed ground-truth counters.
  const auto totals = sched.total_stats();
  const auto fin = sched.live_snapshot();
  EXPECT_EQ(fin.stats.jobs_executed, totals.jobs_executed);
  EXPECT_EQ(fin.stats.steals, totals.steals);
  EXPECT_EQ(fin.stats.spawns, totals.spawns);
  EXPECT_LE(prev.stats.jobs_executed, totals.jobs_executed);
  EXPECT_GE(fin.workers_published, 1u);
}

TEST(LiveSnapshotTest, DisabledIntervalPublishesNothing) {
  runtime::SchedulerOptions opts;
  opts.num_workers = 2;
  opts.live_publish_interval_us = 0;  // live plane off
  runtime::Scheduler sched(opts);
  sched.run([](runtime::Worker& w) { spawn_tree(w, 8); });
  const auto snap = sched.live_snapshot();
  EXPECT_EQ(snap.publishes, 0u);
  EXPECT_EQ(snap.workers_published, 0u);
  EXPECT_EQ(snap.stats.jobs_executed, 0u);
  // Ground truth is unaffected by the live plane being off.
  EXPECT_GT(sched.total_stats().jobs_executed, 0u);
}

TEST(LiveSampleTest, PointsMatchSnapshotAfterQuiesce) {
  runtime::SchedulerOptions opts;
  opts.num_workers = 2;
  runtime::Scheduler sched(opts);
  sched.run([](runtime::Worker& w) { spawn_tree(w, 10); });
  const auto points = sched.live_sample();
  ASSERT_FALSE(points.empty());
  double jobs = -1.0;
  for (const auto& p : points)
    if (p.name == "abp_jobs_executed") jobs = p.value;
  EXPECT_DOUBLE_EQ(jobs,
                   static_cast<double>(sched.total_stats().jobs_executed));
}

TEST(LiveSampleTest, FeedsPumpEndToEnd) {
  runtime::SchedulerOptions opts;
  opts.num_workers = 2;
  runtime::Scheduler sched(opts);
  abp::obs::MetricsPump pump([&] { return sched.live_sample(); });
  pump.pump_once();
  sched.run([](runtime::Worker& w) { spawn_tree(w, 10); });
  pump.pump_once();
  std::string err;
  const std::string line = pump.latest_json();
  EXPECT_TRUE(obs::json_validate(line, &err)) << err;
  EXPECT_NE(line.find("abp_jobs_executed"), std::string::npos);
}

TEST(PrometheusEndpointTest, SchedulerTextValidatesAndCarriesCoreSeries) {
  runtime::SchedulerOptions opts;
  opts.num_workers = 2;
  runtime::Scheduler sched(opts);
  sched.run([](runtime::Worker& w) { spawn_tree(w, 10); });
  const std::string text = sched.prometheus_text();
  std::string err;
  EXPECT_TRUE(obs::prometheus_validate(text, &err)) << err;
  for (const char* name :
       {"abp_workers", "abp_jobs_executed_total", "abp_steals_total",
        "abp_steal_attempts_total", "abp_cross_domain_steals_total",
        "abp_steal_latency_ns_bucket", "abp_job_run_ns_count"}) {
    EXPECT_NE(text.find(name), std::string::npos) << name;
  }
}

#endif  // ABP_TRACE_ENABLED

}  // namespace
