// Multi-tenant overload-protection plane (DESIGN.md §16): admission
// control, per-tenant quotas, graceful load-shedding, futex-style
// submitter parking, and the shutdown(deadline) abandonment report.
//
// The two conservation identities gated throughout (per tenant):
//
//   submitted == admitted + rejected_tenant_quota + rejected_global
//              + rejected_stopped + timed_out
//   admitted  == completed + shed (+ abandoned_* on a timed-out shutdown)
//
// "Exactly once" is checked with the on_finalize hook: every admitted
// admission sequence number finalizes exactly one time, with exactly one
// typed outcome.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "obs/export.hpp"
#include "runtime/tenant/tenant_service.hpp"

namespace abp::runtime::tenant {
namespace {

using namespace std::chrono_literals;

// Checks both identities on a quiesced (drained) snapshot.
void expect_conserved(const TenantSnapshot& s) {
  EXPECT_EQ(s.submitted, s.admitted + s.rejected_tenant_quota +
                             s.rejected_global + s.rejected_stopped +
                             s.timed_out)
      << "tenant " << s.name;
  EXPECT_EQ(s.admitted, s.completed + s.shed) << "tenant " << s.name;
}

// Exactly-once ledger: slot `seq` counts finalizations of that admission.
struct FinalizeLedger {
  explicit FinalizeLedger(std::size_t max_seqs)
      : counts(max_seqs), completed(max_seqs) {}
  std::vector<std::atomic<std::uint32_t>> counts;
  std::vector<std::atomic<bool>> completed;

  // Worker-context safe (atomics only).
  void record(std::uint64_t seq, bool was_completed) {
    ASSERT_LT(seq, counts.size());
    counts[seq].fetch_add(1, std::memory_order_seq_cst);
    completed[seq].store(was_completed, std::memory_order_seq_cst);
  }
};

TEST(Tenant, UnderCapacityCompletesEverythingWithoutShedding) {
  ServiceOptions o;
  o.scheduler.num_workers = 2;
  o.max_outstanding_total = 128;
  o.overload.enabled = true;  // armed, but never triggered under capacity
  o.overload.poll_ms = 2;
  TenantService svc(o);
  const TenantId a = svc.register_tenant("alpha", {64, 2});
  const TenantId b = svc.register_tenant("beta", {64, 1});
  const TenantId c = svc.register_tenant("gamma", {64, 1});
  svc.start();

  RequestShape fan{RequestKind::kFanOut, 4, 2000};
  RequestShape pipe{RequestKind::kPipeline, 3, 2000};
  std::uint64_t admitted = 0;
  for (int i = 0; i < 20; ++i) {
    for (TenantId t : {a, b, c}) {
      const SubmitResult r = svc.submit(t, i % 2 ? fan : pipe);
      ASSERT_TRUE(r.admitted()) << to_string(r.status);
      ASSERT_GT(r.admit_seq, 0u);
      ++admitted;
    }
  }
  ASSERT_TRUE(svc.drain(10s));

  std::uint64_t completed = 0;
  for (const TenantSnapshot& s : svc.snapshot_all()) {
    expect_conserved(s);
    EXPECT_EQ(s.shed, 0u) << "under capacity nothing may be shed";
    EXPECT_EQ(s.submitted, 20u);
    completed += s.completed;
  }
  EXPECT_EQ(completed, admitted);
  EXPECT_EQ(svc.shed_marked(), 0u);

  const ShutdownReport rep = svc.shutdown(5s);
  EXPECT_TRUE(rep.drained);
  EXPECT_FALSE(rep.timed_out);
  EXPECT_TRUE(rep.consistent);
  ASSERT_EQ(rep.tenants.size(), 3u);
  for (const TenantRow& row : rep.tenants) {
    EXPECT_TRUE(row.partitions_ok()) << "tenant " << row.name;
    EXPECT_EQ(row.abandoned_total(), 0u);
  }
}

TEST(Tenant, RejectionsAreTypedAndCounted) {
  ServiceOptions o;
  o.scheduler.num_workers = 2;
  o.max_outstanding_total = 4;  // global limit
  o.overload.enabled = false;
  TenantService svc(o);
  const TenantId a = svc.register_tenant("alpha", {2, 1});  // quota 2
  const TenantId b = svc.register_tenant("beta", {4, 1});
  svc.start();

  // Slow requests so the backlog holds still while we probe the budgets.
  RequestShape slow{RequestKind::kPipeline, 1, 30'000'000};  // ~30ms

  // alpha: quota 2 -> third submit is a typed quota rejection.
  ASSERT_TRUE(svc.submit(a, slow).admitted());
  ASSERT_TRUE(svc.submit(a, slow).admitted());
  EXPECT_EQ(svc.submit(a, slow).status, AdmitStatus::kRejectedTenantQuota);

  // beta: quota 4, but only 2 global slots remain -> global rejection.
  ASSERT_TRUE(svc.submit(b, slow).admitted());
  ASSERT_TRUE(svc.submit(b, slow).admitted());
  EXPECT_EQ(svc.submit(b, slow).status, AdmitStatus::kRejectedGlobalLimit);

  ASSERT_TRUE(svc.drain(10s));
  const TenantSnapshot sa = svc.snapshot(a);
  const TenantSnapshot sb = svc.snapshot(b);
  EXPECT_EQ(sa.rejected_tenant_quota, 1u);
  EXPECT_EQ(sa.rejected_global, 0u);
  EXPECT_EQ(sb.rejected_global, 1u);
  EXPECT_EQ(sb.rejected_tenant_quota, 0u);
  expect_conserved(sa);
  expect_conserved(sb);

  const ShutdownReport rep = svc.shutdown(5s);
  EXPECT_TRUE(rep.drained);
  // Post-shutdown submits are typed too, and counted.
  EXPECT_EQ(svc.submit(a, slow).status, AdmitStatus::kRejectedStopped);
  EXPECT_EQ(svc.snapshot(a).rejected_stopped, 1u);
}

TEST(Tenant, OverloadShedsExactlyOnceWithTypedOutcomes) {
  FinalizeLedger ledger(4096);
  ServiceOptions o;
  o.scheduler.num_workers = 2;
  o.max_outstanding_total = 32;
  o.overload.enabled = true;
  o.overload.poll_ms = 2;
  o.overload.queue_high = 6;
  o.overload.queue_low = 2;
  o.overload.stale_p99_ms = 0.0;  // depth-only trigger
  o.overload.sustain_polls = 2;
  o.on_finalize = [&ledger](TenantId, std::uint64_t seq, bool completed) {
    ledger.record(seq, completed);
  };
  TenantService svc(o);
  const TenantId a = svc.register_tenant("alpha", {32, 1});
  svc.start();

  // Burst far past the watermarks; each request takes ~5ms, so the queue
  // is deep for many shedder polls.
  RequestShape slow{RequestKind::kPipeline, 1, 5'000'000};
  std::vector<std::uint64_t> admitted_seqs;
  for (int i = 0; i < 32; ++i) {
    const SubmitResult r = svc.submit(a, slow);
    ASSERT_TRUE(r.admitted());
    admitted_seqs.push_back(r.admit_seq);
  }
  ASSERT_TRUE(svc.drain(30s));

  const TenantSnapshot s = svc.snapshot(a);
  expect_conserved(s);
  EXPECT_GT(s.shed, 0u) << "sustained overload must shed";
  EXPECT_LT(s.shed, s.admitted) << "running requests are never shed";
  EXPECT_GE(svc.shed_marked(), s.shed);
  EXPECT_GT(svc.overload_rounds(), 0u);

  // Exactly-once, typed: every admitted seq finalized exactly one time,
  // and the ledger's completed/shed split matches the counters.
  std::uint64_t completed = 0, shed = 0;
  for (std::uint64_t seq : admitted_seqs) {
    ASSERT_EQ(ledger.counts[seq].load(std::memory_order_seq_cst), 1u)
        << "seq " << seq;
    if (ledger.completed[seq].load(std::memory_order_seq_cst))
      ++completed;
    else
      ++shed;
  }
  EXPECT_EQ(completed, s.completed);
  EXPECT_EQ(shed, s.shed);

  const ShutdownReport rep = svc.shutdown(5s);
  EXPECT_TRUE(rep.drained);
  EXPECT_TRUE(rep.tenants.at(0).partitions_ok());
}

TEST(Tenant, BlockingSubmitParksThenAdmits) {
  ServiceOptions o;
  o.scheduler.num_workers = 2;
  o.max_outstanding_total = 8;
  o.overload.enabled = false;
  TenantService svc(o);
  const TenantId a = svc.register_tenant("alpha", {1, 1});  // quota 1
  svc.start();

  RequestShape slow{RequestKind::kPipeline, 1, 50'000'000};  // ~50ms
  ASSERT_TRUE(svc.submit(a, slow).admitted());
  // Quota full: the blocking submit must park until the first request
  // finalizes, then win admission well inside the timeout.
  const SubmitResult r = svc.submit_blocking(a, slow, 10s);
  EXPECT_EQ(r.status, AdmitStatus::kAdmitted);
  EXPECT_GE(svc.snapshot(a).parked, 1u);
  ASSERT_TRUE(svc.drain(10s));
  expect_conserved(svc.snapshot(a));
  EXPECT_TRUE(svc.shutdown(5s).drained);
}

TEST(Tenant, BlockingSubmitTimesOutWithTypedStatus) {
  ServiceOptions o;
  o.scheduler.num_workers = 2;
  o.max_outstanding_total = 8;
  o.overload.enabled = false;
  TenantService svc(o);
  const TenantId a = svc.register_tenant("alpha", {1, 1});
  svc.start();

  RequestShape slow{RequestKind::kPipeline, 1, 300'000'000};  // ~300ms
  ASSERT_TRUE(svc.submit(a, slow).admitted());
  const auto t0 = std::chrono::steady_clock::now();
  const SubmitResult r = svc.submit_blocking(a, slow, 30ms);
  EXPECT_EQ(r.status, AdmitStatus::kTimedOut);
  EXPECT_EQ(r.admit_seq, 0u);
  EXPECT_LT(std::chrono::steady_clock::now() - t0, 5s);
  EXPECT_EQ(svc.snapshot(a).timed_out, 1u);
  ASSERT_TRUE(svc.drain(10s));
  expect_conserved(svc.snapshot(a));
  EXPECT_TRUE(svc.shutdown(5s).drained);
}

// Satellite: the shutdown(deadline) report classifies abandoned work by
// tenant AND by slot state, and the totals partition the submitted count.
TEST(Tenant, ShutdownTimeoutClassifiesAbandonedByState) {
  ServiceOptions o;
  o.scheduler.num_workers = 1;  // the dispatcher is the only worker
  o.max_outstanding_total = 16;
  o.overload.enabled = false;
  TenantService svc(o);
  const TenantId a = svc.register_tenant("alpha", {16, 1});
  svc.start();

  // One long request; give the dispatcher time to start it, then pile
  // four more behind it — with a single worker they stay queued.
  RequestShape wedge{RequestKind::kPipeline, 1, 400'000'000};  // ~400ms
  RequestShape quick{RequestKind::kPipeline, 1, 1'000'000};
  ASSERT_TRUE(svc.submit(a, wedge).admitted());
  std::this_thread::sleep_for(50ms);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(svc.submit(a, quick).admitted());

  const ShutdownReport rep = svc.shutdown(60ms);
  EXPECT_FALSE(rep.drained);
  EXPECT_TRUE(rep.timed_out);
  EXPECT_TRUE(rep.consistent);
  ASSERT_EQ(rep.tenants.size(), 1u);
  const TenantRow& row = rep.tenants.at(0);
  EXPECT_TRUE(row.partitions_ok());
  EXPECT_EQ(row.submitted, 5u);
  EXPECT_EQ(row.admitted, 5u);
  EXPECT_EQ(row.abandoned_running, 1u) << "the wedged request was running";
  EXPECT_EQ(row.abandoned_queued, 4u) << "the pile-up never started";
  EXPECT_EQ(row.abandoned_shed, 0u);
  // The destructor completes the teardown once the wedge spins out.
}

// Satellite: 2-tenant starvation check. A heavy tenant offering far more
// than capacity must not starve a light tenant: the quota caps the heavy
// tenant's outstanding share, so the light tenant's requests keep
// completing with bounded latency while the heavy tenant eats typed quota
// rejections.
TEST(Tenant, LightTenantSurvivesHeavyOverload) {
  ServiceOptions o;
  o.scheduler.num_workers = 2;
  o.max_outstanding_total = 64;
  o.overload.enabled = false;  // quota-only protection in this test
  TenantService svc(o);
  const TenantId heavy = svc.register_tenant("heavy", {8, 4});
  const TenantId light = svc.register_tenant("light", {4, 1});
  svc.start();

  const auto end = std::chrono::steady_clock::now() + 1200ms;
  std::thread heavy_thread([&svc, heavy, end] {
    RequestShape big{RequestKind::kFanOut, 4, 300'000};  // ~1.2ms of work
    while (std::chrono::steady_clock::now() < end) {
      (void)svc.submit(heavy, big);
      std::this_thread::sleep_for(200us);
    }
  });
  RequestShape small{RequestKind::kPipeline, 1, 200'000};  // ~0.2ms
  std::uint64_t light_submitted = 0;
  while (std::chrono::steady_clock::now() < end) {
    (void)svc.submit(light, small);
    ++light_submitted;
    std::this_thread::sleep_for(5ms);
  }
  heavy_thread.join();
  ASSERT_TRUE(svc.drain(30s));

  const TenantSnapshot sh = svc.snapshot(heavy);
  const TenantSnapshot sl = svc.snapshot(light);
  expect_conserved(sh);
  expect_conserved(sl);
  // The heavy tenant really did overload its budget...
  EXPECT_GT(sh.rejected_tenant_quota, 0u);
  // ...while the light tenant kept a bounded completion share and p99.
  EXPECT_EQ(sl.shed, 0u);
  EXPECT_GE(sl.completed, (light_submitted * 6) / 10)
      << "light tenant starved: " << sl.completed << "/" << light_submitted;
  const double p99_ms = sl.latency.percentile(99.0) / 1e6;
  EXPECT_LT(p99_ms, 500.0) << "light tenant p99 unbounded under overload";
  EXPECT_TRUE(svc.shutdown(5s).drained);
}

TEST(Tenant, ExportersAreWellFormed) {
  ServiceOptions o;
  o.scheduler.num_workers = 2;
  o.max_outstanding_total = 16;
  o.overload.poll_ms = 2;
  TenantService svc(o);
  svc.register_tenant("alpha", {8, 1});
  svc.register_tenant("beta", {8, 1});
  svc.start();
  RequestShape shape{RequestKind::kFanOut, 4, 1000};
  for (int i = 0; i < 8; ++i) {
    (void)svc.submit(0, shape);
    (void)svc.submit(1, shape);
  }
  ASSERT_TRUE(svc.drain(10s));

  std::string err;
  EXPECT_TRUE(obs::json_validate(svc.stats_json(), &err)) << err;
  EXPECT_TRUE(obs::prometheus_validate(svc.prometheus_text(), &err)) << err;

  // live_sample is the METRICS_JSON feed: monotone counters only.
  const auto before = svc.live_sample();
  for (int i = 0; i < 8; ++i) (void)svc.submit(0, shape);
  ASSERT_TRUE(svc.drain(10s));
  const auto after = svc.live_sample();
  ASSERT_EQ(before.size(), after.size());
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(before[i].name, after[i].name);
    EXPECT_GE(after[i].value, before[i].value)
        << before[i].name << " regressed: a gauge leaked into the stream";
  }
  EXPECT_TRUE(svc.shutdown(5s).drained);
}

}  // namespace
}  // namespace abp::runtime::tenant
