// Statistical steal-bound suite for the steal-policy layer (ISSUE PR 5,
// satellite 1): every (steal, victim) policy combination is run over 30
// seeded ensembles per workload, and the suite enforces two things the
// theory and the design both promise:
//
//   * the throw count stays O(P * Tinf) — the Theorem 9 balls-and-bins
//     argument does not care HOW a thief picks its victim as long as the
//     victim draw is "random enough"; every policy here falls back to a
//     fresh uniform draw after a failed preference, so the bound must
//     survive the policy layer with the usual generous constant;
//   * no policy makes stealing WORSE: a policy whose mean throws exceed
//     the uniform/single baseline beyond small-sample slack is a
//     regression and the suite fails (this is the acceptance gate for
//     merging any new victim heuristic).
//
// The steal-half headline (>= 20% fewer throws on at least one workload)
// is asserted here too and reported as experiment E25 in EXPERIMENTS.md.
//
// Sharding (ISSUE PR 7, satellite 3): the 30-seed ensembles are split
// across 3 TEST_P shards of 10 seeds each, so ctest -j runs them as
// parallel instances (label `bounds`) instead of one long serial test.
// Mean-based gates computed per shard keep their statistical teeth: the
// 3-standard-error slack widens automatically with the smaller sample.

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "dag/builders.hpp"
#include "runtime/dag_engine.hpp"
#include "runtime/options.hpp"
#include "sched/work_stealer.hpp"
#include "sim/kernel.hpp"
#include "support/stats.hpp"

namespace abp::sched {
namespace {

using sim::YieldKind;

constexpr std::size_t kP = 8;
constexpr std::uint64_t kSeedsPerShard = 10;  // 3 shards -> 30 seeds total

struct PolicyCase {
  const char* name;
  StealKind steal;
  VictimKind victim;
};

// The full policy matrix the engine exposes, including the hint-aware
// victim kind (PR 7): the simulator's stand-in for the runtime watchdog's
// steal-hint board.
const std::vector<PolicyCase>& policy_matrix() {
  static const std::vector<PolicyCase> cases = {
      {"single/uniform", StealKind::kSingle, VictimKind::kUniform},
      {"single/nearest", StealKind::kSingle, VictimKind::kNearestNeighbor},
      {"single/last", StealKind::kSingle, VictimKind::kLastVictim},
      {"single/hint", StealKind::kSingle, VictimKind::kHintAware},
      {"half/uniform", StealKind::kStealHalf, VictimKind::kUniform},
      {"half/nearest", StealKind::kStealHalf, VictimKind::kNearestNeighbor},
      {"half/last", StealKind::kStealHalf, VictimKind::kLastVictim},
      {"half/hint", StealKind::kStealHalf, VictimKind::kHintAware},
  };
  return cases;
}

RunMetrics run_policy(const dag::Dag& d, const PolicyCase& pc,
                      std::uint64_t seed,
                      SpawnOrder order = SpawnOrder::kChild) {
  sim::DedicatedKernel k(kP);
  Options opts;
  opts.yield = YieldKind::kNone;
  opts.spawn_order = order;
  opts.steal = pc.steal;
  opts.victim = pc.victim;
  opts.seed = seed;
  return run_work_stealer(d, k, opts);
}

// The seed shard [first_seed, last_seed] this ctest instance covers.
class StealBoundsShard : public ::testing::TestWithParam<int> {
 protected:
  std::uint64_t first_seed() const {
    return static_cast<std::uint64_t>(GetParam()) * kSeedsPerShard + 1;
  }
  std::uint64_t last_seed() const { return first_seed() + kSeedsPerShard - 1; }

  // Mean throws over this shard's ensemble; asserts completion per run.
  OnlineStats throw_ensemble(const dag::Dag& d, const PolicyCase& pc,
                             SpawnOrder order = SpawnOrder::kChild) {
    OnlineStats throws;
    for (std::uint64_t seed = first_seed(); seed <= last_seed(); ++seed) {
      const auto m = run_policy(d, pc, seed, order);
      EXPECT_TRUE(m.completed) << pc.name << " seed=" << seed;
      throws.add(static_cast<double>(m.steal_attempts));
    }
    return throws;
  }
};

// Every policy keeps E[throws] = O(P * Tinf): the ensemble mean of
// throws / (P * Tinf) stays under the same generous constant the Theorem 9
// test uses, on every workload family.
TEST_P(StealBoundsShard, ThrowsStayOrderPTinfAcrossPolicies) {
  const std::vector<std::pair<std::string, dag::Dag>> workloads = {
      {"fib13", dag::fib_dag(13)},
      {"grid", dag::grid_wavefront(30, 30)},
      {"sp", dag::random_series_parallel(21, 3000)},
  };
  for (const auto& [wname, d] : workloads) {
    const double tinf = static_cast<double>(d.critical_path_length());
    for (const PolicyCase& pc : policy_matrix()) {
      OnlineStats ratio;
      for (std::uint64_t seed = first_seed(); seed <= last_seed(); ++seed) {
        const auto m = run_policy(d, pc, seed);
        ASSERT_TRUE(m.completed) << wname << " " << pc.name;
        ratio.add(static_cast<double>(m.steal_attempts) /
                  (static_cast<double>(kP) * tinf));
      }
      EXPECT_LE(ratio.mean(), 12.0) << wname << " " << pc.name;
    }
  }
}

// The execution-length bound (Theorem 9 shape) survives the policy layer:
// no policy may trade throws for length.
TEST_P(StealBoundsShard, LengthBoundSurvivesPolicyLayer) {
  const auto d = dag::fib_dag(13);
  for (const PolicyCase& pc : policy_matrix()) {
    OnlineStats ratio;
    for (std::uint64_t seed = first_seed(); seed <= last_seed(); ++seed) {
      const auto m = run_policy(d, pc, seed);
      ASSERT_TRUE(m.completed) << pc.name;
      ratio.add(m.bound_ratio());
    }
    EXPECT_LE(ratio.mean(), 3.0) << pc.name;
    EXPECT_LE(ratio.max(), 4.5) << pc.name;
  }
}

// Regression gate: no victim heuristic may increase the mean throw count
// over the uniform draw with the same steal kind, beyond small-sample
// slack. The slack term is both relative (10%) and statistical (3
// standard errors of the difference of means) — a heuristic that
// genuinely increases throws clears neither, and merging it is a
// regression this suite exists to block.
TEST_P(StealBoundsShard, NoVictimPolicyRegressesMeanThrowsVsUniform) {
  const std::vector<std::pair<std::string, dag::Dag>> workloads = {
      {"fib13", dag::fib_dag(13)},
      {"grid", dag::grid_wavefront(30, 30)},
  };
  for (const auto& [wname, d] : workloads) {
    for (const StealKind steal : {StealKind::kSingle, StealKind::kStealHalf}) {
      const OnlineStats base = throw_ensemble(
          d, {"uniform-base", steal, VictimKind::kUniform});
      for (const PolicyCase& pc : policy_matrix()) {
        if (pc.steal != steal) continue;
        const OnlineStats cur = throw_ensemble(d, pc);
        const double se_diff =
            std::sqrt(base.variance() / static_cast<double>(base.count()) +
                      cur.variance() / static_cast<double>(cur.count()));
        EXPECT_LE(cur.mean(), 1.10 * base.mean() + 3.0 * se_diff)
            << wname << " " << pc.name << ": mean throws " << cur.mean()
            << " vs uniform baseline " << base.mean();
      }
    }
  }
}

// The E25 headline: when victims hold many long-running ready nodes — the
// wide dag with 40-node strands under help-first (kParent) spawning, so
// the producer's deque is deep while consumers stay busy between steals —
// steal-half cuts the ensemble-mean throw count by >= 20% against single
// stealing with the identical victim policy. The regime matters and is
// part of the claim: under work-first (kChild) spawning the same dag
// keeps every deque at depth <= 1 (batching is a no-op), and on deep
// recursion (fib) batching over-steals and mildly increases throws.
// EXPERIMENTS.md E25 reports the numbers for all three regimes.
TEST_P(StealBoundsShard, StealHalfCutsThrowsOnWideWorkload) {
  const auto d = dag::wide(64, 40);
  const OnlineStats single = throw_ensemble(
      d, {"single/uniform", StealKind::kSingle, VictimKind::kUniform},
      SpawnOrder::kParent);
  const OnlineStats half = throw_ensemble(
      d, {"half/uniform", StealKind::kStealHalf, VictimKind::kUniform},
      SpawnOrder::kParent);
  EXPECT_LE(half.mean(), 0.80 * single.mean())
      << "steal-half mean throws " << half.mean()
      << " vs single " << single.mean();
}

// Policy bookkeeping is real, not decorative: the counters that DESIGN.md
// §12 promises each policy populates are populated, and they mean what
// they say.
TEST_P(StealBoundsShard, PolicyCountersAreConsistent) {
  const auto d = dag::wide(200, 6);
  // Steal-half: batch claims happen, claims of more than one node are
  // real (the deep-deque regime, see StealHalfCutsThrowsOnWideWorkload),
  // and the per-claim cap is respected.
  const auto half =
      run_policy(d, {"half/uniform", StealKind::kStealHalf,
                     VictimKind::kUniform}, first_seed() + 10,
                 SpawnOrder::kParent);
  ASSERT_TRUE(half.completed);
  EXPECT_GT(half.batch_steals, 0u);
  EXPECT_GT(half.batch_stolen_items, half.batch_steals);
  EXPECT_LE(half.batch_stolen_items, half.batch_steals * 8);

  // Nearest-neighbor: successful steals record ring distances, and the
  // mean distance is smaller than uniform's (that is the point).
  OnlineStats near_dist, uni_dist;
  for (std::uint64_t seed = first_seed(); seed <= last_seed(); ++seed) {
    const auto mn = run_policy(d, {"single/nearest", StealKind::kSingle,
                                   VictimKind::kNearestNeighbor}, seed);
    const auto mu = run_policy(d, {"single/uniform", StealKind::kSingle,
                                   VictimKind::kUniform}, seed);
    ASSERT_TRUE(mn.completed);
    ASSERT_TRUE(mu.completed);
    if (mn.successful_steals > 0)
      near_dist.add(static_cast<double>(mn.victim_distance_sum) /
                    static_cast<double>(mn.successful_steals));
    if (mu.successful_steals > 0)
      uni_dist.add(static_cast<double>(mu.victim_distance_sum) /
                   static_cast<double>(mu.successful_steals));
  }
  ASSERT_GT(near_dist.count(), 0u);
  ASSERT_GT(uni_dist.count(), 0u);
  EXPECT_LT(near_dist.mean(), uni_dist.mean());

  // Last-victim: the cache hits at least sometimes on a workload where
  // victims stay rich across consecutive steals (deep recursive deques).
  const auto fib = dag::fib_dag(13);
  OnlineStats hits;
  for (std::uint64_t seed = first_seed(); seed <= last_seed(); ++seed) {
    const auto m = run_policy(fib, {"single/last", StealKind::kSingle,
                                    VictimKind::kLastVictim}, seed);
    ASSERT_TRUE(m.completed);
    hits.add(static_cast<double>(m.preferred_victim_hits));
  }
  EXPECT_GT(hits.mean(), 0.0);
}

// The policies hold up under multiprogramming too: a benign kernel at half
// utilization, every policy completes within the usual bound-ratio and the
// throw bound.
TEST_P(StealBoundsShard, PoliciesSurviveMultiprogramming) {
  const auto d = dag::fib_dag(13);
  const double tinf = static_cast<double>(d.critical_path_length());
  for (const PolicyCase& pc : policy_matrix()) {
    OnlineStats ratio, throws;
    for (std::uint64_t seed = first_seed(); seed <= last_seed(); ++seed) {
      sim::BenignKernel k(kP, sim::constant_profile(4), seed);
      Options opts;
      opts.yield = YieldKind::kToRandom;
      opts.steal = pc.steal;
      opts.victim = pc.victim;
      opts.seed = seed * 7 + 1;
      const auto m = run_work_stealer(d, k, opts);
      ASSERT_TRUE(m.completed) << pc.name << " seed=" << seed;
      ratio.add(m.bound_ratio());
      throws.add(static_cast<double>(m.steal_attempts) /
                 (static_cast<double>(kP) * tinf));
    }
    EXPECT_LE(ratio.mean(), 3.0) << pc.name;
    EXPECT_LE(throws.mean(), 12.0) << pc.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StealBoundsShard, ::testing::Values(0, 1, 2),
                         [](const auto& info) {
                           return "shard" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace abp::sched

// ---- the real runtime: split-deque rows (ISSUE PR 10, satellite 2) ----------
//
// The shapes above are simulator facts; the split deque changes WHAT is
// stealable (only the published segment), so the rooted-tree steal shape
// is re-gated against the real runtime with DequePolicy::kSplit, with the
// ABP deque as the in-run reference row. Real-thread schedules on the CI
// host are nondeterministic, so the gates are the same generous
// shape-regression constants the sim suite uses — lazy publication must
// not inflate the steal count out of the O(P·h) envelope (steals remain
// bounded by successful claims on published work, and every published
// item is claimed at most once).

namespace abp::runtime {
namespace {

TEST(RuntimeStealBounds, SplitDequeKeepsStealsOrderPTimesHeight) {
  constexpr std::size_t kWorkers = 4;
  const std::vector<std::pair<std::string, dag::Dag>> trees = {
      {"kary2d6", dag::full_kary_tree(2, 6, 2)},
      {"caterpillar", dag::caterpillar_tree(40, 3)},
      {"fjt6", dag::fork_join_tree(6)},
  };
  for (const auto& [tname, d] : trees) {
    const double h = static_cast<double>(d.critical_path_length());
    for (const DequePolicy dp : {DequePolicy::kAbp, DequePolicy::kSplit}) {
      OnlineStats steals_over_ph;
      for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        SchedulerOptions o;
        o.num_workers = kWorkers;
        o.deque = dp;
        o.seed = seed;
        // Per-node spin stretches the run across timeslices so thieves
        // actually run on the 1-CPU host (see DagEngine.StealsHappen*).
        const auto r = run_dag(d, o, 2000);
        ASSERT_TRUE(r.ok) << tname << " " << to_string(dp);
        ASSERT_EQ(r.executed_nodes, d.num_nodes())
            << tname << " " << to_string(dp);
        steals_over_ph.add(static_cast<double>(r.totals.steals) /
                           (static_cast<double>(kWorkers) * h));
      }
      EXPECT_LE(steals_over_ph.mean(), 8.0) << tname << " " << to_string(dp);
      EXPECT_LE(steals_over_ph.max(), 14.0) << tname << " " << to_string(dp);
    }
  }
}

// Steal-half through the split deque's native batch claim keeps the same
// envelope (batched claims can only reduce the successful-claim count).
TEST(RuntimeStealBounds, SplitDequeStealHalfKeepsTheEnvelope) {
  constexpr std::size_t kWorkers = 4;
  const dag::Dag d = dag::caterpillar_tree(40, 3);
  const double h = static_cast<double>(d.critical_path_length());
  OnlineStats steals_over_ph;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    SchedulerOptions o;
    o.num_workers = kWorkers;
    o.deque = DequePolicy::kSplit;
    o.steal_policy = StealPolicy::kStealHalf;
    o.seed = seed;
    const auto r = run_dag(d, o, 2000);
    ASSERT_TRUE(r.ok) << "seed=" << seed;
    ASSERT_EQ(r.executed_nodes, d.num_nodes());
    EXPECT_LE(r.totals.batch_stolen_items, r.totals.batch_steals * 8);
    steals_over_ph.add(static_cast<double>(r.totals.steals) /
                       (static_cast<double>(kWorkers) * h));
  }
  EXPECT_LE(steals_over_ph.mean(), 8.0);
  EXPECT_LE(steals_over_ph.max(), 14.0);
}

}  // namespace
}  // namespace abp::runtime
