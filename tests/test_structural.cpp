// Tests for the structural-lemma checker itself (Lemma 3 / Corollary 4):
// it must accept states the lemma allows and flag states it forbids.

#include <gtest/gtest.h>

#include "dag/builders.hpp"
#include "dag/enabling.hpp"
#include "sched/structural.hpp"
#include "sched/work_stealer.hpp"
#include "sim/kernel.hpp"

namespace abp::sched {
namespace {

// Builds a deep spawn-spine dag whose enabling tree we control by hand:
// the chain 0 -> 1 -> 2 -> ... gives us nodes of known depth.
struct Fixture {
  Fixture() : d(dag::chain(16)), tree(d) {
    tree.set_root(0);
    for (dag::NodeId n = 1; n < 16; ++n) tree.record(n - 1, n);
  }
  dag::Dag d;
  dag::EnablingTree tree;
};

TEST(StructuralChecker, EmptyDequeAlwaysValid) {
  Fixture f;
  ProcState p;
  p.assigned = 7;
  EXPECT_TRUE(check_structural_lemma(p, f.tree, f.d).empty());
  p.assigned = dag::kNoNode;
  EXPECT_TRUE(check_structural_lemma(p, f.tree, f.d).empty());
}

TEST(StructuralChecker, ProperChainAccepted) {
  // Deque bottom..top = 9, 6, 3 (parents 8, 5, 2: proper ancestors going
  // up), assigned = 12 (parent 11, descendant of all of them).
  Fixture f;
  ProcState p;
  p.assigned = 12;
  p.dq = {3, 6, 9};  // front = top, back = bottom
  EXPECT_TRUE(check_structural_lemma(p, f.tree, f.d).empty())
      << check_structural_lemma(p, f.tree, f.d);
}

TEST(StructuralChecker, EqualParentsAllowedOnlyForAssignedPair) {
  // In a chain dag every node has a distinct parent, so emulate the
  // "u1 == u0" case with a spawn dag: node s enables two children c1, c2 —
  // both have designated parent s.
  dag::Dag d;
  const auto t0 = d.new_thread();
  const auto t1 = d.new_thread();
  const auto s = d.append_to_thread(t0);
  const auto c2 = d.append_to_thread(t0);  // continuation
  const auto fin = d.append_to_thread(t0);
  const auto c1 = d.append_to_thread(t1);  // spawned child
  d.add_edge(s, c1, dag::EdgeKind::kSpawn);
  d.add_edge(c1, fin, dag::EdgeKind::kJoin);
  ASSERT_TRUE(d.is_valid()) << d.validate();

  dag::EnablingTree tree(d);
  tree.set_root(s);
  tree.record(s, c1);
  tree.record(s, c2);

  ProcState p;
  p.assigned = c1;  // parent s
  p.dq = {c2};      // parent s — equality with the assigned node's parent
  EXPECT_TRUE(check_structural_lemma(p, tree, d).empty())
      << check_structural_lemma(p, tree, d);
}

TEST(StructuralChecker, RejectsEqualParentsDeeperInDeque) {
  // Two deque nodes sharing a designated parent violate properness.
  dag::Dag d;
  const auto t0 = d.new_thread();
  const auto t1 = d.new_thread();
  const auto s = d.append_to_thread(t0);
  const auto c2 = d.append_to_thread(t0);
  const auto fin = d.append_to_thread(t0);
  const auto c1 = d.append_to_thread(t1);
  d.add_edge(s, c1, dag::EdgeKind::kSpawn);
  d.add_edge(c1, fin, dag::EdgeKind::kJoin);
  dag::EnablingTree tree(d);
  tree.set_root(s);
  tree.record(s, c1);
  tree.record(s, c2);

  ProcState p;
  p.assigned = fin;  // give the pair a v0 so the equality exemption is used up
  tree.record(c2, fin);
  p.dq = {c1, c2};  // top = c1, bottom = c2; parents equal (s) -> violation
  EXPECT_FALSE(check_structural_lemma(p, tree, d).empty());
}

TEST(StructuralChecker, RejectsWrongWeightOrder) {
  Fixture f;
  ProcState p;
  p.assigned = 12;
  p.dq = {9, 6, 3};  // top = 9 (deepest) — upside-down deque
  EXPECT_FALSE(check_structural_lemma(p, f.tree, f.d).empty());
}

TEST(StructuralChecker, RejectsNodeOutsideEnablingTree) {
  const auto d = dag::chain(4);
  dag::EnablingTree tree(d);
  tree.set_root(0);
  ProcState p;
  p.assigned = 0;
  p.dq = {2};  // node 2 never enabled
  EXPECT_FALSE(check_structural_lemma(p, tree, d).empty());
}

TEST(StructuralChecker, RejectsParentsOffTheRootPath) {
  // Build a tree with two branches; designated parents on different
  // branches cannot lie on one root-to-leaf path.
  dag::Dag d;
  const auto t0 = d.new_thread();
  const auto t1 = d.new_thread();
  const auto t2 = d.new_thread();
  const auto a = d.append_to_thread(t0);   // root
  const auto b = d.append_to_thread(t0);   // continuation branch
  const auto c = d.append_to_thread(t0);
  const auto fin = d.append_to_thread(t0);
  const auto x = d.append_to_thread(t1);   // spawned branch 1
  const auto y = d.append_to_thread(t2);   // spawned branch 2
  d.add_edge(a, x, dag::EdgeKind::kSpawn);
  d.add_edge(b, y, dag::EdgeKind::kSpawn);
  d.add_edge(x, c, dag::EdgeKind::kJoin);
  d.add_edge(y, fin, dag::EdgeKind::kJoin);
  ASSERT_TRUE(d.is_valid()) << d.validate();

  dag::EnablingTree tree(d);
  tree.set_root(a);
  tree.record(a, b);
  tree.record(a, x);
  tree.record(b, y);
  tree.record(b, c);   // c's designated parent on branch b
  tree.record(y, fin);

  ProcState p;
  p.assigned = fin;   // parent y
  p.dq = {c, y};      // y's parent = b; c's parent = b... adjust:
  // deque bottom..top = y (parent b), c (parent b): equal parents deeper in
  // the deque, plus branch mixing. Either way the checker must reject.
  EXPECT_FALSE(check_structural_lemma(p, tree, d).empty());
}

// Integration: the invariant holds over full runs in regimes heavy with
// steals (checked inside run_work_stealer when the flag is set).
TEST(StructuralChecker, HoldsUnderHeavyStealing) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto d = dag::fib_dag(12);
    sim::BenignKernel k(8, sim::periodic_profile(8, 3, 1, 3), seed);
    Options opts;
    opts.seed = seed * 7;
    opts.check_structural_lemma = true;
    const auto m = run_work_stealer(d, k, opts);
    ASSERT_TRUE(m.completed);
    EXPECT_TRUE(m.structural_violation.empty()) << m.structural_violation;
  }
}

}  // namespace
}  // namespace abp::sched
