// Tests for the relaxed-semantics linearizability checker (§3.2): hand-
// crafted histories with known verdicts, plus randomized instruction-level
// executions of the Figure 5 machine, which must always be linearizable —
// except under the tag ablation, where the checker catches the ABA
// execution as non-linearizable.

#include <gtest/gtest.h>

#include "model/linearize.hpp"
#include "support/rng.hpp"

namespace abp::model {
namespace {

constexpr std::uint8_t kNil = SharedDeque::kEmptySlot;

HistoryEvent push(std::uint8_t v, std::uint64_t s, std::uint64_t e) {
  return {Method::kPushBottom, v, kNil, s, e};
}
HistoryEvent popb(std::uint8_t r, std::uint64_t s, std::uint64_t e) {
  return {Method::kPopBottom, 0, r, s, e};
}
HistoryEvent popt(std::uint8_t r, std::uint64_t s, std::uint64_t e) {
  return {Method::kPopTop, 0, r, s, e};
}

TEST(Linearize, EmptyHistory) {
  EXPECT_TRUE(check_relaxed_linearizable({}));
}

TEST(Linearize, SerialPushPop) {
  EXPECT_TRUE(check_relaxed_linearizable({
      push(1, 1, 2),
      push(2, 3, 4),
      popb(2, 5, 6),
      popb(1, 7, 8),
      popb(kNil, 9, 10),
  }));
}

TEST(Linearize, SerialWrongLifoOrderRejected) {
  EXPECT_FALSE(check_relaxed_linearizable({
      push(1, 1, 2),
      push(2, 3, 4),
      popb(1, 5, 6),  // should have been 2
      popb(2, 7, 8),
  }));
}

TEST(Linearize, ConcurrentOverlapAllowsEitherOrder) {
  // A push and a steal overlap; the steal may see the pushed item.
  EXPECT_TRUE(check_relaxed_linearizable({
      push(1, 1, 4),
      popt(1, 2, 6),
  }));
  // ...or may linearize before it only when returning NIL, which the
  // relaxed semantics drop; a *successful* steal of a never-pushed value
  // must be rejected.
  EXPECT_FALSE(check_relaxed_linearizable({
      push(1, 1, 4),
      popt(2, 2, 6),
  }));
}

TEST(Linearize, RealTimeOrderRespected) {
  // The steal completes before the push starts: it cannot return the item.
  EXPECT_FALSE(check_relaxed_linearizable({
      popt(1, 1, 2),
      push(1, 3, 4),
  }));
}

TEST(Linearize, NilPopTopsCarryNoObligation) {
  // A popTop returning NIL while the deque is non-empty is fine under the
  // relaxed semantics (it lost a race) — it is dropped from the history.
  EXPECT_TRUE(check_relaxed_linearizable({
      push(1, 1, 2),
      popt(kNil, 3, 4),
      popb(1, 5, 6),
  }));
}

TEST(Linearize, NilPopBottomRequiresEmptyPoint) {
  // popBottom's NIL must linearize at an empty deque.
  EXPECT_TRUE(check_relaxed_linearizable({
      popb(kNil, 1, 2),
      push(1, 3, 4),
      popb(1, 5, 6),
  }));
  EXPECT_FALSE(check_relaxed_linearizable({
      push(1, 1, 2),
      popb(kNil, 3, 4),  // deque cannot be empty here...
      popb(1, 5, 6),     // ...because 1 is popped only afterwards
  }));
}

TEST(Linearize, DuplicateDeliveryRejected) {
  EXPECT_FALSE(check_relaxed_linearizable({
      push(1, 1, 2),
      popt(1, 3, 4),
      popb(1, 5, 6),
  }));
}

TEST(Linearize, TwoThievesSplitFifo) {
  EXPECT_TRUE(check_relaxed_linearizable({
      push(1, 1, 2),
      push(2, 3, 4),
      popt(1, 5, 9),  // overlapping steals may land in either order
      popt(2, 6, 8),
  }));
}

// ---- randomized executions ---------------------------------------------------

std::vector<Script> random_scripts(std::uint64_t seed) {
  Xoshiro256 rng(seed);
  Script owner;
  std::uint8_t value = 1;
  int live = 0;
  const int ops = 4 + static_cast<int>(rng.below(3));
  for (int i = 0; i < ops; ++i) {
    if (value < 6 && (live == 0 || rng.chance(0.6)) &&
        live + 1 < static_cast<int>(SharedDeque::kCapacity)) {
      owner.push_back(Op{Method::kPushBottom, value++});
      ++live;
    } else {
      owner.push_back(Op{Method::kPopBottom, 0});
      if (live > 0) --live;
    }
  }
  std::vector<Script> scripts{owner};
  const std::size_t thieves = 1 + rng.below(2);
  for (std::size_t t = 0; t < thieves; ++t) {
    Script thief;
    for (std::uint64_t i = 0; i <= rng.below(3); ++i)
      thief.push_back(Op{Method::kPopTop, 0});
    scripts.push_back(std::move(thief));
  }
  return scripts;
}

TEST(Linearize, RandomAbpExecutionsAlwaysLinearizable) {
  for (std::uint64_t seed = 1; seed <= 300; ++seed) {
    EXPECT_TRUE(random_execution_is_linearizable(random_scripts(seed),
                                                 seed * 17))
        << "seed " << seed;
  }
}

TEST(Linearize, TagAblationProducesNonLinearizableExecution) {
  // Under some interleaving, the tag-less deque delivers a node twice
  // (ABA); the checker must flag at least one random execution. The
  // specific script mirrors §3.3's scenario.
  const std::vector<Script> scripts = {
      {Op{Method::kPushBottom, 1}, Op{Method::kPopBottom, 0},
       Op{Method::kPushBottom, 2}, Op{Method::kPopBottom, 0}},
      {Op{Method::kPopTop, 0}},
  };
  bool found_violation = false;
  for (std::uint64_t seed = 1; seed <= 2000 && !found_violation; ++seed) {
    found_violation = !random_execution_is_linearizable(
        scripts, seed, /*disable_tag=*/true);
  }
  EXPECT_TRUE(found_violation);
  // Sanity: with the tag enabled the same scripts are always fine.
  for (std::uint64_t seed = 1; seed <= 200; ++seed)
    EXPECT_TRUE(random_execution_is_linearizable(scripts, seed, false));
}

}  // namespace
}  // namespace abp::model
