// Bound-shape tests for Theorems 9-12: the measured execution length of
// the simulated work stealer stays within a small constant multiple of
// T1/PA + Tinf*P/PA across kernels, yields, and dag families, and the
// steal-attempt (throw) count stays O(P*Tinf + P*lg(1/eps)) in the
// dedicated case. Constants are generous (the theorems hide constants) but
// tight enough that a broken scheduler fails.

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <memory>
#include <string>

#include "dag/builders.hpp"
#include "sched/work_stealer.hpp"
#include "sim/kernel.hpp"
#include "support/stats.hpp"

namespace abp::sched {
namespace {

using sim::YieldKind;

// Upper limit on length / (T1/PA + Tinf*P/PA) we tolerate. The paper
// reports the empirical constant is ~1; we allow 3 for small dags where
// additive effects bite.
constexpr double kMaxBoundRatio = 3.0;

RunMetrics run(const dag::Dag& d, sim::Kernel& k, YieldKind y,
               std::uint64_t seed) {
  Options opts;
  opts.yield = y;
  opts.seed = seed;
  return run_work_stealer(d, k, opts);
}

TEST(Theorem9, DedicatedBoundAcrossP) {
  const auto d = dag::fib_dag(16);
  for (std::size_t p : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    sim::DedicatedKernel k(p);
    const auto m = run(d, k, YieldKind::kNone, 7 * p + 1);
    ASSERT_TRUE(m.completed);
    EXPECT_LE(m.bound_ratio(), kMaxBoundRatio) << "P=" << p;
    // PA == P in a dedicated environment.
    EXPECT_DOUBLE_EQ(m.processor_average, static_cast<double>(p));
  }
}

TEST(Theorem9, LinearSpeedupWhenPMuchBelowParallelism) {
  // fib(18): parallelism is in the thousands; for P <= 16 we expect
  // T approx T1/P within a factor ~1.6.
  const auto d = dag::fib_dag(18);
  const double t1 = static_cast<double>(d.work());
  for (std::size_t p : {2u, 4u, 8u, 16u}) {
    sim::DedicatedKernel k(p);
    const auto m = run(d, k, YieldKind::kNone, p);
    ASSERT_TRUE(m.completed);
    const double speedup = t1 / static_cast<double>(m.length);
    EXPECT_GE(speedup, 0.6 * static_cast<double>(p)) << "P=" << p;
    EXPECT_LE(speedup, static_cast<double>(p) + 1e-9) << "P=" << p;
  }
}

TEST(Theorem9, ThrowsAreOrderPTimesTinf) {
  // E[throws] = O(P * Tinf) in the dedicated case (proof of Theorem 9).
  const auto d = dag::fib_dag(15);
  const double tinf = static_cast<double>(d.critical_path_length());
  for (std::size_t p : {2u, 4u, 8u, 16u}) {
    OnlineStats ratio;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      sim::DedicatedKernel k(p);
      const auto m = run(d, k, YieldKind::kNone, seed);
      ASSERT_TRUE(m.completed);
      ratio.add(static_cast<double>(m.steal_attempts) /
                (static_cast<double>(p) * tinf));
    }
    EXPECT_LE(ratio.mean(), 12.0) << "P=" << p;
  }
}

TEST(Theorem10, BenignAdversaryNoYieldNeeded) {
  const auto d = dag::fib_dag(15);
  const std::vector<std::pair<std::string, sim::UtilizationProfile>>
      profiles = {
          {"const2", sim::constant_profile(2)},
          {"const8", sim::constant_profile(8)},
          {"bursty", sim::bursty_profile(8, 10, 50)},
          {"periodic", sim::periodic_profile(8, 5, 1, 10)},
          {"ramp", sim::ramp_down_profile(8, 300)},
      };
  for (const auto& [name, profile] : profiles) {
    sim::BenignKernel k(8, profile, 99);
    const auto m = run(d, k, YieldKind::kNone, 41);
    ASSERT_TRUE(m.completed) << name;
    EXPECT_LE(m.bound_ratio(), kMaxBoundRatio) << name;
  }
}

TEST(Theorem11, ObliviousAdversaryWithYieldToRandom) {
  const auto d = dag::fib_dag(15);
  for (std::uint64_t kernel_seed : {1u, 2u, 3u}) {
    sim::ObliviousKernel k(8, sim::periodic_profile(8, 7, 2, 13),
                           kernel_seed);
    const auto m = run(d, k, YieldKind::kToRandom, kernel_seed * 5);
    ASSERT_TRUE(m.completed);
    EXPECT_LE(m.bound_ratio(), kMaxBoundRatio) << "seed=" << kernel_seed;
  }
}

TEST(Theorem12, AdaptiveStarverWithYieldToAll) {
  const auto d = dag::fib_dag(13);
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    sim::StarveBusyKernel k(8, sim::constant_profile(4), seed);
    const auto m = run(d, k, YieldKind::kToAll, seed * 3);
    ASSERT_TRUE(m.completed) << "seed=" << seed;
    EXPECT_LE(m.bound_ratio(), kMaxBoundRatio) << "seed=" << seed;
  }
}

TEST(Theorem12, StarverDefeatsNoYield) {
  // Ablation: the same adversary with yields disabled starves the work
  // holder; the run must not finish within a budget that is orders of
  // magnitude above the yieldToAll time.
  const auto d = dag::fib_dag(13);
  sim::StarveBusyKernel k(8, sim::constant_profile(4), 1);
  Options opts;
  opts.yield = YieldKind::kNone;
  opts.max_rounds = 300000;
  const auto m = run_work_stealer(d, k, opts);
  EXPECT_FALSE(m.completed);
}

TEST(Theorem12, StarverAlsoDefeatsYieldToRandomEventually) {
  // yieldToRandom only forces one random process to run; an adaptive
  // starver can still keep the single work-holder off the machine for a
  // long time. We check it is at least an order of magnitude slower than
  // yieldToAll on the same workload (it may or may not finish).
  const auto d = dag::fib_dag(11);
  sim::StarveBusyKernel k_all(8, sim::constant_profile(4), 2);
  const auto m_all = run(d, k_all, YieldKind::kToAll, 9);
  ASSERT_TRUE(m_all.completed);

  sim::StarveBusyKernel k_rand(8, sim::constant_profile(4), 2);
  Options opts;
  opts.yield = YieldKind::kToRandom;
  opts.seed = 9;
  opts.max_rounds = m_all.length * 10;
  const auto m_rand = run_work_stealer(d, k_rand, opts);
  if (m_rand.completed) {
    EXPECT_GT(m_rand.length, m_all.length);
  } else {
    SUCCEED();  // starved within 10x the yieldToAll budget
  }
}

// The bound holds with PA far below P (heavy multiprogramming): this is
// the regime the paper targets.
TEST(Multiprogrammed, BoundHoldsAtLowUtilization) {
  const auto d = dag::fib_dag(15);
  for (std::size_t p : {8u, 16u, 32u}) {
    sim::BenignKernel k(p, sim::constant_profile(2), 5);
    const auto m = run(d, k, YieldKind::kToRandom, p);
    ASSERT_TRUE(m.completed);
    EXPECT_NEAR(m.processor_average, 2.0, 0.2);
    EXPECT_LE(m.bound_ratio(), kMaxBoundRatio) << "P=" << p;
  }
}

TEST(Theorem1Profile, WorkStealerMeetsBoundUnderConstruction) {
  // Drive the on-line work stealer through the Theorem 1 adversarial
  // kernel schedule (starvation phase, burst phase, single-processor
  // tail): the measured length stays within the usual constant of
  // T1/PA + Tinf*P/PA even on the schedule built to force the lower
  // bound.
  const auto d = dag::fib_dag(13);
  const std::size_t p = 8;
  for (std::uint64_t kk : {0u, 2u, 5u}) {
    sim::BenignKernel k(
        p, sim::theorem1_profile(p, kk, d.critical_path_length()), 7);
    const auto m = run(d, k, YieldKind::kNone, 3 + kk);
    ASSERT_TRUE(m.completed) << "k=" << kk;
    EXPECT_LE(m.bound_ratio(), kMaxBoundRatio) << "k=" << kk;
    // And it can never beat the Theorem 1 lower bound.
    const double lb = std::max(
        m.t1 / m.processor_average,
        m.tinf * m.p / m.processor_average);
    EXPECT_GE(double(m.length) + 1e-6, lb) << "k=" << kk;
  }
}

// Across dag families the ratio stays bounded (dedicated).
TEST(BoundShape, AcrossDagFamilies) {
  const std::vector<std::pair<std::string, std::function<dag::Dag()>>>
      dags = {
          {"chain", [] { return dag::chain(600); }},
          {"fjt8", [] { return dag::fork_join_tree(8, 4); }},
          {"wide", [] { return dag::wide(100, 10); }},
          {"grid", [] { return dag::grid_wavefront(40, 40); }},
          {"sp", [] { return dag::random_series_parallel(21, 4000); }},
          {"imbalanced", [] { return dag::imbalanced_tree(12, 3); }},
      };
  for (const auto& [name, build] : dags) {
    const auto d = build();
    sim::DedicatedKernel k(8);
    const auto m = run(d, k, YieldKind::kNone, 77);
    ASSERT_TRUE(m.completed) << name;
    EXPECT_LE(m.bound_ratio(), kMaxBoundRatio) << name;
  }
}

// High-probability flavour: across many seeds the worst-case ratio stays
// within the Theorem 9 tail bound's reach.
TEST(BoundShape, TailAcrossSeeds) {
  const auto d = dag::fib_dag(13);
  sim::DedicatedKernel k(8);
  double worst = 0.0;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const auto m = run(d, k, YieldKind::kNone, seed);
    ASSERT_TRUE(m.completed);
    worst = std::max(worst, m.bound_ratio());
  }
  EXPECT_LE(worst, kMaxBoundRatio * 1.5);
}

}  // namespace
}  // namespace abp::sched
