// Differential fuzzing of every deque implementation under injected
// adversarial schedules (ISSUE satellite 1), plus the harness's own
// sharpness check: the tag-ablated ABP deque — the §3.3 ABA bug compiled
// into real std::atomic code — must FAIL the differential invariants, with
// a printed seed that reproduces the catch.
//
// These tests only exist in -DABP_CHAOS=ON builds (see tests/CMakeLists);
// in other configurations the injection points compile to nothing and the
// fuzz would exercise only the OS's benign schedules.

#include <gtest/gtest.h>

#include <cstdint>
#include <iostream>
#include <memory>
#include <type_traits>

#include "chaos/chaos.hpp"
#include "chaos/kernel_replay.hpp"
#include "chaos/policy.hpp"
#include "chaos_driver.hpp"
#include "deque/abp_deque.hpp"
#include "deque/abp_growable_deque.hpp"
#include "deque/chase_lev_deque.hpp"
#include "deque/mutex_deque.hpp"
#include "deque/spinlock_deque.hpp"
#include "deque/split_deque.hpp"
#include "sim/kernel.hpp"
#include "sim/profile.hpp"

namespace abp::chaostest {
namespace {

static_assert(ABP_CHAOS_ENABLED,
              "the chaos suite requires -DABP_CHAOS=ON (see CMakeLists)");

// The differential set: the three lock-free deques under test plus the
// lock-based reference they are checked against (same config, same policy,
// same seed, same invariants).
template <typename D>
struct DequeName;
template <>
struct DequeName<deque::AbpDeque<std::uint32_t>> {
  static constexpr const char* value = "abp";
};
template <>
struct DequeName<deque::AbpGrowableDeque<std::uint32_t>> {
  static constexpr const char* value = "abp-growable";
};
template <>
struct DequeName<deque::ChaseLevDeque<std::uint32_t>> {
  static constexpr const char* value = "chase-lev";
};
template <>
struct DequeName<deque::SplitDeque<std::uint32_t>> {
  static constexpr const char* value = "split";
};
template <>
struct DequeName<deque::TransferAblatedSplitDeque<std::uint32_t>> {
  static constexpr const char* value = "split-transfer-ablated";
};
template <>
struct DequeName<deque::MutexDeque<std::uint32_t>> {
  static constexpr const char* value = "mutex";
};
template <>
struct DequeName<deque::SpinlockDeque<std::uint32_t>> {
  static constexpr const char* value = "spinlock";
};

template <typename D>
class ChaosDifferential : public ::testing::Test {};

using DequeTypes =
    ::testing::Types<deque::AbpDeque<std::uint32_t>,
                     deque::AbpGrowableDeque<std::uint32_t>,
                     deque::ChaseLevDeque<std::uint32_t>,
                     deque::SplitDeque<std::uint32_t>,
                     deque::MutexDeque<std::uint32_t>,
                     deque::SpinlockDeque<std::uint32_t>>;
TYPED_TEST_SUITE(ChaosDifferential, DequeTypes);

// 10k seeded rounds under the benign adversary (uniform-random stalls).
TYPED_TEST(ChaosDifferential, RandomPolicyTenThousandRounds) {
  DriverConfig cfg;
  cfg.rounds = 10'000 / kSanitizerRoundScale;
  cfg.seed = 0xc4a05u;
  auto policy = std::make_shared<chaos::RandomPolicy>();
  const Verdict v = run_differential<TypeParam>(
      DequeName<TypeParam>::value, cfg, std::move(policy));
  EXPECT_TRUE(v.ok) << v.repro();
  EXPECT_EQ(v.owner_pops + v.thief_steals,
            v.rounds_run * cfg.items_per_round)
      << v.repro();
}

// 10k rounds under the adaptive adversary: every thief is stalled in the
// stalled-thief-mid-CAS window (the exact schedule the age tag defends
// against, §3.3). A correct deque shrugs this off; the ablation below
// does not.
TYPED_TEST(ChaosDifferential, TargetedPreCasTenThousandRounds) {
  DriverConfig cfg;
  cfg.rounds = 10'000 / kSanitizerRoundScale;
  cfg.seed = 0x7a46u;
  cfg.p_owner_drain = 0.5;  // maximize drain-and-refill cycles mid-stall
  chaos::TargetedPolicy::Config pcfg;
  pcfg.point = "deque.poptop.pre_cas";
  pcfg.action = chaos::Action::kYield;
  pcfg.repeat = 16;
  auto policy = std::make_shared<chaos::TargetedPolicy>(pcfg);
  const Verdict v = run_differential<TypeParam>(
      DequeName<TypeParam>::value, cfg, std::move(policy));
  EXPECT_TRUE(v.ok) << v.repro();
  EXPECT_EQ(v.owner_pops + v.thief_steals,
            v.rounds_run * cfg.items_per_round)
      << v.repro();
}

// Schedules captured from a sim kernel adversary replayed against the real
// runtime: an ObliviousKernel that commits to denying processors up front,
// driven through KernelReplayPolicy.
TYPED_TEST(ChaosDifferential, ObliviousKernelReplay) {
  DriverConfig cfg;
  cfg.rounds = 2'000 / kSanitizerRoundScale;
  // The pure test-and-set spinlock never yields its spin, so every forced
  // deschedule of a lock holder costs the waiters a full OS quantum on a
  // 1-CPU host — scale that pathology (it IS §1's lock-holder preemption,
  // measured by E10; here it only needs to not time out).
  if (std::is_same_v<TypeParam, deque::SpinlockDeque<std::uint32_t>>)
    cfg.rounds = 200 / kSanitizerRoundScale + 10;
  cfg.seed = 0x0b11u;
  // 3 procs (owner + 2 thieves), 1-2 scheduled per kernel round.
  sim::ObliviousKernel kernel(3, sim::periodic_profile(2, 3, 1, 2), 99);
  auto policy = chaos::make_kernel_replay(kernel, /*rounds=*/128,
                                          /*hits_per_round=*/64);
  const Verdict v = run_differential<TypeParam>(
      DequeName<TypeParam>::value, cfg, policy);
  EXPECT_TRUE(v.ok) << v.repro();
  EXPECT_GT(policy->rounds_replayed(), 0u);
}

// Completed histories from the real deque satisfy the paper's relaxed
// linearizability specification (§3.2), as judged by the same checker the
// instruction-level model uses.
TYPED_TEST(ChaosDifferential, HistoriesAreRelaxedLinearizable) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    HistoryConfig cfg;
    cfg.seed = seed;
    chaos::RandomPolicy::Config pcfg;
    pcfg.p_inject = 0.2;  // short histories: inject aggressively
    auto policy = std::make_shared<chaos::RandomPolicy>(pcfg);
    EXPECT_TRUE(history_is_relaxed_linearizable<TypeParam>(cfg, policy))
        << "non-linearizable history: deque=" << DequeName<TypeParam>::value
        << " seed=" << seed;
  }
}

// ---- harness sharpness -----------------------------------------------------

// The acceptance check for the whole subsystem: compile the §3.3 ABA bug
// into the real deque (popBottom's empty-reset keeps the old tag) and the
// harness MUST catch it — a thief parked in the pre-CAS window by the
// targeted policy survives an owner drain-and-refill, its stale CAS
// succeeds against the recycled (tag, top) pair, and the differential
// check reports the duplicate (value consumed twice) and the lost item
// (top advanced past an unconsumed slot) with a reproducing seed.
TEST(ChaosTagAblation, DifferentialCheckCatchesAba) {
  DriverConfig cfg;
  cfg.rounds = 10'000;  // bound, not budget: the catch lands in round ~1
  cfg.seed = 0xaba0u;
  cfg.p_owner_drain = 0.5;
  chaos::TargetedPolicy::Config pcfg;
  pcfg.point = "deque.poptop.pre_cas";
  pcfg.action = chaos::Action::kYield;
  pcfg.repeat = 32;  // long enough for a full drain-and-refill mid-stall
  const Verdict bad = run_differential<deque::TagAblatedAbpDeque<std::uint32_t>>(
      "abp-untagged", cfg, std::make_shared<chaos::TargetedPolicy>(pcfg));
  ASSERT_FALSE(bad.ok)
      << "the tag ablation survived the adversarial schedule — the harness "
         "lost its sharpness: "
      << bad.repro();
  EXPECT_GT(bad.duplicates + bad.lost + bad.stale, 0u);
  EXPECT_GT(bad.first_bad_round, 0u);
  // The printed line is the one-line repro the ISSUE asks for.
  std::cout << "[chaos] " << bad.repro() << "\n";

  // Control: the tagged deque under the identical config, policy and seed
  // is clean — the failure above is the missing tag, not the harness.
  const Verdict good = run_differential<deque::AbpDeque<std::uint32_t>>(
      "abp", cfg, std::make_shared<chaos::TargetedPolicy>(pcfg));
  EXPECT_TRUE(good.ok) << good.repro();
}

// A caught verdict must reproduce from its printed seed alone (the
// EXPERIMENTS.md §chaos recipe): same deque, policy, config, seed — same
// class of failure.
TEST(ChaosTagAblation, CaughtVerdictReproducesFromSeed) {
  chaos::TargetedPolicy::Config pcfg;
  pcfg.point = "deque.poptop.pre_cas";
  pcfg.action = chaos::Action::kYield;
  pcfg.repeat = 32;

  DriverConfig cfg;
  cfg.rounds = 10'000;
  cfg.p_owner_drain = 0.5;
  cfg.seed = 0xaba1u;
  const Verdict first = run_differential<
      deque::TagAblatedAbpDeque<std::uint32_t>>(
      "abp-untagged", cfg, std::make_shared<chaos::TargetedPolicy>(pcfg));
  ASSERT_FALSE(first.ok) << first.repro();

  // Replay with exactly the values the repro line prints.
  DriverConfig replay = first.config;
  const Verdict second = run_differential<
      deque::TagAblatedAbpDeque<std::uint32_t>>(
      "abp-untagged", replay, std::make_shared<chaos::TargetedPolicy>(pcfg));
  EXPECT_FALSE(second.ok) << "printed seed did not reproduce: "
                          << second.repro();
}

// ---- split deque: transfer-publish window ----------------------------------

// The split deque's dangerous window is the transfer publish racing thief
// claims over a NON-EMPTY public segment; hunger-gated transfers never
// open it (hunger implies a thief just saw the public side empty, and
// only a transfer repopulates it), so these runs mix in eager transfers
// and park the owner inside the window with the targeted policy. The
// correct deque — whose publish is a tag-bumping release CAS — must
// shrug this off for 10k rounds.
TEST(ChaosTransferAblation, TargetedTransferWindowCleanOnCorrectDeque) {
  DriverConfig cfg;
  cfg.rounds = 10'000 / kSanitizerRoundScale;
  cfg.seed = 0x5b117u;
  cfg.p_owner_drain = 0.5;
  cfg.p_owner_transfer = 0.5;
  chaos::TargetedPolicy::Config pcfg;
  pcfg.point = "deque.split.transfer.pre_publish";
  pcfg.action = chaos::Action::kYield;
  pcfg.repeat = 32;
  const Verdict v = run_differential<deque::SplitDeque<std::uint32_t>>(
      "split", cfg, std::make_shared<chaos::TargetedPolicy>(pcfg));
  EXPECT_TRUE(v.ok) << v.repro();
  EXPECT_EQ(v.owner_pops + v.thief_steals,
            v.rounds_run * cfg.items_per_round)
      << v.repro();
}

// Harness sharpness for the split deque (ISSUE satellite 1): compile the
// model's split_blind_publish ablation into real std::atomic code — the
// transfer publishes with a blind relaxed store instead of the release
// CAS — and the fuzz MUST catch it: a thief claim that lands while the
// owner is parked between its word read and the blind store is clobbered
// (the top advance undone), so the claimed item is served again, and the
// differential check reports the duplicate with a reproducing seed.
TEST(ChaosTransferAblation, DifferentialCheckCatchesBlindPublish) {
  DriverConfig cfg;
  cfg.rounds = 10'000;  // bound, not budget: the catch lands in round ~1
  cfg.seed = 0x5b11au;
  cfg.p_owner_drain = 0.5;
  cfg.p_owner_transfer = 0.5;
  chaos::TargetedPolicy::Config pcfg;
  pcfg.point = "deque.split.transfer.pre_publish";
  pcfg.action = chaos::Action::kYield;
  pcfg.repeat = 32;
  const Verdict bad =
      run_differential<deque::TransferAblatedSplitDeque<std::uint32_t>>(
          "split-transfer-ablated", cfg,
          std::make_shared<chaos::TargetedPolicy>(pcfg));
  ASSERT_FALSE(bad.ok)
      << "the transfer ablation survived the adversarial schedule — the "
         "harness lost its sharpness: "
      << bad.repro();
  EXPECT_GT(bad.duplicates + bad.lost + bad.stale, 0u);
  EXPECT_GT(bad.first_bad_round, 0u);
  // The printed line is the one-line repro the ISSUE asks for.
  std::cout << "[chaos] " << bad.repro() << "\n";

  // Replay with exactly the values the repro line prints: same class of
  // failure from the seed alone.
  const Verdict again =
      run_differential<deque::TransferAblatedSplitDeque<std::uint32_t>>(
          "split-transfer-ablated", bad.config,
          std::make_shared<chaos::TargetedPolicy>(pcfg));
  EXPECT_FALSE(again.ok) << "printed seed did not reproduce: "
                         << again.repro();

  // Control: the release-CAS-publishing deque under the identical config,
  // policy and seed is clean — the failure above is the blind store, not
  // the harness or the protocol.
  const Verdict good = run_differential<deque::SplitDeque<std::uint32_t>>(
      "split", cfg, std::make_shared<chaos::TargetedPolicy>(pcfg));
  EXPECT_TRUE(good.ok) << good.repro();
}

// ---- batched stealing ------------------------------------------------------

// Differential check with steal-half batches in the thief op mix: the
// batch-armed growable deque against the two lock-based references running
// the identical config, policy and seed. Every item of a claimed batch
// must obey exactly-once + conservation, same as single steals.
TEST(ChaosBatchSteal, DifferentialCleanAcrossImplementations) {
  DriverConfig cfg;
  cfg.seed = 0xba7c1u;
  cfg.p_batch_steal = 0.5;
  auto run = [&](auto tag, const char* name, std::size_t rounds) {
    using D = typename decltype(tag)::type;
    DriverConfig c = cfg;
    c.rounds = rounds / kSanitizerRoundScale + 10;
    const Verdict v = run_differential<D>(
        name, c, std::make_shared<chaos::RandomPolicy>());
    EXPECT_TRUE(v.ok) << v.repro();
    EXPECT_EQ(v.owner_pops + v.thief_steals,
              v.rounds_run * c.items_per_round)
        << v.repro();
    return v;
  };
  const Verdict growable = run(
      std::type_identity<deque::AbpGrowableDeque<std::uint32_t>>{},
      "abp-growable-batch", 10'000);
  // The lock-based references serialize every batch against the owner, so
  // on the 1-CPU host each blocked acquisition costs an OS quantum — run
  // them long enough to differentiate, not to soak (the growable deque is
  // the subject under test; these are the trivially-correct references).
  run(std::type_identity<deque::MutexDeque<std::uint32_t>>{}, "mutex",
      2'000);
  run(std::type_identity<deque::SpinlockDeque<std::uint32_t>>{}, "spinlock",
      400);
  // The split deque serves the same batch mix natively and with NO
  // owner-defended window (its reclaim and the batch claim share one word
  // CAS); eager transfers keep the public segment populated so batches
  // wider than one item actually form.
  {
    DriverConfig c = cfg;
    c.rounds = 10'000 / kSanitizerRoundScale + 10;
    c.p_owner_transfer = 0.5;
    const Verdict split = run_differential<deque::SplitDeque<std::uint32_t>>(
        "split-batch", c, std::make_shared<chaos::RandomPolicy>());
    EXPECT_TRUE(split.ok) << split.repro();
    EXPECT_EQ(split.owner_pops + split.thief_steals,
              split.rounds_run * c.items_per_round)
        << split.repro();
    EXPECT_GT(split.batch_steals, 0u) << split.repro();
    EXPECT_GE(split.batch_items, split.batch_steals);
  }
  // The batch path must actually run for the differential to mean anything
  // (p_owner_yield keeps the deque non-empty under the thieves' noses even
  // on the 1-CPU CI host).
  EXPECT_GT(growable.batch_steals, 0u) << growable.repro();
  EXPECT_GE(growable.batch_items, growable.batch_steals);
}

// The adversary parks every batch thief between its claim reads and its
// CAS — the exact window where the owner's defended popBottom (tag bump
// within kMaxStealBatch of top) is the only thing preventing a stale batch
// claim from double-delivering. A correct deque shrugs it off.
TEST(ChaosBatchSteal, TargetedBatchPreCasClean) {
  DriverConfig cfg;
  cfg.rounds = 10'000 / kSanitizerRoundScale;
  cfg.seed = 0xba7c2u;
  cfg.p_batch_steal = 0.5;
  cfg.p_owner_drain = 0.5;  // maximize drain-and-refill cycles mid-stall
  chaos::TargetedPolicy::Config pcfg;
  pcfg.point = "deque.poptopbatch.pre_cas";
  pcfg.action = chaos::Action::kYield;
  pcfg.repeat = 16;
  const Verdict v =
      run_differential<deque::AbpGrowableDeque<std::uint32_t>>(
          "abp-growable-batch", cfg,
          std::make_shared<chaos::TargetedPolicy>(pcfg));
  EXPECT_TRUE(v.ok) << v.repro();
  EXPECT_EQ(v.owner_pops + v.thief_steals,
            v.rounds_run * cfg.items_per_round)
      << v.repro();
}

// Harness sharpness for batches (ISSUE satellite 2): compile the seeded
// batch bug into the real deque — pop_top_batch claims its items but
// CAS-publishes top+1 (the model's `batch_publish_short` ablation in real
// std::atomic code) — and the differential check MUST catch it: every item
// past the first in a batch stays stealable, so it is delivered twice.
TEST(ChaosBatchAblation, DifferentialCheckCatchesWrongTopPublish) {
  DriverConfig cfg;
  cfg.rounds = 10'000;  // bound, not budget: the catch lands in round ~1
  cfg.seed = 0xba7aba0u;
  cfg.p_batch_steal = 0.5;
  const Verdict bad =
      run_differential<deque::BatchAblatedGrowableDeque<std::uint32_t>>(
          "abp-growable-batch-ablated", cfg,
          std::make_shared<chaos::RandomPolicy>());
  ASSERT_FALSE(bad.ok)
      << "the batch-publish ablation survived the fuzz — the harness "
         "lost its sharpness: "
      << bad.repro();
  EXPECT_GT(bad.duplicates, 0u) << bad.repro();
  EXPECT_GT(bad.first_bad_round, 0u);
  // The printed line is the one-line repro the ISSUE asks for.
  std::cout << "[chaos] " << bad.repro() << "\n";

  // Replay with exactly the values the repro line prints: same class of
  // failure from the seed alone.
  const Verdict again =
      run_differential<deque::BatchAblatedGrowableDeque<std::uint32_t>>(
          "abp-growable-batch-ablated", bad.config,
          std::make_shared<chaos::RandomPolicy>());
  EXPECT_FALSE(again.ok) << "printed seed did not reproduce: "
                         << again.repro();

  // Control: the un-ablated deque under the identical config, policy and
  // seed is clean — the failure above is the wrong-top publish, not the
  // harness or the batch protocol.
  const Verdict good =
      run_differential<deque::AbpGrowableDeque<std::uint32_t>>(
          "abp-growable-batch", cfg,
          std::make_shared<chaos::RandomPolicy>());
  EXPECT_TRUE(good.ok) << good.repro();
}

// The chaos scope disarms on destruction: the same differential config
// runs clean (and injection counters stay frozen) once no scope is
// installed.
TEST(ChaosEngine, DisarmsAfterScope) {
  {
    chaos::ChaosScope scope(std::make_shared<chaos::RandomPolicy>(), 7);
    EXPECT_TRUE(chaos::armed());
  }
  EXPECT_FALSE(chaos::armed());
  const std::uint64_t frozen =
      chaos::hits_at("deque.poptop.pre_cas");
  deque::AbpDeque<std::uint32_t> dq(8);
  dq.push_bottom(1);
  (void)dq.pop_top();
  EXPECT_EQ(chaos::hits_at("deque.poptop.pre_cas"), frozen);
}

// Injection-point bookkeeping: the differential workload crosses every
// deque-level point, and the targeted policy injects only at its target.
TEST(ChaosEngine, SnapshotCountsTargetedInjections) {
  DriverConfig cfg;
  cfg.rounds = 200;
  cfg.seed = 42;
  chaos::TargetedPolicy::Config pcfg;
  pcfg.point = "deque.poptop.pre_cas";
  pcfg.repeat = 4;
  const Verdict v = run_differential<deque::AbpDeque<std::uint32_t>>(
      "abp", cfg, std::make_shared<chaos::TargetedPolicy>(pcfg));
  EXPECT_TRUE(v.ok) << v.repro();
  EXPECT_GT(chaos::hits_at("deque.pushbottom.pre_bot_store"), 0u);
  EXPECT_GT(chaos::hits_at("deque.poptop.pre_read"), 0u);
  EXPECT_GT(chaos::hits_at("deque.popbottom.post_bot_store"), 0u);
  EXPECT_GT(chaos::injections_at("deque.poptop.pre_cas"), 0u);
  EXPECT_EQ(chaos::injections_at("deque.poptop.pre_read"), 0u);
  EXPECT_EQ(chaos::injections_at("deque.pushbottom.pre_item_store"), 0u);
}

}  // namespace
}  // namespace abp::chaostest
