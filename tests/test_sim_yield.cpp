// Tests for the yield-constraint ledger (§4.4): yieldToRandom and
// yieldToAll semantics, including the paper's replacement rule and the
// "strictly after the yield round" requirement.

#include <gtest/gtest.h>

#include <algorithm>

#include "sim/yield.hpp"

namespace abp::sim {
namespace {

bool contains(const std::vector<ProcId>& v, ProcId p) {
  return std::find(v.begin(), v.end(), p) != v.end();
}

TEST(YieldNames, Stable) {
  EXPECT_STREQ(to_string(YieldKind::kNone), "none");
  EXPECT_STREQ(to_string(YieldKind::kToRandom), "yieldToRandom");
  EXPECT_STREQ(to_string(YieldKind::kToAll), "yieldToAll");
}

TEST(YieldLedger, NoneNeverConstrains) {
  YieldLedger ledger(4, YieldKind::kNone);
  ledger.on_yield(0, 1, 1);
  EXPECT_FALSE(ledger.blocked(0));
  const auto s = ledger.enforce({0, 1, 2}, 2);
  EXPECT_EQ(s, (std::vector<ProcId>{0, 1, 2}));
}

TEST(YieldLedger, EnforceDeduplicates) {
  YieldLedger ledger(4, YieldKind::kNone);
  const auto s = ledger.enforce({2, 2, 1, 2}, 1);
  EXPECT_EQ(s, (std::vector<ProcId>{2, 1}));
}

TEST(YieldToRandom, BlocksUntilTargetScheduled) {
  YieldLedger ledger(4, YieldKind::kToRandom);
  ledger.on_yield(0, /*now=*/5, /*target=*/3);
  EXPECT_TRUE(ledger.blocked(0));

  // Round 6: kernel proposes {0, 1}; 0 is blocked on 3, so 3 replaces 0.
  const auto s = ledger.enforce({0, 1}, 6);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_TRUE(contains(s, 1));
  EXPECT_TRUE(contains(s, 3));
  EXPECT_FALSE(contains(s, 0));
  ledger.note_scheduled(s, 6);

  // Round 7: 3 ran at round 6 > 5, so 0 is free again.
  EXPECT_FALSE(ledger.blocked(0));
  const auto s2 = ledger.enforce({0, 1}, 7);
  EXPECT_TRUE(contains(s2, 0));
}

TEST(YieldToRandom, SameRoundSatisfaction) {
  // The constraint allows j' == j: if the kernel schedules p and its target
  // together, p may run.
  YieldLedger ledger(4, YieldKind::kToRandom);
  ledger.on_yield(0, 5, 3);
  const auto s = ledger.enforce({0, 3}, 6);
  EXPECT_TRUE(contains(s, 0));
  EXPECT_TRUE(contains(s, 3));
}

TEST(YieldToRandom, TargetRunAtYieldRoundDoesNotCount) {
  // q scheduled at the yield round itself (j' == i) does not satisfy
  // i < j' <= j.
  YieldLedger ledger(4, YieldKind::kToRandom);
  ledger.note_scheduled({3}, 5);
  ledger.on_yield(0, 5, 3);
  EXPECT_TRUE(ledger.blocked(0));
  const auto s = ledger.enforce({0}, 6);
  EXPECT_EQ(s, (std::vector<ProcId>{3}));
}

TEST(YieldToRandom, ReplacementPreservesCount) {
  YieldLedger ledger(8, YieldKind::kToRandom);
  ledger.on_yield(0, 1, 4);
  ledger.on_yield(1, 1, 5);
  const auto s = ledger.enforce({0, 1, 2}, 2);
  EXPECT_EQ(s.size(), 3u);
  EXPECT_TRUE(contains(s, 2));
  EXPECT_TRUE(contains(s, 4));
  EXPECT_TRUE(contains(s, 5));
}

TEST(YieldToRandom, NewYieldSupersedesOldConstraint) {
  YieldLedger ledger(4, YieldKind::kToRandom);
  ledger.on_yield(0, 1, 3);
  ledger.note_scheduled({3}, 2);  // satisfies the first constraint
  EXPECT_FALSE(ledger.blocked(0));
  ledger.on_yield(0, 3, 2);  // new constraint on a different target
  EXPECT_TRUE(ledger.blocked(0));
  ledger.note_scheduled({2}, 4);
  EXPECT_FALSE(ledger.blocked(0));
}

TEST(YieldToAll, RequiresEveryOtherProcess) {
  YieldLedger ledger(4, YieldKind::kToAll);
  ledger.on_yield(0, 10, 0);
  EXPECT_TRUE(ledger.blocked(0));
  ledger.note_scheduled({1}, 11);
  EXPECT_TRUE(ledger.blocked(0));
  ledger.note_scheduled({2}, 12);
  EXPECT_TRUE(ledger.blocked(0));
  ledger.note_scheduled({3}, 13);
  EXPECT_FALSE(ledger.blocked(0));
}

TEST(YieldToAll, YieldRoundItselfDoesNotCount) {
  YieldLedger ledger(3, YieldKind::kToAll);
  ledger.on_yield(0, 10, 0);
  ledger.note_scheduled({1, 2}, 10);  // same round as the yield: ignored
  EXPECT_TRUE(ledger.blocked(0));
  ledger.note_scheduled({1, 2}, 11);
  EXPECT_FALSE(ledger.blocked(0));
}

TEST(YieldToAll, ReplacementPicksMissingProcess) {
  YieldLedger ledger(4, YieldKind::kToAll);
  ledger.on_yield(0, 1, 0);
  ledger.note_scheduled({1, 2}, 2);
  // Only process 3 is still missing; scheduling {0} must yield {3}.
  const auto s = ledger.enforce({0}, 3);
  EXPECT_EQ(s, (std::vector<ProcId>{3}));
  ledger.note_scheduled(s, 3);
  EXPECT_FALSE(ledger.blocked(0));
}

TEST(YieldToAll, SameRoundCompletionAllowsScheduling) {
  // If the kernel schedules p together with every process p still waits
  // on, the constraint is satisfied within that round.
  YieldLedger ledger(3, YieldKind::kToAll);
  ledger.on_yield(0, 1, 0);
  const auto s = ledger.enforce({0, 1, 2}, 2);
  EXPECT_TRUE(contains(s, 0));
  EXPECT_EQ(s.size(), 3u);
}

TEST(YieldToAll, SelfDoesNotBlockItself) {
  // A single-process system: yieldToAll with P=1 is trivially satisfied.
  YieldLedger ledger(1, YieldKind::kToAll);
  ledger.on_yield(0, 1, 0);
  EXPECT_FALSE(ledger.blocked(0));
}

TEST(YieldToAll, MultipleYieldersAllHandled) {
  YieldLedger ledger(4, YieldKind::kToAll);
  ledger.on_yield(0, 1, 0);
  ledger.on_yield(1, 1, 1);
  // Kernel wants {0, 1}: both blocked; each gets replaced by a missing
  // process, preserving the count.
  const auto s = ledger.enforce({0, 1}, 2);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_FALSE(contains(s, 0));
  EXPECT_FALSE(contains(s, 1));
}

}  // namespace
}  // namespace abp::sim
