// Tests for the enabling tree (§3.4).

#include <gtest/gtest.h>

#include "dag/builders.hpp"
#include "dag/enabling.hpp"

namespace abp::dag {
namespace {

TEST(EnablingTree, RootDepthZeroWeightTinf) {
  const Dag d = figure1();
  EnablingTree t(d);
  t.set_root(d.root());
  EXPECT_TRUE(t.known(d.root()));
  EXPECT_EQ(t.depth(d.root()), 0u);
  EXPECT_EQ(t.weight(d.root()), d.critical_path_length());
}

TEST(EnablingTree, RecordIncrementsDepth) {
  const Dag d = chain(5);
  EnablingTree t(d);
  t.set_root(0);
  for (NodeId n = 1; n < 5; ++n) t.record(n - 1, n);
  for (NodeId n = 0; n < 5; ++n) {
    EXPECT_EQ(t.depth(n), n);
    EXPECT_EQ(t.weight(n), 5 - n);
  }
  EXPECT_TRUE(t.validate(5).empty()) << t.validate(5);
}

TEST(EnablingTree, ParentTracked) {
  const Dag d = chain(3);
  EnablingTree t(d);
  t.set_root(0);
  t.record(0, 1);
  t.record(1, 2);
  EXPECT_EQ(t.parent(1), 0u);
  EXPECT_EQ(t.parent(2), 1u);
}

TEST(EnablingTree, ValidateDetectsMissingNodes) {
  const Dag d = chain(4);
  EnablingTree t(d);
  t.set_root(0);
  t.record(0, 1);
  EXPECT_FALSE(t.validate(4).empty());
  EXPECT_TRUE(t.validate(2).empty());
}

TEST(EnablingTree, DepthBoundedByTinf) {
  // In the figure-1 dag (Tinf = 8), any execution's enabling tree has
  // depth < 8. Simulate the serial depth-first execution by hand along the
  // longest enabling chain.
  const Dag d = figure1();
  EnablingTree t(d);
  t.set_root(0);
  // Enabling edges of the serial execution v1 v2 v3 v4 v5 v6 ... v11:
  t.record(0, 1);   // v1 -> v2
  t.record(1, 2);   // v2 -> v3 (spawn)
  t.record(1, 5);   // v2 -> v6 (continuation)
  t.record(2, 3);   // v3 -> v4
  t.record(3, 4);   // v4 -> v5
  t.record(5, 6);   // v6 -> v7
  t.record(3, 7);   // v4 -> v8 enabled by semaphore V if v7 came first?
  // (one consistent enabling choice; depth must stay < 8 regardless)
  t.record(7, 8);   // v8 -> v9
  t.record(8, 9);   // v9 -> v10
  t.record(9, 10);  // v10 -> v11
  EXPECT_TRUE(t.validate(11).empty()) << t.validate(11);
  for (NodeId n = 0; n < 11; ++n) EXPECT_LT(t.depth(n), 8u);
}

TEST(EnablingTreeDeath, DoubleRecordAborts) {
  const Dag d = chain(3);
  EnablingTree t(d);
  t.set_root(0);
  t.record(0, 1);
  EXPECT_DEATH(t.record(0, 1), "exactly once");
}

TEST(EnablingTreeDeath, RecordFromUnknownParentAborts) {
  const Dag d = chain(3);
  EnablingTree t(d);
  t.set_root(0);
  EXPECT_DEATH(t.record(2, 1), "already");
}

TEST(EnablingTreeDeath, UnknownDepthQueryAborts) {
  const Dag d = chain(3);
  EnablingTree t(d);
  EXPECT_DEATH(t.depth(1), "not yet enabled");
}

}  // namespace
}  // namespace abp::dag
