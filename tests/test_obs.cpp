// Telemetry subsystem (src/obs): ring wraparound, histogram bucket
// boundaries and quantiles, Chrome-trace / stats JSON well-formedness
// (parsed back with the strict validator), the simulator timeline, and
// cross-worker aggregation after the real runtime quiesces.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "dag/builders.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "obs/trace.hpp"
#include "obs/trace_ring.hpp"
#include "runtime/scheduler.hpp"
#include "sched/work_stealer.hpp"
#include "sim/kernel.hpp"
#include "sim/profile.hpp"

namespace {

using namespace abp;
using obs::EventType;
using obs::LatencyHistogram;
using obs::TraceRing;

// ---- trace ring ----------------------------------------------------------

TEST(TraceRing, RecordsInOrderBelowCapacity) {
  TraceRing ring(8);
  EXPECT_EQ(ring.capacity(), 8u);
  for (std::uint64_t i = 0; i < 5; ++i)
    ring.record(EventType::kSpawn, i);
  EXPECT_EQ(ring.total_recorded(), 5u);
  EXPECT_EQ(ring.dropped(), 0u);
  const auto snap = ring.snapshot();
  ASSERT_EQ(snap.size(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(snap[i].arg, i);
    EXPECT_EQ(snap[i].type, EventType::kSpawn);
  }
  // Timestamps are nondecreasing (monotonic counter read per record).
  for (std::size_t i = 1; i < snap.size(); ++i)
    EXPECT_GE(snap[i].tsc, snap[i - 1].tsc);
}

TEST(TraceRing, WraparoundKeepsNewestAndCountsDropped) {
  TraceRing ring(8);
  for (std::uint64_t i = 0; i < 20; ++i)
    ring.record(EventType::kYield, i);
  EXPECT_EQ(ring.total_recorded(), 20u);
  EXPECT_EQ(ring.dropped(), 12u);
  EXPECT_EQ(ring.size(), 8u);
  const auto snap = ring.snapshot();
  ASSERT_EQ(snap.size(), 8u);
  // Oldest retained is #12, newest is #19.
  for (std::uint64_t i = 0; i < 8; ++i) EXPECT_EQ(snap[i].arg, 12 + i);
}

TEST(TraceRing, CapacityRoundsUpToPowerOfTwo) {
  TraceRing ring(5);
  EXPECT_EQ(ring.capacity(), 8u);
  TraceRing ring1(1);
  EXPECT_EQ(ring1.capacity(), 1u);
  // A capacity-1 ring holds exactly the newest event.
  ring1.record(EventType::kSpawn, 1);
  ring1.record(EventType::kSpawn, 2);
  const auto snap = ring1.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].arg, 2u);
}

TEST(TraceRing, ClearResets) {
  TraceRing ring(4);
  ring.record(EventType::kSpawn);
  ring.clear();
  EXPECT_EQ(ring.total_recorded(), 0u);
  EXPECT_TRUE(ring.snapshot().empty());
}

// ---- histogram -----------------------------------------------------------

TEST(LatencyHistogramTest, BucketBoundaries) {
  // Bucket 0 holds exactly v==0; bucket i>=1 holds [2^(i-1), 2^i - 1].
  EXPECT_EQ(LatencyHistogram::bucket_index(0), 0);
  EXPECT_EQ(LatencyHistogram::bucket_index(1), 1);
  EXPECT_EQ(LatencyHistogram::bucket_index(2), 2);
  EXPECT_EQ(LatencyHistogram::bucket_index(3), 2);
  EXPECT_EQ(LatencyHistogram::bucket_index(4), 3);
  EXPECT_EQ(LatencyHistogram::bucket_index((1ull << 20) - 1), 20);
  EXPECT_EQ(LatencyHistogram::bucket_index(1ull << 20), 21);
  EXPECT_EQ(LatencyHistogram::bucket_index(~0ull), 64);

  for (int i = 1; i <= 64; ++i) {
    // Each bucket's bounds map back to that bucket, and bounds tile the
    // value space with no gaps.
    EXPECT_EQ(LatencyHistogram::bucket_index(LatencyHistogram::bucket_lower(i)),
              i)
        << i;
    EXPECT_EQ(LatencyHistogram::bucket_index(LatencyHistogram::bucket_upper(i)),
              i)
        << i;
    if (i < 64) {
      EXPECT_EQ(LatencyHistogram::bucket_upper(i) + 1,
                LatencyHistogram::bucket_lower(i + 1))
          << i;
    }
  }
}

TEST(LatencyHistogramTest, CountsAndMoments) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);
  h.record(10);
  h.record(20);
  h.record(30);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 60u);
  EXPECT_EQ(h.min(), 10u);
  EXPECT_EQ(h.max(), 30u);
  EXPECT_DOUBLE_EQ(h.mean(), 20.0);
  EXPECT_EQ(h.bucket_count(LatencyHistogram::bucket_index(10)), 1u);
}

TEST(LatencyHistogramTest, PercentilesOrderedAndBounded) {
  LatencyHistogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);
  const double p50 = h.percentile(50);
  const double p95 = h.percentile(95);
  const double p99 = h.percentile(99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_GE(p50, 1.0);
  EXPECT_LE(p99, 1000.0);
  // With log buckets the p50 of uniform [1,1000] lands in the 512-1000
  // bucket's lower half; just require the right order of magnitude.
  EXPECT_GT(p50, 100.0);
  // p0/p100 clamp to min/max.
  EXPECT_DOUBLE_EQ(h.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(h.percentile(100), 1000.0);
}

TEST(LatencyHistogramTest, SingleValueAllPercentilesEqual) {
  LatencyHistogram h;
  h.record(42);
  EXPECT_DOUBLE_EQ(h.percentile(50), 42.0);
  EXPECT_DOUBLE_EQ(h.percentile(99), 42.0);
}

TEST(LatencyHistogramTest, MergeMatchesCombinedRecording) {
  LatencyHistogram a, b, both;
  for (std::uint64_t v = 1; v <= 100; ++v) {
    (v % 2 ? a : b).record(v * 7);
    both.record(v * 7);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), both.count());
  EXPECT_EQ(a.sum(), both.sum());
  EXPECT_EQ(a.min(), both.min());
  EXPECT_EQ(a.max(), both.max());
  EXPECT_DOUBLE_EQ(a.percentile(95), both.percentile(95));
}

TEST(MetricsRegistryTest, NamedHistograms) {
  obs::MetricsRegistry reg;
  reg.histogram("steal_latency").record(5);
  reg.histogram("steal_latency").record(6);
  reg.histogram("job_run").record(7);
  EXPECT_EQ(reg.size(), 2u);
  ASSERT_NE(reg.find("steal_latency"), nullptr);
  EXPECT_EQ(reg.find("steal_latency")->count(), 2u);
  EXPECT_EQ(reg.find("missing"), nullptr);
  EXPECT_EQ(reg.entries().size(), 2u);
}

// ---- JSON utilities ------------------------------------------------------

TEST(JsonTest, ValidatorAcceptsAndRejects) {
  std::string err;
  EXPECT_TRUE(obs::json_validate("{}"));
  EXPECT_TRUE(obs::json_validate("[1,2.5,-3e2,\"x\",true,false,null]"));
  EXPECT_TRUE(obs::json_validate("{\"a\":{\"b\":[{}]}}"));
  EXPECT_FALSE(obs::json_validate("{", &err));
  EXPECT_FALSE(obs::json_validate("{\"a\":}", &err));
  EXPECT_FALSE(obs::json_validate("[1,]", &err));
  EXPECT_FALSE(obs::json_validate("01", &err));
  EXPECT_FALSE(obs::json_validate("\"unterminated", &err));
  EXPECT_FALSE(obs::json_validate("{} trailing", &err));
}

TEST(JsonTest, EscapeAndWriter) {
  EXPECT_EQ(obs::json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
  obs::JsonObjectWriter w;
  w.add("s", std::string_view("x\"y"));
  w.add("n", std::uint64_t{7});
  w.add("d", 1.5);
  w.add("b", true);
  const std::string out = w.str();
  EXPECT_TRUE(obs::json_validate(out)) << out;
  EXPECT_NE(out.find("\"s\":\"x\\\"y\""), std::string::npos);
}

TEST(JsonTest, HistogramSummaryValidates) {
  LatencyHistogram h;
  for (std::uint64_t v = 1; v < 64; ++v) h.record(v);
  const std::string s = obs::histogram_summary_json(h, 0.5);
  EXPECT_TRUE(obs::json_validate(s)) << s;
  EXPECT_NE(s.find("\"p50\":"), std::string::npos);
  EXPECT_NE(s.find("\"p99\":"), std::string::npos);
}

TEST(ChromeTraceTest, BuilderProducesWellFormedDocument) {
  obs::ChromeTraceBuilder b;
  b.process_name(0, "test \"proc\"");
  b.thread_name(0, 1, "worker 1");
  b.complete(0, 1, "job", 1.0, 2.5);
  b.instant(0, 1, "steal", 3.0, "{\"victim\":2}");
  b.counter(0, "p_i", 4.0, "{\"p_i\":3}");
  const std::string doc = b.build();
  std::string err;
  EXPECT_TRUE(obs::json_validate(doc, &err)) << err;
  EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
  EXPECT_EQ(b.num_events(), 5u);
}

// ---- simulator timeline --------------------------------------------------

TEST(SimTimelineTest, EngineRecordsRoundsAndPotential) {
  const auto d = dag::fib_dag(10);
  const std::size_t p = 4;
  sim::BenignKernel kernel(p, sim::constant_profile(p), 3);
  obs::SimTimeline timeline;
  timeline.set_name("fib(10)");
  sched::Options opts;
  opts.seed = 5;
  opts.timeline = &timeline;
  opts.sample_potential = true;
  const auto m = sched::run_work_stealer(d, kernel, opts);
  ASSERT_TRUE(m.completed);

  ASSERT_EQ(timeline.rounds(), static_cast<std::size_t>(m.length));
  std::uint64_t prev_throws = 0;
  for (const auto& s : timeline.samples()) {
    EXPECT_LE(s.proposed, p);
    EXPECT_LE(s.scheduled, p);
    EXPECT_GE(s.throws, prev_throws);  // cumulative
    prev_throws = s.throws;
    EXPECT_GE(s.phi_log10, 0.0);  // sampled every round
  }
  EXPECT_EQ(prev_throws, m.steal_attempts);
  // Potential never increases (§4.2) — compare consecutive samples.
  for (std::size_t i = 1; i < timeline.samples().size(); ++i)
    EXPECT_LE(timeline.samples()[i].phi_log10,
              timeline.samples()[i - 1].phi_log10 + 1e-9);

  std::string err;
  const std::string trace = timeline.chrome_trace_json();
  EXPECT_TRUE(obs::json_validate(trace, &err)) << err;
  EXPECT_NE(trace.find("\"p_i\""), std::string::npos);
  EXPECT_NE(trace.find("potential"), std::string::npos);
  const std::string stats = timeline.stats_json();
  EXPECT_TRUE(obs::json_validate(stats, &err)) << err;
  EXPECT_NE(stats.find("\"throws\""), std::string::npos);
}

TEST(SimTimelineTest, KernelNoteChoiceFeedsTimeline) {
  obs::SimTimeline timeline;
  sim::DedicatedKernel kernel(3);
  kernel.attach_timeline(&timeline);
  (void)kernel.schedule(1, {});
  (void)kernel.schedule(2, {});
  ASSERT_EQ(timeline.rounds(), 2u);
  EXPECT_EQ(timeline.samples()[0].proposed, 3u);
  EXPECT_EQ(timeline.samples()[1].proposed, 3u);
}

// ---- real runtime: counters, aggregation, export -------------------------

runtime::WorkerStats run_spawn_heavy(runtime::Scheduler& sched, int depth) {
  sched.run([&](runtime::Worker& w) {
    // Balanced spawn tree: plenty of steals for every worker.
    struct Rec {
      static void go(runtime::Worker& w, int d) {
        if (d == 0) return;
        runtime::TaskGroup tg(w);
        tg.spawn([d](runtime::Worker& w2) { go(w2, d - 1); });
        go(w, d - 1);
        tg.wait();
      }
    };
    Rec::go(w, depth);
  });
  return sched.total_stats();
}

TEST(RuntimeTelemetryTest, StealFailureReasonsPartitionAttempts) {
  for (const auto policy :
       {runtime::DequePolicy::kAbp, runtime::DequePolicy::kChaseLev,
        runtime::DequePolicy::kMutex}) {
    runtime::SchedulerOptions o;
    o.num_workers = 4;
    o.deque = policy;
    runtime::Scheduler sched(o);
    const auto t = run_spawn_heavy(sched, 12);
    EXPECT_GT(t.jobs_executed, 0u);
    // Every attempt ends in exactly one of: success, CAS loss, empty
    // victim (self-steals count as empty).
    EXPECT_EQ(t.steal_attempts,
              t.steals + t.steal_cas_failures + t.steal_empty_victim)
        << to_string(policy);
    if (policy == runtime::DequePolicy::kMutex) {
      EXPECT_EQ(t.steal_cas_failures, 0u);  // lock serializes thieves
    }
  }
}

TEST(RuntimeTelemetryTest, StatsJsonIsWellFormed) {
  runtime::SchedulerOptions o;
  o.num_workers = 3;
  runtime::Scheduler sched(o);
  run_spawn_heavy(sched, 10);
  const std::string stats = sched.stats_json();
  std::string err;
  EXPECT_TRUE(obs::json_validate(stats, &err)) << err << "\n" << stats;
  EXPECT_NE(stats.find("\"steal_attempts\""), std::string::npos);
  EXPECT_NE(stats.find("\"steal_cas_failures\""), std::string::npos);
  EXPECT_EQ(stats.find('\n'), std::string::npos);  // single line
}

#if ABP_TRACE_ENABLED

TEST(RuntimeTelemetryTest, AggregationAcrossWorkersAfterQuiesce) {
  runtime::SchedulerOptions o;
  o.num_workers = 4;
  runtime::Scheduler sched(o);
  // On a single-core host a small spawn tree can finish inside one OS
  // quantum with the root worker doing all of it and the thieves never
  // running. Spin in the leaves so each run spans a few quanta, and rerun
  // (stats accumulate) until at least one steal has landed.
  int runs = 0;
  do {
    ++runs;
    sched.run([](runtime::Worker& w) {
      struct Rec {
        static void go(runtime::Worker& w2, int d) {
          if (d == 0) {
            unsigned x = 1u;
            for (int i = 0; i < 20000; ++i) x = x * 1664525u + 1013904223u;
            if (x == 0xdeadbeef) std::abort();  // keep the spin alive
            return;
          }
          runtime::TaskGroup tg(w2);
          tg.spawn([d](runtime::Worker& w3) { go(w3, d - 1); });
          go(w2, d - 1);
          tg.wait();
        }
      };
      Rec::go(w, 10);
    });
  } while (sched.total_stats().steals == 0 && runs < 100);
  const auto t = sched.total_stats();
  ASSERT_GT(t.steals, 0u);

  // Per-worker histogram counts sum to the aggregate, and the aggregate
  // matches the plain counters: one job_run sample per executed job, one
  // steal_latency sample per successful steal.
  const obs::WorkerTelemetry total = sched.aggregate_telemetry();
  std::uint64_t steal_sum = 0, job_sum = 0;
  for (std::size_t i = 0; i < sched.num_workers(); ++i) {
    const auto& ws = sched.worker_stats(i);
    steal_sum += ws.steals;
    job_sum += ws.jobs_executed;
  }
  EXPECT_EQ(total.steal_latency.count(), steal_sum);
  EXPECT_EQ(total.steal_latency.count(), t.steals);
  EXPECT_EQ(total.job_run.count(), job_sum);
  EXPECT_EQ(total.job_run.count(), t.jobs_executed);
  // Each worker records time-to-first-steal at most once per work_loop
  // entry (one entry per run()).
  EXPECT_LE(total.time_to_first_steal.count(),
            sched.num_workers() * static_cast<std::uint64_t>(runs));

  // Ring events were recorded by every worker that executed jobs.
  std::uint64_t ring_events = 0;
  for (std::size_t i = 0; i < sched.num_workers(); ++i)
    ring_events += sched.worker_trace(i).total_recorded();
  EXPECT_GE(ring_events, t.jobs_executed);  // at least the kJobBegin events

  // The stats JSON carries the percentile summaries.
  const std::string stats = sched.stats_json();
  EXPECT_NE(stats.find("\"steal_latency_ns\""), std::string::npos);
  EXPECT_NE(stats.find("\"p95\""), std::string::npos);

  // reset_stats clears telemetry too.
  sched.reset_stats();
  EXPECT_EQ(sched.aggregate_telemetry().job_run.count(), 0u);
  EXPECT_EQ(sched.worker_trace(0).total_recorded(), 0u);
}

TEST(RuntimeTelemetryTest, ChromeTraceExportParsesBack) {
  runtime::SchedulerOptions o;
  o.num_workers = 2;
  o.trace_ring_capacity = 1u << 10;
  runtime::Scheduler sched(o);
  run_spawn_heavy(sched, 11);
  const std::string doc = sched.chrome_trace_json();
  std::string err;
  ASSERT_TRUE(obs::json_validate(doc, &err)) << err;
  EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(doc.find("\"name\":\"job\""), std::string::npos);
}

TEST(RuntimeTelemetryTest, StatsJsonSurfacesTraceDrops) {
  // Satellite of the live-metrics plane: wraparound loss must be visible
  // in the stats document, not silently folded into a full-looking ring.
  runtime::SchedulerOptions o;
  o.num_workers = 2;
  o.trace_ring_capacity = 64;  // tiny: guaranteed wraparound
  runtime::Scheduler sched(o);
  run_spawn_heavy(sched, 12);
  const std::string doc = sched.stats_json();
  std::string err;
  ASSERT_TRUE(obs::json_validate(doc, &err)) << err;
  const auto at = doc.find("\"trace_dropped\":");
  ASSERT_NE(at, std::string::npos) << doc;
  const std::uint64_t dropped =
      std::strtoull(doc.c_str() + at + sizeof("\"trace_dropped\":") - 1,
                    nullptr, 10);
  std::uint64_t ring_dropped = 0;
  for (std::size_t i = 0; i < sched.num_workers(); ++i)
    ring_dropped += sched.worker_trace(i).dropped();
  EXPECT_GT(dropped, 0u);
  EXPECT_EQ(dropped, ring_dropped);
}

TEST(RuntimeTelemetryTest, RingWraparoundUnderLoad) {
  runtime::SchedulerOptions o;
  o.num_workers = 2;
  o.trace_ring_capacity = 64;  // tiny: guaranteed wraparound
  runtime::Scheduler sched(o);
  run_spawn_heavy(sched, 12);
  std::uint64_t dropped = 0;
  for (std::size_t i = 0; i < sched.num_workers(); ++i) {
    const auto& ring = sched.worker_trace(i);
    EXPECT_LE(ring.size(), ring.capacity());
    dropped += ring.dropped();
  }
  EXPECT_GT(dropped, 0u);
  // Export still produces a well-formed document from partial rings.
  std::string err;
  EXPECT_TRUE(obs::json_validate(sched.chrome_trace_json(), &err)) << err;
}

#endif  // ABP_TRACE_ENABLED

// ---- histogram bucket-edge values + merge guards -------------------------

TEST(LatencyHistogramTest, BucketEdgeValues) {
  // The extreme representable samples land in the right buckets and never
  // corrupt the moments: 0 (dedicated zero bucket), 1 (first power), 2^63
  // and UINT64_MAX (both in the final bucket).
  LatencyHistogram h;
  h.record(0);
  h.record(1);
  h.record(1ull << 63);
  h.record(~0ull);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), ~0ull);
  EXPECT_EQ(h.bucket_count(0), 1u);   // exactly v==0
  EXPECT_EQ(h.bucket_count(1), 1u);   // [1, 1]
  EXPECT_EQ(h.bucket_count(64), 2u);  // [2^63, 2^64-1]
  // Percentiles stay within [min, max] even at the saturated top bucket.
  for (const double p : {0.0, 50.0, 99.0, 100.0}) {
    EXPECT_GE(h.percentile(p), 0.0);
    EXPECT_LE(h.percentile(p), static_cast<double>(~0ull));
  }
}

TEST(LatencyHistogramTest, MergeEmptyGuards) {
  // Empty histograms are the identity of merge in every direction; the
  // min() of an empty histogram must not poison the merged minimum.
  LatencyHistogram empty1, empty2;
  empty1.merge(empty2);
  EXPECT_EQ(empty1.count(), 0u);
  EXPECT_DOUBLE_EQ(empty1.percentile(50), 0.0);

  LatencyHistogram filled;
  filled.record(7);
  filled.record(4096);
  LatencyHistogram into_empty;
  into_empty.merge(filled);  // empty.merge(x) == x
  EXPECT_EQ(into_empty.count(), 2u);
  EXPECT_EQ(into_empty.min(), 7u);
  EXPECT_EQ(into_empty.max(), 4096u);
  EXPECT_EQ(into_empty.sum(), filled.sum());

  filled.merge(empty1);  // x.merge(empty) == x
  EXPECT_EQ(filled.count(), 2u);
  EXPECT_EQ(filled.min(), 7u);
  EXPECT_EQ(filled.max(), 4096u);
}

TEST(LatencyHistogramTest, MergeAtBucketEdges) {
  LatencyHistogram a, b;
  a.record(0);
  a.record(~0ull);
  b.record(1);
  b.record(1ull << 63);
  a.merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.min(), 0u);
  EXPECT_EQ(a.max(), ~0ull);
  EXPECT_EQ(a.bucket_count(0), 1u);
  EXPECT_EQ(a.bucket_count(1), 1u);
  EXPECT_EQ(a.bucket_count(64), 2u);
}

// ---- ring snapshot drop accounting ---------------------------------------

TEST(TraceRing, SnapshotWithStatsReportsOverflow) {
  TraceRing ring(8);
  for (std::uint64_t i = 0; i < 100; ++i) ring.record(EventType::kYield, i);
  const obs::TraceSnapshot snap = ring.snapshot_with_stats();
  EXPECT_EQ(snap.total_recorded, 100u);
  EXPECT_EQ(snap.dropped, 100u - snap.events.size());
  EXPECT_GT(snap.dropped, 0u);
  ASSERT_FALSE(snap.events.empty());
  EXPECT_EQ(snap.events.back().arg, 99u);  // newest retained
  EXPECT_EQ(snap.events.front().arg, 100u - snap.events.size());
}

// ---- prometheus text exposition ------------------------------------------

TEST(PrometheusTest, WriterOutputValidates) {
  LatencyHistogram h;
  h.record(0);
  h.record(100);
  h.record(~0ull);
  obs::PrometheusWriter w;
  w.gauge("abp_workers", 4.0);
  w.counter("abp_steals_total", 17.0, "worker=\"3\"");
  w.histogram("abp_steal_latency_ns", h, 0.5);
  const std::string text = w.str();
  std::string err;
  EXPECT_TRUE(obs::prometheus_validate(text, &err)) << err;
  EXPECT_NE(text.find("# TYPE abp_workers gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE abp_steals_total counter"), std::string::npos);
  EXPECT_NE(text.find("# TYPE abp_steal_latency_ns histogram"),
            std::string::npos);
  EXPECT_NE(text.find("abp_steal_latency_ns_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("abp_steal_latency_ns_count 3"), std::string::npos);
}

TEST(PrometheusTest, ValidatorRejectsMalformedLines) {
  std::string err;
  EXPECT_FALSE(obs::prometheus_validate("novalue\n", &err));
  EXPECT_FALSE(obs::prometheus_validate("9bad_name 1\n", &err));
  EXPECT_FALSE(obs::prometheus_validate("x{le=\"1} 1\n", &err));
  EXPECT_FALSE(obs::prometheus_validate("x{a=\"1\"} not_a_number\n", &err));
  EXPECT_TRUE(obs::prometheus_validate("x{le=\"+Inf\"} 1\nx_sum 2\n", &err))
      << err;
}

}  // namespace
