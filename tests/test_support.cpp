// Unit tests for the support layer: RNG, statistics, tables.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace abp {
namespace {

TEST(SplitMix64, KnownSequenceIsDeterministic) {
  SplitMix64 a(12345);
  SplitMix64 b(12345);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Xoshiro256, DeterministicForSeed) {
  Xoshiro256 a(99);
  Xoshiro256 b(99);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro256, ReseedRestartsSequence) {
  Xoshiro256 a(7);
  const auto first = a.next();
  a.next();
  a.reseed(7);
  EXPECT_EQ(a.next(), first);
}

TEST(Xoshiro256, BelowStaysInRange) {
  Xoshiro256 rng(3);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Xoshiro256, BelowOneAlwaysZero) {
  Xoshiro256 rng(4);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Xoshiro256, RangeInclusive) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.range(10, 12);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 12u);
  }
}

TEST(Xoshiro256, BelowIsRoughlyUniform) {
  Xoshiro256 rng(42);
  constexpr int kBuckets = 8;
  constexpr int kDraws = 80000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.below(kBuckets)];
  for (int c : counts) {
    EXPECT_GT(c, kDraws / kBuckets * 0.9);
    EXPECT_LT(c, kDraws / kBuckets * 1.1);
  }
}

TEST(Xoshiro256, UniformInUnitInterval) {
  Xoshiro256 rng(6);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Xoshiro256, ChanceProbability) {
  Xoshiro256 rng(8);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.chance(0.25);
  EXPECT_NEAR(hits / 20000.0, 0.25, 0.02);
}

TEST(Xoshiro256, ShuffleIsPermutation) {
  Xoshiro256 rng(11);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  auto w = v;
  rng.shuffle(w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Xoshiro256, SampleWithoutReplacementDistinct) {
  Xoshiro256 rng(13);
  for (int trial = 0; trial < 50; ++trial) {
    const auto s = rng.sample_without_replacement(20, 7);
    ASSERT_EQ(s.size(), 7u);
    std::set<std::size_t> uniq(s.begin(), s.end());
    EXPECT_EQ(uniq.size(), 7u);
    for (auto x : s) EXPECT_LT(x, 20u);
  }
}

TEST(Xoshiro256, SampleFullRangeIsPermutation) {
  Xoshiro256 rng(14);
  const auto s = rng.sample_without_replacement(10, 10);
  std::set<std::size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 10u);
}

TEST(Xoshiro256, SampleZeroIsEmpty) {
  Xoshiro256 rng(15);
  EXPECT_TRUE(rng.sample_without_replacement(5, 0).empty());
}

TEST(Xoshiro256, SampleIsUnbiased) {
  // Each element of [0,6) should appear in a 3-sample with prob 1/2.
  Xoshiro256 rng(16);
  int counts[6] = {};
  constexpr int kTrials = 30000;
  for (int t = 0; t < kTrials; ++t)
    for (auto x : rng.sample_without_replacement(6, 3)) ++counts[x];
  for (int c : counts) EXPECT_NEAR(c / double(kTrials), 0.5, 0.02);
}

// ---- statistics ------------------------------------------------------------

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, SingleValue) {
  OnlineStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(OnlineStats, MatchesDirectComputation) {
  Xoshiro256 rng(20);
  std::vector<double> xs;
  OnlineStats s;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform() * 100.0 - 50.0;
    xs.push_back(x);
    s.add(x);
  }
  double mean = 0.0;
  for (double x : xs) mean += x;
  mean /= xs.size();
  double var = 0.0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= (xs.size() - 1);
  EXPECT_NEAR(s.mean(), mean, 1e-9);
  EXPECT_NEAR(s.variance(), var, 1e-7);
  EXPECT_DOUBLE_EQ(s.min(), *std::min_element(xs.begin(), xs.end()));
  EXPECT_DOUBLE_EQ(s.max(), *std::max_element(xs.begin(), xs.end()));
}

TEST(OnlineStats, MergeEqualsSequential) {
  Xoshiro256 rng(21);
  OnlineStats all, a, b;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform();
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Percentile, MedianAndExtremes) {
  std::vector<double> v{5, 1, 4, 2, 3};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 5.0);
}

TEST(Percentile, Interpolates) {
  std::vector<double> v{0, 10};
  EXPECT_DOUBLE_EQ(percentile(v, 25), 2.5);
  EXPECT_DOUBLE_EQ(percentile(v, 75), 7.5);
}

TEST(Percentile, SingleElement) {
  EXPECT_DOUBLE_EQ(percentile({7.0}, 99), 7.0);
}

TEST(FitThroughOrigin, ExactLinear) {
  std::vector<double> x{1, 2, 3, 4};
  std::vector<double> y{3, 6, 9, 12};
  EXPECT_NEAR(fit_through_origin(x, y), 3.0, 1e-12);
}

TEST(FitThroughOrigin, ZeroDesign) {
  EXPECT_DOUBLE_EQ(fit_through_origin({0, 0}, {1, 2}), 0.0);
}

TEST(TwoVarFit, RecoversPlantedCoefficients) {
  Xoshiro256 rng(30);
  std::vector<double> x1, x2, y;
  for (int i = 0; i < 200; ++i) {
    const double a = rng.uniform() * 10;
    const double b = rng.uniform() * 5;
    x1.push_back(a);
    x2.push_back(b);
    y.push_back(2.5 * a + 0.75 * b);
  }
  const auto fit = fit_two_regressors(x1, x2, y);
  EXPECT_NEAR(fit.a, 2.5, 1e-9);
  EXPECT_NEAR(fit.b, 0.75, 1e-9);
  EXPECT_NEAR(fit.r2, 1.0, 1e-9);
}

TEST(TwoVarFit, NoisyStillClose) {
  Xoshiro256 rng(31);
  std::vector<double> x1, x2, y;
  for (int i = 0; i < 2000; ++i) {
    const double a = rng.uniform() * 10 + 1;
    const double b = rng.uniform() * 5 + 1;
    y.push_back(1.0 * a + 2.0 * b + (rng.uniform() - 0.5) * 0.1);
    x1.push_back(a);
    x2.push_back(b);
  }
  const auto fit = fit_two_regressors(x1, x2, y);
  EXPECT_NEAR(fit.a, 1.0, 0.05);
  EXPECT_NEAR(fit.b, 2.0, 0.05);
  EXPECT_GT(fit.r2, 0.99);
}

TEST(TwoVarFit, DegenerateFallsBackToSingleRegressor) {
  // x2 identically proportional to x1 makes the 2x2 system singular.
  std::vector<double> x1{1, 2, 3};
  std::vector<double> x2{2, 4, 6};
  std::vector<double> y{5, 10, 15};
  const auto fit = fit_two_regressors(x1, x2, y);
  EXPECT_NEAR(fit.a, 5.0, 1e-9);
  EXPECT_DOUBLE_EQ(fit.b, 0.0);
}

// ---- tables ----------------------------------------------------------------

TEST(Table, RowCountAndTitle) {
  Table t("demo", {"a", "b"});
  EXPECT_EQ(t.title(), "demo");
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"1", "2"});
  EXPECT_EQ(t.rows(), 1u);
}

TEST(Table, CsvRoundTrip) {
  Table t("x", {"col1", "col2"});
  t.add_row({"a", "1.5"});
  t.add_row({"b,with,commas", "2"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("col1,col2\n"), std::string::npos);
  EXPECT_NE(csv.find("a,1.5\n"), std::string::npos);
  EXPECT_NE(csv.find("\"b,with,commas\",2\n"), std::string::npos);
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
  EXPECT_EQ(Table::integer(-42), "-42");
}

TEST(Table, PrintDoesNotCrash) {
  Table t("print", {"k", "v"});
  t.add_row({"key", "value"});
  std::FILE* devnull = std::fopen("/dev/null", "w");
  ASSERT_NE(devnull, nullptr);
  t.print(devnull);
  std::fclose(devnull);
}

}  // namespace
}  // namespace abp
