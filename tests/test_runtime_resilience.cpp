// The resilience layer, without fault injection (the chaos-driven soak
// lives in test_chaos_resilience.cpp): exception-safe jobs (throwing
// leaves, nested groups, throw-after-steal, futures), typed dag-engine
// failures and cancellation, simulator cancellation, dynamic worker
// membership (add/retire, total-loss recovery), graceful shutdown with a
// deadline, watchdog stall detection, lost-wakeup-safe parking, the
// growable deque's typed allocation-failure path, and the bounded-growth
// inline-run degradation in Worker::push.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <thread>

#include "dag/builders.hpp"
#include "deque/abp_growable_deque.hpp"
#include "obs/export.hpp"
#include "runtime/dag_engine.hpp"
#include "runtime/future.hpp"
#include "runtime/scheduler.hpp"
#include "sched/work_stealer.hpp"
#include "sim/kernel.hpp"
#include "support/backoff.hpp"
#include "support/cancel.hpp"

namespace abp {
namespace {

using namespace std::chrono_literals;
using std::chrono::steady_clock;

// Polls `pred` (a quiesce condition owned by another thread) for up to
// `budget`; returns whether it became true.
template <typename Pred>
bool eventually(Pred pred, std::chrono::milliseconds budget = 10'000ms) {
  const auto deadline = steady_clock::now() + budget;
  while (!pred()) {
    if (steady_clock::now() > deadline) return false;
    std::this_thread::yield();
  }
  return true;
}

// ---- support: cancellation primitives --------------------------------------

TEST(Cancel, FirstRequestWinsAndTokensObserve) {
  CancelSource src;
  CancelToken token = src.token();
  EXPECT_TRUE(token.cancellable());
  EXPECT_FALSE(token.cancelled());
  EXPECT_EQ(token.reason(), CancelReason::kNone);

  EXPECT_TRUE(src.request(CancelReason::kDeadline));
  EXPECT_FALSE(src.request(CancelReason::kUser));  // first reason sticks
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.reason(), CancelReason::kDeadline);
  EXPECT_THROW(token.throw_if_cancelled(), CancelledError);

  src.reset();
  EXPECT_FALSE(token.cancelled());

  CancelToken never;  // default token: never cancelled, cheap to poll
  EXPECT_FALSE(never.cancellable());
  EXPECT_FALSE(never.cancelled());
  never.throw_if_cancelled();  // no-op
}

TEST(Cancel, CancelledErrorCarriesReason) {
  try {
    throw CancelledError(CancelReason::kWatchdog);
  } catch (const CancelledError& e) {
    EXPECT_EQ(e.reason(), CancelReason::kWatchdog);
    EXPECT_NE(std::string(e.what()).find("watchdog"), std::string::npos);
  }
}

// ---- support: yielding backoff ---------------------------------------------

TEST(Backoff, YieldingBackoffEscalatesThenResets) {
  YieldingBackoff b(4);  // saturates after spins 1,2,4 (next would be 8 > 4)
  EXPECT_FALSE(b.saturated());
  int spins = 0;
  while (!b.step()) ++spins;  // spin steps until the first yield step
  EXPECT_EQ(spins, 3);
  EXPECT_TRUE(b.saturated());
  EXPECT_TRUE(b.step());  // escalation is sticky
  b.reset();
  EXPECT_FALSE(b.saturated());
  EXPECT_FALSE(b.step());  // back to spinning
}

// ---- deque: typed allocation failure ---------------------------------------

TEST(GrowableDeque, BoundedGrowthReportsAllocFailed) {
  EXPECT_STREQ(deque::to_string(deque::PushStatus::kOk), "ok");
  EXPECT_STREQ(deque::to_string(deque::PushStatus::kAllocFailed),
               "alloc-failed");

  deque::AbpGrowableDeque<std::uint32_t> dq(4, /*max_capacity=*/8);
  for (std::uint32_t i = 0; i < 8; ++i)
    ASSERT_EQ(dq.push_bottom_ex(i), deque::PushStatus::kOk) << i;
  // The next push needs a grow past max_capacity: typed refusal...
  EXPECT_EQ(dq.push_bottom_ex(99), deque::PushStatus::kAllocFailed);
  // ...and the throwing wrapper surfaces the same failure as bad_alloc.
  EXPECT_THROW(dq.push_bottom(100), std::bad_alloc);

  // The failure mutated nothing: all eight items come back in LIFO order.
  for (int i = 7; i >= 0; --i) {
    const auto v = dq.pop_bottom();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, static_cast<std::uint32_t>(i));
  }
  EXPECT_FALSE(dq.pop_bottom().has_value());
}

// A scheduler over the bounded growable deque degrades to inline runs when
// growth fails, and still executes every job exactly once.
TEST(SchedulerResilience, AllocFailureDegradesToInlineRuns) {
  runtime::SchedulerOptions o;
  o.num_workers = 1;
  o.deque = runtime::DequePolicy::kAbpGrowable;
  o.deque_capacity = 4;
  o.deque_max_capacity = 8;
  runtime::Scheduler s(o);

  std::atomic<int> n{0};
  s.run([&](runtime::Worker& w) {
    runtime::TaskGroup tg(w);
    for (int i = 0; i < 64; ++i)
      tg.spawn([&](runtime::Worker&) {
        n.fetch_add(1, std::memory_order_relaxed);
      });
    tg.wait();
  });

  EXPECT_EQ(n.load(std::memory_order_relaxed), 64);
  EXPECT_GT(s.total_stats().alloc_fail_inline_runs, 0u);
}

// ---- exception-safe jobs ---------------------------------------------------

TEST(SchedulerResilience, LeafThrowRethrownAtWaitAndGroupReusable) {
  runtime::SchedulerOptions o;
  o.num_workers = 2;
  runtime::Scheduler s(o);

  bool caught = false;
  std::atomic<int> after{0};
  s.run([&](runtime::Worker& w) {
    runtime::TaskGroup tg(w);
    tg.spawn([](runtime::Worker&) {
      throw std::runtime_error("leaf boom");
    });
    try {
      tg.wait();
    } catch (const std::runtime_error& e) {
      caught = true;
      EXPECT_STREQ(e.what(), "leaf boom");
    }
    // The group reset its exception slot at wait(): it is reusable.
    tg.spawn([&](runtime::Worker&) {
      after.fetch_add(1, std::memory_order_relaxed);
    });
    tg.wait();
  });
  EXPECT_TRUE(caught);
  EXPECT_EQ(after.load(std::memory_order_relaxed), 1);
}

TEST(SchedulerResilience, SiblingsStillRunWhenOneThrows) {
  runtime::SchedulerOptions o;
  o.num_workers = 3;
  runtime::Scheduler s(o);

  std::atomic<int> ran{0};
  bool caught = false;
  s.run([&](runtime::Worker& w) {
    runtime::TaskGroup tg(w);
    for (int i = 0; i < 50; ++i) {
      tg.spawn([&, i](runtime::Worker&) {
        if (i == 25) throw std::runtime_error("sibling 25 boom");
        ran.fetch_add(1, std::memory_order_relaxed);
      });
    }
    try {
      tg.wait();
    } catch (const std::runtime_error&) {
      caught = true;
    }
  });
  EXPECT_TRUE(caught);
  // Exceptions are captured, not used to cancel siblings: all 49 ran.
  EXPECT_EQ(ran.load(std::memory_order_relaxed), 49);
}

TEST(SchedulerResilience, InteriorThrowPropagatesThroughNestedGroups) {
  runtime::SchedulerOptions o;
  o.num_workers = 2;
  runtime::Scheduler s(o);

  bool caught = false;
  s.run([&](runtime::Worker& w) {
    runtime::TaskGroup outer(w);
    outer.spawn([](runtime::Worker& w2) {
      runtime::TaskGroup inner(w2);
      inner.spawn([](runtime::Worker&) {
        throw std::runtime_error("inner boom");
      });
      inner.wait();  // rethrows inside the interior job...
    });
    try {
      outer.wait();  // ...which captures into the outer group
    } catch (const std::runtime_error& e) {
      caught = true;
      EXPECT_STREQ(e.what(), "inner boom");
    }
  });
  EXPECT_TRUE(caught);
}

// A job that throws *after being stolen* propagates across workers: the
// exception is captured on the thief and rethrown at the spawner's wait().
TEST(SchedulerResilience, StolenJobThrowPropagatesToSpawner) {
  runtime::SchedulerOptions o;
  o.num_workers = 2;
  runtime::Scheduler s(o);

  std::atomic<std::size_t> runner{static_cast<std::size_t>(-1)};
  bool caught = false;
  bool stolen = false;
  s.run([&](runtime::Worker& w) {
    runtime::TaskGroup tg(w);
    tg.spawn([&](runtime::Worker& w2) {
      runner.store(w2.id(), std::memory_order_release);
      throw std::runtime_error("stolen boom");
    });
    // Hold off wait() until a thief has taken the job out of our deque, so
    // the rethrow demonstrably crosses threads. (Bounded: if the host never
    // schedules the thief we fall through and the test still checks the
    // rethrow, just not the cross-thread part.)
    stolen = eventually([&] {
      return runner.load(std::memory_order_acquire) !=
             static_cast<std::size_t>(-1);
    });
    if (stolen) EXPECT_NE(runner.load(std::memory_order_acquire), w.id());
    try {
      tg.wait();
    } catch (const std::runtime_error& e) {
      caught = true;
      EXPECT_STREQ(e.what(), "stolen boom");
    }
  });
  EXPECT_TRUE(caught);
  EXPECT_TRUE(stolen);
}

TEST(SchedulerResilience, RootThrowRethrownFromRun) {
  runtime::Scheduler s(runtime::SchedulerOptions{});
  EXPECT_THROW(
      s.run([](runtime::Worker&) { throw std::runtime_error("root boom"); }),
      std::runtime_error);
  // The scheduler survives: the next run works.
  std::atomic<int> n{0};
  s.run([&](runtime::Worker&) { n.store(1, std::memory_order_relaxed); });
  EXPECT_EQ(n.load(std::memory_order_relaxed), 1);
}

TEST(SchedulerResilience, FutureValueAndException) {
  runtime::SchedulerOptions o;
  o.num_workers = 2;
  runtime::Scheduler s(o);

  s.run([&](runtime::Worker& w) {
    runtime::Future<int> ok(w, [](runtime::Worker&) { return 42; });
    EXPECT_EQ(ok.get(), 42);
    EXPECT_TRUE(ok.ready());

    runtime::Future<int> bad(w, [](runtime::Worker&) -> int {
      throw std::runtime_error("future boom");
    });
    EXPECT_THROW(bad.get(), std::runtime_error);

    runtime::Future<void> done(w, [](runtime::Worker&) {});
    done.get();
  });
}

// ---- cancellation ----------------------------------------------------------

TEST(SchedulerResilience, CancelSkipsJobsWithTypedErrorAndResets) {
  runtime::SchedulerOptions o;
  o.num_workers = 2;
  runtime::Scheduler s(o);

  std::atomic<int> ran{0};
  bool caught = false;
  CancelReason reason = CancelReason::kNone;
  s.run([&](runtime::Worker& w) {
    w.scheduler().request_cancel();  // raised before any child starts
    EXPECT_TRUE(w.cancelled());
    runtime::TaskGroup tg(w);
    for (int i = 0; i < 8; ++i)
      tg.spawn([&](runtime::Worker&) {
        ran.fetch_add(1, std::memory_order_relaxed);
      });
    try {
      tg.wait();
    } catch (const CancelledError& e) {
      caught = true;
      reason = e.reason();
    }
  });
  EXPECT_TRUE(caught);
  EXPECT_EQ(reason, CancelReason::kUser);
  // Exactly-once accounting under cancellation: nothing ran, everything
  // was delivered as a typed cancellation.
  EXPECT_EQ(ran.load(std::memory_order_relaxed), 0);
  EXPECT_EQ(s.total_stats().cancelled_jobs, 8u);

  // run() re-arms the flag: the scheduler is reusable after a cancel.
  std::atomic<int> n{0};
  s.run([&](runtime::Worker& w) {
    EXPECT_FALSE(w.cancelled());
    runtime::TaskGroup tg(w);
    for (int i = 0; i < 8; ++i)
      tg.spawn([&](runtime::Worker&) {
        n.fetch_add(1, std::memory_order_relaxed);
      });
    tg.wait();
  });
  EXPECT_EQ(n.load(std::memory_order_relaxed), 8);
}

// ---- dag engine: typed failures and cancellation ---------------------------

TEST(DagEngineResilience, NodeThrowCapturedWithFailedNode) {
  const auto d = dag::chain(60);
  runtime::SchedulerOptions o;
  o.num_workers = 2;
  const auto r = runtime::run_dag(d, o, /*spin_per_node=*/0, CancelToken{},
                                  [](dag::NodeId id) {
                                    if (id == 25)
                                      throw std::runtime_error("node 25 boom");
                                  });
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.status, runtime::DagRunStatus::kNodeFailed);
  EXPECT_EQ(r.failed_node, dag::NodeId{25});
  EXPECT_TRUE(static_cast<bool>(r.error));
  EXPECT_LT(r.executed_nodes, 60u);  // the failed node's children never ran
  EXPECT_THROW(r.rethrow(), std::runtime_error);
  EXPECT_STREQ(runtime::to_string(r.status), "node-failed");
}

TEST(DagEngineResilience, CancelStopsAtNodeBoundaries) {
  CancelSource src;
  const auto d = dag::chain(500);
  runtime::SchedulerOptions o;
  o.num_workers = 2;
  const auto r = runtime::run_dag(d, o, /*spin_per_node=*/0, src.token(),
                                  [&](dag::NodeId id) {
                                    if (id == 20) src.request();
                                  });
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.status, runtime::DagRunStatus::kCancelled);
  EXPECT_EQ(r.cancel_reason, CancelReason::kUser);
  EXPECT_GT(r.executed_nodes, 0u);
  EXPECT_LT(r.executed_nodes, 500u);
  EXPECT_THROW(r.rethrow(), CancelledError);
  EXPECT_STREQ(runtime::to_string(r.status), "cancelled");
}

TEST(DagEngineResilience, CompletedRunRethrowIsNoop) {
  const auto d = dag::chain(10);
  runtime::SchedulerOptions o;
  o.num_workers = 1;
  const auto r = runtime::run_dag(d, o);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.status, runtime::DagRunStatus::kCompleted);
  r.rethrow();  // must not throw
}

// ---- simulator cancellation ------------------------------------------------

TEST(SimResilience, CancelStopsAtRoundBoundary) {
  CancelSource src;
  sched::Options opts;
  opts.seed = 7;
  opts.cancel = src.token();
  opts.after_round = [&](const sched::EngineView& v) {
    if (v.round >= 5) src.request();
  };
  sim::DedicatedKernel kernel(2);
  const auto d = dag::random_series_parallel(3, 4000);
  const auto m = sched::run_work_stealer(d, kernel, opts);
  EXPECT_TRUE(m.cancelled);
  EXPECT_FALSE(m.completed);
  EXPECT_GE(m.length, 5u);
  EXPECT_LT(m.executed_nodes, 4000u);
}

// ---- dynamic membership ----------------------------------------------------

TEST(SchedulerResilience, AddWorkerIdleAndMidRun) {
  runtime::SchedulerOptions o;
  o.num_workers = 1;
  o.resilience.max_workers = 4;
  runtime::Scheduler s(o);
  EXPECT_EQ(s.num_workers(), 1u);
  EXPECT_EQ(s.live_workers(), 1u);
  EXPECT_EQ(s.max_workers(), 4u);

  EXPECT_EQ(s.add_worker(), 1u);  // while idle
  EXPECT_EQ(s.live_workers(), 2u);
  EXPECT_EQ(s.num_workers(), 2u);

  std::atomic<int> n{0};
  s.run([&](runtime::Worker& w) {
    runtime::TaskGroup tg(w);
    for (int i = 0; i < 200; ++i)
      tg.spawn([&](runtime::Worker&) {
        n.fetch_add(1, std::memory_order_relaxed);
      });
    EXPECT_EQ(w.scheduler().add_worker(), 2u);  // mid-run growth
    tg.wait();
  });
  EXPECT_EQ(n.load(std::memory_order_relaxed), 200);
  EXPECT_EQ(s.live_workers(), 3u);
  EXPECT_GE(s.membership_epoch(), 3u);
}

TEST(SchedulerResilience, RetireWorkerShrinksThePool) {
  runtime::SchedulerOptions o;
  o.num_workers = 3;
  runtime::Scheduler s(o);

  EXPECT_FALSE(s.retire_worker(99));  // out of range
  EXPECT_TRUE(s.retire_worker(1));
  EXPECT_TRUE(eventually([&] { return s.live_workers() == 2; }));
  EXPECT_FALSE(s.retire_worker(1));  // already gone

  // The shrunken pool still completes work (the dead slot stays a valid,
  // permanently-empty steal victim).
  std::atomic<int> n{0};
  s.run([&](runtime::Worker& w) {
    runtime::TaskGroup tg(w);
    for (int i = 0; i < 100; ++i)
      tg.spawn([&](runtime::Worker&) {
        n.fetch_add(1, std::memory_order_relaxed);
      });
    tg.wait();
  });
  EXPECT_EQ(n.load(std::memory_order_relaxed), 100);
}

TEST(SchedulerResilience, TotalWorkerLossIsTypedAndRecoverable) {
  runtime::SchedulerOptions o;
  o.num_workers = 1;
  o.resilience.max_workers = 2;
  runtime::Scheduler s(o);

  EXPECT_TRUE(s.retire_worker(0));
  ASSERT_TRUE(eventually([&] { return s.live_workers() == 0; }));

  // No workers: the root provably never runs, and run() says so.
  EXPECT_THROW(s.run([](runtime::Worker&) {}), runtime::AllWorkersLostError);

  // Replenish and the scheduler is whole again.
  s.add_worker();
  EXPECT_EQ(s.live_workers(), 1u);
  std::atomic<int> n{0};
  s.run([&](runtime::Worker&) { n.store(1, std::memory_order_relaxed); });
  EXPECT_EQ(n.load(std::memory_order_relaxed), 1);
}

// ---- graceful shutdown -----------------------------------------------------

TEST(SchedulerResilience, ShutdownIdleDrainsAndStopsFurtherRuns) {
  runtime::SchedulerOptions o;
  o.num_workers = 2;
  runtime::Scheduler s(o);

  const auto rep = s.shutdown(1000ms);
  EXPECT_TRUE(rep.drained);
  EXPECT_FALSE(rep.timed_out);
  EXPECT_EQ(rep.abandoned_jobs, 0u);

  EXPECT_THROW(s.run([](runtime::Worker&) {}), runtime::SchedulerStoppedError);
  EXPECT_THROW(s.add_worker(), runtime::SchedulerStoppedError);
  EXPECT_TRUE(s.shutdown(0ms).drained);  // idempotent
}

TEST(SchedulerResilience, ShutdownDeadlineReportsAbandonedJobs) {
  runtime::SchedulerOptions o;
  o.num_workers = 1;
  runtime::Scheduler s(o);

  std::atomic<bool> sleeping{false};
  std::atomic<int> ran{0};
  bool got_cancelled = false;
  CancelReason reason = CancelReason::kNone;
  std::thread runner([&] {
    try {
      s.run([&](runtime::Worker& w) {
        runtime::TaskGroup tg(w);
        for (int i = 0; i < 8; ++i)
          tg.spawn([&](runtime::Worker&) {
            ran.fetch_add(1, std::memory_order_relaxed);
          });
        // Pushed last = popped first by the single worker: it blocks with
        // the eight quick jobs still queued behind it.
        tg.spawn([&](runtime::Worker&) {
          sleeping.store(true, std::memory_order_release);
          std::this_thread::sleep_for(300ms);
        });
        tg.wait();
      });
    } catch (const CancelledError& e) {
      got_cancelled = true;
      reason = e.reason();
    }
  });

  ASSERT_TRUE(eventually(
      [&] { return sleeping.load(std::memory_order_acquire); }));
  const auto rep = s.shutdown(10ms);  // expires while the sleeper blocks
  EXPECT_TRUE(rep.timed_out);
  EXPECT_FALSE(rep.drained);
  EXPECT_EQ(rep.abandoned_jobs, 8u);  // the queued quick jobs

  runner.join();
  // The abandoned jobs were not lost: cancellation delivered each as a
  // typed error at wait(), which run() rethrew.
  EXPECT_TRUE(got_cancelled);
  EXPECT_EQ(reason, CancelReason::kDeadline);
  EXPECT_EQ(ran.load(std::memory_order_relaxed), 0);
  EXPECT_EQ(s.total_stats().cancelled_jobs, 8u);
}

// ---- watchdog --------------------------------------------------------------

TEST(SchedulerResilience, WatchdogFlagsAStalledWorker) {
  runtime::SchedulerOptions o;
  o.num_workers = 2;
  o.resilience.watchdog = true;
  o.resilience.watchdog_poll_ms = 5;
  o.resilience.stall_deadline_ms = 40;
  runtime::Scheduler s(o);
  EXPECT_EQ(s.stalls_detected(), 0u);

  // The root worker's heartbeat goes quiet while its job blocks — the
  // runtime analogue of the kernel descheduling a process mid-run.
  s.run([](runtime::Worker&) { std::this_thread::sleep_for(200ms); });
  EXPECT_GE(s.stalls_detected(), 1u);
}

// ---- parking ---------------------------------------------------------------

// Lost-wakeup regression, timing form: the waiter parks with a long
// timeout; if the completer's notification could be lost, the run would
// take the full park timeout. (The chaos-stalled-completer variant, which
// injects a stall *inside* the completion window, is in
// test_chaos_resilience.cpp.)
TEST(SchedulerResilience, ParkedWaiterWakesOnCompletionNotTimeout) {
  runtime::SchedulerOptions o;
  o.num_workers = 2;
  o.resilience.park_after_failed_steals = 2;
  o.resilience.park_timeout_us = 5'000'000;  // 5s: a lost wakeup costs this
  runtime::Scheduler s(o);

  std::atomic<bool> started{false};
  const auto t0 = steady_clock::now();
  s.run([&](runtime::Worker& w) {
    runtime::TaskGroup tg(w);
    tg.spawn([&](runtime::Worker&) {
      started.store(true, std::memory_order_release);
      std::this_thread::sleep_for(100ms);
    });
    // Let the other worker steal the job so this one has nothing to do
    // but park.
    eventually([&] { return started.load(std::memory_order_acquire); });
    tg.wait();
  });
  const auto elapsed = steady_clock::now() - t0;

  EXPECT_TRUE(started.load(std::memory_order_acquire));
  EXPECT_GE(s.total_stats().parks, 1u);
  EXPECT_LT(elapsed, 3s) << "waiter woke by timeout, not by notification";
}

// ---- idle-hook accounting and observability --------------------------------

TEST(SchedulerResilience, StealBackoffCompletesAndStatsBalance) {
  runtime::SchedulerOptions o;
  o.num_workers = 4;
  o.resilience.steal_backoff = true;
  runtime::Scheduler s(o);

  std::atomic<int> n{0};
  s.run([&](runtime::Worker& w) {
    runtime::TaskGroup tg(w);
    for (int i = 0; i < 500; ++i)
      tg.spawn([&](runtime::Worker&) {
        n.fetch_add(1, std::memory_order_relaxed);
      });
    tg.wait();
  });
  EXPECT_EQ(n.load(std::memory_order_relaxed), 500);
  const auto t = s.total_stats();
  EXPECT_EQ(t.steal_attempts,
            t.steals + t.steal_cas_failures + t.steal_empty_victim);
}

TEST(SchedulerResilience, StatsJsonCarriesResilienceCounters) {
  runtime::SchedulerOptions o;
  o.num_workers = 2;
  runtime::Scheduler s(o);
  std::atomic<int> n{0};
  s.run([&](runtime::Worker& w) {
    runtime::TaskGroup tg(w);
    for (int i = 0; i < 32; ++i)
      tg.spawn([&](runtime::Worker&) {
        n.fetch_add(1, std::memory_order_relaxed);
      });
    tg.wait();
  });

  const std::string json = s.stats_json();
  std::string err;
  EXPECT_TRUE(obs::json_validate(json, &err)) << err;
  for (const char* key :
       {"live_workers", "membership_epoch", "stalls_detected",
        "cancelled_jobs", "parks", "alloc_fail_inline_runs",
        "backoff_yields"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
}

}  // namespace
}  // namespace abp
