// The online work/span profiler (ISSUE 6 tentpole): the span folded along
// real enabling/steal/join edges must reproduce the static DAG answer
// where one exists (dag engine, simulator), and satisfy the defining
// work/span algebra where it does not (dynamic fork-join scheduler).

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "dag/builders.hpp"
#include "obs/export.hpp"
#include "runtime/dag_engine.hpp"
#include "runtime/scheduler.hpp"
#include "sched/work_stealer.hpp"
#include "sim/kernel.hpp"

namespace {

using namespace abp;

// ---- dag engine (real threads): measured == static -----------------------

void expect_dag_span_exact(const dag::Dag& d, std::size_t workers) {
  runtime::SchedulerOptions opts;
  opts.num_workers = workers;
  const runtime::DagRunResult r = runtime::run_dag(d, opts);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.measured_work_nodes, d.work());
  // >= is the acceptance bound (a lost fold would show up as <); on a
  // completed run the fold is exact, so == is the real invariant.
  EXPECT_GE(r.measured_span_nodes, d.critical_path_length());
  EXPECT_EQ(r.measured_span_nodes, d.critical_path_length());
}

TEST(DagEngineSpan, Figure1MatchesStatic) {
  expect_dag_span_exact(dag::figure1(), 1);
  expect_dag_span_exact(dag::figure1(), 3);
}

TEST(DagEngineSpan, ChainIsAllSpan) {
  const auto d = dag::chain(300);
  expect_dag_span_exact(d, 2);
  runtime::SchedulerOptions opts;
  opts.num_workers = 2;
  const auto r = runtime::run_dag(d, opts);
  EXPECT_EQ(r.measured_span_nodes, r.measured_work_nodes);  // serial dag
}

TEST(DagEngineSpan, TreesGridsAndRandomSeriesParallel) {
  expect_dag_span_exact(dag::fork_join_tree(8), 4);
  expect_dag_span_exact(dag::grid_wavefront(17, 9), 4);
  expect_dag_span_exact(dag::random_series_parallel(7, 900), 3);
  expect_dag_span_exact(dag::wide(64, 3), 4);
  expect_dag_span_exact(dag::imbalanced_tree(9), 4);
}

TEST(DagEngineSpan, RepeatedRunsStayExact) {
  // The fold races with concurrent enablers; repeat to shake out a lost
  // CAS-max (any loss shows as measured < static on some run).
  const auto d = dag::random_series_parallel(3, 600);
  for (int i = 0; i < 10; ++i) expect_dag_span_exact(d, 4);
}

// ---- simulator: measured == static over every discipline -----------------

TEST(SimulatorSpan, MatchesCriticalPathAcrossPolicies) {
  std::vector<dag::Dag> dags;
  dags.push_back(dag::fib_dag(11));
  dags.push_back(dag::chain(64));
  dags.push_back(dag::grid_wavefront(9, 9));
  for (const dag::Dag& d : dags) {
    for (const std::size_t p : {1u, 4u}) {
      sim::DedicatedKernel k(p);
      sched::Options opts;
      const sched::RunMetrics m = sched::run_work_stealer(d, k, opts);
      ASSERT_TRUE(m.completed);
      EXPECT_EQ(m.measured_span_nodes, d.critical_path_length());
    }
  }
}

TEST(SimulatorSpan, StealHalfKeepsSpanExact) {
  const auto d = dag::fib_dag(12);
  sim::DedicatedKernel k(6);
  sched::Options opts;
  opts.steal = sched::StealKind::kStealHalf;
  const auto m = sched::run_work_stealer(d, k, opts);
  ASSERT_TRUE(m.completed);
  EXPECT_EQ(m.measured_span_nodes, d.critical_path_length());
}

// ---- dynamic fork-join scheduler: cycle-unit span algebra ----------------

#if ABP_TRACE_ENABLED

void spawn_tree(runtime::Worker& w, int depth) {
  if (depth == 0) return;
  runtime::TaskGroup tg(w);
  tg.spawn([depth](runtime::Worker& w2) { spawn_tree(w2, depth - 1); });
  spawn_tree(w, depth - 1);
  tg.wait();
}

TEST(SchedulerSpan, ProfileSatisfiesWorkSpanAlgebra) {
  runtime::SchedulerOptions opts;
  opts.num_workers = 4;
  runtime::Scheduler sched(opts);
  sched.run([](runtime::Worker& w) { spawn_tree(w, 10); });
  const obs::SpanProfile prof = sched.span_profile();
  EXPECT_GT(prof.tasks, 0u);
  EXPECT_GT(prof.t1_ticks, 0u);
  EXPECT_GT(prof.tinf_ticks, 0u);
  // The longest chain cannot exceed the total work: join waiters freeze
  // their span clock while spinning, so idle time never inflates Tinf.
  EXPECT_LE(prof.tinf_ticks, prof.t1_ticks);
  EXPECT_GE(prof.parallelism(), 1.0);
}

TEST(SchedulerSpan, SerialRunHasSpanCloseToWork) {
  // One worker executing a pure chain of dependent tasks: every cycle of
  // self work lies on the single chain, so Tinf == T1 exactly (the same
  // clock readings feed both sums).
  runtime::SchedulerOptions opts;
  opts.num_workers = 1;
  runtime::Scheduler sched(opts);
  sched.run([](runtime::Worker& w) { spawn_tree(w, 8); });
  const obs::SpanProfile prof = sched.span_profile();
  EXPECT_GT(prof.tinf_ticks, 0u);
  EXPECT_LE(prof.tinf_ticks, prof.t1_ticks);
}

TEST(SchedulerSpan, ResetStatsClearsProfile) {
  runtime::SchedulerOptions opts;
  opts.num_workers = 2;
  runtime::Scheduler sched(opts);
  sched.run([](runtime::Worker& w) { spawn_tree(w, 8); });
  ASSERT_GT(sched.span_profile().tinf_ticks, 0u);
  sched.reset_stats();
  const obs::SpanProfile prof = sched.span_profile();
  EXPECT_EQ(prof.t1_ticks, 0u);
  EXPECT_EQ(prof.tinf_ticks, 0u);
  EXPECT_EQ(prof.tasks, 0u);
  // The plane comes back after the next run.
  sched.run([](runtime::Worker& w) { spawn_tree(w, 6); });
  EXPECT_GT(sched.span_profile().tinf_ticks, 0u);
}

TEST(SchedulerSpan, ProvenanceIdsAreUniquePerWorker) {
  // Provenance IDs are (worker << 48) | seq; two spawns never collide.
  const std::uint64_t a = obs::make_provenance_id(3, 1);
  const std::uint64_t b = obs::make_provenance_id(3, 2);
  const std::uint64_t c = obs::make_provenance_id(4, 1);
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(obs::provenance_worker(a), 3u);
  EXPECT_EQ(obs::provenance_seq(b), 2u);
}

TEST(SchedulerSpan, StealProvenanceSumsMatchStealCount) {
  runtime::SchedulerOptions opts;
  opts.num_workers = 4;
  opts.locality_domain_size = 2;
  runtime::Scheduler sched(opts);
  sched.run([](runtime::Worker& w) { spawn_tree(w, 12); });
  const std::string doc = sched.steal_provenance_json();
  std::string err;
  ASSERT_TRUE(obs::json_validate(doc, &err)) << err;
  // total_steals in the document equals the counter plane's steals: both
  // count the same kSuccess events.
  const auto at = doc.find("\"total_steals\":");
  ASSERT_NE(at, std::string::npos) << doc;
  const std::uint64_t total = std::strtoull(
      doc.c_str() + at + sizeof("\"total_steals\":") - 1, nullptr, 10);
  EXPECT_EQ(total, sched.total_stats().steals);
}

#endif  // ABP_TRACE_ENABLED

}  // namespace
