// Chaos injection against the real scheduler (ISSUE satellite 2): a gate
// policy that deterministically forces both popTop failure modes, the
// WorkerStats partition invariant under injected contention, and a sim
// kernel schedule replayed against the std::thread runtime.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>

#include "chaos/chaos.hpp"
#include "chaos/kernel_replay.hpp"
#include "chaos/policy.hpp"
#include "deque/abp_deque.hpp"
#include "deque/pop_top.hpp"
#include "runtime/scheduler.hpp"
#include "sim/kernel.hpp"
#include "sim/profile.hpp"

namespace abp {
namespace {

static_assert(ABP_CHAOS_ENABLED,
              "the chaos suite requires -DABP_CHAOS=ON (see CMakeLists)");

long serial_fib(int n) {
  return n < 2 ? n : serial_fib(n - 1) + serial_fib(n - 2);
}

void parallel_fib(runtime::Worker& w, int n, long& out) {
  if (n < 10) {
    out = serial_fib(n);
    return;
  }
  long a = 0, b = 0;
  runtime::TaskGroup tg(w);
  tg.spawn([&a, n](runtime::Worker& w2) { parallel_fib(w2, n - 1, a); });
  parallel_fib(w, n - 2, b);
  tg.wait();
  out = a + b;
}

// Parks the first thread that crosses the stalled-thief window
// ("deque.poptop.pre_cas") until released; every other crossing passes.
// decide() may block by contract (chaos.hpp), which is what makes the
// kLostRace/kEmpty sequence below deterministic instead of probabilistic.
class GatePolicy final : public chaos::Policy {
 public:
  std::atomic<bool> thief_parked{false};
  std::atomic<bool> release{false};

  chaos::Decision decide(chaos::PointId point, std::uint64_t,
                         std::uint64_t, Xoshiro256&) override {
    const chaos::PointId target = chaos::find_point("deque.poptop.pre_cas");
    if (target == chaos::kInvalidPoint || point != target) return {};
    if (parked_once_.exchange(true)) return {};
    thief_parked.store(true, std::memory_order_release);
    while (!release.load(std::memory_order_acquire))
      std::this_thread::yield();
    return {};
  }

  const char* name() const noexcept override { return "gate(pre_cas)"; }

 private:
  std::atomic<bool> parked_once_{false};
};

// Deterministic reproduction of both popTop failure modes — the two
// buckets WorkerStats splits failed steals into. The gate holds a thief
// between its read of `age` and its CAS; the main thread then takes the
// item, so the thief's CAS must fail (kLostRace) and its retry must find
// the deque empty (kEmpty).
TEST(ChaosGate, ForcesLostRaceThenEmpty) {
  auto gate = std::make_shared<GatePolicy>();
  chaos::ChaosScope scope(gate, 1);

  deque::AbpDeque<std::uint32_t> dq(8);
  dq.push_bottom(7);

  deque::PopTopResult<std::uint32_t> first{}, second{};
  std::thread thief([&] {
    first = dq.pop_top_ex();
    second = dq.pop_top_ex();
  });

  while (!gate->thief_parked.load(std::memory_order_acquire))
    std::this_thread::yield();
  // The thief has read (tag, top) and the item but has not CASed. Steal
  // the item out from under it.
  const auto mine = dq.pop_top_ex();
  ASSERT_EQ(mine.status, deque::PopTopStatus::kSuccess);
  ASSERT_TRUE(mine.item.has_value());
  EXPECT_EQ(*mine.item, 7u);
  gate->release.store(true, std::memory_order_release);
  thief.join();

  EXPECT_EQ(first.status, deque::PopTopStatus::kLostRace);
  EXPECT_FALSE(first.item.has_value());
  EXPECT_EQ(second.status, deque::PopTopStatus::kEmpty);
  EXPECT_FALSE(second.item.has_value());
}

// Stalls every thief in the chosen-victim window ("sched.steal.pre_poptop"
// — a point every non-self steal attempt crosses no matter what the victim
// holds; the deeper deque.poptop.pre_cas window is only reached when a
// victim happens to be non-empty) and additionally yields the running
// owner's timeslice at every popBottom. The handoff matters on a 1-CPU
// host: without it the root worker can finish the whole computation before
// the OS ever schedules the other workers, leaving the steal path
// uncrossed (observed: fib(24) done in 3 ms with steal_attempts == 0).
class StallAndHandoffPolicy final : public chaos::Policy {
 public:
  chaos::Decision decide(chaos::PointId point, std::uint64_t, std::uint64_t,
                         Xoshiro256&) override {
    if (is(point, "sched.steal.pre_poptop")) return {chaos::Action::kYield, 8};
    if (is(point, "deque.popbottom.post_bot_store"))
      return {chaos::Action::kYield, 1};
    return {};
  }

  const char* name() const noexcept override { return "stall+handoff"; }

 private:
  static bool is(chaos::PointId point, const char* name) {
    const chaos::PointId id = chaos::find_point(name);
    return id != chaos::kInvalidPoint && point == id;
  }
};

// The partition invariant under injected contention: every failed steal
// lands in exactly one of the two failure buckets, so the totals balance
// exactly even while every thief is stalled between choosing a victim and
// issuing its popTop.
TEST(ChaosScheduler, StealCountersPartitionUnderInjection) {
  chaos::ChaosScope scope(std::make_shared<StallAndHandoffPolicy>(), 3);

  runtime::SchedulerOptions o;
  o.num_workers = 4;
  runtime::Scheduler s(o);
  long fib = 0;
  s.run([&](runtime::Worker& w) { parallel_fib(w, 24, fib); });
  EXPECT_EQ(fib, serial_fib(24));

  const runtime::WorkerStats t = s.total_stats();
  EXPECT_EQ(t.steal_attempts,
            t.steals + t.steal_cas_failures + t.steal_empty_victim);
  EXPECT_GT(t.steal_attempts, 0u);
  EXPECT_GT(t.steal_empty_victim, 0u);
  // The targeted point both fired and injected; untargeted points did not.
  EXPECT_GT(chaos::hits_at("sched.steal.pre_poptop"), 0u);
  EXPECT_GT(chaos::injections_at("sched.steal.pre_poptop"), 0u);
  EXPECT_EQ(chaos::injections_at("sched.loop.steal_iter"), 0u);
}

// Same invariant under the benign adversary, with injections landing on
// the scheduler-loop points too.
TEST(ChaosScheduler, StealCountersPartitionUnderRandomChaos) {
  chaos::RandomPolicy::Config pcfg;
  pcfg.p_inject = 0.10;
  chaos::ChaosScope scope(std::make_shared<chaos::RandomPolicy>(pcfg), 11);

  runtime::SchedulerOptions o;
  o.num_workers = 3;
  runtime::Scheduler s(o);
  long fib = 0;
  s.run([&](runtime::Worker& w) { parallel_fib(w, 20, fib); });
  EXPECT_EQ(fib, serial_fib(20));

  const runtime::WorkerStats t = s.total_stats();
  EXPECT_EQ(t.steal_attempts,
            t.steals + t.steal_cas_failures + t.steal_empty_victim);
  EXPECT_GT(chaos::hits_at("sched.loop.steal_iter"), 0u);
  EXPECT_GT(chaos::hits_at("sched.loop.pre_yield"), 0u);
}

// An oblivious kernel schedule captured from src/sim and replayed against
// the real runtime: workers denied a processor in the current replay round
// are forced to yield at every injection point they cross, yet the
// computation still completes and the stats still balance — the
// non-blocking property under the §4.4 oblivious adversary, end to end.
TEST(ChaosScheduler, ObliviousKernelReplayAgainstRealRuntime) {
  sim::ObliviousKernel kernel(4, sim::periodic_profile(3, 4, 1, 3), 5);
  auto policy = chaos::make_kernel_replay(kernel, /*rounds=*/256,
                                          /*hits_per_round=*/128);
  chaos::ChaosScope scope(policy, 17);

  runtime::SchedulerOptions o;
  o.num_workers = 4;
  runtime::Scheduler s(o);
  long fib = 0;
  s.run([&](runtime::Worker& w) { parallel_fib(w, 22, fib); });
  EXPECT_EQ(fib, serial_fib(22));

  const runtime::WorkerStats t = s.total_stats();
  EXPECT_EQ(t.steal_attempts,
            t.steals + t.steal_cas_failures + t.steal_empty_victim);
  EXPECT_GT(policy->rounds_replayed(), 0u);
}

// Every deque policy of the real runtime completes a fork-join workload
// under random chaos — the non-blocking claim does not depend on which
// deque backs the workers, only the blocking ones get slower.
TEST(ChaosScheduler, AllDequePoliciesCompleteUnderChaos) {
  for (const auto policy :
       {runtime::DequePolicy::kAbp, runtime::DequePolicy::kAbpGrowable,
        runtime::DequePolicy::kChaseLev, runtime::DequePolicy::kSplit,
        runtime::DequePolicy::kMutex, runtime::DequePolicy::kSpinlock}) {
    chaos::RandomPolicy::Config pcfg;
    pcfg.p_inject = 0.05;
    chaos::ChaosScope scope(std::make_shared<chaos::RandomPolicy>(pcfg), 23);
    runtime::SchedulerOptions o;
    o.num_workers = 3;
    o.deque = policy;
    runtime::Scheduler s(o);
    long fib = 0;
    s.run([&](runtime::Worker& w) { parallel_fib(w, 19, fib); });
    EXPECT_EQ(fib, serial_fib(19)) << to_string(policy);
  }
}

#if ABP_TRACE_ENABLED

// ---- span profile under chaos (ISSUE 6 satellite) ------------------------
//
// The online span DAG is folded across steal and join edges; the two
// kernel-adversary faults must not corrupt it: a suspension parks a worker
// mid-steal with its span clock frozen at the join/idle baseline, and a
// kill at the job boundary removes a worker that provably holds no chain
// segment. Either way the measured profile must keep satisfying
// 0 < Tinf <= T1 and the run's answer must stay exact.

TEST(ChaosSpan, SuspendMidStealKeepsSpanProfileSane) {
  chaos::WorkerSuspendPolicy::Config cfg;
  cfg.point = "sched.loop.steal_iter";
  cfg.p_suspend = 0.5;  // aggressive: short runs cross the point rarely
  cfg.min_us = 1;
  cfg.max_us = 200;
  auto policy = std::make_shared<chaos::WorkerSuspendPolicy>(cfg);
  chaos::ChaosScope scope(policy, 0x5ba7u);

  runtime::SchedulerOptions o;
  o.num_workers = 4;
  runtime::Scheduler s(o);
  // Keep running rounds until the adversary has landed at least a few
  // mid-steal suspensions (a fast round may see no thief iterations).
  for (int r = 0; r < 50 && policy->suspensions() < 3; ++r) {
    long fib = 0;
    s.run([&](runtime::Worker& w) { parallel_fib(w, 21, fib); });
    ASSERT_EQ(fib, serial_fib(21)) << "round " << r;
  }
  EXPECT_GT(policy->suspensions(), 0u);

  const obs::SpanProfile prof = s.span_profile();
  EXPECT_GT(prof.tinf_ticks, 0u);
  EXPECT_GT(prof.tasks, 0u);
  // Suspension time is idle time, not chain time: a parked thief's span
  // clock is frozen, so Tinf cannot be inflated past T1 by the adversary.
  EXPECT_LE(prof.tinf_ticks, prof.t1_ticks);
}

TEST(ChaosSpan, KillMidRunKeepsSpanDagUncorrupted) {
  runtime::SchedulerOptions o;
  o.num_workers = 3;
  o.resilience.max_workers = 6;
  runtime::Scheduler s(o);

  std::uint64_t total_kills = 0;
  for (std::size_t r = 0; r < 24; ++r) {
    chaos::WorkerKillPolicy::Config cfg;
    cfg.p_kill = 0.2;
    cfg.max_kills = 1;  // survivors always outnumber the dead
    auto policy = std::make_shared<chaos::WorkerKillPolicy>(cfg);
    {
      chaos::ChaosScope scope(policy, 0x4b11u + r);
      long fib = 0;
      s.run([&](runtime::Worker& w) { parallel_fib(w, 20, fib); });
      ASSERT_EQ(fib, serial_fib(20)) << "round " << r;
    }
    total_kills += policy->kills();

    // The dead worker folded every completed job's path before the fatal
    // boundary and held no chain segment at it, so the profile stays a
    // valid work/span pair every round.
    const obs::SpanProfile prof = s.span_profile();
    EXPECT_GT(prof.tinf_ticks, 0u) << "round " << r;
    EXPECT_LE(prof.tinf_ticks, prof.t1_ticks) << "round " << r;
    const runtime::WorkerStats t = s.total_stats();
    EXPECT_EQ(t.steal_attempts,
              t.steals + t.steal_cas_failures + t.steal_empty_victim)
        << "round " << r;
    while (s.live_workers() < 3) s.add_worker();
  }
  EXPECT_GT(total_kills, 0u);
}

#endif  // ABP_TRACE_ENABLED

}  // namespace
}  // namespace abp
