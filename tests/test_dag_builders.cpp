// Tests for the dag builders: every family must satisfy the paper's
// structural assumptions, and the closed-form work / critical-path measures
// must hold.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "dag/builders.hpp"

namespace abp::dag {
namespace {

// ---- Figure 1 reconstruction ----------------------------------------------

TEST(Figure1, MatchesPaperMeasures) {
  const Dag d = figure1();
  EXPECT_TRUE(d.is_valid()) << d.validate();
  EXPECT_EQ(d.work(), 11u);
  EXPECT_EQ(d.critical_path_length(), 8u);
  EXPECT_EQ(d.num_threads(), 2u);
  EXPECT_NEAR(d.parallelism(), 11.0 / 8.0, 1e-12);
}

TEST(Figure1, RootAndFinal) {
  const Dag d = figure1();
  EXPECT_EQ(d.root(), 0u);    // v1
  EXPECT_EQ(d.final_node(), 10u);  // v11
}

TEST(Figure1, SemaphoreEdgePresent) {
  // v4 (signal) -> v8 (wait); ids are label-1.
  const Dag d = figure1();
  bool found = false;
  for (const Edge& e : d.edges())
    if (e.kind == EdgeKind::kSync) {
      EXPECT_EQ(e.from, 3u);
      EXPECT_EQ(e.to, 7u);
      found = true;
    }
  EXPECT_TRUE(found);
}

TEST(Figure1, JoinEnablesBlockedRoot) {
  // The join edge v5 -> v11 realizes the "enable and die simultaneously"
  // walkthrough of §3.1.
  const Dag d = figure1();
  bool found = false;
  for (const Edge& e : d.edges())
    if (e.kind == EdgeKind::kJoin) {
      EXPECT_EQ(e.from, 4u);
      EXPECT_EQ(e.to, 10u);
      found = true;
    }
  EXPECT_TRUE(found);
}

// ---- family-wide structural properties -------------------------------------

struct Family {
  std::string name;
  std::function<Dag()> build;
};

class BuilderFamilies : public ::testing::TestWithParam<Family> {};

TEST_P(BuilderFamilies, SatisfiesStructuralAssumptions) {
  const Dag d = GetParam().build();
  EXPECT_TRUE(d.is_valid()) << d.validate();
  for (NodeId n = 0; n < d.num_nodes(); ++n)
    EXPECT_LE(d.out_degree(n), 2u);
}

TEST_P(BuilderFamilies, ParallelismAtLeastOne) {
  const Dag d = GetParam().build();
  EXPECT_GE(d.parallelism(), 1.0);
  EXPECT_LE(d.critical_path_length(), d.work());
}

TEST_P(BuilderFamilies, ContinuationEdgesStayWithinThread) {
  const Dag d = GetParam().build();
  for (const Edge& e : d.edges()) {
    if (e.kind == EdgeKind::kContinue) {
      EXPECT_EQ(d.thread_of(e.from), d.thread_of(e.to));
    }
    if (e.kind == EdgeKind::kSpawn) {
      EXPECT_NE(d.thread_of(e.from), d.thread_of(e.to));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, BuilderFamilies,
    ::testing::Values(
        Family{"figure1", [] { return figure1(); }},
        Family{"chain1", [] { return chain(1); }},
        Family{"chain64", [] { return chain(64); }},
        Family{"fjt0", [] { return fork_join_tree(0); }},
        Family{"fjt1", [] { return fork_join_tree(1); }},
        Family{"fjt5", [] { return fork_join_tree(5, 3); }},
        Family{"fib1", [] { return fib_dag(1); }},
        Family{"fib7", [] { return fib_dag(7); }},
        Family{"fib12", [] { return fib_dag(12); }},
        Family{"wide1", [] { return wide(1); }},
        Family{"wide17", [] { return wide(17, 5); }},
        Family{"grid1x1", [] { return grid_wavefront(1, 1); }},
        Family{"grid1x9", [] { return grid_wavefront(1, 9); }},
        Family{"grid9x1", [] { return grid_wavefront(9, 1); }},
        Family{"grid8x13", [] { return grid_wavefront(8, 13); }},
        Family{"sp_small", [] { return random_series_parallel(1, 10); }},
        Family{"sp_medium", [] { return random_series_parallel(2, 400); }},
        Family{"sp_large", [] { return random_series_parallel(3, 5000); }},
        Family{"imb0", [] { return imbalanced_tree(0); }},
        Family{"imb8", [] { return imbalanced_tree(8); }},
        Family{"kary2d4", [] { return full_kary_tree(2, 4); }},
        Family{"kary3d3", [] { return full_kary_tree(3, 3, 2); }},
        Family{"kary4d2", [] { return full_kary_tree(4, 2, 3); }},
        Family{"cat1", [] { return caterpillar_tree(1); }},
        Family{"cat12x3", [] { return caterpillar_tree(12, 3); }},
        Family{"rrt1", [] { return random_rooted_tree(5, 1); }},
        Family{"rrt50", [] { return random_rooted_tree(5, 50); }},
        Family{"rrt1200", [] { return random_rooted_tree(9, 1200, 4); }}),
    [](const auto& info) { return info.param.name; });

// The full structural property set every builder family must satisfy
// (ISSUE PR 7, satellite 2): exactly one root, acyclicity, and in-degrees
// consistent with the edge list the scheduler's enabling logic consumes.
TEST_P(BuilderFamilies, RootedAcyclicAndDegreeConsistent) {
  const Dag d = GetParam().build();
  // Recompute in/out degrees from the edge list; they must match the
  // per-node counters the engines decrement.
  std::vector<unsigned> in(d.num_nodes(), 0), out(d.num_nodes(), 0);
  for (const Edge& e : d.edges()) {
    ++in[e.to];
    ++out[e.from];
  }
  std::size_t roots = 0, finals = 0;
  for (NodeId n = 0; n < d.num_nodes(); ++n) {
    EXPECT_EQ(in[n], d.in_degree(n)) << "node " << n;
    EXPECT_EQ(out[n], d.out_degree(n)) << "node " << n;
    if (in[n] == 0) ++roots;
    if (out[n] == 0) ++finals;
  }
  EXPECT_EQ(roots, 1u);
  EXPECT_EQ(finals, 1u);
  EXPECT_EQ(d.in_degree(d.root()), 0u);
  EXPECT_EQ(d.out_degree(d.final_node()), 0u);
  // Acyclic: Kahn's algorithm orders every node.
  EXPECT_EQ(d.topological_order().size(), d.num_nodes());
}

// ---- closed-form measures ---------------------------------------------------

TEST(ForkJoinTree, NodeCountRecurrence) {
  // depth d internal thread contributes 4 nodes; leaves contribute
  // leaf_work; N(d) = 4*(2^d - 1) + leaf_work * 2^d.
  for (unsigned depth : {0u, 1u, 2u, 3u, 6u}) {
    for (std::size_t leaf : {1u, 4u}) {
      const Dag d = fork_join_tree(depth, leaf);
      const std::size_t internal = (1u << depth) - 1;
      EXPECT_EQ(d.work(), 4 * internal + leaf * (1u << depth))
          << "depth=" << depth << " leaf=" << leaf;
    }
  }
}

TEST(ForkJoinTree, CriticalPathLinearInDepth) {
  // Longest path goes: s1 (spawn) into left subtree recursively, out to j1,
  // j2: per level adds 3 nodes down plus... verified empirically to be
  // 3*depth + leaf_work + depth (join chain) = 4*depth-ish; assert
  // monotone growth and exact small cases.
  EXPECT_EQ(fork_join_tree(0, 1).critical_path_length(), 1u);
  EXPECT_EQ(fork_join_tree(0, 7).critical_path_length(), 7u);
  std::size_t prev = 0;
  for (unsigned depth = 0; depth <= 6; ++depth) {
    const std::size_t cp = fork_join_tree(depth, 1).critical_path_length();
    EXPECT_GT(cp, prev);
    prev = cp;
  }
}

TEST(FibDag, WorkRecurrence) {
  // W(n) = W(n-1) + W(n-2) + 4 for n >= 2, W(0) = W(1) = 1.
  std::vector<std::size_t> w{1, 1};
  for (unsigned n = 2; n <= 14; ++n) w.push_back(w[n - 1] + w[n - 2] + 4);
  for (unsigned n = 0; n <= 14; ++n)
    EXPECT_EQ(fib_dag(n).work(), w[n]) << "n=" << n;
}

TEST(FibDag, CriticalPathRecurrence) {
  // The longest chain follows the fib(n-1) spawn: node s1, the subtree,
  // then j1, j2: C(n) = C(n-1) + 3 (s1 + subtree + j1 + j2 minus overlap);
  // validated against the dag computation for small n, then used as a
  // regression for larger n.
  std::vector<std::size_t> measured;
  for (unsigned n = 0; n <= 12; ++n)
    measured.push_back(fib_dag(n).critical_path_length());
  EXPECT_EQ(measured[0], 1u);
  EXPECT_EQ(measured[1], 1u);
  for (unsigned n = 3; n <= 12; ++n)
    EXPECT_EQ(measured[n], measured[n - 1] + 3) << "n=" << n;
}

TEST(Wide, Measures) {
  for (std::size_t width : {1u, 2u, 9u, 33u}) {
    for (std::size_t len : {1u, 6u}) {
      const Dag d = wide(width, len);
      EXPECT_EQ(d.work(), 2 * width + width * len);
      // Longest path: spawner spine to last spawner (width), its strand
      // (len), then join chain from j_width... the strand i=width-1 exits
      // into j_{width-1}, path = width + len + (width - (width-1)) ... use
      // the dominant form: width + len + 1 <= cp <= width + len + width.
      const std::size_t cp = d.critical_path_length();
      EXPECT_GE(cp, width + len);
      EXPECT_LE(cp, 2 * width + len);
    }
  }
}

TEST(GridWavefront, Measures) {
  for (std::size_t rows : {1u, 2u, 7u}) {
    for (std::size_t cols : {1u, 3u, 11u}) {
      const Dag d = grid_wavefront(rows, cols);
      EXPECT_EQ(d.work(), rows * cols);
      EXPECT_EQ(d.critical_path_length(), rows + cols - 1)
          << rows << "x" << cols;
    }
  }
}

TEST(RandomSeriesParallel, SizeNearTarget) {
  for (std::size_t target : {1u, 8u, 100u, 1000u}) {
    const Dag d = random_series_parallel(77, target);
    EXPECT_GE(d.work(), target / 2);
    EXPECT_LE(d.work(), target * 2);
  }
}

TEST(RandomSeriesParallel, DeterministicInSeed) {
  const Dag a = random_series_parallel(123, 500);
  const Dag b = random_series_parallel(123, 500);
  EXPECT_EQ(a.num_nodes(), b.num_nodes());
  EXPECT_EQ(a.num_edges(), b.num_edges());
  EXPECT_EQ(a.critical_path_length(), b.critical_path_length());
  const Dag c = random_series_parallel(124, 500);
  // Different seed: almost surely a different shape.
  EXPECT_TRUE(c.num_edges() != a.num_edges() ||
              c.critical_path_length() != a.critical_path_length());
}

}  // namespace
}  // namespace abp::dag

namespace abp::dag {
namespace {

TEST(ImbalancedTree, ValidAndSkewed) {
  for (unsigned depth : {0u, 1u, 3u, 8u}) {
    const Dag d = imbalanced_tree(depth, 2);
    EXPECT_TRUE(d.is_valid()) << "depth=" << depth << ": " << d.validate();
  }
  // Work grows super-linearly in depth but slower than a full binary tree.
  const std::size_t full = fork_join_tree(10).work();
  const std::size_t skew = imbalanced_tree(10).work();
  EXPECT_LT(skew, full);
  EXPECT_GT(skew, fork_join_tree(5).work());
}

TEST(ImbalancedTree, DeeperThanBalancedForSameDepthParam) {
  // The heavy path contributes ~4 nodes of critical path per level.
  EXPECT_GT(imbalanced_tree(10).critical_path_length(),
            imbalanced_tree(5).critical_path_length());
}

// ---- rooted-tree families (ISSUE PR 7) -------------------------------------

TEST(FullKaryTree, NodeCountClosedForm) {
  // Internal thread at each of the (k^d - 1)/(k - 1) internal positions
  // contributes 2k nodes (spawn + join spines); each of the k^d leaves
  // contributes leaf_work: N = 2k*(k^d - 1)/(k - 1) + leaf_work * k^d.
  for (unsigned k : {2u, 3u, 4u}) {
    for (unsigned depth : {0u, 1u, 2u, 3u}) {
      for (std::size_t leaf : {1u, 3u}) {
        const Dag d = full_kary_tree(k, depth, leaf);
        std::size_t kd = 1;
        for (unsigned i = 0; i < depth; ++i) kd *= k;
        const std::size_t internal = (kd - 1) / (k - 1);
        EXPECT_EQ(d.work(), 2 * k * internal + leaf * kd)
            << "k=" << k << " depth=" << depth << " leaf=" << leaf;
      }
    }
  }
}

TEST(FullKaryTree, CriticalPathGrowsLinearlyInDepth) {
  // Each internal level adds a constant number of spine nodes to the
  // longest chain, so cp(depth+1) - cp(depth) is a positive constant.
  const std::size_t d1 = full_kary_tree(3, 1).critical_path_length();
  const std::size_t d2 = full_kary_tree(3, 2).critical_path_length();
  const std::size_t d3 = full_kary_tree(3, 3).critical_path_length();
  const std::size_t d4 = full_kary_tree(3, 4).critical_path_length();
  EXPECT_GT(d2, d1);
  EXPECT_EQ(d3 - d2, d2 - d1);
  EXPECT_EQ(d4 - d3, d3 - d2);
}

TEST(CaterpillarTree, Measures) {
  // Work = spine * (body + join + leg_len). The longest path either stays
  // on the spine thread (body chain then join chain, 2*spine nodes) or
  // detours through one leg (any leg gives spine + leg_len + 1):
  // cp = spine + max(spine, leg_len + 1). The shape is deliberately
  // parallelism-starved — that is its role in the steal-bound suite.
  for (std::size_t spine : {1u, 2u, 13u, 40u}) {
    for (std::size_t leg : {1u, 3u, 6u}) {
      const Dag d = caterpillar_tree(spine, leg);
      EXPECT_EQ(d.work(), spine * (2 + leg)) << spine << "x" << leg;
      EXPECT_EQ(d.critical_path_length(), spine + std::max(spine, leg + 1))
          << spine << "x" << leg;
    }
  }
  // O(1) available parallelism regardless of spine length.
  EXPECT_LT(caterpillar_tree(60, 1).parallelism(), 3.0);
}

TEST(RandomRootedTree, SpendsItsNodeBudgetExactly) {
  for (std::size_t target : {1u, 2u, 3u, 5u, 17u, 50u, 500u, 1500u}) {
    for (std::uint64_t seed : {1u, 7u, 42u}) {
      const Dag d = random_rooted_tree(seed, target);
      EXPECT_EQ(d.num_nodes(), target) << "seed=" << seed;
      EXPECT_TRUE(d.is_valid()) << d.validate();
    }
  }
}

TEST(RandomRootedTree, DeterministicInSeed) {
  const Dag a = random_rooted_tree(321, 700, 4);
  const Dag b = random_rooted_tree(321, 700, 4);
  EXPECT_EQ(a.num_nodes(), b.num_nodes());
  EXPECT_EQ(a.num_edges(), b.num_edges());
  EXPECT_EQ(a.critical_path_length(), b.critical_path_length());
  const Dag c = random_rooted_tree(322, 700, 4);
  EXPECT_TRUE(c.num_edges() != a.num_edges() ||
              c.critical_path_length() != a.critical_path_length());
}

TEST(RandomRootedTree, MaxBranchOneDegeneratesTowardsChains) {
  // max_branch = 1 forces unary branching: far less parallelism than the
  // default branching at the same size.
  const Dag narrow = random_rooted_tree(11, 600, 1);
  const Dag bushy = random_rooted_tree(11, 600, 4);
  EXPECT_LT(narrow.parallelism(), bushy.parallelism());
}

}  // namespace
}  // namespace abp::dag
