// Tests for the dag builders: every family must satisfy the paper's
// structural assumptions, and the closed-form work / critical-path measures
// must hold.

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "dag/builders.hpp"

namespace abp::dag {
namespace {

// ---- Figure 1 reconstruction ----------------------------------------------

TEST(Figure1, MatchesPaperMeasures) {
  const Dag d = figure1();
  EXPECT_TRUE(d.is_valid()) << d.validate();
  EXPECT_EQ(d.work(), 11u);
  EXPECT_EQ(d.critical_path_length(), 8u);
  EXPECT_EQ(d.num_threads(), 2u);
  EXPECT_NEAR(d.parallelism(), 11.0 / 8.0, 1e-12);
}

TEST(Figure1, RootAndFinal) {
  const Dag d = figure1();
  EXPECT_EQ(d.root(), 0u);    // v1
  EXPECT_EQ(d.final_node(), 10u);  // v11
}

TEST(Figure1, SemaphoreEdgePresent) {
  // v4 (signal) -> v8 (wait); ids are label-1.
  const Dag d = figure1();
  bool found = false;
  for (const Edge& e : d.edges())
    if (e.kind == EdgeKind::kSync) {
      EXPECT_EQ(e.from, 3u);
      EXPECT_EQ(e.to, 7u);
      found = true;
    }
  EXPECT_TRUE(found);
}

TEST(Figure1, JoinEnablesBlockedRoot) {
  // The join edge v5 -> v11 realizes the "enable and die simultaneously"
  // walkthrough of §3.1.
  const Dag d = figure1();
  bool found = false;
  for (const Edge& e : d.edges())
    if (e.kind == EdgeKind::kJoin) {
      EXPECT_EQ(e.from, 4u);
      EXPECT_EQ(e.to, 10u);
      found = true;
    }
  EXPECT_TRUE(found);
}

// ---- family-wide structural properties -------------------------------------

struct Family {
  std::string name;
  std::function<Dag()> build;
};

class BuilderFamilies : public ::testing::TestWithParam<Family> {};

TEST_P(BuilderFamilies, SatisfiesStructuralAssumptions) {
  const Dag d = GetParam().build();
  EXPECT_TRUE(d.is_valid()) << d.validate();
  for (NodeId n = 0; n < d.num_nodes(); ++n)
    EXPECT_LE(d.out_degree(n), 2u);
}

TEST_P(BuilderFamilies, ParallelismAtLeastOne) {
  const Dag d = GetParam().build();
  EXPECT_GE(d.parallelism(), 1.0);
  EXPECT_LE(d.critical_path_length(), d.work());
}

TEST_P(BuilderFamilies, ContinuationEdgesStayWithinThread) {
  const Dag d = GetParam().build();
  for (const Edge& e : d.edges()) {
    if (e.kind == EdgeKind::kContinue) {
      EXPECT_EQ(d.thread_of(e.from), d.thread_of(e.to));
    }
    if (e.kind == EdgeKind::kSpawn) {
      EXPECT_NE(d.thread_of(e.from), d.thread_of(e.to));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, BuilderFamilies,
    ::testing::Values(
        Family{"figure1", [] { return figure1(); }},
        Family{"chain1", [] { return chain(1); }},
        Family{"chain64", [] { return chain(64); }},
        Family{"fjt0", [] { return fork_join_tree(0); }},
        Family{"fjt1", [] { return fork_join_tree(1); }},
        Family{"fjt5", [] { return fork_join_tree(5, 3); }},
        Family{"fib1", [] { return fib_dag(1); }},
        Family{"fib7", [] { return fib_dag(7); }},
        Family{"fib12", [] { return fib_dag(12); }},
        Family{"wide1", [] { return wide(1); }},
        Family{"wide17", [] { return wide(17, 5); }},
        Family{"grid1x1", [] { return grid_wavefront(1, 1); }},
        Family{"grid1x9", [] { return grid_wavefront(1, 9); }},
        Family{"grid9x1", [] { return grid_wavefront(9, 1); }},
        Family{"grid8x13", [] { return grid_wavefront(8, 13); }},
        Family{"sp_small", [] { return random_series_parallel(1, 10); }},
        Family{"sp_medium", [] { return random_series_parallel(2, 400); }},
        Family{"sp_large", [] { return random_series_parallel(3, 5000); }}),
    [](const auto& info) { return info.param.name; });

// ---- closed-form measures ---------------------------------------------------

TEST(ForkJoinTree, NodeCountRecurrence) {
  // depth d internal thread contributes 4 nodes; leaves contribute
  // leaf_work; N(d) = 4*(2^d - 1) + leaf_work * 2^d.
  for (unsigned depth : {0u, 1u, 2u, 3u, 6u}) {
    for (std::size_t leaf : {1u, 4u}) {
      const Dag d = fork_join_tree(depth, leaf);
      const std::size_t internal = (1u << depth) - 1;
      EXPECT_EQ(d.work(), 4 * internal + leaf * (1u << depth))
          << "depth=" << depth << " leaf=" << leaf;
    }
  }
}

TEST(ForkJoinTree, CriticalPathLinearInDepth) {
  // Longest path goes: s1 (spawn) into left subtree recursively, out to j1,
  // j2: per level adds 3 nodes down plus... verified empirically to be
  // 3*depth + leaf_work + depth (join chain) = 4*depth-ish; assert
  // monotone growth and exact small cases.
  EXPECT_EQ(fork_join_tree(0, 1).critical_path_length(), 1u);
  EXPECT_EQ(fork_join_tree(0, 7).critical_path_length(), 7u);
  std::size_t prev = 0;
  for (unsigned depth = 0; depth <= 6; ++depth) {
    const std::size_t cp = fork_join_tree(depth, 1).critical_path_length();
    EXPECT_GT(cp, prev);
    prev = cp;
  }
}

TEST(FibDag, WorkRecurrence) {
  // W(n) = W(n-1) + W(n-2) + 4 for n >= 2, W(0) = W(1) = 1.
  std::vector<std::size_t> w{1, 1};
  for (unsigned n = 2; n <= 14; ++n) w.push_back(w[n - 1] + w[n - 2] + 4);
  for (unsigned n = 0; n <= 14; ++n)
    EXPECT_EQ(fib_dag(n).work(), w[n]) << "n=" << n;
}

TEST(FibDag, CriticalPathRecurrence) {
  // The longest chain follows the fib(n-1) spawn: node s1, the subtree,
  // then j1, j2: C(n) = C(n-1) + 3 (s1 + subtree + j1 + j2 minus overlap);
  // validated against the dag computation for small n, then used as a
  // regression for larger n.
  std::vector<std::size_t> measured;
  for (unsigned n = 0; n <= 12; ++n)
    measured.push_back(fib_dag(n).critical_path_length());
  EXPECT_EQ(measured[0], 1u);
  EXPECT_EQ(measured[1], 1u);
  for (unsigned n = 3; n <= 12; ++n)
    EXPECT_EQ(measured[n], measured[n - 1] + 3) << "n=" << n;
}

TEST(Wide, Measures) {
  for (std::size_t width : {1u, 2u, 9u, 33u}) {
    for (std::size_t len : {1u, 6u}) {
      const Dag d = wide(width, len);
      EXPECT_EQ(d.work(), 2 * width + width * len);
      // Longest path: spawner spine to last spawner (width), its strand
      // (len), then join chain from j_width... the strand i=width-1 exits
      // into j_{width-1}, path = width + len + (width - (width-1)) ... use
      // the dominant form: width + len + 1 <= cp <= width + len + width.
      const std::size_t cp = d.critical_path_length();
      EXPECT_GE(cp, width + len);
      EXPECT_LE(cp, 2 * width + len);
    }
  }
}

TEST(GridWavefront, Measures) {
  for (std::size_t rows : {1u, 2u, 7u}) {
    for (std::size_t cols : {1u, 3u, 11u}) {
      const Dag d = grid_wavefront(rows, cols);
      EXPECT_EQ(d.work(), rows * cols);
      EXPECT_EQ(d.critical_path_length(), rows + cols - 1)
          << rows << "x" << cols;
    }
  }
}

TEST(RandomSeriesParallel, SizeNearTarget) {
  for (std::size_t target : {1u, 8u, 100u, 1000u}) {
    const Dag d = random_series_parallel(77, target);
    EXPECT_GE(d.work(), target / 2);
    EXPECT_LE(d.work(), target * 2);
  }
}

TEST(RandomSeriesParallel, DeterministicInSeed) {
  const Dag a = random_series_parallel(123, 500);
  const Dag b = random_series_parallel(123, 500);
  EXPECT_EQ(a.num_nodes(), b.num_nodes());
  EXPECT_EQ(a.num_edges(), b.num_edges());
  EXPECT_EQ(a.critical_path_length(), b.critical_path_length());
  const Dag c = random_series_parallel(124, 500);
  // Different seed: almost surely a different shape.
  EXPECT_TRUE(c.num_edges() != a.num_edges() ||
              c.critical_path_length() != a.critical_path_length());
}

}  // namespace
}  // namespace abp::dag

namespace abp::dag {
namespace {

TEST(ImbalancedTree, ValidAndSkewed) {
  for (unsigned depth : {0u, 1u, 3u, 8u}) {
    const Dag d = imbalanced_tree(depth, 2);
    EXPECT_TRUE(d.is_valid()) << "depth=" << depth << ": " << d.validate();
  }
  // Work grows super-linearly in depth but slower than a full binary tree.
  const std::size_t full = fork_join_tree(10).work();
  const std::size_t skew = imbalanced_tree(10).work();
  EXPECT_LT(skew, full);
  EXPECT_GT(skew, fork_join_tree(5).work());
}

TEST(ImbalancedTree, DeeperThanBalancedForSameDepthParam) {
  // The heavy path contributes ~4 nodes of critical path per level.
  EXPECT_GT(imbalanced_tree(10).critical_path_length(),
            imbalanced_tree(5).critical_path_length());
}

}  // namespace
}  // namespace abp::dag
