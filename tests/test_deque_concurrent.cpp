// Concurrency stress tests for the deques: one owner (push_bottom /
// pop_bottom) plus thieves (pop_top), as in the paper's "good" invocation
// sets. Core property: every pushed item is consumed exactly once, across
// owner pops and steals, under the relaxed semantics (§3.2).

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "deque/abp_deque.hpp"
#include "deque/abp_growable_deque.hpp"
#include "deque/chase_lev_deque.hpp"
#include "deque/mutex_deque.hpp"
#include "deque/spinlock_deque.hpp"
#include "deque/split_deque.hpp"

namespace abp::deque {
namespace {

using Item = std::uint64_t;

// The split deque publishes private work when it notices thief hunger
// during a push; once the owner stops pushing it must flush explicitly
// or the tail stays private and thieves spin forever. No-op elsewhere.
template <typename D>
void publish_all(D& d) {
  if constexpr (requires { d.transfer(); }) d.transfer();
}

template <typename D>
class DequeConcurrent : public ::testing::Test {};

using DequeTypes =
    ::testing::Types<AbpDeque<Item>, AbpGrowableDeque<Item>,
                     ChaseLevDeque<Item>, SplitDeque<Item>,
                     MutexDeque<Item>, SpinlockDeque<Item>>;
TYPED_TEST_SUITE(DequeConcurrent, DequeTypes);

// Owner pushes kItems and pops nothing; thieves drain from the top.
TYPED_TEST(DequeConcurrent, ThievesDrainEverythingExactlyOnce) {
  constexpr std::size_t kItems = 20000;
  constexpr std::size_t kThieves = 3;
  TypeParam deque(kItems + 8);

  std::vector<std::atomic<std::uint32_t>> seen(kItems);
  for (auto& s : seen) s.store(0);
  std::atomic<bool> done{false};
  std::atomic<std::size_t> consumed{0};

  std::vector<std::thread> thieves;
  for (std::size_t t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&] {
      while (!done.load(std::memory_order_acquire) ||
             !deque.empty_hint()) {
        if (auto v = deque.pop_top()) {
          seen[*v].fetch_add(1, std::memory_order_relaxed);
          consumed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (Item i = 0; i < kItems; ++i) deque.push_bottom(i);
  publish_all(deque);
  done.store(true, std::memory_order_release);
  for (auto& t : thieves) t.join();

  EXPECT_EQ(consumed.load(), kItems);
  for (std::size_t i = 0; i < kItems; ++i)
    EXPECT_EQ(seen[i].load(), 1u) << "item " << i;
}

// Owner pushes and pops concurrently with thieves; the owner-popped and
// stolen sets must partition the pushed set.
TYPED_TEST(DequeConcurrent, OwnerAndThievesPartitionItems) {
  constexpr std::size_t kItems = 60000;
  constexpr std::size_t kThieves = 3;
  TypeParam deque(kItems + 8);

  std::vector<std::atomic<std::uint32_t>> seen(kItems);
  for (auto& s : seen) s.store(0);
  std::atomic<bool> done{false};
  std::atomic<std::size_t> consumed{0};

  std::vector<std::thread> thieves;
  for (std::size_t t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&] {
      while (!done.load(std::memory_order_acquire) ||
             !deque.empty_hint()) {
        if (auto v = deque.pop_top()) {
          seen[*v].fetch_add(1, std::memory_order_relaxed);
          consumed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  // Owner: bursts of pushes, then bursts of pops — the work stealer's
  // actual access pattern (push on spawn/enable, pop on die/block).
  std::size_t owner_got = 0;
  Item next = 0;
  while (next < kItems) {
    const std::size_t burst = std::min<std::size_t>(37, kItems - next);
    for (std::size_t i = 0; i < burst; ++i) deque.push_bottom(next++);
    for (std::size_t i = 0; i < burst / 2; ++i) {
      if (auto v = deque.pop_bottom()) {
        seen[*v].fetch_add(1, std::memory_order_relaxed);
        ++owner_got;
      }
    }
  }
  publish_all(deque);
  done.store(true, std::memory_order_release);
  for (auto& t : thieves) t.join();

  EXPECT_EQ(consumed.load() + owner_got, kItems);
  for (std::size_t i = 0; i < kItems; ++i)
    EXPECT_EQ(seen[i].load(), 1u) << "item " << i;
}

// Heavy contention on a near-empty deque: thieves and owner race for
// single items; nothing may be lost or duplicated.
TYPED_TEST(DequeConcurrent, SingleItemRaces) {
  constexpr std::size_t kRounds = 30000;
  constexpr std::size_t kThieves = 3;
  TypeParam deque(64);

  std::vector<std::atomic<std::uint32_t>> seen(kRounds);
  for (auto& s : seen) s.store(0);
  std::atomic<bool> done{false};

  std::vector<std::thread> thieves;
  for (std::size_t t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        if (auto v = deque.pop_top())
          seen[*v].fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  for (Item i = 0; i < kRounds; ++i) {
    deque.push_bottom(i);
    if (auto v = deque.pop_bottom())
      seen[*v].fetch_add(1, std::memory_order_relaxed);
  }
  // Drain whatever the owner lost to thieves that are now asleep.
  publish_all(deque);
  done.store(true, std::memory_order_release);
  for (auto& t : thieves) t.join();
  while (auto v = deque.pop_top())
    seen[*v].fetch_add(1, std::memory_order_relaxed);

  for (std::size_t i = 0; i < kRounds; ++i)
    EXPECT_EQ(seen[i].load(), 1u) << "item " << i;
}

// The ABP relaxed semantics allow pop_top to return nothing when the
// topmost item was concurrently removed — but a *successful* pop_top must
// be unique per item even when many thieves hit one victim.
TYPED_TEST(DequeConcurrent, ManyThievesNoDuplicates) {
  constexpr std::size_t kItems = 4096;
  constexpr std::size_t kThieves = 6;
  TypeParam deque(kItems + 8);
  for (Item i = 0; i < kItems; ++i) deque.push_bottom(i);
  publish_all(deque);

  std::vector<std::atomic<std::uint32_t>> seen(kItems);
  for (auto& s : seen) s.store(0);

  std::vector<std::thread> thieves;
  std::atomic<std::size_t> total{0};
  for (std::size_t t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&] {
      std::size_t got = 0;
      while (total.load(std::memory_order_acquire) < kItems) {
        if (auto v = deque.pop_top()) {
          seen[*v].fetch_add(1, std::memory_order_relaxed);
          ++got;
          total.fetch_add(1, std::memory_order_acq_rel);
        }
      }
      (void)got;
    });
  }
  for (auto& t : thieves) t.join();
  for (std::size_t i = 0; i < kItems; ++i) EXPECT_EQ(seen[i].load(), 1u);
}

// Empty -> nonempty -> empty cycles with a racing thief, run far past the
// split deque's 16-bit tag window: every cycle republishes and reclaims
// (two tag bumps), so a stale-tag ABA across the wrap would surface as a
// lost or duplicated item. The other deques run the same schedule to keep
// the property parameterized over every implementation.
TYPED_TEST(DequeConcurrent, EmptyNonEmptyCyclesPastTagWrapUnderSteals) {
  constexpr std::size_t kRounds = 70'000;
  TypeParam deque(64);

  std::vector<std::atomic<std::uint32_t>> seen(kRounds);
  for (auto& s : seen) s.store(0);
  std::atomic<bool> done{false};

  std::thread thief([&] {
    while (!done.load(std::memory_order_acquire)) {
      if (auto v = deque.pop_top())
        seen[*v].fetch_add(1, std::memory_order_relaxed);
    }
  });

  for (Item i = 0; i < kRounds; ++i) {
    deque.push_bottom(i);
    publish_all(deque);
    if (auto v = deque.pop_bottom())
      seen[*v].fetch_add(1, std::memory_order_relaxed);
  }
  done.store(true, std::memory_order_release);
  thief.join();
  // Sweep anything the owner lost to the thief's final claims.
  while (auto v = deque.pop_top())
    seen[*v].fetch_add(1, std::memory_order_relaxed);

  for (std::size_t i = 0; i < kRounds; ++i)
    EXPECT_EQ(seen[i].load(), 1u) << "item " << i;
}

}  // namespace
}  // namespace abp::deque
