// Tests for the potential-function machinery of §4.2: the potential never
// increases and starts/ends at the right values; Lemma 6 (Top-Heavy
// Deques); Lemma 7 (Balls and Weighted Bins, Monte Carlo); and the phase
// accounting used for the Lemma 8 experiment.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "dag/builders.hpp"
#include "sched/potential.hpp"
#include "sched/work_stealer.hpp"
#include "sim/kernel.hpp"
#include "support/rng.hpp"

namespace abp::sched {
namespace {

TEST(NodePotential, Formula) {
  EXPECT_DOUBLE_EQ(static_cast<double>(node_potential(1, false)), 9.0);
  EXPECT_DOUBLE_EQ(static_cast<double>(node_potential(1, true)), 3.0);
  EXPECT_DOUBLE_EQ(static_cast<double>(node_potential(3, false)), 729.0);
  EXPECT_DOUBLE_EQ(static_cast<double>(node_potential(3, true)), 243.0);
}

TEST(NodePotential, AssignedIsOneThirdOfDequePotential) {
  for (std::uint32_t w : {1u, 5u, 40u, 300u}) {
    EXPECT_NEAR(static_cast<double>(node_potential(w, true) /
                                    node_potential(w, false)),
                1.0 / 3.0, 1e-12);
  }
}

TEST(NodePotential, OutOfRangeAborts) {
  EXPECT_DEATH(node_potential(0, false), "Tinf");
  EXPECT_DEATH(node_potential(5000, false), "Tinf");
}

struct PotentialTrace {
  std::vector<long double> totals;
  long double min_top_fraction = 1.0L;
  bool increased = false;
};

PotentialTrace trace_run(const dag::Dag& d, sim::Kernel& kernel,
                         std::uint64_t seed) {
  PotentialTrace trace;
  Options opts;
  opts.seed = seed;
  opts.after_round = [&](const EngineView& view) {
    const auto b = compute_potential(view);
    if (!trace.totals.empty() && b.total > trace.totals.back() + 1e-6L)
      trace.increased = true;
    trace.totals.push_back(b.total);
    if (b.min_top_fraction < trace.min_top_fraction)
      trace.min_top_fraction = b.min_top_fraction;
  };
  const auto m = run_work_stealer(d, kernel, opts);
  EXPECT_TRUE(m.completed);
  return trace;
}

TEST(Potential, NeverIncreasesAndEndsAtZero) {
  const auto d = dag::fib_dag(11);
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    sim::DedicatedKernel k(4);
    const auto trace = trace_run(d, k, seed);
    EXPECT_FALSE(trace.increased);
    ASSERT_FALSE(trace.totals.empty());
    EXPECT_EQ(trace.totals.back(), 0.0L);
  }
}

TEST(Potential, InitialValueIsRootPotential) {
  // Before any round the potential is 3^(2*Tinf - 1); after the first
  // round the root has been executed, so the first recorded value is
  // already below that.
  const auto d = dag::fib_dag(9);
  sim::DedicatedKernel k(2);
  const auto trace = trace_run(d, k, 7);
  const long double initial =
      std::pow(3.0L, 2.0L * static_cast<long double>(
                                d.critical_path_length()) - 1.0L);
  ASSERT_FALSE(trace.totals.empty());
  EXPECT_LT(trace.totals.front(), initial);
}

// Lemma 6: for every process with a non-empty deque, the top node holds at
// least 3/4 of that process's potential.
TEST(Potential, TopHeavyDequesLemma) {
  const std::vector<std::function<dag::Dag()>> dags = {
      [] { return dag::fib_dag(12); },
      [] { return dag::wide(20, 4); },
      [] { return dag::grid_wavefront(10, 10); },
      [] { return dag::random_series_parallel(11, 800); },
  };
  for (const auto& build : dags) {
    const auto d = build();
    for (std::uint64_t seed : {1u, 5u}) {
      sim::BenignKernel k(6, sim::periodic_profile(6, 4, 2, 4), seed);
      const auto trace = trace_run(d, k, seed * 13);
      EXPECT_GE(static_cast<double>(trace.min_top_fraction), 0.75 - 1e-9);
    }
  }
}

// Lemma 8 empirically: phases of >= P throws lose >= 1/4 of the potential
// with probability > 1/4. We measure the success fraction over a run.
TEST(Potential, PhasesLoseConstantFractionOften) {
  const auto d = dag::fib_dag(14);
  const std::size_t p = 8;
  sim::DedicatedKernel k(p);
  Options opts;
  opts.seed = 3;
  PhaseStats phases;
  bool started = false;
  std::uint64_t last_phase_throws = 0;
  opts.after_round = [&](const EngineView& view) {
    const auto b = compute_potential(view);
    if (!started) {
      phases.start(b.total);
      started = true;
      return;
    }
    if (view.throws >= last_phase_throws + p) {
      phases.boundary(b.total);
      last_phase_throws = view.throws;
    }
  };
  const auto m = run_work_stealer(d, k, opts);
  ASSERT_TRUE(m.completed);
  ASSERT_GT(phases.phases(), 10u);
  EXPECT_GT(phases.success_fraction(), 0.25);
}

TEST(PhaseStats, CountsSuccesses) {
  PhaseStats s;
  s.start(100.0L);
  s.boundary(80.0L);   // dropped 20% -> not successful
  s.boundary(50.0L);   // dropped 37.5% -> successful
  s.boundary(50.0L);   // no drop -> not successful
  s.boundary(0.0L);    // dropped 100% -> successful
  s.boundary(0.0L);    // potential exhausted -> ignored
  EXPECT_EQ(s.phases(), 4u);
  EXPECT_EQ(s.successful(), 2u);
  EXPECT_DOUBLE_EQ(s.success_fraction(), 0.5);
}

// Lemma 7 (Balls and Weighted Bins): throwing P balls u.a.r. into P
// weighted bins hits at least beta*W total weight with failure probability
// < 1/((1-beta)e).
TEST(BallsAndWeightedBins, MonteCarloMatchesBound) {
  Xoshiro256 rng(2718);
  const std::size_t p = 16;
  // Adversarial-ish weights: geometric (top-heavy, like deque potentials).
  std::vector<double> weight(p);
  double total = 0.0;
  for (std::size_t i = 0; i < p; ++i) {
    weight[i] = std::pow(0.5, static_cast<double>(i));
    total += weight[i];
  }
  for (double beta : {0.25, 0.5, 0.75}) {
    const double bound = 1.0 / ((1.0 - beta) * std::exp(1.0));
    int failures = 0;
    constexpr int kTrials = 20000;
    for (int t = 0; t < kTrials; ++t) {
      std::vector<bool> hit(p, false);
      for (std::size_t b = 0; b < p; ++b)
        hit[rng.below(p)] = true;
      double got = 0.0;
      for (std::size_t i = 0; i < p; ++i)
        if (hit[i]) got += weight[i];
      if (got < beta * total) ++failures;
    }
    const double failure_rate = failures / double(kTrials);
    EXPECT_LT(failure_rate, bound + 0.01) << "beta=" << beta;
  }
}

TEST(BallsAndWeightedBins, UniformWeightsRarelyFailAtQuarter) {
  // With uniform weights and beta = 1/4 the failure probability is far
  // below the lemma's bound; sanity-check the Monte Carlo harness.
  Xoshiro256 rng(3141);
  const std::size_t p = 32;
  int failures = 0;
  constexpr int kTrials = 5000;
  for (int t = 0; t < kTrials; ++t) {
    std::vector<bool> hit(p, false);
    for (std::size_t b = 0; b < p; ++b) hit[rng.below(p)] = true;
    std::size_t hits = 0;
    for (std::size_t i = 0; i < p; ++i) hits += hit[i];
    if (hits < p / 4) ++failures;
  }
  EXPECT_LT(failures / double(kTrials), 0.01);
}

}  // namespace
}  // namespace abp::potential_tests
