// Tests for the Graphviz export.

#include <gtest/gtest.h>

#include "dag/builders.hpp"
#include "dag/dot.hpp"

namespace abp::dag {
namespace {

TEST(Dot, Figure1ContainsAllNodesAndEdgeStyles) {
  const Dag d = figure1();
  const std::string dot = to_dot(d);
  EXPECT_NE(dot.find("digraph computation"), std::string::npos);
  for (NodeId n = 0; n < d.num_nodes(); ++n) {
    const std::string name = "v" + std::to_string(n + 1);
    EXPECT_NE(dot.find(name), std::string::npos) << name;
  }
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);  // spawn
  EXPECT_NE(dot.find("style=dotted"), std::string::npos);  // join/sync
  EXPECT_NE(dot.find("style=solid"), std::string::npos);   // continuation
  EXPECT_NE(dot.find("T1=11"), std::string::npos);
  EXPECT_NE(dot.find("Tinf=8"), std::string::npos);
}

TEST(Dot, ClusersPerThread) {
  const Dag d = figure1();
  const std::string dot = to_dot(d);
  EXPECT_NE(dot.find("cluster_t0"), std::string::npos);
  EXPECT_NE(dot.find("cluster_t1"), std::string::npos);
}

TEST(Dot, OptionsDisableClustersAndLabel) {
  const Dag d = figure1();
  DotOptions o;
  o.cluster_threads = false;
  o.label_measures = false;
  const std::string dot = to_dot(d, o);
  EXPECT_EQ(dot.find("cluster_t"), std::string::npos);
  EXPECT_EQ(dot.find("T1="), std::string::npos);
}

TEST(Dot, EdgeCountMatches) {
  const Dag d = fib_dag(6);
  const std::string dot = to_dot(d);
  std::size_t arrows = 0;
  for (std::size_t i = dot.find("->"); i != std::string::npos;
       i = dot.find("->", i + 2))
    ++arrows;
  EXPECT_EQ(arrows, d.num_edges());
}

TEST(Dot, EnablingTreeExport) {
  const Dag d = chain(4);
  EnablingTree tree(d);
  tree.set_root(0);
  tree.record(0, 1);
  tree.record(1, 2);
  tree.record(2, 3);
  const std::string dot = to_dot(d, tree);
  EXPECT_NE(dot.find("digraph enabling_tree"), std::string::npos);
  EXPECT_NE(dot.find("w=4"), std::string::npos);  // root weight = Tinf
  EXPECT_NE(dot.find("v1 -> v2"), std::string::npos);
}

TEST(Dot, PartialEnablingTreeOmitsUnknownNodes) {
  const Dag d = chain(4);
  EnablingTree tree(d);
  tree.set_root(0);
  tree.record(0, 1);
  const std::string dot = to_dot(d, tree);
  EXPECT_EQ(dot.find("v4"), std::string::npos);
}

}  // namespace
}  // namespace abp::dag
