// Correctness tests for the simulated non-blocking work stealer (Figure 3
// under the round-based kernel model): every node executes exactly once,
// dependencies are respected, the enabling tree is consistent, and the
// structural lemma holds throughout — across dag families, kernels, yield
// disciplines and spawn orders.

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>

#include "dag/builders.hpp"
#include "sched/work_stealer.hpp"
#include "sim/kernel.hpp"

namespace abp::sched {
namespace {

using sim::YieldKind;

struct Case {
  std::string name;
  std::function<dag::Dag()> build;
  std::function<std::unique_ptr<sim::Kernel>()> kernel;
  YieldKind yield;
  SpawnOrder order;
};

class StealerCorrectness : public ::testing::TestWithParam<Case> {};

TEST_P(StealerCorrectness, ExecutesDagCompletely) {
  const auto& param = GetParam();
  const auto d = param.build();
  auto kernel = param.kernel();
  Options opts;
  opts.yield = param.yield;
  opts.spawn_order = param.order;
  opts.seed = 1234;
  opts.keep_record = true;
  opts.check_structural_lemma = true;
  const auto m = run_work_stealer(d, *kernel, opts);
  ASSERT_TRUE(m.completed);
  EXPECT_EQ(m.executed_nodes, d.num_nodes());
  EXPECT_TRUE(m.structural_violation.empty()) << m.structural_violation;
  EXPECT_TRUE(m.enabling_violation.empty()) << m.enabling_violation;
  EXPECT_TRUE(m.record.validate(d).empty()) << m.record.validate(d);
  EXPECT_EQ(m.record.executed_nodes(), d.num_nodes());
}

std::vector<Case> make_cases() {
  std::vector<Case> cases;
  const std::vector<
      std::pair<std::string, std::function<dag::Dag()>>>
      dags = {
          {"fig1", [] { return dag::figure1(); }},
          {"chain40", [] { return dag::chain(40); }},
          {"fib10", [] { return dag::fib_dag(10); }},
          {"fjt4", [] { return dag::fork_join_tree(4, 2); }},
          {"wide24", [] { return dag::wide(24, 3); }},
          {"grid12x7", [] { return dag::grid_wavefront(12, 7); }},
          {"sp600", [] { return dag::random_series_parallel(4, 600); }},
          {"imb8", [] { return dag::imbalanced_tree(8, 2); }},
      };
  const std::vector<std::pair<
      std::string, std::function<std::unique_ptr<sim::Kernel>()>>>
      kernels = {
          {"ded1", [] { return std::make_unique<sim::DedicatedKernel>(1); }},
          {"ded4", [] { return std::make_unique<sim::DedicatedKernel>(4); }},
          {"ben6",
           [] {
             return std::make_unique<sim::BenignKernel>(
                 6, sim::periodic_profile(6, 4, 2, 4), 17);
           }},
          {"obl6",
           [] {
             return std::make_unique<sim::ObliviousKernel>(
                 6, sim::bursty_profile(6, 5, 12), 23);
           }},
          {"fav4",
           [] {
             return std::make_unique<sim::FavorBusyKernel>(
                 4, sim::constant_profile(2), 29);
           }},
          {"starve4",
           [] {
             return std::make_unique<sim::StarveBusyKernel>(
                 4, sim::constant_profile(2), 31);
           }},
      };
  for (const auto& [dname, dbuild] : dags) {
    for (const auto& [kname, kbuild] : kernels) {
      // yieldToAll guarantees progress even against the starver; the other
      // kernels are paired with the yield their theorem prescribes plus a
      // second discipline for coverage.
      std::vector<YieldKind> yields;
      if (kname == "starve4") {
        yields = {YieldKind::kToAll};
      } else if (kname == "obl6") {
        yields = {YieldKind::kToRandom, YieldKind::kToAll};
      } else {
        yields = {YieldKind::kNone, YieldKind::kToRandom};
      }
      for (YieldKind y : yields) {
        for (SpawnOrder order : {SpawnOrder::kChild, SpawnOrder::kParent}) {
          Case c;
          c.name = dname + "_" + kname + "_" + sim::to_string(y) + "_" +
                   to_string(order);
          for (char& ch : c.name)
            if (ch == '-') ch = '_';
          c.build = dbuild;
          c.kernel = kbuild;
          c.yield = y;
          c.order = order;
          cases.push_back(std::move(c));
        }
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, StealerCorrectness,
                         ::testing::ValuesIn(make_cases()),
                         [](const auto& info) { return info.param.name; });

TEST(Stealer, DeterministicForFixedSeed) {
  const auto d = dag::fib_dag(12);
  Options opts;
  opts.seed = 99;
  sim::BenignKernel k1(4, sim::constant_profile(3), 5);
  sim::BenignKernel k2(4, sim::constant_profile(3), 5);
  const auto a = run_work_stealer(d, k1, opts);
  const auto b = run_work_stealer(d, k2, opts);
  EXPECT_EQ(a.length, b.length);
  EXPECT_EQ(a.steal_attempts, b.steal_attempts);
  EXPECT_EQ(a.successful_steals, b.successful_steals);
}

TEST(Stealer, DifferentSeedsUsuallyDiffer) {
  const auto d = dag::fib_dag(12);
  sim::DedicatedKernel k(8);
  Options a_opts, b_opts;
  a_opts.seed = 1;
  b_opts.seed = 2;
  const auto a = run_work_stealer(d, k, a_opts);
  const auto b = run_work_stealer(d, k, b_opts);
  EXPECT_TRUE(a.steal_attempts != b.steal_attempts || a.length != b.length);
}

TEST(Stealer, SingleProcessNeverSteals) {
  const auto d = dag::fib_dag(10);
  sim::DedicatedKernel k(1);
  const auto m = run_work_stealer(d, k, {});
  ASSERT_TRUE(m.completed);
  EXPECT_EQ(m.successful_steals, 0u);
  EXPECT_EQ(m.length, d.num_nodes());  // one node per round, no idling
  EXPECT_DOUBLE_EQ(m.processor_average, 1.0);
}

TEST(Stealer, SerialChainGivesNoParallelism) {
  const auto d = dag::chain(50);
  sim::DedicatedKernel k(8);
  const auto m = run_work_stealer(d, k, {});
  ASSERT_TRUE(m.completed);
  // Exactly one node is ready at any time; length is T1 regardless of P.
  EXPECT_EQ(m.length, 50u);
  EXPECT_EQ(m.successful_steals, 0u);
}

TEST(Stealer, MaxRoundsStopsStarvedRun) {
  const auto d = dag::fib_dag(8);
  sim::StarveBusyKernel k(4, sim::constant_profile(2), 3);
  Options opts;
  opts.yield = YieldKind::kNone;
  opts.max_rounds = 5000;
  const auto m = run_work_stealer(d, k, opts);
  EXPECT_FALSE(m.completed);
  EXPECT_EQ(m.length, 5000u);
  EXPECT_LT(m.executed_nodes, d.num_nodes());
}

TEST(Stealer, CountsYieldsForThieves) {
  const auto d = dag::fib_dag(10);
  sim::DedicatedKernel k(4);
  Options opts;
  opts.yield = YieldKind::kToRandom;
  const auto m = run_work_stealer(d, k, opts);
  ASSERT_TRUE(m.completed);
  EXPECT_EQ(m.yields, m.steal_attempts);  // one yield before every attempt
}

TEST(Stealer, StealAttemptsMatchIdleTokens) {
  const auto d = dag::fib_dag(10);
  sim::DedicatedKernel k(4);
  Options opts;
  opts.keep_record = true;
  const auto m = run_work_stealer(d, k, opts);
  ASSERT_TRUE(m.completed);
  EXPECT_EQ(m.record.idle_tokens(), m.steal_attempts);
}

TEST(Stealer, SpawnOrderChangesScheduleNotResult) {
  const auto d = dag::fib_dag(11);
  Options child_opts, parent_opts;
  child_opts.spawn_order = SpawnOrder::kChild;
  parent_opts.spawn_order = SpawnOrder::kParent;
  sim::DedicatedKernel k1(4), k2(4);
  const auto a = run_work_stealer(d, k1, child_opts);
  const auto b = run_work_stealer(d, k2, parent_opts);
  ASSERT_TRUE(a.completed && b.completed);
  EXPECT_EQ(a.executed_nodes, b.executed_nodes);
}

TEST(Stealer, InvalidDagAborts) {
  dag::Dag d;  // empty
  sim::DedicatedKernel k(2);
  EXPECT_DEATH(run_work_stealer(d, k, {}), "structural");
}

}  // namespace
}  // namespace abp::sched
