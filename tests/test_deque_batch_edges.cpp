// Edge-case suite for pop_top_batch across every batch-capable deque
// (ISSUE PR 7, satellite 1): the growable ABP deque (the lock-free
// implementation whose owner-side defended window makes batching safe),
// the split deque (whose batch claim needs no defense — it shares one
// word CAS with the owner's reclaim), and the two lock-based reference
// deques. Serial edges: a batch request larger than the victim, a
// single-element victim, k = 0, and the kMaxStealBatch cap. Concurrent
// edge: a batch thief racing the owner's popBottom inside the defended
// window — every pushed item must be delivered exactly once, to exactly
// one side. Split-specific edges (ISSUE PR 10, satellite 3): transfer
// racing a batch claim, transfers of size 0 and 1, private exhaustion
// during owner pops, and the batch-vs-popBottom conservation race across
// the reclaim path.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "deque/abp_growable_deque.hpp"
#include "deque/mutex_deque.hpp"
#include "deque/pop_top.hpp"
#include "deque/spinlock_deque.hpp"
#include "deque/split_deque.hpp"

// atomics-lint: allow(test-local start/stop flags for the race harness)

namespace abp::deque {
namespace {

template <typename D>
struct Maker;

template <>
struct Maker<AbpGrowableDeque<std::uint32_t>> {
  static std::unique_ptr<AbpGrowableDeque<std::uint32_t>> make() {
    // Small initial capacity + unbounded growth + batch steals armed (the
    // third argument also arms the owner-side defended window).
    return std::make_unique<AbpGrowableDeque<std::uint32_t>>(8, 0, true);
  }
};

template <>
struct Maker<MutexDeque<std::uint32_t>> {
  static std::unique_ptr<MutexDeque<std::uint32_t>> make() {
    return std::make_unique<MutexDeque<std::uint32_t>>();
  }
};

template <>
struct Maker<SpinlockDeque<std::uint32_t>> {
  static std::unique_ptr<SpinlockDeque<std::uint32_t>> make() {
    return std::make_unique<SpinlockDeque<std::uint32_t>>();
  }
};

template <>
struct Maker<SplitDeque<std::uint32_t>> {
  static std::unique_ptr<SplitDeque<std::uint32_t>> make() {
    // Fixed-capacity (the split deque does not grow): wide enough for the
    // deepest serial edge below (64 pushes) with headroom for the race.
    return std::make_unique<SplitDeque<std::uint32_t>>(128);
  }
};

// Pushed items on a split deque stay private until the owner publishes
// them; the serial edges below are stated over stealable work, so after
// its pushes the owner flushes. No-op for every other deque.
template <typename D>
void publish_all(D& d) {
  if constexpr (requires { d.transfer(); }) d.transfer();
}

template <typename D>
class DequeBatchEdges : public ::testing::Test {};

using BatchDeques =
    ::testing::Types<AbpGrowableDeque<std::uint32_t>,
                     SplitDeque<std::uint32_t>, MutexDeque<std::uint32_t>,
                     SpinlockDeque<std::uint32_t>>;
TYPED_TEST_SUITE(DequeBatchEdges, BatchDeques);

// A batch request exceeding the victim's size claims ceil(size/2), never
// more than the deque holds.
TYPED_TEST(DequeBatchEdges, RequestLargerThanVictimClaimsHalf) {
  auto dq = Maker<TypeParam>::make();
  for (std::uint32_t v = 0; v < 3; ++v) dq->push_bottom(v);
  publish_all(*dq);
  const auto r = dq->pop_top_batch(100);
  EXPECT_EQ(r.status, PopTopStatus::kSuccess);
  EXPECT_EQ(r.count, 2u);  // ceil(3/2)
  EXPECT_EQ(r.items[0], 0u);  // oldest first — what single pop_top returns
  EXPECT_EQ(r.items[1], 1u);
  // The remaining item is still the owner's.
  const auto left = dq->pop_bottom();
  ASSERT_TRUE(left.has_value());
  EXPECT_EQ(*left, 2u);
  EXPECT_FALSE(dq->pop_bottom().has_value());
}

// A single-element victim yields exactly that element; the next batch
// reports empty.
TYPED_TEST(DequeBatchEdges, SingleElementVictim) {
  auto dq = Maker<TypeParam>::make();
  dq->push_bottom(42);
  publish_all(*dq);
  const auto r = dq->pop_top_batch(8);
  EXPECT_EQ(r.status, PopTopStatus::kSuccess);
  EXPECT_EQ(r.count, 1u);
  EXPECT_EQ(r.items[0], 42u);
  const auto again = dq->pop_top_batch(8);
  EXPECT_EQ(again.status, PopTopStatus::kEmpty);
  EXPECT_EQ(again.count, 0u);
}

// k = 0 is a no-op claim: nothing taken, nothing disturbed.
TYPED_TEST(DequeBatchEdges, ZeroRequestTakesNothing) {
  auto dq = Maker<TypeParam>::make();
  for (std::uint32_t v = 0; v < 4; ++v) dq->push_bottom(v);
  publish_all(*dq);
  const auto r = dq->pop_top_batch(0);
  EXPECT_EQ(r.count, 0u);
  EXPECT_NE(r.status, PopTopStatus::kSuccess);
  std::size_t left = 0;
  while (dq->pop_bottom().has_value()) ++left;
  EXPECT_EQ(left, 4u);
}

// The claim is capped at kMaxStealBatch regardless of k and victim depth —
// the width of the owner-defended window is a correctness constant.
TYPED_TEST(DequeBatchEdges, ClaimCappedAtMaxStealBatch) {
  auto dq = Maker<TypeParam>::make();
  for (std::uint32_t v = 0; v < 64; ++v) dq->push_bottom(v);
  publish_all(*dq);
  const auto r = dq->pop_top_batch(100);
  EXPECT_EQ(r.status, PopTopStatus::kSuccess);
  EXPECT_EQ(r.count, kMaxStealBatch);
  for (std::size_t i = 0; i < r.count; ++i)
    EXPECT_EQ(r.items[i], static_cast<std::uint32_t>(i));  // oldest run
}

// Batch on an empty deque: count 0, status kEmpty.
TYPED_TEST(DequeBatchEdges, EmptyVictimReportsEmpty) {
  auto dq = Maker<TypeParam>::make();
  const auto r = dq->pop_top_batch(4);
  EXPECT_EQ(r.count, 0u);
  EXPECT_EQ(r.status, PopTopStatus::kEmpty);
}

// The race the defended window exists for: the owner popBottoms items that
// sit within kMaxStealBatch slots of top while a thief batch-claims the
// same region. Conservation gate: every pushed value is delivered exactly
// once across the two sides, none lost, none duplicated.
TYPED_TEST(DequeBatchEdges, BatchRacesOwnerPopBottomInDefendedWindow) {
  constexpr std::uint32_t kIters = 1500;
  constexpr std::uint32_t kPerIter = 6;  // shallow: everything in-window
  auto dq = Maker<TypeParam>::make();
  std::atomic<bool> owner_done{false};
  std::vector<std::uint32_t> owner_got, thief_got;
  owner_got.reserve(kIters * kPerIter);
  thief_got.reserve(kIters * kPerIter);

  std::thread thief([&] {
    while (!owner_done.load(std::memory_order_acquire)) {
      const auto r = dq->pop_top_batch(3);
      for (std::size_t i = 0; i < r.count; ++i) thief_got.push_back(r.items[i]);
    }
    // Final sweep in case the owner exited with items still queued.
    for (;;) {
      const auto r = dq->pop_top_batch(kMaxStealBatch);
      if (r.count == 0) break;
      for (std::size_t i = 0; i < r.count; ++i) thief_got.push_back(r.items[i]);
    }
  });

  for (std::uint32_t iter = 0; iter < kIters; ++iter) {
    for (std::uint32_t j = 0; j < kPerIter; ++j)
      dq->push_bottom(iter * kPerIter + j);
    // For the split deque this makes each iteration a transfer racing the
    // thief's in-flight batch claim over the region being republished —
    // the publish-CAS retry path — followed by owner pops racing batch
    // claims across the reclaim CAS. Conservation must survive both.
    publish_all(*dq);
    for (std::uint32_t j = 0; j < kPerIter; ++j) {
      const auto v = dq->pop_bottom();
      if (v.has_value()) owner_got.push_back(*v);
    }
  }
  // Drain what the thief left behind, then release it.
  for (auto v = dq->pop_bottom(); v.has_value(); v = dq->pop_bottom())
    owner_got.push_back(*v);
  owner_done.store(true, std::memory_order_release);
  thief.join();

  std::vector<std::uint32_t> all;
  all.reserve(owner_got.size() + thief_got.size());
  all.insert(all.end(), owner_got.begin(), owner_got.end());
  all.insert(all.end(), thief_got.begin(), thief_got.end());
  ASSERT_EQ(all.size(), static_cast<std::size_t>(kIters) * kPerIter)
      << "owner=" << owner_got.size() << " thief=" << thief_got.size();
  std::sort(all.begin(), all.end());
  for (std::uint32_t v = 0; v < kIters * kPerIter; ++v)
    ASSERT_EQ(all[v], v) << "value delivered zero or multiple times";
}

// ---- split-deque transfer edges (ISSUE PR 10, satellite 3) ------------------

TEST(SplitTransferEdges, EmptyAndAlreadyPublishedTransfersAreNoOps) {
  SplitDeque<std::uint32_t> dq(16);
  EXPECT_EQ(dq.tag_hint(), 0u);
  dq.transfer();  // size-0: nothing private, nothing published
  EXPECT_EQ(dq.tag_hint(), 0u);
  EXPECT_EQ(dq.pop_top_batch(4).status, PopTopStatus::kEmpty);
  dq.push_bottom(1);
  dq.transfer();  // size-1: publishes the one item, bumps the tag
  EXPECT_EQ(dq.tag_hint(), 1u);
  dq.transfer();  // private empty again: no-op, tag untouched
  EXPECT_EQ(dq.tag_hint(), 1u);
  const auto r = dq.pop_top_batch(8);
  EXPECT_EQ(r.status, PopTopStatus::kSuccess);
  EXPECT_EQ(r.count, 1u);
  EXPECT_EQ(r.items[0], 1u);
}

TEST(SplitTransferEdges, SingleItemTransferStaysPopBottomable) {
  SplitDeque<std::uint32_t> dq(16);
  dq.push_bottom(7);
  dq.transfer();
  // Private is now empty; the owner's pop crosses the reclaim path to
  // pull the published item back.
  const auto v = dq.pop_bottom();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 7u);
  EXPECT_FALSE(dq.pop_bottom().has_value());
}

TEST(SplitTransferEdges, PrivateExhaustionReclaimsPublishedWorkLifo) {
  SplitDeque<std::uint32_t> dq(16);
  for (std::uint32_t v = 0; v < 4; ++v) dq.push_bottom(v);
  dq.transfer();  // everything public, private empty
  // Owner pops keep the global LIFO order across the reclaim chain
  // (shrink-half reclaims may run several times on the way down).
  for (std::uint32_t want = 4; want-- > 0;) {
    const auto v = dq.pop_bottom();
    ASSERT_TRUE(v.has_value()) << want;
    EXPECT_EQ(*v, want);
  }
  EXPECT_FALSE(dq.pop_bottom().has_value());
  // The deque is reusable after full exhaustion.
  dq.push_bottom(9);
  dq.transfer();
  EXPECT_EQ(dq.pop_top().value_or(0), 9u);
}

TEST(SplitTransferEdges, MixedPrivatePublicPopsDrainPrivateFirst) {
  SplitDeque<std::uint32_t> dq(16);
  dq.push_bottom(1);
  dq.push_bottom(2);
  dq.transfer();
  dq.push_bottom(3);  // stays private
  // A thief takes the oldest PUBLISHED item.
  EXPECT_EQ(dq.pop_top().value_or(0), 1u);
  // The owner pops newest first: the private 3, then reclaims 2.
  EXPECT_EQ(dq.pop_bottom().value_or(0), 3u);
  EXPECT_EQ(dq.pop_bottom().value_or(0), 2u);
  EXPECT_FALSE(dq.pop_bottom().has_value());
}

// Transfer racing pop_top_batch: a dedicated two-thread hammer on just
// the publish window (the typed race above also crosses the reclaim and
// popBottom paths). The owner never pops — every value must come out of
// the thief's batch claims, each exactly once, across ~2000 transfers
// whose publish CAS races an in-flight claim.
TEST(SplitTransferEdges, TransferRacesBatchClaimConservation) {
  constexpr std::uint32_t kIters = 2000;
  constexpr std::uint32_t kPerIter = 4;
  SplitDeque<std::uint32_t> dq(64);
  std::atomic<bool> done{false};
  std::vector<std::uint32_t> thief_got;
  thief_got.reserve(kIters * kPerIter);

  std::thread thief([&] {
    while (!done.load(std::memory_order_acquire)) {
      const auto r = dq.pop_top_batch(kMaxStealBatch);
      for (std::size_t i = 0; i < r.count; ++i)
        thief_got.push_back(r.items[i]);
    }
    for (;;) {  // final sweep after the last publish
      const auto r = dq.pop_top_batch(kMaxStealBatch);
      if (r.count == 0) break;
      for (std::size_t i = 0; i < r.count; ++i)
        thief_got.push_back(r.items[i]);
    }
  });

  for (std::uint32_t iter = 0; iter < kIters; ++iter) {
    for (std::uint32_t j = 0; j < kPerIter; ++j) {
      // The thief is the only consumer; wait for it to make room rather
      // than asserting on a full deque.
      while (dq.push_bottom_ex(iter * kPerIter + j) != PushStatus::kOk)
        std::this_thread::yield();
    }
    dq.transfer();  // the window under test
    if ((iter & 7u) == 0) std::this_thread::yield();  // 1-CPU interleaving
  }
  done.store(true, std::memory_order_release);
  thief.join();

  ASSERT_EQ(thief_got.size(), static_cast<std::size_t>(kIters) * kPerIter);
  std::sort(thief_got.begin(), thief_got.end());
  for (std::uint32_t v = 0; v < kIters * kPerIter; ++v)
    ASSERT_EQ(thief_got[v], v) << "value delivered zero or multiple times";
}

}  // namespace
}  // namespace abp::deque
