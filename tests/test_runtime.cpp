// Tests for the real (std::thread) Hood-style runtime: scheduler lifecycle,
// TaskGroup fork-join, parallel algorithms, and correctness under every
// deque policy x yield policy combination.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <vector>

#include "runtime/algorithms.hpp"
#include "runtime/background_load.hpp"
#include "runtime/scheduler.hpp"

namespace abp::runtime {
namespace {

long serial_fib(int n) { return n < 2 ? n : serial_fib(n - 1) + serial_fib(n - 2); }

void parallel_fib(Worker& w, int n, long& out) {
  if (n < 12) {  // sequential cutoff
    out = serial_fib(n);
    return;
  }
  long a = 0, b = 0;
  TaskGroup tg(w);
  tg.spawn([&a, n](Worker& w2) { parallel_fib(w2, n - 1, a); });
  parallel_fib(w, n - 2, b);
  tg.wait();
  out = a + b;
}

TEST(Scheduler, ConstructAndDestroyIdle) {
  SchedulerOptions o;
  o.num_workers = 3;
  Scheduler s(o);
  EXPECT_EQ(s.num_workers(), 3u);
}

TEST(Scheduler, ZeroWorkersResolvesToHardware) {
  SchedulerOptions o;
  o.num_workers = 0;
  Scheduler s(o);
  EXPECT_GE(s.num_workers(), 1u);
}

TEST(Scheduler, RunsRootClosure) {
  SchedulerOptions o;
  o.num_workers = 2;
  Scheduler s(o);
  int x = 0;
  s.run([&](Worker&) { x = 42; });
  EXPECT_EQ(x, 42);
}

TEST(Scheduler, SequentialRunsReuseWorkers) {
  SchedulerOptions o;
  o.num_workers = 3;
  Scheduler s(o);
  for (int i = 0; i < 20; ++i) {
    int x = 0;
    s.run([&](Worker&) { x = i; });
    EXPECT_EQ(x, i);
  }
}

TEST(Scheduler, RootSeesValidWorker) {
  SchedulerOptions o;
  o.num_workers = 4;
  Scheduler s(o);
  std::size_t id = 999;
  s.run([&](Worker& w) {
    id = w.id();
    EXPECT_EQ(&w.scheduler(), &s);
  });
  EXPECT_LT(id, 4u);
}

TEST(TaskGroup, SpawnAndWaitSingleChild) {
  SchedulerOptions o;
  o.num_workers = 2;
  Scheduler s(o);
  int child_ran = 0;
  s.run([&](Worker& w) {
    TaskGroup tg(w);
    tg.spawn([&](Worker&) { child_ran = 1; });
    tg.wait();
    EXPECT_EQ(tg.pending(), 0);
  });
  EXPECT_EQ(child_ran, 1);
}

TEST(TaskGroup, ManyFlatChildren) {
  SchedulerOptions o;
  o.num_workers = 4;
  Scheduler s(o);
  constexpr int kChildren = 500;
  std::vector<std::atomic<int>> ran(kChildren);
  for (auto& r : ran) r.store(0);
  s.run([&](Worker& w) {
    TaskGroup tg(w);
    for (int i = 0; i < kChildren; ++i)
      tg.spawn([&ran, i](Worker&) { ran[i].fetch_add(1); });
    tg.wait();
  });
  for (int i = 0; i < kChildren; ++i) EXPECT_EQ(ran[i].load(), 1) << i;
}

TEST(TaskGroup, NestedGroups) {
  SchedulerOptions o;
  o.num_workers = 4;
  Scheduler s(o);
  std::atomic<int> count{0};
  s.run([&](Worker& w) {
    TaskGroup outer(w);
    for (int i = 0; i < 8; ++i) {
      outer.spawn([&count](Worker& w2) {
        TaskGroup inner(w2);
        for (int j = 0; j < 8; ++j)
          inner.spawn([&count](Worker&) { count.fetch_add(1); });
        inner.wait();
      });
    }
    outer.wait();
  });
  EXPECT_EQ(count.load(), 64);
}

TEST(Runtime, SingleWorkerRunsEverythingInline) {
  SchedulerOptions o;
  o.num_workers = 1;
  Scheduler s(o);
  long out = 0;
  s.run([&](Worker& w) { parallel_fib(w, 18, out); });
  EXPECT_EQ(out, serial_fib(18));
  // One worker cannot steal from anyone.
  EXPECT_EQ(s.total_stats().steals, 0u);
}

TEST(Runtime, SingleWorkerParallelAlgorithms) {
  SchedulerOptions o;
  o.num_workers = 1;
  Scheduler s(o);
  long long sum = 0;
  s.run([&](Worker& w) {
    sum = parallel_reduce<long long>(
        w, 0, 10000, 64, 0, [](std::size_t i) { return (long long)i; },
        [](long long a, long long b) { return a + b; });
  });
  EXPECT_EQ(sum, 10000LL * 9999 / 2);
}

TEST(Runtime, FibMatchesSerial) {
  SchedulerOptions o;
  o.num_workers = 4;
  Scheduler s(o);
  long out = 0;
  s.run([&](Worker& w) { parallel_fib(w, 22, out); });
  EXPECT_EQ(out, serial_fib(22));
}

struct PolicyCase {
  DequePolicy deque;
  YieldPolicy yield;
};

class RuntimePolicies : public ::testing::TestWithParam<PolicyCase> {};

TEST_P(RuntimePolicies, FibCorrectUnderPolicy) {
  SchedulerOptions o;
  o.num_workers = 4;
  o.deque = GetParam().deque;
  o.yield = GetParam().yield;
  o.sleep_us = 10;
  Scheduler s(o);
  long out = 0;
  s.run([&](Worker& w) { parallel_fib(w, 20, out); });
  EXPECT_EQ(out, serial_fib(20));
  const auto st = s.total_stats();
  EXPECT_GT(st.jobs_executed, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RuntimePolicies,
    ::testing::Values(PolicyCase{DequePolicy::kAbp, YieldPolicy::kNone},
                      PolicyCase{DequePolicy::kAbp, YieldPolicy::kYield},
                      PolicyCase{DequePolicy::kAbp, YieldPolicy::kSleep},
                      PolicyCase{DequePolicy::kChaseLev, YieldPolicy::kYield},
                      PolicyCase{DequePolicy::kChaseLev, YieldPolicy::kNone},
                      PolicyCase{DequePolicy::kMutex, YieldPolicy::kYield},
                      PolicyCase{DequePolicy::kMutex, YieldPolicy::kNone},
                      PolicyCase{DequePolicy::kSpinlock, YieldPolicy::kYield},
                      PolicyCase{DequePolicy::kSpinlock, YieldPolicy::kNone},
                      PolicyCase{DequePolicy::kAbpGrowable,
                                 YieldPolicy::kYield},
                      PolicyCase{DequePolicy::kAbpGrowable,
                                 YieldPolicy::kNone},
                      PolicyCase{DequePolicy::kSplit, YieldPolicy::kYield},
                      PolicyCase{DequePolicy::kSplit, YieldPolicy::kNone}),
    [](const auto& info) {
      std::string name = std::string(to_string(info.param.deque)) + "_" +
                         to_string(info.param.yield);
      for (char& c : name)
        if (c == '-') c = '_';
      return name;
    });

TEST(ParallelFor, CoversEveryIndexOnce) {
  SchedulerOptions o;
  o.num_workers = 4;
  Scheduler s(o);
  constexpr std::size_t kN = 100000;
  std::vector<std::atomic<std::uint8_t>> hits(kN);
  for (auto& h : hits) h.store(0);
  s.run([&](Worker& w) {
    parallel_for(w, 0, kN, 512,
                 [&](std::size_t i) { hits[i].fetch_add(1); });
  });
  for (std::size_t i = 0; i < kN; ++i) ASSERT_EQ(hits[i].load(), 1u) << i;
}

TEST(ParallelFor, EmptyAndTinyRanges) {
  SchedulerOptions o;
  o.num_workers = 2;
  Scheduler s(o);
  int count = 0;
  s.run([&](Worker& w) {
    parallel_for(w, 5, 5, 16, [&](std::size_t) { ++count; });
    parallel_for(w, 0, 1, 16, [&](std::size_t) { ++count; });
  });
  EXPECT_EQ(count, 1);
}

TEST(ParallelReduce, SumsCorrectly) {
  SchedulerOptions o;
  o.num_workers = 4;
  Scheduler s(o);
  constexpr std::size_t kN = 200000;
  long long sum = -1;
  s.run([&](Worker& w) {
    sum = parallel_reduce<long long>(
        w, 0, kN, 256, 0, [](std::size_t i) { return (long long)i; },
        [](long long a, long long b) { return a + b; });
  });
  EXPECT_EQ(sum, (long long)kN * (kN - 1) / 2);
}

TEST(ParallelReduce, NonCommutativeSafeWithAssociativity) {
  // String-length style reduction: max of prefix maxima (associative).
  SchedulerOptions o;
  o.num_workers = 4;
  Scheduler s(o);
  std::vector<int> data(5000);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<int>((i * 2654435761u) % 10007);
  int expected = *std::max_element(data.begin(), data.end());
  int got = -1;
  s.run([&](Worker& w) {
    got = parallel_reduce<int>(
        w, 0, data.size(), 64, -1, [&](std::size_t i) { return data[i]; },
        [](int a, int b) { return a > b ? a : b; });
  });
  EXPECT_EQ(got, expected);
}

TEST(ParallelInvoke, RunsBoth) {
  SchedulerOptions o;
  o.num_workers = 2;
  Scheduler s(o);
  int a = 0, b = 0;
  s.run([&](Worker& w) {
    parallel_invoke(w, [&](Worker&) { a = 1; }, [&](Worker&) { b = 2; });
  });
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 2);
}

TEST(Stats, CountJobsAndSteals) {
  SchedulerOptions o;
  o.num_workers = 4;
  Scheduler s(o);
  long out = 0;
  s.run([&](Worker& w) { parallel_fib(w, 20, out); });
  const auto st = s.total_stats();
  EXPECT_GT(st.jobs_executed, 50u);
  EXPECT_GE(st.steal_attempts, st.steals);
  s.reset_stats();
  EXPECT_EQ(s.total_stats().jobs_executed, 0u);
}

TEST(Overflow, TinyAbpDequeSerializesInline) {
  SchedulerOptions o;
  o.num_workers = 2;
  o.deque = DequePolicy::kAbp;
  o.deque_capacity = 4;
  Scheduler s(o);
  std::atomic<int> count{0};
  s.run([&](Worker& w) {
    TaskGroup tg(w);
    for (int i = 0; i < 100; ++i)
      tg.spawn([&count](Worker&) { count.fetch_add(1); });
    tg.wait();
  });
  EXPECT_EQ(count.load(), 100);
  EXPECT_GT(s.total_stats().overflow_inline_runs, 0u);
}

TEST(BackgroundLoadTest, StartStop) {
  BackgroundLoad load;
  EXPECT_EQ(load.active(), 0u);
  load.start(2, 0.5);
  EXPECT_EQ(load.active(), 2u);
  load.stop();
  EXPECT_EQ(load.active(), 0u);
}

TEST(Runtime, WorksUnderBackgroundLoad) {
  BackgroundLoad load;
  load.start(2, 0.8);
  SchedulerOptions o;
  o.num_workers = 4;
  o.yield = YieldPolicy::kYield;
  Scheduler s(o);
  long out = 0;
  s.run([&](Worker& w) { parallel_fib(w, 20, out); });
  load.stop();
  EXPECT_EQ(out, serial_fib(20));
}

TEST(JobPoolTest, RecyclesJobs) {
  JobPool pool;
  Job* a = pool.alloc();
  Job* b = pool.alloc();
  EXPECT_NE(a, b);
  pool.free(a);
  Job* c = pool.alloc();
  EXPECT_EQ(c, a);  // LIFO freelist
}

TEST(OptionNames, Stable) {
  EXPECT_STREQ(to_string(DequePolicy::kAbp), "abp");
  EXPECT_STREQ(to_string(DequePolicy::kChaseLev), "chase-lev");
  EXPECT_STREQ(to_string(DequePolicy::kMutex), "mutex");
  EXPECT_STREQ(to_string(DequePolicy::kSpinlock), "spinlock");
  EXPECT_STREQ(to_string(DequePolicy::kAbpGrowable), "abp-growable");
  EXPECT_STREQ(to_string(DequePolicy::kSplit), "split");
  EXPECT_STREQ(to_string(YieldPolicy::kNone), "none");
  EXPECT_STREQ(to_string(YieldPolicy::kYield), "yield");
  EXPECT_STREQ(to_string(YieldPolicy::kSleep), "sleep");
  EXPECT_STREQ(to_string(StealPolicy::kSingle), "single");
  EXPECT_STREQ(to_string(StealPolicy::kStealHalf), "steal-half");
  EXPECT_STREQ(to_string(VictimPolicy::kUniform), "uniform");
  EXPECT_STREQ(to_string(VictimPolicy::kNearestNeighbor), "nearest-neighbor");
  EXPECT_STREQ(to_string(VictimPolicy::kHintAware), "hint-aware");
  EXPECT_STREQ(to_string(VictimPolicy::kLastVictim), "last-victim");
}

// ---- steal-policy layer (DESIGN.md §12) ------------------------------------

// Every (steal, victim) policy combination computes the right answer on
// the real runtime, and the policy counters obey their invariants. On
// this 1-CPU host steals can be rare (a run may finish inside one OS
// quantum), so the counter assertions are one-sided: never MORE batch
// claims than steals, never more stolen items than 8x the claims, batch
// counters exactly zero under single stealing.
TEST(StealPolicyRuntime, MatrixComputesCorrectlyWithSaneCounters) {
  const long want = serial_fib(18);
  // Both batch-capable deques: the growable ABP (owner-defended window)
  // and the split deque (one-word claim, no defense needed).
  for (const DequePolicy dp :
       {DequePolicy::kAbpGrowable, DequePolicy::kSplit}) {
    for (const StealPolicy sp :
         {StealPolicy::kSingle, StealPolicy::kStealHalf}) {
      for (const VictimPolicy vp :
           {VictimPolicy::kUniform, VictimPolicy::kNearestNeighbor,
            VictimPolicy::kHintAware, VictimPolicy::kLastVictim}) {
        SchedulerOptions o;
        o.num_workers = 4;
        o.deque = dp;
        o.steal_policy = sp;
        o.victim_policy = vp;
        Scheduler s(o);
        long out = 0;
        s.run([&](Worker& w) { parallel_fib(w, 18, out); });
        EXPECT_EQ(out, want) << to_string(dp) << "/" << to_string(sp) << "/"
                             << to_string(vp);
        const auto st = s.total_stats();
        EXPECT_GE(st.steal_attempts, st.steals);
        EXPECT_GE(st.steals, st.batch_steals);
        EXPECT_GE(st.batch_stolen_items, st.batch_steals);
        EXPECT_LE(st.batch_stolen_items, st.batch_steals * 8);
        EXPECT_GE(st.steals, st.preferred_victim_hits);
        if (sp == StealPolicy::kSingle) {
          EXPECT_EQ(st.batch_steals, 0u) << to_string(vp);
          EXPECT_EQ(st.batch_stolen_items, 0u) << to_string(vp);
        }
      }
    }
  }
}

// steal_policy = kStealHalf on a deque without a batched top operation
// silently degrades to single-item steals (options.hpp documents this;
// a degraded claim still counts as a batch of exactly 1 per stats.hpp):
// the run is correct and no claim ever delivers more than one item.
TEST(StealPolicyRuntime, StealHalfDegradesOnNonBatchDeques) {
  for (const DequePolicy dp : {DequePolicy::kAbp, DequePolicy::kChaseLev}) {
    SchedulerOptions o;
    o.num_workers = 4;
    o.deque = dp;
    o.steal_policy = StealPolicy::kStealHalf;
    Scheduler s(o);
    long out = 0;
    s.run([&](Worker& w) { parallel_fib(w, 18, out); });
    EXPECT_EQ(out, serial_fib(18)) << to_string(dp);
    EXPECT_EQ(s.total_stats().batch_stolen_items,
              s.total_stats().batch_steals)
        << to_string(dp);
  }
}

}  // namespace
}  // namespace abp::runtime
