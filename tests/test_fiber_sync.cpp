// Tests for the fiber synchronization extensions: Event (one-shot
// broadcast), FiberBarrier (reusable), and Channel<T> (bounded MPMC).

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <vector>

#include "fiber/channel.hpp"
#include "fiber/fiber.hpp"

namespace abp::fiber {
namespace {

runtime::SchedulerOptions opts(std::size_t workers) {
  runtime::SchedulerOptions o;
  o.num_workers = workers;
  o.yield = runtime::YieldPolicy::kYield;
  return o;
}

// ---- Event -------------------------------------------------------------------

TEST(Event, WaitAfterSetIsImmediate) {
  FiberScheduler fs(opts(2));
  int stage = 0;
  fs.run([&] {
    Event e;
    e.set();
    EXPECT_TRUE(e.is_set());
    e.wait();
    stage = 1;
  });
  EXPECT_EQ(stage, 1);
}

TEST(Event, BroadcastWakesAllWaiters) {
  FiberScheduler fs(opts(4));
  constexpr int kWaiters = 20;
  std::atomic<int> woken{0};
  fs.run([&] {
    Event e;
    std::vector<Fiber*> kids;
    for (int i = 0; i < kWaiters; ++i) {
      kids.push_back(FiberScheduler::spawn([&] {
        e.wait();
        woken.fetch_add(1);
      }));
    }
    auto* setter = FiberScheduler::spawn([&] { e.set(); });
    for (Fiber* k : kids) FiberScheduler::join(k);
    FiberScheduler::join(setter);
  });
  EXPECT_EQ(woken.load(), kWaiters);
}

TEST(Event, OrderingGuarantee) {
  FiberScheduler fs(opts(3));
  int before_set = -1;
  fs.run([&] {
    Event e;
    int data = 0;
    auto* producer = FiberScheduler::spawn([&] {
      data = 99;
      e.set();
    });
    e.wait();
    before_set = data;  // must observe the write before set()
    FiberScheduler::join(producer);
  });
  EXPECT_EQ(before_set, 99);
}

// ---- FiberBarrier -------------------------------------------------------------

TEST(Barrier, AllPartiesPassTogether) {
  FiberScheduler fs(opts(4));
  constexpr std::size_t kParties = 8;
  std::atomic<int> before{0}, after{0};
  std::atomic<bool> phase_violation{false};
  fs.run([&] {
    FiberBarrier barrier(kParties);
    std::vector<Fiber*> kids;
    for (std::size_t i = 0; i < kParties; ++i) {
      kids.push_back(FiberScheduler::spawn([&] {
        before.fetch_add(1);
        barrier.arrive_and_wait();
        // Everyone must have arrived before anyone proceeds.
        if (before.load() != kParties) phase_violation.store(true);
        after.fetch_add(1);
      }));
    }
    for (Fiber* k : kids) FiberScheduler::join(k);
  });
  EXPECT_EQ(after.load(), (int)kParties);
  EXPECT_FALSE(phase_violation.load());
}

TEST(Barrier, ReusableAcrossGenerations) {
  FiberScheduler fs(opts(4));
  constexpr std::size_t kParties = 4;
  constexpr int kRounds = 10;
  std::atomic<int> counters[kRounds];
  for (auto& c : counters) c.store(0);
  std::atomic<bool> violation{false};
  fs.run([&] {
    FiberBarrier barrier(kParties);
    std::vector<Fiber*> kids;
    for (std::size_t i = 0; i < kParties; ++i) {
      kids.push_back(FiberScheduler::spawn([&] {
        for (int r = 0; r < kRounds; ++r) {
          counters[r].fetch_add(1);
          barrier.arrive_and_wait();
          // After the barrier, the whole round's counter must be complete.
          if (counters[r].load() != (int)kParties) violation.store(true);
        }
      }));
    }
    for (Fiber* k : kids) FiberScheduler::join(k);
  });
  EXPECT_FALSE(violation.load());
  for (const auto& c : counters) EXPECT_EQ(c.load(), (int)kParties);
}

TEST(Barrier, SinglePartyNeverBlocks) {
  FiberScheduler fs(opts(1));
  int passes = 0;
  fs.run([&] {
    FiberBarrier barrier(1);
    for (int i = 0; i < 5; ++i) {
      barrier.arrive_and_wait();
      ++passes;
    }
  });
  EXPECT_EQ(passes, 5);
}

// ---- Channel ------------------------------------------------------------------

TEST(ChannelTest, SingleProducerSingleConsumer) {
  FiberScheduler fs(opts(2));
  constexpr int kItems = 2000;
  long long sum = 0;
  fs.run([&] {
    Channel<int> ch(16);
    auto* producer = FiberScheduler::spawn([&] {
      for (int i = 1; i <= kItems; ++i) ch.send(i);
    });
    for (int i = 0; i < kItems; ++i) sum += ch.receive();
    FiberScheduler::join(producer);
  });
  EXPECT_EQ(sum, (long long)kItems * (kItems + 1) / 2);
}

TEST(ChannelTest, CapacityOneIsRendezvousLike) {
  FiberScheduler fs(opts(2));
  std::vector<int> received;
  fs.run([&] {
    Channel<int> ch(1);
    auto* producer = FiberScheduler::spawn([&] {
      for (int i = 0; i < 50; ++i) ch.send(i);
    });
    for (int i = 0; i < 50; ++i) received.push_back(ch.receive());
    FiberScheduler::join(producer);
  });
  for (int i = 0; i < 50; ++i) EXPECT_EQ(received[i], i);  // FIFO
}

TEST(ChannelTest, MultiProducerMultiConsumer) {
  FiberScheduler fs(opts(4));
  constexpr int kProducers = 4, kConsumers = 3;
  constexpr int kPerProducer = 300;
  constexpr int kTotal = kProducers * kPerProducer;
  std::atomic<long long> sum{0};
  std::atomic<int> received{0};
  fs.run([&] {
    Channel<int> ch(8);
    std::vector<Fiber*> fibers;
    for (int p = 0; p < kProducers; ++p) {
      fibers.push_back(FiberScheduler::spawn([&, p] {
        for (int i = 0; i < kPerProducer; ++i)
          ch.send(p * kPerProducer + i);
      }));
    }
    for (int c = 0; c < kConsumers; ++c) {
      fibers.push_back(FiberScheduler::spawn([&] {
        // Consumers split the total among themselves via the shared
        // counter; each receive is guaranteed to be matched by a send.
        while (true) {
          int mine = received.fetch_add(1);
          if (mine >= kTotal) break;
          sum.fetch_add(ch.receive());
        }
      }));
    }
    for (Fiber* f : fibers) FiberScheduler::join(f);
  });
  EXPECT_EQ(sum.load(), (long long)kTotal * (kTotal - 1) / 2);
}

TEST(ChannelTest, MovesValuesThrough) {
  FiberScheduler fs(opts(2));
  std::vector<std::vector<int>> got;
  fs.run([&] {
    Channel<std::vector<int>> ch(4);
    auto* producer = FiberScheduler::spawn([&] {
      for (int i = 0; i < 10; ++i) ch.send(std::vector<int>(i, i));
    });
    for (int i = 0; i < 10; ++i) got.push_back(ch.receive());
    FiberScheduler::join(producer);
  });
  for (int i = 0; i < 10; ++i) {
    ASSERT_EQ(got[i].size(), (std::size_t)i);
    if (i > 0) {
      EXPECT_EQ(got[i][0], i);
    }
  }
}

}  // namespace
}  // namespace abp::fiber
