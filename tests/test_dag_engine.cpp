// Tests for the real-threads dag engine: the closest implementation of the
// paper's Figure 3 loop, executed with actual concurrency. Cross-validates
// the simulator's semantics on real hardware.

#include <gtest/gtest.h>

#include <functional>
#include <string>

#include "dag/builders.hpp"
#include "runtime/dag_engine.hpp"

namespace abp::runtime {
namespace {

SchedulerOptions make_opts(std::size_t workers, DequePolicy deque,
                           YieldPolicy yield) {
  SchedulerOptions o;
  o.num_workers = workers;
  o.deque = deque;
  o.yield = yield;
  o.sleep_us = 10;
  return o;
}

TEST(DagEngine, SingleWorkerChain) {
  const auto d = dag::chain(100);
  const auto r = run_dag(d, make_opts(1, DequePolicy::kAbp,
                                      YieldPolicy::kYield));
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.executed_nodes, 100u);
  EXPECT_EQ(r.totals.steals, 0u);
}

TEST(DagEngine, Figure1Executes) {
  const auto d = dag::figure1();
  for (std::size_t workers : {1u, 2u, 3u}) {
    const auto r = run_dag(d, make_opts(workers, DequePolicy::kAbp,
                                        YieldPolicy::kYield));
    EXPECT_TRUE(r.ok) << "workers=" << workers;
    EXPECT_EQ(r.executed_nodes, 11u);
  }
}

struct EngineCase {
  std::string name;
  std::function<dag::Dag()> build;
  std::size_t workers;
  DequePolicy deque;
  YieldPolicy yield;
};

class DagEngineSweep : public ::testing::TestWithParam<EngineCase> {};

TEST_P(DagEngineSweep, ExecutesAllNodesExactlyOnce) {
  const auto& param = GetParam();
  const auto d = param.build();
  const auto r =
      run_dag(d, make_opts(param.workers, param.deque, param.yield), 5);
  EXPECT_TRUE(r.ok) << param.name;
  EXPECT_EQ(r.executed_nodes, d.num_nodes()) << param.name;
  EXPECT_EQ(r.totals.jobs_executed, d.num_nodes()) << param.name;
}

std::vector<EngineCase> engine_cases() {
  std::vector<EngineCase> cases;
  const std::vector<std::pair<std::string, std::function<dag::Dag()>>> dags =
      {
          {"fib12", [] { return dag::fib_dag(12); }},
          {"wide40", [] { return dag::wide(40, 5); }},
          {"grid15x9", [] { return dag::grid_wavefront(15, 9); }},
          {"sp1500", [] { return dag::random_series_parallel(6, 1500); }},
      };
  const std::vector<std::pair<std::string, DequePolicy>> deques = {
      {"abp", DequePolicy::kAbp},
      {"chaselev", DequePolicy::kChaseLev},
      {"mutex", DequePolicy::kMutex},
      {"spinlock", DequePolicy::kSpinlock},
      {"growable", DequePolicy::kAbpGrowable},
      {"split", DequePolicy::kSplit},
  };
  const std::vector<std::pair<std::string, YieldPolicy>> yields = {
      {"none", YieldPolicy::kNone},
      {"yield", YieldPolicy::kYield},
  };
  for (const auto& [dn, db] : dags)
    for (const auto& [qn, qp] : deques)
      for (const auto& [yn, yp] : yields)
        for (std::size_t workers : {2u, 4u})
          cases.push_back(EngineCase{dn + "_" + qn + "_" + yn + "_w" +
                                         std::to_string(workers),
                                     db, workers, qp, yp});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, DagEngineSweep,
                         ::testing::ValuesIn(engine_cases()),
                         [](const auto& info) { return info.param.name; });

TEST(DagEngine, ParentFirstOrderAlsoExecutesEverything) {
  const auto d = dag::wide(40, 5);
  auto opts = make_opts(4, DequePolicy::kAbp, YieldPolicy::kYield);
  opts.dag_parent_first = true;
  const auto r = run_dag(d, opts, 5);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.executed_nodes, d.num_nodes());
}

TEST(DagEngine, RepeatedRunsStable) {
  const auto d = dag::fib_dag(11);
  const auto opts = make_opts(4, DequePolicy::kAbp, YieldPolicy::kYield);
  for (int i = 0; i < 10; ++i) {
    const auto r = run_dag(d, opts);
    ASSERT_TRUE(r.ok) << "iteration " << i;
  }
}

TEST(DagEngine, SpinPerNodeSlowsExecution) {
  const auto d = dag::wide(50, 20);
  const auto opts = make_opts(2, DequePolicy::kAbp, YieldPolicy::kYield);
  const auto fast = run_dag(d, opts, 0);
  const auto slow = run_dag(d, opts, 20000);
  ASSERT_TRUE(fast.ok && slow.ok);
  EXPECT_GT(slow.seconds, fast.seconds);
}

TEST(DagEngine, StealsHappenWithMultipleWorkers) {
  // A wide dag with several workers must involve at least one steal
  // (worker 0 starts with everything).
  // On a single-CPU host the whole dag can finish inside worker 0's first
  // timeslice unless nodes carry real work; 20k spins per node stretches
  // the run across many timeslices so thieves actually get to run.
  const auto d = dag::wide(64, 50);
  const auto r = run_dag(d, make_opts(4, DequePolicy::kAbp,
                                      YieldPolicy::kYield), 20000);
  ASSERT_TRUE(r.ok);
  EXPECT_GT(r.totals.steals, 0u);
}

}  // namespace
}  // namespace abp::runtime
