// Adversarial-kernel soak for the resilience layer (the ISSUE's acceptance
// gate): seeded worker suspensions and kills injected into the real
// scheduler must leave every submitted job delivered exactly once, or
// surface a typed error at the wait boundary — never a hang, never a lost
// job. Round counts are scaled down under sanitizers (chaos_driver.hpp)
// but the release totals across the four scenarios exceed the 10k-round
// acceptance floor.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>

#include "chaos/chaos.hpp"
#include "chaos/policy.hpp"
#include "chaos_driver.hpp"
#include "runtime/scheduler.hpp"

namespace abp {
namespace {

using namespace std::chrono_literals;
using std::chrono::steady_clock;

static_assert(ABP_CHAOS_ENABLED,
              "the chaos suite requires -DABP_CHAOS=ON (see CMakeLists)");

std::size_t scaled(std::size_t release_rounds) {
  const std::size_t r = release_rounds / chaostest::kSanitizerRoundScale;
  return r == 0 ? 1 : r;
}

// Runs one fork-join round of `jobs` counter jobs and returns the count
// observed at wait() — exactly-once delivery means the count equals jobs.
int counting_round(runtime::Scheduler& s, int jobs) {
  std::atomic<int> n{0};
  s.run([&](runtime::Worker& w) {
    runtime::TaskGroup tg(w);
    for (int i = 0; i < jobs; ++i)
      tg.spawn([&](runtime::Worker&) {
        n.fetch_add(1, std::memory_order_relaxed);
      });
    tg.wait();
  });
  return n.load(std::memory_order_relaxed);
}

// Scenario A — suspensions. The kernel repeatedly de-schedules workers for
// random 1-200us intervals at the steal-iteration point (§2's adversary).
// Suspension never loses a claimed job, so every round must count exactly;
// one scope spans all rounds so late rounds see a well-mixed RNG stream.
TEST(ChaosResilience, SuspendSoakDeliversExactlyOnce) {
  chaos::WorkerSuspendPolicy::Config cfg;
  cfg.p_suspend = 0.02;
  cfg.min_us = 1;
  cfg.max_us = 200;
  auto policy = std::make_shared<chaos::WorkerSuspendPolicy>(cfg);
  chaos::ChaosScope scope(policy, 0x50f7u);

  runtime::SchedulerOptions o;
  o.num_workers = 2;
  runtime::Scheduler s(o);

  const std::size_t rounds = scaled(6000);
  for (std::size_t r = 0; r < rounds; ++r)
    ASSERT_EQ(counting_round(s, 8), 8) << "round " << r;
  EXPECT_GT(policy->suspensions(), 0u);
}

// Scenario B — kills with replenishment. Each round arms a fresh one-kill
// policy under a new seed; a kill at the job-boundary point (the only
// kill-safe site) orphans the dead worker's deque, which stays in the
// victim set and is drained by the survivors. With two live workers and a
// one-kill budget total loss is impossible, so every round must count
// exactly; dead slots are replenished via add_worker between rounds.
TEST(ChaosResilience, KillSoakDeliversExactlyOnceWithReplenishment) {
  runtime::SchedulerOptions o;
  o.num_workers = 2;
  o.resilience.max_workers = 4;
  runtime::Scheduler s(o);

  const std::size_t rounds = scaled(4000);
  std::uint64_t total_kills = 0;
  for (std::size_t r = 0; r < rounds; ++r) {
    chaos::WorkerKillPolicy::Config cfg;
    cfg.p_kill = 0.05;
    cfg.max_kills = 1;
    auto policy = std::make_shared<chaos::WorkerKillPolicy>(cfg);
    {
      chaos::ChaosScope scope(policy, 0x4b11u + r);
      bool all_lost = false;
      int n = 0;
      try {
        n = counting_round(s, 8);
      } catch (const runtime::AllWorkersLostError&) {
        all_lost = true;  // unreachable with 2 live and budget 1; keep typed
      }
      ASSERT_FALSE(all_lost) << "round " << r;
      ASSERT_EQ(n, 8) << "round " << r;
    }
    total_kills += policy->kills();
    while (s.live_workers() < 2) s.add_worker();
  }
  EXPECT_GT(total_kills, 0u);
}

// Scenario C — total loss. p_kill = 1 with a two-kill budget deterministically
// kills both workers at their first thief iteration, before either can claim
// the root: run() must surface the typed AllWorkersLostError (no hang, no
// partial count), and the scheduler must stay reusable after replenishment.
TEST(ChaosResilience, KillAllSurfacesTypedErrorNoHang) {
  runtime::SchedulerOptions o;
  o.num_workers = 2;
  o.resilience.max_workers = 4;
  runtime::Scheduler s(o);

  const std::size_t rounds = scaled(200);
  for (std::size_t r = 0; r < rounds; ++r) {
    chaos::WorkerKillPolicy::Config cfg;
    cfg.p_kill = 1.0;
    cfg.max_kills = 2;
    auto policy = std::make_shared<chaos::WorkerKillPolicy>(cfg);
    {
      chaos::ChaosScope scope(policy, 0xdeadu + r);
      std::atomic<int> n{0};
      EXPECT_THROW(
          s.run([&](runtime::Worker& w) {
            runtime::TaskGroup tg(w);
            for (int i = 0; i < 8; ++i)
              tg.spawn([&](runtime::Worker&) {
                n.fetch_add(1, std::memory_order_relaxed);
              });
            tg.wait();
          }),
          runtime::AllWorkersLostError)
          << "round " << r;
      EXPECT_EQ(n.load(std::memory_order_relaxed), 0) << "round " << r;
    }
    EXPECT_EQ(policy->kills(), 2u) << "round " << r;
    while (s.live_workers() < 2) s.add_worker();
  }
  // Still whole after repeated total losses.
  EXPECT_EQ(counting_round(s, 8), 8);
}

// Scenario D — lost-wakeup regression for the parking protocol, chaos
// form: a targeted stall pins every completer inside the completion window
// ("sched.exec.pre_complete" — after the job ran, before on_complete), the
// exact interval where a waiter that has just re-checked pending can go to
// sleep. If the completer's notification could be lost the waiter would
// burn its full 2s park timeout; with the re-check-under-park-mutex
// handshake each round finishes in the stall time (~2ms) instead.
TEST(ChaosResilience, ParkingSurvivesChaosStalledCompleter) {
  chaos::TargetedPolicy::Config cfg;
  cfg.point = "sched.exec.pre_complete";
  cfg.action = chaos::Action::kSleep;
  cfg.repeat = 2000;  // microseconds
  cfg.every_n = 1;
  chaos::ChaosScope scope(std::make_shared<chaos::TargetedPolicy>(cfg),
                          0x9a23u);

  runtime::SchedulerOptions o;
  o.num_workers = 2;
  o.resilience.park_after_failed_steals = 1;
  o.resilience.park_timeout_us = 2'000'000;
  runtime::Scheduler s(o);

  const std::size_t rounds = scaled(1000);
  for (std::size_t r = 0; r < rounds; ++r) {
    std::atomic<bool> started{false};
    const auto t0 = steady_clock::now();
    s.run([&](runtime::Worker& w) {
      runtime::TaskGroup tg(w);
      tg.spawn([&](runtime::Worker&) {
        started.store(true, std::memory_order_release);
      });
      // Give the other worker a chance to take the job so this one parks.
      const auto spin_deadline = steady_clock::now() + 10s;
      while (!started.load(std::memory_order_acquire) &&
             steady_clock::now() < spin_deadline) {
        std::this_thread::yield();
      }
      tg.wait();
    });
    const auto elapsed = steady_clock::now() - t0;
    ASSERT_LT(elapsed, 1s)
        << "round " << r << ": waiter woke by park timeout, not notification";
  }
  EXPECT_GE(s.total_stats().parks, 1u);
}

}  // namespace
}  // namespace abp
