// Model-checking tests for the ABP deque (§3.3 and the verification report
// [11] it defers to): exhaustive exploration of adversarial interleavings
// at instruction granularity.

#include <gtest/gtest.h>

#include "model/explorer.hpp"

namespace abp::model {
namespace {

Script owner_script(std::initializer_list<Op> ops) { return Script(ops); }

Op push(std::uint8_t v) { return Op{Method::kPushBottom, v}; }
Op pop_bottom() { return Op{Method::kPopBottom, 0}; }
Op pop_top() { return Op{Method::kPopTop, 0}; }

// ---- machine sanity (serial) ------------------------------------------------

TEST(Machine, SerialPushPop) {
  SharedDeque mem;
  Invocation inv;
  inv.start(Method::kPushBottom, 7);
  while (step_abp(mem, inv) != StepOutcome::kDone) {
  }
  EXPECT_EQ(mem.bot, 1);
  inv.start(Method::kPopBottom);
  while (step_abp(mem, inv) != StepOutcome::kDone) {
  }
  EXPECT_EQ(inv.result, 7);
  EXPECT_EQ(mem.tag, 1);  // emptying pop bumps the tag
}

TEST(Machine, SerialPopTopFifo) {
  SharedDeque mem;
  Invocation inv;
  for (std::uint8_t v : {1, 2, 3}) {
    inv.start(Method::kPushBottom, v);
    while (step_abp(mem, inv) != StepOutcome::kDone) {
    }
  }
  for (std::uint8_t v : {1, 2, 3}) {
    inv.start(Method::kPopTop);
    while (step_abp(mem, inv) != StepOutcome::kDone) {
    }
    EXPECT_EQ(inv.result, v);
  }
  inv.start(Method::kPopTop);
  while (step_abp(mem, inv) != StepOutcome::kDone) {
  }
  EXPECT_EQ(inv.result, SharedDeque::kEmptySlot);  // NIL
}

TEST(Machine, EveryAbpInvocationIsShort) {
  // Loop-free code: a serial invocation never exceeds a handful of steps.
  SharedDeque mem;
  Invocation inv;
  int steps = 0;
  inv.start(Method::kPushBottom, 1);
  while (step_abp(mem, inv) != StepOutcome::kDone) ++steps;
  EXPECT_LE(steps, kAbpMaxSteps);
}

// ---- exhaustive interleavings: ABP ------------------------------------------

TEST(ModelCheck, OwnerPlusOneThief) {
  const std::vector<Script> scripts = {
      owner_script({push(1), push(2), pop_bottom(), pop_bottom()}),
      {pop_top(), pop_top()},
  };
  const auto r = explore(scripts);
  EXPECT_TRUE(r.passed()) << r.violation;
  EXPECT_TRUE(r.nonblocking);
  EXPECT_FALSE(r.truncated);
  EXPECT_GT(r.states, 100u);
  EXPECT_GT(r.terminal_states, 0u);
  EXPECT_LE(r.max_solo_steps, kAbpMaxSteps);
}

TEST(ModelCheck, OwnerPlusTwoThieves) {
  const std::vector<Script> scripts = {
      owner_script({push(1), push(2), push(3), pop_bottom()}),
      {pop_top(), pop_top()},
      {pop_top()},
  };
  const auto r = explore(scripts);
  EXPECT_TRUE(r.passed()) << r.violation;
  EXPECT_TRUE(r.nonblocking);
  EXPECT_FALSE(r.truncated);
}

TEST(ModelCheck, InterleavedPushesAndSteals) {
  const std::vector<Script> scripts = {
      owner_script({push(1), pop_bottom(), push(2), pop_bottom(), push(3),
                    pop_bottom()}),
      {pop_top(), pop_top(), pop_top()},
  };
  const auto r = explore(scripts);
  EXPECT_TRUE(r.passed()) << r.violation;
  EXPECT_TRUE(r.nonblocking);
}

TEST(ModelCheck, ThievesOnlyOnEmptyDeque) {
  const std::vector<Script> scripts = {
      owner_script({}),
      {pop_top(), pop_top()},
      {pop_top()},
  };
  const auto r = explore(scripts);
  EXPECT_TRUE(r.passed()) << r.violation;
  EXPECT_TRUE(r.nonblocking);
}

TEST(ModelCheck, SingleItemThreeWayRace) {
  // The hardest case in the paper's proof sketch: popBottom and popTop
  // racing for the last item while another thief interferes.
  const std::vector<Script> scripts = {
      owner_script({push(1), pop_bottom(), push(2), pop_bottom()}),
      {pop_top()},
      {pop_top()},
  };
  const auto r = explore(scripts);
  EXPECT_TRUE(r.passed()) << r.violation;
  EXPECT_TRUE(r.nonblocking);
}

// ---- the tag ablation: ABA --------------------------------------------------

TEST(ModelCheck, DisablingTagExposesAbaDuplicate) {
  // §3.3: "Subsequent operations may empty the deque and then build it up
  // again so that the top index points to the same location. When the
  // thief process resumes and executes [the cas], the cas will succeed...
  // But the node that the thief obtained is no longer the correct node.
  // The tag field eliminates this problem."
  const std::vector<Script> scripts = {
      owner_script({push(1), pop_bottom(), push(2), pop_bottom()}),
      {pop_top()},
  };
  ExploreOptions opts;
  opts.disable_tag = true;
  const auto r = explore(scripts, opts);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.violation.find("twice"), std::string::npos) << r.violation;
}

TEST(ModelCheck, SameScriptWithTagIsCorrect) {
  const std::vector<Script> scripts = {
      owner_script({push(1), pop_bottom(), push(2), pop_bottom()}),
      {pop_top()},
  };
  const auto r = explore(scripts);
  EXPECT_TRUE(r.passed()) << r.violation;
}

TEST(ModelCheck, TruncatedExplorationIsNotAPass) {
  const std::vector<Script> scripts = {
      owner_script({push(1), push(2), pop_bottom(), pop_bottom()}),
      {pop_top(), pop_top()},
  };
  ExploreOptions opts;
  opts.max_states = 10;  // far below the ~10^3 states this script reaches
  const auto r = explore(scripts, opts);
  EXPECT_TRUE(r.truncated);
  EXPECT_TRUE(r.ok);  // no violation *found* — which is not a verdict
  EXPECT_FALSE(r.passed());
  EXPECT_NE(r.violation.find("truncated"), std::string::npos) << r.violation;
}

// ---- the spinlock machine: blocking -----------------------------------------

TEST(ModelCheck, SpinlockDequeIsCorrectButBlocking) {
  const std::vector<Script> scripts = {
      owner_script({push(1), push(2), pop_bottom()}),
      {pop_top(), pop_top()},
  };
  ExploreOptions opts;
  opts.use_spinlock = true;
  const auto r = explore(scripts, opts);
  // Mutual exclusion keeps it correct...
  EXPECT_TRUE(r.passed()) << r.violation;
  // ...but there are reachable states in which a process suspended inside
  // its critical section blocks everyone else forever.
  EXPECT_FALSE(r.nonblocking);
}

TEST(ModelCheck, AbpSoloCompletionBounded) {
  // The quantitative non-blocking statement: from *every* reachable state,
  // an invocation finishes within kAbpMaxSteps of its own steps, no matter
  // where every other process was suspended.
  const std::vector<Script> scripts = {
      owner_script({push(1), push(2), pop_bottom(), push(3), pop_bottom(),
                    pop_bottom()}),
      {pop_top(), pop_top()},
  };
  const auto r = explore(scripts);
  EXPECT_TRUE(r.passed()) << r.violation;
  EXPECT_TRUE(r.nonblocking);
  EXPECT_LE(r.max_solo_steps, kAbpMaxSteps);
  EXPECT_GT(r.max_solo_steps, 0);
}

}  // namespace
}  // namespace abp::model
