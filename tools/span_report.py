#!/usr/bin/env python3
"""Cross-checks the online work/span profiler against the static DAG.

Consumes SPAN_JSON lines (emitted by examples/span_profile, one JSON
object per line, prefixed with "SPAN_JSON " on stdout or raw in a file):

    {"workload": "fork_join_tree(d=10)", "p": 4,
     "work_nodes": 2047, "span_nodes": 11,
     "measured_work_nodes": 2047, "measured_span_nodes": 11,
     "seconds": 0.0123}

work_nodes/span_nodes are the static dag::Dag::work() and
critical_path_length(); measured_* are the runtime dag engine's online
profile (src/runtime/dag_engine.cpp), folded along the enabling edges the
run actually took. Two checks (ISSUE 6 acceptance, EXPERIMENTS.md §E27):

  1. Exactness: on a completed run the measured span must equal the static
     critical path (every node's path is 1 + max over executed
     predecessors, and each node executes exactly once), and the measured
     work must equal the node count. A measured span below the static
     critical path means the profiler lost a fold — corruption, not noise.

  2. Bound shape: across (workload, p) points, the makespan should fit
        seconds ~= c1 * (work_nodes / p_eff) + c2 * span_nodes
     i.e. the paper's O(T1/P_A + Tinf) form, where p_eff (emitted by the
     example as min(P, hardware_concurrency)) stands in for the processor
     average P_A — on a host with fewer CPUs than workers the work term
     divides by what the machine can deliver, not by what was asked. The
     2-parameter least-squares fit is reported; c1 must come out positive
     (the work term pays for itself), and the fit constants are the c1/c2
     recorded in EXPERIMENTS.md §E27.

Usage:
    span_report.py [span.jsonl ...]        # or pipe example output on stdin
    ./build/examples/span_profile | python3 tools/span_report.py
"""

import json
import sys

PREFIX = "SPAN_JSON "


def read_points(streams):
    points = []
    for stream in streams:
        for line in stream:
            line = line.strip()
            if line.startswith(PREFIX):
                line = line[len(PREFIX):]
            if not line.startswith("{"):
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError:
                continue
            if "measured_span_nodes" not in obj:
                continue
            points.append(obj)
    return points


def check_exactness(points):
    failures = []
    for pt in points:
        tag = f"{pt.get('workload', '?')} p={pt.get('p', '?')}"
        static_span = int(pt["span_nodes"])
        measured_span = int(pt["measured_span_nodes"])
        static_work = int(pt["work_nodes"])
        measured_work = int(pt.get("measured_work_nodes", static_work))
        ok = measured_span == static_span and measured_work == static_work
        print(f"  {tag}: T1 {measured_work}/{static_work} nodes, "
              f"Tinf {measured_span}/{static_span} nodes "
              f"(measured/static) {'ok' if ok else 'MISMATCH'}")
        if measured_span < static_span:
            failures.append(f"{tag}: measured span {measured_span} < static "
                            f"critical path {static_span} (lost fold)")
        elif measured_span > static_span:
            failures.append(f"{tag}: measured span {measured_span} > static "
                            f"critical path {static_span} (phantom edge)")
        if measured_work != static_work:
            failures.append(f"{tag}: measured work {measured_work} != "
                            f"{static_work} nodes")
    return failures


def effective_p(pt):
    return int(pt.get("p_eff", pt["p"]))


def fit_bound(points):
    """Least-squares seconds ~= c1*(work/p_eff) + c2*span; returns
    (c1, c2, r2) or None when the system is degenerate."""
    usable = [pt for pt in points
              if float(pt.get("seconds", 0.0)) > 0.0 and effective_p(pt) > 0]
    if len(usable) < 2:
        return None
    # Normal equations for y = c1*x1 + c2*x2 (no intercept: zero work takes
    # zero time).
    s11 = s12 = s22 = sy1 = sy2 = 0.0
    for pt in usable:
        x1 = float(pt["work_nodes"]) / float(effective_p(pt))
        x2 = float(pt["span_nodes"])
        y = float(pt["seconds"])
        s11 += x1 * x1
        s12 += x1 * x2
        s22 += x2 * x2
        sy1 += x1 * y
        sy2 += x2 * y
    det = s11 * s22 - s12 * s12
    if abs(det) < 1e-30:
        return None
    c1 = (sy1 * s22 - sy2 * s12) / det
    c2 = (s11 * sy2 - s12 * sy1) / det
    ss_res = ss_tot = 0.0
    mean_y = sum(float(pt["seconds"]) for pt in usable) / len(usable)
    for pt in usable:
        x1 = float(pt["work_nodes"]) / float(effective_p(pt))
        x2 = float(pt["span_nodes"])
        y = float(pt["seconds"])
        ss_res += (y - (c1 * x1 + c2 * x2)) ** 2
        ss_tot += (y - mean_y) ** 2
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0.0 else 1.0
    return c1, c2, r2


def main() -> int:
    streams = ([open(path) for path in sys.argv[1:]]
               if len(sys.argv) > 1 else [sys.stdin])
    points = read_points(streams)
    if not points:
        print("span-report: FAIL: no SPAN_JSON lines found in input")
        return 1
    print(f"span-report: {len(points)} run(s)")
    failures = check_exactness(points)

    fit = fit_bound(points)
    if fit is not None:
        c1, c2, r2 = fit
        print(f"  bound fit: seconds ~= {c1:.3e} * T1/P + {c2:.3e} * Tinf "
              f"(R^2 = {r2:.4f})")
        if c1 <= 0.0:
            failures.append(f"bound fit has non-positive work coefficient "
                            f"c1 = {c1:.3e}")
    else:
        print("  bound fit: skipped (need >= 2 timed points with distinct "
              "T1/P, Tinf)")

    if failures:
        for f in failures:
            print(f"span-report: FAIL: {f}")
        return 1
    print("span-report: ok (measured span == static critical path on every "
          "run; bound shape holds)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
