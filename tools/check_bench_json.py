#!/usr/bin/env python3
"""Schema validator for BENCH_JSON lines (the machine-readable protocol
every bench harness emits via bench_common.hpp's JsonLineCollector; see
DESIGN.md §3). CI validates the collected ABP_BENCH_JSON files before
uploading them as artifacts, so a malformed line fails the job that
produced it instead of the consumer that reads it months later.

Checked per line:
  * parses as a JSON object with the required keys
    (bench, ok, git_sha, build_flags, verdicts, tables);
  * every verdict is {"ok": bool, "what": str};
  * obj["ok"] equals the AND of its verdicts (vacuously true when a
    harness gated nothing);
  * every table is {"title": str, "columns": [str], "rows": [[str]]} and
    each row has exactly len(columns) cells.

Usage:
    check_bench_json.py [--require-bench NAME]... [file.jsonl ...]
    some_bench | grep '^BENCH_JSON ' | check_bench_json.py
    check_bench_json.py --self-test

--require-bench NAME fails unless at least one validated line's "bench"
contains NAME (CI uses it to prove a harness actually ran and emitted).
Input lines may carry the "BENCH_JSON " prefix (stdout capture) or be raw
objects (the ABP_BENCH_JSON file format); both are accepted.
"""

import argparse
import json
import sys

PREFIX = "BENCH_JSON "
REQUIRED_KEYS = ("bench", "ok", "git_sha", "build_flags", "verdicts",
                 "tables")


def check_line(obj, where, failures):
    def fail(msg):
        failures.append(f"{where}: {msg}")

    if not isinstance(obj, dict):
        fail("not a JSON object")
        return None
    for key in REQUIRED_KEYS:
        if key not in obj:
            fail(f"missing key '{key}'")
    if not isinstance(obj.get("bench"), str) or not obj.get("bench"):
        fail("'bench' must be a non-empty string")
    if not isinstance(obj.get("ok"), bool):
        fail("'ok' must be a boolean")
    for field in ("git_sha", "build_flags"):
        if field in obj and not isinstance(obj[field], str):
            fail(f"'{field}' must be a string")

    verdicts = obj.get("verdicts", [])
    if not isinstance(verdicts, list):
        fail("'verdicts' must be a list")
        verdicts = []
    verdict_and = True
    for i, v in enumerate(verdicts):
        if not isinstance(v, dict) or not isinstance(v.get("ok"), bool) \
                or not isinstance(v.get("what"), str):
            fail(f"verdict {i} must be {{'ok': bool, 'what': str}}")
            continue
        verdict_and = verdict_and and v["ok"]
    if isinstance(obj.get("ok"), bool) and obj["ok"] != verdict_and:
        fail(f"'ok' is {obj['ok']} but the AND of {len(verdicts)} "
             f"verdict(s) is {verdict_and}")

    tables = obj.get("tables", [])
    if not isinstance(tables, list):
        fail("'tables' must be a list")
        tables = []
    for i, t in enumerate(tables):
        if not isinstance(t, dict):
            fail(f"table {i} not an object")
            continue
        title = t.get("title")
        cols = t.get("columns")
        rows = t.get("rows")
        if not isinstance(title, str):
            fail(f"table {i} missing string 'title'")
        if not isinstance(cols, list) or \
                not all(isinstance(c, str) for c in cols):
            fail(f"table {i} 'columns' must be a list of strings")
            continue
        if not isinstance(rows, list):
            fail(f"table {i} 'rows' must be a list")
            continue
        for j, row in enumerate(rows):
            if not isinstance(row, list) or \
                    not all(isinstance(c, str) for c in row):
                fail(f"table {i} row {j} must be a list of string cells")
            elif len(row) != len(cols):
                fail(f"table {i} row {j} has {len(row)} cell(s), "
                     f"expected {len(cols)}")
    return obj.get("bench") if isinstance(obj.get("bench"), str) else None


def validate_stream(lines, source, failures, benches):
    count = 0
    for i, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        if line.startswith(PREFIX):
            line = line[len(PREFIX):]
        where = f"{source}:{i + 1}"
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as e:
            failures.append(f"{where}: parse error: {e}")
            continue
        count += 1
        bench = check_line(obj, where, failures)
        if bench:
            benches.append(bench)
    return count


def self_test() -> int:
    good = json.dumps({
        "bench": "E99: test", "ok": False, "git_sha": "abc",
        "build_flags": "-O2",
        "verdicts": [{"ok": True, "what": "a"}, {"ok": False, "what": "b"}],
        "tables": [{"title": "t", "columns": ["x", "y"],
                    "rows": [["1", "2"]]}],
    })
    bad_cases = {
        "ok-mismatch": good.replace('"ok": false', '"ok": true', 1),
        "ragged-row": good.replace('["1", "2"]', '["1"]'),
        "missing-key": json.dumps({"bench": "x", "ok": True}),
        "bad-verdict": good.replace('{"ok": true, "what": "a"}',
                                    '{"what": "a"}'),
        "not-json": "BENCH_JSON {nope",
    }
    failures, benches = [], []
    validate_stream([good, PREFIX + good], "good", failures, benches)
    if failures:
        print("check-bench-json: self-test FAIL: good line rejected: "
              + "; ".join(failures))
        return 1
    for name, line in bad_cases.items():
        case_failures = []
        validate_stream([line], name, case_failures, [])
        if not case_failures:
            print(f"check-bench-json: self-test FAIL: bad case '{name}' "
                  "was accepted")
            return 1
    print("check-bench-json: self-test ok "
          f"(1 good line, {len(bad_cases)} bad cases rejected)")
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("inputs", nargs="*",
                    help="BENCH_JSON files (default: stdin)")
    ap.add_argument("--require-bench", action="append", default=[],
                    metavar="NAME",
                    help="fail unless some line's bench name contains NAME")
    ap.add_argument("--self-test", action="store_true",
                    help="validate the validator against known-good/bad lines")
    args = ap.parse_args()

    if args.self_test:
        return self_test()

    failures, benches = [], []
    total = 0
    if args.inputs:
        for path in args.inputs:
            with open(path) as f:
                total += validate_stream(f, path, failures, benches)
    else:
        total += validate_stream(sys.stdin, "<stdin>", failures, benches)

    if total == 0:
        failures.append("no BENCH_JSON lines found in input")
    for name in args.require_bench:
        if not any(name in b for b in benches):
            failures.append(f"required bench '{name}' missing from input "
                            f"(saw: {', '.join(sorted(set(benches))) or 'none'})")

    if failures:
        for f in failures:
            print(f"check-bench-json: FAIL: {f}")
        return 1
    print(f"check-bench-json: ok ({total} line(s) from "
          f"{len(set(benches))} bench(es) match the schema)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
