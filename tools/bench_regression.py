#!/usr/bin/env python3
"""Bench-regression guard (CI: the `bench` job in .github/workflows/ci.yml).

Compares the current run of the two steady-state benches against the
checked-in baseline and exits 1 on a >10% throughput regression:

  * bench_deque_micro (google-benchmark, --benchmark_format=json): the
    single-threaded steady-state loops (BM_OwnerPushPop, BM_OwnerBurst,
    BM_StealDrain). Raw items/s depends on the runner lottery, so each
    implementation's throughput is normalized by the MutexDeque entry of
    the same loop in the same run — the ratio "how much faster than the
    trivially-correct lock-based deque" is a machine-portable measure of
    the lock-free fast paths this repo optimizes. The multi-threaded
    BM_OwnerWithThief loops are excluded: their ratios measure the
    runner's core count and preemption behavior, not the code.
  * bench_multiprog (BENCH_JSON line): per-discipline makespans in
    simulator rounds. These are deterministic given the seeds, so any
    drift at all is a code change, and the 10% threshold is pure slack.

The two sources get different thresholds: the micro ratios still swing
~10% between median-of-5 runs on a loaded host (the reference division
removes the machine, not the scheduler-interference lottery within one
run), so they are guarded at 15%; the deterministic makespans keep the
pure-slack 10%.

Usage:
    bench_regression.py --baseline bench/baseline.json \
        [--micro micro.json] [--bench-json bench.jsonl] \
        [--threshold 0.10] [--micro-threshold 0.15] [--update]

--update rewrites the baseline from the current inputs instead of
comparing. Refresh procedure (documented in EXPERIMENTS.md §E26): rerun
both benches on a quiet machine, inspect the diff, commit the new
baseline in the same PR as the change that legitimately moved it.

BENCH_JSON lines carry build provenance (git_sha, build_flags — stamped by
CMake via bench_common.hpp); it is echoed on every run and recorded in the
baseline on --update so a stale baseline names the commit that produced it.

Overhead mode (CI: the metrics <5% gate, EXPERIMENTS.md §E27) compares two
bench_deque_micro JSON files from the same machine and run pair — A built
with -DABP_TRACE=OFF, B with the default ON — and fails when any guarded
family median in B is slower than its A counterpart by more than the
threshold:

    bench_regression.py overhead --off traceoff.json --on traceon.json \
        [--overhead-threshold 0.05]
"""

import argparse
import json
import sys

# Micro loops whose mutex-normalized throughput is guarded. Key: the
# google-benchmark family name; every "<family><Impl>" entry is compared
# against "<family><MutexDeque>" from the same run.
MICRO_FAMILIES = ("BM_OwnerPushPop", "BM_OwnerBurst", "BM_StealDrain")
MICRO_REFERENCE = "MutexDeque"

# E30 gate: the split deque exists to make the owner fast path cheaper by
# eliminating fences/CAS from push_bottom and private pop_bottom. Guard
# that claim directly with the same-run SplitDeque/AbpDeque items/s ratio
# on the owner-only loops (the machine cancels out, like the mutex
# normalization above). The ratio is recorded in the baseline like any
# micro/ metric AND floored absolutely: the owner path must stay >=20%
# cheaper than ABP in time per op, i.e. throughput ratio >= 1.25.
OWNER_FASTPATH_FAMILIES = ("BM_OwnerPushPop", "BM_OwnerBurst")
OWNER_FASTPATH_SPLIT = "SplitDeque"
OWNER_FASTPATH_BASELINE = "AbpDeque"
OWNER_FASTPATH_MIN_RATIO = 1.25


def fail(msg: str) -> None:
    print(f"bench-regression: FAIL: {msg}")
    sys.exit(1)


def load_micro_ips(path: str) -> dict:
    """name -> items/s from a google-benchmark JSON file (medians when
    --benchmark_repetitions was used, single-run values otherwise)."""
    with open(path) as f:
        data = json.load(f)
    ips, medians = {}, {}
    for b in data.get("benchmarks", []):
        if "items_per_second" not in b:
            continue
        if b.get("run_type") == "aggregate":
            if b.get("aggregate_name") == "median":
                medians[b.get("run_name", b.get("name", ""))] = float(
                    b["items_per_second"])
        else:
            ips[b.get("name", "")] = float(b["items_per_second"])
    return medians if medians else ips


def extract_micro(path: str) -> dict:
    """Mutex-normalized items/s per guarded micro benchmark.

    Run bench_deque_micro with --benchmark_repetitions (the CI job uses 5)
    so the medians are available: single runs of the short loops swing
    well past the threshold on a loaded host, the median does not.
    """
    ips = load_micro_ips(path)
    metrics = {}
    for family in MICRO_FAMILIES:
        ref = None
        for name, value in ips.items():
            if name.startswith(family) and MICRO_REFERENCE in name:
                ref = value
        if ref is None or ref <= 0.0:
            fail(f"micro run has no {family}<...{MICRO_REFERENCE}...> "
                 f"reference entry ({path})")
        for name, value in sorted(ips.items()):
            if not name.startswith(family) or MICRO_REFERENCE in name:
                continue
            # "micro/BM_OwnerPushPop<abp::deque::AbpDeque<Item>>" etc.;
            # higher is better.
            metrics[f"micro/{name}"] = value / ref
    for family in OWNER_FASTPATH_FAMILIES:
        split = abp = None
        for name, value in ips.items():
            if not name.startswith(family + "<"):
                continue
            if OWNER_FASTPATH_SPLIT in name:
                split = value
            elif OWNER_FASTPATH_BASELINE in name:
                abp = value
        if split is None or abp is None or abp <= 0.0:
            fail(f"micro run lacks the {family} SplitDeque/AbpDeque pair "
                 f"needed for the owner-fast-path gate ({path})")
        ratio = split / abp
        print(f"  owner-fastpath {family}: split/abp = {ratio:.3f} "
              f"(floor {OWNER_FASTPATH_MIN_RATIO})")
        if ratio < OWNER_FASTPATH_MIN_RATIO:
            fail(f"owner fast path not >=20% cheaper than ABP: {family} "
                 f"split/abp throughput ratio {ratio:.3f} < "
                 f"{OWNER_FASTPATH_MIN_RATIO}")
        metrics[f"micro/owner_fastpath/{family}/split_vs_abp"] = ratio
    return metrics


def extract_multiprog(path: str, provenance: dict = None) -> dict:
    """Per-(mix, discipline) makespans from bench_multiprog's BENCH_JSON.

    `path` holds one raw JSON object per line (the ABP_BENCH_JSON file
    format); lines from benches other than E20 are ignored so the same
    file may collect several harnesses.
    """
    metrics = {}
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            obj = json.loads(line)
            if "bench_multiprog" not in obj.get("bench", ""):
                continue
            if not obj.get("ok", False):
                fail(f"bench_multiprog reported ok=false ({path})")
            if provenance is not None and "git_sha" in obj:
                provenance["git_sha"] = obj["git_sha"]
                provenance["build_flags"] = obj.get("build_flags", "unknown")
            for table in obj.get("tables", []):
                cols = table.get("columns", [])
                if "makespan" not in cols:
                    continue
                mk = cols.index("makespan")
                title = table.get("title", "?").split("(")[0].strip()
                for row in table.get("rows", []):
                    # Lower is better (simulator rounds, deterministic).
                    metrics[f"multiprog/{title}/{row[0]}"] = -float(row[mk])
    if not metrics:
        fail(f"no bench_multiprog makespan tables found in {path}")
    return metrics


def extract_cache(path: str) -> dict:
    """Deterministic steal/miss counts from bench_cache_complexity's
    regression-guard table (the `cache-regression` table: fixed-seed
    simulator runs, machine-independent like the multiprog makespans).

    Non-fatal when the file carries no E28 lines — older collections and
    local runs of just bench_multiprog stay valid; CI always appends both
    harnesses so the baseline's cache/ metrics are always present there.
    """
    metrics = {}
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            obj = json.loads(line)
            if "bench_cache_complexity" not in obj.get("bench", ""):
                continue
            if not obj.get("ok", False):
                fail(f"bench_cache_complexity reported ok=false ({path})")
            for table in obj.get("tables", []):
                cols = table.get("columns", [])
                if "scenario" not in cols or "misses" not in cols:
                    continue
                mi = cols.index("misses")
                si = cols.index("steals")
                for row in table.get("rows", []):
                    # Lower is better for both (deterministic counts).
                    metrics[f"cache/{row[0]}/misses"] = -float(row[mi])
                    metrics[f"cache/{row[0]}/steals"] = -float(row[si])
    if not metrics:
        print(f"bench-regression: note: no bench_cache_complexity guard "
              f"table in {path}; cache/ metrics skipped")
    return metrics


def extract_tenant(path: str) -> dict:
    """Overload-scenario SLO metrics from bench_multi_tenant's
    `tenant-regression` table (E29): admitted-request p99 and the shed
    fraction at the calibrated 2x operating point.

    Only the overload row is guarded: the under-capacity row's shed_frac
    is identically zero (nothing to compare against) and its p99 is a few
    milliseconds of pure runner noise — the bench's own verdicts (which
    fail the whole line via ok=false) already gate those absolutely. Both
    metrics are timing-driven even after the capacity calibration, so they
    carry their own wide --tenant-threshold rather than the 10% default.

    Non-fatal when the file carries no E29 lines, mirroring extract_cache.
    """
    metrics = {}
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            obj = json.loads(line)
            if "bench_multi_tenant" not in obj.get("bench", ""):
                continue
            if not obj.get("ok", False):
                fail(f"bench_multi_tenant reported ok=false ({path})")
            for table in obj.get("tables", []):
                if table.get("title") != "tenant-regression":
                    continue
                cols = table.get("columns", [])
                pi, si = cols.index("p99_ms"), cols.index("shed_frac")
                for row in table.get("rows", []):
                    if row[0] != "overload":
                        continue
                    # Lower is better for both.
                    metrics["tenant/overload/p99_ms"] = -float(row[pi])
                    metrics["tenant/overload/shed_frac"] = -float(row[si])
    if not metrics:
        print(f"bench-regression: note: no bench_multi_tenant guard "
              f"table in {path}; tenant/ metrics skipped")
    return metrics


def collect(args, provenance: dict) -> dict:
    metrics = {}
    if args.micro:
        metrics.update(extract_micro(args.micro))
    if args.bench_json:
        metrics.update(extract_multiprog(args.bench_json, provenance))
        metrics.update(extract_cache(args.bench_json))
        metrics.update(extract_tenant(args.bench_json))
    if not metrics:
        fail("no inputs: pass --micro and/or --bench-json")
    return metrics


def overhead_main(argv) -> None:
    """The telemetry overhead gate: trace-ON vs trace-OFF micro medians.

    Both files must come from the same machine in the same CI job (the
    runner lottery is the whole reason this is a paired comparison and not
    a baseline comparison). Guarded: every entry of the MICRO_FAMILIES
    loops, including the un-instrumented MutexDeque/SpinlockDeque
    references.

    The gate is the MEDIAN paired slowdown across the guarded suite, not
    any single benchmark: individual paired readings swing +/-12% in BOTH
    directions even back-to-back on one machine (a trace-OFF binary has
    been measured 12% "slower" than its ON twin on loops whose code is
    bit-identical under both flags), so a per-benchmark 5% check is a coin
    flip. A real telemetry leak into the deque fast paths shifts the whole
    guarded set in one direction; symmetric noise leaves the median near
    zero. Per-benchmark lines are still printed for diagnosis.
    """
    ap = argparse.ArgumentParser(prog="bench_regression.py overhead")
    ap.add_argument("--off", required=True,
                    help="bench_deque_micro JSON from an -DABP_TRACE=OFF build")
    ap.add_argument("--on", required=True,
                    help="bench_deque_micro JSON from an -DABP_TRACE=ON build")
    ap.add_argument("--overhead-threshold", type=float, default=0.05,
                    help="max fractional slowdown of ON vs OFF (default 5%%)")
    args = ap.parse_args(argv)

    off, on = load_micro_ips(args.off), load_micro_ips(args.on)
    guarded = sorted(
        name for name in off
        if any(name.startswith(f) for f in MICRO_FAMILIES))
    if not guarded:
        fail(f"no {'/'.join(MICRO_FAMILIES)} entries in {args.off}")
    slowdowns = []
    for name in guarded:
        if name not in on:
            fail(f"{name} present in OFF run but missing from ON run")
        base, traced = off[name], on[name]
        if base <= 0.0:
            fail(f"{name}: non-positive items/s in OFF run")
        slowdown = (base - traced) / base  # fraction of throughput lost
        slowdowns.append(slowdown)
        flag = " (noisy)" if abs(slowdown) > args.overhead_threshold else ""
        print(f"  {name}: off={base:.4g} on={traced:.4g} items/s "
              f"(overhead {slowdown:+.1%}){flag}")
    slowdowns.sort()
    n = len(slowdowns)
    median = (slowdowns[n // 2] if n % 2
              else 0.5 * (slowdowns[n // 2 - 1] + slowdowns[n // 2]))
    print(f"  suite median over {n} benchmark(s): {median:+.1%} "
          f"(budget {args.overhead_threshold:.0%})")
    if median > args.overhead_threshold:
        fail(f"telemetry overhead: median paired slowdown {median:+.1%} "
             f"exceeds the {args.overhead_threshold:.0%} budget")
    print(f"bench-regression: overhead ok (median {median:+.1%} across "
          f"{n} benchmark(s), budget {args.overhead_threshold:.0%})")


def main() -> None:
    if len(sys.argv) > 1 and sys.argv[1] == "overhead":
        overhead_main(sys.argv[2:])
        return

    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--micro", help="bench_deque_micro --benchmark_format=json output")
    ap.add_argument("--bench-json", help="ABP_BENCH_JSON file from bench_multiprog")
    ap.add_argument("--threshold", type=float, default=0.10,
                    help="relative regression that fails (multiprog)")
    ap.add_argument("--micro-threshold", type=float, default=0.15,
                    help="relative regression that fails (micro/ metrics)")
    ap.add_argument("--tenant-threshold", type=float, default=1.0,
                    help="relative regression that fails (tenant/ metrics; "
                         "default 100%%: p99 and shed fraction under open-"
                         "loop overload are timing-driven, so only a "
                         "doubling — shedder wedged on, latency collapse — "
                         "should trip the gate)")
    ap.add_argument("--update", action="store_true",
                    help="rewrite the baseline instead of comparing")
    args = ap.parse_args()

    provenance = {}
    current = collect(args, provenance)
    if provenance:
        print(f"bench-regression: current run provenance: "
              f"git_sha={provenance.get('git_sha', 'unknown')} "
              f"build_flags=\"{provenance.get('build_flags', 'unknown')}\"")

    if args.update:
        doc = {"metrics": current}
        if provenance:
            doc["provenance"] = provenance
        with open(args.baseline, "w") as f:
            json.dump(doc, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"bench-regression: baseline refreshed with "
              f"{len(current)} metric(s) -> {args.baseline}")
        return

    with open(args.baseline) as f:
        baseline_doc = json.load(f)
    baseline = baseline_doc["metrics"]
    base_prov = baseline_doc.get("provenance", {})
    if base_prov:
        print(f"bench-regression: baseline provenance: "
              f"git_sha={base_prov.get('git_sha', 'unknown')} "
              f"build_flags=\"{base_prov.get('build_flags', 'unknown')}\"")

    # All metrics are stored higher-is-better (makespans are negated), so
    # a regression is uniformly "current below baseline by > threshold".
    regressions, improved, missing = [], [], []
    for name, base in sorted(baseline.items()):
        if name not in current:
            missing.append(name)
            continue
        threshold = (args.micro_threshold if name.startswith("micro/")
                     else args.tenant_threshold if name.startswith("tenant/")
                     else args.threshold)
        cur = current[name]
        rel = (cur - base) / abs(base) if base != 0 else 0.0
        status = "ok"
        if rel < -threshold:
            regressions.append(name)
            status = "REGRESSED"
        elif rel > threshold:
            improved.append(name)
            status = "improved"
        print(f"  {name}: baseline={base:.4g} current={cur:.4g} "
              f"({rel:+.1%}, allowed -{threshold:.0%}) {status}")
    for name in sorted(set(current) - set(baseline)):
        print(f"  {name}: NEW (not in baseline; run --update to record)")

    if missing:
        fail(f"{len(missing)} baseline metric(s) missing from this run: "
             + ", ".join(missing))
    if regressions:
        fail(f"{len(regressions)} metric(s) regressed past their "
             "threshold: " + ", ".join(regressions))
    note = (" (baseline looks stale; refresh with --update in this PR)"
            if improved else "")
    print(f"bench-regression: ok ({len(baseline)} metric(s) within "
          "threshold of baseline)" + note)


if __name__ == "__main__":
    main()
