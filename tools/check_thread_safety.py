#!/usr/bin/env python3
"""Clang thread-safety ablation gate (DESIGN.md §15).

Drives the fixture pair in tests/analyze/: the clean.cpp side must
compile with zero -Wthread-safety diagnostics, and every
violation_*.cpp must FAIL to compile with the diagnostic its
`// expect-error: <substring>` header names. Running both directions
proves the analysis is live — a gate that only checks the clean side
cannot tell "no violations" from "analysis silently off" (the
annotation macros expand to nothing on non-Clang compilers, so that
failure mode is one misconfigured toolchain away).

Registered as the `analyze` ctest label in Clang builds; the CI analyze
job runs it after the -Werror=thread-safety build of the whole tree.

Usage: tools/check_thread_safety.py --compiler clang++-18 [--root DIR]
"""

from __future__ import annotations

import argparse
import glob
import os
import re
import subprocess
import sys

EXPECT_RE = re.compile(r"//\s*expect-error:\s*(.+?)\s*$", re.MULTILINE)

BASE_FLAGS = [
    "-std=c++20",
    "-fsyntax-only",
    "-Wthread-safety",
    "-Wthread-safety-beta",
    "-Werror=thread-safety",
    "-Werror=thread-safety-beta",
    "-Werror=thread-safety-analysis",
    # The fixtures deliberately leave values unused.
    "-Wno-unused",
    "-DABP_TRACE_ENABLED=1",
    "-DABP_CHAOS_ENABLED=0",
]


def compile_one(compiler: str, root: str, path: str):
    cmd = [compiler] + BASE_FLAGS + ["-I", os.path.join(root, "src"), path]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    return proc.returncode, proc.stderr


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--compiler", required=True,
                    help="clang++ to drive (the analyze job pins a version)")
    ap.add_argument("--root", default=os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    args = ap.parse_args()

    probe = subprocess.run([args.compiler, "--version"],
                           capture_output=True, text=True)
    if probe.returncode != 0 or "clang" not in probe.stdout.lower():
        print(f"check_thread_safety: '{args.compiler}' is not a working "
              "clang — the thread-safety attributes expand to nothing "
              "elsewhere, so this gate would prove nothing", file=sys.stderr)
        return 2

    fixtures = os.path.join(args.root, "tests", "analyze")
    clean = sorted(glob.glob(os.path.join(fixtures, "clean*.cpp")))
    violations = sorted(glob.glob(os.path.join(fixtures, "violation_*.cpp")))
    if not clean or len(violations) < 3:
        print(f"check_thread_safety: fixture set incomplete under "
              f"{fixtures} ({len(clean)} clean, {len(violations)} "
              "violations; need >=1 and >=3)", file=sys.stderr)
        return 1

    failures = []
    for path in clean:
        rel = os.path.relpath(path, args.root)
        rc, err = compile_one(args.compiler, args.root, path)
        if rc != 0:
            failures.append(f"{rel}: clean fixture must compile "
                            f"warning-free, got:\n{err}")
        else:
            print(f"  ok: {rel} compiles clean")

    for path in violations:
        rel = os.path.relpath(path, args.root)
        with open(path, encoding="utf-8") as f:
            text = f.read()
        needles = EXPECT_RE.findall(text)
        if not needles:
            failures.append(f"{rel}: violation fixture carries no "
                            "`// expect-error:` header")
            continue
        rc, err = compile_one(args.compiler, args.root, path)
        if rc == 0:
            failures.append(f"{rel}: seeded violation COMPILED — the "
                            "thread-safety analysis is not rejecting it")
            continue
        for needle in needles:
            if needle not in err:
                failures.append(
                    f"{rel}: rejected, but the diagnostic does not "
                    f"mention '{needle}'; got:\n{err}")
                break
        else:
            print(f"  ok: {rel} rejected "
                  f"({'; '.join(repr(n) for n in needles)})")

    if failures:
        print("\n".join(failures), file=sys.stderr)
        print(f"\ncheck_thread_safety: {len(failures)} failure(s)",
              file=sys.stderr)
        return 1
    print(f"check_thread_safety: analysis is live ({len(clean)} clean "
          f"fixture(s) pass, {len(violations)} seeded violations rejected)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
