#!/usr/bin/env python3
"""Lock-discipline and worker-context lint (DESIGN.md §15).

Clang's thread-safety analysis (ABP_ANALYZE=ON) proves lock/data
consistency, but it cannot express *scheduling-class* discipline: a
worker executing or stealing jobs must never block, because a blocked
worker is exactly the descheduled processor the ABP bounds charge for.
This lint covers that gap, plus the hygiene that makes the Clang
analysis sound in the first place. Three rules over src/:

1. raw-primitive: std synchronization primitives (std::mutex,
   std::condition_variable, std::lock_guard, ...) are banned outside
   src/support/sync.hpp — every acquisition must go through the
   annotated sync:: wrappers so -Wthread-safety sees it. File-level
   waiver: `// context-lint: allow-raw(<reason>)`.

2. worker-context blocking: functions reachable from job/steal context
   — the ROOTS table below, plus any body marked
   `// context-lint: worker-context(<name>)` (for worker lambdas) —
   must not contain condition waits, sleeps, annotated-mutex
   acquisition, thread joins, or I/O. Spinlock acquisition is
   deliberately NOT a violation: the fiber layer and the reference
   deques spin by design, and a bounded spin is not a scheduling-class
   block. Intentional exceptions live in the WAIVERS table with a
   reason; a waiver that no longer matches anything fails the lint.

3. cv-discipline: every sync::CondVar wait call must either have taken
   a sync::MutexLock on the mutex it names earlier in the same function
   body, or sit in a function annotated ABP_REQUIRES(that mutex).

Heuristic, not a compiler: function extraction is textual, and the call
graph only follows callees whose name resolves to exactly one
definition inside src/ (virtual dispatch and overload sets are skipped,
which is why the hot-path roots are enumerated explicitly). The Clang
analysis is the sound backstop for locking; this lint is the executable
form of the "workers never block" invariant.

Usage: tools/context_lint.py [--root DIR] [--self-test]
Exits nonzero and prints one line per violation on failure.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
import tempfile

SRC_DIR = "src"
SYNC_HPP = os.path.join("src", "support", "sync.hpp")

# ---------------------------------------------------------------------------
# Rule tables.
# ---------------------------------------------------------------------------

RAW_PRIMITIVES = [
    re.compile(
        r"\bstd\s*::\s*(?:mutex|timed_mutex|recursive_mutex"
        r"|recursive_timed_mutex|shared_mutex|shared_timed_mutex"
        r"|condition_variable|condition_variable_any|lock_guard"
        r"|unique_lock|scoped_lock|shared_lock)\b"),
    re.compile(r"\bpthread_(?:mutex|cond|rwlock)_\w+"),
]

ALLOW_RAW_RE = re.compile(r"//\s*context-lint:\s*allow-raw\(([^)]*)\)")
MARKER_RE = re.compile(r"//\s*context-lint:\s*worker-context\((["
                       r"\w.]+)\)")

# What counts as blocking in worker context. Order matters only for
# message stability.
BLOCKING = [
    ("cv-wait", re.compile(r"\.\s*wait(?:_for|_until)?\s*\(")),
    ("sleep", re.compile(r"\bsleep_(?:for|until)\s*\(")),
    ("mutex-acquire", re.compile(r"\bMutexLock\b")),
    ("thread-join", re.compile(r"\.\s*join\s*\(\s*\)")),
    ("io", re.compile(r"\bstd\s*::\s*c(?:out|err|in)\b|\bf?printf\s*\("
                      r"|\bfopen\s*\(|\bfstream\b|\bofstream\b"
                      r"|\bifstream\b|\bsystem\s*\(")),
]

# Entry points of the job/steal context. Everything reachable from these
# (through unambiguous calls) is held to the no-blocking rule. A root
# that stops resolving is an error — the table must track the code.
ROOTS = [
    ("src/runtime/scheduler.hpp", "Worker::publish_live_now"),
    ("src/runtime/scheduler.hpp", "Worker::maybe_publish_live"),
    ("src/runtime/scheduler.hpp", "Worker::push"),
    ("src/runtime/scheduler.hpp", "Worker::pop_bottom"),
    ("src/runtime/scheduler.hpp", "Worker::try_steal"),
    ("src/runtime/scheduler.hpp", "Worker::execute"),
    ("src/runtime/scheduler.hpp", "Worker::yield_between_steals"),
    ("src/runtime/scheduler.hpp", "TaskGroup::spawn"),
    ("src/runtime/scheduler.hpp", "TaskGroup::drain"),
    ("src/runtime/scheduler.hpp", "TaskGroup::on_complete"),
    ("src/runtime/scheduler.hpp", "TaskGroup::park"),
    ("src/runtime/scheduler.hpp", "TaskGroup::wait"),
    ("src/runtime/scheduler.hpp", "Scheduler::notify_parked"),
    ("src/runtime/scheduler.cpp", "Scheduler::work_loop"),
    ("src/runtime/dag_engine.cpp", "dag_engine.worker_fn"),
    ("src/runtime/tenant/tenant_service.cpp",
     "TenantService::dispatcher_loop"),
    ("src/runtime/tenant/tenant_service.cpp", "TenantService::run_first"),
    ("src/runtime/tenant/tenant_service.cpp", "TenantService::run_stage"),
    ("src/runtime/tenant/tenant_service.cpp", "TenantService::leaf_done"),
    ("src/runtime/tenant/tenant_service.cpp", "TenantService::finalize"),
    ("src/fiber/fiber.cpp", "FiberScheduler::worker_loop"),
    ("src/fiber/fiber.cpp", "FiberScheduler::allocate"),
    ("src/fiber/fiber.cpp", "FiberScheduler::spawn"),
    ("src/fiber/fiber.cpp", "FiberScheduler::join"),
    ("src/fiber/fiber.cpp", "FiberScheduler::make_ready"),
    ("src/fiber/fiber.cpp", "FiberScheduler::block_current"),
    ("src/fiber/fiber.cpp", "FiberScheduler::trampoline_lo"),
    ("src/fiber/fiber.cpp", "Semaphore::p"),
    ("src/fiber/fiber.cpp", "Semaphore::v"),
    ("src/fiber/fiber.cpp", "Event::wait"),
    ("src/fiber/fiber.cpp", "Event::set"),
    ("src/fiber/fiber.cpp", "FiberBarrier::arrive_and_wait"),
    ("src/fiber/channel.hpp", "Channel::send"),
    ("src/fiber/channel.hpp", "Channel::receive"),
    ("src/fiber/channel.hpp", "Channel::take_"),
]

# Intentional blocking in worker context: (file, function, kind, why).
# Every entry must suppress at least one finding or the lint fails, so
# a waiver cannot outlive the code it excuses.
WAIVERS = [
    ("src/runtime/scheduler.hpp", "TaskGroup::park", "mutex-acquire",
     "the designed parking slow path: only entered after "
     "park_after_failed_steals consecutive failed steals"),
    ("src/runtime/scheduler.hpp", "TaskGroup::park", "cv-wait",
     "bounded park behind the lost-wakeup re-check protocol "
     "(DESIGN.md resilience); the timeout restores non-blocking-ness"),
    ("src/runtime/scheduler.hpp", "Worker::yield_between_steals",
     "sleep",
     "YieldPolicy::kSleep is the paper's yield discipline between "
     "steal attempts, opt-in via SchedulerOptions::yield"),
    ("src/runtime/scheduler.hpp", "Scheduler::notify_parked",
     "mutex-acquire",
     "empty critical section ordering a completion against an "
     "in-flight park decision; never held across other work"),
    ("src/runtime/dag_engine.cpp", "dag_engine.worker_fn", "sleep",
     "YieldPolicy::kSleep between steal attempts, opt-in"),
    ("src/runtime/dag_engine.cpp", "dag_engine.worker_fn",
     "mutex-acquire",
     "first-failure exception capture: at most one acquisition per "
     "run, on the path that tears the run down anyway"),
    ("src/fiber/fiber.cpp", "FiberScheduler::worker_loop", "sleep",
     "YieldPolicy::kSleep between steal attempts, opt-in"),
    ("src/fiber/fiber.cpp", "FiberScheduler::allocate",
     "mutex-acquire",
     "spawn-path registry append, amortized against the stack "
     "allocation it guards; never on the steal path"),
    ("src/runtime/tenant/park.hpp", "SubmitterParkingLot::wake",
     "mutex-acquire",
     "empty critical section ordering a capacity release against an "
     "in-flight park decision (the notify_parked idiom); guarded by a "
     "no-waiter fast path so the finalize path takes it only when a "
     "submitter is actually parked on the bucket"),
]

KEYWORDS = frozenset("""
    if for while switch catch return sizeof alignof alignas decltype
    static_assert new delete throw else do case default assert defined
    noexcept operator and or not xor co_await co_return co_yield
    requires static_cast dynamic_cast const_cast reinterpret_cast
    typeid int bool void char auto double float long short unsigned
    signed const constexpr template typename using namespace
""".split())

# Words allowed between a definition's ')' and its body '{'. Anything
# else (an `if` after a statement macro, an operator, a ternary) means
# the parenthesized thing was an expression, not a signature.
TRAILER_WORDS = frozenset({"const", "noexcept", "override", "final",
                           "mutable", "try"})


# ---------------------------------------------------------------------------
# Text utilities (same approach as tools/atomics_lint.py).
# ---------------------------------------------------------------------------

def blank_comments_and_strings(text: str) -> str:
    """Replace comments and string/char literals with spaces.

    Newlines survive so offsets and line numbers stay aligned with the
    original text.
    """
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            if j == -1:
                j = n
            out.append(" " * (j - i))
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            chunk = text[i:j]
            out.append("".join(ch if ch == "\n" else " " for ch in chunk))
            i = j
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == quote:
                    j += 1
                    break
                if text[j] == "\n":  # unterminated; bail at EOL
                    break
                j += 1
            out.append(quote + " " * (j - i - 2) + (quote if j > i + 1 else ""))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def match_delim(text: str, open_idx: int, open_ch: str, close_ch: str) -> int:
    """Index of the delimiter closing text[open_idx], or -1."""
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == open_ch:
            depth += 1
        elif text[i] == close_ch:
            depth -= 1
            if depth == 0:
                return i
    return -1


def split_args(arg_text: str) -> list[str]:
    """Split a call's argument text on top-level commas."""
    args, depth, start = [], 0, 0
    for i, c in enumerate(arg_text):
        if c in "([{<":
            depth += 1
        elif c in ")]}>":
            depth -= 1
        elif c == "," and depth == 0:
            args.append(arg_text[start:i])
            start = i + 1
    tail = arg_text[start:]
    if tail.strip() or args:
        args.append(tail)
    return [a.strip() for a in args]


def line_of(text: str, offset: int) -> int:
    return text.count("\n", 0, offset) + 1


# ---------------------------------------------------------------------------
# Function extraction.
# ---------------------------------------------------------------------------

class Function:
    __slots__ = ("rel", "name", "sig_start", "body_start", "body_end")

    def __init__(self, rel, name, sig_start, body_start, body_end):
        self.rel = rel
        self.name = name          # as written: qualified for out-of-class
        self.sig_start = sig_start
        self.body_start = body_start  # index of the opening '{'
        self.body_end = body_end      # index of the closing '}'

    @property
    def simple(self):
        return self.name.rsplit("::", 1)[-1]


IDENT_CHARS = set("abcdefghijklmnopqrstuvwxyz"
                  "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_")


def extract_functions(blanked: str, rel: str) -> list[Function]:
    """Best-effort scan for function definitions (things with bodies)."""
    funcs = []
    for m in re.finditer(r"\(", blanked):
        open_idx = m.start()
        # Walk back over the identifier (possibly ::-qualified, maybe ~).
        j = open_idx - 1
        while j >= 0 and blanked[j] in " \t\n":
            j -= 1
        end = j + 1
        while j >= 0 and (blanked[j] in IDENT_CHARS or
                          blanked[j] == ":" or blanked[j] == "~"):
            j -= 1
        name = blanked[j + 1:end].strip(":").lstrip("~")
        if not name or name[0].isdigit():
            continue
        if name.rsplit("::", 1)[-1] in KEYWORDS:
            continue
        # Member-access or chained calls are never definitions.
        k = j
        while k >= 0 and blanked[k] in " \t\n":
            k -= 1
        if k >= 0 and blanked[k] in ".)":
            continue
        if k >= 1 and blanked[k] == ">" and blanked[k - 1] == "-":
            continue
        close_idx = match_delim(blanked, open_idx, "(", ")")
        if close_idx == -1:
            continue
        # Scan the trailer between ')' and the body '{' (or give up).
        i = close_idx + 1
        body_start = -1
        in_init_list = False
        limit = i + 600
        while i < len(blanked) and i < limit:
            c = blanked[i]
            if c in " \t\n":
                i += 1
                continue
            if c == "(":
                j2 = match_delim(blanked, i, "(", ")")
                if j2 == -1:
                    break
                i = j2 + 1
                continue
            if c == ";":
                break  # declaration or plain call
            if c == "{":
                if in_init_list and blanked[i - 1] not in " \t\n)":
                    # brace-init of a member inside the init list
                    j2 = match_delim(blanked, i, "{", "}")
                    if j2 == -1:
                        break
                    i = j2 + 1
                    continue
                body_start = i
                break
            if in_init_list:
                i += 1
                continue
            if c == ":":
                if i + 1 < len(blanked) and blanked[i + 1] == ":":
                    i += 2
                    continue
                in_init_list = True
                i += 1
                continue
            if c.isalpha() or c == "_":
                m2 = re.match(r"\w+", blanked[i:])
                word = m2.group(0)
                if word not in TRAILER_WORDS and \
                        not word.startswith("ABP_"):
                    break  # e.g. an `if` after a statement macro
                i += m2.end()
                continue
            if c in "-><&*,":
                i += 1  # trailing-return arrows, ref-qualifiers
                continue
            break  # operators etc: an expression, not a definition
        if body_start == -1:
            continue
        body_end = match_delim(blanked, body_start, "{", "}")
        if body_end == -1:
            continue
        funcs.append(Function(rel, name, j + 1, body_start, body_end))
    return funcs


def extract_markers(raw: str, blanked: str, rel: str) -> list[Function]:
    """Pseudo-functions from `// context-lint: worker-context(NAME)`."""
    out = []
    for m in MARKER_RE.finditer(raw):
        brace = blanked.find("{", m.end())
        if brace == -1:
            raise SystemExit(
                f"{rel}:{line_of(raw, m.start())}: worker-context marker "
                "with no following body")
        body_end = match_delim(blanked, brace, "{", "}")
        if body_end == -1:
            raise SystemExit(
                f"{rel}:{line_of(raw, m.start())}: worker-context marker "
                "body never closes")
        out.append(Function(rel, m.group(1), m.start(), brace, body_end))
    return out


# ---------------------------------------------------------------------------
# The lint proper.
# ---------------------------------------------------------------------------

CALL_RE = re.compile(r"\b([A-Za-z_]\w*(?:::\w+)*)\s*\(")
CV_DECL_RE = re.compile(r"\b(?:sync::)?CondVar\s+(\w+)\s*;")
WAIT_CALL_RE = re.compile(r"\b(\w+)\s*\.\s*wait(?:_for|_until)?\s*(\()")
REQUIRES_RE = re.compile(r"\bABP_REQUIRES\s*(\()")


def norm(expr: str) -> str:
    return re.sub(r"\s+", "", expr)


def collect_sources(root: str) -> list[str]:
    rels = []
    src = os.path.join(root, SRC_DIR)
    for dirpath, _dirnames, filenames in os.walk(src):
        for fn in sorted(filenames):
            if fn.endswith((".hpp", ".cpp", ".h", ".cc")):
                rels.append(os.path.relpath(os.path.join(dirpath, fn), root))
    return sorted(rels)


def run_lint(root: str, roots=None, waivers=None, errors=None) -> list[str]:
    roots = ROOTS if roots is None else roots
    waivers = WAIVERS if waivers is None else waivers
    errors = [] if errors is None else errors

    raw_by_rel, blanked_by_rel = {}, {}
    for rel in collect_sources(root):
        with open(os.path.join(root, rel), encoding="utf-8") as f:
            raw = f.read()
        raw_by_rel[rel] = raw
        blanked_by_rel[rel] = blank_comments_and_strings(raw)

    # ---- rule 1: raw primitives --------------------------------------
    for rel, blanked in blanked_by_rel.items():
        if rel.replace(os.sep, "/") == SYNC_HPP.replace(os.sep, "/"):
            continue
        raw = raw_by_rel[rel]
        waiver = ALLOW_RAW_RE.search(raw)
        hits = []
        for rx in RAW_PRIMITIVES:
            hits.extend(rx.finditer(blanked))
        if hits and waiver is None:
            for h in hits:
                errors.append(
                    f"{rel}:{line_of(blanked, h.start())}: raw-primitive: "
                    f"'{h.group(0)}' — use the annotated sync:: wrappers "
                    "(support/sync.hpp), or waive with "
                    "// context-lint: allow-raw(<reason>)")
        elif waiver is not None and not hits:
            errors.append(
                f"{rel}:{line_of(raw, waiver.start())}: stale waiver: "
                "allow-raw but the file uses no raw primitives")

    # ---- function index ----------------------------------------------
    functions: list[Function] = []
    for rel, blanked in blanked_by_rel.items():
        if rel.replace(os.sep, "/") == SYNC_HPP.replace(os.sep, "/"):
            continue
        functions.extend(extract_functions(blanked, rel))
        functions.extend(extract_markers(raw_by_rel[rel], blanked, rel))

    by_simple: dict[str, list[Function]] = {}
    by_full: dict[str, list[Function]] = {}
    for fn in functions:
        by_simple.setdefault(fn.simple, []).append(fn)
        by_full.setdefault(fn.name, []).append(fn)

    # ---- rule 2: worker-context closure ------------------------------
    def root_candidates(rel: str, name: str) -> list[Function]:
        simple = name.rsplit("::", 1)[-1]
        return [fn for fn in by_simple.get(simple, [])
                if fn.rel.replace(os.sep, "/") == rel and
                (fn.name == name or "::" not in fn.name or
                 fn.name.endswith("::" + simple))]

    worklist: list[Function] = []
    seen_fn: set[tuple] = set()
    for rel, name in roots:
        cands = root_candidates(rel, name)
        if not cands:
            errors.append(f"{rel}: worker-context root '{name}' not found "
                          "— update ROOTS in tools/context_lint.py")
            continue
        for fn in cands:
            key = (fn.rel, fn.name, fn.body_start)
            if key not in seen_fn:
                seen_fn.add(key)
                worklist.append(fn)

    used_waivers: set[int] = set()

    def waived(fn: Function, kind: str) -> bool:
        hit = False
        for idx, (wrel, wfunc, wkind, _why) in enumerate(waivers):
            if wkind != kind:
                continue
            if wrel != fn.rel.replace(os.sep, "/"):
                continue
            if wfunc == fn.name or \
                    wfunc.rsplit("::", 1)[-1] == fn.simple:
                used_waivers.add(idx)
                hit = True
        return hit

    while worklist:
        fn = worklist.pop()
        blanked = blanked_by_rel[fn.rel]
        body = blanked[fn.body_start + 1:fn.body_end]
        for kind, rx in BLOCKING:
            for m in rx.finditer(body):
                if waived(fn, kind):
                    continue
                errors.append(
                    f"{fn.rel}:{line_of(blanked, fn.body_start + 1 + m.start())}: "
                    f"blocking-in-worker-context ({kind}): '{m.group(0).strip()}' "
                    f"in {fn.name}, reachable from the job/steal path — "
                    "workers must never block (add a WAIVERS entry only "
                    "with a written justification)")
        for m in CALL_RE.finditer(body):
            name = m.group(1)
            simple = name.rsplit("::", 1)[-1]
            if simple in KEYWORDS or re.fullmatch(r"[A-Z0-9_]+", name):
                continue
            cands = by_full.get(name) if "::" in name else None
            if not cands:
                cands = by_simple.get(simple, [])
                if len(cands) != 1:
                    continue  # unresolvable or ambiguous: out of scope
            if len(cands) != 1:
                continue
            callee = cands[0]
            key = (callee.rel, callee.name, callee.body_start)
            if key not in seen_fn:
                seen_fn.add(key)
                worklist.append(callee)

    for idx, (wrel, wfunc, wkind, _why) in enumerate(waivers):
        if idx not in used_waivers:
            errors.append(
                f"{wrel}: stale waiver: ({wfunc}, {wkind}) no longer "
                "suppresses anything — delete it from WAIVERS")

    # ---- rule 3: cv-discipline ---------------------------------------
    cv_names: set[str] = set()
    for rel, blanked in blanked_by_rel.items():
        if rel.replace(os.sep, "/") == SYNC_HPP.replace(os.sep, "/"):
            continue
        for m in CV_DECL_RE.finditer(blanked):
            cv_names.add(m.group(1))

    fns_by_rel: dict[str, list[Function]] = {}
    for fn in functions:
        fns_by_rel.setdefault(fn.rel, []).append(fn)

    for rel, blanked in blanked_by_rel.items():
        if rel.replace(os.sep, "/") == SYNC_HPP.replace(os.sep, "/"):
            continue
        for m in WAIT_CALL_RE.finditer(blanked):
            if m.group(1) not in cv_names:
                continue
            open_idx = m.start(2)
            close_idx = match_delim(blanked, open_idx, "(", ")")
            if close_idx == -1:
                continue
            args = split_args(blanked[open_idx + 1:close_idx])
            if not args:
                continue
            mutex = norm(args[0])
            enclosing = None
            for fn in fns_by_rel.get(rel, []):
                if fn.body_start < m.start() < fn.body_end:
                    if enclosing is None or \
                            (fn.body_end - fn.body_start) < \
                            (enclosing.body_end - enclosing.body_start):
                        enclosing = fn
            ok = False
            if enclosing is not None:
                header = blanked[enclosing.sig_start:enclosing.body_start]
                for rm in REQUIRES_RE.finditer(header):
                    rclose = match_delim(header, rm.start(1), "(", ")")
                    if rclose != -1 and mutex in \
                            [norm(a) for a in
                             split_args(header[rm.start(1) + 1:rclose])]:
                        ok = True
                before = blanked[enclosing.body_start:m.start()]
                if re.search(r"\bMutexLock\s+\w+\s*\(\s*" +
                             re.escape(mutex) + r"\s*\)", norm_ws(before)):
                    ok = True
            if not ok:
                errors.append(
                    f"{rel}:{line_of(blanked, m.start())}: cv-discipline: "
                    f"{m.group(1)}.wait on '{args[0].strip()}' without a "
                    "sync::MutexLock of that mutex in scope or an "
                    "ABP_REQUIRES annotation on the enclosing function")
    return errors


def norm_ws(text: str) -> str:
    """Collapse whitespace runs so multi-line guards still match."""
    return re.sub(r"\s+", " ", text)


# ---------------------------------------------------------------------------
# Self-test.
# ---------------------------------------------------------------------------

SELF_TEST_SCRATCH = """\
#pragma once
#include <chrono>
#include <thread>
#include "support/sync.hpp"

namespace scratch {

struct Widget {
  sync::Mutex mu_;
  sync::CondVar cv_;
  bool ready_ = false;

  void bad_wait() {
    cv_.wait(mu_);  // neither holds mu_ nor declares ABP_REQUIRES
  }
  void good_wait() {
    sync::MutexLock lk(mu_);
    cv_.wait(mu_);
  }
  void annotated_wait() ABP_REQUIRES(mu_) { cv_.wait(mu_); }
};

struct Thief {
  void try_steal() {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  void execute() { helper(); }
  void helper() { sync::MutexLock lk(mu_); }
  sync::Mutex mu_;
};

inline void host() {
  // context-lint: worker-context(scratch.lam)
  auto lam = [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  };
  lam();
}

}  // namespace scratch
"""

SELF_TEST_RAW = """\
#include <mutex>
std::mutex bad_raw;  // must be flagged: raw primitive outside sync.hpp
"""

SELF_TEST_WAIVED_RAW = """\
// context-lint: allow-raw(third-party interop fixture)
#include <mutex>
std::mutex tolerated;
"""


def self_test() -> int:
    with tempfile.TemporaryDirectory() as tmp:
        scratch_dir = os.path.join(tmp, "src", "runtime")
        os.makedirs(scratch_dir)
        os.makedirs(os.path.join(tmp, "src", "support"))
        with open(os.path.join(tmp, SYNC_HPP), "w", encoding="utf-8") as f:
            f.write("#pragma once\n// excluded from scanning\n")
        with open(os.path.join(scratch_dir, "scratch.hpp"), "w",
                  encoding="utf-8") as f:
            f.write(SELF_TEST_SCRATCH)
        with open(os.path.join(scratch_dir, "raw.cpp"), "w",
                  encoding="utf-8") as f:
            f.write(SELF_TEST_RAW)
        with open(os.path.join(scratch_dir, "waived_raw.cpp"), "w",
                  encoding="utf-8") as f:
            f.write(SELF_TEST_WAIVED_RAW)

        roots = [
            ("src/runtime/scratch.hpp", "Thief::try_steal"),
            ("src/runtime/scratch.hpp", "Thief::execute"),
            ("src/runtime/scratch.hpp", "scratch.lam"),
        ]
        waivers = [
            ("src/runtime/scratch.hpp", "Thief::nonexistent", "sleep",
             "bogus entry: must be reported stale"),
        ]
        errors = run_lint(tmp, roots=roots, waivers=waivers)

        expectations = [
            ("raw.cpp flagged", lambda e: "raw.cpp" in e and
             "raw-primitive" in e),
            ("bad_wait flagged", lambda e: "cv-discipline" in e and
             ":14:" in e),
            ("try_steal sleep flagged", lambda e:
             "blocking-in-worker-context (sleep)" in e and
             "try_steal" in e),
            ("helper mutex flagged via closure", lambda e:
             "blocking-in-worker-context (mutex-acquire)" in e and
             "helper" in e),
            ("marker lambda flagged", lambda e:
             "blocking-in-worker-context (sleep)" in e and
             "scratch.lam" in e),
            ("stale waiver flagged", lambda e: "stale waiver" in e and
             "Thief::nonexistent" in e),
        ]
        failures = []
        for label, pred in expectations:
            if not any(pred(e) for e in errors):
                failures.append(f"self-test: missing expected error: {label}")
        for e in errors:
            if "good_wait" in e or "annotated_wait" in e:
                failures.append(f"self-test: false positive: {e}")
            if "waived_raw" in e:
                failures.append(f"self-test: waived file flagged: {e}")
        unexpected_kinds = [e for e in errors
                            if "scratch" not in e and "raw.cpp" not in e
                            and "Thief::nonexistent" not in e]
        if unexpected_kinds:
            failures.extend(f"self-test: unexpected error: {e}"
                            for e in unexpected_kinds)
        if failures:
            print("\n".join(failures), file=sys.stderr)
            print("\nall errors produced:", file=sys.stderr)
            print("\n".join(f"  {e}" for e in errors), file=sys.stderr)
            return 1
        print(f"context_lint self-test OK ({len(errors)} expected errors "
              "produced, no false positives)")
        return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    ap.add_argument("--self-test", action="store_true")
    args = ap.parse_args()
    if args.self_test:
        return self_test()
    errors = run_lint(args.root)
    if errors:
        print("\n".join(errors), file=sys.stderr)
        print(f"\ncontext_lint: {len(errors)} violation(s)", file=sys.stderr)
        return 1
    print(f"context_lint: clean ({len(ROOTS)} worker-context roots, "
          f"{len(WAIVERS)} active waivers)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
