#!/usr/bin/env python3
"""Atomics-discipline lint for the work-stealing deques.

Four checks, all over src/:

  1. explicit-order   Every atomic operation names an explicit
                      std::memory_order. Implicit seq_cst — `.load()`,
                      `.store(v)`, `x++`, `x = v`, `fetch_add(1)`,
                      bare `test_and_set()` — is rejected.
  2. atomic-scope     `std::atomic` may be declared only under
                      src/deque, src/obs, src/support. Other files must
                      carry a `// atomics-lint: allow(<reason>)` waiver.
  3. chaos-coverage   Every compare_exchange site under src/deque has a
                      CHAOS_POINT within the preceding lines, so the
                      fault-injection harness can preempt at the CAS.
  4. model-drift      Every atomic op in a modeled deque (a file with at
                      least one named anchor) carries a `// model-site:`
                      comment naming its row in the model checker's
                      kOrderTable (src/model/weak_machine.cpp, between
                      the ATOMICS-LINT-TABLE markers); the source
                      memory_order must equal the model's declared order,
                      every table row must be anchored somewhere, and
                      unmodeled ops must say `model-site: none(<why>)`.

Anchors may list several comma-separated sites when one helper serves
multiple modeled access points (Chase-Lev's Buffer::get).

Exit status: 0 clean, 1 violations (one per line on stderr).
Usage: tools/atomics_lint.py [repo-root]
       tools/atomics_lint.py --self-test   # lint a deliberately broken
                                           # scratch file; exit 0 iff the
                                           # lint rejects it
"""

import re
import sys
from pathlib import Path

ALLOWED_ATOMIC_DIRS = ("src/deque", "src/obs", "src/support")
MODEL_TABLE = "src/model/weak_machine.cpp"
TABLE_BEGIN = "ATOMICS-LINT-TABLE-BEGIN"
TABLE_END = "ATOMICS-LINT-TABLE-END"
WAIVER = re.compile(r"//\s*atomics-lint:\s*allow\(")
ANCHOR = re.compile(r"//\s*model-site:\s*(.*)")

# MemOrder::kX (model) -> std::memory_order_x (source)
ORDER_NAMES = {
    "Relaxed": "relaxed",
    "Acquire": "acquire",
    "Release": "release",
    "AcqRel": "acq_rel",
    "SeqCst": "seq_cst",
}

OP_RE = re.compile(
    r"(?:(?:\.|->)\s*(load|store|exchange|compare_exchange_weak|"
    r"compare_exchange_strong|fetch_add|fetch_sub|fetch_and|fetch_or|"
    r"fetch_xor|test_and_set)|\b(?:std::)?(atomic_thread_fence))\s*\("
)

# `x++`, `--x`, `x += 1`, `x = v` on a name declared std::atomic in the
# same file: the operator forms are implicit seq_cst.
ATOMIC_DECL_RE = re.compile(
    r"std::atomic(?:_flag|_bool|_int)?\s*(?:<[^;{}]*?>)?\s*>?\s*"
    r"(\w+)\s*(?:\{[^}]*\})?\s*[;=]"
)


def blank_comments_and_strings(text: str) -> str:
    """Replace comments and string/char literals with spaces, keeping
    newlines so line numbers survive."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            out.append("".join(ch if ch == "\n" else " " for ch in text[i:j]))
            i = j
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(quote + " " * (j - i - 2) + quote if j - i >= 2 else c)
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def match_parens(text: str, open_idx: int) -> int:
    """Index one past the ')' matching text[open_idx] == '(', or -1."""
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return i + 1
    return -1


def split_args(argtext: str):
    """Top-level comma split of the text between the call's parens."""
    args, depth, start = [], 0, 0
    for i, c in enumerate(argtext):
        if c in "(<[{":
            depth += 1
        elif c in ")>]}":
            # `->` is the member operator, not a closing angle bracket
            # (e.g. compare_exchange_weak(head, head->next, ...)).
            if c == ">" and i > 0 and argtext[i - 1] == "-":
                continue
            depth -= 1
        elif c == "," and depth == 0:
            args.append(argtext[start:i].strip())
            start = i + 1
    tail = argtext[start:].strip()
    if tail:
        args.append(tail)
    return [a for a in args if a]


class Op:
    def __init__(self, kind, line, args):
        self.kind = kind
        self.line = line  # 1-based line of the call
        self.args = args
        self.argtext = ", ".join(args)

    @property
    def orders(self):
        return re.findall(r"memory_order_(\w+)", self.argtext)


def find_ops(blanked: str):
    """All atomic-looking ops with their argument lists."""
    ops = []
    for m in OP_RE.finditer(blanked):
        kind = m.group(1) or m.group(2)
        open_idx = blanked.index("(", m.end() - 1)
        close = match_parens(blanked, open_idx)
        if close < 0:
            continue
        line = blanked.count("\n", 0, m.start()) + 1
        ops.append(Op(kind, line, split_args(blanked[open_idx + 1 : close - 1])))
    return ops


def is_atomic_op(op: Op) -> bool:
    """Heuristic filter: model-checker methods share names with atomic
    ops (WeakMemory::store takes 4 args) — classify by arity."""
    n = len(op.args)
    has_order = bool(op.orders)
    if op.kind == "load":
        return n == 0 or (n == 1 and has_order)
    if op.kind in ("store", "exchange"):
        return n == 1 or (n == 2 and has_order)
    if op.kind.startswith("fetch_"):
        return n == 1 or (n == 2 and has_order)
    if op.kind.startswith("compare_exchange"):
        return 2 <= n <= 4
    if op.kind in ("test_and_set", "atomic_thread_fence"):
        return True
    return False


def implicit_order(op: Op) -> bool:
    n = len(op.args)
    if op.kind == "load":
        return n == 0
    if op.kind in ("store", "exchange") or op.kind.startswith("fetch_"):
        return n == 1
    if op.kind.startswith("compare_exchange"):
        return n == 2
    if op.kind == "test_and_set":
        return n == 0
    if op.kind == "atomic_thread_fence":
        return not op.orders
    return False


def parse_order_table(root: Path, errors):
    text = (root / MODEL_TABLE).read_text()
    begin, end = text.find(TABLE_BEGIN), text.find(TABLE_END)
    if begin < 0 or end < 0:
        errors.append(f"{MODEL_TABLE}: {TABLE_BEGIN}/{TABLE_END} markers missing")
        return {}
    table = {}
    for site, order in re.findall(
        r'\{"([a-z_.0-9]+)",\s*MemOrder::k(\w+)\}', text[begin:end]
    ):
        table[site] = ORDER_NAMES.get(order, "?")
    if not table:
        errors.append(f"{MODEL_TABLE}: kOrderTable parsed empty")
    return table


def lint_file(path: Path, rel: str, table, anchored_sites, errors):
    text = path.read_text()
    lines = text.splitlines()
    blanked = blank_comments_and_strings(text)
    ops = [op for op in find_ops(blanked) if is_atomic_op(op)]

    # 1. explicit-order: calls.
    for op in ops:
        if implicit_order(op):
            errors.append(
                f"{rel}:{op.line}: {op.kind} with implicit "
                "memory_order_seq_cst — name the order explicitly"
            )
    # 1b. explicit-order: operator forms on names declared atomic here.
    decl_names = set(ATOMIC_DECL_RE.findall(blanked))
    for name in decl_names:
        for m in re.finditer(
            rf"(?:\+\+|--)\s*{re.escape(name)}\b"
            rf"|\b{re.escape(name)}\s*(?:\+\+|--|[-+|&^]?=(?!=))",
            blanked,
        ):
            line = blanked.count("\n", 0, m.start()) + 1
            srcline = blanked.splitlines()[line - 1]
            # Skip declarations (`std::atomic_flag f = ...`, or a plain
            # member shadowing the atomic's name) and statements that
            # already name an explicit order (`plain = atomic.load(o)`).
            if "std::atomic" in srcline or "memory_order" in srcline:
                continue
            if re.search(rf"[\w>]\s+{re.escape(name)}\s*=", srcline):
                continue
            errors.append(
                f"{rel}:{line}: operator on atomic '{name}' is implicit "
                "seq_cst — use .load/.store/.fetch_* with an explicit order"
            )

    # 2. atomic-scope.
    if "std::atomic" in blanked and not rel.startswith(ALLOWED_ATOMIC_DIRS):
        if not WAIVER.search(text):
            errors.append(
                f"{rel}: std::atomic outside {'/'.join(ALLOWED_ATOMIC_DIRS)} "
                "without an `// atomics-lint: allow(<reason>)` waiver"
            )
    # 2b. stale waivers: an allow(<reason>) in a directory that already
    # permits std::atomic, or in a file that no longer uses any, excuses
    # nothing — fail loudly so waivers cannot outlive the code they
    # excused (the atomics may have moved behind the sync:: wrappers).
    waiver_m = WAIVER.search(text)
    if waiver_m is not None:
        wline = text.count("\n", 0, waiver_m.start()) + 1
        if rel.startswith(ALLOWED_ATOMIC_DIRS):
            errors.append(
                f"{rel}:{wline}: stale atomics-lint waiver: this directory "
                "already allows std::atomic — delete the allow(...) comment"
            )
        elif "std::atomic" not in blanked:
            errors.append(
                f"{rel}:{wline}: stale atomics-lint waiver: the file uses "
                "no std::atomic — delete the allow(...) comment"
            )

    if not rel.startswith("src/deque"):
        return

    # 3. chaos-coverage: every CAS preceded by a CHAOS_POINT.
    for op in ops:
        if not op.kind.startswith("compare_exchange"):
            continue
        window = lines[max(0, op.line - 9) : op.line]
        if not any("CHAOS_POINT(" in ln for ln in window):
            errors.append(
                f"{rel}:{op.line}: compare_exchange without a CHAOS_POINT "
                "in the preceding lines — the chaos harness cannot preempt it"
            )

    # 4. model-drift. Anchors live in comments, so scan the original text.
    anchors = []  # (line, payload)
    for i, ln in enumerate(lines, start=1):
        m = ANCHOR.search(ln)
        if m:
            anchors.append((i, m.group(1).strip()))
    named = [(l, p) for (l, p) in anchors if not p.startswith("none(")]
    if not named:
        return  # not a modeled deque (e.g. the spinlock/mutex baselines)

    for line, payload in named:
        sites = [s.strip() for s in payload.split(",") if s.strip()]
        bad = [s for s in sites if s not in table]
        if bad:
            errors.append(
                f"{rel}:{line}: model-site {', '.join(bad)} not in "
                f"{MODEL_TABLE} kOrderTable"
            )
            continue
        after = [op for op in ops if line < op.line <= line + 6]
        if not after:
            errors.append(
                f"{rel}:{line}: model-site anchor with no atomic op in the "
                "next lines"
            )
            continue
        op = after[0]
        # For a CAS the first listed order is the success order, which is
        # what the model declares.
        actual = op.orders[0] if op.orders else "seq_cst (implicit)"
        for site in sites:
            anchored_sites.add(site)
            want = table[site]
            if actual != want:
                errors.append(
                    f"{rel}:{op.line}: {site} is memory_order_{actual} in "
                    f"source but memory_order_{want} in the model — "
                    "re-prove or fix the drift"
                )

    anchor_lines = [l for (l, _) in anchors]
    for op in ops:
        if not any(0 <= op.line - al <= 5 for al in anchor_lines):
            errors.append(
                f"{rel}:{op.line}: atomic {op.kind} without a "
                "`// model-site:` anchor (use `model-site: none(<why>)` "
                "for unmodeled ops)"
            )


# A scratch deque that violates the lint on purpose: an implicit-seq_cst
# load, a CAS without a CHAOS_POINT, and atomic ops without model-site
# anchors (the file has one named anchor, so model-drift applies).
SELF_TEST_SOURCE = """\
#include <atomic>
struct ScratchDeque {
  std::atomic<unsigned> age{0};
  std::atomic<unsigned> bot{0};
  unsigned pop_top() {
    // model-site: growable.pop_top.age_load
    unsigned a = age.load(std::memory_order_acquire);
    unsigned b = bot.load();  // implicit seq_cst: must be rejected
    if (b <= a) return 0;
    age.compare_exchange_strong(a, a + 1);  // no order, no CHAOS_POINT
    return b;
  }
  unsigned peek_bottom() {
    // An atomic access with no model-site anchor in the preceding lines:
    // model-drift must demand an anchor (or a none(<why>) waiver).
    return bot.load(std::memory_order_relaxed);
  }
};
"""

# A file whose waiver outlived its atomics: nothing left to excuse, so
# the stale-waiver rule must reject it.
SELF_TEST_STALE_WAIVER = """\
// atomics-lint: allow(counters that were since migrated to sync::Mutex)
struct NoAtomicsLeft {
  int plain_counter = 0;
};
"""


def self_test() -> int:
    """The lint must reject SELF_TEST_SOURCE; a lint that waves it through
    has lost one of its checks."""
    import tempfile

    root = Path(__file__).parent.parent
    errors = []
    table = parse_order_table(root, errors)
    with tempfile.TemporaryDirectory() as tmp:
        scratch = Path(tmp) / "scratch_selftest.hpp"
        scratch.write_text(SELF_TEST_SOURCE)
        lint_file(scratch, "src/deque/scratch_selftest.hpp", table, set(),
                  errors)
        stale = Path(tmp) / "scratch_stale.hpp"
        stale.write_text(SELF_TEST_STALE_WAIVER)
        # Outside the allowed dirs AND with no atomics left: stale.
        lint_file(stale, "src/runtime/scratch_stale.hpp", table, set(),
                  errors)
        # Inside an allowed dir a waiver is redundant by construction.
        lint_file(stale, "src/obs/scratch_stale.hpp", table, set(), errors)
    expected = [
        ("implicit-order", "implicit memory_order_seq_cst"),
        ("chaos-coverage", "without a CHAOS_POINT"),
        ("model-drift", "without a `// model-site:` anchor"),
        ("stale-waiver-no-atomics", "uses no std::atomic"),
        ("stale-waiver-allowed-dir", "already allows std::atomic"),
    ]
    missing = [
        name for (name, needle) in expected
        if not any(needle in e for e in errors)
    ]
    if missing:
        print(
            "atomics-lint self-test FAILED: scratch violations not "
            f"rejected: {', '.join(missing)}",
            file=sys.stderr,
        )
        for e in errors:
            print(f"  (reported: {e})", file=sys.stderr)
        return 1
    print(
        f"atomics-lint self-test: ok ({len(errors)} scratch violation(s) "
        "rejected)"
    )
    return 0


def main() -> int:
    if len(sys.argv) > 1 and sys.argv[1] == "--self-test":
        return self_test()
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(__file__).parent.parent
    errors = []
    table = parse_order_table(root, errors)
    anchored_sites = set()
    files = sorted((root / "src").rglob("*.hpp")) + sorted(
        (root / "src").rglob("*.cpp")
    )
    for path in files:
        rel = path.relative_to(root).as_posix()
        lint_file(path, rel, table, anchored_sites, errors)
    for site in sorted(set(table) - anchored_sites):
        errors.append(
            f"{MODEL_TABLE}: site '{site}' is never anchored in src/deque — "
            "add a `// model-site:` comment at the implementing access"
        )
    for e in errors:
        print(e, file=sys.stderr)
    if errors:
        print(f"atomics-lint: {len(errors)} violation(s)", file=sys.stderr)
        return 1
    n_ops = len(table)
    print(f"atomics-lint: clean ({n_ops} model sites cross-checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
