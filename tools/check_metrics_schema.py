#!/usr/bin/env python3
"""Validates the live metrics plane's two export formats against a golden
schema (tools/metrics_schema.json). CI's metrics-smoke job pipes
examples/live_metrics through this script.

Input (stdout of the example, file arg or stdin):

  * METRICS_JSON {...} lines — the MetricsPump's streaming JSON: every
    line must parse, carry the schema's required keys, have strictly
    increasing "seq", and each counter under "totals" must be monotone
    non-decreasing across lines (the epoch-consistent snapshot guarantee:
    a later read never shows less than an earlier one).
  * A PROMETHEUS_BEGIN ... PROMETHEUS_END block — Prometheus text
    exposition: required gauges/counters present with # TYPE lines,
    counters named *_total, histogram _bucket series cumulative and
    monotone in le with the +Inf bucket equal to _count.

Usage:
    check_metrics_schema.py [--schema tools/metrics_schema.json] [out.txt]
    ./build/examples/live_metrics | python3 tools/check_metrics_schema.py
"""

import argparse
import json
import math
import os
import re
import sys

JSON_PREFIX = "METRICS_JSON "
PROM_BEGIN = "PROMETHEUS_BEGIN"
PROM_END = "PROMETHEUS_END"


class Checker:
    def __init__(self):
        self.failures = []

    def fail(self, msg):
        self.failures.append(msg)

    def expect(self, cond, msg):
        if not cond:
            self.fail(msg)
        return cond


def check_metrics_json(lines, schema, c: Checker):
    required = schema.get("required_keys", [])
    required_totals = schema.get("required_totals", [])
    prev_seq, prev_totals = None, {}
    count = 0
    for i, line in enumerate(lines):
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as e:
            c.fail(f"METRICS_JSON line {i}: parse error: {e}")
            continue
        count += 1
        for key in required:
            c.expect(key in obj, f"METRICS_JSON line {i}: missing key "
                                 f"'{key}'")
        seq = obj.get("seq")
        if schema.get("seq_strictly_increasing") and seq is not None:
            if prev_seq is not None:
                c.expect(seq > prev_seq,
                         f"METRICS_JSON line {i}: seq {seq} not greater "
                         f"than previous {prev_seq}")
            prev_seq = seq
        totals = obj.get("totals", {})
        if isinstance(totals, dict):
            for key in required_totals:
                c.expect(key in totals, f"METRICS_JSON line {i}: totals "
                                        f"missing '{key}'")
            if schema.get("monotone_totals"):
                for key, value in totals.items():
                    if key in prev_totals:
                        c.expect(
                            value >= prev_totals[key],
                            f"METRICS_JSON line {i}: totals['{key}'] went "
                            f"backwards ({prev_totals[key]} -> {value})")
                prev_totals.update(totals)
    c.expect(count >= 1, "no METRICS_JSON lines found")
    return count


# One exposition line: name{labels} value  (labels optional).
SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([^}]*)\})?\s+(\S+)$")


def parse_prometheus(block, c: Checker):
    """Returns (types, samples): metric -> declared type, and a list of
    (name, labels-dict, value)."""
    types, samples = {}, []
    for i, line in enumerate(block):
        line = line.strip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if c.expect(len(parts) == 4,
                        f"prometheus line {i}: malformed TYPE: '{line}'"):
                types[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue
        m = SAMPLE_RE.match(line)
        if not c.expect(m is not None,
                        f"prometheus line {i}: unparseable sample: '{line}'"):
            continue
        name, _, labelstr, value = m.groups()
        labels = {}
        if labelstr:
            for part in labelstr.split(","):
                if not part:
                    continue
                k, _, v = part.partition("=")
                labels[k.strip()] = v.strip().strip('"')
        try:
            fvalue = float(value)
        except ValueError:
            c.fail(f"prometheus line {i}: non-numeric value '{value}'")
            continue
        samples.append((name, labels, fvalue))
    return types, samples


def check_prometheus(block, schema, c: Checker):
    types, samples = parse_prometheus(block, c)
    present = {name for name, _, _ in samples}

    for g in schema.get("required_gauges", []):
        c.expect(g in present, f"prometheus: missing gauge {g}")
        c.expect(types.get(g) == "gauge",
                 f"prometheus: {g} not declared '# TYPE {g} gauge'")
    for ct in schema.get("required_counters", []):
        c.expect(ct in present, f"prometheus: missing counter {ct}")
        c.expect(types.get(ct) == "counter",
                 f"prometheus: {ct} not declared '# TYPE {ct} counter'")
        c.expect(ct.endswith("_total"),
                 f"prometheus: counter {ct} not named *_total")
        for name, _, value in samples:
            if name == ct:
                c.expect(value >= 0.0,
                         f"prometheus: counter {ct} negative ({value})")

    def check_histogram_series(h, buckets, count_value, sum_value, what):
        if not c.expect(buckets, f"prometheus: {what} has no _bucket series"):
            return
        c.expect(count_value is not None,
                 f"prometheus: {what} missing _count")
        c.expect(sum_value is not None, f"prometheus: {what} missing _sum")
        buckets.sort(key=lambda b: b[0])
        c.expect(buckets[-1][0] == math.inf,
                 f"prometheus: {what} missing le=\"+Inf\" bucket")
        for (le_a, v_a), (le_b, v_b) in zip(buckets, buckets[1:]):
            c.expect(v_b >= v_a,
                     f"prometheus: {what} bucket le={le_b} count {v_b} below "
                     f"le={le_a} count {v_a} (not cumulative)")
        if count_value is not None:
            c.expect(buckets[-1][1] == count_value,
                     f"prometheus: {what} +Inf bucket {buckets[-1][1]} != "
                     f"_count {count_value}")

    for h in schema.get("required_histograms", []):
        c.expect(types.get(h) == "histogram",
                 f"prometheus: {h} not declared '# TYPE {h} histogram'")
        buckets = []
        count_value, sum_value = None, None
        for name, labels, value in samples:
            if name == f"{h}_bucket" and "le" in labels:
                le = labels["le"]
                buckets.append((math.inf if le == "+Inf" else float(le),
                                value))
            elif name == f"{h}_count":
                count_value = value
            elif name == f"{h}_sum":
                sum_value = value
        check_histogram_series(h, buckets, count_value, sum_value, h)

    # Labeled histograms (one series per label set, e.g. the per-tenant
    # abp_tenant_request_latency_ns{tenant="..."}): every label group must
    # independently satisfy the cumulative/bucket invariants — pooling the
    # groups would compare counts across unrelated series.
    for h in schema.get("required_labeled_histograms", []):
        c.expect(types.get(h) == "histogram",
                 f"prometheus: {h} not declared '# TYPE {h} histogram'")
        groups = {}
        for name, labels, value in samples:
            if not name.startswith(h):
                continue
            key = tuple(sorted((k, v) for k, v in labels.items()
                               if k != "le"))
            g = groups.setdefault(key, {"buckets": [], "count": None,
                                        "sum": None})
            if name == f"{h}_bucket" and "le" in labels:
                le = labels["le"]
                g["buckets"].append(
                    (math.inf if le == "+Inf" else float(le), value))
            elif name == f"{h}_count":
                g["count"] = value
            elif name == f"{h}_sum":
                g["sum"] = value
        if not c.expect(groups, f"prometheus: {h} has no series at all"):
            continue
        for key, g in sorted(groups.items()):
            what = f"{h}{{{','.join(f'{k}={v}' for k, v in key)}}}"
            check_histogram_series(h, g["buckets"], g["count"], g["sum"],
                                   what)


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    default_schema = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                  "metrics_schema.json")
    ap.add_argument("--schema", default=default_schema)
    ap.add_argument("--require-tenant", action="store_true",
                    help="additionally validate the multi-tenant counter "
                         "family (tenant_metrics_json / tenant_prometheus "
                         "schema sections; fed by bench_multi_tenant)")
    ap.add_argument("input", nargs="?", help="example output (default stdin)")
    args = ap.parse_args()

    with open(args.schema) as f:
        schema = json.load(f)

    stream = open(args.input) if args.input else sys.stdin
    json_lines, prom_block = [], []
    in_prom = False
    for line in stream:
        line = line.rstrip("\n")
        if line.strip() == PROM_BEGIN:
            in_prom = True
        elif line.strip() == PROM_END:
            in_prom = False
        elif in_prom:
            prom_block.append(line)
        elif line.startswith(JSON_PREFIX):
            json_lines.append(line[len(JSON_PREFIX):])

    c = Checker()
    n = check_metrics_json(json_lines, schema.get("metrics_json", {}), c)
    if c.expect(prom_block, "no PROMETHEUS_BEGIN/END block found"):
        check_prometheus(prom_block, schema.get("prometheus", {}), c)
    if args.require_tenant:
        check_metrics_json(json_lines, schema.get("tenant_metrics_json", {}),
                           c)
        if prom_block:
            check_prometheus(prom_block, schema.get("tenant_prometheus", {}),
                             c)

    if c.failures:
        for f in c.failures:
            print(f"metrics-schema: FAIL: {f}")
        return 1
    print(f"metrics-schema: ok ({n} METRICS_JSON line(s), "
          f"{len(prom_block)} prometheus line(s) match the golden schema)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
