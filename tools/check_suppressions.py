#!/usr/bin/env python3
"""Staleness check for the sanitizer suppression files.

A suppression entry is a standing exemption from TSan/UBSan, and an
entry that outlives the code it excused is how a real race or UB report
gets silently swallowed forever. Every real entry in
sanitizers/{tsan,ubsan}.supp must therefore:

1. use a suppression kind the owning sanitizer understands (a typo'd
   kind is accepted by the runtime as a never-matching pattern — the
   worst failure mode, an entry that looks load-bearing and isn't);
2. carry a justifying comment on the line(s) directly above it (the
   files' own house rule: "a bare suppression is how real races hide");
3. name something that still exists: the pattern's identifier-ish stem
   must occur somewhere under src/ or tests/, so entries pointing at
   deleted or renamed code fail the lint instead of rotting.

Run from CI's sanitize jobs and the lint job:
    tools/check_suppressions.py [--root DIR] [--self-test]
"""

from __future__ import annotations

import argparse
import os
import re
import sys
import tempfile

TSAN_KINDS = frozenset({
    "race", "race_top", "thread", "mutex", "signal", "deadlock",
    "called_from_lib",
})
UBSAN_KINDS = frozenset({
    "undefined", "alignment", "bool", "bounds", "enum",
    "float-cast-overflow", "float-divide-by-zero", "function",
    "integer-divide-by-zero", "nonnull-attribute", "null", "pointer-overflow",
    "return", "returns-nonnull-attribute", "shift", "shift-base",
    "shift-exponent", "signed-integer-overflow", "unreachable", "unsigned-integer-overflow",
    "vla-bound", "vptr",
})

SUPP_FILES = [
    (os.path.join("sanitizers", "tsan.supp"), TSAN_KINDS),
    (os.path.join("sanitizers", "ubsan.supp"), UBSAN_KINDS),
]

# The pattern's longest identifier-ish run: for `race:GrowableDeque::grow`
# that is `GrowableDeque`; for `called_from_lib:libgomp.so` it is
# `libgomp`. Globs and separators split the stems.
STEM_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]{2,}")


def check_file(path: str, rel: str, kinds: frozenset,
               source_text: str, errors: list) -> int:
    """Lints one .supp file; returns the number of real entries."""
    try:
        with open(path, encoding="utf-8") as f:
            lines = f.read().splitlines()
    except FileNotFoundError:
        errors.append(f"{rel}: missing — CI points the sanitizers at it")
        return 0
    entries = 0
    prev_comment = False
    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line:
            prev_comment = False
            continue
        if line.startswith("#"):
            prev_comment = True
            continue
        entries += 1
        if ":" not in line:
            errors.append(f"{rel}:{lineno}: malformed entry '{line}' — "
                          "expected kind:pattern")
            prev_comment = False
            continue
        kind, pattern = line.split(":", 1)
        if kind not in kinds:
            errors.append(
                f"{rel}:{lineno}: unknown suppression kind '{kind}' — the "
                "sanitizer would accept it as a never-matching entry "
                f"(known: {', '.join(sorted(kinds))})")
        if not prev_comment:
            errors.append(
                f"{rel}:{lineno}: entry '{line}' has no justifying comment "
                "on the line above — cite the report and why it is benign")
        stems = STEM_RE.findall(pattern)
        if stems and not any(stem in source_text for stem in stems):
            errors.append(
                f"{rel}:{lineno}: stale entry '{line}' — none of "
                f"{stems} occurs under src/ or tests/; the code it "
                "excused is gone, delete the entry")
        prev_comment = False
    return entries


def gather_sources(root: str) -> str:
    chunks = []
    for sub in ("src", "tests"):
        base = os.path.join(root, sub)
        for dirpath, _dirs, files in os.walk(base):
            for fn in files:
                if fn.endswith((".hpp", ".cpp", ".h", ".cc")):
                    with open(os.path.join(dirpath, fn),
                              encoding="utf-8") as f:
                        chunks.append(f.read())
    return "\n".join(chunks)


def run(root: str) -> list:
    errors: list = []
    source_text = gather_sources(root)
    total = 0
    for rel, kinds in SUPP_FILES:
        total += check_file(os.path.join(root, rel), rel, kinds,
                            source_text, errors)
    if not errors:
        print(f"check_suppressions: clean ({total} live suppression "
              "entr{}, both files well-formed)".format(
                  "y" if total == 1 else "ies"))
    return errors


SELF_TEST_TSAN = """\
# A justified entry naming code that exists: must pass.
# Report 2026-07-30: benign publish/read pair, see DESIGN.md.
race:GrowableDeque

race:FunctionThatNeverExisted_xq9

# kind typo'd: 'races' is not a TSan suppression kind.
races:GrowableDeque
"""

SELF_TEST_UBSAN = """\
# Justified but stale: the symbol is gone.
alignment:RemovedHelper_zz41
"""


def self_test() -> int:
    with tempfile.TemporaryDirectory() as tmp:
        os.makedirs(os.path.join(tmp, "sanitizers"))
        os.makedirs(os.path.join(tmp, "src"))
        os.makedirs(os.path.join(tmp, "tests"))
        with open(os.path.join(tmp, "src", "code.hpp"), "w",
                  encoding="utf-8") as f:
            f.write("class GrowableDeque {};\n")
        with open(os.path.join(tmp, "sanitizers", "tsan.supp"), "w",
                  encoding="utf-8") as f:
            f.write(SELF_TEST_TSAN)
        with open(os.path.join(tmp, "sanitizers", "ubsan.supp"), "w",
                  encoding="utf-8") as f:
            f.write(SELF_TEST_UBSAN)
        errors = run(tmp)
    expected = [
        ("uncommented entry", lambda e: "no justifying comment" in e and
         "FunctionThatNeverExisted_xq9" in e),
        ("stale entry", lambda e: "stale entry" in e and
         "FunctionThatNeverExisted_xq9" in e),
        ("unknown kind", lambda e: "unknown suppression kind 'races'" in e),
        ("stale ubsan entry", lambda e: "stale entry" in e and
         "RemovedHelper_zz41" in e),
    ]
    failures = [label for label, pred in expected
                if not any(pred(e) for e in errors)]
    for e in errors:
        if "race:GrowableDeque" in e and "races" not in e:
            failures.append(f"false positive on the good entry: {e}")
    if failures:
        print("check_suppressions self-test FAILED:", file=sys.stderr)
        for f_ in failures:
            print(f"  missing/unexpected: {f_}", file=sys.stderr)
        for e in errors:
            print(f"  (reported: {e})", file=sys.stderr)
        return 1
    print(f"check_suppressions self-test OK ({len(errors)} seeded "
          "violations rejected, good entry passed)")
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    ap.add_argument("--self-test", action="store_true")
    args = ap.parse_args()
    if args.self_test:
        return self_test()
    errors = run(args.root)
    for e in errors:
        print(e, file=sys.stderr)
    if errors:
        print(f"check_suppressions: {len(errors)} violation(s)",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
