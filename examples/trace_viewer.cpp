// Telemetry demo: capture a Chrome trace (chrome://tracing / Perfetto) and
// a one-line stats JSON from both schedulers.
//
//   ./build/examples/trace_viewer [out_prefix] [workers] [fib_n]
//
// Writes <out_prefix>runtime.json — the real runtime's per-worker event
// timeline (job spans, steals, yields) — and <out_prefix>sim.json — the
// simulated work stealer's per-round counters (p_i, throws, log10 Φ) in the
// same format. Open either file via chrome://tracing "Load" or
// https://ui.perfetto.dev. The stats JSON line (steal-latency /
// job-run percentiles) goes to stdout.
//
// Requires -DABP_TRACE=ON (the default) for the runtime part; the
// simulator timeline works in either configuration.

#include <cstdio>
#include <fstream>
#include <string>

#include "dag/builders.hpp"
#include "obs/export.hpp"
#include "obs/timeline.hpp"
#include "runtime/scheduler.hpp"
#include "sched/work_stealer.hpp"
#include "sim/kernel.hpp"
#include "sim/profile.hpp"

using abp::runtime::Scheduler;
using abp::runtime::SchedulerOptions;
using abp::runtime::TaskGroup;
using abp::runtime::Worker;

namespace {

long fib(Worker& w, int n) {
  if (n < 12) return n < 2 ? n : fib(w, n - 1) + fib(w, n - 2);
  long a = 0;
  TaskGroup tg(w);
  tg.spawn([&a, n](Worker& w2) { a = fib(w2, n - 1); });
  const long b = fib(w, n - 2);
  tg.wait();
  return a + b;
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << content;
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string prefix = argc > 1 ? argv[1] : "trace_";
  std::size_t workers = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 4;
  if (workers == 0) workers = 4;  // unparsable or zero argv[2]
  const int fib_n = argc > 3 ? std::atoi(argv[3]) : 27;

  // ---- real runtime -------------------------------------------------------
  {
    SchedulerOptions options;
    options.num_workers = workers;
    Scheduler scheduler(options);
    long result = 0;
    scheduler.run([&](Worker& w) { result = fib(w, fib_n); });
    std::printf("fib(%d) = %ld on %zu workers\n", fib_n, result,
                scheduler.num_workers());

    if (Scheduler::trace_compiled()) {
      const std::string path = prefix + "runtime.json";
      if (!write_file(path, scheduler.chrome_trace_json())) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return 1;
      }
      std::printf("runtime trace: %s (load in chrome://tracing)\n",
                  path.c_str());
    } else {
      std::printf("runtime trace: skipped (built with -DABP_TRACE=OFF)\n");
    }
    std::printf("STATS_JSON %s\n", scheduler.stats_json().c_str());
  }

  // ---- simulated work stealer under a benign kernel -----------------------
  {
    const auto d = abp::dag::fib_dag(14);
    const std::size_t p = workers;
    abp::sim::BenignKernel kernel(
        p, abp::sim::periodic_profile(p, 16, p > 1 ? p / 2 : 1, 16),
        /*seed=*/7);
    abp::obs::SimTimeline timeline;
    timeline.set_name("fib_dag(14), benign kernel");
    abp::sched::Options opts;
    opts.seed = 42;
    opts.timeline = &timeline;
    opts.sample_potential = true;
    const auto m = abp::sched::run_work_stealer(d, kernel, opts);

    const std::string path = prefix + "sim.json";
    if (!write_file(path, timeline.chrome_trace_json())) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 1;
    }
    std::printf("sim trace: %s — %llu rounds, completed=%d\n", path.c_str(),
                (unsigned long long)m.length, (int)m.completed);
    std::printf("SIM_STATS_JSON %s\n", timeline.stats_json().c_str());
  }
  return 0;
}
