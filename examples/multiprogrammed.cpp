// Multiprogramming demo: two parallel computations plus a serial CPU hog
// share one machine — the exact scenario from the paper's introduction
// ("a parallel design verifier may execute concurrently with other serial
// and parallel applications").
//
// Each computation runs on its own work-stealing scheduler with P workers;
// the kernel (Linux here) decides who gets the processors. The point of
// the paper's bound T1/PA + O(Tinf*P/PA) is that each computation makes
// efficient use of whatever share PA it receives: the combined wall-clock
// time stays near the sum of the serial times, with no collapse from
// oversubscription.

#include <chrono>
#include <cstdio>
#include <thread>

#include "runtime/algorithms.hpp"
#include "runtime/background_load.hpp"
#include "runtime/scheduler.hpp"

using namespace abp;
using runtime::Worker;

namespace {

long fib_serial(int n) {
  return n < 2 ? n : fib_serial(n - 1) + fib_serial(n - 2);
}

long fib(Worker& w, int n) {
  if (n < 16) return fib_serial(n);
  long a = 0;
  runtime::TaskGroup tg(w);
  tg.spawn([&a, n](Worker& w2) { a = fib(w2, n - 1); });
  const long b = fib(w, n - 2);
  tg.wait();
  return a + b;
}

double sum_sqrt(Worker& w, std::size_t n) {
  return runtime::parallel_reduce<double>(
      w, 0, n, 4096, 0.0,
      [](std::size_t i) {
        double x = double(i);
        // a few Newton steps for sqrt, to make each iteration cost real work
        double g = x * 0.5 + 1.0;
        for (int it = 0; it < 4; ++it) g = 0.5 * (g + x / (g + 1e-12));
        return g;
      },
      [](double a, double b) { return a + b; });
}

double run_alone_fib(int n) {
  runtime::Scheduler s(runtime::SchedulerOptions{});
  long out = 0;
  const auto t0 = std::chrono::steady_clock::now();
  s.run([&](Worker& w) { out = fib(w, n); });
  const auto t1 = std::chrono::steady_clock::now();
  std::printf("  [alone] fib(%d) = %ld in %.3f s\n", n, out,
              std::chrono::duration<double>(t1 - t0).count());
  return std::chrono::duration<double>(t1 - t0).count();
}

double run_alone_sum(std::size_t n) {
  runtime::Scheduler s(runtime::SchedulerOptions{});
  double out = 0;
  const auto t0 = std::chrono::steady_clock::now();
  s.run([&](Worker& w) { out = sum_sqrt(w, n); });
  const auto t1 = std::chrono::steady_clock::now();
  std::printf("  [alone] sum_sqrt(%zu) = %.3e in %.3f s\n", n, out,
              std::chrono::duration<double>(t1 - t0).count());
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace

int main() {
  const int fib_n = 27;
  const std::size_t sum_n = 4'000'000;

  std::printf("Phase 1: each computation alone\n");
  const double t_fib = run_alone_fib(fib_n);
  const double t_sum = run_alone_sum(sum_n);

  std::printf("\nPhase 2: both computations + 1 serial CPU hog, "
              "concurrently (the multiprogrammed mix)\n");
  runtime::SchedulerOptions opts;
  opts.num_workers = 4;  // each app asks for 4 processes
  opts.yield = runtime::YieldPolicy::kYield;

  runtime::BackgroundLoad hog;
  hog.start(1, 1.0);

  long fib_out = 0;
  double sum_out = 0;
  const auto t0 = std::chrono::steady_clock::now();
  std::thread app_a([&] {
    runtime::Scheduler s(opts);
    s.run([&](Worker& w) { fib_out = fib(w, fib_n); });
  });
  std::thread app_b([&] {
    runtime::Scheduler s(opts);
    s.run([&](Worker& w) { sum_out = sum_sqrt(w, sum_n); });
  });
  app_a.join();
  app_b.join();
  const auto t1 = std::chrono::steady_clock::now();
  hog.stop();

  const double together = std::chrono::duration<double>(t1 - t0).count();
  std::printf("  fib(%d) = %ld and sum_sqrt(%zu) = %.3e finished together "
              "in %.3f s\n",
              fib_n, fib_out, sum_n, sum_out, together);
  std::printf("\nSerial-sum baseline (fib alone + sum alone): %.3f s\n",
              t_fib + t_sum);
  std::printf("Overhead of sharing the machine (with a hog taking ~1/3 of "
              "it): %.2fx over the no-hog serial sum — efficient use of "
              "whatever the kernel provides, with 9 runnable threads on "
              "this host.\n",
              together / (t_fib + t_sum));
  return 0;
}
