// Live metrics: read the runtime's counters MID-RUN, without stopping it.
//
// Build the project, then run:  ./build/examples/live_metrics [fib_n] [P]
//
// Every worker publishes its counters through a per-worker seqlock on a
// ~100us cadence from its own steal loop (no reader ever blocks a worker;
// a torn read is detected and retried, never returned). Three consumers
// run here while the fib workload executes:
//
//   * Scheduler::live_snapshot() — an epoch-consistent sum over the
//     per-worker samples. The main thread polls it concurrently with the
//     run and checks the counters only ever grow.
//   * obs::MetricsPump — a background sampler aggregating deltas into
//     rates and streaming one JSON line per tick (printed below as
//     METRICS_JSON, validated by tools/check_metrics_schema.py in CI).
//   * Scheduler::prometheus_text() — Prometheus text exposition, printed
//     between PROMETHEUS_BEGIN/PROMETHEUS_END for the same checker.
//
// Exit status is the self-check: mid-run snapshots monotone, final
// snapshot consistent with the post-quiesce totals, both export formats
// well-formed.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.hpp"
#include "obs/pump.hpp"
#include "runtime/scheduler.hpp"

using abp::runtime::Scheduler;
using abp::runtime::SchedulerOptions;
using abp::runtime::TaskGroup;
using abp::runtime::Worker;

namespace {

long fib(Worker& w, int n) {
  if (n < 14) {
    return n < 2 ? n : fib(w, n - 1) + fib(w, n - 2);
  }
  long a = 0;
  TaskGroup tg(w);
  tg.spawn([&a, n](Worker& w2) { a = fib(w2, n - 1); });
  const long b = fib(w, n - 2);
  tg.wait();
  return a + b;
}

bool check(bool ok, const char* what) {
  if (!ok) std::fprintf(stderr, "live_metrics: FAIL: %s\n", what);
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  const int fib_n = argc > 1 ? std::atoi(argv[1]) : 33;
  SchedulerOptions options;
  options.num_workers = argc > 2 ? std::atoi(argv[2]) : 4;
  options.locality_domain_size = 2;  // pairs: steals across pairs count as
                                     // cross-domain in the provenance tree
  Scheduler scheduler(options);

  abp::obs::MetricsPump::Options pump_opts;
  pump_opts.interval_ms = 20;
  abp::obs::MetricsPump pump([&scheduler] { return scheduler.live_sample(); },
                             pump_opts);
  pump.start();

  // Run the workload on a helper thread so this thread can poll the live
  // plane concurrently — exactly what an external scraper would do.
  long result = 0;
  std::atomic<bool> done{false};
  std::thread runner([&] {
    scheduler.run([&](Worker& w) { result = fib(w, fib_n); });
    done.store(true, std::memory_order_release);
  });

  bool ok = true;
  std::uint64_t polls = 0;
  Scheduler::LiveSnapshot prev{}, last{};
  while (true) {
    const bool finished = done.load(std::memory_order_acquire);
    const Scheduler::LiveSnapshot snap = scheduler.live_snapshot();
    ++polls;
    // Published counters only ever grow, so consecutive snapshots are
    // monotone even though the workers never stop to let us look.
    ok &= check(snap.stats.jobs_executed >= prev.stats.jobs_executed,
                "mid-run jobs_executed went backwards");
    ok &= check(snap.stats.steals >= prev.stats.steals,
                "mid-run steals went backwards");
    ok &= check(snap.stats.steal_attempts >= prev.stats.steal_attempts,
                "mid-run steal_attempts went backwards");
    ok &= check(snap.publishes >= prev.publishes,
                "mid-run publish count went backwards");
    prev = last = snap;
    if (finished) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  runner.join();
  std::printf("fib(%d) = %ld\n", fib_n, result);

  pump.stop();
  pump.pump_once();  // final flush after quiesce

  // Post-quiesce ground truth: the live plane must never have shown MORE
  // than what actually happened, and the final snapshot catches up to it.
  const auto totals = scheduler.total_stats();
  const Scheduler::LiveSnapshot fin = scheduler.live_snapshot();
  ok &= check(last.stats.jobs_executed <= totals.jobs_executed,
              "live snapshot exceeded post-quiesce jobs_executed");
  ok &= check(last.stats.steals <= totals.steals,
              "live snapshot exceeded post-quiesce steals");
#if ABP_TRACE_ENABLED
  ok &= check(fin.stats.jobs_executed == totals.jobs_executed,
              "final live snapshot != post-quiesce jobs_executed");
  ok &= check(fin.workers_published >= 1, "no worker ever published");
  ok &= check(polls >= 2, "poller never sampled mid-run");
#else
  (void)fin;
#endif

  // The streaming JSON endpoint: every line the pump produced.
  std::string err;
  for (const std::string& line : pump.stream().drain()) {
    ok &= check(abp::obs::json_validate(line, &err), "METRICS_JSON invalid");
    std::printf("METRICS_JSON %s\n", line.c_str());
  }
  std::printf("METRICS_DROPPED %llu\n",
              (unsigned long long)pump.stream().dropped());

  // The Prometheus endpoint.
  const std::string prom = scheduler.prometheus_text();
  ok &= check(abp::obs::prometheus_validate(prom, &err),
              "prometheus_text failed validation");
  if (!err.empty()) std::fprintf(stderr, "  %s\n", err.c_str());
  std::printf("PROMETHEUS_BEGIN\n%sPROMETHEUS_END\n", prom.c_str());

  // Provenance + span profile one-liners (full JSON in the provenance
  // string; see examples/span_profile for the span cross-check).
  const std::string prov = scheduler.steal_provenance_json();
  ok &= check(abp::obs::json_validate(prov, &err),
              "steal_provenance_json invalid");
  std::printf("PROVENANCE %s\n", prov.c_str());
  const auto span = scheduler.span_profile();
  std::printf("span: T1=%llu ticks, Tinf=%llu ticks, tasks=%llu, "
              "parallelism=%.2f\n",
              (unsigned long long)span.t1_ticks,
              (unsigned long long)span.tinf_ticks,
              (unsigned long long)span.tasks, span.parallelism());
#if ABP_TRACE_ENABLED
  ok &= check(span.t1_ticks >= span.tinf_ticks,
              "measured span exceeds measured work");
#endif

  std::printf("live_metrics: %s (%llu mid-run polls, %llu pump ticks)\n",
              ok ? "ok" : "FAILED", (unsigned long long)polls,
              (unsigned long long)pump.ticks());
  return ok ? 0 : 1;
}
