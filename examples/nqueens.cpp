// N-queens: irregular parallel backtracking search.
//
// This is the "parallel design verifier" workload shape from the paper's
// introduction: the search tree is highly irregular, so static
// partitioning fails and dynamic load balancing — work stealing — is
// required. Each of the first two rows' placements is spawned as a task;
// deeper levels run serially.
//
// Usage: nqueens [board-size] [workers]

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <chrono>

#include "runtime/scheduler.hpp"

using abp::runtime::Scheduler;
using abp::runtime::SchedulerOptions;
using abp::runtime::TaskGroup;
using abp::runtime::Worker;

namespace {

struct Board {
  int n;
  unsigned cols, diag1, diag2;

  bool can_place(int row, int col) const {
    return !(cols & (1u << col)) && !(diag1 & (1u << (row + col))) &&
           !(diag2 & (1u << (row - col + n)));
  }
  Board place(int row, int col) const {
    return Board{n, cols | (1u << col), diag1 | (1u << (row + col)),
                 diag2 | (1u << (row - col + n))};
  }
};

long solve_serial(const Board& b, int row) {
  if (row == b.n) return 1;
  long count = 0;
  for (int c = 0; c < b.n; ++c)
    if (b.can_place(row, c)) count += solve_serial(b.place(row, c), row + 1);
  return count;
}

void solve_parallel(Worker& w, const Board& b, int row,
                    std::atomic<long>& total) {
  if (row >= 2) {  // spawn depth: first two rows
    total.fetch_add(solve_serial(b, row), std::memory_order_relaxed);
    return;
  }
  TaskGroup tg(w);
  for (int c = 0; c < b.n; ++c) {
    if (!b.can_place(row, c)) continue;
    const Board next = b.place(row, c);
    tg.spawn([next, row, &total](Worker& w2) {
      solve_parallel(w2, next, row + 1, total);
    });
  }
  tg.wait();
}

}  // namespace

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 11;
  const std::size_t workers = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 4;
  if (n < 1 || n > 15) {
    std::fprintf(stderr, "board size must be in [1, 15]\n");
    return 1;
  }

  SchedulerOptions options;
  options.num_workers = workers;
  Scheduler scheduler(options);

  std::atomic<long> solutions{0};
  const auto t0 = std::chrono::steady_clock::now();
  scheduler.run([&](Worker& w) {
    solve_parallel(w, Board{n, 0, 0, 0}, 0, solutions);
  });
  const auto t1 = std::chrono::steady_clock::now();

  const auto stats = scheduler.total_stats();
  std::printf("%d-queens: %ld solutions in %.3f s with %zu workers "
              "(%llu tasks, %llu steals)\n",
              n, solutions.load(),
              std::chrono::duration<double>(t1 - t0).count(), workers,
              (unsigned long long)stats.jobs_executed,
              (unsigned long long)stats.steals);
  return 0;
}
