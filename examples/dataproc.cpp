// Data-processing pipeline on the parallel algorithms: generate, sort,
// deduplicate via scan, and reduce — with a Future overlapping an
// independent computation. Shows the library's higher-level API
// (everything still runs on the ABP work stealer underneath).
//
// Usage: dataproc [n] [workers]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "runtime/algorithms.hpp"
#include "runtime/future.hpp"
#include "runtime/scheduler.hpp"
#include "support/rng.hpp"

using namespace abp;
using runtime::Worker;

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10)
                                 : 1'000'000;
  const std::size_t workers =
      argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 4;

  runtime::SchedulerOptions opts;
  opts.num_workers = workers;
  runtime::Scheduler scheduler(opts);

  std::vector<std::uint32_t> data(n);
  std::size_t unique_count = 0;
  double independent = 0.0;

  scheduler.run([&](Worker& w) {
    // Overlap: kick off an independent numeric integration while the main
    // pipeline runs; collect it at the end via the future.
    runtime::Future<double> side(w, [](Worker& w2) {
      const std::size_t samples = 1'000'000;
      return runtime::parallel_reduce<double>(
                 w2, 0, samples, 4096, 0.0,
                 [](std::size_t i) {
                   const double x = (double(i) + 0.5) / 1'000'000.0;
                   return 4.0 / (1.0 + x * x);
                 },
                 [](double a, double b) { return a + b; }) /
             1'000'000.0;
    });

    // 1. Generate skewed random keys in parallel.
    runtime::parallel_for(w, 0, n, 8192, [&](std::size_t i) {
      Xoshiro256 rng(i);  // per-index generator: deterministic, parallel
      data[i] = static_cast<std::uint32_t>(rng.below(n / 4 + 1));
    });

    // 2. Sort.
    runtime::parallel_sort(w, data.data(), n, 4096);

    // 3. Mark-first-occurrence + inclusive scan = rank of each unique key.
    std::vector<std::uint32_t> is_first(n);
    runtime::parallel_for(w, 0, n, 8192, [&](std::size_t i) {
      is_first[i] = (i == 0 || data[i] != data[i - 1]) ? 1u : 0u;
    });
    runtime::parallel_inclusive_scan(
        w, is_first.data(), n, 8192,
        [](std::uint32_t a, std::uint32_t b) { return a + b; });
    unique_count = n > 0 ? is_first[n - 1] : 0;

    independent = side.get();
  });

  const bool sorted = std::is_sorted(data.begin(), data.end());
  std::printf("sorted %zu keys (%s), %zu unique; overlapped integral = "
              "%.6f (pi)\n",
              n, sorted ? "verified" : "NOT SORTED", unique_count,
              independent);

  const auto st = scheduler.total_stats();
  std::printf("scheduler: %llu jobs, %llu steals across %zu workers\n",
              (unsigned long long)st.jobs_executed,
              (unsigned long long)st.steals, workers);
  return sorted ? 0 : 1;
}
