// Quickstart: the fork-join API in ~40 lines.
//
// Build the project, then run:  ./build/examples/quickstart
//
// A Scheduler owns P "processes" (worker threads). Each worker runs the
// paper's Figure 3 loop over a non-blocking ABP deque: execute the assigned
// job, pop the next from the bottom of its own deque, and — when the deque
// is empty — yield and steal from the top of a random victim's deque.
// TaskGroup is the structured fork-join interface on top.

#include <cstdio>

#include "runtime/algorithms.hpp"
#include "runtime/scheduler.hpp"

using abp::runtime::Scheduler;
using abp::runtime::SchedulerOptions;
using abp::runtime::TaskGroup;
using abp::runtime::Worker;

namespace {

long fib(Worker& w, int n) {
  if (n < 14) {  // sequential cutoff: below this, recursion is cheap
    return n < 2 ? n : fib(w, n - 1) + fib(w, n - 2);
  }
  long a = 0;
  TaskGroup tg(w);
  tg.spawn([&a, n](Worker& w2) { a = fib(w2, n - 1); });  // fork
  const long b = fib(w, n - 2);                           // run inline
  tg.wait();                                              // join
  return a + b;
}

}  // namespace

int main() {
  SchedulerOptions options;
  options.num_workers = 4;  // P processes; the OS may give us fewer CPUs —
                            // that is exactly the regime this scheduler is
                            // designed for (multiprogrammed multiprocessors)
  Scheduler scheduler(options);

  long result = 0;
  scheduler.run([&](Worker& w) { result = fib(w, 30); });
  std::printf("fib(30) = %ld\n", result);

  // Data-parallel helpers are built on the same primitive:
  double sum = 0.0;
  scheduler.run([&](Worker& w) {
    sum = abp::runtime::parallel_reduce<double>(
        w, 0, 1'000'000, 4096, 0.0,
        [](std::size_t i) { return 1.0 / double(i + 1); },
        [](double x, double y) { return x + y; });
  });
  std::printf("harmonic(1e6) = %.6f\n", sum);

  const auto stats = scheduler.total_stats();
  std::printf("jobs executed: %llu, steals: %llu (of %llu attempts)\n",
              (unsigned long long)stats.jobs_executed,
              (unsigned long long)stats.steals,
              (unsigned long long)stats.steal_attempts);
  return 0;
}
