// Online work/span profiler: measure T1 and Tinf while the run executes,
// then cross-check against the statically known DAG.
//
// Build the project, then run:  ./build/examples/span_profile
//   (pipe through tools/span_report.py to re-check and fit the bound)
//
// Two profilers are exercised:
//
//   * The dag engine (runtime/dag_engine) folds each node's path length
//     along the enabling edges the run actually takes: path(n) = 1 + max
//     path over n's executed predecessors, maintained with a CAS-max
//     BEFORE the indegree decrement that publishes the node. On a
//     completed run the measured span therefore equals the static
//     critical_path_length() exactly — printed below as SPAN_JSON lines
//     and asserted here.
//   * The fork-join scheduler (runtime/scheduler) runs the same algebra
//     in cycle units on dynamic task trees, where no static answer
//     exists: spawn stamps the child's path, joins fold the max child
//     path back into the waiter. The invariant checked: 0 < Tinf <= T1.
//
// Exit status is the self-check; SPAN_JSON output feeds span_report.py's
// least-squares fit of seconds ~= c1*T1/P + c2*Tinf (EXPERIMENTS.md §E27).

#include <cstdio>
#include <string_view>
#include <thread>
#include <vector>

#include "dag/builders.hpp"
#include "obs/export.hpp"
#include "runtime/dag_engine.hpp"
#include "runtime/scheduler.hpp"

using abp::dag::Dag;
using abp::runtime::DagRunResult;
using abp::runtime::SchedulerOptions;

namespace {

bool check(bool ok, const char* what) {
  if (!ok) std::fprintf(stderr, "span_profile: FAIL: %s\n", what);
  return ok;
}

long fib(abp::runtime::Worker& w, int n) {
  if (n < 12) {
    return n < 2 ? n : fib(w, n - 1) + fib(w, n - 2);
  }
  long a = 0;
  abp::runtime::TaskGroup tg(w);
  tg.spawn([&a, n](abp::runtime::Worker& w2) { a = fib(w2, n - 1); });
  const long b = fib(w, n - 2);
  tg.wait();
  return a + b;
}

}  // namespace

int main() {
  bool ok = true;

  struct Workload {
    const char* name;
    Dag dag;
  };
  const Workload workloads[] = {
      {"fork_join_tree(d=10)", abp::dag::fork_join_tree(10)},
      {"grid_wavefront(32x32)", abp::dag::grid_wavefront(32, 32)},
      {"random_series_parallel(4k)",
       abp::dag::random_series_parallel(42, 4000)},
      {"chain(2000)", abp::dag::chain(2000)},
      {"wide(256x4)", abp::dag::wide(256, 4)},
  };

  for (const Workload& wl : workloads) {
    const std::uint64_t work = wl.dag.work();
    const std::uint64_t span = wl.dag.critical_path_length();
    for (const std::size_t p : {1u, 2u, 4u}) {
      SchedulerOptions opts;
      opts.num_workers = p;
      // Enough per-node busy-work that the makespan reflects the schedule
      // (work and span terms), not worker-thread startup; span_report.py's
      // c1/c2 fit needs that signal.
      const DagRunResult r =
          abp::runtime::run_dag(wl.dag, opts, /*spin_per_node=*/4000);
      ok &= check(r.ok, "dag run did not complete");
      ok &= check(r.measured_work_nodes == work,
                  "measured work != dag node count");
      // Acceptance: the online span is never below the static critical
      // path; on a completed run it is exactly equal (see dag_engine.cpp).
      ok &= check(r.measured_span_nodes >= span,
                  "measured span below static critical path");
      ok &= check(r.measured_span_nodes == span,
                  "measured span above static critical path");
      // The paper's makespan bound is in terms of the processor average
      // P_A, not the requested P: on a host with fewer CPUs than workers
      // (the multiprogrammed regime), the work term divides by what the
      // machine can actually deliver. span_report.py fits against p_eff.
      const std::size_t hw = std::thread::hardware_concurrency();
      const std::size_t p_eff = hw != 0 && hw < p ? hw : p;
      abp::obs::JsonObjectWriter j;
      j.add("workload", std::string_view(wl.name));
      j.add("p", static_cast<std::uint64_t>(p));
      j.add("p_eff", static_cast<std::uint64_t>(p_eff));
      j.add("work_nodes", work);
      j.add("span_nodes", span);
      j.add("measured_work_nodes", r.measured_work_nodes);
      j.add("measured_span_nodes", r.measured_span_nodes);
      j.add("seconds", r.seconds);
      std::printf("SPAN_JSON %s\n", j.str().c_str());
    }
  }

  // Dynamic fork-join: no static critical path exists, but the measured
  // profile must satisfy the defining inequality of work and span.
  {
    SchedulerOptions opts;
    opts.num_workers = 4;
    abp::runtime::Scheduler scheduler(opts);
    long result = 0;
    scheduler.run(
        [&result](abp::runtime::Worker& w) { result = fib(w, 28); });
    std::printf("fib(28) = %ld\n", result);
    const abp::obs::SpanProfile prof = scheduler.span_profile();
    std::printf("fork-join profile: T1=%llu ticks, Tinf=%llu ticks, "
                "tasks=%llu, parallelism=%.2f\n",
                (unsigned long long)prof.t1_ticks,
                (unsigned long long)prof.tinf_ticks,
                (unsigned long long)prof.tasks, prof.parallelism());
#if ABP_TRACE_ENABLED
    ok &= check(prof.tinf_ticks > 0, "fork-join span is zero");
    ok &= check(prof.t1_ticks >= prof.tinf_ticks,
                "fork-join span exceeds total work");
    ok &= check(prof.tasks > 0, "fork-join profile counted no tasks");
#endif
  }

  std::printf("span_profile: %s\n", ok ? "ok" : "FAILED");
  return ok ? 0 : 1;
}
