// Producer/consumer pipeline on user-level threads (fibers) — the paper's
// threads-that-block-and-get-enabled programming model, beyond fork-join.
//
// A three-stage pipeline (generate -> transform -> fold) where the stages
// are fibers connected by bounded buffers built from two counting
// semaphores each (slots / items), exactly the structure Dijkstra-style
// P/V was designed for. The scheduler multiplexes the fibers onto the
// worker processes; a fiber that blocks on P() just causes its worker to
// pop other work from its deque (the Block case of §3.1).
//
// Usage: fiber_pipeline [items] [workers]

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "fiber/fiber.hpp"

using namespace abp;
using fiber::Fiber;
using fiber::FiberScheduler;
using fiber::Semaphore;

namespace {

// Bounded single-producer single-consumer queue on semaphores.
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity)
      : slots_(static_cast<long>(capacity)), items_(0), buf_(capacity) {}

  void put(std::uint64_t v) {
    slots_.p();
    buf_[head_++ % buf_.size()] = v;
    items_.v();
  }

  std::uint64_t take() {
    items_.p();
    const std::uint64_t v = buf_[tail_++ % buf_.size()];
    slots_.v();
    return v;
  }

 private:
  Semaphore slots_;
  Semaphore items_;
  std::vector<std::uint64_t> buf_;
  std::size_t head_ = 0;  // touched only by the producer fiber
  std::size_t tail_ = 0;  // touched only by the consumer fiber
};

}  // namespace

int main(int argc, char** argv) {
  const std::size_t items =
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 20000;
  const std::size_t workers =
      argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 4;

  runtime::SchedulerOptions opts;
  opts.num_workers = workers;
  FiberScheduler fs(opts);

  std::uint64_t folded = 0;
  fs.run([&] {
    BoundedQueue stage1(64);
    BoundedQueue stage2(64);

    Fiber* generator = FiberScheduler::spawn([&] {
      std::uint64_t x = 88172645463325252ULL;
      for (std::size_t i = 0; i < items; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;  // xorshift64
        stage1.put(x);
      }
    });
    Fiber* transformer = FiberScheduler::spawn([&] {
      for (std::size_t i = 0; i < items; ++i) {
        const std::uint64_t v = stage1.take();
        stage2.put(v * 0x9e3779b97f4a7c15ULL);  // Fibonacci hashing
      }
    });
    Fiber* folder = FiberScheduler::spawn([&] {
      std::uint64_t acc = 0;
      for (std::size_t i = 0; i < items; ++i) acc ^= stage2.take();
      folded = acc;
    });

    FiberScheduler::join(generator);
    FiberScheduler::join(transformer);
    FiberScheduler::join(folder);
  });

  // Serial reference.
  std::uint64_t expect = 0;
  {
    std::uint64_t x = 88172645463325252ULL;
    for (std::size_t i = 0; i < items; ++i) {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
      expect ^= x * 0x9e3779b97f4a7c15ULL;
    }
  }
  const auto st = fs.total_stats();
  std::printf("pipeline folded %zu items -> %016llx (expect %016llx, %s); "
              "%llu fiber resumes, %llu steals across %zu workers\n",
              items, (unsigned long long)folded, (unsigned long long)expect,
              folded == expect ? "match" : "MISMATCH",
              (unsigned long long)st.jobs_executed,
              (unsigned long long)st.steals, workers);
  return folded == expect ? 0 : 1;
}
