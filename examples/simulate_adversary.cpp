// Driving the kernel simulator directly: run the non-blocking work stealer
// against each adversary class of §4.4 and watch the bound
// T1/PA + Tinf*P/PA hold (or, without the right yield, fail).
//
// Usage: simulate_adversary [fib-n] [P]

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "dag/builders.hpp"
#include "sched/work_stealer.hpp"
#include "sim/kernel.hpp"

using namespace abp;

namespace {

void report(const char* label, const sched::RunMetrics& m) {
  if (!m.completed) {
    std::printf("%-40s STARVED (capped at %llu rounds, %llu/%0.f nodes "
                "executed)\n",
                label, (unsigned long long)m.length,
                (unsigned long long)m.executed_nodes, m.t1);
    return;
  }
  std::printf("%-40s length=%7llu  PA=%5.2f  steals=%7llu  "
              "bound-ratio=%.3f\n",
              label, (unsigned long long)m.length, m.processor_average,
              (unsigned long long)m.steal_attempts, m.bound_ratio());
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned fib_n = argc > 1 ? unsigned(std::atoi(argv[1])) : 15;
  const std::size_t p = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 8;

  const dag::Dag d = dag::fib_dag(fib_n);
  std::printf("workload: fib(%u) dag — T1=%zu, Tinf=%zu, parallelism=%.0f; "
              "P=%zu processes\n",
              fib_n, d.work(), d.critical_path_length(), d.parallelism(), p);
  std::printf("bound-ratio = measured length / (T1/PA + Tinf*P/PA); the "
              "paper predicts O(1), empirically ~1\n\n");

  sched::Options opts;
  opts.seed = 42;

  {
    sim::DedicatedKernel k(p);
    opts.yield = sim::YieldKind::kNone;
    report("dedicated (Theorem 9)", sched::run_work_stealer(d, k, opts));
  }
  {
    sim::BenignKernel k(p, sim::bursty_profile(p, 20, 80), 7);
    opts.yield = sim::YieldKind::kNone;
    report("benign, bursty p_i (Theorem 10)",
           sched::run_work_stealer(d, k, opts));
  }
  {
    sim::ObliviousKernel k(p, sim::periodic_profile(p, 5, 2, 11), 7);
    opts.yield = sim::YieldKind::kToRandom;
    report("oblivious + yieldToRandom (Theorem 11)",
           sched::run_work_stealer(d, k, opts));
  }
  {
    sim::StarveBusyKernel k(p, sim::constant_profile(p / 2), 7);
    opts.yield = sim::YieldKind::kToAll;
    report("adaptive starver + yieldToAll (Thm 12)",
           sched::run_work_stealer(d, k, opts));
  }
  {
    sim::StarveBusyKernel k(p, sim::constant_profile(p / 2), 7);
    opts.yield = sim::YieldKind::kNone;
    opts.max_rounds = 200000;
    report("adaptive starver, NO yield (ablation)",
           sched::run_work_stealer(d, k, opts));
  }
  return 0;
}
