// Wavefront: a dag with synchronization edges (the general, non-fork-join
// computations the paper covers, unlike the "fully strict" restriction of
// prior work).
//
// A Gauss-Seidel style stencil: cell (i,j) depends on (i,j-1) and (i-1,j).
// We express the dependence structure two ways and check they agree:
//   1. as an explicit computation dag executed by the real-threads dag
//      engine (the paper's Figure 3 loop verbatim);
//   2. as a fiber program where each row is a user-level thread and the
//      cross-row dependencies are semaphores (Dijkstra P/V, as in the
//      paper's Figure 1 example).
//
// Usage: wavefront [rows] [cols] [workers]

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "dag/builders.hpp"
#include "fiber/fiber.hpp"
#include "runtime/dag_engine.hpp"

using namespace abp;

namespace {

// The stencil itself (deterministic integer arithmetic so both executions
// must produce identical grids).
std::uint64_t cell_value(std::uint64_t up, std::uint64_t left) {
  return (up * 31 + left * 17 + 1) & 0xffffffffULL;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t rows = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 64;
  const std::size_t cols = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 64;
  const std::size_t workers =
      argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 4;

  // --- 1. explicit dag, run on the Figure 3 engine ------------------------
  const dag::Dag d = dag::grid_wavefront(rows, cols);
  runtime::SchedulerOptions opts;
  opts.num_workers = workers;
  const auto result = runtime::run_dag(d, opts, 50);
  std::printf("dag engine: %zux%zu wavefront, T1=%zu, Tinf=%zu, "
              "parallelism=%.1f -> ok=%d, %.4f s, %llu steals\n",
              rows, cols, d.work(), d.critical_path_length(),
              d.parallelism(), result.ok, result.seconds,
              (unsigned long long)result.totals.steals);

  // --- 2. fibers + semaphores ---------------------------------------------
  std::vector<std::vector<std::uint64_t>> grid(
      rows, std::vector<std::uint64_t>(cols, 0));
  {
    fiber::FiberScheduler fs(opts);
    // ready[i][j] is V'd when cell (i-1, j) has been computed.
    std::vector<std::vector<std::unique_ptr<fiber::Semaphore>>> ready(rows);
    for (auto& row : ready)
      for (std::size_t j = 0; j < cols; ++j)
        row.push_back(std::make_unique<fiber::Semaphore>(0));

    fs.run([&] {
      std::vector<fiber::Fiber*> row_threads;
      for (std::size_t i = 0; i < rows; ++i) {
        row_threads.push_back(fiber::FiberScheduler::spawn([&, i] {
          for (std::size_t j = 0; j < cols; ++j) {
            if (i > 0) ready[i][j]->p();  // wait for the cell above
            const std::uint64_t up = i > 0 ? grid[i - 1][j] : 0;
            const std::uint64_t left = j > 0 ? grid[i][j - 1] : 0;
            grid[i][j] = cell_value(up, left);
            if (i + 1 < rows) ready[i + 1][j]->v();  // release below
          }
        }));
      }
      for (fiber::Fiber* t : row_threads) fiber::FiberScheduler::join(t);
    });
  }

  // --- check against a serial execution -----------------------------------
  std::vector<std::vector<std::uint64_t>> serial(
      rows, std::vector<std::uint64_t>(cols, 0));
  for (std::size_t i = 0; i < rows; ++i)
    for (std::size_t j = 0; j < cols; ++j)
      serial[i][j] = cell_value(i > 0 ? serial[i - 1][j] : 0,
                                j > 0 ? serial[i][j - 1] : 0);
  const bool match = grid == serial;
  std::printf("fiber engine: grid[%zu][%zu] = %llu; matches serial: %s\n",
              rows - 1, cols - 1,
              (unsigned long long)grid[rows - 1][cols - 1],
              match ? "yes" : "NO");
  return match && result.ok ? 0 : 1;
}
