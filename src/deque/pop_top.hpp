#pragma once

// Outcome classification for popTop.
//
// The paper's relaxed semantics (§3.2) fold two distinct popTop failures
// into one "returns nothing": the deque was empty, or the topmost item was
// concurrently removed (the thief lost the age CAS). Telemetry wants them
// separate — a CAS loss means contention on a non-empty victim, an empty
// victim means the thief's victim draw found no work — so every deque also
// exposes pop_top_ex() returning the item plus the reason for failure.
// The lock-based deques can never lose a race (the lock serializes), so
// they only ever report kSuccess or kEmpty.

#include <optional>

namespace abp::deque {

enum class PopTopStatus : unsigned char {
  kSuccess,   // item returned
  kEmpty,     // deque observed empty (bot <= top)
  kLostRace,  // non-empty, but another process removed the top item (CAS)
};

constexpr const char* to_string(PopTopStatus s) noexcept {
  switch (s) {
    case PopTopStatus::kSuccess: return "success";
    case PopTopStatus::kEmpty: return "empty";
    case PopTopStatus::kLostRace: return "lost-race";
  }
  return "?";
}

template <typename T>
struct PopTopResult {
  std::optional<T> item;
  PopTopStatus status = PopTopStatus::kEmpty;
};

}  // namespace abp::deque
