#pragma once

// Outcome classification for popTop.
//
// The paper's relaxed semantics (§3.2) fold two distinct popTop failures
// into one "returns nothing": the deque was empty, or the topmost item was
// concurrently removed (the thief lost the age CAS). Telemetry wants them
// separate — a CAS loss means contention on a non-empty victim, an empty
// victim means the thief's victim draw found no work — so every deque also
// exposes pop_top_ex() returning the item plus the reason for failure.
// The lock-based deques can never lose a race (the lock serializes), so
// they only ever report kSuccess or kEmpty.

#include <array>
#include <cstddef>
#include <optional>

namespace abp::deque {

// Hard cap on how many items one pop_top_batch call may claim. This is a
// correctness constant, not a tuning knob: the owner's popBottom defends
// exactly this window above top (tag-bumping the age word before returning
// an item within it), so a batch claim can never overlap an item the owner
// released without an age CAS having arbitrated the race. Widening the cap
// without widening the defense re-opens the double-delivery race.
inline constexpr std::size_t kMaxStealBatch = 8;

enum class PopTopStatus : unsigned char {
  kSuccess,   // item returned
  kEmpty,     // deque observed empty (bot <= top)
  kLostRace,  // non-empty, but another process removed the top item (CAS)
};

constexpr const char* to_string(PopTopStatus s) noexcept {
  switch (s) {
    case PopTopStatus::kSuccess: return "success";
    case PopTopStatus::kEmpty: return "empty";
    case PopTopStatus::kLostRace: return "lost-race";
  }
  return "?";
}

template <typename T>
struct PopTopResult {
  std::optional<T> item;
  PopTopStatus status = PopTopStatus::kEmpty;
};

// Result of a batched steal (pop_top_batch): up to kMaxStealBatch items
// claimed in ONE linearized top-side operation. items[0] is the oldest
// (the one single pop_top would have returned); the caller typically runs
// items[0] and re-pushes the rest to its own deque. count == 0 iff status
// != kSuccess.
template <typename T>
struct PopTopBatchResult {
  std::array<T, kMaxStealBatch> items{};
  std::size_t count = 0;
  PopTopStatus status = PopTopStatus::kEmpty;
};

}  // namespace abp::deque
