#pragma once

// Chase-Lev work-stealing deque (SPAA 2005), the modern successor of the
// ABP deque. Included as a comparator for the microbenchmarks (experiment
// E15) and as an alternative deque policy in the runtime: it replaces the
// (tag, top) packed word with an unbounded 64-bit `top` counter and a
// growable circular buffer, eliminating both the fixed capacity and the
// bounded-tag concern.
//
// Memory orderings follow Le, Pop, Cohen, Zappa Nardelli, "Correct and
// Efficient Work-Stealing for Weak Memory Models" (PPoPP 2013), adapted to
// C++20 std::atomic.

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <type_traits>
#include <vector>

#include "chaos/chaos.hpp"
#include "deque/pop_top.hpp"
#include "support/align.hpp"
#include "support/assert.hpp"

namespace abp::deque {

template <typename T>
class ChaseLevDeque {
  static_assert(std::is_trivially_copyable_v<T>);
  static_assert(std::atomic<T>::is_always_lock_free);

  // Relaxed atomic slots, as in the Le et al. formulation: a thief's read
  // of a ring slot can race the owner's store into the same slot one lap
  // later; the top CAS rejects the stale read, but the access itself must
  // be atomic to avoid UB (and TSan reports).
  struct Buffer {
    explicit Buffer(std::size_t cap)
        : capacity(cap),
          mask(cap - 1),
          data(std::make_unique<std::atomic<T>[]>(cap)) {
      ABP_ASSERT((cap & (cap - 1)) == 0);
    }
    std::size_t capacity;
    std::size_t mask;
    std::unique_ptr<std::atomic<T>[]> data;

    T get(std::int64_t i) const noexcept {
      // Stale reads are rejected by the top CAS at every caller.
      // model-site: chase_lev.pop_bottom.item_load, chase_lev.pop_top.item_load
      return data[static_cast<std::size_t>(i) & mask].load(
          std::memory_order_relaxed);
    }
    void put(std::int64_t i, T v) noexcept {
      // Published by the release fence/store in push_bottom (or the
      // release buffer publish in grow).
      // model-site: chase_lev.push_bottom.item_store
      data[static_cast<std::size_t>(i) & mask].store(
          v, std::memory_order_relaxed);
    }
  };

 public:
  explicit ChaseLevDeque(std::size_t initial_capacity = 64) {
    std::size_t cap = 1;
    while (cap < initial_capacity) cap <<= 1;
    // model-site: none(constructor; no concurrent readers exist yet)
    buffer_.store(new Buffer(cap), std::memory_order_relaxed);
  }

  ChaseLevDeque(const ChaseLevDeque&) = delete;
  ChaseLevDeque& operator=(const ChaseLevDeque&) = delete;

  ~ChaseLevDeque() {
    // model-site: none(destructor; all other processes have quiesced)
    delete buffer_.load(std::memory_order_relaxed);
    for (Buffer* b : retired_) delete b;
  }

  // Owner only.
  void push_bottom(T item) {
    // model-site: chase_lev.push_bottom.bottom_load
    const std::int64_t b = bottom_.value.load(std::memory_order_relaxed);
    // Acquire: the capacity check must see steals' top advances, or the
    // owner grows (or overwrites) needlessly/us wrongly.
    // model-site: chase_lev.push_bottom.top_load
    const std::int64_t t = top_.value.load(std::memory_order_acquire);
    // model-site: none(owner is the only writer of buffer_)
    Buffer* buf = buffer_.load(std::memory_order_relaxed);
    if (b - t >= static_cast<std::int64_t>(buf->capacity)) {
      buf = grow(buf, t, b);
    }
    CHAOS_POINT("deque.pushbottom.pre_item_store");
    buf->put(b, item);
    // model-site: none(subsumed by the release bottom store below; the
    // model carries this edge on the store itself)
    std::atomic_thread_fence(std::memory_order_release);
    CHAOS_POINT("deque.pushbottom.pre_bot_store");
    // Le et al. publish with the fence above plus a relaxed store; we
    // strengthen the store itself to release (same codegen on x86/ARM
    // LDAR-free paths) because TSan does not model fence-based
    // synchronization — without this, every Job field written before
    // push_bottom() is reported as racing the stealer's reads.
    // model-site: chase_lev.push_bottom.bottom_store
    bottom_.value.store(b + 1, std::memory_order_release);
  }

  // Owner only.
  std::optional<T> pop_bottom() {
    // model-site: chase_lev.pop_bottom.bottom_load
    const std::int64_t b = bottom_.value.load(std::memory_order_relaxed) - 1;
    // model-site: none(owner is the only writer of buffer_)
    Buffer* buf = buffer_.load(std::memory_order_relaxed);
    // Every bottom store is release (not the paper's relaxed) for the same
    // TSan-visibility reason as in push_bottom: a thief may acquire-read
    // any of these values and go on to read a slot published by an
    // earlier push, so each store must carry the happens-before edge.
    // model-site: chase_lev.pop_bottom.bottom_store
    bottom_.value.store(b, std::memory_order_release);
    // The take/steal store-buffering fence pair (Le et al. Fig. 6); the
    // relaxed top load below is safe only because of it.
    // model-site: chase_lev.pop_bottom.fence
    std::atomic_thread_fence(std::memory_order_seq_cst);
    CHAOS_POINT("deque.popbottom.post_bot_store");
    // model-site: chase_lev.pop_bottom.top_load
    std::int64_t t = top_.value.load(std::memory_order_relaxed);
    if (t > b) {
      // Deque was already empty; restore bottom.
      // model-site: chase_lev.pop_bottom.bottom_restore
      bottom_.value.store(b + 1, std::memory_order_release);
      return std::nullopt;
    }
    T item = buf->get(b);
    if (t == b) {
      // Last element: race against thieves via CAS on top. seq_cst is
      // load-bearing under C11-as-published fences (P0668): see
      // tests/test_model_weak.cpp ChaseLevRelaxedCas*.
      CHAOS_POINT("deque.popbottom.pre_cas");
      // model-site: chase_lev.pop_bottom.cas
      if (!top_.value.compare_exchange_strong(t, t + 1,
                                              std::memory_order_seq_cst,
                                              std::memory_order_relaxed)) {
        // model-site: chase_lev.pop_bottom.bottom_reset
        bottom_.value.store(b + 1, std::memory_order_release);
        return std::nullopt;
      }
      // model-site: chase_lev.pop_bottom.bottom_reset
      bottom_.value.store(b + 1, std::memory_order_release);
    }
    return item;
  }

  // Any process.
  std::optional<T> pop_top() { return pop_top_ex().item; }

  PopTopResult<T> pop_top_ex() {
    CHAOS_POINT("deque.poptop.pre_read");
    // model-site: chase_lev.pop_top.top_load
    std::int64_t t = top_.value.load(std::memory_order_acquire);
    // Steal side of the store-buffering fence pair (Le et al. Fig. 6).
    // model-site: chase_lev.pop_top.fence
    std::atomic_thread_fence(std::memory_order_seq_cst);
    // Acquire pairs with the owner's release bottom stores: seeing the
    // new bottom implies seeing the pushed slot. The model proves relaxed
    // here loses items (ChaseLevNoStealAcquireCaughtUnderRa).
    // model-site: chase_lev.pop_top.bottom_load
    const std::int64_t b = bottom_.value.load(std::memory_order_acquire);
    if (t >= b) return {std::nullopt, PopTopStatus::kEmpty};
    // model-site: none(buffer growth is not modeled; acquire pairs with
    // grow()'s release publish so copied slots are visible)
    Buffer* buf = buffer_.load(std::memory_order_acquire);
    T item = buf->get(t);
    CHAOS_POINT("deque.poptop.pre_cas");
    // seq_cst is load-bearing under C11-as-published fences (P0668): see
    // tests/test_model_weak.cpp ChaseLevRelaxedCas*.
    // model-site: chase_lev.pop_top.cas
    if (!top_.value.compare_exchange_strong(t, t + 1,
                                            std::memory_order_seq_cst,
                                            std::memory_order_relaxed)) {
      // Lost the race (relaxed semantics, as in ABP).
      return {std::nullopt, PopTopStatus::kLostRace};
    }
    return {item, PopTopStatus::kSuccess};
  }

  bool empty_hint() const {
    // model-site: none(racy observability hint, not part of the algorithm)
    return top_.value.load(std::memory_order_acquire) >=
           bottom_.value.load(std::memory_order_acquire);
  }

  std::size_t size_hint() const {
    // model-site: none(racy observability hint, not part of the algorithm)
    const std::int64_t b = bottom_.value.load(std::memory_order_acquire);
    // model-site: none(racy observability hint, not part of the algorithm)
    const std::int64_t t = top_.value.load(std::memory_order_acquire);
    return b > t ? static_cast<std::size_t>(b - t) : 0;
  }

 private:
  Buffer* grow(Buffer* old, std::int64_t t, std::int64_t b) {
    auto* bigger = new Buffer(old->capacity * 2);
    for (std::int64_t i = t; i < b; ++i) bigger->put(i, old->get(i));
    CHAOS_POINT("deque.grow.pre_publish");
    // model-site: none(buffer growth is not modeled; release publishes
    // the copied slots to thieves' acquire load)
    buffer_.store(bigger, std::memory_order_release);
    // Thieves may still be reading `old`; retire it until destruction
    // (owner-only structure, so a simple retire list is safe).
    retired_.push_back(old);
    return bigger;
  }

  CacheAligned<std::atomic<std::int64_t>> top_{};
  CacheAligned<std::atomic<std::int64_t>> bottom_{};
  std::atomic<Buffer*> buffer_{nullptr};
  std::vector<Buffer*> retired_;
};

}  // namespace abp::deque
