#pragma once

// Chase-Lev work-stealing deque (SPAA 2005), the modern successor of the
// ABP deque. Included as a comparator for the microbenchmarks (experiment
// E15) and as an alternative deque policy in the runtime: it replaces the
// (tag, top) packed word with an unbounded 64-bit `top` counter and a
// growable circular buffer, eliminating both the fixed capacity and the
// bounded-tag concern.
//
// Memory orderings follow Le, Pop, Cohen, Zappa Nardelli, "Correct and
// Efficient Work-Stealing for Weak Memory Models" (PPoPP 2013), adapted to
// C++20 std::atomic.

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <type_traits>
#include <vector>

#include "chaos/chaos.hpp"
#include "deque/pop_top.hpp"
#include "support/align.hpp"
#include "support/assert.hpp"

namespace abp::deque {

template <typename T>
class ChaseLevDeque {
  static_assert(std::is_trivially_copyable_v<T>);
  static_assert(std::atomic<T>::is_always_lock_free);

  // Relaxed atomic slots, as in the Le et al. formulation: a thief's read
  // of a ring slot can race the owner's store into the same slot one lap
  // later; the top CAS rejects the stale read, but the access itself must
  // be atomic to avoid UB (and TSan reports).
  struct Buffer {
    explicit Buffer(std::size_t cap)
        : capacity(cap),
          mask(cap - 1),
          data(std::make_unique<std::atomic<T>[]>(cap)) {
      ABP_ASSERT((cap & (cap - 1)) == 0);
    }
    std::size_t capacity;
    std::size_t mask;
    std::unique_ptr<std::atomic<T>[]> data;

    T get(std::int64_t i) const noexcept {
      return data[static_cast<std::size_t>(i) & mask].load(
          std::memory_order_relaxed);
    }
    void put(std::int64_t i, T v) noexcept {
      data[static_cast<std::size_t>(i) & mask].store(
          v, std::memory_order_relaxed);
    }
  };

 public:
  explicit ChaseLevDeque(std::size_t initial_capacity = 64) {
    std::size_t cap = 1;
    while (cap < initial_capacity) cap <<= 1;
    buffer_.store(new Buffer(cap), std::memory_order_relaxed);
  }

  ChaseLevDeque(const ChaseLevDeque&) = delete;
  ChaseLevDeque& operator=(const ChaseLevDeque&) = delete;

  ~ChaseLevDeque() {
    delete buffer_.load(std::memory_order_relaxed);
    for (Buffer* b : retired_) delete b;
  }

  // Owner only.
  void push_bottom(T item) {
    const std::int64_t b = bottom_.value.load(std::memory_order_relaxed);
    const std::int64_t t = top_.value.load(std::memory_order_acquire);
    Buffer* buf = buffer_.load(std::memory_order_relaxed);
    if (b - t >= static_cast<std::int64_t>(buf->capacity)) {
      buf = grow(buf, t, b);
    }
    CHAOS_POINT("deque.pushbottom.pre_item_store");
    buf->put(b, item);
    std::atomic_thread_fence(std::memory_order_release);
    CHAOS_POINT("deque.pushbottom.pre_bot_store");
    // Le et al. publish with the fence above plus a relaxed store; we
    // strengthen the store itself to release (same codegen on x86/ARM
    // LDAR-free paths) because TSan does not model fence-based
    // synchronization — without this, every Job field written before
    // push_bottom() is reported as racing the stealer's reads.
    bottom_.value.store(b + 1, std::memory_order_release);
  }

  // Owner only.
  std::optional<T> pop_bottom() {
    const std::int64_t b = bottom_.value.load(std::memory_order_relaxed) - 1;
    Buffer* buf = buffer_.load(std::memory_order_relaxed);
    // Every bottom store is release (not the paper's relaxed) for the same
    // TSan-visibility reason as in push_bottom: a thief may acquire-read
    // any of these values and go on to read a slot published by an
    // earlier push, so each store must carry the happens-before edge.
    bottom_.value.store(b, std::memory_order_release);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    CHAOS_POINT("deque.popbottom.post_bot_store");
    std::int64_t t = top_.value.load(std::memory_order_relaxed);
    if (t > b) {
      // Deque was already empty; restore bottom.
      bottom_.value.store(b + 1, std::memory_order_release);
      return std::nullopt;
    }
    T item = buf->get(b);
    if (t == b) {
      // Last element: race against thieves via CAS on top.
      CHAOS_POINT("deque.popbottom.pre_cas");
      if (!top_.value.compare_exchange_strong(t, t + 1,
                                              std::memory_order_seq_cst,
                                              std::memory_order_relaxed)) {
        bottom_.value.store(b + 1, std::memory_order_release);
        return std::nullopt;
      }
      bottom_.value.store(b + 1, std::memory_order_release);
    }
    return item;
  }

  // Any process.
  std::optional<T> pop_top() { return pop_top_ex().item; }

  PopTopResult<T> pop_top_ex() {
    CHAOS_POINT("deque.poptop.pre_read");
    std::int64_t t = top_.value.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.value.load(std::memory_order_acquire);
    if (t >= b) return {std::nullopt, PopTopStatus::kEmpty};
    Buffer* buf = buffer_.load(std::memory_order_acquire);
    T item = buf->get(t);
    CHAOS_POINT("deque.poptop.pre_cas");
    if (!top_.value.compare_exchange_strong(t, t + 1,
                                            std::memory_order_seq_cst,
                                            std::memory_order_relaxed)) {
      // Lost the race (relaxed semantics, as in ABP).
      return {std::nullopt, PopTopStatus::kLostRace};
    }
    return {item, PopTopStatus::kSuccess};
  }

  bool empty_hint() const {
    return top_.value.load(std::memory_order_acquire) >=
           bottom_.value.load(std::memory_order_acquire);
  }

  std::size_t size_hint() const {
    const std::int64_t b = bottom_.value.load(std::memory_order_acquire);
    const std::int64_t t = top_.value.load(std::memory_order_acquire);
    return b > t ? static_cast<std::size_t>(b - t) : 0;
  }

 private:
  Buffer* grow(Buffer* old, std::int64_t t, std::int64_t b) {
    auto* bigger = new Buffer(old->capacity * 2);
    for (std::int64_t i = t; i < b; ++i) bigger->put(i, old->get(i));
    CHAOS_POINT("deque.grow.pre_publish");
    buffer_.store(bigger, std::memory_order_release);
    // Thieves may still be reading `old`; retire it until destruction
    // (owner-only structure, so a simple retire list is safe).
    retired_.push_back(old);
    return bigger;
  }

  CacheAligned<std::atomic<std::int64_t>> top_{};
  CacheAligned<std::atomic<std::int64_t>> bottom_{};
  std::atomic<Buffer*> buffer_{nullptr};
  std::vector<Buffer*> retired_;
};

}  // namespace abp::deque
