#pragma once

// Growable variant of the ABP deque — an extension beyond the paper, which
// fixes the array size and relies on "generous" sizing (the Hood library's
// approach). The algorithm is unchanged (Figure 5, packed (tag, top) age
// word, CAS); only the array is replaced:
//
//   * the owner, on a full push_bottom, allocates a buffer of twice the
//     capacity and copies the live window [top, bot) to the SAME indices,
//     then publishes the new buffer pointer;
//   * thieves that raced the growth keep reading the old buffer: since
//     indices are preserved and old buffers are retired (not freed) until
//     destruction, the value at their saved top index is identical in
//     both buffers, so the popTop CAS logic is unaffected.
//
// The array is flat, not a ring: the ABP age word only versions `top`, so
// slots must never be reused while a stalled thief might still read them
// within one (tag, top) epoch. Index space is reclaimed exactly as in the
// fixed deque — popBottom's reset of the empty deque returns bot and top
// to 0 (bumping the tag). Memory therefore grows with the high-water mark
// of `bot` between resets, which for work-stealing usage is the maximum
// number of simultaneously-live nodes pushed without fully draining.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <new>
#include <optional>
#include <type_traits>
#include <vector>

#include "chaos/chaos.hpp"
#include "deque/pop_top.hpp"
#include "deque/push_result.hpp"
#include "support/align.hpp"
#include "support/assert.hpp"

namespace abp::deque {

// `kBatchAblated` (chaos harness only, see BatchAblatedGrowableDeque
// below) makes pop_top_batch claim its items but CAS-publish top+1 — the
// seeded bug the differential fuzzer must catch.
template <typename T, bool kBatchAblated = false>
class AbpGrowableDeque {
  static_assert(std::is_trivially_copyable_v<T>);
  static_assert(std::atomic<T>::is_always_lock_free);

  // Relaxed atomic slots for the same reason as AbpDeque: a stalled thief
  // may read a slot the owner is concurrently recycling; the CAS discards
  // the stale value, but the access itself must not be a data race.
  struct Buffer {
    explicit Buffer(std::size_t cap)
        : capacity(cap), data(std::make_unique<std::atomic<T>[]>(cap)) {}
    std::size_t capacity;
    std::unique_ptr<std::atomic<T>[]> data;
  };

 public:
  // `max_capacity` bounds growth (0 = unbounded): a grow that would exceed
  // it is reported exactly like an allocation failure, which gives tests a
  // deterministic way to exercise the push_bottom_ex degradation path and
  // gives deployments a way to cap per-worker memory.
  // `enable_batch_steals` arms pop_top_batch AND the owner-side defended
  // window in pop_bottom that makes it safe (see pop_top_batch). Deques
  // that never see a batch thief keep the exact single-steal popBottom
  // fast path.
  explicit AbpGrowableDeque(std::size_t initial_capacity = 64,
                            std::size_t max_capacity = 0,
                            bool enable_batch_steals = false)
      : max_capacity_(max_capacity),
        batch_steals_enabled_(enable_batch_steals) {
    auto first = std::make_unique<Buffer>(
        initial_capacity < 8 ? 8 : initial_capacity);
    // model-site: none(constructor; no concurrent readers exist yet)
    buf_.store(first.get(), std::memory_order_release);
    buffers_.push_back(std::move(first));
  }

  AbpGrowableDeque(const AbpGrowableDeque&) = delete;
  AbpGrowableDeque& operator=(const AbpGrowableDeque&) = delete;

  std::size_t capacity() const noexcept {
    // model-site: none(racy observability hint, not part of the algorithm)
    return buf_.load(std::memory_order_acquire)->capacity;
  }

  // pushBottom; owner only. Grows instead of overflowing; a failed growth
  // (bad_alloc, or the configured max_capacity) throws bad_alloc — callers
  // that need a non-throwing path use push_bottom_ex.
  void push_bottom(T node) {
    if (push_bottom_ex(node) != PushStatus::kOk) throw std::bad_alloc();
  }

  // pushBottom that reports a failed growth as a typed status instead of
  // letting bad_alloc unwind the owner out of its steal-critical window.
  // On kAllocFailed the deque is unchanged and `node` was not pushed.
  PushStatus push_bottom_ex(T node) {
    // Owner-only counter; the owner's program order suffices.
    // model-site: growable.push_bottom.bottom_load
    const std::uint64_t local_bot = bot_.value.load(std::memory_order_relaxed);
    // The owner is the only writer of buf_; it reads its own last publish.
    // model-site: growable.push_bottom.buffer_load
    Buffer* buf = buf_.load(std::memory_order_relaxed);
    if (local_bot == buf->capacity) {
      buf = grow(buf, local_bot);
      if (buf == nullptr) return PushStatus::kAllocFailed;
    }
    CHAOS_POINT("deque.pushbottom.pre_item_store");
    // Ordering comes entirely from the release bot store below.
    // model-site: growable.push_bottom.item_store
    buf->data[local_bot].store(node, std::memory_order_relaxed);
    CHAOS_POINT("deque.pushbottom.pre_bot_store");
    // Release publishes the item store (and any growth) to thieves that
    // acquire-load the new bot.
    // model-site: growable.push_bottom.bottom_store
    bot_.value.store(local_bot + 1, std::memory_order_release);
    return PushStatus::kOk;
  }

  std::optional<T> pop_top() { return pop_top_ex().item; }

  PopTopResult<T> pop_top_ex() {
    CHAOS_POINT("deque.poptop.pre_read");
    // Acquire pairs with age's release sequence (age_store / winning
    // CASes): top's cell is visible when top is.
    // model-site: growable.pop_top.age_load
    const std::uint64_t old_age = age_.value.load(std::memory_order_acquire);
    // Acquire pairs with push_bottom's release bot store: seeing the new
    // bot implies seeing the item AND the buffer that holds it.
    // model-site: growable.pop_top.bottom_load
    const std::uint64_t local_bot = bot_.value.load(std::memory_order_acquire);
    if (local_bot <= top_of(old_age))
      return {std::nullopt, PopTopStatus::kEmpty};
    // The buffer pointer is re-read after bot: if a growth raced us, both
    // buffers hold the same value at this index. Acquire pairs with the
    // release publish in grow() so the copied cells are visible.
    // model-site: growable.pop_top.buffer_load
    Buffer* buf = buf_.load(std::memory_order_acquire);
    // Stale reads are rejected by the CAS (age unchanged => cell valid).
    // model-site: growable.pop_top.item_load
    const T node = buf->data[top_of(old_age)].load(std::memory_order_relaxed);
    const std::uint64_t new_age = make_age(tag_of(old_age), top_of(old_age) + 1);
    std::uint64_t expected = old_age;
    CHAOS_POINT("deque.poptop.pre_cas");
    // seq_cst: the steal must totally order against popBottom's bot
    // store / age load window (see abp_deque.hpp).
    // model-site: growable.pop_top.cas
    if (age_.value.compare_exchange_strong(expected, new_age,
                                           std::memory_order_seq_cst)) {
      return {node, PopTopStatus::kSuccess};
    }
    return {std::nullopt, PopTopStatus::kLostRace};
  }

  bool batch_steals_enabled() const noexcept { return batch_steals_enabled_; }

  // Batched steal (steal-half): claims n = min(k, kMaxStealBatch,
  // ceil(size/2)) items [top, top+n) with ONE age CAS — the same
  // linearization point as pop_top, extended through the packed (tag, top)
  // word by publishing top+n instead of top+1. items[0] is the item a
  // single pop_top would have returned.
  //
  // Why one CAS on age suffices for n > 1: the owner removes items without
  // touching age only while bot stays strictly above top; with batch
  // steals enabled, popBottom first bumps the tag (defend_cas below)
  // whenever it returns an item within kMaxStealBatch slots of the top it
  // observed. A successful CAS here therefore proves no slot in
  // [top, top+n) was popped or recycled between the item loads and the
  // CAS — the same staleness argument as single pop_top, widened to the
  // defended window. Precondition: enable_batch_steals was set.
  PopTopBatchResult<T> pop_top_batch(std::size_t k) {
    PopTopBatchResult<T> r;
    ABP_ASSERT_MSG(batch_steals_enabled_,
                   "pop_top_batch on a deque without the popBottom defense");
    if (k == 0) return r;
    CHAOS_POINT("deque.poptopbatch.pre_read");
    // Acquire pairs with age's release sequence, as in pop_top.
    // model-site: growable.pop_top_batch.age_load
    const std::uint64_t old_age = age_.value.load(std::memory_order_acquire);
    // seq_cst, stronger than pop_top's acquire: the claim WIDTH is computed
    // from bot, so this load must order against the owner's seq_cst bot
    // stores — a stale-high bot would let the claim extend past items the
    // owner already took below the defended window.
    // model-site: growable.pop_top_batch.bottom_load
    const std::uint64_t local_bot = bot_.value.load(std::memory_order_seq_cst);
    const std::uint64_t t = top_of(old_age);
    if (local_bot <= t) {
      r.status = PopTopStatus::kEmpty;
      return r;
    }
    std::uint64_t take = (local_bot - t + 1) / 2;  // steal-half, round up
    take = std::min<std::uint64_t>({take, k, kMaxStealBatch});
    // Re-read after bot, as in pop_top: grow() copies [top, bot) so every
    // claimed cell is present in whichever buffer we observe.
    // model-site: growable.pop_top_batch.buffer_load
    Buffer* buf = buf_.load(std::memory_order_acquire);
    // Stale reads are rejected wholesale by the CAS: recycling any slot in
    // the claimed range requires an age tag bump first.
    // model-site: growable.pop_top_batch.item_load
    for (std::uint64_t i = 0; i < take; ++i)
      r.items[i] = buf->data[t + i].load(std::memory_order_relaxed);
    // The ablation publishes a single-steal top while returning the whole
    // claim: every item past the first stays stealable — double delivery.
    const std::uint64_t advance = kBatchAblated ? 1 : take;
    const std::uint64_t new_age = make_age(tag_of(old_age), t + advance);
    std::uint64_t expected = old_age;
    CHAOS_POINT("deque.poptopbatch.pre_cas");
    // seq_cst: totally ordered against popBottom's bot-store / age-load
    // window and the defend_cas, like the single-steal CAS.
    // model-site: growable.pop_top_batch.cas
    if (age_.value.compare_exchange_strong(expected, new_age,
                                           std::memory_order_seq_cst)) {
      r.count = static_cast<std::size_t>(take);
      r.status = PopTopStatus::kSuccess;
      return r;
    }
    r.status = PopTopStatus::kLostRace;
    return r;
  }

  std::optional<T> pop_bottom() {
    // Owner-only counter: reads back the owner's own latest store.
    // model-site: growable.pop_bottom.bottom_load
    std::uint64_t local_bot = bot_.value.load(std::memory_order_relaxed);
    if (local_bot == 0) return std::nullopt;
    --local_bot;
    // seq_cst store->load barrier against the age load below; anything
    // weaker lets owner and thief both take the last item (TSO).
    // model-site: growable.pop_bottom.bottom_store
    bot_.value.store(local_bot, std::memory_order_seq_cst);
    CHAOS_POINT("deque.popbottom.post_bot_store");
    // The owner is the only writer of buf_; it reads its own last publish.
    // model-site: growable.pop_bottom.buffer_load
    Buffer* buf = buf_.load(std::memory_order_relaxed);
    // Owner owns the cell once bot has moved below it; the CAS below
    // arbitrates the only contended case (last item).
    // model-site: growable.pop_bottom.item_load
    const T node = buf->data[local_bot].load(std::memory_order_relaxed);
    // seq_cst: must observe any steal that linearized before the bot
    // store above became visible (see abp_deque.hpp).
    // model-site: growable.pop_bottom.age_load
    std::uint64_t old_age = age_.value.load(std::memory_order_seq_cst);
    if (local_bot > top_of(old_age)) {
      // Above top: the item is the owner's — unless a batch thief already
      // read an (age, bot) pair that covers this slot. A batch CAS
      // validates only (tag, top), so with batch steals enabled the owner
      // must DEFEND the window [top, top+kMaxStealBatch): bump the tag
      // before returning an item inside it, which fails every in-flight
      // steal CAS (single or batch) that could claim the slot. Outside the
      // window no batch can reach this slot (claims are capped at
      // kMaxStealBatch items above top), so the fast path stands.
      if (!batch_steals_enabled_ ||
          local_bot - top_of(old_age) >= kMaxStealBatch) {
        return node;
      }
      for (;;) {
        const std::uint64_t defended =
            make_age(tag_of(old_age) + 1, top_of(old_age));
        std::uint64_t expected = old_age;
        CHAOS_POINT("deque.popbottom.pre_defend_cas");
        // seq_cst: arbitration point against the batch CAS on this word.
        // model-site: growable.pop_bottom.defend_cas
        if (age_.value.compare_exchange_strong(expected, defended,
                                               std::memory_order_seq_cst)) {
          return node;
        }
        // A steal moved the age word. top only grows within a tag, so the
        // gap shrank: either the slot is still ours (re-defend) or the
        // batch claimed it / emptied the deque (fall through to the
        // conflict path below with the fresh age).
        old_age = expected;
        if (local_bot > top_of(old_age)) continue;
        break;
      }
    }
    // Owner-only bookkeeping; published by the CAS / age store below.
    // model-site: growable.pop_bottom.bottom_reset
    bot_.value.store(0, std::memory_order_relaxed);
    const std::uint64_t new_age = make_age(tag_of(old_age) + 1, 0);
    if (local_bot == top_of(old_age)) {
      std::uint64_t expected = old_age;
      CHAOS_POINT("deque.popbottom.pre_cas");
      // seq_cst: linearization point of the last-item race.
      // model-site: growable.pop_bottom.cas
      if (age_.value.compare_exchange_strong(expected, new_age,
                                             std::memory_order_seq_cst)) {
        return node;
      }
    }
    // Release publishes the bot reset before the new (tag, top) is seen.
    // model-site: growable.pop_bottom.age_store
    age_.value.store(new_age, std::memory_order_release);
    return std::nullopt;
  }

  bool empty_hint() const {
    // model-site: none(racy observability hint, not part of the algorithm)
    const std::uint64_t b = bot_.value.load(std::memory_order_seq_cst);
    // model-site: none(racy observability hint, not part of the algorithm)
    const std::uint64_t a = age_.value.load(std::memory_order_seq_cst);
    return b <= top_of(a);
  }

  std::size_t size_hint() const {
    // model-site: none(racy observability hint, not part of the algorithm)
    const std::uint64_t b = bot_.value.load(std::memory_order_seq_cst);
    // model-site: none(racy observability hint, not part of the algorithm)
    const std::uint64_t t = top_of(age_.value.load(std::memory_order_seq_cst));
    return b > t ? static_cast<std::size_t>(b - t) : 0;
  }

  std::uint32_t tag_hint() const {
    // model-site: none(test-only inspection of the tag field)
    return static_cast<std::uint32_t>(
        tag_of(age_.value.load(std::memory_order_seq_cst)));
  }

 private:
  // Returns the new buffer, or nullptr when growth is impossible (the
  // capacity bound, or bad_alloc from either the buffer or the retirement
  // list). Every allocation happens BEFORE the publish: once a thief can
  // see the new buffer pointer nothing on this path can throw, so a failed
  // grow leaves the deque exactly as it was.
  Buffer* grow(Buffer* old, std::uint64_t local_bot) {
    if (max_capacity_ != 0 && old->capacity * 2 > max_capacity_)
      return nullptr;
    CHAOS_POINT("deque.grow.pre_alloc");
    std::unique_ptr<Buffer> bigger;
    try {
      bigger = std::make_unique<Buffer>(old->capacity * 2);
      // Reserve the retirement slot up front so the push_back after the
      // publish below is no-throw.
      buffers_.reserve(buffers_.size() + 1);
    } catch (const std::bad_alloc&) {
      return nullptr;
    }
    // Copy the window that can still be referenced: [top, local_bot). A
    // concurrently advancing top only shrinks the live window, so a
    // relaxed (possibly stale-low) read copies a superset.
    // model-site: growable.grow.age_load
    const std::uint64_t t = top_of(age_.value.load(std::memory_order_relaxed));
    for (std::uint64_t i = t; i < local_bot; ++i) {
      // Cells in [top, bot) were written by this owner before this call.
      // model-site: growable.grow.item_load
      const T v = old->data[i].load(std::memory_order_relaxed);
      // Published to thieves by the release buf_ store below.
      // model-site: growable.grow.item_store
      bigger->data[i].store(v, std::memory_order_relaxed);
    }
    Buffer* raw = bigger.get();
    buffers_.push_back(std::move(bigger));  // retire; freed at destruction
    CHAOS_POINT("deque.grow.pre_publish");
    // Release publishes the copied cells with the new buffer pointer.
    // model-site: growable.grow.publish
    buf_.store(raw, std::memory_order_release);
    return raw;
  }

  static constexpr std::uint64_t top_of(std::uint64_t age) noexcept {
    return age & 0xffffffffULL;
  }
  static constexpr std::uint64_t tag_of(std::uint64_t age) noexcept {
    return age >> 32;
  }
  static constexpr std::uint64_t make_age(std::uint64_t tag,
                                          std::uint64_t top) noexcept {
    return (tag << 32) | (top & 0xffffffffULL);
  }

  CacheAligned<std::atomic<std::uint64_t>> age_{};
  CacheAligned<std::atomic<std::uint64_t>> bot_{};
  std::atomic<Buffer*> buf_{nullptr};
  std::vector<std::unique_ptr<Buffer>> buffers_;  // owner-only mutation
  std::size_t max_capacity_ = 0;                  // 0 = unbounded
  bool batch_steals_enabled_ = false;             // arms the defend window
};

// The batch-claim ablation, for the chaos harness only — never a runtime
// policy. pop_top_batch returns n items but its CAS publishes top+1, the
// wrong-top bug the differential fuzzer asserts it can catch.
template <typename T>
using BatchAblatedGrowableDeque = AbpGrowableDeque<T, /*kBatchAblated=*/true>;

}  // namespace abp::deque
