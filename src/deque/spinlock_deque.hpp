#pragma once

// Blocking deque guarded by a test-and-set spinlock — the 1998-style
// user-level lock the paper's non-blocking argument is aimed at (§1: "if
// the kernel preempts a process, it does not hinder other processes, for
// example by holding locks").
//
// Under multiprogramming this implementation exhibits exactly the
// pathology the paper describes: when the kernel preempts a process inside
// a deque operation, every other process that touches that deque spins
// through its entire scheduling quantum waiting for a lock whose holder is
// not running. The futex-based MutexDeque hides some of that cost by
// sleeping its waiters; this one does not, which is what makes it the
// honest ablation baseline for experiment E10.

#include <algorithm>
#include <deque>
#include <optional>

#include "chaos/chaos.hpp"
#include "deque/pop_top.hpp"
#include "support/sync.hpp"

namespace abp::deque {

template <typename T>
class SpinlockDeque {
 public:
  explicit SpinlockDeque(std::size_t /*capacity*/ = 0) {}

  SpinlockDeque(const SpinlockDeque&) = delete;
  SpinlockDeque& operator=(const SpinlockDeque&) = delete;

  // The chaos point sits *inside* the critical section: injecting a yield
  // there is precisely the lock-holder preemption of §1 that the
  // non-blocking deque exists to survive — every other process touching
  // this deque then spins until the holder runs again.
  void push_bottom(T item) {
    lock();
    CHAOS_POINT("deque.lock.in_critical");
    items_.push_back(item);
    unlock();
  }

  std::optional<T> pop_bottom() {
    lock();
    CHAOS_POINT("deque.lock.in_critical");
    std::optional<T> out;
    if (!items_.empty()) {
      out = items_.back();
      items_.pop_back();
    }
    unlock();
    return out;
  }

  std::optional<T> pop_top() {
    lock();
    CHAOS_POINT("deque.lock.in_critical");
    std::optional<T> out;
    if (!items_.empty()) {
      out = items_.front();
      items_.pop_front();
    }
    unlock();
    return out;
  }

  // The lock serializes thieves, so a failure is always "empty".
  PopTopResult<T> pop_top_ex() {
    auto item = pop_top();
    return {item, item ? PopTopStatus::kSuccess : PopTopStatus::kEmpty};
  }

  // Batched steal under the lock (reference semantics; see MutexDeque).
  PopTopBatchResult<T> pop_top_batch(std::size_t k) {
    lock();
    CHAOS_POINT("deque.lock.in_critical");
    PopTopBatchResult<T> r;
    if (!items_.empty() && k != 0) {
      std::size_t take = (items_.size() + 1) / 2;
      take = std::min(std::min(take, k), kMaxStealBatch);
      for (std::size_t i = 0; i < take; ++i) {
        r.items[i] = items_.front();
        items_.pop_front();
      }
      r.count = take;
      r.status = PopTopStatus::kSuccess;
    }
    unlock();
    return r;
  }

  // Hints take the lock too: std::deque has no racy-read-tolerant
  // representation — an unlocked empty()/size() is a genuine data race
  // (TSan reports it), not a benign stale read like the ABP index loads.
  bool empty_hint() const {
    lock();
    const bool empty = items_.empty();
    unlock();
    return empty;
  }

  std::size_t size_hint() const {
    lock();
    const std::size_t n = items_.size();
    unlock();
    return n;
  }

 private:
  // Pure test-and-set spin (lock_unyielding): no yielding, no sleeping —
  // the behaviour of a 1990s user-level lock, and the worst case under
  // preemption. sync::SpinLock makes it a TRY_ACQUIRE-capable capability
  // the thread-safety analysis tracks like any mutex.
  void lock() const ABP_ACQUIRE(lock_) { lock_.lock_unyielding(); }
  void unlock() const ABP_RELEASE(lock_) { lock_.unlock(); }

  mutable sync::SpinLock lock_;
  std::deque<T> items_ ABP_GUARDED_BY(lock_);
};

}  // namespace abp::deque
