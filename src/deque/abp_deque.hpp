#pragma once

// The ABP non-blocking work-stealing deque (paper §3.2-3.3, Figures 4-5).
//
// One *owner* process pushes and pops at the bottom; any number of *thief*
// processes pop at the top. The implementation is non-blocking: a process
// that is preempted mid-operation cannot prevent other processes from
// completing their operations (no locks are held, ever).
//
// State (Figure 4):
//   deq  — array of items
//   bot  — index *below* the bottom item (number of items ever at bottom)
//   age  — a single machine word holding two fields:
//            top — index of the top item
//            tag — a "uniquifier" bumped every time top is reset, so that a
//                  stalled thief whose CAS races a full drain-and-refill of
//                  the deque cannot succeed with a stale top (ABA).
//
// Semantics (§3.2, "relaxed semantics"): push_bottom/pop_bottom (owner-only,
// never concurrent with each other) and every pop_top that returns an item
// are linearizable; a pop_top may return nothing if at some instant during
// the invocation the deque was empty OR another process removed the topmost
// item. That relaxed guarantee is exactly what the performance theorems
// need.
//
// The paper's pseudocode assumes sequential consistency ("extra memory
// operation ordering instructions may be needed" otherwise). Every atomic
// access below names the weakest memory_order the model checker proves
// sufficient (src/model/weak_machine.cpp kOrderTable; explored under TSO
// and C11 release/acquire by tests/test_model_weak.cpp, which also shows
// a counterexample trace for each ordering we must NOT relax). Each
// access carries a `model-site:` anchor naming its row in that table;
// tools/atomics_lint.py fails the build if the two drift apart. `cas` is
// compare_exchange_strong.
//
// Tag width: the paper adapts the bounded-tags algorithm [Moir 97] because
// mid-1990s machines had 32-bit words. On a 64-bit word we pack a 32-bit
// tag with a 32-bit top; the tag is bumped only by pop_bottom's reset of an
// *empty* deque, so wrapping requires 2^32 drain cycles to occur while a
// single thief is stalled between its read of `age` and its CAS — we treat
// that as impossible in practice and document it here, mirroring the
// paper's reliance on bounded tags.

// Item slots are relaxed std::atomic<T>: the algorithm tolerates a stalled
// thief reading a slot the owner has since recycled (the CAS rejects the
// stale value), but in C++ that racing plain access would be UB — and a
// TSan report. Relaxed atomic loads/stores compile to plain moves on every
// mainstream target, so this costs nothing; ordering still comes entirely
// from the seq_cst age/bot accesses, as in the paper.
//
// The kTagged template parameter exists for the chaos harness only: with
// kTagged = false, popBottom's reset keeps the old tag — the exact ABA
// ablation of model::ExploreOptions::disable_tag, compiled into the real
// std::atomic code so tests/chaos_driver.hpp can demonstrate that the
// fault-injection harness catches the duplicate/lost items the tag
// prevents (see tests/test_chaos_deques.cpp).

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <type_traits>

#include "chaos/chaos.hpp"
#include "deque/pop_top.hpp"
#include "support/align.hpp"
#include "support/assert.hpp"

namespace abp::deque {

template <typename T, bool kTagged = true>
class AbpDeque {
  static_assert(std::is_trivially_copyable_v<T>,
                "the ABP deque stores word-like items (nodes / thread "
                "pointers in the paper)");
  static_assert(std::atomic<T>::is_always_lock_free,
                "item slots must be plain machine words");

 public:
  explicit AbpDeque(std::size_t capacity = 8192)
      : capacity_(capacity),
        deq_(std::make_unique<std::atomic<T>[]>(capacity)) {
    ABP_ASSERT(capacity >= 1);
  }

  AbpDeque(const AbpDeque&) = delete;
  AbpDeque& operator=(const AbpDeque&) = delete;

  std::size_t capacity() const noexcept { return capacity_; }

  // pushBottom (Figure 5). Owner only.
  void push_bottom(T node) {
    // bot is written by the owner only; its own program order suffices.
    // model-site: abp.push_bottom.bottom_load
    const std::uint64_t local_bot = bot_.value.load(std::memory_order_relaxed);
    ABP_ASSERT_MSG(local_bot < capacity_, "ABP deque overflow");
    CHAOS_POINT("deque.pushbottom.pre_item_store");
    // Ordering comes entirely from the release bot store below.
    // model-site: abp.push_bottom.item_store
    deq_[local_bot].store(node, std::memory_order_relaxed);
    CHAOS_POINT("deque.pushbottom.pre_bot_store");
    // Release publishes the item store above: a thief whose acquire load
    // of bot sees the new count also sees the cell contents.
    // model-site: abp.push_bottom.bottom_store
    bot_.value.store(local_bot + 1, std::memory_order_release);
  }

  // popTop (Figure 5). Any process. Returns nothing when the deque was
  // empty or the topmost item was concurrently removed (relaxed semantics).
  std::optional<T> pop_top() { return pop_top_ex().item; }

  // popTop with the failure reason preserved (empty vs. lost CAS race);
  // identical algorithm, the status is free information the plain
  // interface discards.
  PopTopResult<T> pop_top_ex() {
    CHAOS_POINT("deque.poptop.pre_read");
    // Acquire pairs with the release members of age's release sequence
    // (age_store / winning CASes): top's cell is visible when top is.
    // model-site: abp.pop_top.age_load
    const std::uint64_t old_age = age_.value.load(std::memory_order_acquire);
    // Acquire pairs with push_bottom's release bot store: seeing the new
    // bot implies seeing the pushed item.
    // model-site: abp.pop_top.bottom_load
    const std::uint64_t local_bot = bot_.value.load(std::memory_order_acquire);
    if (local_bot <= top_of(old_age))
      return {std::nullopt, PopTopStatus::kEmpty};
    // A stale read is harmless: the CAS fails unless age is unchanged,
    // and an unchanged (tag, top) means the cell was not recycled.
    // model-site: abp.pop_top.item_load
    const T node = deq_[top_of(old_age)].load(std::memory_order_relaxed);
    const std::uint64_t new_age = make_age(tag_of(old_age), top_of(old_age) + 1);
    std::uint64_t expected = old_age;
    CHAOS_POINT("deque.poptop.pre_cas");
    // seq_cst: the steal's linearization point must totally order against
    // popBottom's bot store / age load window (see that site).
    // model-site: abp.pop_top.cas
    if (age_.value.compare_exchange_strong(expected, new_age,
                                           std::memory_order_seq_cst)) {
      return {node, PopTopStatus::kSuccess};
    }
    return {std::nullopt, PopTopStatus::kLostRace};
  }

  // popBottom (Figure 5). Owner only.
  std::optional<T> pop_bottom() {
    // Owner-only counter: reads back the owner's own latest store.
    // model-site: abp.pop_bottom.bottom_load
    std::uint64_t local_bot = bot_.value.load(std::memory_order_relaxed);
    if (local_bot == 0) return std::nullopt;
    --local_bot;
    // seq_cst store→load barrier: the age load below must not be ordered
    // before this store (TSO would do exactly that with anything weaker),
    // or the owner and a thief can both take the last item.
    // model-site: abp.pop_bottom.bottom_store
    bot_.value.store(local_bot, std::memory_order_seq_cst);
    CHAOS_POINT("deque.popbottom.post_bot_store");
    // Once bot has moved below the cell the owner owns it; the CAS below
    // arbitrates the only contended case (last item).
    // model-site: abp.pop_bottom.item_load
    const T node = deq_[local_bot].load(std::memory_order_relaxed);
    // seq_cst: must observe any steal that linearized before the bot
    // store above became visible; an acquire load can read a stale top
    // and hand out the stolen item a second time.
    // model-site: abp.pop_bottom.age_load
    const std::uint64_t old_age = age_.value.load(std::memory_order_seq_cst);
    if (local_bot > top_of(old_age)) return node;
    // The deque had at most one item; reset it to the canonical empty state
    // (bot = top = 0) and bump the tag so stalled thieves cannot ABA.
    // (kTagged = false is the chaos harness's ABA ablation: the reset keeps
    // the old tag, so a stalled thief's CAS can succeed against a recycled
    // (tag, top) pair.)
    //
    // Owner-only bookkeeping: published to thieves by the CAS / release
    // age store below, never read before then.
    // model-site: abp.pop_bottom.bottom_reset
    bot_.value.store(0, std::memory_order_relaxed);
    const std::uint64_t new_age =
        make_age(tag_of(old_age) + (kTagged ? 1 : 0), 0);
    if (local_bot == top_of(old_age)) {
      std::uint64_t expected = old_age;
      CHAOS_POINT("deque.popbottom.pre_cas");
      // seq_cst: linearization point of the last-item race against the
      // thief's steal CAS.
      // model-site: abp.pop_bottom.cas
      if (age_.value.compare_exchange_strong(expected, new_age,
                                             std::memory_order_seq_cst)) {
        return node;  // we won the race against any concurrent pop_top
      }
    }
    // A thief took the last item (or top had already passed local_bot).
    // Release publishes the bot reset above before thieves can observe
    // the new (tag, top); nothing later depends on this store's order.
    // model-site: abp.pop_bottom.age_store
    age_.value.store(new_age, std::memory_order_release);
    return std::nullopt;
  }

  // Owner-only convenience: true iff bot == 0 at the moment of the load.
  // (Used by tests and stats; the algorithm itself never needs it.)
  bool empty_hint() const {
    // model-site: none(racy observability hint, not part of the algorithm)
    const std::uint64_t b = bot_.value.load(std::memory_order_seq_cst);
    // model-site: none(racy observability hint, not part of the algorithm)
    const std::uint64_t a = age_.value.load(std::memory_order_seq_cst);
    return b <= top_of(a);
  }

  // Approximate size (racy; for statistics only).
  std::size_t size_hint() const {
    // model-site: none(racy observability hint, not part of the algorithm)
    const std::uint64_t b = bot_.value.load(std::memory_order_seq_cst);
    // model-site: none(racy observability hint, not part of the algorithm)
    const std::uint64_t t = top_of(age_.value.load(std::memory_order_seq_cst));
    return b > t ? static_cast<std::size_t>(b - t) : 0;
  }

  // Exposed for the ABA/tag unit tests.
  std::uint32_t tag_hint() const {
    // model-site: none(test-only inspection of the tag field)
    return static_cast<std::uint32_t>(
        tag_of(age_.value.load(std::memory_order_seq_cst)));
  }

 private:
  static constexpr std::uint64_t top_of(std::uint64_t age) noexcept {
    return age & 0xffffffffULL;
  }
  static constexpr std::uint64_t tag_of(std::uint64_t age) noexcept {
    return age >> 32;
  }
  static constexpr std::uint64_t make_age(std::uint64_t tag,
                                          std::uint64_t top) noexcept {
    return (tag << 32) | (top & 0xffffffffULL);
  }

  std::size_t capacity_;
  std::unique_ptr<std::atomic<T>[]> deq_;
  // age and bot live on separate cache lines: thieves hammer `age` with CAS
  // while the owner's push/pop traffic is on `bot`.
  CacheAligned<std::atomic<std::uint64_t>> age_{};  // (tag << 32) | top
  CacheAligned<std::atomic<std::uint64_t>> bot_{};
};

// The ABA ablation, for the chaos harness only — never a runtime policy.
template <typename T>
using TagAblatedAbpDeque = AbpDeque<T, /*kTagged=*/false>;

}  // namespace abp::deque
