#pragma once

// Typed result of a pushBottom that may fail to make room.
//
// The fixed ABP deque never allocates, but the growable variants (ABP
// growable, Chase-Lev) and the blocking baselines do — and an allocation
// failure inside pushBottom would otherwise propagate bad_alloc out of the
// owner's steal-critical window, unwinding the scheduler loop with a job
// in hand. push_bottom_ex catches that case and reports it as data: the
// deque is unchanged, the item was NOT pushed, and the caller decides how
// to degrade (the runtime runs the job inline, serializing it).

#include <cstdint>

namespace abp::deque {

enum class PushStatus : std::uint8_t {
  kOk,           // item is in the deque
  kAllocFailed,  // growth failed (bad_alloc or a configured capacity bound);
                 // the deque is unchanged and the item was not pushed
};

constexpr const char* to_string(PushStatus s) noexcept {
  switch (s) {
    case PushStatus::kOk: return "ok";
    case PushStatus::kAllocFailed: return "alloc-failed";
  }
  return "?";
}

}  // namespace abp::deque
