#pragma once

// C++20 concept shared by the three deque implementations, so the runtime's
// worker loop and the tests can be written once and instantiated per policy.

#include <concepts>
#include <optional>

#include "deque/pop_top.hpp"

namespace abp::deque {

template <typename D, typename T>
concept WorkStealingDeque = requires(D d, const D cd, T item) {
  { d.push_bottom(item) } -> std::same_as<void>;
  { d.pop_bottom() } -> std::same_as<std::optional<T>>;
  { d.pop_top() } -> std::same_as<std::optional<T>>;
  { d.pop_top_ex() } -> std::same_as<PopTopResult<T>>;
  { cd.empty_hint() } -> std::convertible_to<bool>;
  { cd.size_hint() } -> std::convertible_to<std::size_t>;
};

}  // namespace abp::deque
