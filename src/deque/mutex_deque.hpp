#pragma once

// Blocking (lock-based) deque with the same interface as AbpDeque.
//
// This is the ablation baseline for the paper's claim (§1, §6) that the
// *non-blocking* property is essential under multiprogramming: if the kernel
// preempts a process while it holds the deque lock, every thief targeting
// that deque — and the owner — spins or blocks until the lock holder runs
// again. Experiment E10 measures exactly this effect.

#include <algorithm>
#include <deque>
#include <optional>

#include "chaos/chaos.hpp"
#include "deque/pop_top.hpp"
#include "support/sync.hpp"

namespace abp::deque {

template <typename T>
class MutexDeque {
 public:
  explicit MutexDeque(std::size_t /*capacity*/ = 0) {}

  MutexDeque(const MutexDeque&) = delete;
  MutexDeque& operator=(const MutexDeque&) = delete;

  // The chaos point sits inside the critical section (same placement as
  // SpinlockDeque): injecting there is §1's lock-holder preemption. The
  // futex-based waiters sleep instead of spinning, which is exactly the
  // behavioral difference E10 measures.
  void push_bottom(T item) {
    sync::MutexLock lock(mu_);
    CHAOS_POINT("deque.lock.in_critical");
    items_.push_back(item);
  }

  std::optional<T> pop_bottom() {
    sync::MutexLock lock(mu_);
    CHAOS_POINT("deque.lock.in_critical");
    if (items_.empty()) return std::nullopt;
    T item = items_.back();
    items_.pop_back();
    return item;
  }

  std::optional<T> pop_top() {
    sync::MutexLock lock(mu_);
    CHAOS_POINT("deque.lock.in_critical");
    if (items_.empty()) return std::nullopt;
    T item = items_.front();
    items_.pop_front();
    return item;
  }

  // The lock serializes thieves, so a failure is always "empty".
  PopTopResult<T> pop_top_ex() {
    auto item = pop_top();
    return {item, item ? PopTopStatus::kSuccess : PopTopStatus::kEmpty};
  }

  // Batched steal under the lock: the atomic reference semantics for
  // pop_top_batch — claim min(k, kMaxStealBatch, ceil(size/2)) items off
  // the top in one critical section. The differential fuzzer checks the
  // lock-free implementation against this.
  PopTopBatchResult<T> pop_top_batch(std::size_t k) {
    sync::MutexLock lock(mu_);
    CHAOS_POINT("deque.lock.in_critical");
    PopTopBatchResult<T> r;
    if (items_.empty() || k == 0) return r;
    std::size_t take = (items_.size() + 1) / 2;
    take = std::min(std::min(take, k), kMaxStealBatch);
    for (std::size_t i = 0; i < take; ++i) {
      r.items[i] = items_.front();
      items_.pop_front();
    }
    r.count = take;
    r.status = PopTopStatus::kSuccess;
    return r;
  }

  bool empty_hint() const {
    sync::MutexLock lock(mu_);
    return items_.empty();
  }

  std::size_t size_hint() const {
    sync::MutexLock lock(mu_);
    return items_.size();
  }

 private:
  mutable sync::Mutex mu_;
  std::deque<T> items_ ABP_GUARDED_BY(mu_);
};

}  // namespace abp::deque
