#pragma once

// Split public/private work-stealing deque (owner-fast-path fence
// elimination), after Rito & Paulino, "Scheduling computations with
// provably low synchronization overheads" (and the Lace runtime's
// tail/split word). The ABP and Chase-Lev owners pay ordering costs on
// every pushBottom/popBottom — a seq_cst age protocol or a release store
// plus a seq_cst take/steal fence — which dominates the per-task constant
// at fine grain. Here the deque is cut in two:
//
//     top                split            bottom
//      |-- public --------|--- private -----|
//      [t, s): stealable  [s, b): owner-only, invisible to thieves
//
// The owner's common path touches ONLY the private segment, through two
// owner-local words accessed entirely with relaxed atomics (which compile
// to plain loads/stores — the atomicity is free, the *ordering* was the
// cost being eliminated). Thieves operate on one shared 64-bit word
// packing (tag:16 | top:24 | split:24):
//
//   * a steal is one CAS on the word advancing `top` — read-then-claim,
//     exactly the ABP shape;
//   * the owner publishes private work by an explicit `transfer` that
//     release-CASes `split` up to `bottom`, bumping the tag;
//   * when the private segment runs dry the owner *reclaims* by CASing
//     `split` back down toward `top` (shrink-half), bumping the tag.
//
// Thieves signal hunger through a relaxed flag when they observe the
// public segment empty; the owner polls it on every push (a load of a
// rarely-written line) and transfers when set. Hunger is a liveness
// hint only — losing a signal delays a transfer, never loses an item,
// because thieves re-set it on every failed steal.
//
// Why the tag: `split` moves both ways, so the word value (top, split)
// can recur — owner reclaims [ns, s), pops those items, pushes fresh
// ones, transfers back to the same split — and a thief stalled between
// its word read and its claim CAS would resurrect an already-consumed
// item (the ABA the ABP tag exists for, generalized from popBottom
// resets to split moves). Every owner write of the word bumps the tag;
// a claim leaves it unchanged (the top advance itself invalidates
// concurrent expectations). A wrap needs 2^16 owner republishes inside
// one thief's load-to-CAS window — the same practical-impossibility
// argument as ABP's 32-bit tag, on a far shorter window.
//
// Why no owner-defended batch window (contrast AbpGrowableDeque): the
// owner's only takes from the public region go through the same
// word-CAS as thieves (reclaim), so a batch claim and an owner take are
// arbitrated by a single RMW location. kMaxStealBatch is honored but is
// not load-bearing for this deque.
//
// The memory orders below are the weakest the model checker admits
// (src/model weak_machine kSplit; tests/test_model_weak.cpp Split*):
// exactly ONE release (the transfer publish) and one acquire (the
// thief's word load) carry the only happens-before edge the algorithm
// needs; the reclaim CAS is provably safe fully relaxed (it needs
// atomicity, not ordering: the owner reads back only its own slot
// stores). The claim CAS carries release solely to pin the pre-claim
// slot read above the claim against local reordering, which an
// interleaving model cannot express (same convention as the Chase-Lev
// seq_cst strengthenings).

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <type_traits>

#include "chaos/chaos.hpp"
#include "deque/pop_top.hpp"
#include "deque/push_result.hpp"
#include "support/align.hpp"
#include "support/assert.hpp"

namespace abp::deque {

// kSafeTransfer=false is the chaos ablation (TransferAblatedSplitDeque):
// the transfer publishes with a blind relaxed store instead of the
// release CAS — "transfer without the release publish". A claim that
// lands between the owner's word read and the blind store is clobbered
// (its top advance undone), so the stolen item is served twice; the
// differential chaos fuzz catches this from a one-line seed
// (tests/test_chaos_deques.cpp ChaosTransferAblation).
template <typename T, bool kSafeTransfer = true>
class SplitDeque {
  static_assert(std::is_trivially_copyable_v<T>);
  static_assert(std::atomic<T>::is_always_lock_free);

  // Word layout: tag:16 | top:24 | split:24. Indices are 24-bit
  // monotonic counters (ring-masked for slot access); all index
  // arithmetic is mod 2^24, valid while the deque holds < 2^23 items.
  static constexpr unsigned kIdxBits = 24;
  static constexpr std::uint32_t kIdxMask = (1u << kIdxBits) - 1;
  static constexpr std::size_t kMaxCapacity = std::size_t{1} << 22;

  static constexpr std::uint64_t pack(std::uint32_t tag, std::uint32_t top,
                                      std::uint32_t split) noexcept {
    return (static_cast<std::uint64_t>(tag & 0xffffu) << 48) |
           (static_cast<std::uint64_t>(top & kIdxMask) << kIdxBits) |
           (split & kIdxMask);
  }
  static constexpr std::uint32_t wtag(std::uint64_t w) noexcept {
    return static_cast<std::uint32_t>(w >> 48) & 0xffffu;
  }
  static constexpr std::uint32_t wtop(std::uint64_t w) noexcept {
    return static_cast<std::uint32_t>(w >> kIdxBits) & kIdxMask;
  }
  static constexpr std::uint32_t wsplit(std::uint64_t w) noexcept {
    return static_cast<std::uint32_t>(w) & kIdxMask;
  }
  // Owner word: bottom:24 (high) | split-mirror:24 (low). Owner-only
  // writer; thieves read it only through the racy size hints.
  static constexpr std::uint64_t pack_pb(std::uint32_t bottom,
                                         std::uint32_t split) noexcept {
    return (static_cast<std::uint64_t>(bottom & kIdxMask) << 32) |
           (split & kIdxMask);
  }

  // Relaxed atomic slots, as in the Chase-Lev formulation: a thief's
  // read of a ring slot can race the owner's store into the same slot
  // one lap later; the tagged word CAS rejects the stale read, but the
  // access itself must be atomic to avoid UB (and TSan reports).
  struct Slots {
    explicit Slots(std::size_t cap)
        : mask(cap - 1), data(std::make_unique<std::atomic<T>[]>(cap)) {
      ABP_ASSERT((cap & (cap - 1)) == 0);
    }
    std::size_t mask;
    std::unique_ptr<std::atomic<T>[]> data;

    T get(std::uint32_t i) const noexcept {
      // Stale reads are rejected by the tagged word CAS at every
      // non-owner caller; the owner reads back only its own stores.
      // model-site: split.pop_bottom.item_load, split.pop_top.item_load, split.pop_top_batch.item_load
      return data[i & mask].load(std::memory_order_relaxed);
    }
    void put(std::uint32_t i, T v) noexcept {
      // Unordered here; published to thieves by transfer's release CAS.
      // model-site: split.push_bottom.item_store
      data[i & mask].store(v, std::memory_order_relaxed);
    }
  };

 public:
  explicit SplitDeque(std::size_t capacity = 64) {
    std::size_t cap = 1;
    while (cap < capacity) cap <<= 1;
    ABP_ASSERT_MSG(cap <= kMaxCapacity,
                   "SplitDeque capacity exceeds the 24-bit index space");
    capacity_ = static_cast<std::uint32_t>(cap);
    slots_ = std::make_unique<Slots>(cap);
  }

  SplitDeque(const SplitDeque&) = delete;
  SplitDeque& operator=(const SplitDeque&) = delete;

  // Owner only. The fast path is the whole point of this deque: one
  // relaxed load + one relaxed store of the owner word, one relaxed
  // slot store, one relaxed load of the hunger line. Zero release or
  // seq_cst operations, zero CAS, no store to any line thieves CAS.
  void push_bottom(T item) {
    const PushStatus st = push_bottom_ex(item);
    ABP_ASSERT_MSG(st == PushStatus::kOk, "SplitDeque overflow");
  }

  PushStatus push_bottom_ex(T item) {
    // model-site: split.push_bottom.pb_load
    const std::uint64_t pb = pb_.value.load(std::memory_order_relaxed);
    const std::uint32_t b = static_cast<std::uint32_t>(pb >> 32) & kIdxMask;
    // Capacity check against a cached top: top only advances, so a
    // stale cache is conservative (may refresh needlessly, never
    // admits an overwrite of an unconsumed slot).
    if (((b - top_cache_) & kIdxMask) >= capacity_) {
      // model-site: split.push_bottom.ts_refresh
      top_cache_ = wtop(ts_.value.load(std::memory_order_relaxed));
      if (((b - top_cache_) & kIdxMask) >= capacity_)
        return PushStatus::kAllocFailed;  // full; deque unchanged
    }
    CHAOS_POINT("deque.pushbottom.pre_item_store");
    slots_->put(b, item);
    // model-site: split.push_bottom.pb_store
    pb_.value.store(pack_pb(b + 1, wsplit64(pb)), std::memory_order_relaxed);
    // Hunger is a rarely-written line: this relaxed load is the entire
    // cost thieves can impose on a non-transferring owner.
    // model-site: split.push_bottom.hunger_load
    if (hunger_.value.load(std::memory_order_relaxed) != 0) transfer();
    return PushStatus::kOk;
  }

  // Owner only. Publish the whole private segment [split, bottom) to
  // thieves. A transfer of size 0 is a no-op (nothing private).
  void transfer() {
    // model-site: split.transfer.pb_load
    const std::uint64_t pb = pb_.value.load(std::memory_order_relaxed);
    const std::uint32_t b = static_cast<std::uint32_t>(pb >> 32) & kIdxMask;
    if (b == wsplit64(pb)) return;
    // Clear before publishing: a hunger set concurrently stays pending
    // and at worst triggers one spurious future transfer.
    // model-site: split.transfer.hunger_clear
    hunger_.value.store(0, std::memory_order_relaxed);
    // model-site: split.transfer.ts_load
    std::uint64_t w = ts_.value.load(std::memory_order_relaxed);
    for (;;) {
      if constexpr (kSafeTransfer) {
        // Release: the ONE edge publishing the slot stores; thieves'
        // acquire word load (or any claim in its release sequence)
        // synchronizes with it. Must be a CAS: a plain store would
        // clobber a concurrent claim's top advance (see the ablation
        // below and model ablation split_blind_publish). Tag bump: see
        // the header comment on split-move ABA.
        // model-site: split.transfer.publish_cas
        CHAOS_POINT("deque.split.transfer.pre_publish");
        if (ts_.value.compare_exchange_weak(w, pack(wtag(w) + 1, wtop(w), b),
                                            std::memory_order_release,
                                            std::memory_order_relaxed))
          break;
        // Failure re-read w: only thieves' top advances can interfere.
      } else {
        // ABLATION: blind relaxed store — no CAS, no release.
        // model-site: none(deliberately broken transfer publish; the
        // chaos differential must catch this, never ship it)
        CHAOS_POINT("deque.split.transfer.pre_publish");
        ts_.value.store(pack(wtag(w) + 1, wtop(w), b),
                        std::memory_order_relaxed);
        break;
      }
    }
    // model-site: split.transfer.pb_store
    pb_.value.store(pack_pb(b, b), std::memory_order_relaxed);
  }

  // Owner only. Fast path (private segment non-empty) is fence-free:
  // one relaxed load, one relaxed store, one relaxed slot read.
  std::optional<T> pop_bottom() {
    // model-site: split.pop_bottom.pb_load
    const std::uint64_t pb = pb_.value.load(std::memory_order_relaxed);
    std::uint32_t b = static_cast<std::uint32_t>(pb >> 32) & kIdxMask;
    std::uint32_t s = wsplit64(pb);
    if (b == s && !reclaim(s)) return std::nullopt;
    b = (b - 1) & kIdxMask;
    // model-site: split.pop_bottom.pb_store
    pb_.value.store(pack_pb(b, s), std::memory_order_relaxed);
    return slots_->get(b);
  }

  // Any process but the owner (the owner uses pop_bottom).
  std::optional<T> pop_top() { return pop_top_ex().item; }

  PopTopResult<T> pop_top_ex() {
    CHAOS_POINT("deque.poptop.pre_read");
    // Acquire: pairs with transfer's release CAS (directly, or through
    // the release sequence continued by intervening claim RMWs), so
    // the slot read below sees the published item. The model proves
    // relaxed here steals unpublished garbage (SplitNoStealAcquire*).
    // model-site: split.pop_top.ts_load
    std::uint64_t w = ts_.value.load(std::memory_order_acquire);
    const std::uint32_t t = wtop(w), s = wsplit(w);
    if (((s - t) & kIdxMask) == 0) {
      // Public segment empty: tell the owner we are starving. Relaxed:
      // pure liveness hint, re-asserted on every failed steal.
      // model-site: split.pop_top.hunger_store
      hunger_.value.store(1, std::memory_order_relaxed);
      return {std::nullopt, PopTopStatus::kEmpty};
    }
    T item = slots_->get(t);
    CHAOS_POINT("deque.poptop.pre_cas");
    // Read-then-claim: the tag makes the expected word unique, so
    // success certifies the slot read above was of the live item.
    // Release (not acq_rel): pins that read above the claim; the
    // acquire half is unnecessary — visibility arrived with the word
    // load. Tag unchanged: the top advance invalidates rivals.
    // model-site: split.pop_top.claim_cas
    if (!ts_.value.compare_exchange_strong(w, pack(wtag(w), t + 1, s),
                                           std::memory_order_release,
                                           std::memory_order_relaxed))
      return {std::nullopt, PopTopStatus::kLostRace};
    return {item, PopTopStatus::kSuccess};
  }

  // Any process but the owner: claim up to ceil(public/2) items (capped
  // by max_items and kMaxStealBatch) in ONE word CAS. items[0] is the
  // oldest. No owner-defended window is needed: the owner's reclaim
  // goes through the same word CAS, so the two claims serialize.
  PopTopBatchResult<T> pop_top_batch(std::size_t max_items) {
    PopTopBatchResult<T> r;
    if (max_items == 0) return r;  // k = 0 is a no-op claim (kEmpty)
    if (max_items > kMaxStealBatch) max_items = kMaxStealBatch;
    CHAOS_POINT("deque.poptop.pre_read");
    // Same edge as pop_top_ex's word load (one release-sequence hop).
    // model-site: split.pop_top_batch.ts_load
    std::uint64_t w = ts_.value.load(std::memory_order_acquire);
    const std::uint32_t t = wtop(w), s = wsplit(w);
    const std::uint32_t pub = (s - t) & kIdxMask;
    if (pub == 0) {
      // model-site: split.pop_top_batch.hunger_store
      hunger_.value.store(1, std::memory_order_relaxed);
      return r;
    }
    std::uint32_t take = (pub + 1) / 2;
    if (take > max_items) take = static_cast<std::uint32_t>(max_items);
    for (std::uint32_t i = 0; i < take; ++i)
      r.items[i] = slots_->get((t + i) & kIdxMask);
    CHAOS_POINT("deque.split.batch.pre_cas");
    // Same contract as the single claim: release success, tag kept.
    // model-site: split.pop_top_batch.claim_cas
    if (!ts_.value.compare_exchange_strong(w, pack(wtag(w), t + take, s),
                                           std::memory_order_release,
                                           std::memory_order_relaxed)) {
      r.status = PopTopStatus::kLostRace;
      return r;
    }
    r.count = take;
    r.status = PopTopStatus::kSuccess;
    return r;
  }

  bool empty_hint() const {
    // model-site: none(racy observability hint, not part of the algorithm)
    const std::uint32_t t = wtop(ts_.value.load(std::memory_order_acquire));
    // model-site: none(racy observability hint, not part of the algorithm)
    const std::uint64_t pb = pb_.value.load(std::memory_order_acquire);
    const std::uint32_t b = static_cast<std::uint32_t>(pb >> 32) & kIdxMask;
    return ((b - t) & kIdxMask) == 0;
  }

  std::size_t size_hint() const {
    // model-site: none(racy observability hint, not part of the algorithm)
    const std::uint32_t t = wtop(ts_.value.load(std::memory_order_acquire));
    // model-site: none(racy observability hint, not part of the algorithm)
    const std::uint64_t pb = pb_.value.load(std::memory_order_acquire);
    const std::uint32_t b = static_cast<std::uint32_t>(pb >> 32) & kIdxMask;
    return (b - t) & kIdxMask;
  }

  // Test observability: the republish tag (wraps mod 2^16).
  std::uint32_t tag_hint() const {
    // model-site: none(test observability only)
    return wtag(ts_.value.load(std::memory_order_relaxed));
  }

 private:
  static constexpr std::uint32_t wsplit64(std::uint64_t pb) noexcept {
    return static_cast<std::uint32_t>(pb) & kIdxMask;
  }

  // Private segment empty: shrink split toward top, making the upper
  // half of the public segment private again (so pop_bottom keeps its
  // LIFO contract even past a transfer). Returns false iff the deque
  // is entirely empty. On success, s is the new split (== the new
  // private segment's lower bound).
  bool reclaim(std::uint32_t& s) {
    for (;;) {
      // model-site: split.reclaim.ts_load
      std::uint64_t w = ts_.value.load(std::memory_order_relaxed);
      const std::uint32_t t = wtop(w);
      const std::uint32_t pub = (wsplit(w) - t) & kIdxMask;
      if (pub == 0) return false;
      const std::uint32_t ns = (t + pub / 2) & kIdxMask;
      CHAOS_POINT("deque.split.reclaim.pre_cas");
      // Fully relaxed, proven by the model: the RMW's atomicity
      // arbitrates against claims (same word), and the owner reads
      // back only its own slot stores — no happens-before edge is
      // consumed or produced here. Tag bump: split moved.
      // model-site: split.reclaim.shrink_cas
      if (ts_.value.compare_exchange_strong(w, pack(wtag(w) + 1, t, ns),
                                            std::memory_order_relaxed,
                                            std::memory_order_relaxed)) {
        s = ns;
        return true;
      }
      // Lost to a claim; re-read and retry (public may now be empty).
    }
  }

  std::unique_ptr<Slots> slots_;
  std::uint32_t capacity_ = 0;
  // Owner-private plain cache of top for the capacity check; only ever
  // read/written by the owner.
  std::uint32_t top_cache_ = 0;
  // Shared word (tag | top | split): the only line thieves CAS.
  CacheAligned<std::atomic<std::uint64_t>> ts_{};
  // Owner word (bottom | split-mirror): owner-only writer, relaxed
  // everywhere; thieves read it only through the racy size hints.
  CacheAligned<std::atomic<std::uint64_t>> pb_{};
  // Thief-to-owner starvation signal; its own line so thief writes do
  // not invalidate the words above.
  CacheAligned<std::atomic<std::uint32_t>> hunger_{};
};

template <typename T>
using TransferAblatedSplitDeque = SplitDeque<T, false>;

}  // namespace abp::deque
