#pragma once

// Kernel adversaries (§2, §4.4).
//
// The kernel operates in rounds; at each round it schedules some subset of
// the P processes. We model the three adversary classes of §4.4:
//
//   * benign    — chooses only the *number* p_i of scheduled processes; the
//                 processes themselves are chosen uniformly at random
//                 (Theorem 10);
//   * oblivious — chooses both the number and the identity of scheduled
//                 processes, but commits to the whole schedule before the
//                 execution begins (Theorem 11);
//   * adaptive  — chooses on-line, seeing the scheduler's state
//                 (Theorem 12).
//
// A dedicated machine (Theorem 9) is the special kernel that schedules all
// P processes every round.
//
// Yield constraints are enforced outside the kernel, by sim::YieldLedger,
// using the paper's replacement rule; see yield.hpp.

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "obs/timeline.hpp"
#include "sim/profile.hpp"
#include "support/rng.hpp"

namespace abp::sim {

using ProcId = std::uint32_t;

// What an adaptive adversary may observe about each process. (A real kernel
// can see anything in shared memory; these two fields are what our concrete
// adversaries need.)
struct ProcessView {
  bool has_assigned_node = false;
  std::size_t deque_size = 0;
};

class Kernel {
 public:
  virtual ~Kernel() = default;

  // The set of processes scheduled at `round` (1-based). `view` describes
  // current per-process scheduler state; only adaptive kernels may use it.
  virtual std::vector<ProcId> schedule(Round round,
                                       std::span<const ProcessView> view) = 0;

  virtual std::size_t num_processes() const noexcept = 0;
  virtual const char* name() const noexcept = 0;

  // Observability: when attached, every schedule() reports its p_i choice
  // to the timeline — the kernel-side record of processor supply, which in
  // multiprogrammed runs differs from any single engine's view.
  void attach_timeline(obs::SimTimeline* t) noexcept { timeline_ = t; }
  obs::SimTimeline* timeline() const noexcept { return timeline_; }

 protected:
  void note_choice(Round round, std::size_t p_i) const {
    if (timeline_ != nullptr)
      timeline_->note_kernel_choice(round, static_cast<std::uint32_t>(p_i));
  }

 private:
  obs::SimTimeline* timeline_ = nullptr;
};

// Dedicated environment: all P processes run every round (Theorem 9).
class DedicatedKernel final : public Kernel {
 public:
  explicit DedicatedKernel(std::size_t num_processes);
  std::vector<ProcId> schedule(Round round,
                               std::span<const ProcessView> view) override;
  std::size_t num_processes() const noexcept override { return p_; }
  const char* name() const noexcept override { return "dedicated"; }

 private:
  std::size_t p_;
  std::vector<ProcId> all_;
};

// Benign adversary: the profile picks p_i; identities are uniform random.
class BenignKernel final : public Kernel {
 public:
  BenignKernel(std::size_t num_processes, UtilizationProfile profile,
               std::uint64_t seed);
  std::vector<ProcId> schedule(Round round,
                               std::span<const ProcessView> view) override;
  std::size_t num_processes() const noexcept override { return p_; }
  const char* name() const noexcept override { return "benign"; }

 private:
  std::size_t p_;
  UtilizationProfile profile_;
  Xoshiro256 rng_;
};

// Oblivious adversary: the whole schedule is a deterministic function of
// (round, its own private seed) fixed before execution; it never looks at
// the view. The default strategy rotates a contiguous window of processes
// so particular processes are repeatedly denied service for long stretches.
class ObliviousKernel final : public Kernel {
 public:
  ObliviousKernel(std::size_t num_processes, UtilizationProfile profile,
                  std::uint64_t seed);
  std::vector<ProcId> schedule(Round round,
                               std::span<const ProcessView> view) override;
  std::size_t num_processes() const noexcept override { return p_; }
  const char* name() const noexcept override { return "oblivious"; }

 private:
  std::size_t p_;
  UtilizationProfile profile_;
  std::uint64_t seed_;
};

// Oblivious kernel given by an explicit per-round process list (used for
// the Figure 2 reproduction); cycles when the list is exhausted.
class ExplicitKernel final : public Kernel {
 public:
  explicit ExplicitKernel(std::size_t num_processes,
                          std::vector<std::vector<ProcId>> rounds);
  std::vector<ProcId> schedule(Round round,
                               std::span<const ProcessView> view) override;
  std::size_t num_processes() const noexcept override { return p_; }
  const char* name() const noexcept override { return "explicit"; }

 private:
  std::size_t p_;
  std::vector<std::vector<ProcId>> rounds_;
};

// Adaptive adversary that starves whichever processes currently hold work
// (an assigned node or a non-empty deque) and runs the work-less thieves
// instead. Without yieldToAll this can stall the computation indefinitely
// while racking up scheduled-process tokens — the scenario Theorem 12's
// yieldToAll defends against.
class StarveBusyKernel final : public Kernel {
 public:
  StarveBusyKernel(std::size_t num_processes, UtilizationProfile profile,
                   std::uint64_t seed);
  std::vector<ProcId> schedule(Round round,
                               std::span<const ProcessView> view) override;
  std::size_t num_processes() const noexcept override { return p_; }
  const char* name() const noexcept override { return "adaptive-starve-busy"; }

 private:
  std::size_t p_;
  UtilizationProfile profile_;
  Xoshiro256 rng_;
};

// Adaptive adversary that always runs the busiest processes (a "helpful"
// adaptive kernel; used to sanity-check that adaptivity per se is not what
// costs performance).
class FavorBusyKernel final : public Kernel {
 public:
  FavorBusyKernel(std::size_t num_processes, UtilizationProfile profile,
                  std::uint64_t seed);
  std::vector<ProcId> schedule(Round round,
                               std::span<const ProcessView> view) override;
  std::size_t num_processes() const noexcept override { return p_; }
  const char* name() const noexcept override { return "adaptive-favor-busy"; }

 private:
  std::size_t p_;
  UtilizationProfile profile_;
  Xoshiro256 rng_;
};

}  // namespace abp::sim
