#include "sim/yield.hpp"

#include "support/assert.hpp"

namespace abp::sim {

const char* to_string(YieldKind kind) noexcept {
  switch (kind) {
    case YieldKind::kNone: return "none";
    case YieldKind::kToRandom: return "yieldToRandom";
    case YieldKind::kToAll: return "yieldToAll";
  }
  return "?";
}

YieldLedger::YieldLedger(std::size_t num_processes, YieldKind kind)
    : p_(num_processes), kind_(kind), state_(num_processes),
      last_scheduled_(num_processes, 0) {
  if (kind_ == YieldKind::kToAll)
    for (auto& s : state_) s.seen.assign(p_, false);
}

void YieldLedger::on_yield(ProcId p, Round now, ProcId random_target) {
  switch (kind_) {
    case YieldKind::kNone:
      return;
    case YieldKind::kToRandom:
      ABP_ASSERT(random_target < p_);
      state_[p].yield_round = now;
      state_[p].target = random_target;
      return;
    case YieldKind::kToAll:
      state_[p].yield_round = now;
      state_[p].seen.assign(p_, false);
      state_[p].seen[p] = true;  // p itself need not be re-scheduled
      state_[p].missing = p_ - 1;
      return;
  }
}

bool YieldLedger::satisfied(ProcId p, const std::vector<bool>& in_set) const {
  const State& s = state_[p];
  if (s.yield_round == 0) return true;  // no pending constraint
  switch (kind_) {
    case YieldKind::kNone:
      return true;
    case YieldKind::kToRandom:
      // q scheduled strictly after the yield round, or in this same round.
      return last_scheduled_[s.target] > s.yield_round || in_set[s.target];
    case YieldKind::kToAll:
      if (s.missing == 0) return true;
      for (ProcId q = 0; q < p_; ++q)
        if (!s.seen[q] && !in_set[q]) return false;
      return true;
  }
  return true;
}

ProcId YieldLedger::pick_replacement(ProcId p, const std::vector<bool>& in_set,
                                     const std::vector<bool>& removed) const {
  const State& s = state_[p];
  if (kind_ == YieldKind::kToRandom) return s.target;
  // kToAll: pick a process p is still waiting on that is not already in the
  // scheduled set — preferring one that was not itself just removed for a
  // violated constraint (re-adding such a process would be self-defeating,
  // though the kernel may be forced to when no other candidate exists).
  ProcId fallback = p;
  for (ProcId q = 0; q < p_; ++q) {
    if (s.seen[q] || in_set[q]) continue;
    if (!removed[q]) return q;
    fallback = q;
  }
  ABP_ASSERT_MSG(fallback != p,
                 "pick_replacement called with satisfied constraint");
  return fallback;
}

std::vector<ProcId> YieldLedger::enforce(std::vector<ProcId> proposed,
                                         Round now) {
  (void)now;
  std::vector<bool> in_set(p_, false);
  // Deduplicate while preserving order.
  std::vector<ProcId> unique;
  unique.reserve(proposed.size());
  for (ProcId q : proposed) {
    ABP_ASSERT(q < p_);
    if (!in_set[q]) {
      in_set[q] = true;
      unique.push_back(q);
    }
  }
  if (kind_ == YieldKind::kNone) return unique;

  std::vector<ProcId> result;
  result.reserve(unique.size());
  std::vector<ProcId> replacements;
  std::vector<bool> removed(p_, false);
  for (ProcId p : unique) {
    if (satisfied(p, in_set)) {
      result.push_back(p);
      continue;
    }
    // Replacement rule: run the blocking process in place of p. The
    // replacement is exempt from its own constraint check (the kernel was
    // forced to schedule it).
    const ProcId q = pick_replacement(p, in_set, removed);
    in_set[p] = false;
    removed[p] = true;
    in_set[q] = true;
    replacements.push_back(q);
  }
  for (ProcId q : replacements) result.push_back(q);
  return result;
}

void YieldLedger::note_scheduled(const std::vector<ProcId>& scheduled,
                                 Round now) {
  for (ProcId q : scheduled) last_scheduled_[q] = now;
  if (kind_ != YieldKind::kToAll) return;
  for (ProcId p = 0; p < p_; ++p) {
    State& s = state_[p];
    // Only rounds strictly after the yield round count towards the
    // constraint ("there exists j' with i < j' <= j").
    if (s.yield_round == 0 || s.yield_round >= now || s.missing == 0) continue;
    for (ProcId q : scheduled) {
      if (!s.seen[q]) {
        s.seen[q] = true;
        --s.missing;
      }
    }
  }
}

bool YieldLedger::blocked(ProcId p) const {
  if (state_[p].yield_round == 0) return false;
  const std::vector<bool> none(p_, false);
  return !satisfied(p, none);
}

}  // namespace abp::sim
