#include "sim/exec.hpp"

#include "support/assert.hpp"

namespace abp::sim {

void ExecutionRecord::begin_round(std::size_t scheduled_count) {
  ++rounds_;
  total_scheduled_ += scheduled_count;
}

void ExecutionRecord::record_execute(ProcId proc, dag::NodeId node) {
  ++executed_;
  if (keep_actions_)
    actions_.push_back(Action{rounds_, proc, ActionKind::kExecute, node});
}

void ExecutionRecord::record_idle(ProcId proc) {
  ++idle_;
  if (keep_actions_)
    actions_.push_back(Action{rounds_, proc, ActionKind::kIdle, dag::kNoNode});
}

std::string ExecutionRecord::validate(const dag::Dag& d) const {
  if (!keep_actions_) return "record did not keep actions";
  std::vector<std::uint32_t> remaining(d.num_nodes());
  std::vector<bool> executed(d.num_nodes(), false);
  for (dag::NodeId n = 0; n < d.num_nodes(); ++n)
    remaining[n] = d.in_degree(n);
  std::size_t count = 0;
  for (const Action& a : actions_) {
    if (a.kind != ActionKind::kExecute) continue;
    if (a.node >= d.num_nodes()) return "action references unknown node";
    if (executed[a.node]) return "node executed twice";
    if (remaining[a.node] != 0) return "node executed before a predecessor";
    executed[a.node] = true;
    ++count;
    for (dag::NodeId s : d.successors(a.node)) --remaining[s];
  }
  if (count != d.num_nodes()) return "not every node was executed";
  if (count != executed_) return "executed counter mismatch";
  return {};
}

}  // namespace abp::sim
