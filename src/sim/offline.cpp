#include "sim/offline.hpp"

#include <algorithm>
#include <deque>

#include "support/assert.hpp"

namespace abp::sim {

namespace {

// Shared driver: `pick` pops the next node to execute or returns kNoNode if
// the discipline refuses to run anything this step (greedy never refuses
// while ready nodes exist; Brent refuses nodes beyond the current level).
template <typename PickFn, typename PushFn, typename AnyReadyFn>
OfflineResult drive(const dag::Dag& d, std::size_t num_processes,
                    const UtilizationProfile& profile,
                    const OfflineOptions& opts, PickFn&& pick, PushFn&& push,
                    AnyReadyFn&& any_ready) {
  OfflineResult result;
  result.record = ExecutionRecord(opts.keep_record);

  std::vector<std::uint32_t> remaining(d.num_nodes());
  for (dag::NodeId n = 0; n < d.num_nodes(); ++n)
    remaining[n] = d.in_degree(n);
  push(d.root());

  std::size_t executed = 0;
  Round round = 0;
  // Nodes enabled during step i become ready at step i+1: an execution
  // schedule requires every predecessor to execute at a *prior* step (§2).
  std::vector<dag::NodeId> enabled_this_round;
  while (executed < d.num_nodes()) {
    ++round;
    ABP_ASSERT_MSG(round <= opts.max_rounds,
                   "offline scheduler exceeded max_rounds (profile starves "
                   "the computation?)");
    const ProcCount p_i =
        std::min<ProcCount>(profile(round), num_processes);
    result.record.begin_round(p_i);
    enabled_this_round.clear();
    for (ProcCount slot = 0; slot < p_i; ++slot) {
      const dag::NodeId n = pick();
      if (n == dag::kNoNode) {
        result.record.record_idle(static_cast<ProcId>(slot));
        continue;
      }
      result.record.record_execute(static_cast<ProcId>(slot), n);
      ++executed;
      for (dag::NodeId s : d.successors(n))
        if (--remaining[s] == 0) enabled_this_round.push_back(s);
    }
    for (dag::NodeId s : enabled_this_round) push(s);
    (void)any_ready;
  }

  result.length = result.record.length();
  result.processor_average = result.record.processor_average();
  result.idle_tokens = result.record.idle_tokens();
  const auto t1 = static_cast<double>(d.work());
  const auto tinf = static_cast<double>(d.critical_path_length());
  const auto p = static_cast<double>(num_processes);
  result.lower_bound_work = work_lower_bound(t1, result.processor_average);
  result.greedy_upper_bound =
      greedy_bound(t1, tinf, p, result.processor_average);
  return result;
}

}  // namespace

OfflineResult greedy_schedule(const dag::Dag& d, std::size_t num_processes,
                              const UtilizationProfile& profile,
                              const OfflineOptions& opts) {
  ABP_ASSERT(num_processes >= 1);
  std::deque<dag::NodeId> ready;
  auto pick = [&]() -> dag::NodeId {
    if (ready.empty()) return dag::kNoNode;
    dag::NodeId n;
    if (opts.order == OfflineOptions::Order::kFifo) {
      n = ready.front();
      ready.pop_front();
    } else {
      n = ready.back();
      ready.pop_back();
    }
    return n;
  };
  auto push = [&](dag::NodeId n) { ready.push_back(n); };
  auto any_ready = [&]() { return !ready.empty(); };
  return drive(d, num_processes, profile, opts, pick, push, any_ready);
}

OfflineResult brent_schedule(const dag::Dag& d, std::size_t num_processes,
                             const UtilizationProfile& profile,
                             const OfflineOptions& opts) {
  ABP_ASSERT(num_processes >= 1);
  const auto depth = d.longest_depth_from_root();
  std::uint32_t max_level = 0;
  for (auto dl : depth) max_level = std::max(max_level, dl);

  // Bucket the ready nodes by level; only the current level is eligible.
  std::vector<std::vector<dag::NodeId>> buckets(max_level + 1);
  std::vector<std::size_t> level_total(max_level + 1, 0);
  for (dag::NodeId n = 0; n < d.num_nodes(); ++n) ++level_total[depth[n]];
  std::uint32_t level = 0;
  std::size_t done_in_level = 0;

  auto pick = [&]() -> dag::NodeId {
    while (level <= max_level && done_in_level == level_total[level]) {
      ++level;
      done_in_level = 0;
    }
    if (level > max_level || buckets[level].empty()) return dag::kNoNode;
    const dag::NodeId n = buckets[level].back();
    buckets[level].pop_back();
    ++done_in_level;
    return n;
  };
  auto push = [&](dag::NodeId n) { buckets[depth[n]].push_back(n); };
  auto any_ready = [&]() { return true; };
  return drive(d, num_processes, profile, opts, pick, push, any_ready);
}

}  // namespace abp::sim
