#pragma once
// atomics-lint: allow(shared last-toucher attribution table of the
// concurrent cache model; measurement layer above the modeled deques)

// Pluggable simulated cache layer (DESIGN.md §14).
//
// The model follows the one Gu, Napier & Sun analyze (*Analysis of
// Work-Stealing and Parallel Cache Complexity*): every worker owns a
// private fully-associative LRU cache of `capacity_blocks` blocks, and dag
// nodes map to blocks `node / nodes_per_block`. Executing a node touches
// the blocks of its predecessors (the data the node reads is what its
// predecessors produced) and then its own block. Each touch is a hit or a
// miss against the executing worker's cache; a miss is *attributed*:
//
//   * steal miss — the block was last touched by a DIFFERENT worker, i.e.
//     the reload exists only because work migrated (the cold post-steal
//     reload the paper charges O(M/B) per steal and why Q_P stays within
//     Q1 + O(M/B · #steals));
//   * intrinsic miss — cold (never touched) or evicted by the worker's own
//     capacity pressure; with P = 1 every miss is intrinsic and the totals
//     are exactly the sequential cache complexity Q1.
//
// Two variants share the footprint precomputation: CacheModel is the
// single-threaded variant the round-based simulator drives (fully
// deterministic given the schedule), and ConcurrentCacheModel is the
// real-thread variant the runtime dag engine drives. In both, LRU state is
// worker-private; only the last-toucher table is shared, and in the
// concurrent variant it is an array of relaxed atomics — the attribution
// is a statistical measurement, not a synchronization protocol, so no
// ordering is required beyond per-slot atomicity.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "dag/dag.hpp"
#include "support/align.hpp"

namespace abp::sim {

struct CacheModelConfig {
  std::size_t capacity_blocks = 64;  // per-worker cache size M (in blocks)
  std::size_t nodes_per_block = 4;   // block granularity B (nodes per block)
};

// Per-execution delta: what one node's footprint cost the executing worker.
struct CacheAccess {
  std::uint32_t accesses = 0;
  std::uint32_t hits = 0;
  std::uint32_t misses = 0;
  std::uint32_t steal_misses = 0;
};

// Aggregate counters (per worker or whole-run totals).
struct CacheCounters {
  std::uint64_t accesses = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t steal_misses = 0;

  std::uint64_t intrinsic_misses() const noexcept {
    return misses - steal_misses;
  }

  CacheCounters& operator+=(const CacheCounters& o) noexcept {
    accesses += o.accesses;
    hits += o.hits;
    misses += o.misses;
    steal_misses += o.steal_misses;
    return *this;
  }

  void add(const CacheAccess& a) noexcept {
    accesses += a.accesses;
    hits += a.hits;
    misses += a.misses;
    steal_misses += a.steal_misses;
  }
};

// One worker's fully-associative LRU set over block ids. Touched only by
// its owning worker in both model variants. The recency list is a flat
// vector scanned linearly: capacities are tens-to-hundreds of blocks, where
// the scan beats pointer-chasing structures and stays deterministic.
class LruBlockSet {
 public:
  void reset(std::size_t capacity) {
    capacity_ = capacity;
    blocks_.clear();
    blocks_.reserve(capacity);
  }

  // Returns true on hit. On miss the block is inserted most-recently-used
  // and the least-recently-used block is evicted if over capacity.
  bool touch(std::uint32_t block);

 private:
  std::size_t capacity_ = 0;
  std::vector<std::uint32_t> blocks_;  // front = most recently used
};

// Footprints (the distinct block ids each node touches) precomputed once
// from the dag, shared by both model variants.
class CacheFootprints {
 public:
  CacheFootprints(const dag::Dag& d, std::size_t nodes_per_block);

  std::size_t num_blocks() const noexcept { return num_blocks_; }

  // Distinct blocks node n touches: its predecessors' blocks in edge
  // order, then its own block (reads before the node's own write).
  const std::uint32_t* begin(dag::NodeId n) const {
    return blocks_.data() + offset_[n];
  }
  const std::uint32_t* end(dag::NodeId n) const {
    return blocks_.data() + offset_[n + 1];
  }

 private:
  std::size_t num_blocks_ = 0;
  std::vector<std::uint32_t> offset_;  // CSR: per-node footprint extent
  std::vector<std::uint32_t> blocks_;
};

inline constexpr std::uint32_t kNoToucher = 0xffffffffu;

// Single-threaded variant for the round-based simulator: the engine calls
// on_execute(p, node) as process p executes node, in the serialization
// order of the round. Deterministic given the schedule.
class CacheModel {
 public:
  CacheModel(const dag::Dag& d, const CacheModelConfig& cfg,
             std::size_t num_workers);

  CacheAccess on_execute(std::size_t worker, dag::NodeId node);

  const CacheCounters& counters(std::size_t worker) const {
    return counters_[worker];
  }
  CacheCounters totals() const;

 private:
  CacheFootprints footprints_;
  std::vector<LruBlockSet> lru_;
  std::vector<std::uint32_t> last_toucher_;
  std::vector<CacheCounters> counters_;
};

// Real-thread variant for the runtime dag engine. Each worker touches only
// its own (cache-line padded) LRU set; the shared last-toucher table is
// relaxed atomics. Counters are returned as a per-execution delta so the
// caller folds them into its own padded WorkerStats slot.
class ConcurrentCacheModel {
 public:
  ConcurrentCacheModel(const dag::Dag& d, const CacheModelConfig& cfg,
                       std::size_t num_workers);

  CacheAccess on_execute(std::size_t worker, dag::NodeId node);

 private:
  CacheFootprints footprints_;
  std::vector<CacheAligned<LruBlockSet>> lru_;
  std::unique_ptr<std::atomic<std::uint32_t>[]> last_toucher_;
};

}  // namespace abp::sim
