#pragma once

// Execution schedules (§2) and their validation.
//
// An execution schedule specifies, for each round, which scheduled process
// executed which ready node (or was idle). Its *length* is the number of
// rounds; the processor average PA is (sum of p_i)/length, Equation (1).
//
// Recording every action is optional (tests and the Figure 2 harness use
// it; the large bound-conformance sweeps only need the aggregate counters).

#include <cstdint>
#include <string>
#include <vector>

#include "dag/dag.hpp"
#include "sim/kernel.hpp"

namespace abp::sim {

enum class ActionKind : std::uint8_t {
  kExecute,  // the process executed a node this round
  kIdle,     // scheduled, but executed no node (e.g. a steal attempt)
};

struct Action {
  Round round;
  ProcId proc;
  ActionKind kind;
  dag::NodeId node;  // valid when kind == kExecute
};

class ExecutionRecord {
 public:
  // `keep_actions` = false records only the aggregate counters.
  explicit ExecutionRecord(bool keep_actions = true)
      : keep_actions_(keep_actions) {}

  void begin_round(std::size_t scheduled_count);
  void record_execute(ProcId proc, dag::NodeId node);
  void record_idle(ProcId proc);

  // Aggregates.
  Round length() const noexcept { return rounds_; }
  std::uint64_t total_scheduled() const noexcept { return total_scheduled_; }
  std::uint64_t executed_nodes() const noexcept { return executed_; }
  std::uint64_t idle_tokens() const noexcept { return idle_; }
  double processor_average() const noexcept {
    return rounds_ > 0
               ? static_cast<double>(total_scheduled_) /
                     static_cast<double>(rounds_)
               : 0.0;
  }

  bool keeps_actions() const noexcept { return keep_actions_; }
  const std::vector<Action>& actions() const noexcept { return actions_; }

  // Validates a fully recorded execution against `d`: every node executed
  // exactly once, and each node only after all its predecessors (in the
  // serialized action order, which is how the paper resolves intra-step
  // concurrency). Requires keep_actions. Returns "" when valid.
  std::string validate(const dag::Dag& d) const;

 private:
  bool keep_actions_;
  Round rounds_ = 0;
  std::uint64_t total_scheduled_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t idle_ = 0;
  std::vector<Action> actions_;
};

}  // namespace abp::sim
