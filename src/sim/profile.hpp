#pragma once

// Utilization profiles: how many processes the kernel schedules per round.
//
// The paper's kernel chooses any p_i in [0, P] at each step; a profile is
// the adversary's choice of the *number* scheduled (the choice of *which*
// processes is a separate concern, see kernel.hpp). Profiles are plain
// functions round -> count so that oblivious kernels can commit to them
// ahead of time.

#include <cstdint>
#include <functional>

#include "support/assert.hpp"

namespace abp::sim {

using Round = std::uint64_t;
using ProcCount = std::size_t;

// Maps a (1-based) round number to the number of processes scheduled.
using UtilizationProfile = std::function<ProcCount(Round)>;

inline UtilizationProfile constant_profile(ProcCount count) {
  return [count](Round) { return count; };
}

// Alternates `hi` for `hi_len` rounds then `lo` for `lo_len` rounds.
inline UtilizationProfile periodic_profile(ProcCount hi, Round hi_len,
                                           ProcCount lo, Round lo_len) {
  ABP_ASSERT(hi_len + lo_len > 0);
  return [=](Round r) {
    const Round phase = (r - 1) % (hi_len + lo_len);
    return phase < hi_len ? hi : lo;
  };
}

// Full machine for `burst_len` rounds out of every `period` rounds, one
// process otherwise — models a co-scheduled serial job hogging the machine.
inline UtilizationProfile bursty_profile(ProcCount p, Round burst_len,
                                         Round period) {
  ABP_ASSERT(period >= burst_len && period > 0);
  return [=](Round r) -> ProcCount {
    return ((r - 1) % period) < burst_len ? p : 1;
  };
}

// Starts at P and sheds one processor every `step` rounds down to `floor` —
// models other applications launching over time (§1's design-verifier
// story).
inline UtilizationProfile ramp_down_profile(ProcCount p, Round step,
                                            ProcCount floor = 1) {
  ABP_ASSERT(step > 0 && floor >= 1);
  return [=](Round r) {
    const Round shed = (r - 1) / step;
    return shed >= p - floor ? floor : p - static_cast<ProcCount>(shed);
  };
}

// The Theorem 1 lower-bound construction (§2). For a nonnegative integer k:
//   p_i = 0 for rounds 1 .. k*Tinf          (nothing may run),
//   p_i = P for rounds k*Tinf+1 .. (k+1)*Tinf,
//   p_i = 1 afterwards.
// Every execution needs >= Tinf rounds once processors appear, so the sum
// of p_i over the execution is >= Tinf*P, i.e. length >= Tinf*P/PA; and PA
// over the first (k+1)*Tinf rounds is exactly P/(k+1), trending towards 1
// afterwards. (The scanned paper garbles the exact phase lengths; this
// reconstruction realizes the theorem statement and is validated by the E3
// experiment and tests.)
inline UtilizationProfile theorem1_profile(ProcCount p, std::uint64_t k,
                                           std::uint64_t tinf) {
  ABP_ASSERT(p >= 1 && tinf >= 1);
  return [=](Round r) -> ProcCount {
    if (r <= k * tinf) return 0;
    if (r <= (k + 1) * tinf) return p;
    return 1;
  };
}

}  // namespace abp::sim
