#include "sim/cache.hpp"
// atomics-lint: allow(shared last-toucher attribution table of the
// concurrent cache model; measurement layer above the modeled deques)

#include <algorithm>

#include "support/assert.hpp"

namespace abp::sim {

bool LruBlockSet::touch(std::uint32_t block) {
  auto it = std::find(blocks_.begin(), blocks_.end(), block);
  if (it != blocks_.end()) {
    // Hit: rotate the block to the most-recently-used slot.
    std::rotate(blocks_.begin(), it, it + 1);
    return true;
  }
  blocks_.insert(blocks_.begin(), block);
  if (blocks_.size() > capacity_) blocks_.pop_back();  // evict LRU
  return false;
}

CacheFootprints::CacheFootprints(const dag::Dag& d,
                                 std::size_t nodes_per_block) {
  ABP_ASSERT(nodes_per_block >= 1);
  const std::size_t n = d.num_nodes();
  num_blocks_ = (n + nodes_per_block - 1) / nodes_per_block;
  const auto block_of = [nodes_per_block](dag::NodeId v) {
    return static_cast<std::uint32_t>(v / nodes_per_block);
  };

  // Reverse adjacency (predecessors) from the edge list, CSR-packed.
  std::vector<std::uint32_t> pred_count(n, 0);
  for (const dag::Edge& e : d.edges()) ++pred_count[e.to];
  std::vector<std::uint32_t> pred_offset(n + 1, 0);
  for (std::size_t v = 0; v < n; ++v)
    pred_offset[v + 1] = pred_offset[v] + pred_count[v];
  std::vector<std::uint32_t> preds(pred_offset[n]);
  std::vector<std::uint32_t> fill(pred_offset.begin(), pred_offset.end() - 1);
  for (const dag::Edge& e : d.edges()) preds[fill[e.to]++] = e.from;

  // Footprint of v: predecessor blocks in edge order, then v's own block,
  // deduplicated (footprints are tiny — in-degree is 1-2 for every builder
  // family — so the quadratic dedup is exact and cheap).
  offset_.assign(n + 1, 0);
  blocks_.reserve(n * 2);
  for (std::size_t v = 0; v < n; ++v) {
    const std::size_t start = blocks_.size();
    const auto push_unique = [&](std::uint32_t b) {
      for (std::size_t i = start; i < blocks_.size(); ++i)
        if (blocks_[i] == b) return;
      blocks_.push_back(b);
    };
    for (std::uint32_t i = pred_offset[v]; i < pred_offset[v + 1]; ++i)
      push_unique(block_of(preds[i]));
    push_unique(block_of(static_cast<dag::NodeId>(v)));
    offset_[v + 1] = static_cast<std::uint32_t>(blocks_.size());
  }
}

CacheModel::CacheModel(const dag::Dag& d, const CacheModelConfig& cfg,
                       std::size_t num_workers)
    : footprints_(d, cfg.nodes_per_block),
      lru_(num_workers),
      last_toucher_(footprints_.num_blocks(), kNoToucher),
      counters_(num_workers) {
  ABP_ASSERT(cfg.capacity_blocks >= 1);
  for (auto& l : lru_) l.reset(cfg.capacity_blocks);
}

CacheAccess CacheModel::on_execute(std::size_t worker, dag::NodeId node) {
  CacheAccess a;
  const auto w = static_cast<std::uint32_t>(worker);
  for (const std::uint32_t* b = footprints_.begin(node);
       b != footprints_.end(node); ++b) {
    ++a.accesses;
    const std::uint32_t prev = last_toucher_[*b];
    last_toucher_[*b] = w;
    if (lru_[worker].touch(*b)) {
      ++a.hits;
    } else {
      ++a.misses;
      // The block was last in another worker's cache: this reload exists
      // only because the work migrated (directly stolen, or a descendant
      // of stolen work). Cold and self-evicted misses are intrinsic.
      if (prev != kNoToucher && prev != w) ++a.steal_misses;
    }
  }
  counters_[worker].add(a);
  return a;
}

CacheCounters CacheModel::totals() const {
  CacheCounters t;
  for (const CacheCounters& c : counters_) t += c;
  return t;
}

ConcurrentCacheModel::ConcurrentCacheModel(const dag::Dag& d,
                                           const CacheModelConfig& cfg,
                                           std::size_t num_workers)
    : footprints_(d, cfg.nodes_per_block), lru_(num_workers) {
  ABP_ASSERT(cfg.capacity_blocks >= 1);
  for (auto& l : lru_) l.value.reset(cfg.capacity_blocks);
  const std::size_t blocks = footprints_.num_blocks();
  last_toucher_ = std::make_unique<std::atomic<std::uint32_t>[]>(blocks);
  for (std::size_t b = 0; b < blocks; ++b)
    last_toucher_[b].store(kNoToucher, std::memory_order_relaxed);
}

CacheAccess ConcurrentCacheModel::on_execute(std::size_t worker,
                                             dag::NodeId node) {
  CacheAccess a;
  const auto w = static_cast<std::uint32_t>(worker);
  for (const std::uint32_t* b = footprints_.begin(node);
       b != footprints_.end(node); ++b) {
    ++a.accesses;
    // Relaxed: per-slot atomicity is all attribution needs — a racing
    // exchange only blurs WHICH worker gets charged, never the hit/miss
    // accounting (the LRU sets are worker-private).
    const std::uint32_t prev =
        last_toucher_[*b].exchange(w, std::memory_order_relaxed);
    if (lru_[worker].value.touch(*b)) {
      ++a.hits;
    } else {
      ++a.misses;
      if (prev != kNoToucher && prev != w) ++a.steal_misses;
    }
  }
  return a;
}

}  // namespace abp::sim
