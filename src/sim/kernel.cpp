#include "sim/kernel.hpp"

#include <algorithm>
#include <numeric>

#include "support/assert.hpp"

namespace abp::sim {

namespace {

ProcCount clamp_count(ProcCount count, std::size_t p) {
  return std::min<ProcCount>(count, p);
}

}  // namespace

DedicatedKernel::DedicatedKernel(std::size_t num_processes)
    : p_(num_processes), all_(num_processes) {
  ABP_ASSERT(num_processes >= 1);
  std::iota(all_.begin(), all_.end(), ProcId{0});
}

std::vector<ProcId> DedicatedKernel::schedule(Round round,
                                              std::span<const ProcessView>) {
  note_choice(round, all_.size());
  return all_;
}

BenignKernel::BenignKernel(std::size_t num_processes,
                           UtilizationProfile profile, std::uint64_t seed)
    : p_(num_processes), profile_(std::move(profile)), rng_(seed) {
  ABP_ASSERT(num_processes >= 1);
}

std::vector<ProcId> BenignKernel::schedule(Round round,
                                           std::span<const ProcessView>) {
  const ProcCount count = clamp_count(profile_(round), p_);
  const auto idx = rng_.sample_without_replacement(p_, count);
  std::vector<ProcId> out(idx.size());
  for (std::size_t i = 0; i < idx.size(); ++i)
    out[i] = static_cast<ProcId>(idx[i]);
  note_choice(round, out.size());
  return out;
}

ObliviousKernel::ObliviousKernel(std::size_t num_processes,
                                 UtilizationProfile profile,
                                 std::uint64_t seed)
    : p_(num_processes), profile_(std::move(profile)), seed_(seed) {
  ABP_ASSERT(num_processes >= 1);
}

std::vector<ProcId> ObliviousKernel::schedule(Round round,
                                              std::span<const ProcessView>) {
  // Deterministic function of (round, seed) only — this is what makes the
  // kernel oblivious: the entire schedule is fixed before execution begins.
  // Strategy: schedule a contiguous window of processes whose start rotates
  // slowly (one position every `p_` rounds), so each process sees long
  // stretches of denial.
  const ProcCount count = clamp_count(profile_(round), p_);
  const std::size_t start =
      static_cast<std::size_t>((seed_ + round / p_) % p_);
  std::vector<ProcId> out;
  out.reserve(count);
  for (ProcCount i = 0; i < count; ++i)
    out.push_back(static_cast<ProcId>((start + i) % p_));
  note_choice(round, out.size());
  return out;
}

ExplicitKernel::ExplicitKernel(std::size_t num_processes,
                               std::vector<std::vector<ProcId>> rounds)
    : p_(num_processes), rounds_(std::move(rounds)) {
  ABP_ASSERT(num_processes >= 1);
  ABP_ASSERT(!rounds_.empty());
  for (const auto& r : rounds_)
    for (ProcId q : r) ABP_ASSERT(q < num_processes);
}

std::vector<ProcId> ExplicitKernel::schedule(Round round,
                                             std::span<const ProcessView>) {
  const auto& out =
      rounds_[static_cast<std::size_t>((round - 1) % rounds_.size())];
  note_choice(round, out.size());
  return out;
}

StarveBusyKernel::StarveBusyKernel(std::size_t num_processes,
                                   UtilizationProfile profile,
                                   std::uint64_t seed)
    : p_(num_processes), profile_(std::move(profile)), rng_(seed) {
  ABP_ASSERT(num_processes >= 1);
}

std::vector<ProcId> StarveBusyKernel::schedule(
    Round round, std::span<const ProcessView> view) {
  const ProcCount count = clamp_count(profile_(round), p_);
  // Rank processes: work-less thieves first (these get scheduled), then
  // busy processes (these get starved). Random tie-break so the starvation
  // is not trivially periodic.
  std::vector<ProcId> order(p_);
  std::iota(order.begin(), order.end(), ProcId{0});
  rng_.shuffle(order);
  std::stable_sort(order.begin(), order.end(), [&](ProcId a, ProcId b) {
    const bool busy_a = view[a].has_assigned_node || view[a].deque_size > 0;
    const bool busy_b = view[b].has_assigned_node || view[b].deque_size > 0;
    return busy_a < busy_b;
  });
  order.resize(count);
  note_choice(round, order.size());
  return order;
}

FavorBusyKernel::FavorBusyKernel(std::size_t num_processes,
                                 UtilizationProfile profile,
                                 std::uint64_t seed)
    : p_(num_processes), profile_(std::move(profile)), rng_(seed) {
  ABP_ASSERT(num_processes >= 1);
}

std::vector<ProcId> FavorBusyKernel::schedule(
    Round round, std::span<const ProcessView> view) {
  const ProcCount count = clamp_count(profile_(round), p_);
  std::vector<ProcId> order(p_);
  std::iota(order.begin(), order.end(), ProcId{0});
  rng_.shuffle(order);
  std::stable_sort(order.begin(), order.end(), [&](ProcId a, ProcId b) {
    const bool busy_a = view[a].has_assigned_node || view[a].deque_size > 0;
    const bool busy_b = view[b].has_assigned_node || view[b].deque_size > 0;
    return busy_a > busy_b;
  });
  order.resize(count);
  note_choice(round, order.size());
  return order;
}

}  // namespace abp::sim
