#pragma once

// Offline user-level scheduling (§2): greedy execution schedules
// (Theorem 2) and level-by-level (Brent) schedules, computed for a given
// dag and kernel schedule. These are the baselines the on-line work stealer
// is measured against, plus helpers for the paper's bounds.

#include <cstdint>
#include <functional>

#include "dag/dag.hpp"
#include "sim/exec.hpp"
#include "sim/profile.hpp"

namespace abp::sim {

struct OfflineOptions {
  bool keep_record = false;
  // Safety valve against profiles that never schedule anyone.
  std::uint64_t max_rounds = 1ull << 34;
  // Ready-queue discipline for the greedy scheduler; both are greedy in the
  // paper's sense (execute min(p_i, #ready) nodes per step).
  enum class Order : std::uint8_t { kFifo, kLifo } order = Order::kFifo;
};

struct OfflineResult {
  ExecutionRecord record{false};
  Round length = 0;
  double processor_average = 0.0;
  std::uint64_t idle_tokens = 0;

  // The paper's bounds instantiated for this run.
  double lower_bound_work = 0.0;    // T1/PA            (Theorem 1)
  double greedy_upper_bound = 0.0;  // T1/PA + Tinf(P-1)/PA (Theorem 2)
};

// Greedy schedule: at each step execute min(p_i, #ready) ready nodes.
OfflineResult greedy_schedule(const dag::Dag& d, std::size_t num_processes,
                              const UtilizationProfile& profile,
                              const OfflineOptions& opts = {});

// Brent / level-by-level schedule: nodes of dag-depth L are only executed
// once every node of depth < L has been executed. Satisfies the same bound
// as greedy (Theorem 2, "with only trivial changes to the proof").
OfflineResult brent_schedule(const dag::Dag& d, std::size_t num_processes,
                             const UtilizationProfile& profile,
                             const OfflineOptions& opts = {});

// Bound helpers.
inline double work_lower_bound(double t1, double pa) { return t1 / pa; }
inline double critpath_lower_bound(double tinf, double p, double pa) {
  return tinf * p / pa;
}
inline double greedy_bound(double t1, double tinf, double p, double pa) {
  return t1 / pa + tinf * (p - 1.0) / pa;
}
// The non-blocking work stealer's bound shape O(T1/PA + Tinf*P/PA); used as
// the normalizer when fitting the empirical constant (experiment E9).
inline double work_stealer_bound(double t1, double tinf, double p, double pa) {
  return t1 / pa + tinf * p / pa;
}

}  // namespace abp::sim
