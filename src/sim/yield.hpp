#pragma once

// Yield system calls and their kernel-side enforcement (§3.1, §4.4).
//
// The work stealer calls yield between consecutive steal attempts. Yields
// never change *how many* processes the kernel schedules — only *which*
// (§4.4: "The use of yield system calls never constrains the kernel in its
// choice of the number of processes"). Three disciplines:
//
//   kNone     — yield is a no-op (sufficient against a benign adversary,
//               Theorem 10);
//   kToRandom — yieldToRandom(): after process p yields at round i with
//               random target q, the kernel cannot schedule p at round
//               j > i unless q is scheduled at some round j' with
//               i < j' <= j (Theorem 11);
//   kToAll    — yieldToAll(): p cannot be scheduled again until every other
//               process has been scheduled at least once since the yield
//               (Theorem 12).
//
// Enforcement uses the paper's replacement rule: if the kernel's schedule
// calls for p while p's constraint is unsatisfied, the blocking process q
// is scheduled *in place of* p, preserving p_i. Replacement processes are
// exempt from further constraint checking in that round (the kernel was
// forced to run them; the paper's rule does not chain).

#include <cstdint>
#include <vector>

#include "sim/kernel.hpp"
#include "sim/profile.hpp"
#include "support/rng.hpp"

namespace abp::sim {

enum class YieldKind : std::uint8_t { kNone, kToRandom, kToAll };

const char* to_string(YieldKind kind) noexcept;

class YieldLedger {
 public:
  explicit YieldLedger(std::size_t num_processes, YieldKind kind);

  YieldKind kind() const noexcept { return kind_; }

  // Process p performed its yield call at round `now`; for kToRandom the
  // caller supplies the uniformly random target process q != p.
  void on_yield(ProcId p, Round now, ProcId random_target);

  // Adjusts the kernel's proposed set for round `now` so that every yield
  // constraint is honoured (replacement rule). Also deduplicates.
  std::vector<ProcId> enforce(std::vector<ProcId> proposed, Round now);

  // Records that `scheduled` ran at round `now`; must be called once per
  // round with the post-enforcement set.
  void note_scheduled(const std::vector<ProcId>& scheduled, Round now);

  // True iff p currently has an unsatisfied constraint (ignoring the
  // same-round allowance).
  bool blocked(ProcId p) const;

 private:
  struct State {
    Round yield_round = 0;        // 0 = no pending constraint
    ProcId target = 0;            // kToRandom target
    std::size_t missing = 0;      // kToAll: #processes not yet seen
    std::vector<bool> seen;       // kToAll: seen since yield
  };

  bool satisfied(ProcId p, const std::vector<bool>& in_set) const;
  ProcId pick_replacement(ProcId p, const std::vector<bool>& in_set,
                          const std::vector<bool>& removed) const;

  std::size_t p_;
  YieldKind kind_;
  std::vector<State> state_;
  std::vector<Round> last_scheduled_;
};

}  // namespace abp::sim
