#pragma once
// atomics-lint: allow(synchronizes the chaos engine's own bookkeeping, not modeled algorithm state)

// The built-in fault-injection policies — each one is a concrete reading of
// the paper's kernel adversary (§2, §4.4) at instruction granularity:
//
//   * RandomPolicy       — the benign adversary: preemptions land uniformly
//                          at random across injection points, like quantum
//                          expiries that ignore scheduler state.
//   * TargetedPolicy     — the adaptive adversary: it knows exactly which
//                          window hurts (e.g. a thief between its read of
//                          `age` and its CAS) and stalls precisely there,
//                          every time (or every nth time).
//   * KernelReplayPolicy — the oblivious adversary: a round-based schedule
//                          fixed up front (typically captured from a
//                          sim::Kernel, see kernel_replay.hpp) replayed
//                          against the real runtime — threads that are not
//                          scheduled in the current round are forced to
//                          yield at every point they cross.
//
// All policies are deterministic functions of (scope seed, thread ordinal,
// hit index), so a failing verdict reproduces from its printed seed.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "chaos/chaos.hpp"

namespace abp::chaos {

// Uniform-random chaos: at every point, with probability `p_inject`, pick
// one of yield/spin/sleep (weighted toward yield) and a random small
// repeat count.
class RandomPolicy final : public Policy {
 public:
  struct Config {
    double p_inject = 0.05;
    std::uint32_t max_yields = 4;
    std::uint32_t max_spins = 256;
    std::uint32_t max_sleep_us = 50;
    double p_sleep = 0.02;  // of injections; sleeps are expensive
  };

  RandomPolicy() : RandomPolicy(Config()) {}
  explicit RandomPolicy(Config cfg) : cfg_(cfg) {}

  Decision decide(PointId, std::uint64_t, std::uint64_t,
                  Xoshiro256& rng) override {
    if (!rng.chance(cfg_.p_inject)) return {};
    if (rng.chance(cfg_.p_sleep))
      return {Action::kSleep,
              static_cast<std::uint32_t>(rng.range(1, cfg_.max_sleep_us))};
    if (rng.chance(0.5))
      return {Action::kYield,
              static_cast<std::uint32_t>(rng.range(1, cfg_.max_yields))};
    return {Action::kSpin,
            static_cast<std::uint32_t>(rng.range(1, cfg_.max_spins))};
  }

  const char* name() const noexcept override { return "random"; }

 private:
  Config cfg_;
};

// Targeted stall: inject only at one named point — canonically
// "deque.poptop.pre_cas", the stalled-thief-mid-CAS window the age tag
// exists to defend. `every_n` = 1 stalls every crossing; higher values
// leave some crossings clean so the operation mix stays varied.
class TargetedPolicy final : public Policy {
 public:
  struct Config {
    const char* point = "deque.poptop.pre_cas";
    Action action = Action::kYield;
    std::uint32_t repeat = 16;
    std::uint64_t every_n = 1;  // inject on every nth crossing per thread
  };

  explicit TargetedPolicy(Config cfg) : cfg_(cfg) { name_ = describe(cfg_); }

  Decision decide(PointId point, std::uint64_t, std::uint64_t hit_index,
                  Xoshiro256&) override {
    if (!matches(point)) return {};
    if (cfg_.every_n > 1 && hit_index % cfg_.every_n != 0) return {};
    return {cfg_.action, cfg_.repeat};
  }

  const char* name() const noexcept override { return name_.c_str(); }

 private:
  bool matches(PointId point) {
    // Resolve the target name to an id lazily: points intern on first hit,
    // so the id may not exist when the policy is constructed.
    PointId cached = target_.load(std::memory_order_relaxed);
    if (cached != kInvalidPoint) return point == cached;
    const PointId found = find_point(cfg_.point);
    if (found == kInvalidPoint) return false;
    target_.store(found, std::memory_order_relaxed);
    return point == found;
  }

  static std::string describe(const Config& cfg) {
    return std::string("targeted(") + cfg.point + " x" +
           std::to_string(cfg.repeat) + " every " +
           std::to_string(cfg.every_n) + ")";
  }

  Config cfg_;
  std::string name_;
  std::atomic<PointId> target_{kInvalidPoint};
};

// Worker suspension: the kernel de-scheduling a process for a long,
// variable interval (§2's "loses its processor for a while"), driven at a
// scheduler-loop point so whole steal iterations disappear. Each crossing
// of the target point suspends with probability `p_suspend` for a seeded
// random duration in [min_us, max_us]; an optional global budget caps the
// total number of suspensions per scope so soak tests terminate.
class WorkerSuspendPolicy final : public Policy {
 public:
  struct Config {
    const char* point = "sched.loop.steal_iter";
    double p_suspend = 0.01;
    std::uint32_t min_us = 50;
    std::uint32_t max_us = 2000;
    std::uint64_t max_suspensions = 0;  // 0 = unlimited
  };

  explicit WorkerSuspendPolicy(Config cfg) : cfg_(cfg) {
    name_ = std::string("worker-suspend(") + cfg_.point + ")";
  }

  Decision decide(PointId point, std::uint64_t, std::uint64_t,
                  Xoshiro256& rng) override {
    if (!matches(point)) return {};
    if (!rng.chance(cfg_.p_suspend)) return {};
    const std::uint64_t prior = used_.fetch_add(1, std::memory_order_relaxed);
    if (cfg_.max_suspensions != 0 && prior >= cfg_.max_suspensions) return {};
    return {Action::kSleep,
            static_cast<std::uint32_t>(rng.range(cfg_.min_us, cfg_.max_us))};
  }

  const char* name() const noexcept override { return name_.c_str(); }

  std::uint64_t suspensions() const noexcept {
    // used_ can overshoot past a finite budget by racing threads; clamp.
    const std::uint64_t u = used_.load(std::memory_order_relaxed);
    return cfg_.max_suspensions != 0 && u > cfg_.max_suspensions
               ? cfg_.max_suspensions
               : u;
  }

 private:
  bool matches(PointId point) {
    PointId cached = target_.load(std::memory_order_relaxed);
    if (cached != kInvalidPoint) return point == cached;
    const PointId found = find_point(cfg_.point);
    if (found == kInvalidPoint) return false;
    target_.store(found, std::memory_order_relaxed);
    return point == found;
  }

  Config cfg_;
  std::string name_;
  std::atomic<PointId> target_{kInvalidPoint};
  std::atomic<std::uint64_t> used_{0};
};

// Worker death: the kernel destroying a process outright. Each crossing of
// the target point kills the hitting worker (via Action::kKill, which
// throws WorkerKilledError) with probability `p_kill`, up to a global
// budget. The target MUST be a kill-safe point — a site where the crossing
// thread provably holds no claimed job — or exactly-once delivery is
// forfeit; the scheduler's only such site is "sched.loop.job_boundary"
// (see the catalog in chaos.hpp), which is why it is the fixed default.
class WorkerKillPolicy final : public Policy {
 public:
  struct Config {
    const char* point = "sched.loop.job_boundary";
    double p_kill = 0.001;
    std::uint64_t max_kills = 1;  // budget; 0 kills nothing
  };

  explicit WorkerKillPolicy(Config cfg) : cfg_(cfg) {
    name_ = std::string("worker-kill(") + cfg_.point + ")";
  }

  Decision decide(PointId point, std::uint64_t, std::uint64_t,
                  Xoshiro256& rng) override {
    if (!matches(point)) return {};
    if (!rng.chance(cfg_.p_kill)) return {};
    if (used_.fetch_add(1, std::memory_order_relaxed) >= cfg_.max_kills)
      return {};
    return {Action::kKill, 1};
  }

  const char* name() const noexcept override { return name_.c_str(); }

  std::uint64_t kills() const noexcept {
    // used_ can overshoot past the budget by racing threads; clamp.
    const std::uint64_t u = used_.load(std::memory_order_relaxed);
    return u < cfg_.max_kills ? u : cfg_.max_kills;
  }

 private:
  bool matches(PointId point) {
    PointId cached = target_.load(std::memory_order_relaxed);
    if (cached != kInvalidPoint) return point == cached;
    const PointId found = find_point(cfg_.point);
    if (found == kInvalidPoint) return false;
    target_.store(found, std::memory_order_relaxed);
    return point == found;
  }

  Config cfg_;
  std::string name_;
  std::atomic<PointId> target_{kInvalidPoint};
  std::atomic<std::uint64_t> used_{0};
};

// Round-based schedule replay: `rounds[r]` lists the proc ids scheduled in
// round r (cycled when exhausted); a thread's proc id is its binding
// ordinal mod num_procs. Global time advances by one step per hit across
// all threads; every `hits_per_round` steps begin a new round. A thread
// crossing a point while descheduled yields once per crossing — it loses
// the processor, exactly like the paper's kernel denying it a round —
// but never blocks, so liveness is unconditional even if the schedule
// starves a proc forever.
class KernelReplayPolicy final : public Policy {
 public:
  KernelReplayPolicy(std::vector<std::vector<std::uint32_t>> rounds,
                     std::size_t num_procs, std::uint64_t hits_per_round,
                     std::uint32_t yields_when_descheduled = 4);

  Decision decide(PointId point, std::uint64_t thread_ordinal,
                  std::uint64_t hit_index, Xoshiro256& rng) override;

  const char* name() const noexcept override { return name_.c_str(); }

  std::uint64_t rounds_replayed() const noexcept {
    return step_.load(std::memory_order_relaxed) / hits_per_round_;
  }

 private:
  std::vector<std::vector<std::uint32_t>> rounds_;
  std::size_t num_procs_;
  std::uint64_t hits_per_round_;
  std::uint32_t yields_;
  std::string name_;
  std::atomic<std::uint64_t> step_{0};
};

// Tenant burst adversary (DESIGN.md §16): stalls the multi-tenant
// admission plane at its three named windows —
//
//   tenant.admit.check    — a submitter about to take the admission lock
//                           (stall here and quota checks pile up behind a
//                           stale view of the budgets)
//   tenant.submit.requeue — a blocking submitter between its futex wake
//                           and its admission retry (the window where a
//                           rival submitter steals the freed capacity)
//   tenant.shed.select    — the shedder between sampling a victim's
//                           admit_seq and its shed CAS (the slot-reuse
//                           race the seq re-check defends)
//
// Each window has its own injection probability so tests can aim the
// burst; actions are spins (admit/shed — cheap, tight interleavings) and
// sleeps (requeue — models a de-scheduled submitter).
class TenantBurstPolicy final : public Policy {
 public:
  struct Config {
    double p_admit = 0.2;
    double p_requeue = 0.5;
    double p_shed = 0.5;
    std::uint32_t max_spins = 512;
    std::uint32_t max_sleep_us = 200;
  };

  TenantBurstPolicy() : TenantBurstPolicy(Config()) {}
  explicit TenantBurstPolicy(Config cfg) : cfg_(cfg) {}

  Decision decide(PointId point, std::uint64_t, std::uint64_t,
                  Xoshiro256& rng) override {
    if (matches(admit_, "tenant.admit.check", point)) {
      if (!rng.chance(cfg_.p_admit)) return {};
      return {Action::kSpin,
              static_cast<std::uint32_t>(rng.range(1, cfg_.max_spins))};
    }
    if (matches(requeue_, "tenant.submit.requeue", point)) {
      if (!rng.chance(cfg_.p_requeue)) return {};
      return {Action::kSleep,
              static_cast<std::uint32_t>(rng.range(1, cfg_.max_sleep_us))};
    }
    if (matches(shed_, "tenant.shed.select", point)) {
      if (!rng.chance(cfg_.p_shed)) return {};
      return {Action::kSpin,
              static_cast<std::uint32_t>(rng.range(1, cfg_.max_spins))};
    }
    return {};
  }

  const char* name() const noexcept override { return "tenant-burst"; }

 private:
  // Same lazy interning as TargetedPolicy, one cache per target point.
  static bool matches(std::atomic<PointId>& cache, const char* name,
                      PointId point) {
    PointId cached = cache.load(std::memory_order_relaxed);
    if (cached != kInvalidPoint) return point == cached;
    const PointId found = find_point(name);
    if (found == kInvalidPoint) return false;
    cache.store(found, std::memory_order_relaxed);
    return point == found;
  }

  Config cfg_;
  std::atomic<PointId> admit_{kInvalidPoint};
  std::atomic<PointId> requeue_{kInvalidPoint};
  std::atomic<PointId> shed_{kInvalidPoint};
};

}  // namespace abp::chaos
