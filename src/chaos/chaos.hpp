#pragma once

// Adversarial fault injection — the paper's kernel-as-adversary (§2, §4)
// made executable against the *real* runtime.
//
// The correctness story of the ABP deque rests on tolerating a kernel that
// may preempt any process between any two instructions. The exhaustive
// model::Explorer proves that at model scale (every interleaving of the
// Figure 5 machine), but the production std::atomic code is only ever
// exercised under whatever interleavings the host OS happens to produce —
// on an idle machine, almost none of the interesting ones. This subsystem
// plants named *injection points* at every linearization-critical window
// (the popTop/popBottom CAS sites, pushBottom's bottom-store, the growable
// deque's buffer publish, the scheduler's steal loop) where a seeded,
// per-thread engine can deterministically inject preemption-shaped stalls:
// yields, spins, or sleeps, as chosen by a pluggable Policy.
//
// Compile-out: every site is wrapped in CHAOS_POINT("name"), which expands
// to nothing unless the build sets -DABP_CHAOS=ON (mirroring WHEN_TRACE
// from src/obs/trace.hpp). ABP_CHAOS_ENABLED is injected globally by CMake
// so all translation units agree. With the hooks compiled in but no
// ChaosScope installed, each site costs one relaxed atomic load.
//
// Threading model: hooks may fire from any thread. A thread binds to the
// installed scope lazily on its first hit, receiving a registration
// ordinal (0, 1, 2, … in binding order) and a private RNG seeded from
// (scope seed, ordinal) — so a given (seed, policy, workload) is
// reproducible up to the OS's choice of which thread binds first, and
// exactly reproducible on the single-CPU hosts the differential fuzzer
// targets. Policies are shared across threads and must be thread-safe.

#include <cstdint>
#include <memory>
#include <vector>

#include "support/rng.hpp"

#if !defined(ABP_CHAOS_ENABLED)
#define ABP_CHAOS_ENABLED 0
#endif

namespace abp::chaos {

// Interned identifier of an injection point. Sites intern their name once
// (function-local static), so the per-hit cost is an ID lookup, not a
// string compare.
using PointId = std::uint16_t;
inline constexpr PointId kInvalidPoint = 0xffff;
inline constexpr std::size_t kMaxPoints = 64;

// What the engine does at a point when the policy injects.
enum class Action : std::uint8_t {
  kNone,   // pass through
  kYield,  // repeat × std::this_thread::yield() — a forced preemption
  kSpin,   // repeat × cpu_relax() busy-iterations — a delay that keeps the
           // processor (models a cache-miss-shaped stall, not a context
           // switch)
  kSleep,  // repeat microseconds of sleep — a long de-scheduling, the
           // "process loses its processor for a while" of §2
  kKill,   // throw WorkerKilledError out of the hitting thread — the
           // kernel destroying a process outright. Policies must target
           // only points documented as kill-safe (currently
           // "sched.loop.job_boundary", where a worker provably holds no
           // job): killing anywhere else can strand a claimed job and
           // void the runtime's exactly-once guarantee.
};

// Thrown by the engine on Action::kKill. Deliberately NOT derived from
// std::exception: job-level catch(...) wrappers convert it into an
// ordinary captured job failure (safe), while the scheduler's worker loop
// catches it by type to retire the worker. Carries the injection site for
// diagnostics.
struct WorkerKilledError {
  PointId point = kInvalidPoint;
};

struct Decision {
  Action action = Action::kNone;
  std::uint32_t repeat = 1;
};

// A fault-injection policy: called on the hitting thread at every armed
// point. `thread_ordinal` is the thread's binding order in this scope,
// `hit_index` counts the thread's hits so far, `rng` is the thread's
// private seeded generator. decide() may itself block (gate-style test
// policies synchronize threads this way); it must be thread-safe.
class Policy {
 public:
  virtual ~Policy() = default;
  virtual Decision decide(PointId point, std::uint64_t thread_ordinal,
                          std::uint64_t hit_index, Xoshiro256& rng) = 0;
  virtual const char* name() const noexcept = 0;
};

// ---- registry / engine (implemented in engine.cpp) -------------------------

// True iff a ChaosScope is currently installed. The CHAOS_POINT macro
// checks this before anything else.
bool armed() noexcept;

// Interns `name` (a string literal; the pointer is retained) and returns
// its id; the same name always maps to the same id.
PointId intern_point(const char* name) noexcept;

// Name of an interned point; "?" for an unknown id.
const char* point_name(PointId id) noexcept;

// Id of a previously interned point, kInvalidPoint if never seen. Points
// intern on first *hit*, so a site never reached is not findable.
PointId find_point(const char* name) noexcept;

// The hot entry: consults the installed policy and performs its decision.
// Not noexcept: an Action::kKill decision propagates WorkerKilledError to
// the caller (every other action returns normally).
void hit(PointId id);

// Per-point counters, reset when a ChaosScope installs.
struct PointSnapshot {
  const char* name;
  PointId id;
  std::uint64_t hits;        // times the point fired while armed
  std::uint64_t injections;  // times the policy chose an action != kNone
};
std::vector<PointSnapshot> snapshot_points();
std::uint64_t injections_at(const char* name);
std::uint64_t hits_at(const char* name);

// Installs a policy + seed for its lifetime (RAII; at most one at a time).
// Threads bind lazily on first hit; destroying the scope disarms all of
// them (a thread inside a stall finishes that stall, then goes quiet).
class ChaosScope {
 public:
  ChaosScope(std::shared_ptr<Policy> policy, std::uint64_t seed);
  ~ChaosScope();
  ChaosScope(const ChaosScope&) = delete;
  ChaosScope& operator=(const ChaosScope&) = delete;
};

}  // namespace abp::chaos

// The injection-point macro. Catalog of planted names (DESIGN.md §9):
//   deque.pushbottom.pre_item_store — after reading bot, before the item
//   deque.pushbottom.pre_bot_store  — item written, bottom not yet published
//   deque.poptop.pre_read           — popTop entry, before reading age
//   deque.poptop.pre_cas            — item read, CAS not yet issued (the
//                                     stalled-thief / ABA window)
//   deque.popbottom.post_bot_store  — bottom decremented, age not yet read
//   deque.popbottom.pre_cas         — last-item race, CAS not yet issued
//   deque.grow.pre_alloc            — growth decided, buffer not allocated
//   deque.grow.pre_publish          — resized buffer filled, not yet visible
//   deque.lock.in_critical          — blocking deque holding its lock
//   sched.steal.pre_poptop          — thief chose a victim, popTop pending
//   sched.loop.steal_iter           — one iteration of the Figure 3 loop
//   sched.loop.pre_yield            — before the configured yield call
//   sched.loop.job_boundary         — worker holds no job (the only
//                                     kill-safe window; see Action::kKill)
//   sched.exec.pre_complete         — job ran, completion not yet counted
//                                     (the lost-wakeup window wait() parks
//                                     against)
//   taskgroup.wait.pre_park         — waiter registered, not yet parked
//   tenant.admit.check              — submitter at admission entry, budgets
//                                     not yet inspected (runtime/tenant)
//   tenant.submit.requeue           — blocking submitter woken, admission
//                                     not yet retried (capacity-steal race)
//   tenant.shed.select              — shedder chose a victim, shed CAS not
//                                     yet issued (slot-reuse race)
#if ABP_CHAOS_ENABLED
#define CHAOS_POINT(name)                                      \
  do {                                                         \
    if (::abp::chaos::armed()) {                               \
      static const ::abp::chaos::PointId abp_chaos_pid_ =      \
          ::abp::chaos::intern_point(name);                    \
      ::abp::chaos::hit(abp_chaos_pid_);                       \
    }                                                          \
  } while (0)
#else
#define CHAOS_POINT(name) \
  do {                    \
  } while (0)
#endif
