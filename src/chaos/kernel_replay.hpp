#pragma once

// Bridge between the simulated kernel adversaries (src/sim) and the chaos
// engine: capture the schedule a sim::Kernel would produce — which procs
// run in which round — and replay it against the real std::thread runtime
// via KernelReplayPolicy. Header-only so abp_chaos itself does not link
// abp_sim; include this from tests that use both.

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "chaos/policy.hpp"
#include "sim/kernel.hpp"

namespace abp::chaos {

// Runs `kernel` for `rounds` rounds with an empty process view (the view
// only matters to adaptive kernels, which see every process as idle — the
// conservative reading, since the chaos engine cannot expose real runtime
// state at schedule-capture time).
inline std::vector<std::vector<std::uint32_t>> capture_kernel_schedule(
    sim::Kernel& kernel, std::size_t rounds) {
  std::vector<sim::ProcessView> view(kernel.num_processes());
  std::vector<std::vector<std::uint32_t>> out;
  out.reserve(rounds);
  for (std::size_t r = 1; r <= rounds; ++r) {
    std::vector<std::uint32_t> procs;
    for (sim::ProcId p : kernel.schedule(r, view)) procs.push_back(p);
    out.push_back(std::move(procs));
  }
  return out;
}

inline std::shared_ptr<KernelReplayPolicy> make_kernel_replay(
    sim::Kernel& kernel, std::size_t rounds, std::uint64_t hits_per_round,
    std::uint32_t yields_when_descheduled = 4) {
  return std::make_shared<KernelReplayPolicy>(
      capture_kernel_schedule(kernel, rounds), kernel.num_processes(),
      hits_per_round, yields_when_descheduled);
}

}  // namespace abp::chaos
