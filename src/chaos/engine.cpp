#include "chaos/chaos.hpp"
// atomics-lint: allow(the chaos engine's arm/hit counters are instrumentation, not modeled algorithm state)

#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>

#include "support/assert.hpp"
#include "support/backoff.hpp"
#include "support/sync.hpp"

namespace abp::chaos {

namespace {

// ---- point registry --------------------------------------------------------
// Append-only table of interned names. Sites intern once through a
// function-local static, so the mutex is off the per-hit path.

struct Registry {
  sync::Mutex mu;
  // names[0..count) is written under mu but read lock-free: the release
  // store of count publishes each appended name, so no guarded_by here.
  const char* names[kMaxPoints] = {};
  std::atomic<std::size_t> count{0};
};

Registry& registry() {
  static Registry r;
  return r;
}

// ---- installed scope -------------------------------------------------------

struct Global {
  std::atomic<bool> armed{false};
  // Bumped on every install/uninstall; thread-local engines detect staleness
  // by comparing generations and rebind (or go quiet) lazily.
  std::atomic<std::uint64_t> generation{0};
  sync::Mutex mu;  // serializes install/uninstall against binding threads
  std::shared_ptr<Policy> policy ABP_GUARDED_BY(mu);
  std::uint64_t seed ABP_GUARDED_BY(mu) = 0;
  std::uint64_t next_ordinal ABP_GUARDED_BY(mu) = 0;
  std::atomic<std::uint64_t> hits[kMaxPoints] = {};
  std::atomic<std::uint64_t> injections[kMaxPoints] = {};
};

Global& global() {
  static Global g;
  return g;
}

// ---- per-thread engine -----------------------------------------------------

struct ThreadEngine {
  std::uint64_t generation = 0;  // matches Global::generation when bound
  std::shared_ptr<Policy> policy;
  std::uint64_t ordinal = 0;
  std::uint64_t hit_index = 0;
  Xoshiro256 rng;
};

thread_local ThreadEngine tls_engine;

void act(PointId id, const Decision& d) {
  switch (d.action) {
    case Action::kNone:
      break;
    case Action::kYield:
      for (std::uint32_t i = 0; i < d.repeat; ++i) std::this_thread::yield();
      break;
    case Action::kSpin:
      for (std::uint32_t i = 0; i < d.repeat; ++i) cpu_relax();
      break;
    case Action::kSleep:
      std::this_thread::sleep_for(std::chrono::microseconds(d.repeat));
      break;
    case Action::kKill:
      // Propagates to the site that crossed the point; only kill-safe
      // sites (see chaos.hpp) may be targeted by killing policies.
      throw WorkerKilledError{id};
  }
}

}  // namespace

bool armed() noexcept { return global().armed.load(std::memory_order_relaxed); }

PointId intern_point(const char* name) noexcept {
  Registry& r = registry();
  sync::MutexLock lock(r.mu);
  const std::size_t n = r.count.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < n; ++i)
    if (std::strcmp(r.names[i], name) == 0) return static_cast<PointId>(i);
  ABP_ASSERT_MSG(n < kMaxPoints, "chaos point table full");
  r.names[n] = name;
  r.count.store(n + 1, std::memory_order_release);
  return static_cast<PointId>(n);
}

const char* point_name(PointId id) noexcept {
  Registry& r = registry();
  if (id >= r.count.load(std::memory_order_acquire)) return "?";
  return r.names[id];
}

PointId find_point(const char* name) noexcept {
  Registry& r = registry();
  const std::size_t n = r.count.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < n; ++i)
    if (std::strcmp(r.names[i], name) == 0) return static_cast<PointId>(i);
  return kInvalidPoint;
}

void hit(PointId id) {
  Global& g = global();
  const std::uint64_t gen = g.generation.load(std::memory_order_acquire);
  ThreadEngine& e = tls_engine;
  if (e.generation != gen) {
    // First hit under this scope (or a stale binding): (re)bind.
    sync::MutexLock lock(g.mu);
    e.generation = g.generation.load(std::memory_order_relaxed);
    e.policy = g.policy;
    e.hit_index = 0;
    if (e.policy != nullptr) {
      e.ordinal = g.next_ordinal++;
      // Decorrelate per-thread streams: splitmix the (seed, ordinal) pair.
      e.rng.reseed(SplitMix64(g.seed + 0x9e3779b97f4a7c15ULL * (e.ordinal + 1))
                       .next());
    }
  }
  if (e.policy == nullptr) return;
  g.hits[id].fetch_add(1, std::memory_order_relaxed);
  const Decision d = e.policy->decide(id, e.ordinal, e.hit_index++, e.rng);
  if (d.action == Action::kNone) return;
  g.injections[id].fetch_add(1, std::memory_order_relaxed);
  act(id, d);
}

std::vector<PointSnapshot> snapshot_points() {
  Registry& r = registry();
  Global& g = global();
  const std::size_t n = r.count.load(std::memory_order_acquire);
  std::vector<PointSnapshot> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    out.push_back({r.names[i], static_cast<PointId>(i),
                   g.hits[i].load(std::memory_order_relaxed),
                   g.injections[i].load(std::memory_order_relaxed)});
  return out;
}

std::uint64_t injections_at(const char* name) {
  const PointId id = find_point(name);
  if (id == kInvalidPoint) return 0;
  return global().injections[id].load(std::memory_order_relaxed);
}

std::uint64_t hits_at(const char* name) {
  const PointId id = find_point(name);
  if (id == kInvalidPoint) return 0;
  return global().hits[id].load(std::memory_order_relaxed);
}

ChaosScope::ChaosScope(std::shared_ptr<Policy> policy, std::uint64_t seed) {
  Global& g = global();
  sync::MutexLock lock(g.mu);
  ABP_ASSERT_MSG(g.policy == nullptr, "nested ChaosScope");
  g.policy = std::move(policy);
  g.seed = seed;
  g.next_ordinal = 0;
  for (std::size_t i = 0; i < kMaxPoints; ++i) {
    g.hits[i].store(0, std::memory_order_relaxed);
    g.injections[i].store(0, std::memory_order_relaxed);
  }
  g.generation.fetch_add(1, std::memory_order_release);
  g.armed.store(true, std::memory_order_release);
}

ChaosScope::~ChaosScope() {
  Global& g = global();
  sync::MutexLock lock(g.mu);
  g.armed.store(false, std::memory_order_release);
  g.policy = nullptr;
  g.generation.fetch_add(1, std::memory_order_release);
}

}  // namespace abp::chaos
