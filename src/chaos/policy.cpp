#include "chaos/policy.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace abp::chaos {

KernelReplayPolicy::KernelReplayPolicy(
    std::vector<std::vector<std::uint32_t>> rounds, std::size_t num_procs,
    std::uint64_t hits_per_round, std::uint32_t yields_when_descheduled)
    : rounds_(std::move(rounds)),
      num_procs_(num_procs),
      hits_per_round_(hits_per_round),
      yields_(yields_when_descheduled) {
  ABP_ASSERT(!rounds_.empty());
  ABP_ASSERT(num_procs_ > 0);
  ABP_ASSERT(hits_per_round_ > 0);
  name_ = "kernel-replay(" + std::to_string(rounds_.size()) + " rounds, p=" +
          std::to_string(num_procs_) + ", " +
          std::to_string(hits_per_round_) + " hits/round)";
}

Decision KernelReplayPolicy::decide(PointId, std::uint64_t thread_ordinal,
                                    std::uint64_t, Xoshiro256&) {
  // Every hit — scheduled or not — advances global time, so a schedule
  // that deschedules everybody still terminates.
  const std::uint64_t step = step_.fetch_add(1, std::memory_order_relaxed);
  const std::size_t round =
      static_cast<std::size_t>((step / hits_per_round_) % rounds_.size());
  const std::uint32_t proc =
      static_cast<std::uint32_t>(thread_ordinal % num_procs_);
  const std::vector<std::uint32_t>& scheduled = rounds_[round];
  if (std::find(scheduled.begin(), scheduled.end(), proc) != scheduled.end())
    return {};
  return {Action::kYield, yields_};
}

}  // namespace abp::chaos
