#pragma once
// atomics-lint: allow(fiber lifecycle flags; synchronization proven by the scheduler join protocol, not the deque model)

// User-level threads ("threads" in the paper's vocabulary; "fibers" here to
// avoid clashing with std::thread). This layer realizes the paper's actual
// programming model, where the runtime/ layer provides only structured
// fork-join:
//
//   * a fiber is a stackful user-level thread multiplexed onto the pool of
//     processes (OS threads) by the work-stealing scheduler;
//   * spawn  — the spawning fiber continues and the child is pushed onto
//     the deque (or vice versa), the Spawn case of §3.1;
//   * die    — a fiber returning from its entry function; its worker pops a
//     new assigned fiber from the bottom of its deque;
//   * block  — a fiber waiting on a semaphore with value 0, or joining an
//     unfinished fiber; its worker pops a new assigned fiber;
//   * enable — a V operation or a death that readies a blocked fiber; of
//     the two ready fibers the worker keeps one assigned and pushes the
//     other (§3.1's Enable case; on a simultaneous enable-and-die the
//     enabled fiber becomes the assigned fiber directly).
//
// Semaphores are Dijkstra P/V, the synchronization primitive the paper uses
// for its Figure 1 example (edge v4 -> v8, initial value 0).
//
// Contexts are POSIX ucontext; fibers may migrate across OS threads between
// suspensions (they carry their own stacks and must not cache thread-local
// state across blocking points — the same contract Hood imposed).

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <ucontext.h>
#include <vector>

#include "runtime/options.hpp"
#include "runtime/stats.hpp"
#include "support/sync.hpp"

namespace abp::fiber {

class FiberScheduler;
class Semaphore;

namespace detail {

// Test-and-set spinlock guarding semaphore wait lists and fiber join
// state. These are user-level synchronization objects (dag edges), not the
// scheduler's own data structures — the deques stay non-blocking. The
// annotated sync::SpinLock makes each one a capability the thread-safety
// analysis tracks across the block/enable protocol.
using SpinLock = sync::SpinLock;

}  // namespace detail

class Fiber {
 public:
  enum class State : std::uint8_t { kReady, kRunning, kBlocked, kDone };

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  bool done() const noexcept {
    return state_.load(std::memory_order_acquire) == State::kDone;
  }

 private:
  friend class FiberScheduler;
  friend class Semaphore;

  Fiber(std::function<void()> fn, std::size_t stack_bytes);

  std::function<void()> fn_;
  std::unique_ptr<char[]> stack_;
  ucontext_t ctx_{};
  std::atomic<State> state_{State::kReady};
  detail::SpinLock lock_;  // guards joiner_ / done transition
  // Fiber blocked joining us (at most one).
  Fiber* joiner_ ABP_GUARDED_BY(lock_) = nullptr;
};

// Counting semaphore with P (wait) and V (signal), as in [Dijkstra 68].
class Semaphore {
 public:
  explicit Semaphore(long initial = 0) : count_(initial) {}
  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  // P: decrement; blocks the calling fiber while the count is zero.
  void p();
  // V: increment; enables one waiting fiber if any. Callable from fibers.
  void v();

 private:
  detail::SpinLock lock_;
  long count_ ABP_GUARDED_BY(lock_);
  std::vector<Fiber*> waiters_ ABP_GUARDED_BY(lock_);
};

// One-shot broadcast event: fibers wait() until some fiber set()s it; a
// set() enables every current waiter and lets all future waiters through.
class Event {
 public:
  Event() = default;
  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;

  void wait();     // block until set (no-op when already set)
  void set();      // enable all waiters; callable from fibers only
  bool is_set() const noexcept {
    return set_.load(std::memory_order_acquire);
  }

 private:
  detail::SpinLock lock_;
  std::atomic<bool> set_{false};  // lock-free fast-path read; set under lock_
  std::vector<Fiber*> waiters_ ABP_GUARDED_BY(lock_);
};

// Reusable barrier for a fixed number of fibers: the last arriver of each
// generation enables all the others.
class FiberBarrier {
 public:
  explicit FiberBarrier(std::size_t parties) : parties_(parties) {}
  FiberBarrier(const FiberBarrier&) = delete;
  FiberBarrier& operator=(const FiberBarrier&) = delete;

  void arrive_and_wait();

 private:
  detail::SpinLock lock_;
  std::size_t parties_;
  std::size_t arrived_ ABP_GUARDED_BY(lock_) = 0;
  std::vector<Fiber*> waiters_ ABP_GUARDED_BY(lock_);
};

class FiberScheduler {
 public:
  explicit FiberScheduler(runtime::SchedulerOptions opts = {});
  ~FiberScheduler();

  FiberScheduler(const FiberScheduler&) = delete;
  FiberScheduler& operator=(const FiberScheduler&) = delete;

  // Runs `root` as the root fiber to completion; blocks the caller. The
  // root must join every fiber it (transitively) spawned.
  void run(std::function<void()> root);

  runtime::WorkerStats total_stats() const;

  // --- callable from inside fibers only ----------------------------------
  // Spawns a child fiber; the parent keeps running and the child is pushed
  // onto the current worker's deque. The returned pointer stays valid until
  // the scheduler's run() returns.
  static Fiber* spawn(std::function<void()> fn);
  // Blocks until `f` has died.
  static void join(Fiber* f);
  // True while running on a fiber.
  static bool on_fiber() noexcept;

  std::size_t default_stack_bytes = 256 * 1024;

  struct WorkerCtx;  // implementation detail (public for TU-local access)

 private:
  friend class Semaphore;
  friend class Event;
  friend class FiberBarrier;

  void worker_loop(std::size_t id);
  Fiber* allocate(std::function<void()> fn);
  void make_ready(Fiber* f);  // enable: push onto current deque
  // Swap out the running fiber. From the caller's perspective this
  // *releases* to_unlock: the worker performs the actual unlock after the
  // context switch completes (see worker_loop), and by the time
  // block_current returns — on resumption — the lock is long gone.
  static void block_current(detail::SpinLock* to_unlock)
      ABP_RELEASE(to_unlock);
  static void trampoline_lo(unsigned hi, unsigned lo);

  runtime::SchedulerOptions opts_;
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace abp::fiber
