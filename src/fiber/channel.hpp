#pragma once

// Bounded typed channel for fibers: multi-producer, multi-consumer, built
// from two counting semaphores (free slots / available items, the classic
// Dijkstra construction) and a spinlock-protected ring buffer. A fiber
// blocked in send()/receive() simply frees its worker to run other fibers
// (the Block case of §3.1).

#include <utility>
#include <vector>

#include "fiber/fiber.hpp"
#include "support/assert.hpp"

namespace abp::fiber {

template <typename T>
class Channel {
 public:
  explicit Channel(std::size_t capacity)
      : slots_(static_cast<long>(capacity)),
        items_(0),
        buf_(capacity),
        cap_(capacity) {
    ABP_ASSERT(capacity >= 1);
  }

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  // Blocks while the channel is full.
  void send(T value) {
    slots_.p();
    {
      sync::SpinLockHolder hold(lock_);
      buf_[head_ % buf_.size()] = std::move(value);
      ++head_;
    }
    items_.v();
  }

  // Blocks while the channel is empty.
  T receive() {
    items_.p();
    T value = take_();
    slots_.v();
    return value;
  }

  std::size_t capacity() const noexcept { return cap_; }

 private:
  T take_() {
    sync::SpinLockHolder hold(lock_);
    T value = std::move(buf_[tail_ % buf_.size()]);
    ++tail_;
    return value;
  }

  Semaphore slots_;
  Semaphore items_;
  detail::SpinLock lock_;
  std::vector<T> buf_ ABP_GUARDED_BY(lock_);
  std::size_t head_ ABP_GUARDED_BY(lock_) = 0;
  std::size_t tail_ ABP_GUARDED_BY(lock_) = 0;
  const std::size_t cap_;  // == buf_.size(); readable without the lock
};

}  // namespace abp::fiber
