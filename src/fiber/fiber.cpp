#include "fiber/fiber.hpp"
// atomics-lint: allow(fiber lifecycle flags; synchronization proven by the scheduler join protocol, not the deque model)

#include <thread>

#include "runtime/poly_deque.hpp"
#include "support/assert.hpp"
#include "support/rng.hpp"

namespace abp::fiber {

// ---------------------------------------------------------------------------
// Worker-side thread-local context.

struct FiberScheduler::WorkerCtx {
  FiberScheduler* sched = nullptr;
  std::size_t id = 0;
  ucontext_t sched_ctx{};
  Fiber* current = nullptr;        // fiber running on this worker
  Fiber* next_assigned = nullptr;  // enable-and-die direct hand-off
  detail::SpinLock* pending_unlock = nullptr;  // released after swap-out
  runtime::PolyDeque<Fiber*>* deque = nullptr;
  runtime::WorkerStats* stats = nullptr;
  Xoshiro256 rng{0};
};

namespace {
thread_local FiberScheduler::WorkerCtx* tls_worker = nullptr;
}  // namespace

struct FiberScheduler::Impl {
  std::vector<std::unique_ptr<runtime::PolyDeque<Fiber*>>> deques;
  std::vector<runtime::PaddedWorkerStats> stats;
  std::atomic<bool> done{true};
  std::atomic<Fiber*> unclaimed_root{nullptr};
  Fiber* root = nullptr;

  sync::Mutex registry_mu;
  std::vector<std::unique_ptr<Fiber>> registry ABP_GUARDED_BY(registry_mu);
};

namespace {

// The worker releases a blocked fiber's hand-off lock *after* the context
// switch back to the scheduler completes (block_current carries the
// matching ABP_RELEASE): the capability travels with the fiber, not the
// stack frame, so the analysis is silenced at this one dynamic site.
void release_handoff(detail::SpinLock* l) ABP_NO_THREAD_SAFETY_ANALYSIS {
  l->unlock();
}

}  // namespace

// ---------------------------------------------------------------------------
// Fiber

Fiber::Fiber(std::function<void()> fn, std::size_t stack_bytes)
    : fn_(std::move(fn)), stack_(std::make_unique<char[]>(stack_bytes)) {}

// ---------------------------------------------------------------------------
// Semaphore

void Semaphore::p() {
  ABP_ASSERT_MSG(FiberScheduler::on_fiber(),
                 "Semaphore::p must be called from a fiber");
  lock_.lock();
  if (count_ > 0) {
    --count_;
    lock_.unlock();
    return;
  }
  // Block: enqueue ourselves, then swap out. The lock is released by our
  // worker *after* the context switch completes, so a V cannot resume us
  // before our stack is fully parked.
  waiters_.push_back(tls_worker->current);
  FiberScheduler::block_current(&lock_);
}

void Semaphore::v() {
  ABP_ASSERT_MSG(FiberScheduler::on_fiber(),
                 "Semaphore::v must be called from a fiber");
  lock_.lock();
  if (waiters_.empty()) {
    ++count_;
    lock_.unlock();
    return;
  }
  Fiber* enabled = waiters_.back();
  waiters_.pop_back();
  lock_.unlock();
  // Enable (§3.1): of the two ready fibers, keep running this one and push
  // the newly enabled one onto our deque.
  tls_worker->sched->make_ready(enabled);
}

// ---------------------------------------------------------------------------
// Event

void Event::wait() {
  ABP_ASSERT_MSG(FiberScheduler::on_fiber(),
                 "Event::wait must be called from a fiber");
  if (set_.load(std::memory_order_acquire)) return;
  lock_.lock();
  if (set_.load(std::memory_order_acquire)) {
    lock_.unlock();
    return;
  }
  waiters_.push_back(tls_worker->current);
  FiberScheduler::block_current(&lock_);
}

void Event::set() {
  ABP_ASSERT_MSG(FiberScheduler::on_fiber(),
                 "Event::set must be called from a fiber");
  lock_.lock();
  set_.store(true, std::memory_order_release);
  std::vector<Fiber*> woken;
  woken.swap(waiters_);
  lock_.unlock();
  for (Fiber* f : woken) tls_worker->sched->make_ready(f);
}

// ---------------------------------------------------------------------------
// FiberBarrier

void FiberBarrier::arrive_and_wait() {
  ABP_ASSERT_MSG(FiberScheduler::on_fiber(),
                 "FiberBarrier::arrive_and_wait must be called from a fiber");
  lock_.lock();
  if (++arrived_ == parties_) {
    // Last arriver: reset the generation and enable everyone else.
    arrived_ = 0;
    std::vector<Fiber*> woken;
    woken.swap(waiters_);
    lock_.unlock();
    for (Fiber* f : woken) tls_worker->sched->make_ready(f);
    return;
  }
  waiters_.push_back(tls_worker->current);
  FiberScheduler::block_current(&lock_);
}

// ---------------------------------------------------------------------------
// FiberScheduler

FiberScheduler::FiberScheduler(runtime::SchedulerOptions opts)
    : opts_(opts), impl_(std::make_unique<Impl>()) {
  if (opts_.num_workers == 0) {
    opts_.num_workers = std::thread::hardware_concurrency();
    if (opts_.num_workers == 0) opts_.num_workers = 1;
  }
  impl_->deques.reserve(opts_.num_workers);
  for (std::size_t i = 0; i < opts_.num_workers; ++i)
    impl_->deques.push_back(std::make_unique<runtime::PolyDeque<Fiber*>>(
        opts_.deque, opts_.deque_capacity));
  impl_->stats.resize(opts_.num_workers);
}

FiberScheduler::~FiberScheduler() = default;

bool FiberScheduler::on_fiber() noexcept {
  return tls_worker != nullptr && tls_worker->current != nullptr;
}

Fiber* FiberScheduler::allocate(std::function<void()> fn) {
  auto owned =
      std::unique_ptr<Fiber>(new Fiber(std::move(fn), default_stack_bytes));
  Fiber* f = owned.get();
  getcontext(&f->ctx_);
  f->ctx_.uc_stack.ss_sp = f->stack_.get();
  f->ctx_.uc_stack.ss_size = default_stack_bytes;
  f->ctx_.uc_link = nullptr;
  const auto addr = reinterpret_cast<std::uintptr_t>(f);
  makecontext(&f->ctx_, reinterpret_cast<void (*)()>(&trampoline_lo), 2,
              static_cast<unsigned>(addr >> 32),
              static_cast<unsigned>(addr & 0xffffffffu));
  sync::MutexLock lock(impl_->registry_mu);
  impl_->registry.push_back(std::move(owned));
  return f;
}

Fiber* FiberScheduler::spawn(std::function<void()> fn) {
  ABP_ASSERT_MSG(on_fiber(), "spawn must be called from a fiber");
  WorkerCtx* w = tls_worker;
  Fiber* child = w->sched->allocate(std::move(fn));
  // Spawn (§3.1): the parent keeps running; the child is pushed onto the
  // bottom of this worker's deque (parent-first order — the paper's bounds
  // hold for either choice).
  w->deque->push_bottom(child);
  ++w->stats->spawns;
  return child;
}

void FiberScheduler::join(Fiber* f) {
  ABP_ASSERT_MSG(on_fiber(), "join must be called from a fiber");
  ABP_ASSERT(f != nullptr && f != tls_worker->current);
  f->lock_.lock();
  if (f->state_.load(std::memory_order_acquire) == Fiber::State::kDone) {
    f->lock_.unlock();
    return;
  }
  ABP_ASSERT_MSG(f->joiner_ == nullptr, "a fiber supports a single joiner");
  f->joiner_ = tls_worker->current;
  block_current(&f->lock_);
}

void FiberScheduler::make_ready(Fiber* f) {
  ABP_ASSERT(tls_worker != nullptr);
  f->state_.store(Fiber::State::kReady, std::memory_order_release);
  tls_worker->deque->push_bottom(f);
}

void FiberScheduler::block_current(detail::SpinLock* to_unlock) {
  WorkerCtx* w = tls_worker;  // valid only until the swap below
  Fiber* self = w->current;
  self->state_.store(Fiber::State::kBlocked, std::memory_order_release);
  w->pending_unlock = to_unlock;
  swapcontext(&self->ctx_, &w->sched_ctx);
  // Resumed — possibly on a different OS thread; do not touch `w`.
}

void FiberScheduler::trampoline_lo(unsigned hi, unsigned lo) {
  auto* f = reinterpret_cast<Fiber*>(
      (static_cast<std::uintptr_t>(hi) << 32) | lo);
  f->fn_();

  // Die (§3.1). Under the fiber lock, publish kDone and collect a joiner;
  // the lock ensures any joiner is fully parked before we read joiner_.
  f->lock_.lock();
  f->state_.store(Fiber::State::kDone, std::memory_order_release);
  Fiber* joiner = f->joiner_;
  f->lock_.unlock();

  WorkerCtx* w = tls_worker;
  if (joiner != nullptr) {
    // Enable-and-die: the enabled fiber becomes the worker's next assigned
    // fiber directly (§3.1's simultaneous case).
    joiner->state_.store(Fiber::State::kReady, std::memory_order_release);
    w->next_assigned = joiner;
  }
  if (f == w->sched->impl_->root)
    w->sched->impl_->done.store(true, std::memory_order_release);
  swapcontext(&f->ctx_, &w->sched_ctx);
  ABP_ASSERT_MSG(false, "dead fiber resumed");
}

void FiberScheduler::worker_loop(std::size_t id) {
  Impl& impl = *impl_;
  WorkerCtx ctx;
  ctx.sched = this;
  ctx.id = id;
  ctx.deque = impl.deques[id].get();
  ctx.stats = &impl.stats[id].value;
  ctx.rng.reseed(opts_.seed * 0x9e3779b97f4a7c15ULL + id + 1);
  tls_worker = &ctx;

  Fiber* assigned = impl.unclaimed_root.exchange(nullptr,
                                                 std::memory_order_acq_rel);
  while (!impl.done.load(std::memory_order_acquire)) {
    if (assigned == nullptr) {
      // Thief: yield, then one steal attempt at a random victim.
      switch (opts_.yield) {
        case runtime::YieldPolicy::kNone:
          break;
        case runtime::YieldPolicy::kYield:
          ++ctx.stats->yields;
          std::this_thread::yield();
          break;
        case runtime::YieldPolicy::kSleep:
          ++ctx.stats->yields;
          std::this_thread::sleep_for(
              std::chrono::microseconds(opts_.sleep_us));
          break;
      }
      ++ctx.stats->steal_attempts;
      const auto victim =
          static_cast<std::size_t>(ctx.rng.below(opts_.num_workers));
      if (victim != id) {
        if (auto stolen = impl.deques[victim]->pop_top()) {
          ++ctx.stats->steals;
          assigned = *stolen;
        }
      }
      continue;
    }

    // Resume the assigned fiber until it dies or blocks.
    ctx.current = assigned;
    assigned->state_.store(Fiber::State::kRunning,
                           std::memory_order_release);
    ++ctx.stats->jobs_executed;
    swapcontext(&ctx.sched_ctx, &assigned->ctx_);
    ctx.current = nullptr;
    if (ctx.pending_unlock != nullptr) {
      release_handoff(ctx.pending_unlock);
      ctx.pending_unlock = nullptr;
    }

    assigned = ctx.next_assigned;  // enable-and-die hand-off
    ctx.next_assigned = nullptr;
    if (assigned == nullptr) {
      if (auto popped = ctx.deque->pop_bottom()) {
        ++ctx.stats->pop_bottom_hits;
        assigned = *popped;
      }
    }
  }
  tls_worker = nullptr;
}

void FiberScheduler::run(std::function<void()> root) {
  Impl& impl = *impl_;
  ABP_ASSERT_MSG(impl.done.load(std::memory_order_acquire),
                 "FiberScheduler::run is not reentrant");
  impl.root = allocate(std::move(root));
  impl.done.store(false, std::memory_order_release);
  impl.unclaimed_root.store(impl.root, std::memory_order_release);

  std::vector<std::thread> threads;
  threads.reserve(opts_.num_workers);
  for (std::size_t i = 0; i < opts_.num_workers; ++i)
    threads.emplace_back([this, i] { worker_loop(i); });
  for (auto& t : threads) t.join();

  ABP_ASSERT(impl.root->done());
  impl.root = nullptr;
  sync::MutexLock lock(impl.registry_mu);
  impl.registry.clear();
}

runtime::WorkerStats FiberScheduler::total_stats() const {
  runtime::WorkerStats total;
  for (const auto& s : impl_->stats) total += s.value;
  return total;
}

}  // namespace abp::fiber
