#pragma once

// Exporters: Chrome-trace JSON (loadable in chrome://tracing / Perfetto)
// and compact single-line stats JSON, plus the small JSON utilities the
// tests use to parse exported documents back.

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/trace_ring.hpp"

namespace abp::obs {

// Escapes `s` for inclusion inside a JSON string literal (quotes not
// included).
std::string json_escape(std::string_view s);

// Minimal strict JSON syntax checker (RFC 8259 grammar, no limits). Used by
// tests to prove exported documents are well-formed without an external
// dependency. Returns true on success; on failure `err` (if non-null) gets
// a message with the byte offset.
bool json_validate(std::string_view text, std::string* err = nullptr);

// Single-line JSON object writer: add() in order, str() to finish.
class JsonObjectWriter {
 public:
  void add(std::string_view key, std::uint64_t v);
  void add(std::string_view key, std::int64_t v);
  void add(std::string_view key, double v);
  void add(std::string_view key, std::string_view v);  // quoted + escaped
  // Without this overload a string literal resolves to add(bool) — the
  // pointer->bool standard conversion outranks the user-defined conversion
  // to string_view, so add("git_sha", "abc") would emit "git_sha":true.
  void add(std::string_view key, const char* v) {
    add(key, std::string_view(v));
  }
  void add_raw(std::string_view key, std::string_view raw);  // pre-rendered
  void add(std::string_view key, bool v);

  bool empty() const noexcept { return body_.empty(); }
  std::string str() const;  // "{...}" on one line

 private:
  void key(std::string_view k);
  std::string body_;
};

// Renders "count/mean/min/max/p50/p95/p99" for one histogram as a JSON
// object. `scale` multiplies every value (e.g. ns_per_tick to convert TSC
// ticks to nanoseconds); pass 1.0 for dimensionless quantities.
std::string histogram_summary_json(const LatencyHistogram& h,
                                   double scale = 1.0);

// Prometheus text exposition format (version 0.0.4). gauge()/counter()
// emit one sample with a # TYPE header the first time a metric name is
// seen; histogram() renders a LatencyHistogram as the standard cumulative
// le-bucket family (name_bucket/name_sum/name_count), with `scale`
// converting the raw samples (e.g. ns_per_tick for TSC ticks). Metric
// names are sanitized to the Prometheus charset; labels, when given, are
// the raw inside of the braces, e.g. `worker="3"`.
class PrometheusWriter {
 public:
  void gauge(std::string_view name, double v, std::string_view labels = {});
  void counter(std::string_view name, double v, std::string_view labels = {});
  void histogram(std::string_view name, const LatencyHistogram& h,
                 double scale = 1.0, std::string_view labels = {});

  bool empty() const noexcept { return body_.empty(); }
  std::string str() const { return body_; }

 private:
  void type_line(std::string_view name, const char* type);
  void sample(std::string_view name, std::string_view suffix,
              std::string_view labels, double v);

  std::string body_;
  std::vector<std::string> typed_;  // names with an emitted # TYPE line
};

// Sanitizes a metric name to the Prometheus charset
// ([a-zA-Z_:][a-zA-Z0-9_:]*): invalid characters become '_'.
std::string prometheus_sanitize(std::string_view name);

// Minimal checker for the text exposition format: every non-comment line
// must be `name{labels} value`, names in the legal charset, label values
// quoted, the value a float ('+Inf'/'NaN' allowed). Returns true on
// success; on failure `err` (if non-null) names the offending line.
bool prometheus_validate(std::string_view text, std::string* err = nullptr);

// Chrome trace event format ("JSON Object Format": {"traceEvents":[...]}).
// Timestamps and durations are in microseconds, as the format requires.
class ChromeTraceBuilder {
 public:
  // Complete event (ph:"X"): a span on row `tid` of process `pid`.
  void complete(int pid, int tid, std::string_view name, double ts_us,
                double dur_us, std::string_view args_json = {});
  // Instant event (ph:"i", thread scope).
  void instant(int pid, int tid, std::string_view name, double ts_us,
               std::string_view args_json = {});
  // Counter event (ph:"C"); `series_json` is the args object, e.g.
  // {"p_i":4}. Chrome plots one stacked chart per (pid, name).
  void counter(int pid, std::string_view name, double ts_us,
               std::string_view series_json);
  // Metadata: names the process / thread rows in the viewer.
  void process_name(int pid, std::string_view name);
  void thread_name(int pid, int tid, std::string_view name);

  std::size_t num_events() const noexcept { return events_.size(); }
  std::string build() const;  // the complete JSON document

 private:
  std::vector<std::string> events_;
};

// Converts quiesced worker-ring snapshots (snapshots[w] = worker w's events,
// oldest first) into a Chrome trace filed under process `pid`:
// kJobBegin/kJobEnd pairs become "job" spans on row tid=w, steal / spawn /
// yield events become instants on the same row.
void append_snapshots_to_trace(
    ChromeTraceBuilder& out,
    const std::vector<std::vector<TraceEvent>>& snapshots,
    const TscCalibration& cal, int pid);

}  // namespace abp::obs
