#pragma once

// Causal spans: the measured work/span profile and steal provenance of an
// actual execution (DESIGN.md §13).
//
// The paper's bound O(T1/PA + Tinf·P/PA) is stated over the *computation's*
// work T1 and span Tinf; the runtime measures both online. Every task
// carries a path value — the length, in task cycles, of the longest
// spawn/join/steal chain from the root to the task's start — propagated at
// spawn, folded with an atomic max at joins, and carried across steals by
// the stolen job itself. The root job's end path is the measured span; the
// summed task *self* cycles are the measured work. Realized parallelism is
// their ratio.
//
// Steal provenance is the per-thief record of who stole how much from
// whom; with a locality-domain size configured, steals are additionally
// classified local vs. cross-domain (the counter family the NUMA roadmap
// item reports through).

#include <cstdint>
#include <vector>

namespace abp::obs {

// Measured work/span profile of one run, in TSC ticks (convert with
// TscCalibration at export time).
struct SpanProfile {
  std::uint64_t t1_ticks = 0;    // summed task self cycles (measured T1)
  std::uint64_t tinf_ticks = 0;  // root's end path (measured Tinf)
  std::uint64_t tasks = 0;       // jobs executed

  // Realized parallelism T1/Tinf; 0 when nothing was measured.
  double parallelism() const noexcept {
    return tinf_ticks > 0
               ? static_cast<double>(t1_ticks) /
                     static_cast<double>(tinf_ticks)
               : 0.0;
  }
};

// Per-thief steal provenance: counts by victim slot plus the items those
// steals delivered. Single-owner discipline (the thief is the only
// writer); read after quiesce, like WorkerStats.
struct StealProvenance {
  std::vector<std::uint64_t> steals_from;  // indexed by victim slot
  std::vector<std::uint64_t> items_from;   // items (batches count them all)

  void resize(std::size_t num_slots) {
    steals_from.assign(num_slots, 0);
    items_from.assign(num_slots, 0);
  }

  void record(std::size_t victim, std::uint64_t items) noexcept {
    if (victim < steals_from.size()) {
      ++steals_from[victim];
      items_from[victim] += items;
    }
  }

  void reset() noexcept {
    for (auto& v : steals_from) v = 0;
    for (auto& v : items_from) v = 0;
  }
};

// Locality-domain classification: workers i and j share a domain iff
// i/size == j/size. Size 0 (the default) means one global domain — every
// steal is local; benches model a NUMA topology by setting the size.
inline bool same_locality_domain(std::size_t a, std::size_t b,
                                 std::size_t domain_size) noexcept {
  if (domain_size == 0) return true;
  return a / domain_size == b / domain_size;
}

// Provenance IDs: allocated per spawn, worker id in the top 16 bits so ids
// are unique across workers without shared state.
inline std::uint64_t make_provenance_id(std::size_t worker,
                                        std::uint64_t seq) noexcept {
  return (static_cast<std::uint64_t>(worker) << 48) | (seq & ((1ull << 48) - 1));
}
inline std::size_t provenance_worker(std::uint64_t id) noexcept {
  return static_cast<std::size_t>(id >> 48);
}
inline std::uint64_t provenance_seq(std::uint64_t id) noexcept {
  return id & ((1ull << 48) - 1);
}

}  // namespace abp::obs
