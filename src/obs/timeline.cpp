#include "obs/timeline.hpp"

#include <algorithm>

#include "obs/export.hpp"

namespace abp::obs {

RoundSample& SimTimeline::at_round(std::uint64_t round) {
  // Rounds arrive in nondecreasing order from each writer; the common case
  // is "same as last" or "append".
  if (!samples_.empty() && samples_.back().round == round)
    return samples_.back();
  for (auto it = samples_.rbegin(); it != samples_.rend(); ++it)
    if (it->round == round) return *it;
  samples_.emplace_back();
  samples_.back().round = round;
  return samples_.back();
}

void SimTimeline::note_kernel_choice(std::uint64_t round, std::uint32_t p_i) {
  at_round(round).proposed = p_i;
}

void SimTimeline::end_round(std::uint64_t round, std::uint32_t scheduled,
                            std::uint32_t executed,
                            std::uint64_t cumulative_throws) {
  RoundSample& s = at_round(round);
  s.scheduled = scheduled;
  s.executed = executed;
  s.throws = cumulative_throws;
}

void SimTimeline::sample_potential(std::uint64_t round, double phi_log10) {
  at_round(round).phi_log10 = phi_log10;
}

std::string SimTimeline::chrome_trace_json(int pid) const {
  std::vector<const RoundSample*> ordered;
  ordered.reserve(samples_.size());
  for (const RoundSample& s : samples_) ordered.push_back(&s);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const RoundSample* a, const RoundSample* b) {
                     return a->round < b->round;
                   });

  ChromeTraceBuilder b;
  b.process_name(pid, "sim: " + name_);
  for (const RoundSample* s : ordered) {
    const double ts = static_cast<double>(s->round);  // 1 round = 1us
    {
      JsonObjectWriter args;
      args.add("p_i", static_cast<std::uint64_t>(s->proposed));
      b.counter(pid, "p_i", ts, args.str());
    }
    {
      JsonObjectWriter args;
      args.add("scheduled", static_cast<std::uint64_t>(s->scheduled));
      args.add("executed", static_cast<std::uint64_t>(s->executed));
      b.counter(pid, "progress", ts, args.str());
    }
    {
      JsonObjectWriter args;
      args.add("throws", s->throws);
      b.counter(pid, "throws", ts, args.str());
    }
    if (s->phi_log10 >= 0.0) {
      JsonObjectWriter args;
      args.add("log10(phi)", s->phi_log10);
      b.counter(pid, "potential", ts, args.str());
    }
  }
  return b.build();
}

std::string SimTimeline::stats_json() const {
  std::uint64_t max_round = 0, throws = 0, executed = 0, proposed_sum = 0,
                scheduled_sum = 0;
  double phi_first = -1.0, phi_last = -1.0;
  for (const RoundSample& s : samples_) {
    max_round = std::max(max_round, s.round);
    throws = std::max(throws, s.throws);
    executed += s.executed;
    proposed_sum += s.proposed;
    scheduled_sum += s.scheduled;
    if (s.phi_log10 >= 0.0) {
      if (phi_first < 0.0) phi_first = s.phi_log10;
      phi_last = s.phi_log10;
    }
  }
  JsonObjectWriter w;
  w.add("name", name_);
  w.add("rounds", max_round);
  w.add("samples", static_cast<std::uint64_t>(samples_.size()));
  w.add("executed_nodes", executed);
  w.add("throws", throws);
  const double n = samples_.empty() ? 1.0 : double(samples_.size());
  w.add("mean_p_i", static_cast<double>(proposed_sum) / n);
  w.add("mean_scheduled", static_cast<double>(scheduled_sum) / n);
  if (phi_first >= 0.0) {
    w.add("phi_log10_first", phi_first);
    w.add("phi_log10_last", phi_last);
  }
  return w.str();
}

}  // namespace abp::obs
