#pragma once

// Latency histograms and the metrics registry.
//
// LatencyHistogram buckets non-negative 64-bit samples by power of two
// (bucket i>=1 holds values v with bit_width(v)==i, i.e. [2^(i-1), 2^i);
// bucket 0 holds v==0), so record() is a bit_width + increment — cheap
// enough for per-steal and per-job instrumentation. Quantiles are
// reconstructed by linear interpolation inside the winning bucket, with
// the tracked exact min/max tightening the extreme buckets.
//
// The registry is a name -> histogram map used by the exporters; workers
// each own their histograms (no sharing) and are merged after quiesce.

#include <algorithm>
#include <bit>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace abp::obs {

class LatencyHistogram {
 public:
  // Buckets: index 0 for v==0, index i in [1,64] for bit_width(v)==i.
  static constexpr int kNumBuckets = 65;

  static int bucket_index(std::uint64_t v) noexcept {
    return v == 0 ? 0 : std::bit_width(v);
  }
  // Inclusive lower bound of bucket i.
  static std::uint64_t bucket_lower(int i) noexcept {
    return i <= 0 ? 0 : (i == 1 ? 1 : std::uint64_t{1} << (i - 1));
  }
  // Inclusive upper bound of bucket i.
  static std::uint64_t bucket_upper(int i) noexcept {
    if (i <= 0) return 0;
    if (i >= 64) return ~std::uint64_t{0};
    return (std::uint64_t{1} << i) - 1;
  }

  void record(std::uint64_t v) noexcept {
    ++buckets_[bucket_index(v)];
    ++count_;
    sum_ += v;
    if (count_ == 1) {
      min_ = max_ = v;
    } else {
      min_ = std::min(min_, v);
      max_ = std::max(max_, v);
    }
  }

  std::uint64_t count() const noexcept { return count_; }
  std::uint64_t sum() const noexcept { return sum_; }
  std::uint64_t min() const noexcept { return count_ ? min_ : 0; }
  std::uint64_t max() const noexcept { return count_ ? max_ : 0; }
  double mean() const noexcept {
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_)
                  : 0.0;
  }
  std::uint64_t bucket_count(int i) const noexcept {
    return (i >= 0 && i < kNumBuckets) ? buckets_[i] : 0;
  }

  // Quantile estimate for p in [0,100]. Exact for the bucket (the winning
  // sample's power-of-two range), linearly interpolated within it.
  double percentile(double p) const noexcept {
    if (count_ == 0) return 0.0;
    p = std::clamp(p, 0.0, 100.0);
    // Rank in [1, count]: the smallest k such that cum(k) covers p% of
    // the samples.
    const double target = p / 100.0 * static_cast<double>(count_);
    std::uint64_t cum = 0;
    for (int i = 0; i < kNumBuckets; ++i) {
      const std::uint64_t c = buckets_[i];
      if (c == 0) continue;
      if (static_cast<double>(cum + c) >= target) {
        // Interpolate within [lo, hi] by the fraction of the bucket's
        // samples below the target rank.
        double lo = static_cast<double>(bucket_lower(i));
        double hi = static_cast<double>(bucket_upper(i));
        lo = std::max(lo, static_cast<double>(min()));
        hi = std::min(hi, static_cast<double>(max()));
        if (hi <= lo) return lo;
        const double frac =
            (target - static_cast<double>(cum)) / static_cast<double>(c);
        return lo + frac * (hi - lo);
      }
      cum += c;
    }
    return static_cast<double>(max());
  }

  void merge(const LatencyHistogram& o) noexcept {
    if (o.count_ == 0) return;
    for (int i = 0; i < kNumBuckets; ++i) buckets_[i] += o.buckets_[i];
    if (count_ == 0) {
      min_ = o.min_;
      max_ = o.max_;
    } else {
      min_ = std::min(min_, o.min_);
      max_ = std::max(max_, o.max_);
    }
    count_ += o.count_;
    sum_ += o.sum_;
  }

  void reset() noexcept { *this = LatencyHistogram{}; }

 private:
  std::uint64_t buckets_[kNumBuckets] = {};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

// The per-worker latency metrics the runtime records (units: TSC ticks;
// convert with TscCalibration at export time).
struct WorkerTelemetry {
  LatencyHistogram steal_latency;        // per successful steal attempt
  LatencyHistogram job_run;              // per job execution (inclusive)
  LatencyHistogram time_to_first_steal;  // work_loop entry -> first steal
  // Summed task *self* cycles: job run time minus the nested jobs the
  // worker executed inline while waiting at a join. The sum across workers
  // is the measured work T1 of the span profile (obs/span.hpp).
  std::uint64_t exec_self_ticks = 0;

  void merge(const WorkerTelemetry& o) noexcept {
    steal_latency.merge(o.steal_latency);
    job_run.merge(o.job_run);
    time_to_first_steal.merge(o.time_to_first_steal);
    exec_self_ticks += o.exec_self_ticks;
  }
  void reset() noexcept {
    steal_latency.reset();
    job_run.reset();
    time_to_first_steal.reset();
    exec_self_ticks = 0;
  }
};

// The live metrics plane publishes WorkerTelemetry through a word-copying
// Seqlock; both histograms and the struct must stay trivially copyable.
static_assert(std::is_trivially_copyable_v<LatencyHistogram>);
static_assert(std::is_trivially_copyable_v<WorkerTelemetry>);

// Name -> histogram map for ad-hoc metrics and for handing a uniform view
// to the exporters.
class MetricsRegistry {
 public:
  LatencyHistogram& histogram(std::string_view name) {
    auto it = by_name_.find(name);
    if (it == by_name_.end())
      it = by_name_.emplace(std::string(name), LatencyHistogram{}).first;
    return it->second;
  }

  const LatencyHistogram* find(std::string_view name) const {
    auto it = by_name_.find(name);
    return it == by_name_.end() ? nullptr : &it->second;
  }

  struct Entry {
    std::string name;
    const LatencyHistogram* hist;
  };
  std::vector<Entry> entries() const {
    std::vector<Entry> out;
    out.reserve(by_name_.size());
    for (const auto& [name, hist] : by_name_) out.push_back({name, &hist});
    return out;
  }

  std::size_t size() const noexcept { return by_name_.size(); }

 private:
  std::map<std::string, LatencyHistogram, std::less<>> by_name_;
};

}  // namespace abp::obs
