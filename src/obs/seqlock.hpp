#pragma once

// Seqlock-style epoch-consistent snapshots (DESIGN.md §13).
//
// A single writer publishes a trivially-copyable record; any number of
// readers can take a consistent copy mid-run without blocking the writer
// and without quiescing it — the substrate of the live metrics plane. The
// classic protocol: the writer bumps a sequence number to odd, stores the
// payload, bumps to even; a reader retries whenever it observes an odd
// sequence or the sequence changed across its copy.
//
// The payload is stored as an array of relaxed std::atomic words (not a
// raw struct) so the torn intermediate states that the sequence check
// discards are mere stale values, never data races — the protocol is
// TSan-clean and every access order is explicit for the atomics lint.

#include <atomic>
#include <cstdint>
#include <cstring>
#include <type_traits>

#include "support/sync.hpp"

namespace abp::obs {

// The Seqlock is itself a capability (DESIGN.md §15): its writer section —
// the odd-sequence window between write_begin() and write_end() — is
// modeled as an acquire/release pair, so the analysis proves publish()
// never leaves the window open (a stuck-odd sequence would spin every
// reader forever) and future multi-step writers cannot interleave guarded
// state mutations outside the window. Readers never acquire anything: the
// retry loop, not a capability, is their consistency protocol.
template <typename T>
class ABP_CAPABILITY("seqlock_writer") Seqlock {
  static_assert(std::is_trivially_copyable_v<T>,
                "seqlock payloads are published by word-wise copy");

 public:
  Seqlock() noexcept {
    for (std::size_t i = 0; i < kWords; ++i)
      words_[i].store(0, std::memory_order_relaxed);
  }
  Seqlock(const Seqlock&) = delete;
  Seqlock& operator=(const Seqlock&) = delete;

  // Single writer only. Never blocks; two sequence bumps plus one
  // word-wise copy of the payload.
  void publish(const T& value) noexcept {
    std::uint64_t buf[kWords] = {};
    std::memcpy(buf, &value, sizeof(T));
    write_begin();
    for (std::size_t i = 0; i < kWords; ++i)
      words_[i].store(buf[i], std::memory_order_relaxed);
    write_end();
  }

  // One consistency-checked copy attempt. Returns false (leaving `out`
  // untouched) when a concurrent publish overlapped the copy.
  bool try_read(T& out) const noexcept {
    const std::uint64_t s1 = seq_.load(std::memory_order_acquire);
    if (s1 & 1) return false;
    std::uint64_t buf[kWords];
    for (std::size_t i = 0; i < kWords; ++i)
      buf[i] = words_[i].load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (seq_.load(std::memory_order_relaxed) != s1) return false;
    std::memcpy(&out, buf, sizeof(T));
    return true;
  }

  // Retries try_read until it succeeds. The writer publishes at a bounded
  // rate, so a reader starves only if it is descheduled across every
  // publish — the retry count is for telemetry, not correctness.
  T read(std::uint64_t* retries = nullptr) const noexcept {
    T out{};
    std::uint64_t spins = 0;
    while (!try_read(out)) ++spins;
    if (retries != nullptr) *retries = spins;
    return out;
  }

  // Publishes completed so far (even; a publish in flight reads odd).
  std::uint64_t sequence() const noexcept {
    return seq_.load(std::memory_order_acquire);
  }

 private:
  // Open the writer section: sequence to odd, then a release fence so the
  // payload stores cannot sink above the odd mark.
  void write_begin() noexcept ABP_ACQUIRE() {
    const std::uint64_t s = seq_.load(std::memory_order_relaxed);
    seq_.store(s + 1, std::memory_order_relaxed);  // odd: write in progress
    std::atomic_thread_fence(std::memory_order_release);
  }
  // Close the writer section: sequence back to even with release ordering,
  // publishing every payload store to acquire readers.
  void write_end() noexcept ABP_RELEASE() {
    const std::uint64_t s = seq_.load(std::memory_order_relaxed);  // odd
    seq_.store(s + 1, std::memory_order_release);
  }

  static constexpr std::size_t kWords = (sizeof(T) + 7) / 8;

  std::atomic<std::uint64_t> seq_{0};
  std::atomic<std::uint64_t> words_[kWords];
};

}  // namespace abp::obs
