#include "obs/export.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace abp::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

// JSON numbers must be finite; Chrome rejects NaN/Infinity literals.
std::string format_double(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

// ---- strict JSON validator (recursive descent over RFC 8259) -------------

class JsonLint {
 public:
  explicit JsonLint(std::string_view text) : text_(text) {}

  bool run(std::string* err) {
    skip_ws();
    if (!value()) return fail(err);
    skip_ws();
    if (pos_ != text_.size()) {
      msg_ = "trailing content";
      return fail(err);
    }
    return true;
  }

 private:
  bool fail(std::string* err) {
    if (msg_.empty()) return true;
    if (err)
      *err = msg_ + " at byte " + std::to_string(pos_);
    return false;
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  bool eat(char c) {
    if (peek() != c) return false;
    ++pos_;
    return true;
  }
  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') ++pos_;
      else break;
    }
  }

  bool error(const char* m) {
    if (msg_.empty()) msg_ = m;
    return false;
  }

  bool value() {
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return error("bad literal");
    pos_ += lit.size();
    return true;
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (eat('}')) return true;
    for (;;) {
      skip_ws();
      if (peek() != '"') return error("expected object key");
      if (!string()) return false;
      skip_ws();
      if (!eat(':')) return error("expected ':'");
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (eat(',')) continue;
      if (eat('}')) return true;
      return error("expected ',' or '}'");
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (eat(']')) return true;
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (eat(',')) continue;
      if (eat(']')) return true;
      return error("expected ',' or ']'");
    }
  }

  bool string() {
    ++pos_;  // '"'
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20)
        return error("raw control character in string");
      if (c == '\\') {
        ++pos_;
        const char e = peek();
        if (e == 'u') {
          ++pos_;
          for (int i = 0; i < 4; ++i) {
            if (!std::isxdigit(static_cast<unsigned char>(peek())))
              return error("bad \\u escape");
            ++pos_;
          }
        } else if (e == '"' || e == '\\' || e == '/' || e == 'b' ||
                   e == 'f' || e == 'n' || e == 'r' || e == 't') {
          ++pos_;
        } else {
          return error("bad escape");
        }
      } else {
        ++pos_;
      }
    }
    return error("unterminated string");
  }

  bool digits() {
    if (!std::isdigit(static_cast<unsigned char>(peek())))
      return error("expected digit");
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    return true;
  }

  bool number() {
    eat('-');
    if (peek() == '0') {
      ++pos_;
    } else {
      if (!digits()) return false;
    }
    if (eat('.')) {
      if (!digits()) return false;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!digits()) return false;
    }
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string msg_;
};

}  // namespace

bool json_validate(std::string_view text, std::string* err) {
  return JsonLint(text).run(err);
}

// ---- JsonObjectWriter ----------------------------------------------------

void JsonObjectWriter::key(std::string_view k) {
  if (!body_.empty()) body_ += ',';
  body_ += '"';
  body_ += json_escape(k);
  body_ += "\":";
}

void JsonObjectWriter::add(std::string_view k, std::uint64_t v) {
  key(k);
  body_ += std::to_string(v);
}
void JsonObjectWriter::add(std::string_view k, std::int64_t v) {
  key(k);
  body_ += std::to_string(v);
}
void JsonObjectWriter::add(std::string_view k, double v) {
  key(k);
  body_ += format_double(v);
}
void JsonObjectWriter::add(std::string_view k, std::string_view v) {
  key(k);
  body_ += '"';
  body_ += json_escape(v);
  body_ += '"';
}
void JsonObjectWriter::add_raw(std::string_view k, std::string_view raw) {
  key(k);
  body_ += raw;
}
void JsonObjectWriter::add(std::string_view k, bool v) {
  key(k);
  body_ += v ? "true" : "false";
}

std::string JsonObjectWriter::str() const { return "{" + body_ + "}"; }

std::string histogram_summary_json(const LatencyHistogram& h, double scale) {
  JsonObjectWriter w;
  w.add("count", h.count());
  w.add("mean", h.mean() * scale);
  w.add("min", static_cast<double>(h.min()) * scale);
  w.add("max", static_cast<double>(h.max()) * scale);
  w.add("p50", h.percentile(50.0) * scale);
  w.add("p95", h.percentile(95.0) * scale);
  w.add("p99", h.percentile(99.0) * scale);
  return w.str();
}

// ---- ChromeTraceBuilder --------------------------------------------------

namespace {

std::string event_prefix(const char* ph, int pid, int tid,
                         std::string_view name, double ts_us) {
  std::string e = "{\"ph\":\"";
  e += ph;
  e += "\",\"pid\":" + std::to_string(pid);
  e += ",\"tid\":" + std::to_string(tid);
  e += ",\"name\":\"" + json_escape(name) + "\"";
  e += ",\"ts\":" + format_double(ts_us);
  return e;
}

}  // namespace

void ChromeTraceBuilder::complete(int pid, int tid, std::string_view name,
                                  double ts_us, double dur_us,
                                  std::string_view args_json) {
  std::string e = event_prefix("X", pid, tid, name, ts_us);
  e += ",\"dur\":" + format_double(dur_us);
  if (!args_json.empty()) e += ",\"args\":" + std::string(args_json);
  e += "}";
  events_.push_back(std::move(e));
}

void ChromeTraceBuilder::instant(int pid, int tid, std::string_view name,
                                 double ts_us, std::string_view args_json) {
  std::string e = event_prefix("i", pid, tid, name, ts_us);
  e += ",\"s\":\"t\"";
  if (!args_json.empty()) e += ",\"args\":" + std::string(args_json);
  e += "}";
  events_.push_back(std::move(e));
}

void ChromeTraceBuilder::counter(int pid, std::string_view name, double ts_us,
                                 std::string_view series_json) {
  std::string e = event_prefix("C", pid, 0, name, ts_us);
  e += ",\"args\":" + std::string(series_json);
  e += "}";
  events_.push_back(std::move(e));
}

void ChromeTraceBuilder::process_name(int pid, std::string_view name) {
  std::string e = "{\"ph\":\"M\",\"pid\":" + std::to_string(pid);
  e += ",\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"";
  e += json_escape(name);
  e += "\"}}";
  events_.push_back(std::move(e));
}

void ChromeTraceBuilder::thread_name(int pid, int tid, std::string_view name) {
  std::string e = "{\"ph\":\"M\",\"pid\":" + std::to_string(pid);
  e += ",\"tid\":" + std::to_string(tid);
  e += ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
  e += json_escape(name);
  e += "\"}}";
  events_.push_back(std::move(e));
}

std::string ChromeTraceBuilder::build() const {
  std::string out = "{\"traceEvents\":[";
  for (std::size_t i = 0; i < events_.size(); ++i) {
    if (i) out += ",\n";
    out += events_[i];
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

void append_snapshots_to_trace(
    ChromeTraceBuilder& out,
    const std::vector<std::vector<TraceEvent>>& snapshots,
    const TscCalibration& cal, int pid) {
  for (std::size_t w = 0; w < snapshots.size(); ++w) {
    const int tid = static_cast<int>(w);
    out.thread_name(pid, tid, "worker " + std::to_string(w));
    std::uint64_t open_job_tsc = 0;
    bool job_open = false;
    for (const TraceEvent& e : snapshots[w]) {
      const double ts = cal.to_us(e.tsc);
      switch (e.type) {
        case EventType::kJobBegin:
          open_job_tsc = e.tsc;
          job_open = true;
          break;
        case EventType::kJobEnd: {
          // Prefer the matching begin seen in this ring; a wrapped ring may
          // have dropped it, in which case reconstruct from the duration
          // payload carried by the end event.
          const double dur_ticks = static_cast<double>(
              job_open ? e.tsc - open_job_tsc : e.arg);
          const double dur_us = dur_ticks * cal.ns_per_tick / 1e3;
          out.complete(pid, tid, "job", ts - dur_us, dur_us);
          job_open = false;
          break;
        }
        case EventType::kStealSuccess: {
          JsonObjectWriter args;
          args.add("latency_ns", cal.ticks_to_ns(e.arg));
          out.instant(pid, tid, "steal", ts, args.str());
          break;
        }
        case EventType::kStealAbortCas: {
          JsonObjectWriter args;
          args.add("victim", e.arg);
          out.instant(pid, tid, "steal_abort_cas", ts, args.str());
          break;
        }
        case EventType::kStealAbortEmpty: {
          JsonObjectWriter args;
          args.add("victim", e.arg);
          out.instant(pid, tid, "steal_abort_empty", ts, args.str());
          break;
        }
        case EventType::kSpawn:
          out.instant(pid, tid, "spawn", ts);
          break;
        case EventType::kYield:
          out.instant(pid, tid, "yield", ts);
          break;
        case EventType::kJobCancelled:
          out.instant(pid, tid, "job_cancelled", ts);
          break;
        case EventType::kPark:
          out.instant(pid, tid, "park", ts);
          break;
        case EventType::kStealBatch: {
          JsonObjectWriter args;
          args.add("items", e.arg);
          out.instant(pid, tid, "steal_batch", ts, args.str());
          break;
        }
        case EventType::kVictimDistance: {
          JsonObjectWriter args;
          args.add("distance", e.arg);
          out.instant(pid, tid, "victim_distance", ts, args.str());
          break;
        }
        case EventType::kPopBottomHit:
        case EventType::kPopBottomMiss:
        case EventType::kStealAttempt:
          // High-frequency bookkeeping events; represented in the stats
          // JSON rather than drawn individually.
          break;
      }
    }
  }
}

}  // namespace abp::obs
