#include "obs/export.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace abp::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

// JSON numbers must be finite; Chrome rejects NaN/Infinity literals.
std::string format_double(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

// ---- strict JSON validator (recursive descent over RFC 8259) -------------

class JsonLint {
 public:
  explicit JsonLint(std::string_view text) : text_(text) {}

  bool run(std::string* err) {
    skip_ws();
    if (!value()) return fail(err);
    skip_ws();
    if (pos_ != text_.size()) {
      msg_ = "trailing content";
      return fail(err);
    }
    return true;
  }

 private:
  bool fail(std::string* err) {
    if (msg_.empty()) return true;
    if (err)
      *err = msg_ + " at byte " + std::to_string(pos_);
    return false;
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  bool eat(char c) {
    if (peek() != c) return false;
    ++pos_;
    return true;
  }
  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') ++pos_;
      else break;
    }
  }

  bool error(const char* m) {
    if (msg_.empty()) msg_ = m;
    return false;
  }

  bool value() {
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return error("bad literal");
    pos_ += lit.size();
    return true;
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (eat('}')) return true;
    for (;;) {
      skip_ws();
      if (peek() != '"') return error("expected object key");
      if (!string()) return false;
      skip_ws();
      if (!eat(':')) return error("expected ':'");
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (eat(',')) continue;
      if (eat('}')) return true;
      return error("expected ',' or '}'");
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (eat(']')) return true;
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (eat(',')) continue;
      if (eat(']')) return true;
      return error("expected ',' or ']'");
    }
  }

  bool string() {
    ++pos_;  // '"'
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20)
        return error("raw control character in string");
      if (c == '\\') {
        ++pos_;
        const char e = peek();
        if (e == 'u') {
          ++pos_;
          for (int i = 0; i < 4; ++i) {
            if (!std::isxdigit(static_cast<unsigned char>(peek())))
              return error("bad \\u escape");
            ++pos_;
          }
        } else if (e == '"' || e == '\\' || e == '/' || e == 'b' ||
                   e == 'f' || e == 'n' || e == 'r' || e == 't') {
          ++pos_;
        } else {
          return error("bad escape");
        }
      } else {
        ++pos_;
      }
    }
    return error("unterminated string");
  }

  bool digits() {
    if (!std::isdigit(static_cast<unsigned char>(peek())))
      return error("expected digit");
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    return true;
  }

  bool number() {
    eat('-');
    if (peek() == '0') {
      ++pos_;
    } else {
      if (!digits()) return false;
    }
    if (eat('.')) {
      if (!digits()) return false;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!digits()) return false;
    }
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string msg_;
};

}  // namespace

bool json_validate(std::string_view text, std::string* err) {
  return JsonLint(text).run(err);
}

// ---- JsonObjectWriter ----------------------------------------------------

void JsonObjectWriter::key(std::string_view k) {
  if (!body_.empty()) body_ += ',';
  body_ += '"';
  body_ += json_escape(k);
  body_ += "\":";
}

void JsonObjectWriter::add(std::string_view k, std::uint64_t v) {
  key(k);
  body_ += std::to_string(v);
}
void JsonObjectWriter::add(std::string_view k, std::int64_t v) {
  key(k);
  body_ += std::to_string(v);
}
void JsonObjectWriter::add(std::string_view k, double v) {
  key(k);
  body_ += format_double(v);
}
void JsonObjectWriter::add(std::string_view k, std::string_view v) {
  key(k);
  body_ += '"';
  body_ += json_escape(v);
  body_ += '"';
}
void JsonObjectWriter::add_raw(std::string_view k, std::string_view raw) {
  key(k);
  body_ += raw;
}
void JsonObjectWriter::add(std::string_view k, bool v) {
  key(k);
  body_ += v ? "true" : "false";
}

std::string JsonObjectWriter::str() const { return "{" + body_ + "}"; }

std::string histogram_summary_json(const LatencyHistogram& h, double scale) {
  JsonObjectWriter w;
  w.add("count", h.count());
  w.add("mean", h.mean() * scale);
  w.add("min", static_cast<double>(h.min()) * scale);
  w.add("max", static_cast<double>(h.max()) * scale);
  w.add("p50", h.percentile(50.0) * scale);
  w.add("p95", h.percentile(95.0) * scale);
  w.add("p99", h.percentile(99.0) * scale);
  return w.str();
}

// ---- PrometheusWriter ----------------------------------------------------

std::string prometheus_sanitize(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (std::size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha = std::isalpha(static_cast<unsigned char>(c)) != 0;
    const bool digit = std::isdigit(static_cast<unsigned char>(c)) != 0;
    if (alpha || c == '_' || c == ':' || (digit && i > 0)) out += c;
    else out += '_';
  }
  if (out.empty()) out = "_";
  return out;
}

void PrometheusWriter::type_line(std::string_view name, const char* type) {
  for (const std::string& t : typed_)
    if (t == name) return;
  typed_.emplace_back(name);
  body_ += "# TYPE ";
  body_ += name;
  body_ += ' ';
  body_ += type;
  body_ += '\n';
}

void PrometheusWriter::sample(std::string_view name, std::string_view suffix,
                              std::string_view labels, double v) {
  body_ += name;
  body_ += suffix;
  if (!labels.empty()) {
    body_ += '{';
    body_ += labels;
    body_ += '}';
  }
  body_ += ' ';
  if (std::isnan(v)) body_ += "NaN";
  else if (std::isinf(v)) body_ += v > 0 ? "+Inf" : "-Inf";
  else body_ += format_double(v);
  body_ += '\n';
}

void PrometheusWriter::gauge(std::string_view name, double v,
                             std::string_view labels) {
  const std::string n = prometheus_sanitize(name);
  type_line(n, "gauge");
  sample(n, "", labels, v);
}

void PrometheusWriter::counter(std::string_view name, double v,
                               std::string_view labels) {
  const std::string n = prometheus_sanitize(name);
  type_line(n, "counter");
  sample(n, "", labels, v);
}

void PrometheusWriter::histogram(std::string_view name,
                                 const LatencyHistogram& h, double scale,
                                 std::string_view labels) {
  const std::string n = prometheus_sanitize(name);
  type_line(n, "histogram");
  // Cumulative buckets up to the highest occupied one; le values are the
  // scaled inclusive bucket upper bounds, strictly increasing by
  // construction of the power-of-two bucketing.
  const int top =
      h.count() > 0 ? LatencyHistogram::bucket_index(h.max()) : -1;
  std::uint64_t cum = 0;
  for (int i = 0; i <= top; ++i) {
    cum += h.bucket_count(i);
    std::string le = "le=\"";
    le += format_double(static_cast<double>(LatencyHistogram::bucket_upper(i)) *
                        scale);
    le += '"';
    if (!labels.empty()) {
      le += ',';
      le += labels;
    }
    sample(n, "_bucket", le, static_cast<double>(cum));
  }
  std::string inf = "le=\"+Inf\"";
  if (!labels.empty()) {
    inf += ',';
    inf += labels;
  }
  sample(n, "_bucket", inf, static_cast<double>(h.count()));
  sample(n, "_sum", labels, static_cast<double>(h.sum()) * scale);
  sample(n, "_count", labels, static_cast<double>(h.count()));
}

namespace {

bool prom_name_ok(std::string_view name) {
  if (name.empty()) return false;
  for (std::size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha = std::isalpha(static_cast<unsigned char>(c)) != 0;
    const bool digit = std::isdigit(static_cast<unsigned char>(c)) != 0;
    if (!(alpha || c == '_' || c == ':' || (digit && i > 0))) return false;
  }
  return true;
}

bool prom_value_ok(std::string_view v) {
  if (v == "+Inf" || v == "-Inf" || v == "Inf" || v == "NaN") return true;
  if (v.empty()) return false;
  char* end = nullptr;
  const std::string tmp(v);
  std::strtod(tmp.c_str(), &end);
  return end != nullptr && *end == '\0';
}

}  // namespace

bool prometheus_validate(std::string_view text, std::string* err) {
  std::size_t line_no = 0;
  std::size_t pos = 0;
  auto bad = [&](const char* why, std::string_view line) {
    if (err != nullptr)
      *err = std::string(why) + " on line " + std::to_string(line_no) + ": " +
             std::string(line);
    return false;
  };
  while (pos <= text.size()) {
    const std::size_t nl = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, nl == std::string_view::npos ? std::string_view::npos : nl - pos);
    pos = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
    ++line_no;
    if (line.empty()) continue;
    if (line[0] == '#') {
      // "# TYPE name kind" / "# HELP name text" / arbitrary comment.
      continue;
    }
    // name[{labels}] value
    std::size_t name_end = line.find_first_of("{ ");
    if (name_end == std::string_view::npos)
      return bad("metric line without value", line);
    if (!prom_name_ok(line.substr(0, name_end)))
      return bad("bad metric name", line);
    std::size_t value_at = name_end;
    if (line[name_end] == '{') {
      const std::size_t close = line.find('}', name_end);
      if (close == std::string_view::npos)
        return bad("unterminated label set", line);
      // Label values must be quoted; count quotes for balance.
      std::size_t quotes = 0;
      for (std::size_t i = name_end + 1; i < close; ++i)
        if (line[i] == '"' && (i == 0 || line[i - 1] != '\\')) ++quotes;
      if (quotes % 2 != 0) return bad("unbalanced label quotes", line);
      value_at = close + 1;
    }
    if (value_at >= line.size() || line[value_at] != ' ')
      return bad("expected space before value", line);
    const std::string_view value = line.substr(value_at + 1);
    if (!prom_value_ok(value)) return bad("bad sample value", line);
  }
  return true;
}

// ---- ChromeTraceBuilder --------------------------------------------------

namespace {

std::string event_prefix(const char* ph, int pid, int tid,
                         std::string_view name, double ts_us) {
  std::string e = "{\"ph\":\"";
  e += ph;
  e += "\",\"pid\":" + std::to_string(pid);
  e += ",\"tid\":" + std::to_string(tid);
  e += ",\"name\":\"" + json_escape(name) + "\"";
  e += ",\"ts\":" + format_double(ts_us);
  return e;
}

}  // namespace

void ChromeTraceBuilder::complete(int pid, int tid, std::string_view name,
                                  double ts_us, double dur_us,
                                  std::string_view args_json) {
  std::string e = event_prefix("X", pid, tid, name, ts_us);
  e += ",\"dur\":" + format_double(dur_us);
  if (!args_json.empty()) e += ",\"args\":" + std::string(args_json);
  e += "}";
  events_.push_back(std::move(e));
}

void ChromeTraceBuilder::instant(int pid, int tid, std::string_view name,
                                 double ts_us, std::string_view args_json) {
  std::string e = event_prefix("i", pid, tid, name, ts_us);
  e += ",\"s\":\"t\"";
  if (!args_json.empty()) e += ",\"args\":" + std::string(args_json);
  e += "}";
  events_.push_back(std::move(e));
}

void ChromeTraceBuilder::counter(int pid, std::string_view name, double ts_us,
                                 std::string_view series_json) {
  std::string e = event_prefix("C", pid, 0, name, ts_us);
  e += ",\"args\":" + std::string(series_json);
  e += "}";
  events_.push_back(std::move(e));
}

void ChromeTraceBuilder::process_name(int pid, std::string_view name) {
  std::string e = "{\"ph\":\"M\",\"pid\":" + std::to_string(pid);
  e += ",\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"";
  e += json_escape(name);
  e += "\"}}";
  events_.push_back(std::move(e));
}

void ChromeTraceBuilder::thread_name(int pid, int tid, std::string_view name) {
  std::string e = "{\"ph\":\"M\",\"pid\":" + std::to_string(pid);
  e += ",\"tid\":" + std::to_string(tid);
  e += ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
  e += json_escape(name);
  e += "\"}}";
  events_.push_back(std::move(e));
}

std::string ChromeTraceBuilder::build() const {
  std::string out = "{\"traceEvents\":[";
  for (std::size_t i = 0; i < events_.size(); ++i) {
    if (i) out += ",\n";
    out += events_[i];
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

void append_snapshots_to_trace(
    ChromeTraceBuilder& out,
    const std::vector<std::vector<TraceEvent>>& snapshots,
    const TscCalibration& cal, int pid) {
  for (std::size_t w = 0; w < snapshots.size(); ++w) {
    const int tid = static_cast<int>(w);
    out.thread_name(pid, tid, "worker " + std::to_string(w));
    std::uint64_t open_job_tsc = 0;
    bool job_open = false;
    for (const TraceEvent& e : snapshots[w]) {
      const double ts = cal.to_us(e.tsc);
      switch (e.type) {
        case EventType::kJobBegin:
          open_job_tsc = e.tsc;
          job_open = true;
          break;
        case EventType::kJobEnd: {
          // Prefer the matching begin seen in this ring; a wrapped ring may
          // have dropped it, in which case reconstruct from the duration
          // payload carried by the end event.
          const double dur_ticks = static_cast<double>(
              job_open ? e.tsc - open_job_tsc : e.arg);
          const double dur_us = dur_ticks * cal.ns_per_tick / 1e3;
          out.complete(pid, tid, "job", ts - dur_us, dur_us);
          job_open = false;
          break;
        }
        case EventType::kStealSuccess: {
          JsonObjectWriter args;
          args.add("latency_ns", cal.ticks_to_ns(e.arg));
          out.instant(pid, tid, "steal", ts, args.str());
          break;
        }
        case EventType::kStealAbortCas: {
          JsonObjectWriter args;
          args.add("victim", e.arg);
          out.instant(pid, tid, "steal_abort_cas", ts, args.str());
          break;
        }
        case EventType::kStealAbortEmpty: {
          JsonObjectWriter args;
          args.add("victim", e.arg);
          out.instant(pid, tid, "steal_abort_empty", ts, args.str());
          break;
        }
        case EventType::kSpawn:
          out.instant(pid, tid, "spawn", ts);
          break;
        case EventType::kYield:
          out.instant(pid, tid, "yield", ts);
          break;
        case EventType::kJobCancelled:
          out.instant(pid, tid, "job_cancelled", ts);
          break;
        case EventType::kPark:
          out.instant(pid, tid, "park", ts);
          break;
        case EventType::kStealBatch: {
          JsonObjectWriter args;
          args.add("items", e.arg);
          out.instant(pid, tid, "steal_batch", ts, args.str());
          break;
        }
        case EventType::kVictimDistance: {
          JsonObjectWriter args;
          args.add("distance", e.arg);
          out.instant(pid, tid, "victim_distance", ts, args.str());
          break;
        }
        case EventType::kTaskStolen: {
          JsonObjectWriter args;
          args.add("provenance", e.arg);
          out.instant(pid, tid, "task_stolen", ts, args.str());
          break;
        }
        case EventType::kPopBottomHit:
        case EventType::kPopBottomMiss:
        case EventType::kStealAttempt:
          // High-frequency bookkeeping events; represented in the stats
          // JSON rather than drawn individually.
          break;
      }
    }
  }
}

}  // namespace abp::obs
