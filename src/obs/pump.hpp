#pragma once

// The background metrics pump (DESIGN.md §13): polls a sampler on an
// interval, aggregates deltas between consecutive samples into rates, and
// streams one JSON line per tick into a bounded JsonStream — the live
// "endpoint" mid-run readers drain without quiescing the runtime.
//
// The pump is source-agnostic: the sampler is any callable returning
// name/value pairs (the scheduler's live_sample() reads per-worker seqlock
// snapshots; tests use synthetic counters). Counters are expected to be
// monotone; rates for a sample whose value decreased (e.g. after a stats
// reset) are clamped to zero rather than reported negative.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "support/sync.hpp"

namespace abp::obs {

struct MetricPoint {
  std::string name;
  double value = 0.0;
};

using MetricSampler = std::function<std::vector<MetricPoint>()>;

// Bounded FIFO of streamed JSON lines. push() drops the oldest line when
// full (the stream must never block the pump); dropped() surfaces the loss
// exactly like TraceRing::dropped().
class JsonStream {
 public:
  explicit JsonStream(std::size_t capacity = 1024) : capacity_(capacity) {}

  void push(std::string line) {
    sync::MutexLock lock(mu_);
    if (lines_.size() >= capacity_) {
      lines_.pop_front();
      ++dropped_;
    }
    lines_.push_back(std::move(line));
    ++pushed_;
  }

  // Removes and returns every buffered line, oldest first.
  std::vector<std::string> drain() {
    sync::MutexLock lock(mu_);
    std::vector<std::string> out(lines_.begin(), lines_.end());
    lines_.clear();
    return out;
  }

  std::size_t size() const {
    sync::MutexLock lock(mu_);
    return lines_.size();
  }
  std::uint64_t pushed() const {
    sync::MutexLock lock(mu_);
    return pushed_;
  }
  std::uint64_t dropped() const {
    sync::MutexLock lock(mu_);
    return dropped_;
  }

 private:
  mutable sync::Mutex mu_;
  std::size_t capacity_;
  std::deque<std::string> lines_ ABP_GUARDED_BY(mu_);
  std::uint64_t pushed_ ABP_GUARDED_BY(mu_) = 0;
  std::uint64_t dropped_ ABP_GUARDED_BY(mu_) = 0;
};

class MetricsPump {
 public:
  struct Options {
    std::uint32_t interval_ms = 100;   // sampling cadence
    std::size_t stream_capacity = 1024;  // JsonStream bound
  };

  explicit MetricsPump(MetricSampler sampler)
      : MetricsPump(std::move(sampler), Options{}) {}
  MetricsPump(MetricSampler sampler, Options opts);
  ~MetricsPump();  // stops and joins

  MetricsPump(const MetricsPump&) = delete;
  MetricsPump& operator=(const MetricsPump&) = delete;

  void start();
  void stop();
  bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }

  // Sampling iterations completed so far.
  std::uint64_t ticks() const noexcept {
    return ticks_.load(std::memory_order_acquire);
  }

  // Takes one sample immediately on the calling thread (also what the
  // background thread does each interval). Useful for deterministic tests
  // and for a final flush after the workload quiesced.
  void pump_once();

  // The most recent absolute sample.
  std::vector<MetricPoint> latest() const;
  // Per-second rates between the last two samples (clamped at zero).
  std::vector<MetricPoint> latest_rates() const;
  // The most recent streamed JSON line ("" before the first tick).
  std::string latest_json() const;

  JsonStream& stream() noexcept { return stream_; }

 private:
  void run_();
  void sample_() ABP_EXCLUDES(mu_);

  MetricSampler sampler_;
  Options opts_;
  JsonStream stream_;

  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> ticks_{0};
  std::thread thread_;

  mutable sync::Mutex mu_;
  sync::CondVar cv_;
  bool stop_requested_ ABP_GUARDED_BY(mu_) = false;
  std::vector<MetricPoint> last_ ABP_GUARDED_BY(mu_);
  std::vector<MetricPoint> rates_ ABP_GUARDED_BY(mu_);
  std::string last_json_ ABP_GUARDED_BY(mu_);
  std::chrono::steady_clock::time_point last_at_ ABP_GUARDED_BY(mu_){};
  std::chrono::steady_clock::time_point started_at_ ABP_GUARDED_BY(mu_){};
};

}  // namespace abp::obs
