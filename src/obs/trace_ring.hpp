#pragma once

// Per-worker event ring buffer.
//
// Each worker owns one TraceRing and is its only writer, so recording is a
// store + index bump with no synchronization — the same single-owner
// discipline as the WorkerStats counters. The ring has fixed power-of-two
// capacity and overwrites the oldest events when full (tracing must never
// block or allocate on the hot path); `dropped()` reports how many events
// were lost to wraparound. Readers snapshot after the pool quiesces.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "obs/trace.hpp"
#include "support/assert.hpp"

namespace abp::obs {

// Typed scheduler events; `arg` is event-specific (see comments).
enum class EventType : std::uint8_t {
  kSpawn,           // push_bottom of a new job; arg = deque size hint
  kPopBottomHit,    // own deque produced the next assigned job
  kPopBottomMiss,   // own deque empty -> become a thief
  kStealAttempt,    // arg = victim worker id
  kStealSuccess,    // arg = attempt latency in ticks
  kStealAbortCas,   // popTop lost the CAS race; arg = victim id
  kStealAbortEmpty, // victim deque was empty; arg = victim id
  kYield,           // yield call between steal attempts
  kJobBegin,        // execution of a job starts
  kJobEnd,          // arg = job run time in ticks
  kJobCancelled,    // job skipped: cancellation observed at its boundary
  kPark,            // TaskGroup waiter parked on its condition variable
  kStealBatch,      // successful pop_top_batch; arg = items claimed
  kVictimDistance,  // successful steal; arg = ring distance |thief-victim|
  kTaskStolen,      // successful steal; arg = stolen job's provenance id
};

constexpr const char* to_string(EventType t) noexcept {
  switch (t) {
    case EventType::kSpawn: return "spawn";
    case EventType::kPopBottomHit: return "pop_bottom_hit";
    case EventType::kPopBottomMiss: return "pop_bottom_miss";
    case EventType::kStealAttempt: return "steal_attempt";
    case EventType::kStealSuccess: return "steal_success";
    case EventType::kStealAbortCas: return "steal_abort_cas";
    case EventType::kStealAbortEmpty: return "steal_abort_empty";
    case EventType::kYield: return "yield";
    case EventType::kJobBegin: return "job_begin";
    case EventType::kJobEnd: return "job_end";
    case EventType::kJobCancelled: return "job_cancelled";
    case EventType::kPark: return "park";
    case EventType::kStealBatch: return "steal_batch";
    case EventType::kVictimDistance: return "victim_distance";
    case EventType::kTaskStolen: return "task_stolen";
  }
  return "?";
}

struct TraceEvent {
  std::uint64_t tsc = 0;  // rdtsc() at record time
  std::uint64_t arg = 0;  // event-specific payload
  EventType type = EventType::kSpawn;
};

// snapshot_with_stats(): the retained events plus the wraparound loss, so
// consumers can report truncation instead of silently presenting a
// wrapped ring as the full history.
struct TraceSnapshot {
  std::vector<TraceEvent> events;     // oldest first
  std::uint64_t total_recorded = 0;   // every record() since clear()
  std::uint64_t dropped = 0;          // events lost to wraparound
};

class TraceRing {
 public:
  // Capacity is rounded up to a power of two (index masking on the hot
  // path). Default 16Ki events = 384KiB per worker.
  explicit TraceRing(std::size_t capacity = 1u << 14)
      : capacity_(round_up_pow2(capacity)),
        mask_(capacity_ - 1),
        buf_(std::make_unique<TraceEvent[]>(capacity_)) {}

  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  std::size_t capacity() const noexcept { return capacity_; }

  // Owner only; never blocks, never allocates.
  void record(EventType type, std::uint64_t arg = 0) noexcept {
    TraceEvent& e = buf_[head_ & mask_];
    e.tsc = rdtsc();
    e.arg = arg;
    e.type = type;
    ++head_;
  }

  // Same, with a caller-supplied timestamp (used when the caller already
  // read the clock, e.g. to timestamp an event at its *start*).
  void record_at(std::uint64_t tsc, EventType type,
                 std::uint64_t arg = 0) noexcept {
    TraceEvent& e = buf_[head_ & mask_];
    e.tsc = tsc;
    e.arg = arg;
    e.type = type;
    ++head_;
  }

  std::uint64_t total_recorded() const noexcept { return head_; }
  std::uint64_t dropped() const noexcept {
    return head_ > capacity_ ? head_ - capacity_ : 0;
  }
  std::size_t size() const noexcept {
    return head_ > capacity_ ? capacity_ : static_cast<std::size_t>(head_);
  }

  void clear() noexcept { head_ = 0; }

  // The retained events, oldest first. Call only after the owning worker
  // has quiesced (there is no synchronization with a concurrent writer).
  std::vector<TraceEvent> snapshot() const {
    std::vector<TraceEvent> out;
    const std::size_t n = size();
    out.reserve(n);
    const std::uint64_t first = head_ - n;
    for (std::uint64_t i = first; i < head_; ++i)
      out.push_back(buf_[i & mask_]);
    return out;
  }

  // snapshot() plus the drop accounting (see TraceSnapshot).
  TraceSnapshot snapshot_with_stats() const {
    return TraceSnapshot{snapshot(), total_recorded(), dropped()};
  }

 private:
  static std::size_t round_up_pow2(std::size_t v) noexcept {
    std::size_t p = 1;
    while (p < v) p <<= 1;
    return p;
  }

  std::size_t capacity_;
  std::uint64_t mask_;
  std::unique_ptr<TraceEvent[]> buf_;
  std::uint64_t head_ = 0;  // monotonic event count; write index = head & mask
};

}  // namespace abp::obs
