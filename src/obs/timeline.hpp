#pragma once

// Round-resolution timeline for the *simulated* executions (sched/ engine
// under a sim/ kernel), exporting the same Chrome-trace format as the real
// runtime so both can be inspected with one viewer.
//
// Per round i the engine records p_i as chosen by the kernel, the subset
// actually scheduled after yield-ledger enforcement, the nodes executed,
// the cumulative throw (steal-attempt) count, and — optionally — the
// potential Φ of §4.2. Φ reaches 3^(2·T∞), far beyond double range, so it
// is stored as log10(Φ); the exported counter series is log-scaled too,
// which is also how the potential-decay argument is naturally read.
//
// Simulated time: one round = one microsecond in the exported trace, so
// round numbers read directly off the chrome://tracing time axis.

#include <cstdint>
#include <string>
#include <vector>

namespace abp::obs {

struct RoundSample {
  std::uint64_t round = 0;     // 1-based, as in sim::Round
  std::uint32_t proposed = 0;  // p_i: processes the kernel chose
  std::uint32_t scheduled = 0; // after yield-constraint replacement
  std::uint32_t executed = 0;  // dag nodes executed this round
  std::uint64_t throws = 0;    // cumulative steal attempts
  double phi_log10 = -1.0;     // log10(Φ) sampled after the round; <0 = none
};

class SimTimeline {
 public:
  void set_name(std::string name) { name_ = std::move(name); }
  const std::string& name() const noexcept { return name_; }

  // Kernels report their raw choice (before enforcement); engines report
  // the full sample at end of round. Rounds may be recorded out of order
  // across computations sharing one kernel; export sorts by round.
  void note_kernel_choice(std::uint64_t round, std::uint32_t p_i);
  void end_round(std::uint64_t round, std::uint32_t scheduled,
                 std::uint32_t executed, std::uint64_t cumulative_throws);
  void sample_potential(std::uint64_t round, double phi_log10);

  const std::vector<RoundSample>& samples() const noexcept { return samples_; }
  std::size_t rounds() const noexcept { return samples_.size(); }
  void clear() { samples_.clear(); }

  // Counter series "p_i", "scheduled", "executed", "throws", "log10(phi)"
  // under one trace process; 1 round = 1us of trace time.
  std::string chrome_trace_json(int pid = 1) const;

  // One-line JSON summary: rounds, totals, and min/max of Φ.
  std::string stats_json() const;

 private:
  RoundSample& at_round(std::uint64_t round);

  std::string name_ = "sim";
  std::vector<RoundSample> samples_;
};

}  // namespace abp::obs
