#include "obs/pump.hpp"

#include "obs/export.hpp"

namespace abp::obs {

MetricsPump::MetricsPump(MetricSampler sampler, Options opts)
    : sampler_(std::move(sampler)),
      opts_(opts),
      stream_(opts.stream_capacity) {}

MetricsPump::~MetricsPump() { stop(); }

void MetricsPump::start() {
  if (running_.load(std::memory_order_acquire)) return;
  {
    sync::MutexLock lock(mu_);
    stop_requested_ = false;
    started_at_ = std::chrono::steady_clock::now();
  }
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { run_(); });
}

void MetricsPump::stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  {
    sync::MutexLock lock(mu_);
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  running_.store(false, std::memory_order_release);
}

void MetricsPump::pump_once() { sample_(); }

void MetricsPump::run_() {
  for (;;) {
    {
      sync::MutexLock lock(mu_);
      if (cv_.wait_for(mu_, std::chrono::milliseconds(opts_.interval_ms),
                       [this]() ABP_REQUIRES(mu_) { return stop_requested_; }))
        return;
    }
    sample_();
  }
}

// One sampling tick, in three phases: poll the sampler unlocked (it may be
// arbitrarily slow — it reads every worker's seqlock — and concurrent
// latest()/latest_rates() readers must never block on it), fold the deltas
// into the published state under mu_, then stream the line unlocked (the
// JsonStream has its own lock; never hold two).
void MetricsPump::sample_() {
  std::vector<MetricPoint> sample = sampler_ ? sampler_()
                                             : std::vector<MetricPoint>{};
  const auto now = std::chrono::steady_clock::now();
  std::string line;
  {
    sync::MutexLock lock(mu_);
    if (started_at_.time_since_epoch().count() == 0) started_at_ = now;

    // Delta aggregation: match the previous sample by name (the sampler is
    // expected to return a stable set, but membership may grow, e.g. when a
    // worker slot activates mid-run).
    const double dt =
        last_at_.time_since_epoch().count() == 0
            ? 0.0
            : std::chrono::duration<double>(now - last_at_).count();
    rates_.clear();
    for (const MetricPoint& cur : sample) {
      double rate = 0.0;
      if (dt > 0.0) {
        for (const MetricPoint& prev : last_) {
          if (prev.name == cur.name) {
            // Counters are monotone; a decrease (stats reset) clamps to 0.
            rate =
                cur.value >= prev.value ? (cur.value - prev.value) / dt : 0.0;
            break;
          }
        }
      }
      rates_.push_back({cur.name, rate});
    }
    last_ = std::move(sample);
    last_at_ = now;
    const std::uint64_t tick =
        ticks_.fetch_add(1, std::memory_order_acq_rel) + 1;

    JsonObjectWriter w;
    w.add("seq", tick);
    w.add("uptime_ms",
          std::chrono::duration<double, std::milli>(now - started_at_)
              .count());
    w.add("interval_ms", static_cast<std::uint64_t>(opts_.interval_ms));
    {
      JsonObjectWriter totals;
      for (const MetricPoint& p : last_) totals.add(p.name, p.value);
      w.add_raw("totals", totals.str());
    }
    {
      JsonObjectWriter rates;
      for (const MetricPoint& p : rates_)
        rates.add(p.name + "_per_sec", p.value);
      w.add_raw("rates", rates.str());
    }
    last_json_ = w.str();
    line = last_json_;
  }
  stream_.push(line);
}

std::vector<MetricPoint> MetricsPump::latest() const {
  sync::MutexLock lock(mu_);
  return last_;
}

std::vector<MetricPoint> MetricsPump::latest_rates() const {
  sync::MutexLock lock(mu_);
  return rates_;
}

std::string MetricsPump::latest_json() const {
  sync::MutexLock lock(mu_);
  return last_json_;
}

}  // namespace abp::obs
