#pragma once

// Compile-time switch and timestamp source for the telemetry subsystem.
//
// The runtime's hot-path instrumentation (deque hooks, steal-latency
// timestamps, per-worker event rings) is wrapped in WHEN_TRACE(...) in the
// style of Cilk's WHEN_FIBER_STATS: with -DABP_TRACE=OFF the macro expands
// to nothing and the scheduler compiles to exactly the untraced code — no
// branches, no loads, no ring storage. The cold-path machinery (histograms,
// exporters, the simulator timeline) is always available; only the
// per-operation hooks in runtime/scheduler.hpp are gated.
//
// ABP_TRACE_ENABLED is injected globally by CMake (option ABP_TRACE,
// default ON) so every translation unit sees one consistent definition;
// a header compiled without it defaults to OFF.

#include <chrono>
#include <cstdint>

#if !defined(ABP_TRACE_ENABLED)
#define ABP_TRACE_ENABLED 0
#endif

#if ABP_TRACE_ENABLED
#define WHEN_TRACE(...) __VA_ARGS__
#else
#define WHEN_TRACE(...)
#endif

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#endif

namespace abp::obs {

// Raw timestamp counter: one instruction on x86-64 (rdtsc) and aarch64
// (cntvct_el0), steady_clock elsewhere. Values are in *ticks*; use
// TscCalibration to convert to nanoseconds at export time.
inline std::uint64_t rdtsc() noexcept {
#if defined(__x86_64__) || defined(_M_X64)
  return __rdtsc();
#elif defined(__aarch64__)
  std::uint64_t v;
  asm volatile("mrs %0, cntvct_el0" : "=r"(v));
  return v;
#else
  return static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
#endif
}

// Tick → nanosecond conversion, measured once per process (the counters we
// use are invariant/constant-rate on every mainstream 64-bit target).
struct TscCalibration {
  std::uint64_t origin = 0;     // tick value taken at calibration time
  double ns_per_tick = 1.0;

  double to_ns(std::uint64_t tsc) const noexcept {
    return static_cast<double>(tsc - origin) * ns_per_tick;
  }
  double to_us(std::uint64_t tsc) const noexcept { return to_ns(tsc) / 1e3; }
  double ticks_to_ns(std::uint64_t ticks) const noexcept {
    return static_cast<double>(ticks) * ns_per_tick;
  }
};

// Spins for ~2ms against steady_clock to measure the tick rate. Cheap
// enough to call once per export; cache the result if exporting repeatedly.
inline TscCalibration calibrate_tsc() {
  using Clock = std::chrono::steady_clock;
  TscCalibration cal;
  const std::uint64_t t0 = rdtsc();
  const auto c0 = Clock::now();
  // Busy-wait a fixed wall-clock window; long enough to dwarf the
  // measurement overhead, short enough to be unnoticeable.
  while (Clock::now() - c0 < std::chrono::milliseconds(2)) {
  }
  const std::uint64_t t1 = rdtsc();
  const auto c1 = Clock::now();
  const double ns =
      static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              c1 - c0)
                              .count());
  const double ticks = static_cast<double>(t1 - t0);
  cal.origin = t0;
  cal.ns_per_tick = ticks > 0.0 ? ns / ticks : 1.0;
  return cal;
}

// Process-wide calibration, measured once on first use (thread-safe magic
// static). For hot callers — the live metrics plane converts a publish
// interval to ticks per scheduler, and exporters may run per sample — the
// 2ms spin must not repeat.
inline const TscCalibration& cached_tsc_calibration() {
  static const TscCalibration cal = calibrate_tsc();
  return cal;
}

}  // namespace abp::obs
