#include "dag/dot.hpp"

#include <map>
#include <vector>

namespace abp::dag {

namespace {

const char* edge_style(EdgeKind kind) {
  switch (kind) {
    case EdgeKind::kContinue: return "solid";
    case EdgeKind::kSpawn: return "dashed";
    case EdgeKind::kJoin: return "dotted";
    case EdgeKind::kSync: return "dotted";
  }
  return "solid";
}

std::string node_name(NodeId n) { return "v" + std::to_string(n + 1); }

}  // namespace

std::string to_dot(const Dag& d, const DotOptions& options) {
  std::string out = "digraph computation {\n  rankdir=TB;\n"
                    "  node [shape=circle, fontsize=10];\n";
  if (options.label_measures) {
    out += "  label=\"T1=" + std::to_string(d.work()) +
           "  Tinf=" + std::to_string(d.critical_path_length()) +
           "  parallelism=";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2f", d.parallelism());
    out += buf;
    out += "\";\n";
  }

  if (options.cluster_threads && d.num_threads() > 0) {
    std::map<ThreadId, std::vector<NodeId>> by_thread;
    for (NodeId n = 0; n < d.num_nodes(); ++n)
      by_thread[d.thread_of(n)].push_back(n);
    for (const auto& [thread, nodes] : by_thread) {
      if (thread == kNoThread) {
        for (NodeId n : nodes) out += "  " + node_name(n) + ";\n";
        continue;
      }
      out += "  subgraph cluster_t" + std::to_string(thread) +
             " {\n    style=rounded;\n    label=\"thread " +
             std::to_string(thread) + "\";\n";
      for (NodeId n : nodes) out += "    " + node_name(n) + ";\n";
      out += "  }\n";
    }
  } else {
    for (NodeId n = 0; n < d.num_nodes(); ++n)
      out += "  " + node_name(n) + ";\n";
  }

  for (const Edge& e : d.edges()) {
    out += "  " + node_name(e.from) + " -> " + node_name(e.to) +
           " [style=" + edge_style(e.kind) + ", tooltip=\"" +
           to_string(e.kind) + "\"];\n";
  }
  out += "}\n";
  return out;
}

std::string to_dot(const Dag& d, const EnablingTree& tree) {
  std::string out = "digraph enabling_tree {\n  rankdir=TB;\n"
                    "  node [shape=circle, fontsize=10];\n";
  for (NodeId n = 0; n < d.num_nodes(); ++n) {
    if (!tree.known(n)) continue;
    out += "  " + node_name(n) + " [label=\"" + node_name(n) + "\\nw=" +
           std::to_string(tree.weight(n)) + "\"];\n";
    if (tree.parent(n) != kNoNode)
      out += "  " + node_name(tree.parent(n)) + " -> " + node_name(n) +
             ";\n";
  }
  out += "}\n";
  return out;
}

}  // namespace abp::dag
