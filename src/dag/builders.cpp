#include "dag/builders.hpp"

#include <utility>

#include "support/assert.hpp"
#include "support/rng.hpp"

namespace abp::dag {

Dag figure1() {
  Dag d;
  const ThreadId root = d.new_thread();
  const ThreadId child = d.new_thread();

  const NodeId v1 = d.append_to_thread(root);
  const NodeId v2 = d.append_to_thread(root);
  const NodeId v3 = d.append_to_thread(child);
  const NodeId v4 = d.append_to_thread(child);
  const NodeId v5 = d.append_to_thread(child);
  [[maybe_unused]] const NodeId v6 = d.append_to_thread(root);
  [[maybe_unused]] const NodeId v7 = d.append_to_thread(root);
  const NodeId v8 = d.append_to_thread(root);
  [[maybe_unused]] const NodeId v9 = d.append_to_thread(root);
  [[maybe_unused]] const NodeId v10 = d.append_to_thread(root);
  const NodeId v11 = d.append_to_thread(root);

  ABP_ASSERT(v1 == 0 && v11 == 10);
  d.add_edge(v2, v3, EdgeKind::kSpawn);  // v2 spawns the child thread
  d.add_edge(v4, v8, EdgeKind::kSync);   // v4 = V (signal), v8 = P (wait)
  d.add_edge(v5, v11, EdgeKind::kJoin);  // child joins the root thread
  return d;
}

Dag chain(std::size_t n) {
  ABP_ASSERT(n >= 1);
  Dag d;
  const ThreadId t = d.new_thread();
  for (std::size_t i = 0; i < n; ++i) d.append_to_thread(t);
  return d;
}

namespace {

struct Segment {
  NodeId entry;
  NodeId exit;
};

Segment build_fjt(Dag& d, unsigned depth, std::size_t leaf_work) {
  if (depth == 0) {
    const ThreadId t = d.new_thread();
    const NodeId entry = d.append_to_thread(t);
    NodeId exit = entry;
    for (std::size_t i = 1; i < leaf_work; ++i) exit = d.append_to_thread(t);
    return {entry, exit};
  }
  const ThreadId t = d.new_thread();
  const NodeId s1 = d.append_to_thread(t);  // spawns left subtree
  const NodeId s2 = d.append_to_thread(t);  // spawns right subtree
  const NodeId j1 = d.append_to_thread(t);  // join of left subtree
  const NodeId j2 = d.append_to_thread(t);  // join of right subtree
  const Segment left = build_fjt(d, depth - 1, leaf_work);
  const Segment right = build_fjt(d, depth - 1, leaf_work);
  d.add_edge(s1, left.entry, EdgeKind::kSpawn);
  d.add_edge(s2, right.entry, EdgeKind::kSpawn);
  d.add_edge(left.exit, j1, EdgeKind::kJoin);
  d.add_edge(right.exit, j2, EdgeKind::kJoin);
  return {s1, j2};
}

Segment build_fib(Dag& d, unsigned n) {
  if (n < 2) {
    const ThreadId t = d.new_thread();
    const NodeId leaf = d.append_to_thread(t);
    return {leaf, leaf};
  }
  const ThreadId t = d.new_thread();
  const NodeId s1 = d.append_to_thread(t);
  const NodeId s2 = d.append_to_thread(t);
  const NodeId j1 = d.append_to_thread(t);
  const NodeId j2 = d.append_to_thread(t);
  const Segment a = build_fib(d, n - 1);
  const Segment b = build_fib(d, n - 2);
  d.add_edge(s1, a.entry, EdgeKind::kSpawn);
  d.add_edge(s2, b.entry, EdgeKind::kSpawn);
  d.add_edge(a.exit, j1, EdgeKind::kJoin);
  d.add_edge(b.exit, j2, EdgeKind::kJoin);
  return {s1, j2};
}

Segment build_imbalanced(Dag& d, unsigned depth, std::size_t leaf_work) {
  if (depth == 0) {
    const ThreadId t = d.new_thread();
    const NodeId entry = d.append_to_thread(t);
    NodeId exit = entry;
    for (std::size_t i = 1; i < leaf_work; ++i) exit = d.append_to_thread(t);
    return {entry, exit};
  }
  const ThreadId t = d.new_thread();
  const NodeId s1 = d.append_to_thread(t);
  const NodeId s2 = d.append_to_thread(t);
  const NodeId j1 = d.append_to_thread(t);
  const NodeId j2 = d.append_to_thread(t);
  const Segment heavy = build_imbalanced(d, depth - 1, leaf_work);
  const Segment light = build_imbalanced(d, depth / 2, leaf_work);
  d.add_edge(s1, heavy.entry, EdgeKind::kSpawn);
  d.add_edge(s2, light.entry, EdgeKind::kSpawn);
  d.add_edge(heavy.exit, j1, EdgeKind::kJoin);
  d.add_edge(light.exit, j2, EdgeKind::kJoin);
  return {s1, j2};
}

// Shared shape for the rooted-tree families: an internal thread runs a
// spawn spine s1..sk followed by a join spine j1..jk, with subtree i hung
// between si and ji. Mirrors build_fjt at arbitrary arity while keeping
// out-degree <= 2 (each si has one continuation plus one spawn edge).
Segment build_kary(Dag& d, unsigned k, unsigned depth, std::size_t leaf_work) {
  if (depth == 0) {
    const ThreadId t = d.new_thread();
    const NodeId entry = d.append_to_thread(t);
    NodeId exit = entry;
    for (std::size_t i = 1; i < leaf_work; ++i) exit = d.append_to_thread(t);
    return {entry, exit};
  }
  const ThreadId t = d.new_thread();
  std::vector<NodeId> spawners(k), joiners(k);
  for (unsigned i = 0; i < k; ++i) spawners[i] = d.append_to_thread(t);
  for (unsigned i = 0; i < k; ++i) joiners[i] = d.append_to_thread(t);
  for (unsigned i = 0; i < k; ++i) {
    const Segment child = build_kary(d, k, depth - 1, leaf_work);
    d.add_edge(spawners[i], child.entry, EdgeKind::kSpawn);
    d.add_edge(child.exit, joiners[i], EdgeKind::kJoin);
  }
  return {spawners[0], joiners[k - 1]};
}

Segment build_rrt(Dag& d, Xoshiro256& rng, std::size_t budget,
                  unsigned max_branch) {
  // Too small to afford a child (2 spine nodes + >= 1 subtree node):
  // degenerate into a chain that spends the budget exactly.
  if (budget < 4) {
    const ThreadId t = d.new_thread();
    const NodeId entry = d.append_to_thread(t);
    NodeId exit = entry;
    for (std::size_t i = 1; i < budget; ++i) exit = d.append_to_thread(t);
    return {entry, exit};
  }
  unsigned kids = 1 + static_cast<unsigned>(rng.below(max_branch));
  while (kids > 1 && 3u * kids > budget) --kids;
  const ThreadId t = d.new_thread();
  std::vector<NodeId> spawners(kids), joiners(kids);
  for (unsigned i = 0; i < kids; ++i) spawners[i] = d.append_to_thread(t);
  for (unsigned i = 0; i < kids; ++i) joiners[i] = d.append_to_thread(t);
  // Split the rest of the budget randomly among the subtrees, >= 1 each,
  // so the whole tree lands on target_nodes exactly.
  std::size_t remaining = budget - 2u * kids;
  for (unsigned i = 0; i < kids; ++i) {
    std::size_t share = remaining - (kids - 1 - i);  // leave 1 per sibling
    if (i + 1 < kids) share = 1 + rng.below(share);
    remaining -= share;
    const Segment child = build_rrt(d, rng, share, max_branch);
    d.add_edge(spawners[i], child.entry, EdgeKind::kSpawn);
    d.add_edge(child.exit, joiners[i], EdgeKind::kJoin);
  }
  return {spawners[0], joiners[kids - 1]};
}

Segment build_sp(Dag& d, Xoshiro256& rng, std::size_t budget, ThreadId t) {
  if (budget <= 1) {
    const NodeId n = d.append_to_thread(t);
    return {n, n};
  }
  if (budget < 4 || rng.chance(0.45)) {
    // Series composition within the same thread; append_to_thread links the
    // two halves with a continuation edge automatically.
    const Segment a = build_sp(d, rng, budget / 2, t);
    const Segment b = build_sp(d, rng, budget - budget / 2, t);
    return {a.entry, b.exit};
  }
  // Parallel composition: fork spawns a child thread, the other branch
  // continues in this thread, and a join node closes the diamond.
  const NodeId fork = d.append_to_thread(t);
  const ThreadId child = d.new_thread();
  const std::size_t inner = budget - 2;
  const Segment a = build_sp(d, rng, inner / 2, child);
  d.add_edge(fork, a.entry, EdgeKind::kSpawn);
  const Segment b = build_sp(d, rng, inner - inner / 2, t);
  (void)b;  // b is chained after fork by construction
  const NodeId join = d.append_to_thread(t);
  d.add_edge(a.exit, join, EdgeKind::kJoin);
  return {fork, join};
}

}  // namespace

Dag fork_join_tree(unsigned depth, std::size_t leaf_work) {
  ABP_ASSERT(leaf_work >= 1);
  Dag d;
  build_fjt(d, depth, leaf_work);
  return d;
}

Dag fib_dag(unsigned n) {
  Dag d;
  build_fib(d, n);
  return d;
}

Dag wide(std::size_t width, std::size_t strand_len) {
  ABP_ASSERT(width >= 1 && strand_len >= 1);
  Dag d;
  const ThreadId root = d.new_thread();
  std::vector<NodeId> spawners(width);
  for (std::size_t i = 0; i < width; ++i) spawners[i] = d.append_to_thread(root);
  std::vector<NodeId> strand_exit(width);
  for (std::size_t i = 0; i < width; ++i) {
    const ThreadId t = d.new_thread();
    NodeId first = d.append_to_thread(t);
    NodeId last = first;
    for (std::size_t k = 1; k < strand_len; ++k) last = d.append_to_thread(t);
    d.add_edge(spawners[i], first, EdgeKind::kSpawn);
    strand_exit[i] = last;
  }
  for (std::size_t i = 0; i < width; ++i) {
    const NodeId j = d.append_to_thread(root);
    d.add_edge(strand_exit[i], j, EdgeKind::kJoin);
  }
  return d;
}

Dag grid_wavefront(std::size_t rows, std::size_t cols) {
  ABP_ASSERT(rows >= 1 && cols >= 1);
  Dag d;
  std::vector<std::vector<NodeId>> node(rows, std::vector<NodeId>(cols));
  for (std::size_t i = 0; i < rows; ++i) {
    const ThreadId t = d.new_thread();
    for (std::size_t j = 0; j < cols; ++j) node[i][j] = d.append_to_thread(t);
  }
  // Each row's first node spawns the next row.
  for (std::size_t i = 0; i + 1 < rows; ++i)
    d.add_edge(node[i][0], node[i + 1][0], EdgeKind::kSpawn);
  // Wavefront synchronization edges (i-1,j) -> (i,j) for j >= 1.
  for (std::size_t i = 1; i < rows; ++i)
    for (std::size_t j = 1; j < cols; ++j)
      d.add_edge(node[i - 1][j], node[i][j], EdgeKind::kSync);
  return d;
}

Dag imbalanced_tree(unsigned depth, std::size_t leaf_work) {
  ABP_ASSERT(leaf_work >= 1);
  Dag d;
  build_imbalanced(d, depth, leaf_work);
  return d;
}

Dag random_series_parallel(std::uint64_t seed, std::size_t target_nodes) {
  ABP_ASSERT(target_nodes >= 1);
  Dag d;
  Xoshiro256 rng(seed);
  const ThreadId t = d.new_thread();
  build_sp(d, rng, target_nodes, t);
  return d;
}

Dag full_kary_tree(unsigned k, unsigned depth, std::size_t leaf_work) {
  ABP_ASSERT(k >= 2 && leaf_work >= 1);
  Dag d;
  build_kary(d, k, depth, leaf_work);
  return d;
}

Dag caterpillar_tree(std::size_t spine, std::size_t leg_len) {
  ABP_ASSERT(spine >= 1 && leg_len >= 1);
  Dag d;
  const ThreadId root = d.new_thread();
  std::vector<NodeId> body(spine);
  for (std::size_t i = 0; i < spine; ++i) body[i] = d.append_to_thread(root);
  std::vector<NodeId> leg_exit(spine);
  for (std::size_t i = 0; i < spine; ++i) {
    const ThreadId leg = d.new_thread();
    const NodeId first = d.append_to_thread(leg);
    NodeId last = first;
    for (std::size_t n = 1; n < leg_len; ++n) last = d.append_to_thread(leg);
    d.add_edge(body[i], first, EdgeKind::kSpawn);
    leg_exit[i] = last;
  }
  for (std::size_t i = 0; i < spine; ++i) {
    const NodeId j = d.append_to_thread(root);
    d.add_edge(leg_exit[i], j, EdgeKind::kJoin);
  }
  return d;
}

Dag random_rooted_tree(std::uint64_t seed, std::size_t target_nodes,
                       unsigned max_branch) {
  ABP_ASSERT(target_nodes >= 1 && max_branch >= 1);
  Dag d;
  Xoshiro256 rng(seed);
  build_rrt(d, rng, target_nodes, max_branch);
  return d;
}

}  // namespace abp::dag
