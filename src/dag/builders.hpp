#pragma once

// Computation-dag builders.
//
// `figure1()` reconstructs the paper's running example; the other builders
// generate the dag families used across the experiments: serial chains (no
// parallelism), fork-join trees and fib dags (high parallelism), wide
// flat dags, wavefront grids (synchronization-edge heavy), and random
// series-parallel dags (property-test fodder). All builders produce dags
// satisfying the paper's structural assumptions (out-degree <= 2, unique
// root and final node) — tests verify this for every family.

#include <cstdint>

#include "dag/dag.hpp"

namespace abp::dag {

// The example computation of Figure 1: two threads (root + one child), a
// spawn edge, a semaphore V->P synchronization edge, and a join edge.
//
// The scanned copy of the paper garbles the node labels inside the figure,
// so this is a *reconstruction* that is consistent with every statement the
// prose makes about the example: the spawn/enable/die walkthroughs of §3.1,
// the semaphore example (initial value 0), and the join that enables the
// blocked root thread ("enable and die simultaneously"). Layout:
//
//   root thread : v1 v2 v6 v7 v8 v9 v10 v11
//   child thread: v3 v4 v5
//   spawn edge  : v2 -> v3
//   sync  edge  : v4 -> v8   (v4 executes V, v8 executes P)
//   join  edge  : v5 -> v11
//
// Work T1 = 11, critical path T∞ = 8 (v1 v2 v3 v4 v8 v9 v10 v11).
Dag figure1();

// Serial chain of n nodes (one thread). T1 = n, Tinf = n, parallelism 1.
Dag chain(std::size_t n);

// Balanced binary fork-join spawn tree of the given depth; each leaf thread
// runs `leaf_work` nodes. depth = 0 is a single leaf thread.
Dag fork_join_tree(unsigned depth, std::size_t leaf_work = 1);

// Dag mirroring the spawn structure of the recursive Fibonacci program
// (spawn fib(n-1); spawn fib(n-2); sync; sync).
Dag fib_dag(unsigned n);

// Root thread spawns `width` independent leaf threads of `strand_len` nodes
// each via a spawn spine, then joins them via a join spine.
Dag wide(std::size_t width, std::size_t strand_len = 1);

// n-by-m wavefront grid: node (i,j) depends on (i,j-1) (continuation) and
// (i-1,j) (synchronization edge). Each row is a thread spawned by the row
// above. T1 = n*m, Tinf = n+m-1.
Dag grid_wavefront(std::size_t rows, std::size_t cols);

// Random series-parallel dag of roughly `target_nodes` nodes, built by
// recursive series/parallel composition (fork node with out-degree 2, join
// node). Deterministic in `seed`.
Dag random_series_parallel(std::uint64_t seed, std::size_t target_nodes);

// Lopsided spawn tree: at every internal thread the left subtree has depth
// d-1 and the right subtree depth d/2. Work is heavily skewed towards one
// side, stressing the load balancer (static partitioning of such a tree is
// hopeless; work stealing rebalances it dynamically).
Dag imbalanced_tree(unsigned depth, std::size_t leaf_work = 1);

// --- rooted-tree families for the steal-bound suite -------------------------
// The classes analyzed by Leiserson, Schardl & Suksompong (*Upper Bounds on
// Number of Steals in Rooted Trees*): the steal count of a P-worker
// execution of a rooted tree is O(P·h) for height h, with the constant
// depending on the branching shape. tests/test_cache_bounds.cpp gates the
// measured steals of each family against that shape.

// Full k-ary spawn tree (k >= 2) of the given depth; every internal thread
// spawns k subtrees via a spawn spine of k nodes and joins them via a join
// spine of k nodes (out-degree stays <= 2); each leaf thread runs
// `leaf_work` nodes. depth = 0 is a single leaf thread.
// Work N(d) = 2k·(k^d - 1)/(k - 1) + leaf_work·k^d.
Dag full_kary_tree(unsigned k, unsigned depth, std::size_t leaf_work = 1);

// Caterpillar (path-heavy) tree: a spine thread of `spine` segments, each
// one body node that spawns a leg thread of `leg_len` nodes; all legs are
// joined by a join spine after the last body node. The available
// parallelism is O(1) at any instant — the adversarial shape for steal
// bounds (steals pay for almost no parallelism). Work = spine·(2+leg_len).
Dag caterpillar_tree(std::size_t spine, std::size_t leg_len = 1);

// Random rooted tree of EXACTLY `target_nodes` nodes: every internal
// thread draws a branching factor in [1, max_branch] and splits its
// remaining node budget randomly among the subtrees; budget-starved
// subtrees degenerate into chains. Deterministic in `seed`.
Dag random_rooted_tree(std::uint64_t seed, std::size_t target_nodes,
                       unsigned max_branch = 4);

}  // namespace abp::dag
