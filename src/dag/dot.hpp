#pragma once

// Graphviz export for computation dags: one cluster per thread, edge
// styles by kind (continuation solid, spawn dashed, join/sync dotted) —
// the rendering convention of the paper's Figure 1.

#include <string>

#include "dag/dag.hpp"
#include "dag/enabling.hpp"

namespace abp::dag {

struct DotOptions {
  bool cluster_threads = true;   // box the nodes of each thread together
  bool label_measures = true;    // graph label with T1 / Tinf / parallelism
};

// Renders the dag as a Graphviz digraph.
std::string to_dot(const Dag& d, const DotOptions& options = {});

// Renders an enabling tree (from an execution) over the dag's nodes.
std::string to_dot(const Dag& d, const EnablingTree& tree);

}  // namespace abp::dag
