#pragma once

// Enabling tree (§3.4 of the paper).
//
// During an execution, if executing node u makes node v ready, the edge
// (u, v) is an *enabling edge* and u is the *designated parent* of v. The
// enabling edges form a rooted tree over the executed nodes (every node
// except the root has exactly one designated parent). The depth d(v) of a
// node in this tree defines its weight w(v) = Tinf - d(v), the quantity the
// potential-function analysis (§4.2) is built on. Different executions of
// the same dag generally produce different enabling trees.

#include <cstdint>
#include <string>
#include <vector>

#include "dag/dag.hpp"

namespace abp::dag {

class EnablingTree {
 public:
  explicit EnablingTree(const Dag& dag);

  // Marks `root` as the tree root (depth 0).
  void set_root(NodeId root);

  // Records that executing `parent` enabled `child`.
  void record(NodeId parent, NodeId child);

  bool known(NodeId n) const { return depth_[n] != kUnknownDepth; }
  std::uint32_t depth(NodeId n) const;
  NodeId parent(NodeId n) const { return parent_[n]; }

  // Weight w(n) = Tinf - depth(n); the root has weight Tinf and every
  // recorded node has weight >= 1.
  std::uint32_t weight(NodeId n) const;

  std::size_t recorded() const noexcept { return recorded_; }
  std::size_t tinf() const noexcept { return tinf_; }

  // Returns empty string when the recorded structure is a consistent tree
  // covering `expected_nodes` nodes with depths < Tinf; otherwise an error.
  std::string validate(std::size_t expected_nodes) const;

 private:
  static constexpr std::uint32_t kUnknownDepth = 0xffffffffu;

  std::size_t tinf_;
  std::size_t recorded_ = 0;
  std::vector<NodeId> parent_;
  std::vector<std::uint32_t> depth_;
};

}  // namespace abp::dag
