#include "dag/dag.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace abp::dag {

const char* to_string(EdgeKind kind) noexcept {
  switch (kind) {
    case EdgeKind::kContinue: return "continue";
    case EdgeKind::kSpawn: return "spawn";
    case EdgeKind::kJoin: return "join";
    case EdgeKind::kSync: return "sync";
  }
  return "?";
}

NodeId Dag::add_node(ThreadId thread) {
  ABP_ASSERT(nodes_.size() < kNoNode);
  nodes_.push_back(Node{});
  nodes_.back().thread = thread;
  cached_root_ = cached_final_ = kNoNode;
  return static_cast<NodeId>(nodes_.size() - 1);
}

ThreadId Dag::new_thread() {
  thread_last_.push_back(kNoNode);
  return static_cast<ThreadId>(thread_last_.size() - 1);
}

NodeId Dag::append_to_thread(ThreadId thread) {
  ABP_ASSERT(thread < thread_last_.size());
  const NodeId n = add_node(thread);
  const NodeId prev = thread_last_[thread];
  if (prev != kNoNode) add_edge(prev, n, EdgeKind::kContinue);
  thread_last_[thread] = n;
  return n;
}

void Dag::add_edge(NodeId from, NodeId to, EdgeKind kind) {
  ABP_ASSERT(from < nodes_.size() && to < nodes_.size());
  ABP_ASSERT_MSG(nodes_[from].nsucc < 2,
                 "paper assumes out-degree at most 2 (one instruction)");
  nodes_[from].succ[nodes_[from].nsucc++] = to;
  nodes_[to].in_degree++;
  edges_.push_back(Edge{from, to, kind});
  cached_root_ = cached_final_ = kNoNode;
}

NodeId Dag::root() const {
  if (cached_root_ == kNoNode) {
    for (NodeId n = 0; n < nodes_.size(); ++n) {
      if (nodes_[n].in_degree == 0) {
        ABP_ASSERT_MSG(cached_root_ == kNoNode, "multiple root nodes");
        cached_root_ = n;
      }
    }
    ABP_ASSERT_MSG(cached_root_ != kNoNode, "no root node");
  }
  return cached_root_;
}

NodeId Dag::final_node() const {
  if (cached_final_ == kNoNode) {
    for (NodeId n = 0; n < nodes_.size(); ++n) {
      if (nodes_[n].nsucc == 0) {
        ABP_ASSERT_MSG(cached_final_ == kNoNode, "multiple final nodes");
        cached_final_ = n;
      }
    }
    ABP_ASSERT_MSG(cached_final_ != kNoNode, "no final node");
  }
  return cached_final_;
}

std::string Dag::validate() const {
  if (nodes_.empty()) return "dag has no nodes";
  std::size_t roots = 0;
  std::size_t finals = 0;
  for (NodeId n = 0; n < nodes_.size(); ++n) {
    if (nodes_[n].in_degree == 0) ++roots;
    if (nodes_[n].nsucc == 0) ++finals;
    if (nodes_[n].nsucc > 2) return "node out-degree exceeds 2";
  }
  if (roots != 1) return "dag must have exactly one root node";
  if (finals != 1) return "dag must have exactly one final node";

  // Acyclicity + reachability via Kahn's algorithm.
  std::vector<std::uint32_t> indeg(nodes_.size());
  for (NodeId n = 0; n < nodes_.size(); ++n) indeg[n] = nodes_[n].in_degree;
  std::vector<NodeId> queue;
  queue.reserve(nodes_.size());
  for (NodeId n = 0; n < nodes_.size(); ++n)
    if (indeg[n] == 0) queue.push_back(n);
  std::size_t seen = 0;
  while (seen < queue.size()) {
    const NodeId n = queue[seen++];
    for (NodeId s : successors(n))
      if (--indeg[s] == 0) queue.push_back(s);
  }
  if (seen != nodes_.size()) return "dag contains a cycle";
  return {};
}

std::vector<NodeId> Dag::topological_order() const {
  std::vector<std::uint32_t> indeg(nodes_.size());
  for (NodeId n = 0; n < nodes_.size(); ++n) indeg[n] = nodes_[n].in_degree;
  std::vector<NodeId> order;
  order.reserve(nodes_.size());
  for (NodeId n = 0; n < nodes_.size(); ++n)
    if (indeg[n] == 0) order.push_back(n);
  std::size_t seen = 0;
  while (seen < order.size()) {
    const NodeId n = order[seen++];
    for (NodeId s : successors(n))
      if (--indeg[s] == 0) order.push_back(s);
  }
  ABP_ASSERT_MSG(order.size() == nodes_.size(), "dag contains a cycle");
  return order;
}

std::size_t Dag::critical_path_length() const {
  const auto depth = longest_depth_from_root();
  std::uint32_t max_depth = 0;
  for (auto d : depth) max_depth = std::max(max_depth, d);
  return static_cast<std::size_t>(max_depth) + 1;  // path length in nodes
}

std::vector<std::uint32_t> Dag::longest_depth_from_root() const {
  std::vector<std::uint32_t> depth(nodes_.size(), 0);
  for (const NodeId n : topological_order()) {
    for (const NodeId s : successors(n))
      depth[s] = std::max(depth[s], depth[n] + 1);
  }
  return depth;
}

}  // namespace abp::dag
