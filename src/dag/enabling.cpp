#include "dag/enabling.hpp"

#include "support/assert.hpp"

namespace abp::dag {

EnablingTree::EnablingTree(const Dag& dag)
    : tinf_(dag.critical_path_length()),
      parent_(dag.num_nodes(), kNoNode),
      depth_(dag.num_nodes(), kUnknownDepth) {}

void EnablingTree::set_root(NodeId root) {
  ABP_ASSERT(root < depth_.size());
  ABP_ASSERT_MSG(depth_[root] == kUnknownDepth, "root recorded twice");
  depth_[root] = 0;
  ++recorded_;
}

void EnablingTree::record(NodeId parent, NodeId child) {
  ABP_ASSERT(parent < depth_.size() && child < depth_.size());
  ABP_ASSERT_MSG(depth_[parent] != kUnknownDepth,
                 "designated parent must already be in the tree");
  ABP_ASSERT_MSG(depth_[child] == kUnknownDepth,
                 "a node is enabled exactly once");
  parent_[child] = parent;
  depth_[child] = depth_[parent] + 1;
  ++recorded_;
}

std::uint32_t EnablingTree::depth(NodeId n) const {
  ABP_ASSERT_MSG(depth_[n] != kUnknownDepth, "node not yet enabled");
  return depth_[n];
}

std::uint32_t EnablingTree::weight(NodeId n) const {
  const std::uint32_t d = depth(n);
  ABP_ASSERT_MSG(d < tinf_, "enabling-tree depth must be below Tinf");
  return static_cast<std::uint32_t>(tinf_) - d;
}

std::string EnablingTree::validate(std::size_t expected_nodes) const {
  if (recorded_ != expected_nodes) return "not all nodes were enabled";
  std::size_t roots = 0;
  for (std::size_t n = 0; n < depth_.size(); ++n) {
    if (depth_[n] == kUnknownDepth) continue;
    if (depth_[n] >= tinf_) return "depth reaches or exceeds Tinf";
    if (parent_[n] == kNoNode) {
      if (depth_[n] != 0) return "non-root node without designated parent";
      ++roots;
    } else if (depth_[parent_[n]] + 1 != depth_[n]) {
      return "child depth is not parent depth + 1";
    }
  }
  if (roots != 1) return "enabling tree must have exactly one root";
  return {};
}

}  // namespace abp::dag
