#pragma once

// The multithreaded-computation model of the paper (§1, Figure 1).
//
// A computation is a dag in which each node is one instruction and edges are
// ordering constraints. Nodes belonging to one (user-level) thread form a
// chain of "continuation" edges; an instruction may additionally have a
// spawn edge (to the first node of a child thread), a join edge, or a
// synchronization edge (e.g. a semaphore V -> P edge). Structural
// assumptions from the paper:
//   * every node has out-degree at most 2,
//   * there is exactly one root node (in-degree 0) and one final node
//     (out-degree 0).
//
// Measures: work T1 = number of nodes; critical-path length Tinf = number
// of nodes on a longest directed path; parallelism = T1/Tinf.

#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

namespace abp::dag {

using NodeId = std::uint32_t;
using ThreadId = std::uint32_t;

inline constexpr NodeId kNoNode = std::numeric_limits<NodeId>::max();
inline constexpr ThreadId kNoThread = std::numeric_limits<ThreadId>::max();

// Classification of an edge, for documentation and validation only; the
// scheduler treats all edges alike (they are ordering constraints).
enum class EdgeKind : std::uint8_t {
  kContinue,  // consecutive instructions of one thread
  kSpawn,     // parent instruction -> first instruction of child thread
  kJoin,      // last instruction of child -> instruction of parent
  kSync,      // e.g. semaphore V -> P
};

const char* to_string(EdgeKind kind) noexcept;

struct Edge {
  NodeId from;
  NodeId to;
  EdgeKind kind;
};

class Dag {
 public:
  Dag() = default;

  // --- construction ------------------------------------------------------
  NodeId add_node(ThreadId thread = kNoThread);
  // Appends a node to `thread`'s chain: adds the node and, if the thread
  // already has nodes, a kContinue edge from its previous last node.
  NodeId append_to_thread(ThreadId thread);
  ThreadId new_thread();
  void add_edge(NodeId from, NodeId to, EdgeKind kind = EdgeKind::kSync);

  // --- accessors ----------------------------------------------------------
  std::size_t num_nodes() const noexcept { return nodes_.size(); }
  std::size_t num_edges() const noexcept { return edges_.size(); }
  std::size_t num_threads() const noexcept { return thread_last_.size(); }

  ThreadId thread_of(NodeId n) const { return nodes_[n].thread; }

  // Successors of n (size <= 2, per the paper's out-degree assumption).
  std::span<const NodeId> successors(NodeId n) const {
    return {nodes_[n].succ, nodes_[n].nsucc};
  }
  unsigned in_degree(NodeId n) const { return nodes_[n].in_degree; }
  unsigned out_degree(NodeId n) const { return nodes_[n].nsucc; }
  std::span<const Edge> edges() const noexcept { return edges_; }

  // The unique in-degree-0 / out-degree-0 nodes. Call validate() first (or
  // rely on it having been called); these scan on first use and cache.
  NodeId root() const;
  NodeId final_node() const;

  // --- validation & measures ----------------------------------------------
  // Checks the paper's structural assumptions; returns an empty string when
  // valid, otherwise a description of the first violation found.
  std::string validate() const;
  bool is_valid() const { return validate().empty(); }

  // Work T1 (number of nodes).
  std::size_t work() const noexcept { return nodes_.size(); }

  // Critical-path length Tinf: nodes on a longest directed path.
  std::size_t critical_path_length() const;

  // Parallelism T1/Tinf.
  double parallelism() const {
    return static_cast<double>(work()) /
           static_cast<double>(critical_path_length());
  }

  // Topological order (Kahn); asserts the graph is acyclic.
  std::vector<NodeId> topological_order() const;

  // Per-node "dag depth": length (in edges) of a longest path from the root
  // to the node. Used by tests; note this is a *static* measure, whereas the
  // enabling-tree depth of §3.4 depends on the execution.
  std::vector<std::uint32_t> longest_depth_from_root() const;

 private:
  struct Node {
    NodeId succ[2] = {kNoNode, kNoNode};
    std::uint8_t nsucc = 0;
    std::uint32_t in_degree = 0;
    ThreadId thread = kNoThread;
  };

  std::vector<Node> nodes_;
  std::vector<Edge> edges_;
  std::vector<NodeId> thread_last_;  // last node appended per thread
  mutable NodeId cached_root_ = kNoNode;
  mutable NodeId cached_final_ = kNoNode;
};

}  // namespace abp::dag
