#pragma once

// Umbrella header for the abp-workstealing library: one include for the
// public API. Individual headers remain includable on their own; see
// README.md for the module map.

// Computation dags (the paper's model of multithreaded computations).
#include "dag/builders.hpp"
#include "dag/dag.hpp"
#include "dag/dot.hpp"
#include "dag/enabling.hpp"

// The concurrent deques (Figures 4-5 and friends).
#include "deque/abp_deque.hpp"
#include "deque/abp_growable_deque.hpp"
#include "deque/chase_lev_deque.hpp"
#include "deque/deque_concept.hpp"
#include "deque/mutex_deque.hpp"
#include "deque/spinlock_deque.hpp"

// Kernel model and simulated work stealer (§2, §4).
#include "sched/engine.hpp"
#include "sched/multiprog.hpp"
#include "sched/potential.hpp"
#include "sched/structural.hpp"
#include "sched/work_stealer.hpp"
#include "sim/exec.hpp"
#include "sim/kernel.hpp"
#include "sim/offline.hpp"
#include "sim/profile.hpp"
#include "sim/yield.hpp"

// The real (std::thread) Hood-style runtime.
#include "runtime/algorithms.hpp"
#include "runtime/background_load.hpp"
#include "runtime/dag_engine.hpp"
#include "runtime/future.hpp"
#include "runtime/scheduler.hpp"

// User-level threads (fibers) with blocking synchronization.
#include "fiber/channel.hpp"
#include "fiber/fiber.hpp"
