#include "runtime/dag_engine.hpp"
// atomics-lint: allow(DAG in-degree counters layered above the modeled deques)

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "runtime/poly_deque.hpp"
#include "sim/cache.hpp"
#include "support/assert.hpp"
#include "support/rng.hpp"
#include "support/sync.hpp"

namespace abp::runtime {

namespace {

void spin(std::uint32_t iterations) {
  for (std::uint32_t i = 0; i < iterations; ++i) {
    asm volatile("" ::: "memory");  // opaque no-op: the loop must survive -O
  }
}

}  // namespace

const char* to_string(DagRunStatus s) noexcept {
  switch (s) {
    case DagRunStatus::kCompleted: return "completed";
    case DagRunStatus::kCancelled: return "cancelled";
    case DagRunStatus::kNodeFailed: return "node-failed";
  }
  return "?";
}

DagRunResult run_dag(const dag::Dag& d, const SchedulerOptions& opts,
                     std::uint32_t spin_per_node, CancelToken cancel,
                     DagNodeBody body) {
  ABP_ASSERT_MSG(d.is_valid(), "dag must satisfy structural assumptions");
  std::size_t num_workers = opts.num_workers;
  if (num_workers == 0) num_workers = 1;

  // Structural lemma: a deque never holds more than Tinf nodes (weights in
  // a deque are strictly decreasing), so this capacity cannot overflow.
  const std::size_t capacity = d.critical_path_length() + 8;

  const auto n = d.num_nodes();
  auto remaining = std::make_unique<std::atomic<std::uint32_t>[]>(n);
  for (dag::NodeId v = 0; v < n; ++v)
    remaining[v].store(d.in_degree(v), std::memory_order_relaxed);

  // Online span profile: path[v] = longest enabling chain root..v, folded
  // with a CAS max by each executed predecessor *before* its in-degree
  // decrement. The decrement chain (acq_rel RMWs) then orders every
  // contribution before the enabled node's acquire read of its own path.
  auto path = std::make_unique<std::atomic<std::uint64_t>[]>(n);
  for (dag::NodeId v = 0; v < n; ++v)
    path[v].store(0, std::memory_order_relaxed);
  const auto fold_path = [&path](dag::NodeId v, std::uint64_t p) {
    std::uint64_t cur = path[v].load(std::memory_order_relaxed);
    while (cur < p && !path[v].compare_exchange_weak(
                          cur, p, std::memory_order_release,
                          std::memory_order_relaxed)) {
    }
  };

  std::vector<std::unique_ptr<PolyDeque<dag::NodeId>>> deques;
  deques.reserve(num_workers);
  for (std::size_t i = 0; i < num_workers; ++i)
    deques.push_back(
        std::make_unique<PolyDeque<dag::NodeId>>(opts.deque, capacity));

  // Simulated cache layer (DESIGN.md §14): opt-in, off the default path.
  std::unique_ptr<sim::ConcurrentCacheModel> cache;
  if (opts.cache_model) {
    sim::CacheModelConfig cfg;
    cfg.capacity_blocks = opts.cache_capacity_blocks;
    cfg.nodes_per_block = opts.cache_nodes_per_block;
    cache = std::make_unique<sim::ConcurrentCacheModel>(d, cfg, num_workers);
  }

  std::vector<PaddedWorkerStats> stats(num_workers);
  std::atomic<bool> done{false};
  // Early-stop flag, distinct from computationDone: raised by the cancel
  // token or by a throwing node body. Workers observe it at node
  // boundaries only, so a node either fully runs or never starts.
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> executed{0};
  // First-failure capture (exactly one node body's exception survives the
  // run); a struct so the guarded_by relation is expressible.
  struct ErrorSlot {
    sync::Mutex mu;
    std::exception_ptr first ABP_GUARDED_BY(mu);
    dag::NodeId node ABP_GUARDED_BY(mu) = dag::kNoNode;
  } error;
  const dag::NodeId root = d.root();
  const dag::NodeId final_node = d.final_node();

  // context-lint: worker-context(dag_engine.worker_fn)
  auto worker_fn = [&](std::size_t id) {
    Xoshiro256 rng(opts.seed * 0x9e3779b97f4a7c15ULL + id + 1);
    WorkerStats& st = stats[id].value;
    PolyDeque<dag::NodeId>& self = *deques[id];
    dag::NodeId assigned = (id == 0) ? root : dag::kNoNode;
    if (id == 0) path[root].store(1, std::memory_order_relaxed);

    while (!done.load(std::memory_order_acquire) &&
           !stop.load(std::memory_order_acquire)) {
      if (cancel.cancelled()) {
        stop.store(true, std::memory_order_release);
        break;
      }
      if (assigned != dag::kNoNode) {
        // Execute the assigned node.
        spin(spin_per_node);
        if (body) {
          try {
            body(assigned);
          } catch (...) {
            {
              sync::MutexLock lock(error.mu);
              if (error.first == nullptr) {
                error.first = std::current_exception();
                error.node = assigned;
              }
            }
            stop.store(true, std::memory_order_release);
            break;  // the failed node's children are never enabled
          }
        }
        ++st.jobs_executed;
        executed.fetch_add(1, std::memory_order_relaxed);
        if (cache) {
          const sim::CacheAccess delta = cache->on_execute(id, assigned);
          st.cache_hits += delta.hits;
          st.cache_misses += delta.misses;
          st.cache_steal_misses += delta.steal_misses;
        }

        const std::uint64_t my_path =
            path[assigned].load(std::memory_order_acquire);
        dag::NodeId child[2];
        int num_children = 0;
        for (const dag::NodeId s : d.successors(assigned)) {
          // Span edge first, then the enabling decrement (see fold_path).
          fold_path(s, my_path + 1);
          if (remaining[s].fetch_sub(1, std::memory_order_acq_rel) == 1)
            child[num_children++] = s;
        }
        if (assigned == final_node) {
          done.store(true, std::memory_order_release);
          break;
        }
        if (num_children == 0) {
          auto popped = self.pop_bottom();
          if (popped) ++st.pop_bottom_hits;
          assigned = popped ? *popped : dag::kNoNode;
        } else if (num_children == 1) {
          assigned = child[0];
        } else {
          // Two children enabled: push one, keep executing the other. The
          // default is the depth-first child-first order; dag_parent_first
          // keeps following the current thread instead (§3.1: the bounds
          // hold for either choice).
          int cont = -1;
          for (int i = 0; i < 2; ++i)
            if (d.thread_of(child[i]) == d.thread_of(assigned)) cont = i;
          const int to_assign =
              (cont == -1) ? 1 : (opts.dag_parent_first ? cont : 1 - cont);
          ++st.spawns;
          self.push_bottom(child[1 - to_assign]);
          assigned = child[to_assign];
        }
      } else {
        // Thief: yield, then one steal attempt at a random victim.
        switch (opts.yield) {
          case YieldPolicy::kNone:
            break;
          case YieldPolicy::kYield:
            ++st.yields;
            std::this_thread::yield();
            break;
          case YieldPolicy::kSleep:
            ++st.yields;
            std::this_thread::sleep_for(
                std::chrono::microseconds(opts.sleep_us));
            break;
        }
        ++st.steal_attempts;
        const auto victim = static_cast<std::size_t>(rng.below(num_workers));
        if (victim != id) {
          auto stolen = deques[victim]->pop_top();
          if (stolen) {
            ++st.steals;
            assigned = *stolen;
          }
        }
      }
    }
  };

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(num_workers);
  for (std::size_t i = 0; i < num_workers; ++i)
    threads.emplace_back(worker_fn, i);
  for (auto& t : threads) t.join();
  const auto t1 = std::chrono::steady_clock::now();

  DagRunResult result;
  result.seconds = std::chrono::duration<double>(t1 - t0).count();
  for (const auto& s : stats) result.totals += s.value;
  result.executed_nodes = executed.load(std::memory_order_relaxed);
  result.measured_work_nodes = result.executed_nodes;
  result.measured_span_nodes = path[final_node].load(std::memory_order_acquire);
  std::exception_ptr first_error;
  dag::NodeId failed_node = dag::kNoNode;
  {
    // All workers are joined, but the analysis doesn't know that — take
    // the lock; it is uncontended here.
    sync::MutexLock lock(error.mu);
    first_error = error.first;
    failed_node = error.node;
  }
  if (first_error != nullptr) {
    result.status = DagRunStatus::kNodeFailed;
    result.error = first_error;
    result.failed_node = failed_node;
  } else if (!done.load(std::memory_order_acquire)) {
    result.status = DagRunStatus::kCancelled;
    result.cancel_reason = cancel.reason() != CancelReason::kNone
                               ? cancel.reason()
                               : CancelReason::kUser;
  }
  result.ok = result.status == DagRunStatus::kCompleted &&
              result.executed_nodes == d.num_nodes();
  return result;
}

}  // namespace abp::runtime
